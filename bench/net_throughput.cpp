// net_throughput: multi-client loopback saturation bench for the sharded
// NWS service.
//
// Part 1 — request-shape scenarios.  Spawns C concurrent clients against
// one NwsServer configured with K shards and measures aggregate
// measurement throughput for a fixed wall duration, across request shapes:
//   put   — one PUT round trip per measurement (the pre-batching wire),
//   putb  — PUTB batches of NWSCPU_NET_BATCH measurements per round trip,
//   mixed — PUT with a FORECAST every 8th request (scheduler traffic),
// each in text framing plus binary (HELLO BIN) variants of put/putb — the
// binary-vs-text ratio at equal connection count is a headline number.
//
// Part 2 — connection-scaling sweep.  Opens N concurrent raw loopback
// connections (NWSCPU_NET_CONNS, comma-separated counts) against each
// event-loop backend (NWSCPU_NET_BACKENDS, default "epoll,poll") in each
// framing, drives one-PUT-per-connection round-robin traffic from a small
// pool of multiplexed driver threads, and reports sustained responses/s.
// The process raises RLIMIT_NOFILE to its hard limit at startup; counts
// the limit cannot back are clamped (and flagged) with an actionable
// ulimit hint.  Beyond ~20k connections the drivers spread client source
// addresses across 127.0.0.x to dodge ephemeral-port exhaustion — one
// loopback (src, dst) pair backs only ~28k tuples.
//
// Part 3 — router tier.  Stands up {1,2,4} single-shard NwsServer
// backends behind one nws::Router and drives PUTB traffic through the
// proxy in both framings, against a direct single-shard server baseline
// at the same client count.  The headline is aggregate PUTB throughput
// at 2 backends versus the direct server: on a multi-core host the two
// backend processes run in parallel and the ratio should clear ~1.7x;
// on a single core the cells still measure the router hop honestly (the
// ratio degrades toward the proxy's added cost, and is reported as-is).
//
// Every cell in every part also reports p50/p99 request latency, taken
// per round trip on the client side (scenario/router cells) or per
// response against its send timestamp (sweep cells).
//
// Output: human-readable tables on stdout plus machine-readable
// BENCH_net.json and BENCH_router.json in NWSCPU_OUT (default
// bench_out/), including the headline ratios the perf work is judged
// by: aggregate throughput at 8 connections / 8 shards versus the
// single-connection single-shard baseline (unbatched and batched),
// binary-vs-text PUTB at 8c/8s, and routed-vs-direct PUTB at 2 backends.
//
// Knobs: NWSCPU_NET_MS (per-scenario duration, default 400),
// NWSCPU_NET_BATCH (PUTB batch size, default 256), NWSCPU_NET_CONNS
// (sweep sizes, default "1000,5000"), NWSCPU_NET_DISPATCHERS (dispatcher
// counts for the sweep and the router cells, default "1" — the fixed
// Part 1 scenario list always includes a 1-vs-4-dispatcher replay pair),
// NWSCPU_NET_SWEEP_MS (per-cell
// duration, default 300), NWSCPU_NET_BACKENDS, NWSCPU_ROUTER_SWEEP
// (router backend counts, default "1,2,4"), NWSCPU_ROUTER_CONNS
// (clients per router cell, default 8), NWSCPU_ROUTER_MS (per-cell
// duration, default NWSCPU_NET_MS).
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <latch>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/experiment_common.hpp"
#include "nws/client.hpp"
#include "nws/protocol.hpp"
#include "nws/router.hpp"
#include "nws/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(value, &end, 10);
    if (end != value && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return fallback;
}

std::vector<std::size_t> env_size_list(const char* name,
                                       const std::string& fallback) {
  const char* raw = std::getenv(name);
  std::string spec = raw != nullptr ? raw : fallback;
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    char* end = nullptr;
    const unsigned long v = std::strtoul(token.c_str(), &end, 10);
    if (end != token.c_str() && v > 0) out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Linear-interpolated percentile over an ascending-sorted sample vector.
double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Merges per-thread latency vectors, sorts once, and fills (p50, p99).
void merge_percentiles(std::vector<std::vector<double>>& shards, double& p50,
                       double& p99) {
  std::size_t total = 0;
  for (const std::vector<double>& shard : shards) total += shard.size();
  std::vector<double> all;
  all.reserve(total);
  for (std::vector<double>& shard : shards) {
    all.insert(all.end(), shard.begin(), shard.end());
    shard.clear();
    shard.shrink_to_fit();
  }
  std::sort(all.begin(), all.end());
  p50 = percentile_sorted(all, 0.50);
  p99 = percentile_sorted(all, 0.99);
}

// ---------------------------------------------------------------------------
// File-descriptor budget (satellite: 100k connections need 200k+ fds).

/// Raises the soft RLIMIT_NOFILE to the hard limit; returns the resulting
/// soft limit.
rlim_t raise_fd_limit() {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  if (rl.rlim_cur < rl.rlim_max) {
    rlimit want = rl;
    want.rlim_cur = want.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &want) == 0) rl = want;
  }
  return rl.rlim_cur;
}

/// Connections the fd budget can back: each loopback connection costs two
/// descriptors (client socket + in-process server socket), plus slack for
/// the listener, epoll/eventfd, journals and stdio.
std::size_t connection_capacity(rlim_t fd_limit) {
  constexpr rlim_t kSlack = 128;
  if (fd_limit <= kSlack) return 0;
  return static_cast<std::size_t>((fd_limit - kSlack) / 2);
}

void print_ulimit_hint(std::size_t requested, rlim_t fd_limit) {
  std::cerr << "net_throughput: " << requested
            << " connections need ~" << (2 * requested + 128)
            << " file descriptors but RLIMIT_NOFILE caps at " << fd_limit
            << " even after raising to the hard limit.\n"
            << "  Raise the hard limit and rerun, e.g.:\n"
            << "    ulimit -Hn " << (2 * requested + 128)
            << "   (as root, or via /etc/security/limits.conf or systemd "
               "LimitNOFILE)\n"
            << "  Clamping this cell to the reachable count instead.\n";
}

// ---------------------------------------------------------------------------
// Part 1: request-shape scenarios over NwsClient (thread per connection).

enum class Mode { kPut, kPutBatch, kMixed, kReplay };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kPut:
      return "put";
    case Mode::kPutBatch:
      return "putb";
    case Mode::kMixed:
      return "mixed";
    case Mode::kReplay:
      return "replay";
  }
  return "?";
}

struct Scenario {
  Mode mode;
  std::size_t connections;
  std::size_t shards;
  bool binary = false;     ///< drive the HELLO BIN framing
  std::size_t batch = 0;   ///< PUTB samples per line (0 = NWSCPU_NET_BATCH)
  std::size_t dispatchers = 1;  ///< server dispatcher threads
};

struct Result {
  Scenario scenario;
  std::uint64_t measurements = 0;  ///< samples applied across all clients
  std::uint64_t round_trips = 0;
  double seconds = 0.0;
  double p50_us = 0.0;  ///< median round-trip latency, microseconds
  double p99_us = 0.0;

  [[nodiscard]] double per_sec() const {
    return seconds > 0.0 ? static_cast<double>(measurements) / seconds : 0.0;
  }
};

/// One client thread: drive `series` for `duration`, tallying applied
/// measurements, round trips and per-round-trip latency samples (µs).
void client_loop(std::uint16_t port, Mode mode, bool binary,
                 const std::string& series, std::size_t batch_size,
                 std::chrono::milliseconds duration, std::latch& ready,
                 std::atomic<std::uint64_t>& measurements,
                 std::atomic<std::uint64_t>& round_trips,
                 std::vector<double>& latencies) {
  nws::ClientConfig cfg;
  cfg.binary = binary;
  nws::NwsClient client(cfg);
  if (!client.connect(port)) {
    ready.arrive_and_wait();
    return;
  }
  // Full-mantissa availability values, like a real sensor produces: the
  // text wire must format and parse ~17 significant digits per field.
  // (A constant like 0.5 renders as 3 bytes and parses in a few ns, which
  // understates the text protocol's cost and overstates its density.)
  std::uint64_t rng = 0x9e3779b97f4a7c15ull ^ std::hash<std::string>{}(series);
  const auto next_value = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return static_cast<double>(rng >> 11) * 0x1.0p-53;
  };
  double t = 0.0;
  std::uint64_t seq = 1;
  std::vector<nws::Measurement> batch(batch_size);
  // Prime the series so FORECAST in mixed mode always has history.
  t += 1.0;
  (void)client.put(series, {t, next_value()});

  ready.arrive_and_wait();
  const Clock::time_point deadline = Clock::now() + duration;
  std::uint64_t local_meas = 0;
  std::uint64_t local_rtts = 0;
  // One steady_clock read per round trip: the previous round trip's end is
  // the next one's start, so latency sampling adds no extra clock calls to
  // the loop beyond what the deadline check already paid.
  Clock::time_point now = Clock::now();
  const auto lap_us = [&now, &latencies]() {
    const Clock::time_point done = Clock::now();
    latencies.push_back(
        std::chrono::duration<double, std::micro>(done - now).count());
    now = done;
  };
  while (now < deadline) {
    switch (mode) {
      case Mode::kPut: {
        t += 1.0;
        if (client.put(series, {t, next_value()})) ++local_meas;
        ++local_rtts;
        lap_us();
        break;
      }
      case Mode::kPutBatch: {
        for (std::size_t i = 0; i < batch_size; ++i) {
          t += 1.0;
          batch[i] = {t, next_value()};
        }
        const auto reply = client.put_batch(series, batch, seq);
        seq += batch_size;
        if (reply) local_meas += reply->applied;
        ++local_rtts;
        lap_us();
        break;
      }
      case Mode::kMixed: {
        for (int i = 0; i < 7; ++i) {
          t += 1.0;
          if (client.put(series, {t, next_value()})) ++local_meas;
          ++local_rtts;
          lap_us();
        }
        (void)client.forecast(series);
        ++local_rtts;
        lap_us();
        break;
      }
      case Mode::kReplay: {
        // Outbox retransmission after a lost ack: the same sequence-tagged
        // batch again and again.  The server dup-skips every sample (the
        // idempotency PUTS/PUTB exist for), so this cell isolates the wire
        // and parse path — the forecaster panel is out of the loop.  Acked
        // (dup-skipped) samples count as delivered throughput.
        if (batch[0].time == 0.0) {
          for (std::size_t i = 0; i < batch_size; ++i) {
            t += 1.0;
            batch[i] = {t, next_value()};
          }
        }
        const auto reply = client.put_batch(series, batch, 1);
        if (reply) local_meas += reply->applied + reply->dup;
        ++local_rtts;
        lap_us();
        break;
      }
    }
  }
  measurements += local_meas;
  round_trips += local_rtts;
  client.disconnect();
}

/// Shared client-fleet driver: `connections` threads of `client_loop`
/// against `port`, latency-merged.  Part 1 scenarios and Part 3 router
/// cells both funnel through here so their cells are measured identically.
struct DriveStats {
  std::uint64_t measurements = 0;
  std::uint64_t round_trips = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

DriveStats drive_clients(std::uint16_t port, Mode mode, bool binary,
                         std::size_t connections, std::size_t batch_size,
                         std::chrono::milliseconds duration) {
  DriveStats stats;
  std::atomic<std::uint64_t> measurements{0};
  std::atomic<std::uint64_t> round_trips{0};
  std::vector<std::vector<double>> latencies(connections);
  std::latch ready(static_cast<std::ptrdiff_t>(connections) + 1);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back(client_loop, port, mode, binary,
                         "bench/host" + std::to_string(c) + "/cpu", batch_size,
                         duration, std::ref(ready), std::ref(measurements),
                         std::ref(round_trips), std::ref(latencies[c]));
  }
  ready.arrive_and_wait();
  const Clock::time_point begin = Clock::now();
  for (std::thread& thread : threads) thread.join();
  stats.seconds = std::chrono::duration<double>(Clock::now() - begin).count();
  stats.measurements = measurements.load();
  stats.round_trips = round_trips.load();
  merge_percentiles(latencies, stats.p50_us, stats.p99_us);
  return stats;
}

Result run_scenario(const Scenario& scenario, std::size_t default_batch,
                    std::chrono::milliseconds duration) {
  const std::size_t batch_size =
      scenario.batch > 0 ? scenario.batch : default_batch;
  nws::ServerConfig config;
  config.shards = scenario.shards;
  config.dispatchers = scenario.dispatchers;
  nws::NwsServer server(config);
  Result result{scenario};
  const std::uint16_t port = server.start(0);
  if (port == 0) {
    std::cerr << "net_throughput: cannot bind loopback listener\n";
    return result;
  }
  const DriveStats stats =
      drive_clients(port, scenario.mode, scenario.binary,
                    scenario.connections, batch_size, duration);
  result.measurements = stats.measurements;
  result.round_trips = stats.round_trips;
  result.seconds = stats.seconds;
  result.p50_us = stats.p50_us;
  result.p99_us = stats.p99_us;
  server.stop();
  return result;
}

double ratio(const Result& a, const Result& b) {
  return b.per_sec() > 0.0 ? a.per_sec() / b.per_sec() : 0.0;
}

// ---------------------------------------------------------------------------
// Part 2: connection-scaling sweep over raw multiplexed sockets.

struct SweepCell {
  std::size_t requested = 0;
  std::size_t established = 0;
  bool binary = false;
  std::size_t dispatchers = 1;
  nws::NetBackend backend = nws::NetBackend::kAuto;
  std::uint64_t responses = 0;
  double seconds = 0.0;
  bool clamped = false;
  double p50_us = 0.0;  ///< enqueue-to-response latency, microseconds
  double p99_us = 0.0;

  [[nodiscard]] double per_sec() const {
    return seconds > 0.0 ? static_cast<double>(responses) / seconds : 0.0;
  }
};

const char* backend_name(nws::NetBackend backend) {
  return backend == nws::NetBackend::kPoll ? "poll" : "epoll";
}

/// One multiplexed connection: nonblocking socket plus in-flight
/// accounting so the driver can pipeline without unbounded queueing.
struct SweepConn {
  int fd = -1;
  std::string rx;       ///< partial binary frames between passes
  std::string tx;       ///< unsent request tail (short write)
  std::uint32_t inflight = 0;
  double t = 0.0;
  /// Enqueue timestamps of in-flight requests, FIFO like the responses:
  /// front pairs with the next response, giving client-perceived latency
  /// (queueing in the driver included, which is the honest number under
  /// pipelining).
  std::deque<Clock::time_point> sent;
};

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Opens one loopback connection, optionally from a spread source address
/// (127.0.0.x) and optionally negotiating HELLO BIN while still blocking.
int open_sweep_conn(std::uint16_t port, std::size_t index, bool spread_src,
                    bool binary) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (spread_src) {
    // ~28k ephemeral ports per (src, dst) pair: rotate the source address
    // through 127.0.0.1..250 every 20k connections.  SO_REUSEADDR lets the
    // kernel recycle TIME_WAIT tuples across bench runs.
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in src{};
    src.sin_family = AF_INET;
    src.sin_port = 0;
    const std::uint32_t host = 1 + static_cast<std::uint32_t>(index / 20000) % 250;
    src.sin_addr.s_addr = htonl((127u << 24) | host);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&src), sizeof src) != 0) {
      ::close(fd);
      return -1;
    }
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (binary) {
    const std::string hello = std::string(nws::kHelloBinRequest) + "\n";
    if (::send(fd, hello.data(), hello.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(hello.size())) {
      ::close(fd);
      return -1;
    }
    // The ack is exactly "OK BIN\n"; the socket is still blocking here.
    char ack[8] = {};
    std::size_t got = 0;
    while (got < 7) {
      const ssize_t n = ::recv(fd, ack + got, 7 - got, 0);
      if (n <= 0) {
        ::close(fd);
        return -1;
      }
      got += static_cast<std::size_t>(n);
    }
    if (std::string_view(ack, 7) != "OK BIN\n") {
      ::close(fd);
      return -1;
    }
  }
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Driver thread: round-robin over its connections — retry short writes,
/// send one PUT per pass to every connection with spare in-flight budget,
/// and drain responses.  Counts completed responses.
void sweep_driver(std::vector<SweepConn>& conns, bool binary,
                  std::size_t series_base, std::latch& ready,
                  std::atomic<bool>& stop_flag,
                  std::atomic<std::uint64_t>& responses,
                  std::vector<double>& latencies) {
  constexpr std::uint32_t kMaxInflight = 4;
  std::uint64_t local = 0;
  std::string wire;
  char chunk[16384];
  ready.arrive_and_wait();
  while (!stop_flag.load(std::memory_order_relaxed)) {
    for (std::size_t i = 0; i < conns.size(); ++i) {
      SweepConn& conn = conns[i];
      if (conn.fd < 0) continue;
      // 1) queue a request when the window allows.
      if (conn.tx.empty() && conn.inflight < kMaxInflight) {
        conn.t += 1.0;
        wire.clear();
        nws::Request req;
        req.kind = nws::RequestKind::kPut;
        req.series = "sw/h" + std::to_string(series_base + i) + "/cpu";
        req.measurement = {conn.t, 0.5};
        if (binary) {
          nws::append_binary_request(wire, req);
        } else {
          nws::append_request(wire, req);
          wire += '\n';
        }
        conn.tx = wire;
        ++conn.inflight;
        conn.sent.push_back(Clock::now());
      }
      // 2) flush the tail (short writes roll to the next pass).
      if (!conn.tx.empty()) {
        const ssize_t sent =
            ::send(conn.fd, conn.tx.data(), conn.tx.size(), MSG_NOSIGNAL);
        if (sent > 0) {
          conn.tx.erase(0, static_cast<std::size_t>(sent));
        } else if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          ::close(conn.fd);
          conn.fd = -1;
          continue;
        }
      }
      // 3) drain responses.
      for (;;) {
        const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
        if (n <= 0) {
          if (n == 0) {
            ::close(conn.fd);
            conn.fd = -1;
          }
          break;
        }
        const Clock::time_point got = Clock::now();
        const auto complete_one = [&]() {
          ++local;
          if (conn.inflight > 0) --conn.inflight;
          if (!conn.sent.empty()) {
            latencies.push_back(std::chrono::duration<double, std::micro>(
                                    got - conn.sent.front())
                                    .count());
            conn.sent.pop_front();
          }
        };
        if (binary) {
          conn.rx.append(chunk, static_cast<std::size_t>(n));
          std::size_t frame_end = 0;
          std::string_view payload;
          while (nws::extract_binary_frame(conn.rx, 1 << 20, frame_end,
                                           payload) ==
                 nws::BinFrameStatus::kFrame) {
            conn.rx.erase(0, frame_end);
            complete_one();
          }
        } else {
          for (ssize_t b = 0; b < n; ++b) {
            if (chunk[b] == '\n') complete_one();
          }
        }
      }
    }
  }
  responses += local;
  for (SweepConn& conn : conns) {
    if (conn.fd >= 0) ::close(conn.fd);
    conn.fd = -1;
  }
}

SweepCell run_sweep_cell(std::size_t requested, bool binary,
                         nws::NetBackend backend, std::size_t dispatchers,
                         rlim_t fd_limit,
                         std::chrono::milliseconds duration) {
  SweepCell cell;
  cell.requested = requested;
  cell.binary = binary;
  cell.backend = backend;
  cell.dispatchers = dispatchers;
  std::size_t target = requested;
  const std::size_t capacity = connection_capacity(fd_limit);
  if (target > capacity) {
    print_ulimit_hint(requested, fd_limit);
    target = capacity;
    cell.clamped = true;
  }

  nws::ServerConfig config;
  config.net_backend = backend;
  config.dispatchers = dispatchers;
  config.idle_timeout_ms = 0;  // sweep connections may sit between passes
  nws::NwsServer server(config);
  const std::uint16_t port = server.start(0);
  if (port == 0) {
    std::cerr << "net_throughput: cannot bind loopback listener\n";
    return cell;
  }

  const std::size_t drivers =
      std::min<std::size_t>(std::max(1u, std::thread::hardware_concurrency()),
                            8);
  std::vector<std::vector<SweepConn>> pools(drivers);
  const bool spread_src = target > 20000;
  std::size_t established = 0;
  for (std::size_t i = 0; i < target; ++i) {
    const int fd = open_sweep_conn(port, i, spread_src, binary);
    if (fd < 0) {
      std::cerr << "net_throughput: connection " << i << " failed ("
                << std::strerror(errno)
                << "); driving the " << established
                << " established connections.\n";
      cell.clamped = true;
      break;
    }
    pools[i % drivers].push_back(SweepConn{fd, {}, {}, 0, 0.0, {}});
    ++established;
  }
  cell.established = established;
  if (established == 0) {
    server.stop();
    return cell;
  }

  std::atomic<std::uint64_t> responses{0};
  std::atomic<bool> stop_flag{false};
  std::latch ready(static_cast<std::ptrdiff_t>(drivers) + 1);
  std::vector<std::vector<double>> latencies(drivers);
  std::vector<std::thread> threads;
  threads.reserve(drivers);
  std::size_t series_base = 0;
  for (std::size_t d = 0; d < drivers; ++d) {
    threads.emplace_back(sweep_driver, std::ref(pools[d]), binary, series_base,
                         std::ref(ready), std::ref(stop_flag),
                         std::ref(responses), std::ref(latencies[d]));
    series_base += pools[d].size();
  }
  ready.arrive_and_wait();
  const Clock::time_point begin = Clock::now();
  std::this_thread::sleep_for(duration);
  stop_flag.store(true);
  for (std::thread& thread : threads) thread.join();
  cell.seconds = std::chrono::duration<double>(Clock::now() - begin).count();
  cell.responses = responses.load();
  merge_percentiles(latencies, cell.p50_us, cell.p99_us);
  server.stop();
  return cell;
}

// ---------------------------------------------------------------------------
// Part 3: router tier — N single-shard backends behind one nws::Router,
// versus one direct single-shard server at the same client count.

struct RouterCell {
  std::size_t backends = 0;  ///< 0 = direct baseline (no router hop)
  std::size_t dispatchers = 1;  ///< router dispatcher planes (1 for direct)
  bool binary = false;
  std::uint64_t measurements = 0;
  std::uint64_t round_trips = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;

  [[nodiscard]] double per_sec() const {
    return seconds > 0.0 ? static_cast<double>(measurements) / seconds : 0.0;
  }
};

/// One routed cell: fresh single-shard backends, a router in front, PUTB
/// traffic from `connections` clients through the proxy.  Clients hash
/// across distinct series, so the keyspace spreads over the ring and every
/// backend takes a share of the write load.
RouterCell run_router_cell(std::size_t backend_count, std::size_t dispatchers,
                           bool binary, std::size_t connections,
                           std::size_t batch_size,
                           std::chrono::milliseconds duration) {
  RouterCell cell;
  cell.backends = backend_count;
  cell.dispatchers = dispatchers;
  cell.binary = binary;
  std::vector<std::unique_ptr<nws::NwsServer>> fleet;
  std::string spec;
  for (std::size_t b = 0; b < backend_count; ++b) {
    nws::ServerConfig config;
    config.shards = 1;
    auto server = std::make_unique<nws::NwsServer>(config);
    const std::uint16_t port = server->start(0);
    if (port == 0) {
      std::cerr << "net_throughput: cannot bind backend listener\n";
      return cell;
    }
    if (!spec.empty()) spec += ',';
    spec += std::to_string(port);
    fleet.push_back(std::move(server));
  }
  nws::RouterConfig rcfg;
  rcfg.backends = spec;
  rcfg.dispatchers = dispatchers;
  nws::Router router(rcfg);
  if (!router.start(0)) {
    std::cerr << "net_throughput: cannot start router\n";
    return cell;
  }
  const DriveStats stats = drive_clients(router.port(), Mode::kPutBatch,
                                         binary, connections, batch_size,
                                         duration);
  cell.measurements = stats.measurements;
  cell.round_trips = stats.round_trips;
  cell.seconds = stats.seconds;
  cell.p50_us = stats.p50_us;
  cell.p99_us = stats.p99_us;
  router.stop();
  for (auto& server : fleet) server->stop();
  return cell;
}

/// The direct baseline for the router table: same clients, same PUTB
/// traffic, one single-shard server, no proxy hop.
RouterCell run_direct_cell(bool binary, std::size_t connections,
                           std::size_t batch_size,
                           std::chrono::milliseconds duration) {
  RouterCell cell;
  cell.binary = binary;
  const Result direct = run_scenario(
      {Mode::kPutBatch, connections, 1, binary}, batch_size, duration);
  cell.measurements = direct.measurements;
  cell.round_trips = direct.round_trips;
  cell.seconds = direct.seconds;
  cell.p50_us = direct.p50_us;
  cell.p99_us = direct.p99_us;
  return cell;
}

}  // namespace

int main() {
  const rlim_t fd_limit = raise_fd_limit();
  const std::size_t batch_size = env_size("NWSCPU_NET_BATCH", 256);
  const auto duration =
      std::chrono::milliseconds(env_size("NWSCPU_NET_MS", 400));
  const auto sweep_duration =
      std::chrono::milliseconds(env_size("NWSCPU_NET_SWEEP_MS", 300));
  const std::vector<std::size_t> sweep_conns =
      env_size_list("NWSCPU_NET_CONNS", "1000,5000");
  const std::vector<std::size_t> sweep_dispatchers =
      env_size_list("NWSCPU_NET_DISPATCHERS", "1");
  const std::vector<std::size_t> router_backends =
      env_size_list("NWSCPU_ROUTER_SWEEP", "1,2,4");
  const std::size_t router_conns = env_size("NWSCPU_ROUTER_CONNS", 8);
  const auto router_duration = std::chrono::milliseconds(env_size(
      "NWSCPU_ROUTER_MS", static_cast<std::size_t>(duration.count())));

  // Scenario order is fixed: the headline-ratio indices below depend on it.
  const std::vector<Scenario> scenarios = {
      {Mode::kPut, 1, 1},      {Mode::kPut, 8, 1},    {Mode::kPut, 8, 8},
      {Mode::kPutBatch, 1, 1}, {Mode::kPutBatch, 8, 8},
      {Mode::kMixed, 8, 8},
      {Mode::kPutBatch, 8, 8, /*binary=*/true},
      {Mode::kPut, 8, 8, /*binary=*/true},
      {Mode::kPutBatch, 1, 1, /*binary=*/true},
      // Replay cells use large batches (a reconnecting outbox drains its
      // whole backlog in maximal lines); both wire forms stay under the
      // 64 KiB frame/line cap at 2048 samples.
      {Mode::kReplay, 1, 1, /*binary=*/false, /*batch=*/2048},
      {Mode::kReplay, 1, 1, /*binary=*/true, /*batch=*/2048},
      // Dispatcher scaling (appended; earlier indices stay fixed).  The
      // replay cell is dispatcher-bound — dup-skipped batches keep the
      // shard workers nearly idle, so byte-moving is the whole cost and
      // the 4-dispatcher/1-dispatcher ratio isolates the accept-sharded
      // multi-loop plane.  Flat on a 1-core box; hw_concurrency is
      // recorded in every cell so that reads as machine, not regression.
      {Mode::kReplay, 8, 8, /*binary=*/true, /*batch=*/2048,
       /*dispatchers=*/1},
      {Mode::kReplay, 8, 8, /*binary=*/true, /*batch=*/2048,
       /*dispatchers=*/4},
  };

  std::vector<Result> results;
  results.reserve(scenarios.size());
  std::cout << "net_throughput: " << duration.count() << " ms/scenario, PUTB "
            << batch_size << " samples/line, hw_concurrency "
            << std::thread::hardware_concurrency() << ", RLIMIT_NOFILE "
            << fd_limit << "\n";
  std::cout << "mode   wire conns shards disp   measurements/s   round-trips/s"
               "   p50_us   p99_us\n";
  for (const Scenario& scenario : scenarios) {
    const Result result = run_scenario(scenario, batch_size, duration);
    results.push_back(result);
    std::printf("%-6s %-4s %5zu %6zu %4zu %16.0f %15.0f %8.0f %8.0f\n",
                mode_name(scenario.mode), scenario.binary ? "bin" : "text",
                scenario.connections, scenario.shards, scenario.dispatchers,
                result.per_sec(),
                result.seconds > 0.0
                    ? static_cast<double>(result.round_trips) / result.seconds
                    : 0.0,
                result.p50_us, result.p99_us);
  }

  // Headline ratios: scenario order above is fixed, so index directly.
  const double unbatched_gain = ratio(results[2], results[0]);
  const double batched_gain = ratio(results[4], results[0]);
  const double putb_bin_vs_text = ratio(results[6], results[4]);
  const double put_bin_vs_text = ratio(results[7], results[2]);
  const double putb_bin_vs_text_1c = ratio(results[8], results[3]);
  const double replay_bin_vs_text = ratio(results[10], results[9]);
  const double putb_4d_vs_1d = ratio(results[12], results[11]);
  std::printf("aggregate 8c/8s vs 1c/1s: unbatched %.2fx, batched %.2fx\n",
              unbatched_gain, batched_gain);
  std::printf("binary vs text putb (full apply): %.2fx at 1c/1s, %.2fx at "
              "8c/8s\n",
              putb_bin_vs_text_1c, putb_bin_vs_text);
  std::printf("binary vs text putb replay (wire-bound): %.2fx at 1c/1s\n",
              replay_bin_vs_text);
  std::printf("binary vs text put at 8c/8s: %.2fx\n", put_bin_vs_text);
  std::printf(
      "putb replay 4 dispatchers vs 1 at 8c/8s: %.2fx (hw_concurrency %u)\n",
      putb_4d_vs_1d, std::thread::hardware_concurrency());

  std::vector<SweepCell> sweep;
  std::cout << "connection sweep: " << sweep_duration.count()
            << " ms/cell, one PUT round-robin per connection\n";
  std::cout << "backend wire  disp  requested established    responses/s"
               "   p50_us   p99_us\n";
  for (const std::size_t conns : sweep_conns) {
    for (const nws::NetBackend backend :
         {nws::NetBackend::kEpoll, nws::NetBackend::kPoll}) {
      for (const bool binary : {false, true}) {
        for (const std::size_t disp : sweep_dispatchers) {
          const SweepCell cell = run_sweep_cell(conns, binary, backend, disp,
                                                fd_limit, sweep_duration);
          sweep.push_back(cell);
          std::printf("%-7s %-5s %4zu %10zu %11zu %14.0f %8.0f %8.0f%s\n",
                      backend_name(backend), binary ? "bin" : "text",
                      cell.dispatchers, cell.requested, cell.established,
                      cell.per_sec(), cell.p50_us, cell.p99_us,
                      cell.clamped ? "  (clamped)" : "");
        }
      }
    }
  }

  // Part 3: the router tier.  PUTB through the proxy at each backend count,
  // against a direct single-shard server driven by the same client fleet.
  std::vector<RouterCell> router_cells;
  std::cout << "router tier: " << router_duration.count() << " ms/cell, "
            << router_conns << " clients, PUTB " << batch_size
            << " samples/line (2-backend vs direct is the headline; "
               "parallel speedup needs >= 2 cores)\n";
  std::cout << "target        wire backends disp   measurements/s   p50_us"
               "   p99_us\n";
  double direct_per_sec[2] = {0.0, 0.0};
  double routed_2b_per_sec[2] = {0.0, 0.0};
  for (const bool binary : {false, true}) {
    const RouterCell direct =
        run_direct_cell(binary, router_conns, batch_size, router_duration);
    direct_per_sec[binary ? 1 : 0] = direct.per_sec();
    router_cells.push_back(direct);
    std::printf("direct        %-4s %8s %4zu %16.0f %8.0f %8.0f\n",
                binary ? "bin" : "text", "-", direct.dispatchers,
                direct.per_sec(), direct.p50_us, direct.p99_us);
    for (const std::size_t disp : sweep_dispatchers) {
      for (const std::size_t backends : router_backends) {
        const RouterCell cell =
            run_router_cell(backends, disp, binary, router_conns, batch_size,
                            router_duration);
        if (backends == 2 && disp == sweep_dispatchers.front()) {
          routed_2b_per_sec[binary ? 1 : 0] = cell.per_sec();
        }
        router_cells.push_back(cell);
        std::printf("router        %-4s %8zu %4zu %16.0f %8.0f %8.0f\n",
                    binary ? "bin" : "text", backends, cell.dispatchers,
                    cell.per_sec(), cell.p50_us, cell.p99_us);
      }
    }
  }
  const double router_2b_vs_direct_text =
      direct_per_sec[0] > 0.0 ? routed_2b_per_sec[0] / direct_per_sec[0] : 0.0;
  const double router_2b_vs_direct_bin =
      direct_per_sec[1] > 0.0 ? routed_2b_per_sec[1] / direct_per_sec[1] : 0.0;
  std::printf("routed 2 backends vs direct: text %.2fx, binary %.2fx\n",
              router_2b_vs_direct_text, router_2b_vs_direct_bin);

  const std::string path = nws::bench::output_dir() + "/BENCH_net.json";
  std::ofstream json(path, std::ios::trunc);
  json << "{\n  \"bench\": \"net_throughput\",\n";
  json << "  \"hw_concurrency\": " << std::thread::hardware_concurrency()
       << ",\n";
  json << "  \"fd_limit\": " << fd_limit << ",\n";
  json << "  \"duration_ms\": " << duration.count() << ",\n";
  json << "  \"putb_batch\": " << batch_size << ",\n";
  json << "  \"scenarios\": [\n";
  const unsigned hw = std::thread::hardware_concurrency();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    json << "    {\"mode\": \"" << mode_name(r.scenario.mode)
         << "\", \"wire\": \"" << (r.scenario.binary ? "binary" : "text")
         << "\", \"connections\": " << r.scenario.connections
         << ", \"shards\": " << r.scenario.shards
         << ", \"dispatchers\": " << r.scenario.dispatchers
         << ", \"backends\": 1"
         << ", \"hw_concurrency\": " << hw
         << ", \"measurements\": " << r.measurements
         << ", \"round_trips\": " << r.round_trips
         << ", \"seconds\": " << r.seconds
         << ", \"measurements_per_sec\": " << r.per_sec()
         << ", \"latency_p50_us\": " << r.p50_us
         << ", \"latency_p99_us\": " << r.p99_us << "}"
         << (i + 1 < results.size() ? ",\n" : "\n");
  }
  json << "  ],\n";
  json << "  \"sweep_duration_ms\": " << sweep_duration.count() << ",\n";
  json << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepCell& c = sweep[i];
    json << "    {\"backend\": \"" << backend_name(c.backend)
         << "\", \"wire\": \"" << (c.binary ? "binary" : "text")
         << "\", \"dispatchers\": " << c.dispatchers
         << ", \"backends\": 1"
         << ", \"hw_concurrency\": " << hw
         << ", \"connections_requested\": " << c.requested
         << ", \"connections\": " << c.established
         << ", \"clamped\": " << (c.clamped ? "true" : "false")
         << ", \"responses\": " << c.responses
         << ", \"seconds\": " << c.seconds
         << ", \"responses_per_sec\": " << c.per_sec()
         << ", \"latency_p50_us\": " << c.p50_us
         << ", \"latency_p99_us\": " << c.p99_us << "}"
         << (i + 1 < sweep.size() ? ",\n" : "\n");
  }
  json << "  ],\n";
  json << "  \"put_8c8s_vs_1c1s\": " << unbatched_gain << ",\n";
  json << "  \"putb_8c8s_vs_1c1s\": " << batched_gain << ",\n";
  json << "  \"putb_bin_vs_text_8c8s\": " << putb_bin_vs_text << ",\n";
  json << "  \"putb_bin_vs_text_1c1s\": " << putb_bin_vs_text_1c << ",\n";
  json << "  \"putb_replay_bin_vs_text_1c1s\": " << replay_bin_vs_text
       << ",\n";
  json << "  \"put_bin_vs_text_8c8s\": " << put_bin_vs_text << ",\n";
  json << "  \"putb_replay_4d_vs_1d_8c8s\": " << putb_4d_vs_1d << "\n";
  json << "}\n";
  json.close();
  std::cout << "wrote " << path << "\n";

  const std::string router_path =
      nws::bench::output_dir() + "/BENCH_router.json";
  std::ofstream rjson(router_path, std::ios::trunc);
  rjson << "{\n  \"bench\": \"router_throughput\",\n";
  rjson << "  \"hw_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n";
  rjson << "  \"duration_ms\": " << router_duration.count() << ",\n";
  rjson << "  \"putb_batch\": " << batch_size << ",\n";
  rjson << "  \"connections\": " << router_conns << ",\n";
  rjson << "  \"cells\": [\n";
  for (std::size_t i = 0; i < router_cells.size(); ++i) {
    const RouterCell& c = router_cells[i];
    rjson << "    {\"target\": \"" << (c.backends == 0 ? "direct" : "router")
          << "\", \"wire\": \"" << (c.binary ? "binary" : "text")
          << "\", \"backends\": " << c.backends
          << ", \"dispatchers\": " << c.dispatchers
          << ", \"hw_concurrency\": " << hw
          << ", \"measurements\": " << c.measurements
          << ", \"round_trips\": " << c.round_trips
          << ", \"seconds\": " << c.seconds
          << ", \"measurements_per_sec\": " << c.per_sec()
          << ", \"latency_p50_us\": " << c.p50_us
          << ", \"latency_p99_us\": " << c.p99_us << "}"
          << (i + 1 < router_cells.size() ? ",\n" : "\n");
  }
  rjson << "  ],\n";
  rjson << "  \"router_2b_vs_direct_text\": " << router_2b_vs_direct_text
        << ",\n";
  rjson << "  \"router_2b_vs_direct_binary\": " << router_2b_vs_direct_bin
        << "\n";
  rjson << "}\n";
  rjson.close();
  std::cout << "wrote " << router_path << "\n";
  return 0;
}

// net_throughput: multi-client loopback saturation bench for the sharded
// NWS service.
//
// Spawns C concurrent clients against one NwsServer configured with K
// shards and measures aggregate measurement throughput for a fixed wall
// duration, across three request shapes:
//   put   — one PUT round trip per measurement (the pre-batching wire),
//   putb  — PUTB batches of NWSCPU_NET_BATCH measurements per round trip,
//   mixed — PUT with a FORECAST every 8th request (scheduler traffic).
// Each client drives its own series, so series spread across shards and
// the shard-per-core server can serve them without lock contention.
//
// Output: human-readable table on stdout plus machine-readable
// BENCH_net.json in NWSCPU_OUT (default bench_out/), including the
// headline ratios the perf work is judged by: aggregate throughput at
// 8 connections / 8 shards versus the single-connection single-shard
// baseline, for both the unbatched and batched wire.
//
// Knobs: NWSCPU_NET_MS (per-scenario duration, default 400),
// NWSCPU_NET_BATCH (PUTB batch size, default 256).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include "common/experiment_common.hpp"
#include "nws/client.hpp"
#include "nws/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(value, &end, 10);
    if (end != value && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return fallback;
}

enum class Mode { kPut, kPutBatch, kMixed };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kPut:
      return "put";
    case Mode::kPutBatch:
      return "putb";
    case Mode::kMixed:
      return "mixed";
  }
  return "?";
}

struct Scenario {
  Mode mode;
  std::size_t connections;
  std::size_t shards;
};

struct Result {
  Scenario scenario;
  std::uint64_t measurements = 0;  ///< samples applied across all clients
  std::uint64_t round_trips = 0;
  double seconds = 0.0;

  [[nodiscard]] double per_sec() const {
    return seconds > 0.0 ? static_cast<double>(measurements) / seconds : 0.0;
  }
};

/// One client thread: drive `series` for `duration`, tallying applied
/// measurements and round trips.
void client_loop(std::uint16_t port, Mode mode, const std::string& series,
                 std::size_t batch_size, std::chrono::milliseconds duration,
                 std::latch& ready, std::atomic<std::uint64_t>& measurements,
                 std::atomic<std::uint64_t>& round_trips) {
  nws::NwsClient client;
  if (!client.connect(port)) {
    ready.arrive_and_wait();
    return;
  }
  double t = 0.0;
  std::uint64_t seq = 1;
  std::vector<nws::Measurement> batch(batch_size);
  // Prime the series so FORECAST in mixed mode always has history.
  t += 1.0;
  (void)client.put(series, {t, 0.5});

  ready.arrive_and_wait();
  const Clock::time_point deadline = Clock::now() + duration;
  std::uint64_t local_meas = 0;
  std::uint64_t local_rtts = 0;
  while (Clock::now() < deadline) {
    switch (mode) {
      case Mode::kPut: {
        t += 1.0;
        if (client.put(series, {t, 0.5})) ++local_meas;
        ++local_rtts;
        break;
      }
      case Mode::kPutBatch: {
        for (std::size_t i = 0; i < batch_size; ++i) {
          t += 1.0;
          batch[i] = {t, 0.5};
        }
        const auto reply = client.put_batch(series, batch, seq);
        seq += batch_size;
        if (reply) local_meas += reply->applied;
        ++local_rtts;
        break;
      }
      case Mode::kMixed: {
        for (int i = 0; i < 7; ++i) {
          t += 1.0;
          if (client.put(series, {t, 0.5})) ++local_meas;
          ++local_rtts;
        }
        (void)client.forecast(series);
        ++local_rtts;
        break;
      }
    }
  }
  measurements += local_meas;
  round_trips += local_rtts;
  client.disconnect();
}

Result run_scenario(const Scenario& scenario, std::size_t batch_size,
                    std::chrono::milliseconds duration) {
  nws::ServerConfig config;
  config.shards = scenario.shards;
  nws::NwsServer server(config);
  Result result{scenario, 0, 0, 0.0};
  const std::uint16_t port = server.start(0);
  if (port == 0) {
    std::cerr << "net_throughput: cannot bind loopback listener\n";
    return result;
  }
  std::atomic<std::uint64_t> measurements{0};
  std::atomic<std::uint64_t> round_trips{0};
  std::latch ready(static_cast<std::ptrdiff_t>(scenario.connections) + 1);
  std::vector<std::thread> threads;
  threads.reserve(scenario.connections);
  for (std::size_t c = 0; c < scenario.connections; ++c) {
    threads.emplace_back(client_loop, port, scenario.mode,
                         "bench/host" + std::to_string(c) + "/cpu",
                         batch_size, duration, std::ref(ready),
                         std::ref(measurements), std::ref(round_trips));
  }
  ready.arrive_and_wait();
  const Clock::time_point begin = Clock::now();
  for (std::thread& thread : threads) thread.join();
  result.seconds = std::chrono::duration<double>(Clock::now() - begin).count();
  result.measurements = measurements.load();
  result.round_trips = round_trips.load();
  server.stop();
  return result;
}

double ratio(const Result& a, const Result& b) {
  return b.per_sec() > 0.0 ? a.per_sec() / b.per_sec() : 0.0;
}

}  // namespace

int main() {
  const std::size_t batch_size = env_size("NWSCPU_NET_BATCH", 256);
  const auto duration =
      std::chrono::milliseconds(env_size("NWSCPU_NET_MS", 400));

  const std::vector<Scenario> scenarios = {
      {Mode::kPut, 1, 1},      {Mode::kPut, 8, 1},    {Mode::kPut, 8, 8},
      {Mode::kPutBatch, 1, 1}, {Mode::kPutBatch, 8, 8},
      {Mode::kMixed, 8, 8},
  };

  std::vector<Result> results;
  results.reserve(scenarios.size());
  std::cout << "net_throughput: " << duration.count() << " ms/scenario, PUTB "
            << batch_size << " samples/line, hw_concurrency "
            << std::thread::hardware_concurrency() << "\n";
  std::cout << "mode   conns shards   measurements/s   round-trips/s\n";
  for (const Scenario& scenario : scenarios) {
    const Result result = run_scenario(scenario, batch_size, duration);
    results.push_back(result);
    std::printf("%-6s %5zu %6zu %16.0f %15.0f\n", mode_name(scenario.mode),
                scenario.connections, scenario.shards, result.per_sec(),
                result.seconds > 0.0
                    ? static_cast<double>(result.round_trips) / result.seconds
                    : 0.0);
  }

  // Headline ratios: scenario order above is fixed, so index directly.
  const double unbatched_gain = ratio(results[2], results[0]);
  const double batched_gain = ratio(results[4], results[0]);
  std::printf("aggregate 8c/8s vs 1c/1s: unbatched %.2fx, batched %.2fx\n",
              unbatched_gain, batched_gain);

  const std::string path = nws::bench::output_dir() + "/BENCH_net.json";
  std::ofstream json(path, std::ios::trunc);
  json << "{\n  \"bench\": \"net_throughput\",\n";
  json << "  \"hw_concurrency\": " << std::thread::hardware_concurrency()
       << ",\n";
  json << "  \"duration_ms\": " << duration.count() << ",\n";
  json << "  \"putb_batch\": " << batch_size << ",\n";
  json << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    json << "    {\"mode\": \"" << mode_name(r.scenario.mode)
         << "\", \"connections\": " << r.scenario.connections
         << ", \"shards\": " << r.scenario.shards
         << ", \"measurements\": " << r.measurements
         << ", \"round_trips\": " << r.round_trips
         << ", \"seconds\": " << r.seconds
         << ", \"measurements_per_sec\": " << r.per_sec() << "}"
         << (i + 1 < results.size() ? ",\n" : "\n");
  }
  json << "  ],\n";
  json << "  \"put_8c8s_vs_1c1s\": " << unbatched_gain << ",\n";
  json << "  \"putb_8c8s_vs_1c1s\": " << batched_gain << "\n";
  json << "}\n";
  json.close();
  std::cout << "wrote " << path << "\n";
  return 0;
}

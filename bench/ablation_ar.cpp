// Ablation: does adding an AR(p) model to the NWS battery help?
//
// Dinda & O'Halloran's follow-up work (the paper's closest related work)
// found AR(16) to be the best practical predictor of Unix host load.  This
// bench evaluates AR(4/16/32) alone, the canonical NWS battery, and the
// battery *with* AR(16) added to the selection pool, on every host's
// load-average series.
#include <cstdio>
#include <iostream>

#include "common/experiment_common.hpp"
#include "forecast/ar.hpp"
#include "forecast/battery.hpp"
#include "forecast/evaluate.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;

  std::cout << "Ablation: AR models vs the NWS battery (one-step MAE, "
            << experiment_hours() << "h runs)\n\n";
  const auto fleet = run_fleet(short_test_config());

  std::printf("  %-10s %9s %9s %9s %10s %12s\n", "host", "ar(4)", "ar(16)",
              "ar(32)", "battery", "battery+ar");
  for (const auto& result : fleet) {
    const auto xs = result.trace.load_series.values();
    const double ar4 = evaluate_forecaster(ArForecaster(4), xs).mae;
    const double ar16 = evaluate_forecaster(ArForecaster(16), xs).mae;
    const double ar32 = evaluate_forecaster(ArForecaster(32), xs).mae;
    const double battery =
        evaluate_forecaster(*make_nws_forecaster(), xs).mae;
    auto methods = make_nws_methods();
    methods.push_back(std::make_unique<ArForecaster>(16));
    const AdaptiveForecaster extended(std::move(methods));
    const double battery_ar = evaluate_forecaster(extended, xs).mae;
    std::printf("  %-10s %8.2f%% %8.2f%% %8.2f%% %9.2f%% %11.2f%%\n",
                host_name(result.host).c_str(), 100 * ar4, 100 * ar16,
                100 * ar32, 100 * battery, 100 * battery_ar);
  }
  std::cout << "\nShape check: AR competes with (sometimes beats) the "
               "battery on smooth hosts; adding it to the selection pool "
               "never hurts by more than the selection overhead — the "
               "adaptive design absorbs new methods gracefully.\n";
  return 0;
}

// Ablation: hybrid probe duration vs the kongo pathology, and probe bias
// vs the conundrum pathology.
//
// The paper attributes kongo's 41% hybrid error to the 1.5 s probe being
// too short to contend with a resident full-priority job (BSD priority
// decay lets the fresh probe win), and notes the fix — a longer probe —
// costs intrusiveness.  It attributes conundrum's *success* to the probe
// bias.  This bench quantifies both knobs.
#include <cstdio>
#include <iostream>

#include "common/experiment_common.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;

  std::cout << "Ablation A: probe duration sweep on kongo (hybrid "
               "measurement error vs probe length)\n\n";
  std::printf("  %10s %18s %15s\n", "probe (s)", "hybrid T1 error",
              "intrusiveness");
  for (const double probe_s : {0.5, 1.5, 3.0, 5.0, 8.0}) {
    RunnerConfig cfg = short_test_config();
    cfg.probe_duration = probe_s;
    auto host = make_ucsd_host(UcsdHost::kKongo, experiment_seed());
    const HostTrace trace = run_experiment(*host, cfg);
    const MethodTriple err = measurement_error(trace);
    std::printf("  %10.1f %17.1f%% %14.1f%%\n", probe_s, 100 * err.hybrid,
                100 * probe_s / cfg.probe_period);
  }
  std::cout << "\n  Shape check: the error collapses once the probe lives "
               "long enough for its p_estcpu to saturate and share with "
               "the resident job — at the price of a proportionally "
               "larger CPU overhead.\n";

  std::cout << "\nAblation B: probe bias on/off on conundrum (hybrid "
               "measurement error)\n\n";
  for (const bool bias : {true, false}) {
    RunnerConfig cfg = short_test_config();
    cfg.hybrid_apply_bias = bias;
    auto host = make_ucsd_host(UcsdHost::kConundrum, experiment_seed());
    const HostTrace trace = run_experiment(*host, cfg);
    const MethodTriple err = measurement_error(trace);
    std::printf("  bias %-3s  hybrid %5.1f%%  (load average %5.1f%%, "
                "vmstat %5.1f%%)\n",
                bias ? "ON" : "OFF", 100 * err.hybrid,
                100 * err.load_average, 100 * err.vmstat);
  }
  std::cout << "\n  Shape check: without the bias the hybrid degenerates "
               "to the cheap methods' nice-19 blindness.\n";
  return 0;
}

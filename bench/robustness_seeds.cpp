// Robustness: do the paper's headline shapes hold across random seeds, or
// did the reproduction get lucky?
//
// Re-runs shortened (4 h) versions of the Table 1 / Table 3 experiments
// under several seeds and reports, per shape claim, how many seeds satisfy
// it.  A claim that only holds for the default seed would be a red flag
// for the whole reproduction.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/experiment_common.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;
  const std::vector<std::uint64_t> seeds = {1, 7, 42, 1999, 20260705};

  std::cout << "Robustness: shape claims across " << seeds.size()
            << " seeds (4h runs)\n\n";

  struct Claim {
    const char* text;
    int held = 0;
  };
  Claim claims[] = {
      {"conundrum: cheap-method error > 3x hybrid error"},
      {"kongo: hybrid error > 2x cheap-method error"},
      {"ordinary hosts: all measurement errors < 17%"},
      {"all hosts: one-step prediction error < 7%"},
      {"prediction error < measurement error on pathological hosts"},
  };

  // Every (seed, host) cell is an independent deterministic simulation:
  // fan the full cross product out across NWSCPU_JOBS threads and keep
  // the claim evaluation (below) serial and in seed order.
  const auto& hosts = all_ucsd_hosts();
  RunnerConfig cfg;
  cfg.duration = 4.0 * 3600.0;
  struct Cell {
    MethodTriple t1;
    MethodTriple t3;
  };
  std::vector<Cell> cells(seeds.size() * hosts.size());
  std::fprintf(stderr, "simulating %zu seed x host runs across %zu threads\n",
               cells.size(),
               std::min(ThreadPool::default_jobs(), cells.size()));
  parallel_for(cells.size(), [&](std::size_t k) {
    const std::uint64_t seed = seeds[k / hosts.size()];
    const UcsdHost h = hosts[k % hosts.size()];
    auto host = make_ucsd_host(h, seed);
    const HostTrace trace = run_experiment(*host, cfg);
    cells[k] = {measurement_error(trace), prediction_error(trace)};
  });

  for (std::size_t s = 0; s < seeds.size(); ++s) {
    MethodTriple t1[6];
    MethodTriple t3[6];
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      t1[i] = cells[s * hosts.size() + i].t1;
      t3[i] = cells[s * hosts.size() + i].t3;
    }
    // Indices in all_ucsd_hosts order: thing2, thing1, conundrum, beowulf,
    // gremlin, kongo.
    const MethodTriple& conundrum1 = t1[2];
    const MethodTriple& kongo1 = t1[5];

    claims[0].held += conundrum1.load_average > 3.0 * conundrum1.hybrid &&
                      conundrum1.vmstat > 3.0 * conundrum1.hybrid;
    claims[1].held += kongo1.hybrid > 2.0 * kongo1.load_average &&
                      kongo1.hybrid > 2.0 * kongo1.vmstat;
    bool ordinary_ok = true;
    for (const std::size_t i : {0u, 1u, 3u, 4u}) {
      ordinary_ok &= t1[i].load_average < 0.17 && t1[i].vmstat < 0.17 &&
                     t1[i].hybrid < 0.17;
    }
    claims[2].held += ordinary_ok;
    bool prediction_ok = true;
    for (const auto& p : t3) {
      prediction_ok &=
          p.load_average < 0.07 && p.vmstat < 0.07 && p.hybrid < 0.07;
    }
    claims[3].held += prediction_ok;
    claims[4].held +=
        t3[2].load_average < t1[2].load_average &&
        t3[5].hybrid < t1[5].hybrid;
  }

  bool all_robust = true;
  for (const Claim& c : claims) {
    std::printf("  %-58s %d/%zu seeds\n", c.text, c.held, seeds.size());
    all_robust &= c.held == static_cast<int>(seeds.size());
  }
  std::printf("\n%s\n", all_robust
                            ? "All shape claims hold for every seed."
                            : "WARNING: some claims are seed-sensitive.");
  return 0;
}

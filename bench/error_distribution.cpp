// Beyond the paper: the *distribution* of measurement and true-forecast
// errors, not just their means.
//
// The paper reports mean absolute errors; a scheduler also cares about the
// tail (a 95th-percentile error of 40% means one placement in twenty is
// badly wrong even when the mean looks fine).  This bench reports p50 /
// p90 / p95 / max of |measurement - test observation| per host for the
// best cheap method and the hybrid.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/experiment_common.hpp"
#include "util/stats.hpp"

namespace {

std::vector<double> absolute_errors(const nws::TimeSeries& series,
                                    const std::vector<nws::TestObservation>&
                                        tests) {
  std::vector<double> out;
  out.reserve(tests.size());
  for (const auto& t : tests) {
    const std::size_t i = series.index_at_or_before(t.start);
    if (i == nws::TimeSeries::npos) continue;
    out.push_back(std::abs(series[i] - t.availability));
  }
  return out;
}

void print_row(const char* host, const char* method,
               const std::vector<double>& errors) {
  if (errors.empty()) return;
  std::printf("  %-10s %-8s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", host,
              method, 100 * nws::mean_abs(errors),
              100 * nws::quantile(errors, 0.5),
              100 * nws::quantile(errors, 0.9),
              100 * nws::quantile(errors, 0.95),
              100 * nws::max_value(errors));
}

}  // namespace

int main() {
  using namespace nws;
  using namespace nws::bench;

  std::cout << "Error distributions: measurement error percentiles per "
               "host ("
            << experiment_hours() << "h runs)\n\n";
  const auto fleet = run_fleet(short_test_config());

  std::printf("  %-10s %-8s %8s %8s %8s %8s %8s\n", "host", "method", "mean",
              "p50", "p90", "p95", "max");
  for (const auto& result : fleet) {
    print_row(host_name(result.host).c_str(), "loadavg",
              absolute_errors(result.trace.load_series, result.trace.tests));
    print_row(host_name(result.host).c_str(), "vmstat",
              absolute_errors(result.trace.vmstat_series,
                              result.trace.tests));
    print_row(host_name(result.host).c_str(), "hybrid",
              absolute_errors(result.trace.hybrid_series,
                              result.trace.tests));
  }
  std::cout << "\nShape checks: on pathological host/method pairs "
               "(conundrum cheap methods, kongo hybrid) even the MEDIAN "
               "error is large — the bias is systematic, not an outlier "
               "tail; on ordinary hosts the p95 stays within ~3x the "
               "mean.\n";
  return 0;
}

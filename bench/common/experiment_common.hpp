// Shared driver for the table/figure reproduction binaries.
//
// Each bench target reproduces one table or figure of the paper.  They all
// simulate the same six-host fleet under the paper's measurement protocol;
// this header centralises the protocol configurations, the fleet runner and
// the published values that the output is compared against.
//
// Environment knobs (for quick iteration; defaults reproduce the paper):
//   NWSCPU_HOURS  — experiment length in hours   (default 24)
//   NWSCPU_SEED   — simulation seed              (default 42)
//   NWSCPU_JOBS   — simulation threads for the fleet fan-out
//                   (default hardware_concurrency; 1 = serial)
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "experiments/analysis.hpp"
#include "experiments/hosts.hpp"
#include "experiments/runner.hpp"
#include "util/table.hpp"

namespace nws::bench {

/// Experiment length in hours; reads NWSCPU_HOURS (default 24).
[[nodiscard]] double experiment_hours();

/// Simulation seed; reads NWSCPU_SEED (default 42).
[[nodiscard]] std::uint64_t experiment_seed();

/// Protocol for the short-test (Tables 1-3) experiment: 10 s availability
/// measurements, 1.5 s probe per minute, 10 s test process every 5 minutes.
[[nodiscard]] RunnerConfig short_test_config();

/// Protocol for the aggregated (Tables 5-6, Figure 4) experiment: as above
/// but the ground truth is a 5-minute test process once per hour.
[[nodiscard]] RunnerConfig aggregated_test_config();

/// Protocol for the self-similarity (Table 4 H column, Figure 3) runs:
/// measurements only, one week by default (NWSCPU_HOURS scales it).
[[nodiscard]] RunnerConfig week_config();

struct HostResult {
  UcsdHost host;
  HostTrace trace;
};

/// Simulates every host in the fleet under `config`, fanning the hosts out
/// across NWSCPU_JOBS threads (results stay in fixed fleet order and are
/// identical to a serial run).  Prints a one-line progress note per host
/// to stderr as each simulation completes.
[[nodiscard]] std::vector<HostResult> run_fleet(const RunnerConfig& config);

/// Published values (paper Tables 1-6), for side-by-side comparison in the
/// bench output.  Indexed in all_ucsd_hosts() order:
/// thing2, thing1, conundrum, beowulf, gremlin, kongo.
struct PaperRow {
  double load_average;
  double vmstat;
  double hybrid;
};

[[nodiscard]] const std::vector<PaperRow>& paper_table1();
[[nodiscard]] const std::vector<PaperRow>& paper_table2();
[[nodiscard]] const std::vector<PaperRow>& paper_table3();
[[nodiscard]] const std::vector<double>& paper_table4_hurst();
[[nodiscard]] const std::vector<PaperRow>& paper_table5();
[[nodiscard]] const std::vector<PaperRow>& paper_table6();

/// Adds a "host / measured (paper)" row trio to a table.
void add_comparison_row(TextTable& table, const std::string& host,
                        const MethodTriple& measured, const PaperRow& paper,
                        int decimals = 1);

/// Directory for figure-series CSV output; honours NWSCPU_OUT (default
/// "bench_out" under the current directory), creating it if needed.
[[nodiscard]] std::string output_dir();

}  // namespace nws::bench

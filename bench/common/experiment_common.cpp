#include "common/experiment_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "experiments/fleet.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace nws::bench {

double experiment_hours() {
  if (const char* env = std::getenv("NWSCPU_HOURS")) {
    const double h = std::atof(env);
    if (h > 0.0) return h;
  }
  return 24.0;
}

std::uint64_t experiment_seed() {
  if (const char* env = std::getenv("NWSCPU_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

RunnerConfig short_test_config() {
  RunnerConfig cfg;
  cfg.duration = experiment_hours() * 3600.0;
  cfg.run_tests = true;
  cfg.run_agg_tests = false;
  return cfg;
}

RunnerConfig aggregated_test_config() {
  RunnerConfig cfg;
  cfg.duration = experiment_hours() * 3600.0;
  cfg.run_tests = false;
  cfg.run_agg_tests = true;
  return cfg;
}

RunnerConfig week_config() {
  RunnerConfig cfg;
  // The paper's pox plots use one-week series; NWSCPU_HOURS scales the
  // default 24 h of the other experiments to 7 x 24 here.
  cfg.duration = experiment_hours() * 7.0 * 3600.0;
  cfg.run_tests = false;
  cfg.run_agg_tests = false;
  return cfg;
}

std::vector<HostResult> run_fleet(const RunnerConfig& config) {
  // One pool task per host (NWSCPU_JOBS threads; 1 = serial fallback).
  // Each host's simulation is seeded from the (host, seed) pair, so the
  // traces are identical to the old serial loop in fixed host order.
  const auto& fleet = all_ucsd_hosts();
  const std::vector<UcsdHost> order(fleet.begin(), fleet.end());
  std::vector<HostTrace> traces = run_fleet_parallel(
      order, experiment_seed(), config, /*jobs=*/0,
      [](UcsdHost h, double wall) {
        obs::log_info("fleet", "simulated %-10s (%.1fs)",
                      host_name(h).c_str(), wall);
      });
  // End-of-run telemetry: the whole pipeline's counters and latency
  // quantiles in one table (probes, forecaster switches, journal, ...).
  if (obs::log_enabled(obs::LogLevel::kInfo) && obs::metrics_enabled()) {
    const std::string table = obs::registry().snapshot().to_table();
    if (!table.empty()) std::fprintf(stderr, "%s", table.c_str());
  }
  std::vector<HostResult> results;
  results.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    results.push_back({order[i], std::move(traces[i])});
  }
  return results;
}

// Published values, transcribed from the paper.
const std::vector<PaperRow>& paper_table1() {
  static const std::vector<PaperRow> rows = {
      {0.090, 0.112, 0.111},  // thing2
      {0.064, 0.075, 0.061},  // thing1
      {0.341, 0.327, 0.044},  // conundrum
      {0.063, 0.065, 0.075},  // beowulf
      {0.040, 0.032, 0.041},  // gremlin
      {0.128, 0.129, 0.413},  // kongo
  };
  return rows;
}

const std::vector<PaperRow>& paper_table2() {
  static const std::vector<PaperRow> rows = {
      {0.089, 0.086, 0.100},  // thing2
      {0.064, 0.070, 0.053},  // thing1
      {0.340, 0.320, 0.043},  // conundrum
      {0.062, 0.068, 0.069},  // beowulf
      {0.040, 0.026, 0.030},  // gremlin
      {0.120, 0.120, 0.410},  // kongo
  };
  return rows;
}

const std::vector<PaperRow>& paper_table3() {
  static const std::vector<PaperRow> rows = {
      {0.012, 0.049, 0.018},  // thing2
      {0.017, 0.031, 0.028},  // thing1
      {0.004, 0.002, 0.002},  // conundrum
      {0.018, 0.031, 0.035},  // beowulf
      {0.010, 0.021, 0.020},  // gremlin
      {0.001, 0.001, 0.001},  // kongo
  };
  return rows;
}

const std::vector<double>& paper_table4_hurst() {
  static const std::vector<double> hurst = {0.70, 0.70, 0.79,
                                            0.82, 0.71, 0.69};
  return hurst;
}

const std::vector<PaperRow>& paper_table5() {
  static const std::vector<PaperRow> rows = {
      {0.024, 0.017, 0.013},  // thing2
      {0.049, 0.035, 0.039},  // thing1
      {0.007, 0.002, 0.003},  // conundrum
      {0.034, 0.023, 0.045},  // beowulf
      {0.026, 0.012, 0.013},  // gremlin
      {0.002, 0.001, 0.002},  // kongo
  };
  return rows;
}

const std::vector<PaperRow>& paper_table6() {
  static const std::vector<PaperRow> rows = {
      {0.066, 0.053, 0.065},  // thing2
      {0.056, 0.052, 0.067},  // thing1
      {0.030, 0.074, 0.101},  // conundrum
      {0.060, 0.114, 0.111},  // beowulf
      {0.043, 0.029, 0.083},  // gremlin
      {0.021, 0.019, 0.285},  // kongo
  };
  return rows;
}

void add_comparison_row(TextTable& table, const std::string& host,
                        const MethodTriple& measured, const PaperRow& paper,
                        int decimals) {
  table.add_row({host,
                 TextTable::pct(measured.load_average, decimals) + " (" +
                     TextTable::pct(paper.load_average, decimals) + ")",
                 TextTable::pct(measured.vmstat, decimals) + " (" +
                     TextTable::pct(paper.vmstat, decimals) + ")",
                 TextTable::pct(measured.hybrid, decimals) + " (" +
                     TextTable::pct(paper.hybrid, decimals) + ")"});
}

std::string output_dir() {
  std::string dir = "bench_out";
  if (const char* env = std::getenv("NWSCPU_OUT")) dir = env;
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace nws::bench

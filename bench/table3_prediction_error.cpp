// Reproduces Table 3: mean absolute one-step-ahead prediction error
// (Equation 5) — the NWS adaptive forecast compared against the *next
// measurement* of the same series, for every method and host.
//
// Expected shape: below 5% everywhere; far below the measurement error.
// The series are highly autocorrelated, so recent history predicts the
// next 10-second reading well.
#include <algorithm>
#include <iostream>

#include "common/experiment_common.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;

  std::cout << "Table 3: Mean Absolute One-step-ahead Prediction Errors, "
            << experiment_hours() << "h run — measured (paper)\n\n";
  const auto fleet = run_fleet(short_test_config());

  TextTable table;
  table.add_row({"Host Name", "Load Average", "vmstat", "NWS Hybrid"});
  double worst = 0.0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const MethodTriple err = prediction_error(fleet[i].trace);
    add_comparison_row(table, host_name(fleet[i].host), err,
                       paper_table3()[i]);
    worst = std::max({worst, err.load_average, err.vmstat, err.hybrid});
  }
  table.print(std::cout);
  std::cout << "\nWorst prediction error across all cells: "
            << TextTable::pct(worst) << " (paper: every cell < 5%)\n";
  return 0;
}

// Chaos benchmark: the full sensor -> memory -> forecaster pipeline over
// real loopback TCP, under a deterministic fault schedule (connection
// resets, stalled / truncated / garbage responses) plus one server
// restart mid-run, compared against an identical fault-free run.
//
// Reports, per run:
//  * delivery accounting: measurements generated / delivered / lost /
//    duplicate acks (exactly-once means lost == 0 and history == generated);
//  * forecast availability under chaos: how many FORECAST calls answered
//    within the client timeout, and the worst-case latency;
//  * forecast-error inflation: the final MAE/MSE the faulty pipeline
//    reports vs the fault-free pipeline (1.00x when delivery is lossless).
//
// The fault schedule is seeded from NWSCPU_FAULT_SEED (default 42), so a
// run is reproducible bit-for-bit: same seed, same faults, same report.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/experiment_common.hpp"
#include "nws/client.hpp"
#include "nws/server.hpp"
#include "sensors/availability.hpp"
#include "sim/host.hpp"
#include "sim/workload.hpp"
#include "util/fault.hpp"

namespace {

using namespace nws;

constexpr const char* kSeries = "chaos/cpu";
constexpr std::size_t kMeasurements = 400;
constexpr double kPeriod = 10.0;  // seconds of simulated time per sample

std::uint64_t fault_seed() {
  if (const char* env = std::getenv("NWSCPU_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

/// Availability samples from a simulated time-shared host: two interactive
/// users plus a daemon, measured through Equation 1 every kPeriod seconds.
std::vector<Measurement> sense_measurements() {
  sim::HostConfig host_cfg;
  host_cfg.name = "chaoshost";
  sim::Host host(host_cfg, /*seed=*/9);
  for (int u = 0; u < 2; ++u) {
    sim::InteractiveSessionConfig user;
    host.add_workload(
        std::make_unique<sim::InteractiveSession>(user, Rng(100 + u)));
  }
  std::vector<Measurement> ms;
  ms.reserve(kMeasurements);
  for (std::size_t i = 0; i < kMeasurements; ++i) {
    host.run_for(kPeriod);
    ms.push_back({host.now(), availability_from_load(host.load_average())});
  }
  return ms;
}

struct RunReport {
  std::size_t delivered = 0;       // server-side history after the run
  std::uint64_t duplicates = 0;    // duplicate PUTS acked, not re-applied
  std::uint64_t faults = 0;        // faults the injector fired
  std::size_t forecast_calls = 0;
  std::size_t forecast_answered = 0;
  double worst_forecast_ms = 0.0;
  double mae = 0.0;
  double mse = 0.0;
  double value = 0.0;
  bool drained = false;
};

ClientConfig pipeline_client_config() {
  ClientConfig cfg;
  cfg.connect_timeout_ms = 500;
  cfg.io_timeout_ms = 250;
  cfg.max_flush_attempts = 10;
  cfg.backoff = BackoffConfig{5.0, 60.0, 2.0, 0.5};
  cfg.backoff_seed = 17;
  return cfg;
}

RunReport run_pipeline(const std::vector<Measurement>& ms,
                       const std::filesystem::path& journal, bool chaos,
                       std::uint64_t seed) {
  RunReport report;

  FaultProfile profile;
  profile.reset_prob = 0.06;
  profile.delay_prob = 0.08;
  profile.delay_ms = 40;
  profile.truncate_prob = 0.05;
  profile.garbage_prob = 0.04;
  FaultInjector injector(seed, profile);

  ServerConfig server_cfg;
  server_cfg.memory_capacity = kMeasurements;
  server_cfg.journal_path = journal;
  auto server = std::make_unique<NwsServer>(server_cfg);
  const std::uint16_t port = server->start(0);
  if (port == 0) {
    std::fprintf(stderr, "cannot bind loopback listener\n");
    std::exit(1);
  }
  NwsClient client(pipeline_client_config());
  if (!client.connect(port)) {
    std::fprintf(stderr, "cannot connect\n");
    std::exit(1);
  }

  if (chaos) install_fault_injector(&injector);
  for (std::size_t i = 0; i < ms.size(); ++i) {
    if (chaos && i == ms.size() / 2) {
      // The service crashes (journal survives) and a new incarnation takes
      // over the same port while the sensor keeps producing.
      server.reset();
      server = std::make_unique<NwsServer>(server_cfg);
      std::uint16_t reborn = 0;
      for (int tries = 0; tries < 50 && reborn == 0; ++tries) {
        reborn = server->start(port);
        if (reborn == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
      if (reborn != port) {
        std::fprintf(stderr, "could not rebind chaos port\n");
        std::exit(1);
      }
    }
    (void)client.put_reliable(kSeries, ms[i]);
    if (i % 8 == 0) (void)client.flush();
    if (i % 10 == 0) {
      ++report.forecast_calls;
      const auto t0 = std::chrono::steady_clock::now();
      const auto forecast = client.forecast(kSeries);
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      report.worst_forecast_ms = std::max(report.worst_forecast_ms, elapsed_ms);
      if (forecast.has_value()) ++report.forecast_answered;
    }
  }
  install_fault_injector(nullptr);

  // Faults over: drain the outbox so every sample reaches the service.
  for (int i = 0; i < 20 && !report.drained; ++i) report.drained = client.flush();

  const auto final_forecast = client.forecast(kSeries);
  if (final_forecast) {
    report.mae = final_forecast->mae;
    report.mse = final_forecast->mse;
    report.value = final_forecast->value;
    report.delivered = final_forecast->history;
  }
  report.duplicates = server->duplicates_acked();
  report.faults = injector.total_faults();
  server->stop();
  return report;
}

struct FailoverReport {
  double promotion_ms = 0.0;  // primary death -> follower serves writes
  double replay_ms = 0.0;     // outbox replay against the new primary
  std::size_t replayed = 0;   // records queued at the moment of the kill
  std::size_t delivered = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t redirects = 0;
  std::uint64_t promotions = 0;
  std::uint64_t faults = 0;
  double mae = 0.0;
  double mse = 0.0;
  double value = 0.0;
  bool drained = false;
};

/// Replicated pair under chaos: the primary is killed mid-burst, the
/// follower's silence timer promotes it, and the client walks its endpoint
/// list through the not_primary redirect.  Measures what the paper's
/// sensors would feel: how long the service was unwritable (promotion
/// latency) and how long the backlog took to replay (replay cost).
FailoverReport run_failover(const std::vector<Measurement>& ms,
                            const std::filesystem::path& dir,
                            std::uint64_t seed) {
  FailoverReport report;

  FaultProfile profile;
  profile.reset_prob = 0.04;
  profile.delay_prob = 0.04;
  profile.delay_ms = 10;
  profile.truncate_prob = 0.03;
  profile.garbage_prob = 0.03;
  profile.repl_drop_prob = 0.05;
  profile.repl_ack_delay_prob = 0.05;
  FaultInjector injector(seed, profile);

  ServerConfig follower_cfg;
  follower_cfg.memory_capacity = kMeasurements;
  follower_cfg.journal_path = dir / "failover_follower.journal";
  follower_cfg.role = ServerRole::kFollower;
  follower_cfg.failover_ms = 200;  // the silence timer does the promotion
  follower_cfg.repl_heartbeat_ms = 10;
  NwsServer follower(follower_cfg);
  const std::uint16_t fport = follower.start(0);
  if (fport == 0) {
    std::fprintf(stderr, "cannot bind follower listener\n");
    std::exit(1);
  }

  ServerConfig primary_cfg;
  primary_cfg.memory_capacity = kMeasurements;
  primary_cfg.journal_path = dir / "failover_primary.journal";
  primary_cfg.repl_followers = std::to_string(fport);
  primary_cfg.repl_heartbeat_ms = 10;
  // Synchronous replication: an acked write is on the follower before the
  // client sees OK, so the kill cannot eat an acked sample (the losslessness
  // the accounting below asserts is only honest under this mode).
  primary_cfg.repl_sync = true;
  auto primary = std::make_unique<NwsServer>(primary_cfg);
  const std::uint16_t pport = primary->start(0);
  if (pport == 0) {
    std::fprintf(stderr, "cannot bind primary listener\n");
    std::exit(1);
  }

  ClientConfig client_cfg = pipeline_client_config();
  client_cfg.io_timeout_ms = 500;  // sync acks ride the fault delays too
  client_cfg.endpoints = {pport, fport};
  NwsClient client(client_cfg);
  if (!client.connect(pport)) {
    std::fprintf(stderr, "cannot connect\n");
    std::exit(1);
  }

  install_fault_injector(&injector);
  for (std::size_t i = 0; i < ms.size(); ++i) {
    if (i == ms.size() / 2) {
      primary->stop();
      primary.reset();
      const auto t_kill = std::chrono::steady_clock::now();
      const auto deadline = t_kill + std::chrono::seconds(10);
      while (!follower.is_primary() &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      report.promotion_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t_kill)
                                .count();
      report.replayed = client.outbox_size();
      const auto t_replay = std::chrono::steady_clock::now();
      bool replayed = false;
      for (int a = 0; a < 50 && !replayed; ++a) replayed = client.flush();
      report.replay_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t_replay)
                             .count();
    }
    (void)client.put_reliable(kSeries, ms[i]);
    if (i % 8 == 0) (void)client.flush();
  }
  install_fault_injector(nullptr);

  for (int i = 0; i < 20 && !report.drained; ++i) report.drained = client.flush();

  const auto final_forecast = client.forecast(kSeries);
  if (final_forecast) {
    report.mae = final_forecast->mae;
    report.mse = final_forecast->mse;
    report.value = final_forecast->value;
    report.delivered = final_forecast->history;
  }
  report.duplicates = follower.duplicates_acked();
  report.redirects = client.redirects();
  report.promotions = follower.promotions();
  report.faults = injector.total_faults();
  follower.stop();
  return report;
}

}  // namespace

int main() {
  const std::uint64_t seed = fault_seed();
  const auto dir = std::filesystem::temp_directory_path() /
                   ("nwscpu_chaos_bench_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  std::printf("Chaos pipeline: %zu measurements, fault seed %llu\n\n",
              kMeasurements, static_cast<unsigned long long>(seed));
  const auto ms = sense_measurements();

  const RunReport clean =
      run_pipeline(ms, dir / "clean.journal", /*chaos=*/false, seed);
  const RunReport chaos =
      run_pipeline(ms, dir / "chaos.journal", /*chaos=*/true, seed);
  const FailoverReport failover = run_failover(ms, dir, seed);
  std::filesystem::remove_all(dir);

  const auto row = [](const char* label, const RunReport& r,
                      std::size_t generated) {
    std::printf("%-12s generated %4zu  delivered %4zu  lost %4zu  dups %4llu"
                "  faults %4llu\n",
                label, generated, r.delivered, generated - r.delivered,
                static_cast<unsigned long long>(r.duplicates),
                static_cast<unsigned long long>(r.faults));
  };
  row("fault-free", clean, ms.size());
  row("chaos", chaos, ms.size());

  std::printf("\nforecast availability under chaos: %zu/%zu answered, "
              "worst latency %.1f ms\n",
              chaos.forecast_answered, chaos.forecast_calls,
              chaos.worst_forecast_ms);
  std::printf("outbox drained: %s\n", chaos.drained ? "yes" : "NO");
  std::printf("\nfinal forecast   value      MAE      MSE\n");
  std::printf("  fault-free   %8.5f %8.5f %8.5f\n", clean.value, clean.mae,
              clean.mse);
  std::printf("  chaos        %8.5f %8.5f %8.5f\n", chaos.value, chaos.mae,
              chaos.mse);
  const double inflation = clean.mae > 0.0 ? chaos.mae / clean.mae : 0.0;
  std::printf("  MAE inflation %.3fx %s\n", inflation,
              inflation < 1.0001 ? "(exactly-once: no inflation)" : "");

  const double failover_inflation =
      clean.mae > 0.0 ? failover.mae / clean.mae : 0.0;
  std::printf("\nreplicated failover (primary killed mid-burst, silence-"
              "timer promotion)\n");
  std::printf("  promotion latency %7.1f ms   replay %6.1f ms "
              "(%zu records queued at the kill)\n",
              failover.promotion_ms, failover.replay_ms, failover.replayed);
  std::printf("  delivered %4zu  lost %4zu  dups %4llu  redirects %3llu  "
              "faults %4llu\n",
              failover.delivered, ms.size() - failover.delivered,
              static_cast<unsigned long long>(failover.duplicates),
              static_cast<unsigned long long>(failover.redirects),
              static_cast<unsigned long long>(failover.faults));
  std::printf("  MAE inflation on the promoted follower %.3fx %s\n",
              failover_inflation,
              failover_inflation < 1.0001 ? "(exactly-once across failover)"
                                          : "");

  const std::string json_path =
      nws::bench::output_dir() + "/BENCH_failover.json";
  {
    std::ofstream json(json_path, std::ios::trunc);
    json << "{\n  \"bench\": \"chaos_failover\",\n";
    json << "  \"measurements\": " << ms.size() << ",\n";
    json << "  \"fault_seed\": " << seed << ",\n";
    json << "  \"faults\": " << failover.faults << ",\n";
    json << "  \"promotion_ms\": " << failover.promotion_ms << ",\n";
    json << "  \"replay_ms\": " << failover.replay_ms << ",\n";
    json << "  \"replayed_records\": " << failover.replayed << ",\n";
    json << "  \"delivered\": " << failover.delivered << ",\n";
    json << "  \"lost\": " << (ms.size() - failover.delivered) << ",\n";
    json << "  \"duplicates_acked\": " << failover.duplicates << ",\n";
    json << "  \"redirects\": " << failover.redirects << ",\n";
    json << "  \"promotions\": " << failover.promotions << ",\n";
    json << "  \"mae_inflation\": " << failover_inflation << ",\n";
    json << "  \"exactly_once\": "
         << ((failover.delivered == ms.size() && failover.drained) ? "true"
                                                                   : "false")
         << "\n}\n";
  }
  std::printf("  wrote %s\n", json_path.c_str());

  const bool ok = chaos.delivered == ms.size() && chaos.drained &&
                  chaos.faults > 0 && failover.delivered == ms.size() &&
                  failover.drained && failover.promotions == 1 &&
                  failover.faults > 0;
  std::printf("\n%s\n", ok ? "PASS: lossless delivery under chaos and failover"
                           : "FAIL: measurements lost or outbox stuck");
  return ok ? 0 : 1;
}

// Reproduces Table 2: mean *true* forecasting error (Equation 4) — the NWS
// one-step-ahead forecast of each measurement series compared against the
// availability the 10-second test process actually observed — together with
// the corresponding measurement error (Equation 3) in parentheses in the
// paper.
//
// Expected shape: true forecasting error ~= measurement error on every
// host/method, i.e. predicting the next measurement adds almost nothing to
// the total error budget.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/experiment_common.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;

  std::cout << "Table 2: Mean True Forecasting Errors, "
            << experiment_hours()
            << "h run — measured forecast [measured measurement] (paper "
               "forecast)\n\n";
  const auto fleet = run_fleet(short_test_config());

  TextTable table;
  table.add_row({"Host Name", "Load Average", "vmstat", "NWS Hybrid"});
  double worst_gap = 0.0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const MethodTriple fc = true_forecast_error(fleet[i].trace);
    const MethodTriple me = measurement_error(fleet[i].trace);
    const PaperRow& paper = paper_table2()[i];
    const auto cell = [](double forecast, double measurement, double pub) {
      return TextTable::pct(forecast) + " [" + TextTable::pct(measurement) +
             "] (" + TextTable::pct(pub) + ")";
    };
    table.add_row({host_name(fleet[i].host),
                   cell(fc.load_average, me.load_average, paper.load_average),
                   cell(fc.vmstat, me.vmstat, paper.vmstat),
                   cell(fc.hybrid, me.hybrid, paper.hybrid)});
    worst_gap = std::max({worst_gap,
                          std::abs(fc.load_average - me.load_average),
                          std::abs(fc.vmstat - me.vmstat),
                          std::abs(fc.hybrid - me.hybrid)});
  }
  table.print(std::cout);
  std::cout << "\nLargest |true forecast error - measurement error| across "
               "all cells: "
            << TextTable::pct(worst_gap)
            << "\n(the paper's point: forecasting adds almost no error on "
               "top of measurement)\n";
  return 0;
}

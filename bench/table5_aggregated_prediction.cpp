// Reproduces Table 5: mean absolute one-step-ahead prediction error for
// the 5-minute aggregated series (m = 30), with the unaggregated error of
// Table 3 shown for comparison (parenthesised in the paper).
//
// Expected shape: the aggregated prediction error is typically somewhat
// *larger* than the unaggregated one (aggregation reduces variance but not
// necessarily predictability), with a few hosts where smoothing wins —
// starred in the paper.
#include <iostream>

#include "common/experiment_common.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;
  constexpr std::size_t kAggregation = 30;

  std::cout << "Table 5: One-step-ahead Prediction Errors for 5-minute "
               "Aggregated Series, "
            << experiment_hours()
            << "h run — measured agg [measured unagg] (paper agg); '*' "
               "where aggregation improved\n\n";
  const auto fleet = run_fleet(short_test_config());

  TextTable table;
  table.add_row({"Host Name", "Load Average", "vmstat", "NWS Hybrid"});
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const MethodTriple agg =
        aggregated_prediction_error(fleet[i].trace, kAggregation);
    const MethodTriple orig = prediction_error(fleet[i].trace);
    const PaperRow& paper = paper_table5()[i];
    const auto cell = [](double a, double o, double pub) {
      return std::string(a < o ? "*" : " ") + TextTable::pct(a) + " [" +
             TextTable::pct(o) + "] (" + TextTable::pct(pub) + ")";
    };
    table.add_row({host_name(fleet[i].host),
                   cell(agg.load_average, orig.load_average,
                        paper.load_average),
                   cell(agg.vmstat, orig.vmstat, paper.vmstat),
                   cell(agg.hybrid, orig.hybrid, paper.hybrid)});
  }
  table.print(std::cout);
  return 0;
}

// Reproduces Table 4: per-host Hurst parameter estimate (R/S pox-plot
// regression over a one-week load-average availability series) and the
// variance of each measurement series before and after 5-minute (m = 30)
// aggregation over the 24-hour run.
//
// Expected shape: H in (0.5, 1.0) everywhere (long-range dependence /
// self-similarity, per Dinda & O'Halloran); aggregation lowers the
// variance — but, because the series are self-similar, slowly: the
// variance of X^(m) decays like m^(2H-2), not like 1/m.
#include <cstdio>
#include <iostream>

#include "common/experiment_common.hpp"
#include "tsa/rs_analysis.hpp"
#include "util/stats.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;
  constexpr std::size_t kAggregation = 30;  // 30 x 10 s = 5 minutes

  std::cout << "Table 4: Hurst estimate and variance of original vs "
               "5-minute aggregated series — measured (paper)\n\n";

  std::cout << "Hurst column: one-week measurement-only runs\n";
  const auto week_fleet = run_fleet(week_config());
  std::cout << "Variance columns: " << experiment_hours() << "h runs\n";
  const auto day_fleet = run_fleet(short_test_config());

  TextTable table;
  table.add_row({"Host", "Est. H", "load orig", "load 300s", "vm orig",
                 "vm 300s", "hyb orig", "hyb 300s"});
  std::vector<SelfSimilaritySummary> selfsim;
  selfsim.reserve(day_fleet.size());
  for (std::size_t i = 0; i < day_fleet.size(); ++i) {
    selfsim.push_back(
        self_similarity(week_fleet[i].trace.load_series.values()));
    const HurstEstimate& est = selfsim.back().rs;
    const MethodTriple orig = series_variance(day_fleet[i].trace);
    const MethodTriple agg =
        aggregated_variance(day_fleet[i].trace, kAggregation);
    table.add_row({host_name(day_fleet[i].host),
                   TextTable::num(est.hurst, 2) + " (" +
                       TextTable::num(paper_table4_hurst()[i], 2) + ")",
                   TextTable::num(orig.load_average), TextTable::num(agg.load_average),
                   TextTable::num(orig.vmstat), TextTable::num(agg.vmstat),
                   TextTable::num(orig.hybrid), TextTable::num(agg.hybrid)});
  }
  table.print(std::cout);

  std::cout << "\nHurst cross-checks on the one-week load series "
               "(agg-var | GPH | first lag with ACF < 0.2):\n";
  for (std::size_t i = 0; i < day_fleet.size(); ++i) {
    const SelfSimilaritySummary& s = selfsim[i];
    std::printf("  %-10s %.2f | %.2f | %zu of %zu\n",
                host_name(day_fleet[i].host).c_str(), s.aggvar.hurst,
                s.gph.hurst, s.acf.first_below, s.acf.lags_computed);
  }

  std::cout << "\nShape checks:\n"
            << "  every H in (0.5, 1.0): long-range autocorrelation / "
               "potential self-similarity\n"
            << "  aggregated variance <= original variance for (almost) "
               "every host and method\n";
  return 0;
}

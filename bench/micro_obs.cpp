// micro_obs: what does the telemetry layer cost on the request hot path?
//
// Measures per-request latency on two paths, with the metrics registry
// enabled versus disabled (set_metrics_enabled, the switch behind
// NWSCPU_METRICS=off):
//   inproc   — NwsServer::handle_line("PUT ...") with no sockets, the
//              tightest loop over the instrumented parse/execute path;
//   loopback — one client, one PUT round trip per sample over 127.0.0.1
//              (clock noise and syscalls included, as deployed).
// Each mode runs NWSCPU_OBS_REPS repetitions of NWSCPU_OBS_N requests and
// keeps the best (lowest-p50) repetition; the headline number is the
// relative p50 overhead of enabled-vs-disabled, which DESIGN.md section 9
// budgets at < 2% for the in-process path.
//
// Output: human-readable table on stdout plus BENCH_obs.json in
// NWSCPU_OUT (default bench_out/).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/experiment_common.hpp"
#include "nws/client.hpp"
#include "nws/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(value, &end, 10);
    if (end != value && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return fallback;
}

struct Quantiles {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  ///< nanoseconds
};

Quantiles quantiles(std::vector<std::uint64_t>& samples) {
  Quantiles q;
  if (samples.empty()) return q;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double p) {
    const std::size_t i = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(samples.size())));
    return static_cast<double>(samples[i]);
  };
  q.p50 = at(0.50);
  q.p95 = at(0.95);
  q.p99 = at(0.99);
  return q;
}

/// N handle_line("PUT ...") calls, each timed individually.  Lines are
/// pre-formatted so the loop measures only the instrumented request path.
Quantiles run_inproc(nws::NwsServer& server,
                     const std::vector<std::string>& lines) {
  std::vector<std::uint64_t> samples;
  samples.reserve(lines.size());
  for (const std::string& line : lines) {
    const std::uint64_t t0 = nws::obs::now_ns();
    const std::string out = server.handle_line(line);
    samples.push_back(nws::obs::now_ns() - t0);
    if (out.compare(0, 2, "OK") != 0) {
      std::cerr << "micro_obs: unexpected response " << out << "\n";
      break;
    }
  }
  return quantiles(samples);
}

/// N PUT round trips over loopback, each timed individually.
Quantiles run_loopback(nws::NwsClient& client, const std::string& series,
                       double& t, std::size_t n) {
  std::vector<std::uint64_t> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    t += 1.0;
    const std::uint64_t t0 = nws::obs::now_ns();
    const bool ok = client.put(series, {t, 0.5});
    samples.push_back(nws::obs::now_ns() - t0);
    if (!ok) {
      std::cerr << "micro_obs: loopback PUT failed\n";
      break;
    }
  }
  return quantiles(samples);
}

/// Keeps the repetition with the lowest p50 (least-disturbed run).
Quantiles best_of(const std::vector<Quantiles>& reps) {
  Quantiles best = reps.front();
  for (const Quantiles& q : reps) {
    if (q.p50 < best.p50) best = q;
  }
  return best;
}

double overhead(const Quantiles& on, const Quantiles& off) {
  return off.p50 > 0.0 ? (on.p50 - off.p50) / off.p50 : 0.0;
}

/// The 1-in-64 latency sampler is a per-thread counter
/// (obs::latency_sample_tick); the obvious alternative is one shared
/// atomic.  Quantifies the difference: the shared counter bounces its
/// cache line across every dispatcher thread on every request.
struct SamplerCost {
  double shared_ns = 0.0;  ///< ns/op, shared std::atomic fetch_add
  double local_ns = 0.0;   ///< ns/op, thread_local tick (as shipped)
};

SamplerCost run_sampler(std::size_t threads, std::size_t iters) {
  SamplerCost cost;
  std::atomic<std::uint64_t> shared{0};
  std::atomic<std::uint64_t> sink{0};
  const auto bench = [&](bool use_shared) {
    std::vector<std::thread> pool;
    std::vector<std::uint64_t> elapsed(threads, 0);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        std::uint64_t hits = 0;
        const std::uint64_t t0 = nws::obs::now_ns();
        for (std::size_t i = 0; i < iters; ++i) {
          if (use_shared) {
            hits += shared.fetch_add(1, std::memory_order_relaxed) % 64 == 0;
          } else {
            hits += nws::obs::latency_sample_tick();
          }
        }
        elapsed[t] = nws::obs::now_ns() - t0;
        sink.fetch_add(hits, std::memory_order_relaxed);
      });
    }
    for (std::thread& th : pool) th.join();
    std::uint64_t total = 0;
    for (const std::uint64_t e : elapsed) total += e;
    return static_cast<double>(total) /
           static_cast<double>(threads * iters);
  };
  cost.shared_ns = bench(/*use_shared=*/true);
  cost.local_ns = bench(/*use_shared=*/false);
  return cost;
}

void print_pair(const char* path, const Quantiles& on, const Quantiles& off) {
  std::printf("%-8s  on : p50 %8.0f ns  p95 %8.0f ns  p99 %8.0f ns\n", path,
              on.p50, on.p95, on.p99);
  std::printf("%-8s  off: p50 %8.0f ns  p95 %8.0f ns  p99 %8.0f ns"
              "   p50 overhead %+.2f%%\n",
              path, off.p50, off.p95, off.p99, 100.0 * overhead(on, off));
}

void json_pair(std::ofstream& json, const char* key, const Quantiles& on,
               const Quantiles& off, bool trailing_comma) {
  json << "  \"" << key << "\": {\n"
       << "    \"on\":  {\"p50_ns\": " << on.p50 << ", \"p95_ns\": " << on.p95
       << ", \"p99_ns\": " << on.p99 << "},\n"
       << "    \"off\": {\"p50_ns\": " << off.p50
       << ", \"p95_ns\": " << off.p95 << ", \"p99_ns\": " << off.p99
       << "},\n"
       << "    \"overhead_p50\": " << overhead(on, off) << "\n"
       << "  }" << (trailing_comma ? ",\n" : "\n");
}

}  // namespace

int main() {
  const std::size_t n = env_size("NWSCPU_OBS_N", 20000);
  const std::size_t reps = env_size("NWSCPU_OBS_REPS", 3);

  // ---- In-process path: one fresh line per request so SeriesStore always
  // appends (monotone timestamps), formatted outside the timed loop.
  nws::ServerConfig config;
  config.shards = 1;
  nws::NwsServer server(config);
  // Timestamps must stay monotone across repetitions or SeriesStore
  // rejects the samples, so every run gets freshly formatted lines.
  double t_in = 0.0;
  std::vector<std::string> lines;
  lines.reserve(n);
  const auto make_lines = [&] {
    lines.clear();
    for (std::size_t i = 0; i < n; ++i) {
      t_in += 1.0;
      lines.push_back("PUT obs/inproc/cpu " + std::to_string(t_in) + " 0.5");
    }
  };
  // Warm up caches, the series table and the thread's histogram slot.
  nws::obs::set_metrics_enabled(true);
  make_lines();
  (void)run_inproc(server, lines);

  std::vector<Quantiles> inproc_on, inproc_off;
  for (std::size_t r = 0; r < reps; ++r) {
    nws::obs::set_metrics_enabled(false);
    make_lines();
    inproc_off.push_back(run_inproc(server, lines));
    nws::obs::set_metrics_enabled(true);
    make_lines();
    inproc_on.push_back(run_inproc(server, lines));
  }

  // ---- Tracing cost on the same in-process path, metrics on for both
  // sides.  "on" lines carry a sampled TRC context (parse + scoped
  // context + span ring write per request); "off" lines are plain — what
  // the server sees when NWSCPU_TRACE_SAMPLE=0 keeps clients from
  // minting.  The acceptance bar: the plain side must stay inside the
  // same 2% budget as the metrics cell (tracing must be free when off).
  nws::obs::set_trace_ring_capacity(4096);
  const auto make_traced_lines = [&] {
    lines.clear();
    for (std::size_t i = 0; i < n; ++i) {
      t_in += 1.0;
      lines.push_back("TRC beef77-42-1 PUT obs/inproc/cpu " +
                      std::to_string(t_in) + " 0.5");
    }
  };
  make_traced_lines();
  (void)run_inproc(server, lines);  // warm the span ring
  std::vector<Quantiles> trace_on, trace_off;
  for (std::size_t r = 0; r < reps; ++r) {
    make_lines();
    trace_off.push_back(run_inproc(server, lines));
    make_traced_lines();
    trace_on.push_back(run_inproc(server, lines));
  }
  nws::obs::clear_spans();

  // ---- Sampler strategy: shared atomic vs per-thread tick.
  const std::size_t sampler_threads =
      std::max(2u, std::min(8u, std::thread::hardware_concurrency()));
  const SamplerCost sampler = run_sampler(sampler_threads, 2'000'000);

  // ---- Loopback path: same PUT traffic through the TCP front end.
  const std::uint16_t port = server.start(0);
  if (port == 0) {
    std::cerr << "micro_obs: cannot bind loopback listener\n";
    return 1;
  }
  nws::NwsClient client;
  if (!client.connect(port)) {
    std::cerr << "micro_obs: cannot connect\n";
    return 1;
  }
  double t = 1e9;  // past every in-process timestamp
  (void)run_loopback(client, "obs/loop/cpu", t, std::min<std::size_t>(n, 512));

  std::vector<Quantiles> loop_on, loop_off;
  for (std::size_t r = 0; r < reps; ++r) {
    nws::obs::set_metrics_enabled(false);
    loop_off.push_back(run_loopback(client, "obs/loop/cpu", t, n));
    nws::obs::set_metrics_enabled(true);
    loop_on.push_back(run_loopback(client, "obs/loop/cpu", t, n));
  }
  client.disconnect();
  server.stop();
  nws::obs::set_metrics_enabled(true);

  const Quantiles in_on = best_of(inproc_on);
  const Quantiles in_off = best_of(inproc_off);
  const Quantiles tr_on = best_of(trace_on);
  const Quantiles tr_off = best_of(trace_off);
  const Quantiles lb_on = best_of(loop_on);
  const Quantiles lb_off = best_of(loop_off);

  std::printf("micro_obs: %zu requests/rep, best of %zu reps\n", n, reps);
  print_pair("inproc", in_on, in_off);
  print_pair("trace", tr_on, tr_off);
  print_pair("loopback", lb_on, lb_off);
  std::printf("sampler   %zu threads: shared atomic %6.2f ns/op  "
              "thread-local %6.2f ns/op\n",
              sampler_threads, sampler.shared_ns, sampler.local_ns);

  const std::string path = nws::bench::output_dir() + "/BENCH_obs.json";
  std::ofstream json(path, std::ios::trunc);
  json << "{\n  \"bench\": \"micro_obs\",\n";
  json << "  \"n\": " << n << ",\n  \"reps\": " << reps << ",\n";
  json << "  \"target_overhead_p50\": 0.02,\n";
  json_pair(json, "inproc", in_on, in_off, /*trailing_comma=*/true);
  json_pair(json, "trace", tr_on, tr_off, /*trailing_comma=*/true);
  json_pair(json, "loopback", lb_on, lb_off, /*trailing_comma=*/true);
  json << "  \"sampler\": {\"threads\": " << sampler_threads
       << ", \"shared_atomic_ns_per_op\": " << sampler.shared_ns
       << ", \"thread_local_ns_per_op\": " << sampler.local_ns << "}\n";
  json << "}\n";
  json.close();
  std::cout << "wrote " << path << "\n";
  return 0;
}

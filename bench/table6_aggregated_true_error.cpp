// Reproduces Table 6: mean true forecasting error for 5-minute *average*
// CPU availability — the forecast of the next 5-minute block of the
// aggregated series compared against what a 5-minute test process (run
// once per hour, as in the paper, to limit intrusiveness) actually
// obtained.
//
// Expected shape: 2-12% on ordinary hosts — medium-term scheduling-grade
// accuracy — with kongo's hybrid column again pathological (the probe bias
// problem does not go away with aggregation).
#include <iostream>

#include "common/experiment_common.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;
  constexpr std::size_t kAggregation = 30;

  std::cout << "Table 6: Mean True Forecasting Errors for 5-minute Average "
               "CPU Availability, "
            << experiment_hours() << "h run — measured (paper)\n\n";
  const auto fleet = run_fleet(aggregated_test_config());

  TextTable table;
  table.add_row({"Host Name", "Load Average", "vmstat", "NWS Hybrid"});
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const MethodTriple err =
        aggregated_true_error(fleet[i].trace, kAggregation);
    add_comparison_row(table, host_name(fleet[i].host), err,
                       paper_table6()[i]);
  }
  table.print(std::cout);

  std::cout << "\nShape check: kongo hybrid error remains large; ordinary "
               "hosts land in the scheduling-useful 2-12% band.\n";
  return 0;
}

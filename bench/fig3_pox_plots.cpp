// Reproduces Figure 3: R/S pox plots of one-week load-average availability
// series for thing1 and thing2, with the least-squares Hurst regression.
//
// Writes all pox points to CSV (plot log10_d vs log10_rs, add the H=0.5
// and H=1.0 reference slopes to recreate the figure) and prints the
// regression: the paper estimates H = 0.70 for both hosts; anything in
// (0.5, 1.0) with a good fit reproduces the finding.
#include <cstdio>
#include <iostream>

#include "common/experiment_common.hpp"
#include "tsa/rs_analysis.hpp"
#include "util/csv.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;

  std::cout << "Figure 3: pox plots (R/S analysis) of one-week "
               "load-average availability series\n";
  const std::string dir = output_dir();

  for (UcsdHost h : {UcsdHost::kThing1, UcsdHost::kThing2}) {
    auto host = make_ucsd_host(h, experiment_seed());
    const HostTrace trace = run_experiment(*host, week_config());
    const auto points = pox_points(trace.load_series.values());
    const HurstEstimate est = estimate_hurst_from_pox(points);

    CsvTable table;
    table.headers = {"log10_d", "log10_rs"};
    table.columns.resize(2);
    for (const PoxPoint& p : points) {
      table.columns[0].push_back(p.log10_d);
      table.columns[1].push_back(p.log10_rs);
    }
    const std::string path = dir + "/fig3_" + host_name(h) + ".csv";
    write_csv(path, table);

    std::printf("\n%s -> %s\n", host_name(h).c_str(), path.c_str());
    std::printf("  pox points: %zu across %zu scales\n", est.num_points,
                est.num_scales);
    std::printf("  least-squares H = %.2f (intercept %.2f, R^2 %.2f); "
                "paper: H = 0.70\n",
                est.hurst, est.intercept, est.r_squared);
    std::printf("  0.5 < H < 1.0: %s\n",
                est.hurst > 0.5 && est.hurst < 1.0 ? "yes" : "NO");
  }
  return 0;
}

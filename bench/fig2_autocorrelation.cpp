// Reproduces Figure 2: the first 360 autocorrelations of the thing1 and
// thing2 load-average availability series.
//
// Writes lag/ACF pairs to CSV and prints a decimated listing plus the
// figure's key qualitative content: the ACF decays slowly and remains
// clearly positive even at lag 360 (one hour of 10-second samples) —
// events hours apart are correlated.
#include <cstdio>
#include <iostream>

#include "common/experiment_common.hpp"
#include "tsa/autocorrelation.hpp"
#include "util/csv.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;
  constexpr std::size_t kLags = 360;

  std::cout << "Figure 2: first " << kLags
            << " autocorrelations of the load-average availability series ("
            << experiment_hours() << "h runs)\n";
  const std::string dir = output_dir();

  for (UcsdHost h : {UcsdHost::kThing1, UcsdHost::kThing2}) {
    auto host = make_ucsd_host(h, experiment_seed());
    const HostTrace trace = run_experiment(*host, short_test_config());
    const auto acf = autocorrelations(trace.load_series.values(), kLags);

    CsvTable table;
    table.headers = {"lag", "acf"};
    table.columns.resize(2);
    for (std::size_t k = 0; k < acf.size(); ++k) {
      table.columns[0].push_back(static_cast<double>(k));
      table.columns[1].push_back(acf[k]);
    }
    const std::string path = dir + "/fig2_" + host_name(h) + ".csv";
    write_csv(path, table);

    std::printf("\n%s -> %s\n", host_name(h).c_str(), path.c_str());
    std::printf("  lag (x10s):");
    for (std::size_t k = 0; k <= kLags; k += 40) std::printf(" %6zu", k);
    std::printf("\n  acf:       ");
    for (std::size_t k = 0; k <= kLags && k < acf.size(); k += 40) {
      std::printf(" %6.3f", acf[k]);
    }
    const AcfDecay decay = acf_decay(acf, 0.2);
    std::printf("\n  first lag with acf < 0.2: %zu of %zu computed "
                "(value at lag %zu: %.3f)\n",
                decay.first_below, decay.lags_computed, kLags,
                decay.value_at_last);
  }
  std::cout << "\nShape check: slow decay — availability measured now "
               "still informs availability an hour ahead.\n";
  return 0;
}

// Microbenchmarks: NWS service layer — protocol parse/format cost and
// request throughput, both in-process (handle_line) and over a loopback
// TCP round trip.  Bounds how many sensor streams one nwscpu service
// instance sustains.
#include <benchmark/benchmark.h>

#include "nws/client.hpp"
#include "nws/protocol.hpp"
#include "nws/server.hpp"

namespace {

void BM_ParsePut(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nws::parse_request("PUT thing2/cpu 86400.5 0.8125"));
  }
}
BENCHMARK(BM_ParsePut);

void BM_FormatForecastResponse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::format_forecast_response(
        0.875, 0.031, 0.002, 123456, 86400.5, "sw_mean(10)"));
  }
}
BENCHMARK(BM_FormatForecastResponse);

void BM_ParsePutReused(benchmark::State& state) {
  // The server hot path: parse into a reusable Request, no allocations
  // once the string/vector capacity is warm.
  nws::Request req;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nws::parse_request_into("PUT thing2/cpu 86400.5 0.8125", req));
  }
}
BENCHMARK(BM_ParsePutReused);

void BM_ParsePutBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::string line = "PUTB thing2/cpu " + std::to_string(n) + " 1";
  for (std::size_t i = 0; i < n; ++i) {
    line += ' ';
    line += std::to_string(10.0 * static_cast<double>(i + 1));
    line += " 0.8125";
  }
  nws::Request req;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::parse_request_into(line, req));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParsePutBatch)->Arg(16)->Arg(64)->Arg(256);

// Binary (wire v2) codec counterparts: the PUTB body is op + series +
// seq + n + raw IEEE-754 bits, so decode is bounds checks and memcpy —
// compare items/s against BM_ParsePutBatch at the same batch size.
void BM_ParseBinaryPutBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  nws::Request seed;
  seed.kind = nws::RequestKind::kPutBatch;
  seed.series = "thing2/cpu";
  seed.seq = 1;
  for (std::size_t i = 0; i < n; ++i) {
    seed.batch.push_back({10.0 * static_cast<double>(i + 1), 0.8125});
  }
  std::string wire;
  nws::append_binary_request(wire, seed);
  const std::string payload = wire.substr(nws::kBinFrameHeaderBytes);
  nws::Request req;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::parse_binary_request(payload, req));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParseBinaryPutBatch)->Arg(16)->Arg(64)->Arg(256);

void BM_EncodeBinaryPutBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  nws::Request req;
  req.kind = nws::RequestKind::kPutBatch;
  req.series = "thing2/cpu";
  req.seq = 1;
  for (std::size_t i = 0; i < n; ++i) {
    req.batch.push_back({10.0 * static_cast<double>(i + 1), 0.8125});
  }
  std::string wire;
  for (auto _ : state) {
    wire.clear();
    nws::append_binary_request(wire, req);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EncodeBinaryPutBatch)->Arg(16)->Arg(64)->Arg(256);

void BM_ExtractBinaryFrame(benchmark::State& state) {
  // Frame boundary scan over a buffer of back-to-back PUT frames.
  std::string buffer;
  nws::Request req;
  req.kind = nws::RequestKind::kPut;
  req.series = "thing2/cpu";
  req.measurement = {86400.5, 0.8125};
  for (int i = 0; i < 64; ++i) nws::append_binary_request(buffer, req);
  for (auto _ : state) {
    std::size_t offset = 0;
    std::size_t frame_end = 0;
    std::string_view payload;
    while (nws::extract_binary_frame(
               std::string_view(buffer).substr(offset), 64 * 1024, frame_end,
               payload) == nws::BinFrameStatus::kFrame) {
      offset += frame_end;
      benchmark::DoNotOptimize(payload.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ExtractBinaryFrame);

void BM_ServerHandlePut(benchmark::State& state) {
  nws::NwsServer server;
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle_line(
        "PUT bench/cpu " + std::to_string(t) + " 0.75"));
    t += 10.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServerHandlePut);

void BM_ServerHandleForecast(benchmark::State& state) {
  nws::NwsServer server;
  for (int i = 0; i < 200; ++i) {
    (void)server.handle_line("PUT bench/cpu " + std::to_string(i * 10.0) +
                             " 0.75");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle_line("FORECAST bench/cpu"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServerHandleForecast);

void BM_ServerHandlePutBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  nws::NwsServer server;
  double t = 0.0;
  std::string line;
  for (auto _ : state) {
    state.PauseTiming();
    line = "PUTB bench/cpu " + std::to_string(n) + " 1";
    for (std::size_t i = 0; i < n; ++i) {
      t += 10.0;
      line += ' ';
      line += std::to_string(t);
      line += " 0.75";
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(server.handle_line(line));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ServerHandlePutBatch)->Arg(64)->Arg(256);

// Single-PUT round-trip latency (request in, ack out).  TCP_NODELAY is
// set on both ends, so the write never sits in the Nagle buffer waiting
// for the previous ack — arg 0 = text framing, arg 1 = binary (HELLO BIN).
void BM_LoopbackPutRoundTrip(benchmark::State& state) {
  nws::NwsServer server;
  const std::uint16_t port = server.start(0);
  if (port == 0) {
    state.SkipWithError("cannot bind loopback listener");
    return;
  }
  nws::ClientConfig cfg;
  cfg.binary = state.range(0) != 0;
  nws::NwsClient client(cfg);
  if (!client.connect(port)) {
    state.SkipWithError("cannot connect");
    return;
  }
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.put("bench/cpu", {t, 0.5}));
    t += 10.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  client.disconnect();
  server.stop();
}
BENCHMARK(BM_LoopbackPutRoundTrip)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("bin")
    ->Unit(benchmark::kMicrosecond);

void BM_LoopbackPutBatchRoundTrip(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  nws::NwsServer server;
  const std::uint16_t port = server.start(0);
  if (port == 0) {
    state.SkipWithError("cannot bind loopback listener");
    return;
  }
  nws::ClientConfig cfg;
  cfg.binary = state.range(1) != 0;
  nws::NwsClient client(cfg);
  if (!client.connect(port)) {
    state.SkipWithError("cannot connect");
    return;
  }
  double t = 0.0;
  std::uint64_t seq = 1;
  std::vector<nws::Measurement> batch(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      t += 10.0;
      batch[i] = {t, 0.5};
    }
    benchmark::DoNotOptimize(client.put_batch("bench/cpu", batch, seq));
    seq += n;
  }
  // One round trip moves n measurements: items = measurements stored.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  client.disconnect();
  server.stop();
}
BENCHMARK(BM_LoopbackPutBatchRoundTrip)
    ->Args({64, 0})
    ->Args({256, 0})
    ->Args({64, 1})
    ->Args({256, 1})
    ->ArgNames({"n", "bin"});

}  // namespace

BENCHMARK_MAIN();

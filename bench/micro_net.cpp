// Microbenchmarks: NWS service layer — protocol parse/format cost and
// request throughput, both in-process (handle_line) and over a loopback
// TCP round trip.  Bounds how many sensor streams one nwscpu service
// instance sustains.
#include <benchmark/benchmark.h>

#include "nws/client.hpp"
#include "nws/protocol.hpp"
#include "nws/server.hpp"

namespace {

void BM_ParsePut(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nws::parse_request("PUT thing2/cpu 86400.5 0.8125"));
  }
}
BENCHMARK(BM_ParsePut);

void BM_FormatForecastResponse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::format_forecast_response(
        0.875, 0.031, 0.002, 123456, 86400.5, "sw_mean(10)"));
  }
}
BENCHMARK(BM_FormatForecastResponse);

void BM_ParsePutReused(benchmark::State& state) {
  // The server hot path: parse into a reusable Request, no allocations
  // once the string/vector capacity is warm.
  nws::Request req;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nws::parse_request_into("PUT thing2/cpu 86400.5 0.8125", req));
  }
}
BENCHMARK(BM_ParsePutReused);

void BM_ParsePutBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::string line = "PUTB thing2/cpu " + std::to_string(n) + " 1";
  for (std::size_t i = 0; i < n; ++i) {
    line += ' ';
    line += std::to_string(10.0 * static_cast<double>(i + 1));
    line += " 0.8125";
  }
  nws::Request req;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::parse_request_into(line, req));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParsePutBatch)->Arg(16)->Arg(64)->Arg(256);

void BM_ServerHandlePut(benchmark::State& state) {
  nws::NwsServer server;
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle_line(
        "PUT bench/cpu " + std::to_string(t) + " 0.75"));
    t += 10.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServerHandlePut);

void BM_ServerHandleForecast(benchmark::State& state) {
  nws::NwsServer server;
  for (int i = 0; i < 200; ++i) {
    (void)server.handle_line("PUT bench/cpu " + std::to_string(i * 10.0) +
                             " 0.75");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle_line("FORECAST bench/cpu"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServerHandleForecast);

void BM_ServerHandlePutBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  nws::NwsServer server;
  double t = 0.0;
  std::string line;
  for (auto _ : state) {
    state.PauseTiming();
    line = "PUTB bench/cpu " + std::to_string(n) + " 1";
    for (std::size_t i = 0; i < n; ++i) {
      t += 10.0;
      line += ' ';
      line += std::to_string(t);
      line += " 0.75";
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(server.handle_line(line));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ServerHandlePutBatch)->Arg(64)->Arg(256);

void BM_LoopbackPutRoundTrip(benchmark::State& state) {
  nws::NwsServer server;
  const std::uint16_t port = server.start(0);
  if (port == 0) {
    state.SkipWithError("cannot bind loopback listener");
    return;
  }
  nws::NwsClient client;
  if (!client.connect(port)) {
    state.SkipWithError("cannot connect");
    return;
  }
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.put("bench/cpu", {t, 0.5}));
    t += 10.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  client.disconnect();
  server.stop();
}
BENCHMARK(BM_LoopbackPutRoundTrip);

void BM_LoopbackPutBatchRoundTrip(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  nws::NwsServer server;
  const std::uint16_t port = server.start(0);
  if (port == 0) {
    state.SkipWithError("cannot bind loopback listener");
    return;
  }
  nws::NwsClient client;
  if (!client.connect(port)) {
    state.SkipWithError("cannot connect");
    return;
  }
  double t = 0.0;
  std::uint64_t seq = 1;
  std::vector<nws::Measurement> batch(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      t += 10.0;
      batch[i] = {t, 0.5};
    }
    benchmark::DoNotOptimize(client.put_batch("bench/cpu", batch, seq));
    seq += n;
  }
  // One round trip moves n measurements: items = measurements stored.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  client.disconnect();
  server.stop();
}
BENCHMARK(BM_LoopbackPutBatchRoundTrip)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();

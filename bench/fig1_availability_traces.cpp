// Reproduces Figure 1: 24-hour CPU availability traces (Unix load average
// method) for thing1 and thing2.
//
// Writes the full series to CSV (plot time_seconds vs value to recreate
// the figure) and prints a coarse ASCII rendering plus the summary
// statistics that characterise the figure's shape: wide swings between
// near-0 and near-100% availability with visible diurnal structure.
#include <cstdio>
#include <iostream>

#include "common/experiment_common.hpp"
#include "nws/trace_io.hpp"
#include "util/stats.hpp"

namespace {

void ascii_plot(const nws::TimeSeries& s, int columns, int rows) {
  // Down-sample to `columns` block means and render a column chart.
  const std::size_t block =
      std::max<std::size_t>(1, s.size() / static_cast<std::size_t>(columns));
  std::vector<double> cols;
  for (std::size_t b = 0; b + block <= s.size(); b += block) {
    double acc = 0.0;
    for (std::size_t i = 0; i < block; ++i) acc += s[b + i];
    cols.push_back(acc / static_cast<double>(block));
  }
  for (int r = rows; r >= 1; --r) {
    const double level = static_cast<double>(r) / rows;
    std::string line;
    for (double v : cols) line += v >= level - 1e-9 ? '#' : ' ';
    std::printf("%3.0f%% |%s\n", level * 100.0, line.c_str());
  }
  std::printf("     +%s\n", std::string(cols.size(), '-').c_str());
}

}  // namespace

int main() {
  using namespace nws;
  using namespace nws::bench;

  std::cout << "Figure 1: CPU availability measurements (load average "
               "method), "
            << experiment_hours() << "h runs for thing1 and thing2\n";
  const std::string dir = output_dir();

  for (UcsdHost h : {UcsdHost::kThing1, UcsdHost::kThing2}) {
    auto host = make_ucsd_host(h, experiment_seed());
    const HostTrace trace = run_experiment(*host, short_test_config());
    const TimeSeries& s = trace.load_series;

    const std::string path = dir + "/fig1_" + host_name(h) + ".csv";
    write_trace(path, s);

    RunningStats stats;
    for (double v : s.values()) stats.add(v);
    std::printf("\n%s — n=%zu, mean=%.1f%%, min=%.1f%%, max=%.1f%%, "
                "stddev=%.1f%%  -> %s\n",
                host_name(h).c_str(), s.size(), 100 * stats.mean(),
                100 * stats.min(), 100 * stats.max(), 100 * stats.stddev(),
                path.c_str());
    ascii_plot(s, 96, 10);
  }
  return 0;
}

// Ablation: dynamic *selection* (the NWS method) vs error-weighted
// *mixture* (an extension) vs the best and worst single forecasters, on
// every host's three measurement series.
//
// The NWS design question this probes: when several battery members are
// near-tied, selection jumps between them while a blend averages out their
// idiosyncrasies.  On the paper's slowly varying availability series the
// two should be close — this bench quantifies the gap.
#include <cstdio>
#include <iostream>

#include "common/experiment_common.hpp"
#include "forecast/battery.hpp"
#include "forecast/evaluate.hpp"
#include "forecast/mixture.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;

  std::cout << "Ablation: adaptive selection vs error-weighted mixture "
               "(one-step MAE, " << experiment_hours() << "h runs)\n\n";
  const auto fleet = run_fleet(short_test_config());

  std::printf("  %-10s %-8s %12s %12s %12s\n", "host", "series",
              "selection", "mixture", "best single");
  for (const auto& result : fleet) {
    const struct {
      const char* label;
      const TimeSeries* series;
    } rows[] = {{"load", &result.trace.load_series},
                {"vmstat", &result.trace.vmstat_series},
                {"hybrid", &result.trace.hybrid_series}};
    for (const auto& row : rows) {
      const auto adaptive = make_nws_forecaster();
      const MixtureForecaster mixture(make_nws_methods());
      const double sel = evaluate_forecaster(*adaptive, *row.series).mae;
      const double mix = evaluate_forecaster(mixture, *row.series).mae;
      double best = 1e9;
      for (const auto& m : make_nws_methods()) {
        best = std::min(best, evaluate_forecaster(*m, *row.series).mae);
      }
      std::printf("  %-10s %-8s %11.2f%% %11.2f%% %11.2f%%\n",
                  host_name(result.host).c_str(), row.label, 100 * sel,
                  100 * mix, 100 * best);
    }
  }
  std::cout << "\nShape check: selection and mixture both track the best "
               "single method; neither dominates across all hosts.\n";
  return 0;
}

// Microbenchmarks: time-series analysis kernels (ACF, R/S pox analysis,
// aggregation, Hurst estimation) at the series sizes the reproduction uses
// (8 640 samples = 24 h of 10-second measurements; 60 480 = one week).
#include <benchmark/benchmark.h>

#include "tsa/aggregate.hpp"
#include "tsa/autocorrelation.hpp"
#include "tsa/fgn.hpp"
#include "tsa/rs_analysis.hpp"
#include "util/rng.hpp"

namespace {

std::vector<double> ar1_series(std::size_t n) {
  nws::Rng rng(99);
  return nws::generate_ar1(rng, 0.95, n);
}

void BM_Acf360(benchmark::State& state) {
  const auto xs = ar1_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::autocorrelations(xs, 360));
  }
}
BENCHMARK(BM_Acf360)->Arg(8640)->Arg(60480);

void BM_PoxPoints(benchmark::State& state) {
  const auto xs = ar1_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::pox_points(xs));
  }
}
BENCHMARK(BM_PoxPoints)->Arg(8640)->Arg(60480);

void BM_HurstRs(benchmark::State& state) {
  const auto xs = ar1_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::estimate_hurst_rs(xs));
  }
}
BENCHMARK(BM_HurstRs)->Arg(8640)->Arg(60480);

void BM_Aggregate(benchmark::State& state) {
  const auto xs = ar1_series(60480);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nws::aggregate_series(xs, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_Aggregate)->Arg(30)->Arg(360);

void BM_FgnHosking(benchmark::State& state) {
  for (auto _ : state) {
    nws::Rng rng(7);
    benchmark::DoNotOptimize(
        nws::generate_fgn(rng, 0.8, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_FgnHosking)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();

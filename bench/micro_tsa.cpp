// Microbenchmarks: time-series analysis kernels (ACF, periodogram, R/S pox
// analysis, aggregation, Hurst estimation, fGn synthesis) at the series
// sizes the reproduction uses (8 640 samples = 24 h of 10-second
// measurements; 60 480 = one week).
//
// The spectral kernels are benchmarked twice: the production FFT-backed
// path (Wiener-Khinchin ACF, Bluestein periodogram, Davies-Harte fGn,
// prefix-sum pox sweep) and the direct-sum / O(n^2) baselines the seed
// shipped.  The *Naive / fast pairs quantify the speedup.
//
// Besides the google-benchmark output (JSON to <NWSCPU_OUT or bench_out>/
// micro_tsa.json unless the caller passes --benchmark_out), main() times
// the headline before/after pairs with a plain chrono loop and writes
// BENCH_tsa.json with explicit speedup fields, in the same spirit as
// net_throughput's BENCH_net.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "tsa/aggregate.hpp"
#include "tsa/autocorrelation.hpp"
#include "tsa/fgn.hpp"
#include "tsa/periodogram.hpp"
#include "tsa/rs_analysis.hpp"
#include "util/rng.hpp"

namespace {

std::vector<double> ar1_series(std::size_t n) {
  nws::Rng rng(99);
  return nws::generate_ar1(rng, 0.95, n);
}

void BM_Acf360(benchmark::State& state) {
  const auto xs = ar1_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::autocorrelations(xs, 360));
  }
}
BENCHMARK(BM_Acf360)->Arg(8640)->Arg(60480);

void BM_Acf360Naive(benchmark::State& state) {
  const auto xs = ar1_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::autocorrelations_naive(xs, 360));
  }
}
BENCHMARK(BM_Acf360Naive)->Arg(8640)->Arg(60480);

// GPH bandwidth at one week: floor(60480^0.5) = 245 ordinates.
void BM_Periodogram(benchmark::State& state) {
  const auto xs = ar1_series(static_cast<std::size_t>(state.range(0)));
  const auto count = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(xs.size())));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::periodogram(xs, count));
  }
}
BENCHMARK(BM_Periodogram)->Arg(8640)->Arg(60480);

void BM_PeriodogramNaive(benchmark::State& state) {
  const auto xs = ar1_series(static_cast<std::size_t>(state.range(0)));
  const auto count = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(xs.size())));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::periodogram_naive(xs, count));
  }
}
BENCHMARK(BM_PeriodogramNaive)->Arg(8640)->Arg(60480);

void BM_PoxPoints(benchmark::State& state) {
  const auto xs = ar1_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::pox_points(xs));
  }
}
BENCHMARK(BM_PoxPoints)->Arg(8640)->Arg(60480);

void BM_HurstRs(benchmark::State& state) {
  const auto xs = ar1_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nws::estimate_hurst_rs(xs));
  }
}
BENCHMARK(BM_HurstRs)->Arg(8640)->Arg(60480);

void BM_Aggregate(benchmark::State& state) {
  const auto xs = ar1_series(60480);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nws::aggregate_series(xs, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_Aggregate)->Arg(30)->Arg(360);

void BM_FgnDaviesHarte(benchmark::State& state) {
  for (auto _ : state) {
    nws::Rng rng(7);
    benchmark::DoNotOptimize(
        nws::generate_fgn(rng, 0.8, static_cast<std::size_t>(state.range(0)),
                          nws::FgnMethod::kDaviesHarte));
  }
}
BENCHMARK(BM_FgnDaviesHarte)->Arg(1024)->Arg(4096)->Arg(60480);

void BM_FgnHosking(benchmark::State& state) {
  for (auto _ : state) {
    nws::Rng rng(7);
    benchmark::DoNotOptimize(
        nws::generate_fgn(rng, 0.8, static_cast<std::size_t>(state.range(0)),
                          nws::FgnMethod::kHosking));
  }
}
BENCHMARK(BM_FgnHosking)->Arg(1024)->Arg(4096);

// ---------------------------------------------------------------------------
// BENCH_tsa.json: headline before/after pairs with explicit speedups.

/// Best-of-k wall time of fn(), in nanoseconds.
template <typename Fn>
double time_ns(Fn&& fn, int reps) {
  using Clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    benchmark::DoNotOptimize(fn());
    const auto dt = std::chrono::duration<double, std::nano>(Clock::now() - t0);
    if (r == 0 || dt.count() < best) best = dt.count();
  }
  return best;
}

struct Pair {
  const char* name;
  double baseline_ns = 0.0;
  double fast_ns = 0.0;
  [[nodiscard]] double speedup() const {
    return fast_ns > 0.0 ? baseline_ns / fast_ns : 0.0;
  }
};

void write_bench_tsa_json() {
  constexpr std::size_t kWeek = 60480;
  constexpr std::size_t kLags = 360;
  constexpr std::size_t kFgnN = 4096;
  const int reps = [] {
    if (const char* env = std::getenv("NWSCPU_TSA_REPS")) {
      const int v = std::atoi(env);
      if (v > 0) return v;
    }
    return 5;
  }();

  const auto xs = ar1_series(kWeek);
  const auto count =
      static_cast<std::size_t>(std::sqrt(static_cast<double>(kWeek)));

  Pair acf{"acf"};
  acf.baseline_ns =
      time_ns([&] { return nws::autocorrelations_naive(xs, kLags); }, reps);
  acf.fast_ns =
      time_ns([&] { return nws::autocorrelations(xs, kLags); }, reps);

  Pair fgn{"fgn"};
  fgn.baseline_ns = time_ns(
      [&] {
        nws::Rng rng(7);
        return nws::generate_fgn(rng, 0.8, kFgnN, nws::FgnMethod::kHosking);
      },
      reps);
  fgn.fast_ns = time_ns(
      [&] {
        nws::Rng rng(7);
        return nws::generate_fgn(rng, 0.8, kFgnN,
                                 nws::FgnMethod::kDaviesHarte);
      },
      reps);

  Pair pgram{"periodogram"};
  pgram.baseline_ns =
      time_ns([&] { return nws::periodogram_naive(xs, count); }, reps);
  pgram.fast_ns = time_ns([&] { return nws::periodogram(xs, count); }, reps);

  // Pox baseline: the per-segment formulation (rescaled_range on each
  // segment) versus the shared-prefix-sum sweep the library now runs.
  Pair pox{"pox"};
  pox.baseline_ns = time_ns(
      [&] {
        std::vector<nws::PoxPoint> points;
        const nws::RsOptions opt;
        for (std::size_t d : nws::geometric_scales(
                 opt.min_segment, xs.size() / opt.max_segment_divisor,
                 opt.growth)) {
          for (std::size_t off = 0; off + d <= xs.size(); off += d) {
            const double rs = nws::rescaled_range(
                std::span<const double>(xs).subspan(off, d));
            if (rs > 0.0) {
              points.push_back({std::log10(static_cast<double>(d)),
                                std::log10(rs)});
            }
          }
        }
        return points;
      },
      reps);
  pox.fast_ns = time_ns([&] { return nws::pox_points(xs); }, reps);

  std::string dir = "bench_out";
  if (const char* env = std::getenv("NWSCPU_OUT")) dir = env;
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/BENCH_tsa.json";
  std::ofstream json(path, std::ios::trunc);
  json << "{\n  \"bench\": \"micro_tsa\",\n  \"reps\": " << reps << ",\n";
  json << "  \"acf\": {\"n\": " << kWeek << ", \"lags\": " << kLags
       << ", \"naive_ns\": " << acf.baseline_ns
       << ", \"fft_ns\": " << acf.fast_ns
       << ", \"speedup\": " << acf.speedup() << "},\n";
  json << "  \"fgn\": {\"n\": " << kFgnN << ", \"h\": 0.8"
       << ", \"hosking_ns\": " << fgn.baseline_ns
       << ", \"davies_harte_ns\": " << fgn.fast_ns
       << ", \"speedup\": " << fgn.speedup() << "},\n";
  json << "  \"periodogram\": {\"n\": " << kWeek << ", \"count\": " << count
       << ", \"naive_ns\": " << pgram.baseline_ns
       << ", \"fft_ns\": " << pgram.fast_ns
       << ", \"speedup\": " << pgram.speedup() << "},\n";
  json << "  \"pox\": {\"n\": " << kWeek
       << ", \"per_segment_ns\": " << pox.baseline_ns
       << ", \"prefix_ns\": " << pox.fast_ns
       << ", \"speedup\": " << pox.speedup() << "}\n";
  json << "}\n";
  json.close();

  std::printf("spectral-kernel speedups (best of %d):\n", reps);
  for (const Pair& p : {acf, fgn, pgram, pox}) {
    std::printf("  %-12s %12.0f ns -> %10.0f ns  (%.1fx)\n", p.name,
                p.baseline_ns, p.fast_ns, p.speedup());
  }
  std::printf("wrote %s\n\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  write_bench_tsa_json();

  bool user_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) user_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!user_out) {
    std::string dir = "bench_out";
    if (const char* env = std::getenv("NWSCPU_OUT")) dir = env;
    std::filesystem::create_directories(dir);
    out_flag = "--benchmark_out=" + dir + "/micro_tsa.json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Microbenchmarks: per-update cost of the forecasting methods and the full
// adaptive battery.
//
// The NWS design constraint the paper leans on: every technique "must be
// relatively cheap to compute" because a deployed forecaster processes
// every measurement of every tracked series on-line.  These benches verify
// the battery stays in the sub-microsecond-per-update regime.
#include <benchmark/benchmark.h>

#include <vector>

#include "forecast/battery.hpp"
#include "forecast/methods.hpp"
#include "util/rng.hpp"

namespace {

std::vector<double> synthetic_series(std::size_t n) {
  nws::Rng rng(1234);
  std::vector<double> xs;
  xs.reserve(n);
  double level = 0.7;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.01)) level = rng.uniform(0.1, 1.0);
    const double v = level + 0.05 * (rng.uniform() - 0.5);
    xs.push_back(std::clamp(v, 0.0, 1.0));
  }
  return xs;
}

void run_forecaster(benchmark::State& state, nws::Forecaster& f) {
  const auto xs = synthetic_series(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.forecast());
    f.observe(xs[i]);
    i = (i + 1) % xs.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_LastValue(benchmark::State& state) {
  nws::LastValueForecaster f;
  run_forecaster(state, f);
}
BENCHMARK(BM_LastValue);

void BM_RunningMean(benchmark::State& state) {
  nws::RunningMeanForecaster f;
  run_forecaster(state, f);
}
BENCHMARK(BM_RunningMean);

void BM_SlidingMean(benchmark::State& state) {
  nws::SlidingMeanForecaster f(static_cast<std::size_t>(state.range(0)));
  run_forecaster(state, f);
}
BENCHMARK(BM_SlidingMean)->Arg(10)->Arg(60);

void BM_ExpSmooth(benchmark::State& state) {
  nws::ExpSmoothForecaster f(0.2);
  run_forecaster(state, f);
}
BENCHMARK(BM_ExpSmooth);

void BM_Median(benchmark::State& state) {
  nws::MedianForecaster f(static_cast<std::size_t>(state.range(0)));
  run_forecaster(state, f);
}
BENCHMARK(BM_Median)->Arg(11)->Arg(31);

void BM_AdaptiveWindow(benchmark::State& state) {
  nws::AdaptiveWindowForecaster f(nws::AdaptiveWindowForecaster::Kind::kMean,
                                  3, 60);
  run_forecaster(state, f);
}
BENCHMARK(BM_AdaptiveWindow);

void BM_FullBattery(benchmark::State& state) {
  const auto f = nws::make_nws_forecaster();
  run_forecaster(state, *f);
}
BENCHMARK(BM_FullBattery);

}  // namespace

BENCHMARK_MAIN();

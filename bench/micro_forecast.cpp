// Microbenchmarks: per-update cost of the forecasting methods and the full
// adaptive battery.
//
// The NWS design constraint the paper leans on: every technique "must be
// relatively cheap to compute" because a deployed forecaster processes
// every measurement of every tracked series on-line.  These benches verify
// the battery stays in the sub-microsecond-per-update regime.
//
// Each order-statistic method is benchmarked twice: the production
// incremental implementation (O(log w) treap/prefix-sum windows) and a
// `naive::` replica of the seed implementation (full O(w log w) window
// scan per forecast).  The BM_Naive* / BM_* pairs quantify the speedup.
//
// Results are also dumped as JSON to <NWSCPU_OUT or bench_out>/
// micro_forecast.json unless the caller passes its own --benchmark_out.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "forecast/adaptive.hpp"
#include "forecast/battery.hpp"
#include "forecast/methods.hpp"
#include "forecast/window.hpp"
#include "util/rng.hpp"

namespace {

std::vector<double> synthetic_series(std::size_t n) {
  nws::Rng rng(1234);
  std::vector<double> xs;
  xs.reserve(n);
  double level = 0.7;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.01)) level = rng.uniform(0.1, 1.0);
    const double v = level + 0.05 * (rng.uniform() - 0.5);
    xs.push_back(std::clamp(v, 0.0, 1.0));
  }
  return xs;
}

void run_forecaster(benchmark::State& state, nws::Forecaster& f) {
  const auto xs = synthetic_series(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.forecast());
    f.observe(xs[i]);
    i = (i + 1) % xs.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// ---------------------------------------------------------------------------
// Seed (pre-optimisation) replicas: every forecast() sorts/scans the window.
// Kept here, not in the library, purely as a benchmark baseline.
namespace naive {

class MedianForecaster final : public nws::Forecaster {
 public:
  explicit MedianForecaster(std::size_t window) : win_(window) {}
  [[nodiscard]] std::string name() const override { return "naive_median"; }
  [[nodiscard]] double forecast() const override {
    return win_.empty() ? kInitialGuess : win_.median();
  }
  void observe(double value) override { win_.push(value); }
  void reset() override { win_.clear(); }
  [[nodiscard]] nws::ForecasterPtr clone() const override {
    return std::make_unique<MedianForecaster>(*this);
  }

 private:
  nws::SlidingWindow win_;
};

class TrimmedMeanForecaster final : public nws::Forecaster {
 public:
  TrimmedMeanForecaster(std::size_t window, std::size_t trim)
      : win_(window), trim_(trim) {}
  [[nodiscard]] std::string name() const override { return "naive_trim"; }
  [[nodiscard]] double forecast() const override {
    return win_.empty() ? kInitialGuess : win_.trimmed_mean(trim_);
  }
  void observe(double value) override { win_.push(value); }
  void reset() override { win_.clear(); }
  [[nodiscard]] nws::ForecasterPtr clone() const override {
    return std::make_unique<TrimmedMeanForecaster>(*this);
  }

 private:
  nws::SlidingWindow win_;
  std::size_t trim_;
};

// Seed adaptive-window forecaster: three full window scans (or
// nth_element copies, for the median kind) per observation.
class AdaptiveWindowForecaster final : public nws::Forecaster {
 public:
  enum class Kind { kMean, kMedian };
  AdaptiveWindowForecaster(Kind kind, std::size_t min_window,
                           std::size_t max_window, double discount = 0.95)
      : kind_(kind),
        min_w_(std::max<std::size_t>(min_window, 1)),
        max_w_(std::max(max_window, min_w_)),
        discount_(discount),
        cur_(std::clamp((min_w_ + max_w_) / 2, min_w_, max_w_)),
        win_(max_w_) {}

  [[nodiscard]] std::string name() const override { return "naive_adapt"; }
  [[nodiscard]] double forecast() const override {
    return window_estimate(cur_);
  }
  void observe(double value) override {
    const std::size_t small_w = std::max(min_w_, cur_ / 2);
    const std::size_t large_w = std::min(max_w_, cur_ * 2);
    if (observed_ > 0) {
      const double e_small = std::abs(window_estimate(small_w) - value);
      const double e_cur = std::abs(window_estimate(cur_) - value);
      const double e_large = std::abs(window_estimate(large_w) - value);
      err_small_ = discount_ * err_small_ + (1.0 - discount_) * e_small;
      err_cur_ = discount_ * err_cur_ + (1.0 - discount_) * e_cur;
      err_large_ = discount_ * err_large_ + (1.0 - discount_) * e_large;
      constexpr double kEps = 1e-9;
      if (err_small_ + kEps < err_cur_ && err_small_ <= err_large_ + kEps) {
        cur_ = small_w;
      } else if (err_large_ + kEps < err_cur_ &&
                 err_large_ + kEps < err_small_) {
        cur_ = large_w;
      }
    }
    win_.push(value);
    ++observed_;
  }
  void reset() override {
    win_.clear();
    cur_ = std::clamp((min_w_ + max_w_) / 2, min_w_, max_w_);
    err_small_ = err_cur_ = err_large_ = 0.0;
    observed_ = 0;
  }
  [[nodiscard]] nws::ForecasterPtr clone() const override {
    return std::make_unique<AdaptiveWindowForecaster>(*this);
  }

 private:
  [[nodiscard]] double window_estimate(std::size_t w) const {
    const std::size_t n = win_.size();
    if (n == 0) return kInitialGuess;
    const std::size_t use = std::min(w, n);
    if (kind_ == Kind::kMean) {
      double acc = 0.0;
      for (std::size_t i = n - use; i < n; ++i) acc += win_.at(i);
      return acc / static_cast<double>(use);
    }
    std::vector<double> tail(use);
    for (std::size_t i = 0; i < use; ++i) tail[i] = win_.at(n - use + i);
    const std::size_t mid = use / 2;
    std::nth_element(tail.begin(),
                     tail.begin() + static_cast<std::ptrdiff_t>(mid),
                     tail.end());
    if (use % 2 == 1) return tail[mid];
    const double hi = tail[mid];
    const double lo = *std::max_element(
        tail.begin(), tail.begin() + static_cast<std::ptrdiff_t>(mid));
    return 0.5 * (lo + hi);
  }

  Kind kind_;
  std::size_t min_w_;
  std::size_t max_w_;
  double discount_;
  std::size_t cur_;
  nws::SlidingWindow win_;
  double err_small_ = 0.0;
  double err_cur_ = 0.0;
  double err_large_ = 0.0;
  std::size_t observed_ = 0;
};

// The canonical battery with every order-statistic method replaced by its
// seed replica (means and smoothers are identical either way, so the
// comparison isolates the window-structure change plus window sharing).
std::vector<nws::ForecasterPtr> make_battery_methods() {
  std::vector<nws::ForecasterPtr> methods;
  methods.push_back(std::make_unique<nws::LastValueForecaster>());
  methods.push_back(std::make_unique<nws::RunningMeanForecaster>());
  for (std::size_t w : {5u, 10u, 20u, 30u, 60u}) {
    methods.push_back(std::make_unique<nws::SlidingMeanForecaster>(w));
  }
  for (double g : {0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 0.9}) {
    methods.push_back(std::make_unique<nws::ExpSmoothForecaster>(g));
  }
  for (std::size_t w : {5u, 11u, 21u, 31u}) {
    methods.push_back(std::make_unique<MedianForecaster>(w));
  }
  methods.push_back(std::make_unique<TrimmedMeanForecaster>(21, 5));
  methods.push_back(std::make_unique<AdaptiveWindowForecaster>(
      AdaptiveWindowForecaster::Kind::kMean, 3, 60));
  methods.push_back(std::make_unique<AdaptiveWindowForecaster>(
      AdaptiveWindowForecaster::Kind::kMedian, 3, 60));
  methods.push_back(std::make_unique<nws::GradientForecaster>());
  return methods;
}

}  // namespace naive

// ---------------------------------------------------------------------------

void BM_LastValue(benchmark::State& state) {
  nws::LastValueForecaster f;
  run_forecaster(state, f);
}
BENCHMARK(BM_LastValue);

void BM_RunningMean(benchmark::State& state) {
  nws::RunningMeanForecaster f;
  run_forecaster(state, f);
}
BENCHMARK(BM_RunningMean);

void BM_SlidingMean(benchmark::State& state) {
  nws::SlidingMeanForecaster f(static_cast<std::size_t>(state.range(0)));
  run_forecaster(state, f);
}
BENCHMARK(BM_SlidingMean)->Arg(10)->Arg(60);

void BM_ExpSmooth(benchmark::State& state) {
  nws::ExpSmoothForecaster f(0.2);
  run_forecaster(state, f);
}
BENCHMARK(BM_ExpSmooth);

void BM_Median(benchmark::State& state) {
  nws::MedianForecaster f(static_cast<std::size_t>(state.range(0)));
  run_forecaster(state, f);
}
BENCHMARK(BM_Median)->Arg(11)->Arg(21)->Arg(31);

void BM_NaiveMedian(benchmark::State& state) {
  naive::MedianForecaster f(static_cast<std::size_t>(state.range(0)));
  run_forecaster(state, f);
}
BENCHMARK(BM_NaiveMedian)->Arg(11)->Arg(21)->Arg(31);

void BM_TrimmedMean(benchmark::State& state) {
  nws::TrimmedMeanForecaster f(static_cast<std::size_t>(state.range(0)), 5);
  run_forecaster(state, f);
}
BENCHMARK(BM_TrimmedMean)->Arg(21)->Arg(31);

void BM_NaiveTrimmedMean(benchmark::State& state) {
  naive::TrimmedMeanForecaster f(static_cast<std::size_t>(state.range(0)),
                                 5);
  run_forecaster(state, f);
}
BENCHMARK(BM_NaiveTrimmedMean)->Arg(21)->Arg(31);

void BM_AdaptiveWindow(benchmark::State& state) {
  nws::AdaptiveWindowForecaster f(nws::AdaptiveWindowForecaster::Kind::kMean,
                                  3, 60);
  run_forecaster(state, f);
}
BENCHMARK(BM_AdaptiveWindow);

void BM_AdaptiveWindowMedian(benchmark::State& state) {
  nws::AdaptiveWindowForecaster f(
      nws::AdaptiveWindowForecaster::Kind::kMedian, 3, 60);
  run_forecaster(state, f);
}
BENCHMARK(BM_AdaptiveWindowMedian);

void BM_NaiveAdaptiveWindow(benchmark::State& state) {
  naive::AdaptiveWindowForecaster f(
      naive::AdaptiveWindowForecaster::Kind::kMean, 3, 60);
  run_forecaster(state, f);
}
BENCHMARK(BM_NaiveAdaptiveWindow);

void BM_NaiveAdaptiveWindowMedian(benchmark::State& state) {
  naive::AdaptiveWindowForecaster f(
      naive::AdaptiveWindowForecaster::Kind::kMedian, 3, 60);
  run_forecaster(state, f);
}
BENCHMARK(BM_NaiveAdaptiveWindowMedian);

void BM_FullBattery(benchmark::State& state) {
  const auto f = nws::make_nws_forecaster();
  run_forecaster(state, *f);
}
BENCHMARK(BM_FullBattery);

void BM_NaiveFullBattery(benchmark::State& state) {
  nws::AdaptiveForecaster f(naive::make_battery_methods());
  run_forecaster(state, f);
}
BENCHMARK(BM_NaiveFullBattery);

}  // namespace

// Custom main: mirror BENCHMARK_MAIN() but default --benchmark_out to a
// JSON dump under NWSCPU_OUT (default bench_out/) so speedup numbers are
// captured by default without shell redirection.
int main(int argc, char** argv) {
  bool user_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) user_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!user_out) {
    std::string dir = "bench_out";
    if (const char* env = std::getenv("NWSCPU_OUT")) dir = env;
    std::filesystem::create_directories(dir);
    out_flag = "--benchmark_out=" + dir + "/micro_forecast.json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Ablation: prediction error and variance as a function of aggregation
// level.
//
// Section 3.2's hypothesis: smoothing may help at certain aggregation
// levels, but "there is no trend as a function of aggregation level that
// we can detect" — while the *variance* of the aggregated series decays
// like m^(2H-2) (slowly, because the series are self-similar).  This bench
// sweeps m and prints both quantities plus the theoretical variance decay
// slope for the host's estimated H.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/experiment_common.hpp"
#include "tsa/aggregate.hpp"
#include "tsa/rs_analysis.hpp"
#include "util/stats.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;

  std::cout << "Ablation: aggregation level m vs variance and one-step "
               "prediction error (load-average series, "
            << experiment_hours() << "h runs)\n";

  for (UcsdHost h : {UcsdHost::kThing2, UcsdHost::kBeowulf}) {
    auto host = make_ucsd_host(h, experiment_seed());
    const HostTrace trace = run_experiment(*host, short_test_config());
    const auto values = trace.load_series.values();
    const double h_est = estimate_hurst_rs(values).hurst;

    std::printf("\n%s (H ~ %.2f; self-similar variance decay ~ m^%.2f, "
                "white noise would be m^-1):\n",
                host_name(h).c_str(), h_est, 2.0 * h_est - 2.0);
    std::printf("  %6s %12s %14s %16s\n", "m", "variance",
                "var ratio", "pred. MAE");
    const double var1 = variance(values);
    for (const std::size_t m : {1u, 3u, 6u, 15u, 30u, 60u, 180u}) {
      const auto agg = aggregate_series(values, m);
      const double var_m = variance(agg);
      const double mae = nws_prediction_mae(agg);
      std::printf("  %6zu %12.5f %14.3f %15.2f%%\n", static_cast<size_t>(m),
                  var_m, var1 > 0 ? var_m / var1 : 0.0, 100 * mae);
    }
  }
  std::cout << "\nShape checks: variance falls with m but far slower than "
               "1/m; prediction error shows no monotone trend in m.\n";
  return 0;
}

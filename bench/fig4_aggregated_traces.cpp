// Reproduces Figure 4: 5-minute aggregated load-average availability
// traces for thing1 and thing2 over the 24-hour aggregated-test run — the
// run in which a 5-minute test process executes once per hour, whose
// intrusiveness is visible in the trace as a periodic dip (noted in the
// paper).
#include <cstdio>
#include <iostream>

#include "common/experiment_common.hpp"
#include "nws/trace_io.hpp"
#include "tsa/aggregate.hpp"
#include "util/stats.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;
  constexpr std::size_t kAggregation = 30;

  std::cout << "Figure 4: 5-minute aggregated availability (load average), "
            << experiment_hours()
            << "h runs with an hourly 5-minute test process\n";
  const std::string dir = output_dir();

  for (UcsdHost h : {UcsdHost::kThing1, UcsdHost::kThing2}) {
    auto host = make_ucsd_host(h, experiment_seed());
    const HostTrace trace = run_experiment(*host, aggregated_test_config());
    const TimeSeries agg = aggregate_series(trace.load_series, kAggregation);

    const std::string path = dir + "/fig4_" + host_name(h) + ".csv";
    write_trace(path, agg);

    RunningStats stats;
    for (double v : agg.values()) stats.add(v);
    std::printf("\n%s — %zu five-minute blocks, mean=%.1f%%, min=%.1f%%, "
                "max=%.1f%%  -> %s\n",
                host_name(h).c_str(), agg.size(), 100 * stats.mean(),
                100 * stats.min(), 100 * stats.max(), path.c_str());
    std::printf("  5-minute test observations recorded: %zu (hourly)\n",
                trace.agg_tests.size());
  }
  std::cout << "\nShape check: the hourly test process leaves a visible "
               "periodic depression in the aggregated trace.\n";
  return 0;
}

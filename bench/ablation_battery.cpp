// Ablation: dynamic model selection vs every single forecasting method.
//
// The NWS claim under test (paper Section 3): dynamically choosing the
// recently-most-accurate method "yields forecasts that are equivalent to,
// or slightly better than, the best forecaster in the set".  For each
// host's load-average series we rank all battery members plus the adaptive
// forecaster by one-step-ahead MAE.
#include <cstdio>
#include <iostream>

#include "common/experiment_common.hpp"
#include "forecast/evaluate.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;

  std::cout << "Ablation: adaptive battery vs individual forecasters "
               "(one-step MAE on the load-average series, "
            << experiment_hours() << "h runs)\n\n";
  const auto fleet = run_fleet(short_test_config());

  for (const auto& result : fleet) {
    const auto evals = evaluate_battery(result.trace.load_series.values());
    // Locate the adaptive forecaster's rank and the best single method.
    std::size_t adaptive_rank = evals.size();
    double adaptive_mae = 0.0;
    for (std::size_t i = 0; i < evals.size(); ++i) {
      if (evals[i].method == "nws_adaptive") {
        adaptive_rank = i;
        adaptive_mae = evals[i].mae;
        break;
      }
    }
    const ForecastEvaluation& best = evals.front();
    std::printf("%-10s adaptive MAE %.2f%% (rank %zu of %zu) | best single: "
                "%-14s %.2f%% | worst: %-14s %.2f%%\n",
                host_name(result.host).c_str(), 100 * adaptive_mae,
                adaptive_rank + 1, evals.size(), best.method.c_str(),
                100 * best.mae, evals.back().method.c_str(),
                100 * evals.back().mae);
  }
  std::cout << "\nShape check: the adaptive forecaster tracks the best "
               "single method within a fraction of a percent on every "
               "host, without knowing in advance which method that is.\n";
  return 0;
}

// Reproduces Table 1: mean absolute measurement error of the three CPU
// availability measurement methods against the 10-second test process,
// per host, over a 24-hour run.
//
// Expected shape (paper): errors of a few percent to ~13% on ordinary
// hosts; conundrum's nice-19 soaker makes load average and vmstat wildly
// pessimistic while the hybrid's probe bias corrects it; kongo's resident
// full-priority job fools the short hybrid probe instead.
#include <iostream>

#include "common/experiment_common.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;

  std::cout << "Table 1: Mean Absolute Measurement Errors, "
            << experiment_hours() << "h run — measured (paper)\n\n";
  const auto fleet = run_fleet(short_test_config());

  TextTable table;
  table.add_row({"Host Name", "Load Average", "vmstat", "NWS Hybrid"});
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const MethodTriple err = measurement_error(fleet[i].trace);
    add_comparison_row(table, host_name(fleet[i].host), err,
                       paper_table1()[i]);
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n"
            << "  conundrum: hybrid << load_average/vmstat (probe bias sees "
               "through nice 19)\n"
            << "  kongo:     hybrid >> load_average/vmstat (1.5s probe "
               "pre-empts the resident job)\n";
  return 0;
}

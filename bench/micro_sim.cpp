// Microbenchmarks: simulator throughput.
//
// The reproduction simulates 6 hosts x 24 h (and one-week runs for the
// self-similarity analysis) at 100 ticks per simulated second, so the
// tick loop's cost bounds every experiment's wall time.  Reported as
// simulated-seconds per wall-second via items/s (items = ticks).
#include <benchmark/benchmark.h>

#include "experiments/hosts.hpp"
#include "sim/host.hpp"
#include "sim/workload.hpp"

namespace {

void BM_IdleHost(benchmark::State& state) {
  nws::sim::Host host({.name = "idle"}, 1);
  for (auto _ : state) {
    host.run_for(10.0);
  }
  state.SetItemsProcessed(state.iterations() * 10 * nws::sim::kHz);
}
BENCHMARK(BM_IdleHost);

void BM_UcsdHostTicks(benchmark::State& state) {
  const auto which =
      nws::all_ucsd_hosts()[static_cast<std::size_t>(state.range(0))];
  auto host = nws::make_ucsd_host(which, 42);
  host->run_for(120.0);  // settle workloads
  for (auto _ : state) {
    host->run_for(10.0);
  }
  state.SetLabel(nws::host_name(which));
  state.SetItemsProcessed(state.iterations() * 10 * nws::sim::kHz);
}
BENCHMARK(BM_UcsdHostTicks)->DenseRange(0, 5);

void BM_TimedProcess(benchmark::State& state) {
  auto host = nws::make_ucsd_host(nws::UcsdHost::kThing2, 42);
  host->run_for(120.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(host->run_timed_process("bench_probe", 1.5));
  }
}
BENCHMARK(BM_TimedProcess);

}  // namespace

BENCHMARK_MAIN();

// Ablation: forecast error as a function of prediction horizon.
//
// Section 3.2's motivation: a scheduler placing a k-step job needs the
// *average* availability over the next k samples.  This bench measures the
// NWS adaptive forecaster's error against the realised k-step mean for
// horizons from 10 seconds to one hour, per host — quantifying how far the
// "recent history predicts the near future" property stretches.
#include <cstdio>
#include <iostream>

#include "common/experiment_common.hpp"
#include "forecast/battery.hpp"
#include "forecast/multistep.hpp"

int main() {
  using namespace nws;
  using namespace nws::bench;

  std::cout << "Ablation: NWS forecast error vs horizon (load-average "
               "series, " << experiment_hours() << "h runs)\n\n";
  const auto fleet = run_fleet(short_test_config());

  const std::vector<std::size_t> horizons = {1, 6, 30, 90, 360};
  std::printf("  %-10s", "host");
  for (std::size_t k : horizons) {
    std::printf(" %8zus", k * 10);
  }
  std::printf("\n");
  for (const auto& result : fleet) {
    const auto adaptive = make_nws_forecaster();
    const auto errors = evaluate_horizons(
        *adaptive, result.trace.load_series.values(), horizons);
    std::printf("  %-10s", host_name(result.host).c_str());
    for (const HorizonError& e : errors) {
      std::printf(" %8.2f%%", 100 * e.mae);
    }
    std::printf("\n");
  }
  std::cout << "\nShape check: error grows sublinearly with horizon — the "
               "long-range autocorrelation keeps even hour-ahead mean "
               "availability forecastable within scheduling tolerances on "
               "most hosts.\n";
  return 0;
}

// Quickstart: the nwscpu public API in one file.
//
//  1. simulate a time-shared Unix host under load,
//  2. measure its CPU availability with the three NWS sensor methods,
//  3. feed the measurements to the forecasting service,
//  4. read back forecasts with their error pedigree,
//  5. run the self-similarity analysis on the collected series.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "forecast/battery.hpp"
#include "nws/forecast_service.hpp"
#include "sensors/hybrid_sensor.hpp"
#include "sensors/sim_sensors.hpp"
#include "sim/host.hpp"
#include "sim/workload.hpp"
#include "tsa/autocorrelation.hpp"
#include "tsa/rs_analysis.hpp"

int main() {
  using namespace nws;

  // --- 1. a simulated workstation with two bursty interactive users ------
  sim::Host host({.name = "demo"}, /*seed=*/2024);
  for (int i = 0; i < 2; ++i) {
    sim::InteractiveSessionConfig user;
    user.name = "user" + std::to_string(i);
    user.mean_think = 20.0;
    host.add_workload(
        std::make_unique<sim::InteractiveSession>(user, host.rng().fork()));
  }

  // --- 2 + 3. sense every 10 s for 2 simulated hours, record into the
  //            forecasting service ---------------------------------------
  LoadAvgSensor load_sensor(host);
  VmstatSensor vmstat_sensor(host);
  HybridSensor hybrid;  // default: 1.5 s probe, once per minute
  ForecastService service;

  std::vector<double> hybrid_history;
  for (int epoch = 0; epoch < 720; ++epoch) {
    host.run_for(10.0);
    const double load_reading = load_sensor.measure();
    const double vmstat_reading = vmstat_sensor.measure();
    if (hybrid.probe_due(host.now())) {
      const double probe = host.run_timed_process("probe", 1.5);
      hybrid.probe_result(host.now(), probe, load_reading, vmstat_reading);
    }
    const double availability = hybrid.measure(load_reading, vmstat_reading);
    hybrid_history.push_back(availability);
    service.record("demo/cpu", {host.now(), availability});
  }

  // --- 4. ask for a forecast --------------------------------------------
  const auto forecast = service.predict("demo/cpu");
  std::printf("after %zu measurements:\n", forecast->history);
  std::printf("  forecast next availability : %.1f%%\n",
              100.0 * forecast->value);
  std::printf("  selected method            : %s\n",
              forecast->method.c_str());
  std::printf("  running forecast MAE       : %.2f%%\n",
              100.0 * forecast->mae);

  // --- 5. series analysis -------------------------------------------------
  const double acf60 = autocorrelation(hybrid_history, 60);
  const HurstEstimate hurst = estimate_hurst_rs(hybrid_history);
  std::printf("  ACF at lag 60 (10 min)     : %.2f\n", acf60);
  std::printf("  Hurst estimate (R/S)       : %.2f  (0.5 < H < 1 => "
              "long-range dependence)\n",
              hurst.hurst);

  // What a dynamic scheduler does with this: expansion-factor reasoning.
  const double job_cpu_seconds = 90.0;
  std::printf("\na %.0f s CPU-bound job is predicted to take ~%.0f s "
              "wall-clock on this host\n",
              job_cpu_seconds, job_cpu_seconds / forecast->value);
  return 0;
}

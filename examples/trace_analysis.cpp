// Trace analysis: offline study of a recorded availability trace.
//
//   ./build/examples/trace_analysis <trace.csv>
//
// Accepts any trace written by write_trace (the figure benches emit them
// into bench_out/) or any 2-column time,value CSV on a regular grid.
// Reports the statistics the paper computes for its traces: summary
// moments, autocorrelation decay, Hurst estimates via both R/S and
// aggregated variance, variance-time behaviour, and a shoot-out of every
// NWS forecasting method on the series.  With no argument it synthesises a
// demo trace from the simulated 'thing2' host first.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "experiments/hosts.hpp"
#include "experiments/runner.hpp"
#include "forecast/evaluate.hpp"
#include "nws/trace_io.hpp"
#include "obs/log.hpp"
#include "tsa/aggregate.hpp"
#include "tsa/autocorrelation.hpp"
#include "tsa/rs_analysis.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace nws;

  // Progress goes through the leveled logger; an interactive example stays
  // chatty by default, but NWSCPU_LOG=error (or off) silences it.
  if (std::getenv("NWSCPU_LOG") == nullptr) {
    obs::set_log_level(obs::LogLevel::kInfo);
  }

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    obs::log_info("trace_analysis",
                  "no trace given; simulating 6h of thing2 first...");
    auto host = make_ucsd_host(UcsdHost::kThing2, 11);
    RunnerConfig cfg;
    cfg.duration = 6 * 3600.0;
    cfg.run_tests = false;
    const HostTrace trace = run_experiment(*host, cfg);
    path = "thing2_demo_trace.csv";
    write_trace(path, trace.load_series);
  }

  const TimeSeries series = read_trace(path);
  const auto xs = series.values();
  std::printf("\ntrace %s: %zu samples @ %.0fs period (%.1f h)\n",
              path.c_str(), series.size(), series.period(),
              series.period() * static_cast<double>(series.size()) / 3600.0);

  RunningStats stats;
  for (double v : xs) stats.add(v);
  std::printf("  mean %.3f  stddev %.3f  min %.3f  max %.3f\n", stats.mean(),
              stats.stddev(), stats.min(), stats.max());

  // One FFT-backed pass yields the whole curve; the decay summary reads it.
  const auto acf = autocorrelations(xs, 360);
  const AcfDecay decay = acf_decay(acf, 0.2);
  std::printf("  ACF: lag1 %.3f, lag60 %.3f; first lag below 0.2: %zu\n",
              acf.size() > 1 ? acf[1] : 0.0, acf.size() > 60 ? acf[60] : 0.0,
              decay.first_below);

  const HurstEstimate rs = estimate_hurst_rs(xs);
  const HurstEstimate av = estimate_hurst_aggvar(xs);
  std::printf("  Hurst: R/S %.2f (R^2 %.2f) | aggregated-variance %.2f\n",
              rs.hurst, rs.r_squared, av.hurst);

  std::printf("  variance-time:");
  for (const VariancePoint& p : variance_time(xs)) {
    std::printf(" m=%zu:%.4f", p.m, p.variance);
  }
  std::printf("\n\nforecaster shoot-out (one-step MAE, best first):\n");
  for (const ForecastEvaluation& ev : evaluate_battery(xs)) {
    std::printf("  %-18s MAE %6.2f%%  RMSE %6.2f%%\n", ev.method.c_str(),
                100 * ev.mae, 100 * ev.rmse);
  }
  return 0;
}

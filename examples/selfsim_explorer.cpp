// Self-similarity explorer: generates series with known memory structure
// and runs all three Hurst estimators side by side — the calibration
// exercise behind Table 4 / Figure 3.
//
//   ./build/examples/selfsim_explorer [n]
//
// Shows (a) that the estimators recover fGn's known H, (b) that a
// short-memory AR(1) with high lag-1 correlation is *not* long-range
// dependent (the distinction the paper draws between "correlated" and
// "self-similar"), and (c) what the simulated workstation traces look like
// under the same instruments.
#include <cstdio>
#include <cstdlib>

#include "experiments/hosts.hpp"
#include "experiments/runner.hpp"
#include "tsa/fgn.hpp"
#include "tsa/periodogram.hpp"
#include "tsa/rs_analysis.hpp"

namespace {

void report(const char* label, std::span<const double> xs) {
  const nws::HurstEstimate rs = nws::estimate_hurst_rs(xs);
  const nws::HurstEstimate av = nws::estimate_hurst_aggvar(xs);
  const nws::HurstEstimate gph = nws::estimate_hurst_periodogram(xs);
  std::printf("  %-22s  R/S %.2f (R^2 %.2f)   agg-var %.2f   GPH %.2f\n",
              label, rs.hurst, rs.r_squared, av.hurst, gph.hurst);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nws;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 8192;
  Rng rng(20260705);

  std::printf("synthetic series (n = %zu):\n", n);
  for (const double h : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    const auto xs = generate_fgn(rng, h, n);
    char label[32];
    std::snprintf(label, sizeof label, "fGn H = %.1f", h);
    report(label, xs);
  }
  const auto ar1 = generate_ar1(rng, 0.9, n);
  report("AR(1) phi = 0.9", ar1);
  std::printf("    (high short-lag correlation, but short memory: its true "
              "asymptotic H is 0.5)\n");

  std::printf("\nsimulated hosts (6h load-average availability):\n");
  for (UcsdHost h : {UcsdHost::kThing1, UcsdHost::kThing2,
                     UcsdHost::kBeowulf}) {
    auto host = make_ucsd_host(h, 7);
    RunnerConfig cfg;
    cfg.duration = 6 * 3600.0;
    cfg.run_tests = false;
    const HostTrace trace = run_experiment(*host, cfg);
    report(host_name(h).c_str(), trace.load_series.values());
  }
  std::printf("\nAll availability traces sit in 0.5 < H < 1.0 — the "
              "long-range dependence the paper reports — while remaining "
              "short-term predictable (Tables 2-3).\n");
  return 0;
}

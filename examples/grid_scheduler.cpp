// Grid scheduler example: the use case that motivates the paper.
//
// A metacomputing scheduler must choose, for each arriving CPU-bound job,
// the host whose *predicted* availability gives the shortest expected
// completion time (availability as an expansion factor).  This example
// simulates the six-host UCSD fleet, keeps an NWS forecast per host, and
// compares three placement policies over a stream of jobs:
//
//   nws-forecast : place on argmax of the NWS hybrid forecast
//   load-average : place on argmax of raw 1/(load+1)         (what Condor/
//                  Globus-era schedulers did)
//   random       : uniform placement (baseline)
//
// The measured speedup of forecast-driven placement over random echoes the
// >100% application-level gains the paper cites from prior AppLeS work.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "experiments/hosts.hpp"
#include "nws/forecast_service.hpp"
#include "sensors/hybrid_sensor.hpp"
#include "sensors/sim_sensors.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

struct FleetHost {
  std::unique_ptr<nws::sim::Host> host;
  std::unique_ptr<nws::LoadAvgSensor> load_sensor;
  std::unique_ptr<nws::VmstatSensor> vmstat_sensor;
  nws::HybridSensor hybrid;
  std::string series;
};

/// Advances every host to `t`, sensing every host on the way.
void sense_all(std::vector<FleetHost>& fleet, nws::ForecastService& svc,
               double t) {
  for (FleetHost& f : fleet) {
    f.host->run_until(t);
    const double load_reading = f.load_sensor->measure();
    const double vmstat_reading = f.vmstat_sensor->measure();
    if (f.hybrid.probe_due(f.host->now())) {
      const double probe = f.host->run_timed_process("probe", 1.5);
      f.hybrid.probe_result(f.host->now(), probe, load_reading,
                            vmstat_reading);
    }
    svc.record(f.series,
               {f.host->now(), f.hybrid.measure(load_reading, vmstat_reading)});
  }
}

}  // namespace

int main() {
  using namespace nws;
  constexpr double kJobCpuSeconds = 60.0;  // CPU demand of each job
  constexpr int kJobs = 40;
  constexpr double kJobGap = 120.0;  // one job every 2 minutes

  std::printf("Grid scheduler demo: placing %d jobs of %.0f CPU-seconds "
              "across the 6-host fleet\n\n",
              kJobs, kJobCpuSeconds);

  const char* policy_names[] = {"nws-forecast", "load-average", "random"};
  for (int policy = 0; policy < 3; ++policy) {
    // Fresh identical fleet per policy so runs are comparable.
    std::vector<FleetHost> fleet;
    for (UcsdHost h : all_ucsd_hosts()) {
      FleetHost f;
      f.host = make_ucsd_host(h, 7);
      f.load_sensor = std::make_unique<LoadAvgSensor>(*f.host);
      f.vmstat_sensor = std::make_unique<VmstatSensor>(*f.host);
      f.series = host_name(h) + "/cpu";
      fleet.push_back(std::move(f));
    }
    ForecastService svc;
    Rng rng(31337);

    // Warm up sensing for 10 minutes of simulated time.
    for (int epoch = 1; epoch <= 60; ++epoch) {
      sense_all(fleet, svc, 10.0 * epoch);
    }

    RunningStats wall_times;
    std::vector<int> placements(fleet.size(), 0);
    double t = fleet.front().host->now();
    for (int j = 0; j < kJobs; ++j) {
      // Pick a host according to the policy.
      std::size_t pick = 0;
      if (policy == 0) {
        double best = -1.0;
        for (std::size_t i = 0; i < fleet.size(); ++i) {
          const double v = svc.predict(fleet[i].series)->value;
          if (v > best) {
            best = v;
            pick = i;
          }
        }
      } else if (policy == 1) {
        double best = -1.0;
        for (std::size_t i = 0; i < fleet.size(); ++i) {
          const double v = 1.0 / (fleet[i].host->load_average() + 1.0);
          if (v > best) {
            best = v;
            pick = i;
          }
        }
      } else {
        pick = static_cast<std::size_t>(rng.below(fleet.size()));
      }

      ++placements[pick];

      // Run the job to completion on the chosen host: it is CPU-bound, so
      // its wall time is cpu_demand / achieved_fraction.  We run it in
      // fixed wall slices until it has accumulated its CPU demand.
      auto& chosen = *fleet[pick].host;
      const sim::TimedRun run = chosen.start_timed_process(
          "job" + std::to_string(j), /*wall_seconds=*/kJobCpuSeconds * 20.0);
      double wall = 0.0;
      while (true) {
        chosen.run_for(1.0);
        wall += 1.0;
        const double cpu = chosen.cpu_fraction(run) * wall;
        if (cpu >= kJobCpuSeconds || wall >= kJobCpuSeconds * 20.0) break;
      }
      chosen.scheduler().exit_process(run.pid);
      chosen.scheduler().reap_one(run.pid);
      wall_times.add(wall);

      // Keep the fleet's clocks and measurements in step.
      t += kJobGap;
      for (int epoch = 0; epoch < static_cast<int>(kJobGap / 10.0); ++epoch) {
        sense_all(fleet, svc, t - kJobGap + 10.0 * (epoch + 1));
      }
    }

    std::printf("  %-14s mean job wall time %6.1f s  (ideal %.0f s), "
                "worst %6.1f s\n",
                policy_names[policy], wall_times.mean(), kJobCpuSeconds,
                wall_times.max());
    std::printf("  %-14s placements:", "");
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (placements[i] > 0) {
        std::printf(" %s=%d", host_name(all_ucsd_hosts()[i]).c_str(),
                    placements[i]);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading the placements: the load-average policy never touches "
      "conundrum — its nice-19 soaker makes the run queue look busy even "
      "though a full-priority job would get nearly the whole CPU.  The "
      "forecast policy reclaims it.  Random placement pays for every visit "
      "to kongo, whose resident job halves a guest's share.  (kongo is also "
      "the hybrid sensor's known blind spot — see Table 1 and the probe-"
      "duration ablation.)\n");
  return 0;
}

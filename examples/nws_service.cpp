// NWS service demo: the full deployment shape of the original Network
// Weather Service in one process —
//
//   * an NwsServer (memory + forecasters) listening on a loopback TCP port,
//   * six "sensor" clients, one per simulated UCSD host, PUTting their
//     hybrid availability measurements every 10 simulated seconds,
//   * a "scheduler" client querying FORECASTs and printing the fleet view.
//
// Run:  ./build/examples/nws_service [simulated_minutes]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "experiments/hosts.hpp"
#include "nws/client.hpp"
#include "nws/server.hpp"
#include "sensors/hybrid_sensor.hpp"
#include "sensors/sim_sensors.hpp"

namespace {

struct SensorHost {
  std::unique_ptr<nws::sim::Host> host;
  std::unique_ptr<nws::LoadAvgSensor> load;
  std::unique_ptr<nws::VmstatSensor> vmstat;
  nws::HybridSensor hybrid;
  nws::NwsClient client;
  std::string series;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace nws;
  const double minutes = argc > 1 ? std::atof(argv[1]) : 30.0;

  NwsServer server;
  const std::uint16_t port = server.start(0);
  if (port == 0) {
    std::fprintf(stderr, "cannot start server\n");
    return 1;
  }
  std::printf("NWS service listening on 127.0.0.1:%u\n\n", port);

  std::vector<SensorHost> fleet;
  for (UcsdHost h : all_ucsd_hosts()) {
    SensorHost s;
    s.host = make_ucsd_host(h, 2026);
    s.load = std::make_unique<LoadAvgSensor>(*s.host);
    s.vmstat = std::make_unique<VmstatSensor>(*s.host);
    s.series = host_name(h) + "/cpu";
    if (!s.client.connect(port)) {
      std::fprintf(stderr, "sensor cannot connect\n");
      return 1;
    }
    fleet.push_back(std::move(s));
  }

  // Sensor loop: each epoch every host advances 10 simulated seconds and
  // PUTs its hybrid measurement.
  const int epochs = static_cast<int>(minutes * 6.0);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (SensorHost& s : fleet) {
      s.host->run_for(10.0);
      const double load_reading = s.load->measure();
      const double vmstat_reading = s.vmstat->measure();
      if (s.hybrid.probe_due(s.host->now())) {
        const double probe = s.host->run_timed_process("probe", 1.5);
        s.hybrid.probe_result(s.host->now(), probe, load_reading,
                              vmstat_reading);
      }
      const double availability =
          s.hybrid.measure(load_reading, vmstat_reading);
      if (!s.client.put(s.series, {s.host->now(), availability})) {
        std::fprintf(stderr, "PUT failed for %s\n", s.series.c_str());
        return 1;
      }
    }
  }

  // Scheduler view: fresh client, queries everything.
  NwsClient scheduler;
  if (!scheduler.connect(port)) return 1;
  const auto names = scheduler.series();
  std::printf("after %.0f simulated minutes (%llu requests served):\n\n",
              minutes,
              static_cast<unsigned long long>(server.requests_served()));
  std::printf("  %-16s %10s %8s %10s %s\n", "series", "forecast", "MAE",
              "history", "method");
  for (const std::string& name : names.value_or(std::vector<std::string>{})) {
    const auto f = scheduler.forecast(name);
    if (!f) continue;
    std::printf("  %-16s %9.1f%% %7.2f%% %10zu %s\n", name.c_str(),
                100 * f->value, 100 * f->mae, f->history, f->method.c_str());
  }
  std::printf("\nA grid scheduler would place work on the series with the "
              "highest forecast, weighted by its MAE.\n");
  server.stop();
  return 0;
}

// Live monitor: runs the full NWS CPU sensor + forecaster on the machine
// this binary executes on, via /proc (Linux).
//
//   ./build/examples/live_monitor [seconds] [period_seconds]
//
// Every period it prints the load-average, vmstat and hybrid availability
// readings plus the NWS forecast for the next period.  The hybrid's 1.5 s
// spin probe runs once per minute (you will see the process at ~100% CPU
// briefly — that is the measured 2.5% overhead the paper reports).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "nws/forecast_service.hpp"
#include "proc/real_sensors.hpp"

int main(int argc, char** argv) {
  using namespace nws;
  const double total_seconds = argc > 1 ? std::atof(argv[1]) : 30.0;
  const double period = argc > 2 ? std::atof(argv[2]) : 2.0;

  RealLoadAvgSensor load_sensor;
  RealVmstatSensor vmstat_sensor;
  RealHybridMonitor hybrid({.probe_period = 60.0, .probe_duration = 1.5});
  ForecastService service;

  std::printf("%8s %12s %8s %8s %10s %14s\n", "t(s)", "loadavg", "vmstat",
              "hybrid", "forecast", "method");

  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (elapsed < total_seconds) {
    const double load_reading = load_sensor.measure();
    const double vmstat_reading = vmstat_sensor.measure();
    const double hybrid_reading = hybrid.measure(elapsed);
    service.record("localhost/cpu", {elapsed, hybrid_reading});
    const auto forecast = service.predict("localhost/cpu");
    std::printf("%8.1f %11.1f%% %7.1f%% %7.1f%% %9.1f%% %14s\n", elapsed,
                100 * load_reading, 100 * vmstat_reading,
                100 * hybrid_reading, 100 * forecast->value,
                forecast->method.c_str());
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(period));
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  }
  return 0;
}

// Calibration harness: prints per-host measurement/forecast error summaries
// on a shortened run so workload parameters can be tuned against the
// paper's Tables 1-3.  Not part of the reproduction benches; kept as a
// development aid and as an example of driving the experiment API directly.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "experiments/analysis.hpp"
#include "experiments/hosts.hpp"
#include "experiments/runner.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace nws;
  const double hours = argc > 1 ? std::atof(argv[1]) : 4.0;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 42;

  RunnerConfig cfg;
  cfg.duration = hours * 3600.0;
  cfg.run_agg_tests = false;

  std::printf("%-10s %7s | %7s %7s %7s | %7s %7s %7s | %6s %6s\n", "host",
              "loadavg", "T1.load", "T1.vm", "T1.hyb", "T3.load", "T3.vm",
              "T3.hyb", "mean", "ntest");
  for (UcsdHost h : all_ucsd_hosts()) {
    const auto t_start = std::chrono::steady_clock::now();
    auto host = make_ucsd_host(h, seed);
    const HostTrace trace = run_experiment(*host, cfg);
    const MethodTriple m = measurement_error(trace);
    const MethodTriple p = prediction_error(trace);
    std::vector<double> truth;
    for (const auto& t : trace.tests) truth.push_back(t.availability);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_start)
            .count();
    std::printf(
        "%-10s %7.3f | %6.1f%% %6.1f%% %6.1f%% | %6.1f%% %6.1f%% %6.1f%% | "
        "%6.2f %6zu  (%.1fs)\n",
        host_name(h).c_str(), host->load_average(), 100 * m.load_average,
        100 * m.vmstat, 100 * m.hybrid, 100 * p.load_average, 100 * p.vmstat,
        100 * p.hybrid, mean(truth), trace.tests.size(), wall);
  }
  return 0;
}

// Custom fleet example: run the paper's measurement/forecast protocol on
// hosts described in a fleet configuration file rather than the built-in
// UCSD six.
//
//   ./build/examples/custom_fleet [fleet.conf] [hours]
//
// With no arguments it writes and uses a demo config, so the example is
// runnable out of the box.  For each host it prints the Table-1/Table-3
// style error summary, which is how a user would validate nwscpu's sensors
// against their own environment model.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "experiments/analysis.hpp"
#include "experiments/fleet_config.hpp"
#include "experiments/runner.hpp"

namespace {

constexpr const char* kDemoConfig = R"(# demo fleet: a build server, a
# desktop, and a machine with a nice-19 cycle soaker
[host buildsrv]
interrupt_load = 0.03
batch = true
batch.jobs_per_hour = 10
batch.duration_mu = 4.0
batch.cpu_duty = 0.6
daemon.period = 300
daemon.burst = 2

[host desktop]
users = 2
user.mean_think = 15
user.burst_alpha = 1.4

[host soaked]
soaker = true
users = 1
user.mean_think = 60
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace nws;
  std::string path = argc > 1 ? argv[1] : "";
  const double hours = argc > 2 ? std::atof(argv[2]) : 4.0;

  if (path.empty()) {
    path = "demo_fleet.conf";
    std::ofstream(path) << kDemoConfig;
    std::printf("no config given; wrote %s\n", path.c_str());
  }

  std::vector<HostSpec> specs;
  try {
    specs = parse_fleet_config(std::filesystem::path(path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (specs.empty()) {
    std::fprintf(stderr, "error: %s defines no hosts\n", path.c_str());
    return 1;
  }

  RunnerConfig cfg;
  cfg.duration = hours * 3600.0;

  std::printf("\n%-12s | %22s | %22s\n", "host",
              "measurement error (T1)", "prediction error (T3)");
  std::printf("%-12s | %6s %6s %7s | %6s %6s %7s\n", "", "load", "vmstat",
              "hybrid", "load", "vmstat", "hybrid");
  for (const HostSpec& spec : specs) {
    auto host = build_host(spec, 42);
    const HostTrace trace = run_experiment(*host, cfg);
    const MethodTriple t1 = measurement_error(trace);
    const MethodTriple t3 = prediction_error(trace);
    std::printf("%-12s | %5.1f%% %5.1f%% %6.1f%% | %5.1f%% %5.1f%% %6.1f%%\n",
                spec.name.c_str(), 100 * t1.load_average, 100 * t1.vmstat,
                100 * t1.hybrid, 100 * t3.load_average, 100 * t3.vmstat,
                100 * t3.hybrid);
  }
  std::printf("\nHosts with resident nice-19 work reproduce the conundrum "
              "pathology; add 'hog = true' to a section to see kongo's.\n");
  return 0;
}

// Parity matrix for the multi-dispatcher network plane: {1,2,4}
// dispatcher threads x poll vs epoll event-loop backends x text vs
// binary framing, every cell compared byte-for-byte against the
// single-dispatcher text oracle.  A connection is pinned to its
// accepting dispatcher, so per-connection slot ordering — and therefore
// the response byte stream — must not depend on the dispatcher count.
//
// Also covers the SO_REUSEPORT fallback (ServerConfig::reuseport=false
// forces the shared-listener path behind the accept lock), a
// concurrent-accept storm across dispatchers (the TSan target), the
// listen-backlog knob, NWSCPU_DISPATCHERS resolution, and the router's
// dispatcher planes against the same oracle.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "nws/protocol.hpp"
#include "nws/router.hpp"
#include "nws/server.hpp"

namespace nws {
namespace {

/// Request script spanning every verb plus pipelined duplicates and a
/// malformed probe — the same shape as the net-backend matrix, enough
/// distinct series to spread across shards and pool connections.
std::vector<std::string> script_lines() {
  std::vector<std::string> lines;
  const char* series[] = {"alpha/cpu", "bravo/cpu", "charlie/cpu",
                          "delta/cpu", "echo/cpu"};
  for (int round = 0; round < 10; ++round) {
    for (const char* s : series) {
      const double t = 10.0 * (round + 1);
      lines.push_back("PUT " + std::string(s) + " " + std::to_string(t) +
                      " 0." + std::to_string(20 + (round * 11) % 75));
    }
  }
  for (const char* s : series) {
    lines.push_back("FORECAST " + std::string(s));
    lines.push_back("VALUES " + std::string(s) + " 4");
    lines.push_back("STATS " + std::string(s));
  }
  lines.push_back("PUTS alpha/cpu 1 400 0.5");
  lines.push_back("PUTS alpha/cpu 1 410 0.5");  // seq dup
  lines.push_back("PUTB echo/cpu 3 1 500 0.5 510 0.625 520 0.75");
  lines.push_back("FORECAST nobody/cpu");  // unknown series
  lines.push_back("SERIES");
  lines.push_back("STATS");
  lines.push_back("PING");
  lines.push_back("BOGUS request");  // malformed
  return lines;
}

/// Encodes one script line as a binary request frame (malformed lines
/// ride the TEXT op raw, drawing the oracle's exact error).
void append_frame_for_line(std::string& wire, const std::string& line) {
  if (const auto req = parse_request(line)) {
    append_binary_request(wire, *req);
    return;
  }
  std::string payload;
  payload += static_cast<char>(kBinOpText);
  payload += line;
  append_binary_response(wire, payload);  // same [u32 len][bytes] layout
}

class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  bool send_bytes(std::string_view bytes) {
    std::size_t sent = 0;
    while (fd_ >= 0 && sent < bytes.size()) {
      const ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (w <= 0) return false;
      sent += static_cast<std::size_t>(w);
    }
    return sent == bytes.size();
  }

  [[nodiscard]] std::optional<std::string> read_line() {
    for (;;) {
      const std::size_t nl = rx_.find('\n');
      if (nl != std::string::npos) {
        std::string line = rx_.substr(0, nl);
        rx_.erase(0, nl + 1);
        return line;
      }
      if (!fill()) return std::nullopt;
    }
  }

  [[nodiscard]] std::optional<std::string> read_frame() {
    for (;;) {
      std::size_t frame_end = 0;
      std::string_view payload;
      const BinFrameStatus status =
          extract_binary_frame(rx_, 16 * 1024 * 1024, frame_end, payload);
      if (status == BinFrameStatus::kError) return std::nullopt;
      if (status == BinFrameStatus::kFrame) {
        std::string out(payload);
        rx_.erase(0, frame_end);
        return out;
      }
      if (!fill()) return std::nullopt;
    }
  }

 private:
  bool fill() {
    char chunk[4096];
    const ssize_t n = fd_ >= 0 ? ::recv(fd_, chunk, sizeof chunk, 0) : -1;
    if (n <= 0) return false;
    rx_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string rx_;
};

ServerConfig dispatcher_config(std::size_t dispatchers, NetBackend backend,
                               bool reuseport = true) {
  ServerConfig cfg;
  cfg.dispatchers = dispatchers;
  cfg.net_backend = backend;
  cfg.reuseport = reuseport;
  cfg.shards = 4;
  return cfg;
}

/// Runs the script pipelined (one buffered write) in text framing.
std::vector<std::string> run_text(std::uint16_t port,
                                  const std::vector<std::string>& script) {
  std::string wire;
  for (const std::string& line : script) {
    wire += line;
    wire += '\n';
  }
  RawConn conn(port);
  EXPECT_TRUE(conn.ok());
  EXPECT_TRUE(conn.send_bytes(wire));
  std::vector<std::string> responses;
  responses.reserve(script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    const auto line = conn.read_line();
    EXPECT_TRUE(line.has_value()) << "response " << i << " missing";
    if (!line) break;
    responses.push_back(*line);
  }
  return responses;
}

/// Runs the script pipelined in binary framing (one write: HELLO BIN +
/// every frame).
std::vector<std::string> run_binary(std::uint16_t port,
                                    const std::vector<std::string>& script) {
  std::string wire(kHelloBinRequest);
  wire += '\n';
  for (const std::string& line : script) append_frame_for_line(wire, line);
  RawConn conn(port);
  EXPECT_TRUE(conn.ok());
  EXPECT_TRUE(conn.send_bytes(wire));
  const auto ack = conn.read_line();
  EXPECT_EQ(ack.value_or(""), kHelloBinAck);
  std::vector<std::string> responses;
  responses.reserve(script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    const auto payload = conn.read_frame();
    EXPECT_TRUE(payload.has_value()) << "frame " << i << " missing";
    if (!payload) break;
    responses.push_back(*payload);
  }
  return responses;
}

std::vector<std::string> text_oracle(const std::vector<std::string>& script) {
  NwsServer server(dispatcher_config(1, NetBackend::kPoll));
  const std::uint16_t port = server.start(0);
  EXPECT_NE(port, 0);
  std::vector<std::string> oracle = run_text(port, script);
  server.stop();
  return oracle;
}

TEST(DispatcherParity, ByteIdenticalAtAnyDispatcherCount) {
  const std::vector<std::string> script = script_lines();
  const std::vector<std::string> oracle = text_oracle(script);
  ASSERT_EQ(oracle.size(), script.size());

  for (const NetBackend backend : {NetBackend::kPoll, NetBackend::kEpoll}) {
    for (const std::size_t d :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      // A fresh server per framing: the script mutates state (STATS
      // totals), so both runs must start from the oracle's blank slate.
      std::vector<std::string> text;
      std::vector<std::string> binary;
      {
        NwsServer server(dispatcher_config(d, backend));
        const std::uint16_t port = server.start(0);
        ASSERT_NE(port, 0);
        EXPECT_EQ(server.dispatcher_count(), d);
        text = run_text(port, script);
        server.stop();
      }
      {
        NwsServer server(dispatcher_config(d, backend));
        const std::uint16_t port = server.start(0);
        ASSERT_NE(port, 0);
        binary = run_binary(port, script);
        server.stop();
      }
      const std::string cell =
          std::string("backend=") +
          (backend == NetBackend::kPoll ? "poll" : "epoll") +
          " dispatchers=" + std::to_string(d);
      ASSERT_EQ(text.size(), oracle.size()) << cell;
      ASSERT_EQ(binary.size(), oracle.size()) << cell;
      for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(text[i], oracle[i]) << cell << " request: " << script[i];
        EXPECT_EQ(binary[i], oracle[i]) << cell << " request: " << script[i];
      }
    }
  }
}

TEST(DispatcherParity, ReuseportFallbackSharesOneListenerBehindTheLock) {
  const std::vector<std::string> script = script_lines();
  const std::vector<std::string> oracle = text_oracle(script);

  // reuseport=false forces the fallback: every dispatcher polls the one
  // listener and accepts behind the lock.  Responses stay byte-identical.
  NwsServer server(dispatcher_config(4, NetBackend::kEpoll,
                                     /*reuseport=*/false));
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  EXPECT_EQ(server.dispatcher_count(), 4u);
  EXPECT_FALSE(server.accept_sharded());
  const std::vector<std::string> text = run_text(port, script);
  server.stop();
  ASSERT_EQ(text.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(text[i], oracle[i]) << " request: " << script[i];
  }
}

TEST(DispatcherParity, SingleDispatcherNeverShards) {
  NwsServer server(dispatcher_config(1, NetBackend::kEpoll));
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  EXPECT_EQ(server.dispatcher_count(), 1u);
  EXPECT_FALSE(server.accept_sharded());
  server.stop();
}

#ifdef __linux__
TEST(DispatcherParity, ReuseportShardsAcceptLoadOnLinux) {
  NwsServer server(dispatcher_config(2, NetBackend::kEpoll));
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  EXPECT_TRUE(server.accept_sharded());
  // Both listener shards answer on the one bound port.
  const std::vector<std::string> ping = {"PING"};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(run_text(port, ping), std::vector<std::string>{"OK"});
  }
  server.stop();
}
#endif

TEST(DispatcherStorm, ConcurrentAcceptsAcrossDispatchers) {
  // The TSan target: many short-lived connections arriving at once,
  // spread across dispatcher accept paths, each doing real work.
  NwsServer server(dispatcher_config(4, NetBackend::kEpoll));
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);

  constexpr int kThreads = 8;
  constexpr int kConnsPerThread = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([port, t, &failures] {
      const std::string series = "storm" + std::to_string(t) + "/cpu";
      for (int c = 0; c < kConnsPerThread; ++c) {
        RawConn conn(port);
        if (!conn.ok()) {
          failures.fetch_add(1);
          continue;
        }
        std::string wire = "PUT " + series + " " +
                           std::to_string(10 * (c + 1)) + " 0.5\nFORECAST " +
                           series + "\nPING\n";
        if (!conn.send_bytes(wire)) {
          failures.fetch_add(1);
          continue;
        }
        const auto put = conn.read_line();
        const auto forecast = conn.read_line();
        const auto ping = conn.read_line();
        if (put.value_or("") != "OK" ||
            forecast.value_or("").rfind("OK ", 0) != 0 ||
            ping.value_or("") != "OK") {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  server.stop();
}

TEST(DispatcherConfig, ListenBacklogKnobStillAccepts) {
  ServerConfig cfg = dispatcher_config(2, NetBackend::kEpoll);
  cfg.listen_backlog = 1;  // tiny backlog must not break serial accepts
  NwsServer server(cfg);
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  const std::vector<std::string> ping = {"PING"};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run_text(port, ping), std::vector<std::string>{"OK"});
  }
  server.stop();
}

TEST(DispatcherConfig, EnvironmentSelectsDispatcherCount) {
  ::setenv("NWSCPU_DISPATCHERS", "3", 1);
  {
    NwsServer server;
    const std::uint16_t port = server.start(0);
    ASSERT_NE(port, 0);
    EXPECT_EQ(server.dispatcher_count(), 3u);
    server.stop();
  }
  // A config override beats the environment.
  {
    ServerConfig cfg;
    cfg.dispatchers = 2;
    NwsServer server(cfg);
    const std::uint16_t port = server.start(0);
    ASSERT_NE(port, 0);
    EXPECT_EQ(server.dispatcher_count(), 2u);
    server.stop();
  }
  ::unsetenv("NWSCPU_DISPATCHERS");
}

TEST(DispatcherRouter, PlanesMatchTheSinglePlaneOracle) {
  const std::vector<std::string> script = script_lines();
  const std::vector<std::string> oracle = text_oracle(script);

  for (const std::size_t planes : {std::size_t{1}, std::size_t{2}}) {
    for (const bool binary : {false, true}) {
      std::vector<std::unique_ptr<NwsServer>> servers;
      std::string spec;
      for (std::size_t i = 0; i < 2; ++i) {
        ServerConfig cfg;
        cfg.shards = 1;
        servers.push_back(std::make_unique<NwsServer>(cfg));
        const std::uint16_t bport = servers.back()->start(0);
        ASSERT_NE(bport, 0);
        if (!spec.empty()) spec += ',';
        spec += std::to_string(bport);
      }
      RouterConfig rcfg;
      rcfg.backends = spec;
      rcfg.dispatchers = planes;
      rcfg.pool_size = 2;
      rcfg.backoff = BackoffConfig{2.0, 50.0, 2.0, 0.0, 0.1};
      Router router(rcfg);
      ASSERT_TRUE(router.start(0));
      EXPECT_EQ(router.dispatcher_count(), planes);

      const std::vector<std::string> got =
          binary ? run_binary(router.port(), script)
                 : run_text(router.port(), script);
      const std::string cell = "planes=" + std::to_string(planes) +
                               (binary ? " bin" : " text");
      ASSERT_EQ(got.size(), oracle.size()) << cell;
      for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(got[i], oracle[i]) << cell << " request: " << script[i];
      }
      router.stop();
      for (auto& s : servers) s->stop();
    }
  }
}

TEST(DispatcherRouter, ConcurrentClientsAcrossPlanes) {
  // Storm variant through the router: clients pinned to different planes
  // write disjoint series through shared upstream fleets.
  std::vector<std::unique_ptr<NwsServer>> servers;
  std::string spec;
  for (std::size_t i = 0; i < 2; ++i) {
    servers.push_back(std::make_unique<NwsServer>());
    const std::uint16_t bport = servers.back()->start(0);
    ASSERT_NE(bport, 0);
    if (!spec.empty()) spec += ',';
    spec += std::to_string(bport);
  }
  RouterConfig rcfg;
  rcfg.backends = spec;
  rcfg.dispatchers = 2;
  rcfg.backoff = BackoffConfig{2.0, 50.0, 2.0, 0.0, 0.1};
  Router router(rcfg);
  ASSERT_TRUE(router.start(0));
  const std::uint16_t port = router.port();

  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([port, t, &failures] {
      const std::string series = "plane" + std::to_string(t) + "/cpu";
      RawConn conn(port);
      if (!conn.ok()) {
        failures.fetch_add(1);
        return;
      }
      std::string wire;
      for (int i = 0; i < 20; ++i) {
        wire += "PUT " + series + " " + std::to_string(10 * (i + 1)) +
                " 0.5\n";
      }
      wire += "FORECAST " + series + "\n";
      if (!conn.send_bytes(wire)) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 20; ++i) {
        if (conn.read_line().value_or("") != "OK") failures.fetch_add(1);
      }
      if (conn.read_line().value_or("").rfind("OK ", 0) != 0) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  router.stop();
  for (auto& s : servers) s->stop();
}

}  // namespace
}  // namespace nws

// Tests for the thread pool (util/thread_pool.hpp) and the parallel fleet
// runner (experiments/fleet.hpp).
//
// The load-bearing property is determinism: run_fleet_parallel must be
// byte-identical to the serial host loop for a fixed seed, regardless of
// job count or completion order.  The bench tables and robustness sweep
// rely on this to stay reproducible after the fan-out.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiments/fleet.hpp"
#include "experiments/hosts.hpp"
#include "experiments/runner.hpp"
#include "util/thread_pool.hpp"

namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    nws::ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
    // The destructor must also drain anything submitted after wait_idle.
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  nws::parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  }, 8);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SerialFallbackMatchesParallelResult) {
  constexpr std::size_t kN = 1000;
  std::vector<double> serial(kN), parallel(kN);
  const auto fill = [](std::vector<double>& out) {
    return [&out](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5 + 0.25;
    };
  };
  nws::parallel_for(kN, fill(serial), 1);
  nws::parallel_for(kN, fill(parallel), 4);
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPool, ParallelForHandlesZeroAndTinyRanges) {
  int calls = 0;
  nws::parallel_for(0, [&](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  nws::parallel_for(1, [&](std::size_t) { ++one; }, 4);
  EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPool, PropagatesFirstExceptionFromWorkers) {
  EXPECT_THROW(
      nws::parallel_for(100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        },
                        4),
      std::runtime_error);
}

TEST(ThreadPool, DefaultJobsHonoursEnvVariable) {
  const char* old = std::getenv("NWSCPU_JOBS");
  const std::string saved = old ? old : "";

  ::setenv("NWSCPU_JOBS", "3", 1);
  EXPECT_EQ(nws::ThreadPool::default_jobs(), 3u);
  ::setenv("NWSCPU_JOBS", "0", 1);  // nonsense values fall back
  EXPECT_GE(nws::ThreadPool::default_jobs(), 1u);
  ::unsetenv("NWSCPU_JOBS");
  EXPECT_GE(nws::ThreadPool::default_jobs(), 1u);

  if (old) {
    ::setenv("NWSCPU_JOBS", saved.c_str(), 1);
  } else {
    ::unsetenv("NWSCPU_JOBS");
  }
}

void expect_series_identical(const nws::TimeSeries& a,
                             const nws::TimeSeries& b) {
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.start(), b.start());
  EXPECT_EQ(a.period(), b.period());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << a.name() << " sample " << i;
  }
}

void expect_trace_identical(const nws::HostTrace& a, const nws::HostTrace& b) {
  expect_series_identical(a.load_series, b.load_series);
  expect_series_identical(a.vmstat_series, b.vmstat_series);
  expect_series_identical(a.hybrid_series, b.hybrid_series);
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    ASSERT_EQ(a.tests[i].start, b.tests[i].start);
    ASSERT_EQ(a.tests[i].availability, b.tests[i].availability);
  }
  ASSERT_EQ(a.agg_tests.size(), b.agg_tests.size());
  for (std::size_t i = 0; i < a.agg_tests.size(); ++i) {
    ASSERT_EQ(a.agg_tests[i].start, b.agg_tests[i].start);
    ASSERT_EQ(a.agg_tests[i].availability, b.agg_tests[i].availability);
  }
}

TEST(ParallelFleet, ByteIdenticalToSerialRunner) {
  constexpr std::uint64_t kSeed = 123;
  nws::RunnerConfig cfg;
  cfg.duration = 900.0;  // short run: the property is about determinism

  const auto& fleet = nws::all_ucsd_hosts();
  const std::vector<nws::UcsdHost> hosts(fleet.begin(), fleet.end());

  std::vector<nws::HostTrace> serial;
  serial.reserve(hosts.size());
  for (const nws::UcsdHost h : hosts) {
    auto host = nws::make_ucsd_host(h, kSeed);
    serial.push_back(nws::run_experiment(*host, cfg));
  }

  for (const std::size_t jobs : {1u, 4u}) {
    const std::vector<nws::HostTrace> traces =
        nws::run_fleet_parallel(hosts, kSeed, cfg, jobs);
    ASSERT_EQ(traces.size(), serial.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) + " host=" +
                   nws::host_name(hosts[i]));
      expect_trace_identical(traces[i], serial[i]);
    }
  }
}

TEST(ParallelFleet, ProgressCallbackFiresOncePerHost) {
  nws::RunnerConfig cfg;
  cfg.duration = 300.0;
  const auto& fleet = nws::all_ucsd_hosts();
  const std::vector<nws::UcsdHost> hosts(fleet.begin(), fleet.end());

  std::vector<int> seen(hosts.size(), 0);
  const auto traces = nws::run_fleet_parallel(
      hosts, 7, cfg, 3, [&](nws::UcsdHost h, double wall) {
        // The runner serialises progress calls, so no lock is needed here.
        seen[static_cast<std::size_t>(h)] += 1;
        EXPECT_GE(wall, 0.0);
      });
  EXPECT_EQ(traces.size(), hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(hosts[i])], 1);
  }
}

}  // namespace

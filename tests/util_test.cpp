// Unit tests for src/util: RNG, distributions, statistics, CSV, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <random>
#include <set>
#include <sstream>

#include "util/csv.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nws {
namespace {

// ---------------------------------------------------------------------------
// Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_EQ(same, 0);
}

TEST(Rng, SmallConsecutiveSeedsAreIndependent) {
  // splitmix seeding must decorrelate seeds 0 and 1.
  Rng a(0), b(1);
  double corr_hits = 0;
  for (int i = 0; i < 1000; ++i) {
    corr_hits += (a() >> 63) == (b() >> 63);
  }
  EXPECT_NEAR(corr_hits / 1000.0, 0.5, 0.08);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(13);
  Rng child = parent.fork();
  // Parent and child should not track each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent() == child();
  EXPECT_EQ(same, 0);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), std::numeric_limits<std::uint64_t>::max());
}

// ---------------------------------------------------------------------------
// Distributions

TEST(Distributions, ExponentialMean) {
  Rng rng(20);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(sample_exponential(rng, 4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(Distributions, ExponentialVarianceIsMeanSquared) {
  Rng rng(21);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(sample_exponential(rng, 2.0));
  EXPECT_NEAR(stats.variance(), 4.0, 0.25);
}

TEST(Distributions, ParetoRespectsMinimum) {
  Rng rng(22);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_GE(sample_pareto(rng, 1.5, 0.4), 0.4);
  }
}

TEST(Distributions, ParetoMeanForShapeAboveOne) {
  Rng rng(23);
  RunningStats stats;
  // alpha = 3 has a finite, quickly converging mean: alpha*xm/(alpha-1).
  for (int i = 0; i < 100000; ++i) stats.add(sample_pareto(rng, 3.0, 1.0));
  EXPECT_NEAR(stats.mean(), 1.5, 0.05);
}

TEST(Distributions, ParetoTailHeavierForSmallerAlpha) {
  Rng heavy_rng(24), light_rng(24);
  int heavy_tail = 0, light_tail = 0;
  for (int i = 0; i < 20000; ++i) {
    heavy_tail += sample_pareto(heavy_rng, 1.1, 1.0) > 10.0;
    light_tail += sample_pareto(light_rng, 3.0, 1.0) > 10.0;
  }
  EXPECT_GT(heavy_tail, 10 * light_tail);
}

TEST(Distributions, BoundedParetoWithinBounds) {
  Rng rng(25);
  for (int i = 0; i < 5000; ++i) {
    const double x = sample_bounded_pareto(rng, 1.4, 0.4, 600.0);
    ASSERT_GE(x, 0.4);
    ASSERT_LE(x, 600.0);
  }
}

TEST(Distributions, BoundedParetoStochasticallyBelowUnbounded) {
  Rng a(26), b(26);
  RunningStats bounded, unbounded;
  for (int i = 0; i < 20000; ++i) {
    bounded.add(sample_bounded_pareto(a, 1.2, 1.0, 50.0));
    unbounded.add(sample_pareto(b, 1.2, 1.0));
  }
  EXPECT_LT(bounded.mean(), unbounded.mean());
  EXPECT_LE(bounded.max(), 50.0);
}

TEST(Distributions, NormalMoments) {
  Rng rng(27);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(sample_normal(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0, 0.03);
}

TEST(Distributions, NormalShiftScale) {
  Rng rng(28);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(sample_normal(rng, 10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Distributions, LognormalMedian) {
  Rng rng(29);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(sample_lognormal(rng, 2.0, 0.8));
  // Median of lognormal is exp(mu).
  EXPECT_NEAR(median(xs), std::exp(2.0), 0.3);
}

TEST(Distributions, InterarrivalMatchesRate) {
  Rng rng(30);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(sample_interarrival(rng, 0.25));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

// ---------------------------------------------------------------------------
// Stats

TEST(Stats, MeanBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stats, VarianceBasics) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_NEAR(sample_variance(xs), 4.0 * 8.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, VarianceDegenerateCases) {
  EXPECT_DOUBLE_EQ(variance(std::span<const double>{}), 0.0);
  const std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(sample_variance(one), 0.0);
}

TEST(Stats, MedianOddEven) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
  EXPECT_DOUBLE_EQ(median(std::span<const double>{}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Stats, QuantileClampsOutOfRange) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 3.0);
}

TEST(Stats, MeanAbsAndExtremes) {
  const std::vector<double> xs = {-2.0, 2.0, -4.0};
  EXPECT_NEAR(mean_abs(xs), 8.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(min_value(xs), -4.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 2.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(40);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-10);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-10);
  EXPECT_NEAR(rs.sample_variance(), sample_variance(xs), 1e-10);
  EXPECT_DOUBLE_EQ(rs.min(), min_value(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_value(xs));
  EXPECT_EQ(rs.count(), xs.size());
}

TEST(Stats, RunningStatsEmptyAndReset) {
  RunningStats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  rs.add(3.0);
  EXPECT_FALSE(rs.empty());
  rs.reset();
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.count(), 0u);
}

TEST(Stats, LinearFitExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 2.0);
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, LinearFitNoisyLineRecovery) {
  Rng rng(41);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(i * 0.1);
    ys.push_back(0.7 * i * 0.1 + 1.0 + sample_normal(rng, 0.0, 0.2));
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.7, 0.02);
  EXPECT_NEAR(fit.intercept, 1.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(Stats, LinearFitDegenerate) {
  const std::vector<double> one_x = {1.0};
  const std::vector<double> one_y = {2.0};
  EXPECT_DOUBLE_EQ(linear_fit(one_x, one_y).slope, 0.0);
  const std::vector<double> same_x = {2.0, 2.0, 2.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(linear_fit(same_x, ys).slope, 0.0);
}

TEST(Stats, PearsonPerfectCorrelations) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Stats, PearsonUncorrelatedNearZero) {
  Rng rng(42);
  std::vector<double> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.uniform());
    ys.push_back(rng.uniform());
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.03);
}

// ---------------------------------------------------------------------------
// CSV

TEST(Csv, RoundTripWithHeaders) {
  CsvTable table;
  table.headers = {"a", "b"};
  table.columns = {{1.0, 2.5, -3.0}, {4.0, 0.5, 6.25}};
  std::stringstream ss;
  write_csv(ss, table);
  const CsvTable back = read_csv(ss);
  ASSERT_EQ(back.headers, table.headers);
  ASSERT_EQ(back.cols(), 2u);
  ASSERT_EQ(back.rows(), 3u);
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_DOUBLE_EQ(back.columns[c][r], table.columns[c][r]);
    }
  }
}

TEST(Csv, HeaderlessNumericFirstRow) {
  std::stringstream ss("1,2\n3,4\n");
  const CsvTable table = read_csv(ss);
  EXPECT_TRUE(table.headers.empty());
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_DOUBLE_EQ(table.columns[1][1], 4.0);
}

TEST(Csv, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# comment\n\nx,y\n1,2\n# mid comment\n3,4\n");
  const CsvTable table = read_csv(ss);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.headers.front(), "x");
}

TEST(Csv, RaggedRowThrows) {
  std::stringstream ss("a,b\n1,2\n3\n");
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(Csv, BadNumericFieldThrows) {
  std::stringstream ss("a,b\n1,2\n3,oops\n");
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(Csv, WriteRaggedColumnsThrows) {
  CsvTable table;
  table.columns = {{1.0}, {1.0, 2.0}};
  std::stringstream ss;
  EXPECT_THROW(write_csv(ss, table), std::runtime_error);
}

TEST(Csv, WriteHeaderMismatchThrows) {
  CsvTable table;
  table.headers = {"only_one"};
  table.columns = {{1.0}, {2.0}};
  std::stringstream ss;
  EXPECT_THROW(write_csv(ss, table), std::runtime_error);
}

TEST(Csv, ColumnIndexLookup) {
  CsvTable table;
  table.headers = {"time", "value"};
  EXPECT_EQ(table.column_index("value"), 1u);
  EXPECT_EQ(table.column_index("missing"), CsvTable::npos);
}

TEST(Csv, PreservesPrecision) {
  CsvTable table;
  table.columns = {{0.1234567890123456, 1e-17}};
  std::stringstream ss;
  write_csv(ss, table);
  const CsvTable back = read_csv(ss);
  EXPECT_DOUBLE_EQ(back.columns[0][0], 0.1234567890123456);
  EXPECT_DOUBLE_EQ(back.columns[0][1], 1e-17);
}

TEST(Csv, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    "nwscpu_csv_test.csv";
  CsvTable table;
  table.headers = {"v"};
  table.columns = {{1.0, 2.0}};
  write_csv(path, table);
  const CsvTable back = read_csv(path);
  EXPECT_EQ(back.rows(), 2u);
  std::filesystem::remove(path);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv(std::filesystem::path("/nonexistent/nope.csv")),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// TextTable

TEST(TextTable, FormatsPercentagesAndNumbers) {
  EXPECT_EQ(TextTable::pct(0.123), "12.3%");
  EXPECT_EQ(TextTable::pct(0.1234, 2), "12.34%");
  EXPECT_EQ(TextTable::num(0.03481), "0.0348");
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
}

TEST(TextTable, AlignsColumnsAndAddsRule) {
  TextTable t;
  t.add_row({"Host", "Err"});
  t.add_row({"thing2", "9.0%"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("Host"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("thing2"), std::string::npos);
}

TEST(TextTable, TitlePrinted) {
  TextTable t("My Title");
  t.add_row({"a"});
  EXPECT_EQ(t.to_string().rfind("My Title", 0), 0u);
}

}  // namespace
}  // namespace nws

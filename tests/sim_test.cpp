// Unit and property tests for src/sim: scheduler mechanics, host
// accounting, load average, timed processes, workloads — including the
// priority-decay phenomenology the paper's anomalies depend on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/host.hpp"
#include "sim/process.hpp"
#include "sim/scheduler.hpp"
#include "sim/types.hpp"
#include "sim/workload.hpp"

namespace nws::sim {
namespace {

// ---------------------------------------------------------------------------
// Types / time conversion

TEST(Types, TickConversionRoundTrips) {
  EXPECT_EQ(seconds_to_ticks(1.0), kHz);
  EXPECT_EQ(seconds_to_ticks(1.5), 150);
  EXPECT_DOUBLE_EQ(ticks_to_seconds(250), 2.5);
  EXPECT_EQ(seconds_to_ticks(ticks_to_seconds(12345)), 12345);
}

// ---------------------------------------------------------------------------
// Priority formula

TEST(Priority, BaseAndEstCpuAndNice) {
  Process p;
  EXPECT_DOUBLE_EQ(bsd_priority(p), 50.0);
  p.p_estcpu = 100.0;
  EXPECT_DOUBLE_EQ(bsd_priority(p), 75.0);
  p.nice = 19;
  EXPECT_DOUBLE_EQ(bsd_priority(p), 75.0 + 57.0);
}

TEST(Priority, ResidentNice19NeverOutranksSaturatedNice0) {
  // The starvation guarantee the conundrum reproduction relies on: once a
  // nice-19 process has been through a couple of decay cycles (p_estcpu >=
  // 38), even a p_estcpu-saturated nice-0 process outranks it.
  Process soaker;
  soaker.nice = 19;
  soaker.p_estcpu = 38.0;
  Process hog;
  hog.p_estcpu = Process::kMaxEstCpu;
  EXPECT_LT(bsd_priority(hog), bsd_priority(soaker));
}

// ---------------------------------------------------------------------------
// Scheduler mechanics

TEST(Scheduler, SpawnAndLookup) {
  Scheduler s;
  const ProcessId a = s.spawn("a", 0);
  const ProcessId b = s.spawn("b", 5, 0.25, 10);
  EXPECT_NE(a, b);
  EXPECT_TRUE(s.exists(a));
  EXPECT_FALSE(s.exists(999));
  EXPECT_EQ(s.process(b).nice, 5);
  EXPECT_DOUBLE_EQ(s.process(b).syscall_fraction, 0.25);
  EXPECT_EQ(s.process(b).start_tick, 10);
  EXPECT_THROW((void)s.process(999), std::out_of_range);
}

TEST(Scheduler, NewProcessStartsSleeping) {
  Scheduler s;
  const ProcessId a = s.spawn("a", 0);
  EXPECT_EQ(s.process(a).state, RunState::kSleeping);
  EXPECT_EQ(s.runnable_count(), 0u);
  EXPECT_EQ(s.pick_next(0), kNoProcess);
}

TEST(Scheduler, StateTransitions) {
  Scheduler s;
  const ProcessId a = s.spawn("a", 0);
  s.set_runnable(a);
  EXPECT_EQ(s.runnable_count(), 1u);
  s.set_sleeping(a);
  EXPECT_EQ(s.runnable_count(), 0u);
  s.exit_process(a);
  s.set_runnable(a);  // must not resurrect an exited process
  EXPECT_EQ(s.process(a).state, RunState::kExited);
  EXPECT_EQ(s.live_count(), 0u);
}

TEST(Scheduler, PickPrefersLowerPriorityValue) {
  Scheduler s;
  const ProcessId fresh = s.spawn("fresh", 0);
  const ProcessId tired = s.spawn("tired", 0);
  s.set_runnable(fresh);
  s.set_runnable(tired);
  s.process(tired).p_estcpu = 200.0;
  EXPECT_EQ(s.pick_next(0), fresh);
}

TEST(Scheduler, PickPrefersLowerNiceAtEqualEstCpu) {
  Scheduler s;
  const ProcessId normal = s.spawn("normal", 0);
  const ProcessId niced = s.spawn("niced", 10);
  s.set_runnable(niced);
  s.set_runnable(normal);
  EXPECT_EQ(s.pick_next(0), normal);
}

TEST(Scheduler, RoundRobinAmongEqualPriorities) {
  Scheduler s;
  const ProcessId a = s.spawn("a", 0);
  const ProcessId b = s.spawn("b", 0);
  s.set_runnable(a);
  s.set_runnable(b);
  const ProcessId first = s.pick_next(0);
  s.charge_tick(first, 0, false);
  s.process(first).p_estcpu = 0.0;  // neutralise the usage penalty
  const ProcessId second = s.pick_next(1);
  EXPECT_NE(first, second);
}

TEST(Scheduler, ChargeTickAccounting) {
  Scheduler s;
  const ProcessId a = s.spawn("a", 0);
  s.set_runnable(a);
  s.charge_tick(a, 7, false);
  s.charge_tick(a, 8, true);
  const Process& p = s.process(a);
  EXPECT_EQ(p.user_ticks, 1);
  EXPECT_EQ(p.sys_ticks, 1);
  EXPECT_EQ(p.cpu_ticks(), 2);
  EXPECT_DOUBLE_EQ(p.p_estcpu, 2.0);
  EXPECT_EQ(p.last_granted, 8);
}

TEST(Scheduler, EstCpuSaturates) {
  Scheduler s;
  const ProcessId a = s.spawn("a", 0);
  s.set_runnable(a);
  s.process(a).p_estcpu = Process::kMaxEstCpu;
  s.charge_tick(a, 0, false);
  EXPECT_DOUBLE_EQ(s.process(a).p_estcpu, Process::kMaxEstCpu);
}

TEST(Scheduler, SecondBoundaryDecaysTowardNice) {
  Scheduler s;
  const ProcessId a = s.spawn("a", 4);
  s.set_runnable(a);
  s.process(a).p_estcpu = 90.0;
  // decay factor with load 1: 2/3; p' = 90 * 2/3 + nice = 64.
  s.second_boundary(100, 1.0);
  EXPECT_NEAR(s.process(a).p_estcpu, 64.0, 1e-12);
}

TEST(Scheduler, SecondBoundaryFixedPoint) {
  // Continuous running at load 1: p_estcpu climbs by ~100/s, saturates at
  // the 255 cap, and each second boundary decays it by 2/3 — the steady
  // state cycles between 255 * 2/3 = 170 (just after decay) and 255.
  Scheduler s;
  const ProcessId a = s.spawn("a", 0);
  s.set_runnable(a);
  for (int sec = 0; sec < 60; ++sec) {
    for (int t = 0; t < kHz; ++t) {
      s.charge_tick(a, sec * kHz + t, false);
    }
    s.second_boundary((sec + 1) * kHz, 1.0);
  }
  EXPECT_NEAR(s.process(a).p_estcpu, Process::kMaxEstCpu * 2.0 / 3.0, 2.0);
}

TEST(Scheduler, ExpireDeadlines) {
  Scheduler s;
  const ProcessId a = s.spawn("a", 0);
  s.set_runnable(a);
  s.process(a).exit_at = 100;
  s.expire_deadlines(99);
  EXPECT_EQ(s.process(a).state, RunState::kRunnable);
  s.expire_deadlines(100);
  EXPECT_EQ(s.process(a).state, RunState::kExited);
}

TEST(Scheduler, ReapRemovesOnlyExited) {
  Scheduler s;
  const ProcessId a = s.spawn("a", 0);
  const ProcessId b = s.spawn("b", 0);
  s.exit_process(a);
  s.reap();
  EXPECT_FALSE(s.exists(a));
  EXPECT_TRUE(s.exists(b));
}

TEST(Scheduler, ReapOneIsTargetedAndRequiresExit) {
  Scheduler s;
  const ProcessId a = s.spawn("a", 0);
  const ProcessId b = s.spawn("b", 0);
  s.exit_process(a);
  s.exit_process(b);
  s.reap_one(a);
  EXPECT_FALSE(s.exists(a));
  EXPECT_TRUE(s.exists(b));  // still present until its own reap
  const ProcessId c = s.spawn("c", 0);
  s.reap_one(c);  // not exited: no-op
  EXPECT_TRUE(s.exists(c));
}

// ---------------------------------------------------------------------------
// Host accounting invariants

TEST(Host, TickConservation) {
  Host host({.name = "h"}, 1);
  PersistentProcessConfig hog;
  hog.name = "hog";
  host.add_workload(std::make_unique<PersistentProcess>(hog, Rng(2)));
  host.run_for(30.0);
  const KernelCounters& c = host.counters();
  EXPECT_EQ(c.total(), host.now_ticks());
  EXPECT_EQ(c.total(), 30 * kHz);
}

TEST(Host, IdleHostAccruesOnlyIdle) {
  Host host({.name = "idle"}, 1);
  host.run_for(10.0);
  EXPECT_EQ(host.counters().idle, 10 * kHz);
  EXPECT_EQ(host.counters().user, 0);
  EXPECT_EQ(host.counters().sys, 0);
  EXPECT_DOUBLE_EQ(host.load_average(), 0.0);
}

TEST(Host, SingleHogConsumesEverything) {
  Host host({.name = "h"}, 1);
  PersistentProcessConfig hog;
  host.add_workload(std::make_unique<PersistentProcess>(hog, Rng(3)));
  host.run_for(20.0);
  EXPECT_EQ(host.counters().idle, 0);
  EXPECT_EQ(host.counters().user, 20 * kHz);
}

TEST(Host, SyscallFractionSplitsUserAndSystem) {
  Host host({.name = "h"}, 1);
  PersistentProcessConfig hog;
  hog.syscall_fraction = 0.3;
  host.add_workload(std::make_unique<PersistentProcess>(hog, Rng(4)));
  host.run_for(100.0);
  const auto total = static_cast<double>(host.counters().total());
  EXPECT_NEAR(static_cast<double>(host.counters().sys) / total, 0.3, 0.03);
  EXPECT_EQ(host.counters().idle, 0);
}

TEST(Host, InterruptLoadStealsTicks) {
  Host host({.name = "gw", .interrupt_load = 0.1}, 5);
  host.run_for(100.0);
  const auto total = static_cast<double>(host.counters().total());
  EXPECT_NEAR(static_cast<double>(host.counters().sys) / total, 0.1, 0.02);
  // Interrupts fire even with no runnable process; the rest is idle.
  EXPECT_EQ(host.counters().user, 0);
}

TEST(Host, InterruptLoadPreemptsProcesses) {
  Host host({.name = "gw", .interrupt_load = 0.2}, 6);
  PersistentProcessConfig hog;
  host.add_workload(std::make_unique<PersistentProcess>(hog, Rng(7)));
  host.run_for(100.0);
  const auto total = static_cast<double>(host.counters().total());
  // The hog can only get what interrupts leave behind.
  EXPECT_NEAR(static_cast<double>(host.counters().user) / total, 0.8, 0.02);
}

// ---------------------------------------------------------------------------
// Load average

TEST(Host, LoadAverageConvergesToRunnableCount) {
  Host host({.name = "h"}, 1);
  for (int i = 0; i < 3; ++i) {
    PersistentProcessConfig hog;
    hog.name = "hog" + std::to_string(i);
    host.add_workload(std::make_unique<PersistentProcess>(hog, Rng(10 + i)));
  }
  host.run_for(600.0);  // 10 smoothing horizons
  EXPECT_NEAR(host.load_average(), 3.0, 0.05);
  EXPECT_EQ(host.runnable_count(), 3u);
}

TEST(Host, LoadAverageLagsBehindChanges) {
  Host host({.name = "h"}, 1);
  PersistentProcessConfig hog;
  host.add_workload(std::make_unique<PersistentProcess>(hog, Rng(11)));
  host.run_for(300.0);
  ASSERT_NEAR(host.load_average(), 1.0, 0.05);
  // The hog keeps existing but we park it via the scheduler directly.
  for (const Process& p : host.scheduler().processes()) {
    host.scheduler().set_sleeping(p.id);
  }
  host.run_for(15.0);
  // After only 15 s of a 60 s horizon the average is still clearly > 0.
  EXPECT_GT(host.load_average(), 0.5);
}

// ---------------------------------------------------------------------------
// Timed processes (probe / test process mechanics)

TEST(Host, TimedProcessOnIdleHostGetsFullCpu) {
  Host host({.name = "h"}, 1);
  const double fraction = host.run_timed_process("probe", 1.5);
  EXPECT_NEAR(fraction, 1.0, 1e-9);
  EXPECT_EQ(host.scheduler().live_count(), 0u);  // reaped
}

TEST(Host, TimedProcessAgainstEqualPriorityHogSharesEvenly) {
  Host host({.name = "h"}, 1);
  PersistentProcessConfig other;
  host.add_workload(std::make_unique<PersistentProcess>(other, Rng(12)));
  host.run_for(5.0);
  // A freshly spawned process first enjoys a priority advantage (low
  // p_estcpu); over a long enough run the share approaches fair 50%.
  const double fraction = host.run_timed_process("test", 60.0);
  EXPECT_NEAR(fraction, 0.5, 0.08);
}

TEST(Host, CpuFractionPartialWhileRunning) {
  Host host({.name = "h"}, 1);
  const TimedRun run = host.start_timed_process("probe", 2.0);
  host.run_for(1.0);
  EXPECT_FALSE(host.finished(run));
  EXPECT_NEAR(host.cpu_fraction(run), 1.0, 0.02);
  host.run_for(1.5);
  EXPECT_TRUE(host.finished(run));
  EXPECT_NEAR(host.cpu_fraction(run), 1.0, 1e-9);
}

TEST(Host, TimedProcessStopsAtDeadline) {
  Host host({.name = "h"}, 1);
  const TimedRun run = host.start_timed_process("probe", 1.0);
  host.run_for(5.0);
  const Process& p = host.scheduler().process(run.pid);
  EXPECT_EQ(p.state, RunState::kExited);
  EXPECT_EQ(p.cpu_ticks(), seconds_to_ticks(1.0));
}

// ---------------------------------------------------------------------------
// The paper's scheduling phenomenology

TEST(Phenomenology, FreshProbePreemptsSaturatedHog) {
  // kongo: a long-running full-priority job's p_estcpu saturates; a fresh
  // 1.5 s probe out-prioritises it and experiences ~100% availability.
  Host host({.name = "kongo"}, 1);
  PersistentProcessConfig hog;
  host.add_workload(std::make_unique<PersistentProcess>(hog, Rng(13)));
  host.run_for(120.0);  // let the hog's p_estcpu saturate
  const double probe = host.run_timed_process("probe", 1.5);
  EXPECT_GT(probe, 0.9);
}

TEST(Phenomenology, TenSecondTestSharesWithResidentHog) {
  // ...but the 10 s test process runs long enough to be demoted to the
  // hog's level and ends up sharing: availability well below the probe's.
  Host host({.name = "kongo"}, 1);
  PersistentProcessConfig hog;
  host.add_workload(std::make_unique<PersistentProcess>(hog, Rng(14)));
  host.run_for(120.0);
  const double test = host.run_timed_process("test", 10.0);
  EXPECT_LT(test, 0.85);
  EXPECT_GT(test, 0.4);
}

TEST(Phenomenology, ProbeVsTestGapIsTheKongoAnomaly) {
  Host host({.name = "kongo"}, 1);
  PersistentProcessConfig hog;
  host.add_workload(std::make_unique<PersistentProcess>(hog, Rng(15)));
  host.run_for(120.0);
  const double probe = host.run_timed_process("probe", 1.5);
  host.run_for(60.0);
  const double test = host.run_timed_process("test", 10.0);
  EXPECT_GT(probe - test, 0.2);
}

TEST(Phenomenology, Nice19SoakerIsStarvedByFullPriorityWork) {
  // conundrum: the soaker keeps the run queue non-empty, but a
  // full-priority test process takes essentially the whole CPU.
  Host host({.name = "conundrum"}, 1);
  PersistentProcessConfig soaker;
  soaker.nice = 19;
  host.add_workload(std::make_unique<PersistentProcess>(soaker, Rng(16)));
  host.run_for(300.0);  // 5 smoothing horizons: load ~ 1 - e^-5
  EXPECT_NEAR(host.load_average(), 1.0, 0.05);  // looks busy
  const double test = host.run_timed_process("test", 10.0);
  EXPECT_GT(test, 0.97);  // is not
}

TEST(Phenomenology, EqualNiceHogsShareFairly) {
  Host host({.name = "h"}, 1);
  for (int i = 0; i < 2; ++i) {
    PersistentProcessConfig hog;
    hog.name = "hog" + std::to_string(i);
    host.add_workload(std::make_unique<PersistentProcess>(hog, Rng(20 + i)));
  }
  host.run_for(300.0);
  std::vector<Tick> cpu;
  for (const Process& p : host.scheduler().processes()) {
    cpu.push_back(p.cpu_ticks());
  }
  ASSERT_EQ(cpu.size(), 2u);
  const double share = static_cast<double>(cpu[0]) /
                       static_cast<double>(cpu[0] + cpu[1]);
  EXPECT_NEAR(share, 0.5, 0.02);
}

class NiceLadder : public ::testing::TestWithParam<int> {};

TEST_P(NiceLadder, HigherNiceNeverGetsMoreCpu) {
  const int nice = GetParam();
  Host host({.name = "h"}, 1);
  PersistentProcessConfig base;
  base.name = "nice0";
  host.add_workload(std::make_unique<PersistentProcess>(base, Rng(30)));
  PersistentProcessConfig niced;
  niced.name = "niced";
  niced.nice = nice;
  host.add_workload(std::make_unique<PersistentProcess>(niced, Rng(31)));
  host.run_for(300.0);
  Tick nice0_cpu = 0, niced_cpu = 0;
  for (const Process& p : host.scheduler().processes()) {
    (p.nice == 0 ? nice0_cpu : niced_cpu) = p.cpu_ticks();
  }
  EXPECT_LE(niced_cpu, nice0_cpu + 5) << "nice " << nice;
  const double share = static_cast<double>(niced_cpu) /
                       static_cast<double>(nice0_cpu + niced_cpu);
  if (nice >= 8) {
    // Niced work is clearly penalised...
    EXPECT_LT(share, 0.40) << "nice " << nice;
  }
  if (nice >= 19) {
    // ...and nice 19 is starved outright while a nice-0 hog runs (the
    // priority margin analysis in bsd_priority()'s comment).
    EXPECT_LT(share, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Nices, NiceLadder,
                         ::testing::Values(0, 4, 8, 12, 16, 19));

// ---------------------------------------------------------------------------
// Workloads

TEST(Diurnal, FactorBoundsAndPeak) {
  const DiurnalProfile flat{};
  EXPECT_DOUBLE_EQ(flat.factor(12345.0), 1.0);
  const DiurnalProfile prof{.amplitude = 0.6, .peak_hour = 15.0};
  const double peak = prof.factor(15.0 * 3600.0);
  const double trough = prof.factor(3.0 * 3600.0);
  EXPECT_NEAR(peak, 1.6, 1e-9);
  EXPECT_NEAR(trough, 0.4, 1e-9);
  for (int h = 0; h < 48; ++h) {
    EXPECT_GT(prof.factor(h * 1800.0), 0.0);
  }
}

TEST(Diurnal, PeriodIsOneDay) {
  const DiurnalProfile prof{.amplitude = 0.5, .peak_hour = 10.0};
  EXPECT_NEAR(prof.factor(5000.0), prof.factor(5000.0 + 86400.0), 1e-12);
}

TEST(InteractiveSessionW, GeneratesIntermittentLoad) {
  Host host({.name = "ws"}, 1);
  InteractiveSessionConfig cfg;
  cfg.mean_think = 5.0;
  cfg.burst_min = 0.3;
  cfg.burst_cap = 10.0;
  host.add_workload(std::make_unique<InteractiveSession>(cfg, Rng(40)));
  host.run_for(1200.0);
  const auto user = host.counters().user + host.counters().sys;
  EXPECT_GT(user, 0);
  EXPECT_GT(host.counters().idle, 0);
  // Duty should be bounded well away from both extremes.
  const double duty = static_cast<double>(user) /
                      static_cast<double>(host.counters().total());
  EXPECT_GT(duty, 0.02);
  EXPECT_LT(duty, 0.7);
}

TEST(BatchArrivalsW, RespectsConcurrencyCapAndProducesJobs) {
  Host host({.name = "srv"}, 1);
  BatchArrivalsConfig cfg;
  cfg.jobs_per_hour = 3600.0;  // one per second: hammers the cap
  cfg.duration_mu = 2.0;
  cfg.duration_sigma = 0.5;
  cfg.max_concurrent = 3;
  auto batch = std::make_unique<BatchArrivals>(cfg, Rng(41));
  BatchArrivals* raw = batch.get();
  host.add_workload(std::move(batch));
  for (int i = 0; i < 600; ++i) {
    host.run_for(1.0);
    ASSERT_LE(raw->active_jobs(), 3u);
  }
  EXPECT_GT(host.counters().user + host.counters().sys, 0);
}

TEST(BatchArrivalsW, JobsEventuallyFinishAndExit) {
  Host host({.name = "srv"}, 1);
  BatchArrivalsConfig cfg;
  cfg.jobs_per_hour = 60.0;
  cfg.duration_mu = 1.0;  // short jobs (median ~2.7 s)
  cfg.duration_sigma = 0.3;
  host.add_workload(std::make_unique<BatchArrivals>(cfg, Rng(42)));
  host.run_for(600.0);
  host.reap();
  // Live processes are only the currently active jobs (usually 0-2).
  EXPECT_LE(host.scheduler().live_count(), cfg.max_concurrent);
}

TEST(PersistentProcessW, PartialDutyApproximatesTarget) {
  Host host({.name = "h"}, 1);
  PersistentProcessConfig cfg;
  cfg.duty = 0.4;
  cfg.run_chunk = 2.0;
  host.add_workload(std::make_unique<PersistentProcess>(cfg, Rng(43)));
  host.run_for(3600.0);
  const double duty = static_cast<double>(host.counters().user) /
                      static_cast<double>(host.counters().total());
  EXPECT_NEAR(duty, 0.4, 0.06);
}

TEST(Host, DeterministicForSameSeed) {
  const auto run = [](std::uint64_t seed) {
    Host host({.name = "h"}, seed);
    InteractiveSessionConfig cfg;
    cfg.mean_think = 3.0;
    host.add_workload(std::make_unique<InteractiveSession>(cfg, Rng(seed)));
    host.run_for(300.0);
    return host.counters();
  };
  const KernelCounters a = run(77);
  const KernelCounters b = run(77);
  const KernelCounters c = run(78);
  EXPECT_EQ(a.user, b.user);
  EXPECT_EQ(a.sys, b.sys);
  EXPECT_EQ(a.idle, b.idle);
  EXPECT_NE(a.user, c.user);
}

}  // namespace
}  // namespace nws::sim

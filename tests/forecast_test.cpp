// Unit and property tests for src/forecast: the sliding window, every
// forecasting method, the adaptive battery, and the evaluation harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <memory>
#include <numbers>

#include "forecast/adaptive.hpp"
#include "forecast/battery.hpp"
#include "forecast/evaluate.hpp"
#include "forecast/methods.hpp"
#include "forecast/window.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nws {
namespace {

// ---------------------------------------------------------------------------
// SlidingWindow

TEST(SlidingWindow, FillsThenEvictsOldest) {
  SlidingWindow w(3);
  w.push(1.0);
  w.push(2.0);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_FALSE(w.full());
  w.push(3.0);
  EXPECT_TRUE(w.full());
  w.push(4.0);  // evicts 1.0
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.oldest(), 2.0);
  EXPECT_DOUBLE_EQ(w.newest(), 4.0);
  EXPECT_DOUBLE_EQ(w.at(1), 3.0);
}

TEST(SlidingWindow, MeanTracksContents) {
  SlidingWindow w(2);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  w.push(1.0);
  EXPECT_DOUBLE_EQ(w.mean(), 1.0);
  w.push(3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.push(5.0);
  EXPECT_DOUBLE_EQ(w.mean(), 4.0);
}

TEST(SlidingWindow, MeanStaysExactOverManyPushes) {
  // The incremental sum is periodically refreshed; after many pushes the
  // windowed mean must still match a direct recomputation.
  SlidingWindow w(7);
  Rng rng(1);
  for (int i = 0; i < 200000; ++i) w.push(rng.uniform(0.0, 1.0) + 1e6);
  double direct = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) direct += w.at(i);
  direct /= static_cast<double>(w.size());
  EXPECT_NEAR(w.mean(), direct, 1e-9);
}

TEST(SlidingWindow, MedianOddEven) {
  SlidingWindow w(5);
  for (double x : {5.0, 1.0, 3.0}) w.push(x);
  EXPECT_DOUBLE_EQ(w.median(), 3.0);
  w.push(2.0);
  EXPECT_DOUBLE_EQ(w.median(), 2.5);
}

TEST(SlidingWindow, TrimmedMeanDropsExtremes) {
  SlidingWindow w(5);
  for (double x : {100.0, 1.0, 2.0, 3.0, -50.0}) w.push(x);
  EXPECT_DOUBLE_EQ(w.trimmed_mean(1), 2.0);
  // Trim clamped so at least one element survives.
  EXPECT_DOUBLE_EQ(w.trimmed_mean(10), 2.0);
  EXPECT_NEAR(w.trimmed_mean(0), 56.0 / 5.0, 1e-12);
}

TEST(SlidingWindow, ClearResets) {
  SlidingWindow w(3);
  w.push(1.0);
  w.clear();
  EXPECT_TRUE(w.empty());
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

// ---------------------------------------------------------------------------
// Individual methods

TEST(LastValue, PredictsLastObservation) {
  LastValueForecaster f;
  EXPECT_DOUBLE_EQ(f.forecast(), Forecaster::kInitialGuess);
  f.observe(0.3);
  EXPECT_DOUBLE_EQ(f.forecast(), 0.3);
  f.observe(0.9);
  EXPECT_DOUBLE_EQ(f.forecast(), 0.9);
  f.reset();
  EXPECT_DOUBLE_EQ(f.forecast(), Forecaster::kInitialGuess);
}

TEST(RunningMean, ExactMeanOfHistory) {
  RunningMeanForecaster f;
  f.observe(1.0);
  f.observe(2.0);
  f.observe(6.0);
  EXPECT_DOUBLE_EQ(f.forecast(), 3.0);
}

TEST(SlidingMean, OnlyRecentWindowCounts) {
  SlidingMeanForecaster f(2);
  for (double x : {10.0, 1.0, 3.0}) f.observe(x);
  EXPECT_DOUBLE_EQ(f.forecast(), 2.0);
  EXPECT_EQ(f.name(), "sw_mean(2)");
}

TEST(ExpSmooth, ConvergesToConstant) {
  ExpSmoothForecaster f(0.5);
  for (int i = 0; i < 40; ++i) f.observe(0.8);
  EXPECT_NEAR(f.forecast(), 0.8, 1e-9);
}

TEST(ExpSmooth, FirstObservationInitialisesState) {
  ExpSmoothForecaster f(0.1);
  f.observe(0.2);
  EXPECT_DOUBLE_EQ(f.forecast(), 0.2);  // not blended with the prior
}

TEST(ExpSmooth, SmallerGainReactsSlower) {
  ExpSmoothForecaster slow(0.05), fast(0.5);
  for (int i = 0; i < 10; ++i) {
    slow.observe(0.0);
    fast.observe(0.0);
  }
  slow.observe(1.0);
  fast.observe(1.0);
  EXPECT_LT(slow.forecast(), fast.forecast());
}

TEST(Median, RobustToSingleSpike) {
  MedianForecaster med(5);
  SlidingMeanForecaster avg(5);
  for (double x : {0.5, 0.5, 0.5, 0.5, 100.0}) {
    med.observe(x);
    avg.observe(x);
  }
  EXPECT_DOUBLE_EQ(med.forecast(), 0.5);
  EXPECT_GT(avg.forecast(), 10.0);
}

TEST(TrimmedMean, IgnoresOutliersBothSides) {
  TrimmedMeanForecaster f(5, 1);
  for (double x : {-100.0, 0.4, 0.5, 0.6, 100.0}) f.observe(x);
  EXPECT_DOUBLE_EQ(f.forecast(), 0.5);
}

TEST(AdaptiveWindow, ShrinksAfterLevelShift) {
  AdaptiveWindowForecaster f(AdaptiveWindowForecaster::Kind::kMean, 2, 64,
                             0.7);
  for (int i = 0; i < 64; ++i) f.observe(0.2);
  const std::size_t before = f.current_window();
  for (int i = 0; i < 20; ++i) f.observe(0.9);
  EXPECT_LT(f.current_window(), before);
  // After the shift the forecast must track the new level quickly.
  EXPECT_NEAR(f.forecast(), 0.9, 0.05);
}

TEST(AdaptiveWindow, MedianKindUsesMedian) {
  AdaptiveWindowForecaster f(AdaptiveWindowForecaster::Kind::kMedian, 3, 9);
  for (double x : {0.5, 0.5, 0.5, 0.5, 40.0}) f.observe(x);
  EXPECT_DOUBLE_EQ(f.forecast(), 0.5);
}

TEST(AdaptiveWindow, WindowStaysWithinBounds) {
  AdaptiveWindowForecaster f(AdaptiveWindowForecaster::Kind::kMean, 4, 16,
                             0.6);
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    f.observe(rng.uniform());
    ASSERT_GE(f.current_window(), 4u);
    ASSERT_LE(f.current_window(), 16u);
  }
}

TEST(Gradient, TracksRampFasterThanFixedGain) {
  GradientForecaster adaptive(0.1, 0.01, 0.9);
  ExpSmoothForecaster fixed(0.1);
  double adaptive_err = 0.0, fixed_err = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double x = 0.005 * i;  // steady ramp: errors keep the same sign
    adaptive_err += std::abs(adaptive.forecast() - x);
    fixed_err += std::abs(fixed.forecast() - x);
    adaptive.observe(x);
    fixed.observe(x);
  }
  EXPECT_LT(adaptive_err, fixed_err);
  EXPECT_GT(adaptive.gain(), 0.1);  // gain accelerated on the ramp
}

TEST(Gradient, GainShrinksOnAlternatingNoise) {
  GradientForecaster f(0.5, 0.01, 0.9);
  for (int i = 0; i < 200; ++i) f.observe(i % 2 == 0 ? 0.2 : 0.8);
  EXPECT_LT(f.gain(), 0.5);
}

// ---------------------------------------------------------------------------
// Battery-wide protocol properties (TEST_P over every method)

class EveryMethod : public ::testing::TestWithParam<std::size_t> {
 protected:
  ForecasterPtr make() const {
    auto methods = make_nws_methods();
    return std::move(methods.at(GetParam()));
  }
};

TEST_P(EveryMethod, InitialForecastIsNeutralPrior) {
  const auto f = make();
  EXPECT_DOUBLE_EQ(f->forecast(), Forecaster::kInitialGuess);
}

TEST_P(EveryMethod, ResetRestoresInitialState) {
  const auto f = make();
  Rng rng(3);
  for (int i = 0; i < 50; ++i) f->observe(rng.uniform());
  f->reset();
  EXPECT_DOUBLE_EQ(f->forecast(), Forecaster::kInitialGuess);
}

TEST_P(EveryMethod, CloneIsIndependentDeepCopy) {
  const auto f = make();
  for (double x : {0.2, 0.4, 0.6}) f->observe(x);
  const auto copy = f->clone();
  EXPECT_DOUBLE_EQ(copy->forecast(), f->forecast());
  EXPECT_EQ(copy->name(), f->name());
  // Diverge the copy; the original must not move.
  const double before = f->forecast();
  copy->observe(0.99);
  copy->observe(0.99);
  EXPECT_DOUBLE_EQ(f->forecast(), before);
}

TEST_P(EveryMethod, ConstantSeriesIsLearnedExactly) {
  const auto f = make();
  for (int i = 0; i < 200; ++i) f->observe(0.42);
  EXPECT_NEAR(f->forecast(), 0.42, 1e-6);
}

TEST_P(EveryMethod, ForecastStaysWithinObservedRange) {
  // All battery members are interpolating estimators (means/medians of
  // history): forecasts must stay inside [min, max] of what was seen.
  const auto f = make();
  Rng rng(4);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform();
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    f->observe(x);
    ASSERT_GE(f->forecast(), lo - 1e-9);
    ASSERT_LE(f->forecast(), hi + 1e-9);
  }
}

TEST_P(EveryMethod, NamesAreUniqueWithinBattery) {
  const auto methods = make_nws_methods();
  const std::string mine = methods.at(GetParam())->name();
  int count = 0;
  for (const auto& m : methods) count += m->name() == mine;
  EXPECT_EQ(count, 1) << mine;
}

INSTANTIATE_TEST_SUITE_P(Battery, EveryMethod,
                         ::testing::Range<std::size_t>(
                             0, make_nws_methods().size()),
                         [](const auto& info) {
                           std::string name =
                               make_nws_methods().at(info.param)->name();
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// AdaptiveForecaster (dynamic model selection)

std::vector<ForecasterPtr> two_method_battery() {
  std::vector<ForecasterPtr> methods;
  methods.push_back(std::make_unique<LastValueForecaster>());
  methods.push_back(std::make_unique<RunningMeanForecaster>());
  return methods;
}

TEST(Adaptive, ThrowsOnEmptyBattery) {
  EXPECT_THROW(AdaptiveForecaster(std::vector<ForecasterPtr>{}),
               std::invalid_argument);
}

TEST(Adaptive, SelectsPersistenceOnRandomWalk) {
  // On a slow random walk, persistence beats the whole-history mean.
  AdaptiveForecaster f(two_method_battery(), 30);
  Rng rng(5);
  double level = 0.5;
  for (int i = 0; i < 400; ++i) {
    level = std::clamp(level + sample_normal(rng, 0.0, 0.02), 0.0, 1.0);
    f.observe(level);
  }
  EXPECT_EQ(f.selected_method(), "last");
}

TEST(Adaptive, SelectsMeanOnIidNoise) {
  // On iid noise around a fixed level, the mean beats persistence.
  AdaptiveForecaster f(two_method_battery(), 30);
  Rng rng(6);
  for (int i = 0; i < 400; ++i) {
    f.observe(std::clamp(0.5 + sample_normal(rng, 0.0, 0.1), 0.0, 1.0));
  }
  EXPECT_EQ(f.selected_method(), "run_mean");
}

TEST(Adaptive, SwitchesWhenRegimeChanges) {
  AdaptiveForecaster f(two_method_battery(), 20);
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    f.observe(std::clamp(0.5 + sample_normal(rng, 0.0, 0.1), 0.0, 1.0));
  }
  ASSERT_EQ(f.selected_method(), "run_mean");
  // Level shift: the stale whole-history mean becomes terrible.
  double level = 0.95;
  for (int i = 0; i < 100; ++i) {
    level = std::clamp(level + sample_normal(rng, 0.0, 0.01), 0.0, 1.0);
    f.observe(level);
  }
  EXPECT_EQ(f.selected_method(), "last");
}

TEST(Adaptive, ErrorsAndSelectionCountsAreTracked) {
  AdaptiveForecaster f(two_method_battery(), 10);
  for (int i = 0; i < 50; ++i) f.observe(0.5);
  EXPECT_EQ(f.num_methods(), 2u);
  EXPECT_EQ(f.times_selected(0) + f.times_selected(1), 50u);
  // Both methods predict a constant series perfectly after warm-up.
  EXPECT_NEAR(f.method_error(0), 0.0, 1e-9);
  EXPECT_NEAR(f.method_error(1), 0.0, 1e-9);
}

TEST(Adaptive, WholeHistoryWindowZeroWorks) {
  AdaptiveForecaster f(two_method_battery(), 0);
  Rng rng(8);
  for (int i = 0; i < 200; ++i) f.observe(rng.uniform());
  EXPECT_GE(f.method_error(0), 0.0);
  EXPECT_LT(f.method_error(0), 1.0);
}

TEST(Adaptive, MseNormSelectsToo) {
  AdaptiveForecaster f(two_method_battery(), 30, SelectionNorm::kMse);
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    f.observe(std::clamp(0.5 + sample_normal(rng, 0.0, 0.1), 0.0, 1.0));
  }
  EXPECT_EQ(f.selected_method(), "run_mean");
}

TEST(Adaptive, CloneCopiesStateDeeply) {
  auto f = make_nws_forecaster();
  Rng rng(10);
  for (int i = 0; i < 100; ++i) f->observe(rng.uniform());
  const auto copy = f->clone();
  EXPECT_DOUBLE_EQ(copy->forecast(), f->forecast());
  copy->observe(0.0);
  copy->observe(0.0);
  // The original keeps forecasting from its own state.
  EXPECT_NE(copy->forecast(), f->forecast());
}

TEST(Adaptive, ResetClearsEverything) {
  auto f = make_nws_forecaster();
  for (int i = 0; i < 50; ++i) f->observe(0.9);
  f->reset();
  EXPECT_DOUBLE_EQ(f->forecast(), Forecaster::kInitialGuess);
}

// The NWS headline property: the adaptive forecaster is "equivalent to, or
// slightly better than, the best forecaster in the set".  We require it to
// be within 15% (relative) of the best single method and never worse than
// the median method, across qualitatively different series.
struct SeriesCase {
  const char* name;
  std::vector<double> (*make)(std::size_t);
};

std::vector<double> series_random_walk(std::size_t n) {
  Rng rng(100);
  std::vector<double> xs;
  double level = 0.5;
  for (std::size_t i = 0; i < n; ++i) {
    level = std::clamp(level + sample_normal(rng, 0.0, 0.02), 0.0, 1.0);
    xs.push_back(level);
  }
  return xs;
}

std::vector<double> series_noisy_level(std::size_t n) {
  Rng rng(101);
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(std::clamp(0.7 + sample_normal(rng, 0.0, 0.08), 0.0, 1.0));
  }
  return xs;
}

std::vector<double> series_regime_switch(std::size_t n) {
  Rng rng(102);
  std::vector<double> xs;
  double level = 0.2;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.005)) level = rng.uniform(0.1, 0.9);
    xs.push_back(std::clamp(level + sample_normal(rng, 0.0, 0.03), 0.0, 1.0));
  }
  return xs;
}

std::vector<double> series_spiky(std::size_t n) {
  Rng rng(103);
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(rng.chance(0.05) ? rng.uniform(0.0, 0.2)
                                  : 0.9 + 0.05 * rng.uniform());
  }
  return xs;
}

std::vector<double> series_periodic(std::size_t n) {
  Rng rng(104);
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i) {
    const double base =
        0.5 + 0.3 * std::sin(2.0 * std::numbers::pi *
                             static_cast<double>(i) / 120.0);
    xs.push_back(std::clamp(base + sample_normal(rng, 0.0, 0.05), 0.0, 1.0));
  }
  return xs;
}

class AdaptiveProperty : public ::testing::TestWithParam<SeriesCase> {};

TEST_P(AdaptiveProperty, TracksBestSingleMethod) {
  const auto xs = GetParam().make(3000);
  const auto evals = evaluate_battery(xs);
  double adaptive_mae = -1.0;
  std::vector<double> single_maes;
  for (const auto& ev : evals) {
    if (ev.method == "nws_adaptive") {
      adaptive_mae = ev.mae;
    } else {
      single_maes.push_back(ev.mae);
    }
  }
  ASSERT_GE(adaptive_mae, 0.0);
  std::sort(single_maes.begin(), single_maes.end());
  const double best = single_maes.front();
  const double med = single_maes[single_maes.size() / 2];
  EXPECT_LE(adaptive_mae, best * 1.15 + 1e-4)
      << "adaptive " << adaptive_mae << " vs best single " << best;
  EXPECT_LE(adaptive_mae, med);
}

INSTANTIATE_TEST_SUITE_P(
    Series, AdaptiveProperty,
    ::testing::Values(SeriesCase{"random_walk", series_random_walk},
                      SeriesCase{"noisy_level", series_noisy_level},
                      SeriesCase{"regime_switch", series_regime_switch},
                      SeriesCase{"spiky", series_spiky},
                      SeriesCase{"periodic", series_periodic}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Evaluation harness

TEST(Evaluate, ForecastsAlignedOneStepAhead) {
  LastValueForecaster f;
  const std::vector<double> xs = {0.1, 0.2, 0.3, 0.4};
  const ForecastEvaluation ev = evaluate_forecaster(f, xs);
  ASSERT_EQ(ev.forecasts.size(), 4u);
  EXPECT_DOUBLE_EQ(ev.forecasts[0], Forecaster::kInitialGuess);
  EXPECT_DOUBLE_EQ(ev.forecasts[1], 0.1);  // prediction for xs[1]
  EXPECT_DOUBLE_EQ(ev.forecasts[3], 0.3);
  ASSERT_EQ(ev.errors.size(), 3u);
  EXPECT_NEAR(ev.mae, 0.1, 1e-12);
  EXPECT_NEAR(ev.mse, 0.01, 1e-12);
  EXPECT_NEAR(ev.rmse, 0.1, 1e-12);
}

TEST(Evaluate, DoesNotMutateTheInputForecaster) {
  LastValueForecaster f;
  f.observe(0.77);
  const std::vector<double> xs = {0.1, 0.2};
  (void)evaluate_forecaster(f, xs);
  EXPECT_DOUBLE_EQ(f.forecast(), 0.77);
}

TEST(Evaluate, EmptyAndSingleSeries) {
  LastValueForecaster f;
  const ForecastEvaluation empty =
      evaluate_forecaster(f, std::span<const double>{});
  EXPECT_TRUE(empty.errors.empty());
  EXPECT_DOUBLE_EQ(empty.mae, 0.0);
  const std::vector<double> one = {0.5};
  const ForecastEvaluation single = evaluate_forecaster(f, one);
  EXPECT_EQ(single.forecasts.size(), 1u);
  EXPECT_TRUE(single.errors.empty());
}

TEST(Evaluate, MapeSkipsZeroTargets) {
  LastValueForecaster f;
  const std::vector<double> xs = {1.0, 0.0, 2.0};
  const ForecastEvaluation ev = evaluate_forecaster(f, xs);
  // Only xs[2] = 2.0 contributes: |0 - 2| / 2 = 1.
  EXPECT_NEAR(ev.mape, 1.0, 1e-12);
}

TEST(Evaluate, BatterySortedByMae) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform());
  const auto evals = evaluate_battery(xs);
  ASSERT_GT(evals.size(), 10u);
  for (std::size_t i = 1; i < evals.size(); ++i) {
    EXPECT_LE(evals[i - 1].mae, evals[i].mae);
  }
}

TEST(Evaluate, TimeSeriesOverloadMatchesSpan) {
  const TimeSeries series("x", 0.0, 10.0, {0.1, 0.3, 0.5});
  LastValueForecaster f;
  const auto a = evaluate_forecaster(f, series);
  const auto b = evaluate_forecaster(f, series.values());
  EXPECT_EQ(a.forecasts, b.forecasts);
  EXPECT_DOUBLE_EQ(a.mae, b.mae);
}

}  // namespace
}  // namespace nws

// Cross-tier distributed tracing + the HTTP observability plane
// (DESIGN.md §9).
//
// End-to-end stitching: a sampled request traced at the client crosses the
// router (TRC prefix / trace-flagged frame, span id rewritten per hop),
// lands at the primary's apply path, rides the replication batch to the
// follower, and comes back out of the span rings as ONE trace with a
// parent-linked span chain.  The HTTP plane: /metrics byte parity with the
// METRICS wire verb, /healthz role gating, /tracez, /statusz.  Fuzz:
// truncated/garbage TRC prefixes and flagged frames must not desync either
// the server's dispatcher or the router's demux.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "nws/client.hpp"
#include "nws/protocol.hpp"
#include "nws/router.hpp"
#include "nws/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nws {
namespace {

using namespace std::chrono_literals;

bool wait_for(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Raw-socket helpers (the router_test idiom)

class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  bool send_bytes(std::string_view bytes) {
    std::size_t sent = 0;
    while (fd_ >= 0 && sent < bytes.size()) {
      const ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (w <= 0) return false;
      sent += static_cast<std::size_t>(w);
    }
    return sent == bytes.size();
  }

  [[nodiscard]] std::optional<std::string> read_line() {
    for (;;) {
      const std::size_t nl = rx_.find('\n');
      if (nl != std::string::npos) {
        std::string line = rx_.substr(0, nl);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        rx_.erase(0, nl + 1);
        return line;
      }
      if (!fill()) return std::nullopt;
    }
  }

  [[nodiscard]] std::optional<std::string> read_frame() {
    for (;;) {
      std::size_t frame_end = 0;
      std::string_view payload;
      const BinFrameStatus status =
          extract_binary_frame(rx_, 16 * 1024 * 1024, frame_end, payload);
      if (status == BinFrameStatus::kError) return std::nullopt;
      if (status == BinFrameStatus::kFrame) {
        std::string out(payload);
        rx_.erase(0, frame_end);
        return out;
      }
      if (!fill()) return std::nullopt;
    }
  }

  /// Drains until EOF (Connection: close responses).
  [[nodiscard]] std::string read_all() {
    while (fill()) {
    }
    return rx_;
  }

 private:
  bool fill() {
    char chunk[4096];
    const ssize_t n = fd_ >= 0 ? ::recv(fd_, chunk, sizeof chunk, 0) : -1;
    if (n <= 0) return false;
    rx_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string rx_;
};

struct HttpReply {
  int status = 0;
  std::string body;
};

/// One HTTP/1.1 round trip against the observability plane.
HttpReply http_get(std::uint16_t port, const std::string& target,
                   const std::string& method = "GET") {
  HttpReply r;
  RawConn conn(port);
  if (!conn.ok()) return r;
  if (!conn.send_bytes(method + " " + target + " HTTP/1.1\r\nHost: t\r\n\r\n")) {
    return r;
  }
  const std::string raw = conn.read_all();
  const std::size_t sp = raw.find(' ');
  if (sp != std::string::npos) {
    r.status = std::atoi(raw.c_str() + sp + 1);
  }
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end != std::string::npos) r.body = raw.substr(head_end + 4);
  return r;
}

/// Crafts a trace-flagged binary frame by hand (for malformed-context
/// fuzzing the library encoder refuses to produce).
std::string flagged_frame(std::uint64_t trace_id, std::uint64_t span_id,
                          char sampled, std::string_view body) {
  std::string out;
  const std::uint32_t len =
      (static_cast<std::uint32_t>(body.size() + kBinTraceCtxBytes)) |
      kBinTraceFlag;
  for (std::size_t b = 0; b < 4; ++b) {
    out.push_back(static_cast<char>((len >> (8 * b)) & 0xff));
  }
  for (std::size_t b = 0; b < 8; ++b) {
    out.push_back(static_cast<char>((trace_id >> (8 * b)) & 0xff));
  }
  for (std::size_t b = 0; b < 8; ++b) {
    out.push_back(static_cast<char>((span_id >> (8 * b)) & 0xff));
  }
  out.push_back(sampled);
  out.append(body);
  return out;
}

/// Ordered metric keys (comments included) of a Prometheus body — the
/// merge-order oracle.
std::vector<std::string> metric_keys(const std::string& body) {
  std::vector<std::string> keys;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t nl = body.find('\n', pos);
    if (nl == std::string::npos) nl = body.size();
    const std::string line = body.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (line.front() == '#') {
      keys.push_back(line);
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    keys.push_back(sp == std::string::npos ? line : line.substr(0, sp));
  }
  return keys;
}

/// Value of the first sample whose key starts with `prefix` (nullopt when
/// absent).
std::optional<double> sample_value(const std::string& body,
                                   const std::string& prefix) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t nl = body.find('\n', pos);
    if (nl == std::string::npos) nl = body.size();
    const std::string line = body.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.rfind(prefix, 0) != 0 || line.empty() || line.front() == '#') {
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    return std::atof(line.c_str() + sp + 1);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// End-to-end stitching: client -> router -> primary -> follower

TEST(TraceE2E, OneRoutedWriteStitchesAcrossAllFourTiers) {
  obs::set_metrics_enabled(true);
  obs::set_trace_ring_capacity(512);
  obs::set_trace_sample_every(1);  // sample every request at the edge
  obs::clear_spans();

  NwsServer follower([] {
    ServerConfig cfg;
    cfg.shards = 1;
    cfg.role = ServerRole::kFollower;
    return cfg;
  }());
  const std::uint16_t fport = follower.start(0);
  ASSERT_NE(fport, 0);

  NwsServer primary([&] {
    ServerConfig cfg;
    cfg.shards = 1;
    cfg.repl_followers = std::to_string(fport);
    cfg.repl_heartbeat_ms = 10;
    cfg.obs_port = 0;  // ephemeral HTTP plane
    return cfg;
  }());
  ASSERT_NE(primary.start(0), 0);
  ASSERT_NE(primary.obs_port(), 0);

  RouterConfig rcfg;
  rcfg.backends = std::to_string(primary.port());
  Router router(rcfg);
  ASSERT_TRUE(router.start(0));

  NwsClient client([] {
    ClientConfig cc;
    cc.binary = true;
    cc.trace = true;
    return cc;
  }());
  ASSERT_TRUE(client.connect(router.port()));
  EXPECT_TRUE(client.binary_active());
  EXPECT_TRUE(client.trace_active());
  ASSERT_TRUE(client.put("alpha/cpu", Measurement{10.0, 0.5}));

  // The replication hop is asynchronous: wait until the follower applied
  // the write AND its spans reached the (process-global) rings.
  ASSERT_TRUE(wait_for([&] {
    const auto stats = parse_stats_response(follower.handle_line("STATS"));
    return stats && stats->appended == 1;
  })) << "follower never applied the replicated write";

  std::vector<obs::TraceSummary> traces;
  ASSERT_TRUE(wait_for([&] {
    for (obs::TraceSummary& t : (traces = obs::dump_traces())) {
      bool has_client = false;
      bool has_router = false;
      bool has_repl = false;
      std::size_t applies = 0;
      for (const obs::SpanRecord& s : t.spans) {
        const std::string_view name(s.name);
        has_client = has_client || name == "client.request";
        has_router = has_router || name == "router.forward";
        has_repl = has_repl || name == "repl.apply";
        applies += name == "server.apply" ? 1 : 0;
      }
      if (has_client && has_router && has_repl && applies >= 2) return true;
    }
    return false;
  })) << "no stitched trace spanning all four tiers";

  // Pick the stitched trace and verify the parent chain.
  const obs::TraceSummary* t = nullptr;
  for (const obs::TraceSummary& cand : traces) {
    for (const obs::SpanRecord& s : cand.spans) {
      if (std::string_view(s.name) == "repl.apply") t = &cand;
    }
  }
  ASSERT_NE(t, nullptr);
  EXPECT_GE(t->spans.size(), 5u);
  EXPECT_GE(t->parent_links, 4u)
      << "spans did not form a parent chain across the tiers";
  auto find = [&](std::string_view name) -> const obs::SpanRecord* {
    for (const obs::SpanRecord& s : t->spans) {
      if (std::string_view(s.name) == name) return &s;
    }
    return nullptr;
  };
  const obs::SpanRecord* client_span = find("client.request");
  const obs::SpanRecord* router_span = find("router.forward");
  ASSERT_NE(client_span, nullptr);
  ASSERT_NE(router_span, nullptr);
  EXPECT_EQ(client_span->parent_id, 0u) << "client span must be the root";
  EXPECT_EQ(router_span->parent_id, client_span->span_id)
      << "router hop must parent to the client's span";

  // The same trace is visible on the HTTP plane.
  const HttpReply tracez = http_get(primary.obs_port(), "/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("repl.apply"), std::string::npos);
  EXPECT_NE(tracez.body.find("router.forward"), std::string::npos);
  char trace_hex[32];
  std::snprintf(trace_hex, sizeof trace_hex, "%016llx",
                static_cast<unsigned long long>(t->trace_id));
  EXPECT_NE(tracez.body.find(trace_hex), std::string::npos);

  client.disconnect();
  router.stop();
  primary.stop();
  follower.stop();
  obs::set_trace_sample_every(0);
  obs::set_trace_ring_capacity(0);
  obs::clear_spans();
}

// ---------------------------------------------------------------------------
// /metrics parity with the METRICS wire verb

TEST(TraceParity, HttpMetricsByteIdenticalToWireMetrics) {
  obs::set_metrics_enabled(true);
  NwsServer server([] {
    ServerConfig cfg;
    cfg.shards = 1;
    cfg.obs_port = 0;
    return cfg;
  }());
  ASSERT_NE(server.start(0), 0);
  ASSERT_NE(server.obs_port(), 0);

  NwsClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.put("alpha/cpu", Measurement{1.0, 0.25}));
  ASSERT_TRUE(client.put("bravo/cpu", Measurement{2.0, 0.75}));
  ASSERT_TRUE(client.metrics().has_value());  // populate request counters

  // Both transports serve NwsServer::metrics_body() verbatim; freezing
  // the registry (the wire request itself increments counters, the HTTP
  // plane's own socket writes bump the net counters) makes the parity
  // byte-exact and order-insensitive.
  obs::set_metrics_enabled(false);
  const auto wire = client.metrics();
  ASSERT_TRUE(wire.has_value());
  const HttpReply http = http_get(server.obs_port(), "/metrics");
  EXPECT_EQ(http.status, 200);
  const std::string direct = server.metrics_body();
  EXPECT_EQ(*wire, http.body);
  EXPECT_EQ(http.body, direct);
  obs::set_metrics_enabled(true);

  EXPECT_NE(direct.find("nws_build_info"), std::string::npos);
  EXPECT_NE(direct.find("nws_server_requests_total"), std::string::npos);

  client.disconnect();
  server.stop();
}

TEST(TraceParity, RouterScatterMergeKeepsOrderAndSumsSharedRegistry) {
  obs::set_metrics_enabled(true);
  // Two single-shard backends, two router dispatchers: METRICS scatters
  // to both backends and the gather merges the parts.
  std::vector<std::unique_ptr<NwsServer>> servers;
  std::string spec;
  for (int i = 0; i < 2; ++i) {
    ServerConfig cfg;
    cfg.shards = 1;
    servers.push_back(std::make_unique<NwsServer>(cfg));
    const std::uint16_t port = servers.back()->start(0);
    ASSERT_NE(port, 0);
    if (!spec.empty()) spec += ',';
    spec += std::to_string(port);
  }
  RouterConfig rcfg;
  rcfg.backends = spec;
  rcfg.dispatchers = 2;
  Router router(rcfg);
  ASSERT_TRUE(router.start(0));
  ASSERT_GE(router.dispatcher_count(), 2u);
  ASSERT_GE(router.backend_count(), 2u);

  NwsClient client;
  ASSERT_TRUE(client.connect(router.port()));
  ASSERT_TRUE(client.put("alpha/cpu", Measurement{1.0, 0.5}));
  // Warm-up scatter: per-verb counter children are created lazily when a
  // verb first executes, and the METRICS increment lands AFTER the body
  // renders — without this the direct render below would see one more key
  // (the METRICS verb child) than the merged render did.
  ASSERT_TRUE(client.metrics().has_value());
  const auto merged = client.metrics();
  ASSERT_TRUE(merged.has_value());

  // Ordered-merge correctness: the registry is an ordered map shared by
  // every in-process server, so the merged exposition must present the
  // exact key sequence a single backend renders — headers deduped,
  // samples summed, first-appearance order preserved.
  const std::string direct = servers[0]->metrics_body();
  EXPECT_EQ(metric_keys(*merged), metric_keys(direct));

  // Shared-registry sentinel: both in-process backends render the SAME
  // build-info gauge (value 1), so the routed sum is exactly 2 — proof
  // the merge summed per-backend parts rather than passing one through.
  const auto merged_info = sample_value(*merged, "nws_build_info");
  const auto direct_info = sample_value(direct, "nws_build_info");
  ASSERT_TRUE(merged_info.has_value());
  ASSERT_TRUE(direct_info.has_value());
  EXPECT_EQ(*direct_info, 1.0);
  EXPECT_EQ(*merged_info, 2.0);

  client.disconnect();
  router.stop();
  for (auto& s : servers) s->stop();
}

// ---------------------------------------------------------------------------
// Trace-context fuzz: malformed prefixes and frames must not desync

TEST(TraceFuzz, GarbageTrcPrefixesFailTheLineButNotTheConnection) {
  NwsServer server([] {
    ServerConfig cfg;
    cfg.shards = 1;
    return cfg;
  }());
  ASSERT_NE(server.start(0), 0);

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.send_bytes("HELLO TRC\n"));
  EXPECT_EQ(conn.read_line().value_or(""), kHelloTrcAck);

  const char* bad_lines[] = {
      "TRC PUT a 1 0.5",           // no context token
      "TRC deadbeef PING",         // missing dashes
      "TRC --1 PING",              // empty trace id
      "TRC 0-0-1 PING",            // zero trace id
      "TRC ff-ff-2 PING",          // bad sampled bit
      "TRC ff-ff-11 PING",         // overlong sampled bit
      "TRC zz-ff-1 PING",          // non-hex trace id
      "TRC ff-ff-1",               // context but no verb
  };
  for (const char* line : bad_lines) {
    ASSERT_TRUE(conn.send_bytes(std::string(line) + "\n"));
    EXPECT_EQ(conn.read_line().value_or("<eof>"), "ERR malformed request")
        << "line: " << line;
  }
  // The connection is still in sync: valid traced and plain requests work.
  ASSERT_TRUE(conn.send_bytes("TRC 1f3-9e-1 PUT alpha/cpu 1 0.5\n"));
  EXPECT_EQ(conn.read_line().value_or(""), "OK");
  ASSERT_TRUE(conn.send_bytes("PING\n"));
  EXPECT_EQ(conn.read_line().value_or(""), "OK");
}

TEST(TraceFuzz, FlaggedFrameGarbageFailsTheRequestButNotTheStream) {
  NwsServer server([] {
    ServerConfig cfg;
    cfg.shards = 1;
    return cfg;
  }());
  ASSERT_NE(server.start(0), 0);

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.send_bytes("HELLO BIN TRC\n"));
  EXPECT_EQ(conn.read_line().value_or(""), kHelloBinTrcAck);

  std::string ping;
  ping.push_back(static_cast<char>(kBinOpPing));

  // Zero trace id in the context block: the frame is well-framed, so the
  // request fails but the stream stays in sync.
  ASSERT_TRUE(conn.send_bytes(flagged_frame(0, 7, 1, ping)));
  EXPECT_EQ(conn.read_frame().value_or("<eof>"), "ERR malformed request");
  // A garbage sampled byte is rejected too — and the stream survives.
  ASSERT_TRUE(conn.send_bytes(flagged_frame(0x1234, 7, 0x5a, ping)));
  EXPECT_EQ(conn.read_frame().value_or("<eof>"), "ERR malformed request");
  // A valid traced frame still round-trips.
  ASSERT_TRUE(conn.send_bytes(flagged_frame(0xabc, 0xdef, 1, ping)));
  EXPECT_EQ(conn.read_frame().value_or("<eof>"), "OK");

  // A flagged length too short to hold the context block is a framing
  // error: the dispatcher answers and drops the connection (the text
  // path's overlong-line policy).
  std::string truncated;
  const std::uint32_t len = 5u | kBinTraceFlag;
  for (std::size_t b = 0; b < 4; ++b) {
    truncated.push_back(static_cast<char>((len >> (8 * b)) & 0xff));
  }
  truncated.append(5, '\x01');
  ASSERT_TRUE(conn.send_bytes(truncated));
  EXPECT_EQ(conn.read_frame().value_or("<eof>"), "ERR bad frame");
  EXPECT_FALSE(conn.read_frame().has_value()) << "connection must close";
}

TEST(TraceFuzz, RouterSurvivesGarbageContextsFromClients) {
  NwsServer backend([] {
    ServerConfig cfg;
    cfg.shards = 1;
    return cfg;
  }());
  ASSERT_NE(backend.start(0), 0);
  RouterConfig rcfg;
  rcfg.backends = std::to_string(backend.port());
  Router router(rcfg);
  ASSERT_TRUE(router.start(0));

  {  // text framing
    RawConn conn(router.port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.send_bytes("HELLO TRC\n"));
    EXPECT_EQ(conn.read_line().value_or(""), kHelloTrcAck);
    ASSERT_TRUE(conn.send_bytes("TRC 0-0-1 PUT alpha/cpu 1 0.5\n"));
    EXPECT_EQ(conn.read_line().value_or("<eof>"), "ERR malformed request");
    ASSERT_TRUE(conn.send_bytes("TRC 1f3-9e-1 PUT alpha/cpu 1 0.5\n"));
    EXPECT_EQ(conn.read_line().value_or(""), "OK");
    ASSERT_TRUE(conn.send_bytes("PING\n"));
    EXPECT_EQ(conn.read_line().value_or(""), "OK");
  }
  {  // binary framing
    RawConn conn(router.port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.send_bytes("HELLO BIN TRC\n"));
    EXPECT_EQ(conn.read_line().value_or(""), kHelloBinTrcAck);
    std::string ping;
    ping.push_back(static_cast<char>(kBinOpPing));
    ASSERT_TRUE(conn.send_bytes(flagged_frame(0, 7, 1, ping)));
    EXPECT_EQ(conn.read_frame().value_or("<eof>"), "ERR malformed request");
    ASSERT_TRUE(conn.send_bytes(flagged_frame(0x77, 0x88, 1, ping)));
    EXPECT_EQ(conn.read_frame().value_or("<eof>"), "OK");
  }

  router.stop();
  backend.stop();
}

// ---------------------------------------------------------------------------
// /healthz and /statusz

TEST(TraceHealth, HealthzGatesOnRoleAndPrimaryContact) {
  obs::set_metrics_enabled(true);
  {  // a standalone primary is ready
    NwsServer server([] {
      ServerConfig cfg;
      cfg.shards = 1;
      cfg.obs_port = 0;
      return cfg;
    }());
    ASSERT_NE(server.start(0), 0);
    ASSERT_NE(server.obs_port(), 0);
    const HttpReply r = http_get(server.obs_port(), "/healthz");
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("role: primary"), std::string::npos);
    EXPECT_NE(r.body.find("status: ok"), std::string::npos);
    server.stop();
  }
  {  // a follower that never heard a primary is not ready
    NwsServer follower([] {
      ServerConfig cfg;
      cfg.shards = 1;
      cfg.role = ServerRole::kFollower;
      cfg.obs_port = 0;
      return cfg;
    }());
    ASSERT_NE(follower.start(0), 0);
    ASSERT_NE(follower.obs_port(), 0);
    const HttpReply r = http_get(follower.obs_port(), "/healthz");
    EXPECT_EQ(r.status, 503);
    EXPECT_NE(r.body.find("role: follower"), std::string::npos);
    EXPECT_NE(r.body.find("primary_hint: -"), std::string::npos);
    follower.stop();
  }
}

TEST(TraceHealth, StatuszAndUnknownPaths) {
  NwsServer server([] {
    ServerConfig cfg;
    cfg.shards = 2;
    cfg.obs_port = 0;
    return cfg;
  }());
  ASSERT_NE(server.start(0), 0);
  ASSERT_NE(server.obs_port(), 0);

  const HttpReply status = http_get(server.obs_port(), "/statusz");
  EXPECT_EQ(status.status, 200);
  EXPECT_NE(status.body.find("nwscpu"), std::string::npos);
  EXPECT_NE(status.body.find("shards: 2"), std::string::npos);
  EXPECT_NE(status.body.find("net_backend:"), std::string::npos);

  EXPECT_EQ(http_get(server.obs_port(), "/nope").status, 404);
  EXPECT_EQ(http_get(server.obs_port(), "/metrics", "POST").status, 405);

  const HttpReply tracez = http_get(server.obs_port(), "/tracez");
  EXPECT_EQ(tracez.status, 200);

  server.stop();
}

// ---------------------------------------------------------------------------
// Handshake compatibility: old peers keep working

TEST(TraceHandshake, TracedClientDegradesAgainstPlainAcks) {
  NwsServer server([] {
    ServerConfig cfg;
    cfg.shards = 1;
    return cfg;
  }());
  ASSERT_NE(server.start(0), 0);

  // A client that asks for tracing against a server that speaks it.
  NwsClient traced([] {
    ClientConfig cc;
    cc.trace = true;
    return cc;
  }());
  ASSERT_TRUE(traced.connect(server.port()));
  EXPECT_TRUE(traced.trace_active());
  EXPECT_TRUE(traced.ping());

  // A plain client is untouched by the extension.
  NwsClient plain;
  ASSERT_TRUE(plain.connect(server.port()));
  EXPECT_FALSE(plain.trace_active());
  EXPECT_TRUE(plain.ping());

  server.stop();
}

}  // namespace
}  // namespace nws

// The consistent-hash router tier (DESIGN.md §12).
//
// Deterministic ring units (layout determinism, vnode smoothing, the
// K/(N+1) remap bound), then live proxy scenarios: routed responses must be
// byte-identical to a direct server across {1,2,4} backends x {text,binary}
// framing, the HELLO state machine mirrors the server's, scatter-gather
// merges (SERIES/STATS/METRICS — including over the binary TEXT op) match
// the per-backend truth, framing-level garbage from an upstream fails the
// connection over to the group's next endpoint without desynchronising the
// demux, and a primary kill + PROMOTE behind the router keeps the client's
// sequence-tagged stream exactly-once.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "nws/client.hpp"
#include "nws/hash_ring.hpp"
#include "nws/protocol.hpp"
#include "nws/router.hpp"
#include "nws/server.hpp"
#include "obs/metrics.hpp"

namespace nws {
namespace {

using namespace std::chrono_literals;

bool wait_for(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

// ---------------------------------------------------------------------------
// HashRing units

std::vector<std::string> fake_identities(std::size_t n) {
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back("10.0.0." + std::to_string(i + 1) + ":7000");
  }
  return ids;
}

TEST(HashRing, LayoutIsAPureFunctionOfIdentitiesAndVnodes) {
  const auto ids = fake_identities(5);
  const HashRing a(ids, 64);
  const HashRing b(ids, 64);
  EXPECT_EQ(a.node_count(), 5u);
  EXPECT_EQ(a.vnodes(), 64u);
  EXPECT_EQ(a.points().size(), 5u * 64u);
  // A second router (or a restart) derives the identical ring: same points,
  // same owner for every key, no coordination channel needed.
  EXPECT_EQ(a.points(), b.points());
  for (int i = 0; i < 500; ++i) {
    const std::string key = "host" + std::to_string(i) + "/cpu";
    EXPECT_EQ(a.lookup(key), b.lookup(key));
  }
}

TEST(HashRing, VnodesSmoothOwnershipTowardOneOverN) {
  const HashRing ring(fake_identities(4), 128);
  const auto shares = ring.ownership();
  ASSERT_EQ(shares.size(), 4u);
  double total = 0.0;
  for (const double s : shares) {
    total += s;
    EXPECT_GT(s, 0.10) << "a backend owns too little of the circle";
    EXPECT_LT(s, 0.45) << "a backend owns too much of the circle";
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HashRing, ZeroVnodesDegradesToOnePointPerNode) {
  const HashRing ring(fake_identities(3), 0);
  EXPECT_EQ(ring.vnodes(), 1u);
  EXPECT_EQ(ring.points().size(), 3u);
  EXPECT_TRUE(HashRing().empty());
}

TEST(HashRing, AddingANodeRemapsOnlyItsOwnArcs) {
  // The consistent-hashing contract: growing N -> N+1 moves an expected
  // K/(N+1) of K keys, and every moved key moves TO the new node — no key
  // shuffles between the old ones.
  const std::size_t kKeys = 20000;
  auto ids = fake_identities(4);
  const HashRing before(ids, 64);
  ids.push_back("10.0.0.99:7000");
  const HashRing after(ids, 64);

  std::size_t moved = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const std::string key = "series-" + std::to_string(i) + "/cpu";
    const std::size_t was = before.lookup(key);
    const std::size_t now = after.lookup(key);
    if (was != now) {
      ++moved;
      EXPECT_EQ(now, 4u) << "key " << key << " moved between OLD nodes";
    }
  }
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_GT(fraction, 0.05) << "the new node took (almost) nothing";
  EXPECT_LT(fraction, 2.5 / 5.0) << "far more than K/(N+1) keys moved";
}

// ---------------------------------------------------------------------------
// Live-proxy helpers (the net_backend_test idiom: pipelined raw sockets)

/// Request script spanning every verb, both put flavours, duplicates,
/// out-of-order samples, unknown series, malformed input and enough
/// distinct series to land on several ring arcs.  (METRICS is exercised
/// separately: in-process backends share one obs registry, so the merged
/// exposition is not byte-comparable to a direct server's.)
std::vector<std::string> script_lines() {
  std::vector<std::string> lines;
  const char* series[] = {"alpha/cpu", "bravo/cpu", "charlie/cpu",
                          "delta/cpu", "echo/cpu"};
  for (int round = 0; round < 12; ++round) {
    for (const char* s : series) {
      const double t = 10.0 * (round + 1);
      lines.push_back("PUT " + std::string(s) + " " + std::to_string(t) +
                      " 0." + std::to_string(20 + (round * 11) % 75));
    }
  }
  for (const char* s : series) {
    lines.push_back("FORECAST " + std::string(s));
    lines.push_back("VALUES " + std::string(s) + " 4");
    lines.push_back("STATS " + std::string(s));
  }
  lines.push_back("PUTS alpha/cpu 1 400 0.5");
  lines.push_back("PUTS alpha/cpu 1 410 0.5");  // seq dup
  lines.push_back("PUTS alpha/cpu 2 395 0.5");  // time dup
  lines.push_back("PUT bravo/cpu 5 0.5");       // out of order
  lines.push_back("PUTB echo/cpu 3 1 500 0.5 510 0.625 520 0.75");
  lines.push_back("PUTB echo/cpu 3 1 500 0.5 510 0.625 520 0.75");  // replay
  lines.push_back("FORECAST nobody/cpu");  // unknown series
  lines.push_back("SERIES");               // scatter-gather
  lines.push_back("STATS");                // scatter-gather
  lines.push_back("PING");                 // answered at the router
  lines.push_back("BOGUS request");        // malformed
  return lines;
}

/// Encodes one script line as a binary request frame (native encoding when
/// the text parser accepts it, the raw TEXT op otherwise).
void append_frame_for_line(std::string& wire, const std::string& line) {
  if (const auto req = parse_request(line)) {
    append_binary_request(wire, *req);
    return;
  }
  std::string payload;
  payload += static_cast<char>(kBinOpText);
  payload += line;
  append_binary_response(wire, payload);  // same [u32 len][bytes] layout
}

/// Wraps a raw text line as a TEXT-op request frame even when the native
/// encoding exists — the "op TEXT path" the router must route by its inner
/// verb while forwarding the frame bytes untouched.
void append_text_op_frame(std::string& wire, const std::string& line) {
  std::string payload;
  payload += static_cast<char>(kBinOpText);
  payload += line;
  append_binary_response(wire, payload);
}

class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  bool send_bytes(std::string_view bytes) {
    std::size_t sent = 0;
    while (fd_ >= 0 && sent < bytes.size()) {
      const ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (w <= 0) return false;
      sent += static_cast<std::size_t>(w);
    }
    return sent == bytes.size();
  }

  [[nodiscard]] std::optional<std::string> read_line() {
    for (;;) {
      const std::size_t nl = rx_.find('\n');
      if (nl != std::string::npos) {
        std::string line = rx_.substr(0, nl);
        rx_.erase(0, nl + 1);
        return line;
      }
      if (!fill()) return std::nullopt;
    }
  }

  [[nodiscard]] std::optional<std::string> read_frame() {
    for (;;) {
      std::size_t frame_end = 0;
      std::string_view payload;
      const BinFrameStatus status =
          extract_binary_frame(rx_, 16 * 1024 * 1024, frame_end, payload);
      if (status == BinFrameStatus::kError) return std::nullopt;
      if (status == BinFrameStatus::kFrame) {
        std::string out(payload);
        rx_.erase(0, frame_end);
        return out;
      }
      if (!fill()) return std::nullopt;
    }
  }

  [[nodiscard]] bool at_eof() {
    if (!rx_.empty()) return false;
    return !fill();
  }

 private:
  bool fill() {
    char chunk[4096];
    const ssize_t n = fd_ >= 0 ? ::recv(fd_, chunk, sizeof chunk, 0) : -1;
    if (n <= 0) return false;
    rx_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string rx_;
};

std::vector<std::string> run_text(std::uint16_t port,
                                  const std::vector<std::string>& script) {
  std::string wire;
  for (const std::string& line : script) {
    wire += line;
    wire += '\n';
  }
  RawConn conn(port);
  EXPECT_TRUE(conn.ok());
  EXPECT_TRUE(conn.send_bytes(wire));
  std::vector<std::string> responses;
  responses.reserve(script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    const auto line = conn.read_line();
    EXPECT_TRUE(line.has_value()) << "response " << i << " missing";
    if (!line) break;
    responses.push_back(*line);
  }
  return responses;
}

std::vector<std::string> run_binary(std::uint16_t port,
                                    const std::vector<std::string>& script) {
  std::string wire(kHelloBinRequest);
  wire += '\n';
  for (const std::string& line : script) append_frame_for_line(wire, line);
  RawConn conn(port);
  EXPECT_TRUE(conn.ok());
  EXPECT_TRUE(conn.send_bytes(wire));
  const auto ack = conn.read_line();
  EXPECT_EQ(ack.value_or(""), kHelloBinAck);
  std::vector<std::string> responses;
  responses.reserve(script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    const auto payload = conn.read_frame();
    EXPECT_TRUE(payload.has_value()) << "frame " << i << " missing";
    if (!payload) break;
    responses.push_back(*payload);
  }
  return responses;
}

/// N fresh single-shard backends plus a router in front of them.
struct Fleet {
  std::vector<std::unique_ptr<NwsServer>> servers;
  std::unique_ptr<Router> router;

  explicit Fleet(std::size_t n, RouterConfig rcfg = {}) {
    std::string spec;
    for (std::size_t i = 0; i < n; ++i) {
      ServerConfig cfg;
      cfg.shards = 1;
      servers.push_back(std::make_unique<NwsServer>(cfg));
      const std::uint16_t port = servers.back()->start(0);
      EXPECT_NE(port, 0);
      if (!spec.empty()) spec += ',';
      spec += std::to_string(port);
    }
    rcfg.backends = spec;
    if (rcfg.backoff.base_ms > 2.0) {
      rcfg.backoff = BackoffConfig{2.0, 50.0, 2.0, 0.0, 0.1};
    }
    router = std::make_unique<Router>(rcfg);
    EXPECT_TRUE(router->start(0));
  }

  ~Fleet() {
    if (router) router->stop();
    for (auto& s : servers) s->stop();
  }
};

// ---------------------------------------------------------------------------
// Byte parity: routed == direct, every backend count, both framings

TEST(RouterParity, RoutedResponsesByteIdenticalToADirectServer) {
  const std::vector<std::string> script = script_lines();
  // The oracle: the text protocol against one directly-connected server.
  std::vector<std::string> oracle;
  {
    ServerConfig cfg;
    cfg.shards = 1;
    NwsServer server(cfg);
    const std::uint16_t port = server.start(0);
    ASSERT_NE(port, 0);
    oracle = run_text(port, script);
    server.stop();
  }
  ASSERT_EQ(oracle.size(), script.size());

  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    // Fresh fleet per framing: the script mutates state (STATS totals), so
    // each run must start from the oracle's blank slate.
    std::vector<std::string> text;
    std::vector<std::string> binary;
    {
      Fleet fleet(n);
      text = run_text(fleet.router->port(), script);
      EXPECT_GT(fleet.router->requests_routed(), 0u);
      EXPECT_GE(fleet.router->scatter_requests(), 2u);  // SERIES + STATS
      EXPECT_EQ(fleet.router->backend_count(), n);
    }
    {
      Fleet fleet(n);
      binary = run_binary(fleet.router->port(), script);
    }
    const std::string cell = "backends=" + std::to_string(n);
    ASSERT_EQ(text.size(), oracle.size()) << cell;
    ASSERT_EQ(binary.size(), oracle.size()) << cell;
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_EQ(text[i], oracle[i]) << cell << " request: " << script[i];
      EXPECT_EQ(binary[i], oracle[i]) << cell << " request: " << script[i];
    }
  }
}

TEST(RouterParity, HelloNegotiationMirrorsTheServer) {
  Fleet fleet(2);
  const std::uint16_t port = fleet.router->port();
  {
    RawConn conn(port);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.send_bytes("HELLO\nHELLO TEXT\nHELLO GOBBLE\nPING\n"));
    EXPECT_EQ(conn.read_line().value_or(""), kHelloTextAck);
    EXPECT_EQ(conn.read_line().value_or(""), kHelloTextAck);
    EXPECT_EQ(conn.read_line().value_or(""), "ERR unknown framing");
    EXPECT_EQ(conn.read_line().value_or(""), "OK");
  }
  {
    // The upgrade is per client connection, exactly as on a server.
    RawConn bin(port);
    RawConn text(port);
    ASSERT_TRUE(bin.ok());
    ASSERT_TRUE(text.ok());
    std::string wire(kHelloBinRequest);
    wire += '\n';
    append_frame_for_line(wire, "PING");
    ASSERT_TRUE(bin.send_bytes(wire));
    EXPECT_EQ(bin.read_line().value_or(""), kHelloBinAck);
    EXPECT_EQ(bin.read_frame().value_or(""), "OK");
    ASSERT_TRUE(text.send_bytes("PING\n"));
    EXPECT_EQ(text.read_line().value_or(""), "OK");
  }
}

TEST(RouterParity, QuitClosesAndAdminVerbsAreNotRoutable) {
  Fleet fleet(2);
  const std::uint16_t port = fleet.router->port();
  {
    // Admin verbs stop at the proxy: a client must not be able to demote a
    // backend or inject replication records through the public tier.
    RawConn conn(port);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.send_bytes(
        "PROMOTE\nREPL HELLO 1 1 127.0.0.1:9999\nPUT adm/cpu 1 0.5\nQUIT\n"));
    EXPECT_EQ(conn.read_line().value_or(""), "ERR not routable");
    EXPECT_EQ(conn.read_line().value_or(""), "ERR not routable");
    EXPECT_EQ(conn.read_line().value_or(""), "OK");
    EXPECT_EQ(conn.read_line().value_or(""), "OK");  // the QUIT ack
    EXPECT_TRUE(conn.at_eof());
  }
  {
    // Same through binary framing: the REPL ops and a TEXT-op PROMOTE.
    RawConn conn(port);
    ASSERT_TRUE(conn.ok());
    std::string wire(kHelloBinRequest);
    wire += '\n';
    std::string repl_payload;
    repl_payload += static_cast<char>(kBinOpReplHello);
    repl_payload += "junk";
    append_binary_response(wire, repl_payload);
    append_text_op_frame(wire, "PROMOTE");
    append_frame_for_line(wire, "QUIT");
    ASSERT_TRUE(conn.send_bytes(wire));
    EXPECT_EQ(conn.read_line().value_or(""), kHelloBinAck);
    EXPECT_EQ(conn.read_frame().value_or(""), "ERR not routable");
    EXPECT_EQ(conn.read_frame().value_or(""), "ERR not routable");
    EXPECT_EQ(conn.read_frame().value_or(""), "OK");
    EXPECT_TRUE(conn.at_eof());
  }
  // A backend saw none of it: no promotions, no replication traffic.
  for (const auto& s : fleet.servers) {
    EXPECT_TRUE(s->is_primary());
    EXPECT_EQ(s->promotions(), 0u);
  }
}

TEST(RouterParity, OverlongLineDrawsTheServersExactError) {
  RouterConfig rcfg;
  rcfg.max_line_bytes = 128;
  Fleet fleet(1, rcfg);
  RawConn conn(fleet.router->port());
  ASSERT_TRUE(conn.ok());
  const std::string long_line(256, 'x');
  ASSERT_TRUE(conn.send_bytes("PING\n" + long_line + "\n"));
  EXPECT_EQ(conn.read_line().value_or(""), "OK");
  EXPECT_EQ(conn.read_line().value_or(""), "ERR line too long");
  EXPECT_TRUE(conn.at_eof());
}

// ---------------------------------------------------------------------------
// Scatter-gather merges (including over the binary TEXT-op path)

TEST(RouterScatter, MergedSeriesAndStatsMatchThePerBackendTruth) {
  obs::set_metrics_enabled(true);
  Fleet fleet(2);
  const std::uint16_t port = fleet.router->port();

  // Seed through the router so the keyspace actually splits across both
  // rings arcs, then verify the split is real.
  std::vector<std::string> seed;
  for (int i = 0; i < 16; ++i) {
    const std::string s = "merge" + std::to_string(i) + "/cpu";
    for (int t = 1; t <= 4; ++t) {
      seed.push_back("PUT " + s + " " + std::to_string(10 * t) + " 0.5");
    }
  }
  for (const std::string& r : run_text(port, seed)) EXPECT_EQ(r, "OK");
  std::set<std::size_t> owners;
  for (int i = 0; i < 16; ++i) {
    owners.insert(
        fleet.router->backend_of("merge" + std::to_string(i) + "/cpu"));
  }
  ASSERT_EQ(owners.size(), 2u) << "keyspace never split; merge untested";

  // Direct per-backend truth.
  std::vector<std::string> direct_series;
  std::uint64_t direct_appended = 0;
  std::uint64_t direct_series_count = 0;
  for (const auto& s : fleet.servers) {
    const auto names = parse_series_response(s->handle_line("SERIES"));
    ASSERT_TRUE(names.has_value());
    for (const auto& n : *names) direct_series.push_back(n);
    const auto stats = parse_stats_response(s->handle_line("STATS"));
    ASSERT_TRUE(stats.has_value());
    direct_appended += stats->appended;
    direct_series_count += stats->series;
  }
  std::sort(direct_series.begin(), direct_series.end());

  // Text framing.
  const auto text = run_text(port, {"SERIES", "STATS"});
  ASSERT_EQ(text.size(), 2u);
  const auto merged_series = parse_series_response(text[0]);
  ASSERT_TRUE(merged_series.has_value());
  EXPECT_EQ(*merged_series, direct_series);
  const auto merged_stats = parse_stats_response(text[1]);
  ASSERT_TRUE(merged_stats.has_value());
  EXPECT_EQ(merged_stats->appended, direct_appended);
  EXPECT_EQ(merged_stats->series, direct_series_count);

  // The same two verbs riding the binary TEXT op must merge identically —
  // the demux pairs every gathered part with the right client slot.
  std::string wire(kHelloBinRequest);
  wire += '\n';
  append_text_op_frame(wire, "SERIES");
  append_text_op_frame(wire, "STATS");
  RawConn bin(port);
  ASSERT_TRUE(bin.ok());
  ASSERT_TRUE(bin.send_bytes(wire));
  EXPECT_EQ(bin.read_line().value_or(""), kHelloBinAck);
  EXPECT_EQ(bin.read_frame().value_or(""), text[0]);
  EXPECT_EQ(bin.read_frame().value_or(""), text[1]);
}

TEST(RouterScatter, MetricsMergeSumsSamplesAndDedupsHeaders) {
  obs::set_metrics_enabled(true);
  // A static sentinel counter: in-process backends share this registry, so
  // every gathered part reports the same value and the merged fleet view
  // must show exactly backends x value — a precise check of the
  // sum-by-sample-key merge.
  auto& sentinel =
      obs::registry().counter("nws_routertest_sentinel_total",
                              "router_test merge sentinel (static)");
  sentinel.inc(7);

  Fleet fleet(2);
  const std::uint16_t port = fleet.router->port();

  auto fetch_value = [](const std::string& exposition,
                        const std::string& name) -> std::optional<double> {
    std::size_t pos = 0;
    while (pos < exposition.size()) {
      std::size_t nl = exposition.find('\n', pos);
      if (nl == std::string::npos) nl = exposition.size();
      const std::string line = exposition.substr(pos, nl - pos);
      pos = nl + 1;
      if (line.rfind(name + " ", 0) == 0) {
        return std::stod(line.substr(name.size() + 1));
      }
    }
    return std::nullopt;
  };

  // Direct truth straight off one backend (binary client: METRICS is one
  // frame there).
  ClientConfig ccfg;
  ccfg.binary = true;
  NwsClient direct(ccfg);
  ASSERT_TRUE(direct.connect(fleet.servers[0]->port()));
  const auto direct_metrics = direct.metrics();
  ASSERT_TRUE(direct_metrics.has_value());
  const auto direct_value =
      fetch_value(*direct_metrics, "nws_routertest_sentinel_total");
  ASSERT_TRUE(direct_value.has_value());

  // Merged fleet view through the router, over the native binary METRICS op
  // AND the TEXT-op spelling — both scatter and must agree.
  std::string wire(kHelloBinRequest);
  wire += '\n';
  std::string metrics_payload;
  metrics_payload += static_cast<char>(kBinOpMetrics);
  append_binary_response(wire, metrics_payload);
  append_text_op_frame(wire, "METRICS");
  RawConn conn(port);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.send_bytes(wire));
  EXPECT_EQ(conn.read_line().value_or(""), kHelloBinAck);
  const auto native = conn.read_frame();
  const auto via_text_op = conn.read_frame();
  ASSERT_TRUE(native.has_value());
  ASSERT_TRUE(via_text_op.has_value());

  const auto body = parse_metrics_response(*native);
  ASSERT_TRUE(body.has_value());
  const auto merged_value =
      fetch_value(*body, "nws_routertest_sentinel_total");
  ASSERT_TRUE(merged_value.has_value());
  EXPECT_DOUBLE_EQ(*merged_value, 2.0 * *direct_value);

  // Headers dedup (each '# ...' line appears once) and sample keys are
  // unique in the merged exposition.
  std::set<std::string> seen;
  std::size_t pos = 0;
  while (pos < body->size()) {
    std::size_t nl = body->find('\n', pos);
    if (nl == std::string::npos) nl = body->size();
    const std::string line = body->substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const std::string key =
        line.front() == '#' ? line : line.substr(0, line.rfind(' '));
    EXPECT_TRUE(seen.insert(key).second) << "duplicated in merge: " << key;
  }
  EXPECT_NE(body->find("nws_router_requests_total"), std::string::npos);

  // The TEXT-op response went through the same gather machinery; its
  // sentinel must agree (other counters move between the two requests).
  const auto body2 = parse_metrics_response(*via_text_op);
  ASSERT_TRUE(body2.has_value());
  const auto merged2 = fetch_value(*body2, "nws_routertest_sentinel_total");
  ASSERT_TRUE(merged2.has_value());
  EXPECT_DOUBLE_EQ(*merged2, *merged_value);
}

// ---------------------------------------------------------------------------
// Framing-level upstream garbage: fail over, never desync

/// A byzantine upstream that accepts one connection, optionally completes
/// the HELLO BIN handshake, waits for request bytes, then answers with
/// framing-level garbage and hangs up.  Everything the router's demux must
/// survive by dropping the connection and replaying on the group's next
/// endpoint.
class GarbageUpstream {
 public:
  enum class Mode {
    kBadHelloAck,     ///< "ERR nope" instead of "OK BIN"
    kOversizeLength,  ///< length prefix far beyond the frame cap
    kTruncatedFrame,  ///< valid prefix, missing payload bytes, then EOF
    kHalfHeader,      ///< two bytes of the length prefix, then EOF
  };

  explicit GarbageUpstream(Mode mode) : mode_(mode) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t alen = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serve(); });
  }

  ~GarbageUpstream() {
    stop_.store(true);
    thread_.join();
    ::close(listen_fd_);
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int connections() const { return conns_.load(); }

 private:
  void serve() {
    while (!stop_.load()) {
      pollfd p{listen_fd_, POLLIN, 0};
      if (::poll(&p, 1, 20) <= 0) continue;
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      ++conns_;
      const timeval tv{0, 200 * 1000};
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
      char buf[4096];
      (void)::recv(fd, buf, sizeof buf, 0);  // the router's HELLO BIN
      if (mode_ == Mode::kBadHelloAck) {
        send_all(fd, "ERR nope\n");
        ::close(fd);
        continue;
      }
      send_all(fd, "OK BIN\n");
      (void)::recv(fd, buf, sizeof buf, 0);  // wait for request frames
      switch (mode_) {
        case Mode::kOversizeLength:
          send_all(fd, std::string("\xff\xff\xff\xff", 4));
          break;
        case Mode::kTruncatedFrame: {
          // Claims 100 payload bytes, delivers 10, hangs up.
          std::string junk("\x64\x00\x00\x00", 4);
          junk.append("0123456789");
          send_all(fd, junk);
          break;
        }
        case Mode::kHalfHeader:
          send_all(fd, std::string("\x08\x00", 2));
          break;
        case Mode::kBadHelloAck:
          break;
      }
      ::close(fd);
    }
  }

  static void send_all(int fd, std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t w =
          ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (w <= 0) return;
      sent += static_cast<std::size_t>(w);
    }
  }

  Mode mode_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int> conns_{0};
};

TEST(RouterDemux, UpstreamGarbageFailsOverWithoutDesync) {
  using Mode = GarbageUpstream::Mode;
  for (const Mode mode : {Mode::kBadHelloAck, Mode::kOversizeLength,
                          Mode::kTruncatedFrame, Mode::kHalfHeader}) {
    GarbageUpstream garbage(mode);
    ServerConfig scfg;
    scfg.shards = 1;
    NwsServer real(scfg);
    const std::uint16_t real_port = real.start(0);
    ASSERT_NE(real_port, 0);

    // One group whose first endpoint talks garbage: the router must walk
    // to the real server and replay the un-acked window exactly once.
    RouterConfig rcfg;
    rcfg.backends = std::to_string(garbage.port()) + "|" +
                    std::to_string(real_port);
    rcfg.pool_size = 1;
    rcfg.replay_limit = 8;
    rcfg.backoff = BackoffConfig{2.0, 20.0, 2.0, 0.0, 0.1};
    Router router(rcfg);
    ASSERT_TRUE(router.start(0));

    const std::vector<std::string> script = {
        "PUT fuzz/cpu 10 0.5", "PUT fuzz/cpu 20 0.5", "PUT fuzz/cpu 30 0.5",
        "VALUES fuzz/cpu 4",   "FORECAST fuzz/cpu",
    };
    const auto routed = run_text(router.port(), script);
    ASSERT_EQ(routed.size(), script.size());
    EXPECT_EQ(routed[0], "OK");
    EXPECT_EQ(routed[1], "OK");
    EXPECT_EQ(routed[2], "OK");
    // The real server applied each sample exactly once despite the replay.
    EXPECT_EQ(routed[3], real.handle_line("VALUES fuzz/cpu 4"));
    EXPECT_EQ(routed[4], real.handle_line("FORECAST fuzz/cpu"));
    const auto stats = parse_stats_response(real.handle_line("STATS"));
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->appended, 3u);

    EXPECT_GE(garbage.connections(), 1) << "garbage endpoint never dialed";
    EXPECT_GE(router.upstream_reconnects(), 1u);
    EXPECT_EQ(router.route_misses(), 0u);
    router.stop();
    real.stop();
  }
}

// ---------------------------------------------------------------------------
// Failover behind the router

TEST(RouterFailover, FollowsNotPrimaryRedirectInsideTheProxy) {
  obs::set_metrics_enabled(true);
  ServerConfig fcfg;
  fcfg.shards = 2;
  fcfg.repl_heartbeat_ms = 10;
  fcfg.role = ServerRole::kFollower;
  NwsServer follower(fcfg);
  const std::uint16_t fport = follower.start(0);
  ASSERT_NE(fport, 0);

  ServerConfig pcfg;
  pcfg.shards = 2;
  pcfg.repl_heartbeat_ms = 10;
  pcfg.repl_followers = std::to_string(fport);
  NwsServer primary(pcfg);
  const std::uint16_t pport = primary.start(0);
  ASSERT_NE(pport, 0);

  // The follower learns the primary's endpoint from the stream handshake —
  // that hint is what the router follows.
  ASSERT_TRUE(wait_for([&] {
    return follower.primary_hint() == "127.0.0.1:" + std::to_string(pport);
  }));

  // The group lists the FOLLOWER first, so it is both the ring identity and
  // the initial target: the first write must bounce with not_primary and
  // the router must chase the hint to the primary — invisibly.
  RouterConfig rcfg;
  rcfg.backends = std::to_string(fport) + "|" + std::to_string(pport);
  rcfg.pool_size = 2;
  rcfg.replay_limit = 8;
  rcfg.backoff = BackoffConfig{2.0, 20.0, 2.0, 0.0, 0.1};
  Router router(rcfg);
  ASSERT_TRUE(router.start(0));

  RawConn conn(router.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.send_bytes("PUT redir/cpu 10 0.5\nPUT redir/cpu 20 0.5\n"));
  EXPECT_EQ(conn.read_line().value_or(""), "OK");
  EXPECT_EQ(conn.read_line().value_or(""), "OK");
  EXPECT_GE(router.redirects(), 1u);
  EXPECT_GE(router.replays(), 1u);
  EXPECT_EQ(router.route_misses(), 0u);

  // Applied on the primary, exactly once.
  EXPECT_EQ(primary.handle_line("VALUES redir/cpu 4"),
            run_text(router.port(), {"VALUES redir/cpu 4"})[0]);
  const auto stats = parse_stats_response(primary.handle_line("STATS"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->appended, 2u);

  router.stop();
  primary.stop();
  follower.stop();
}

TEST(RouterFailover, KillPrimaryPromoteFollowerKeepsStreamExactlyOnce) {
  obs::set_metrics_enabled(true);
  ServerConfig fcfg;
  fcfg.shards = 2;
  fcfg.repl_heartbeat_ms = 10;
  fcfg.role = ServerRole::kFollower;
  NwsServer follower(fcfg);
  const std::uint16_t fport = follower.start(0);
  ASSERT_NE(fport, 0);

  ServerConfig pcfg;
  pcfg.shards = 2;
  pcfg.repl_heartbeat_ms = 10;
  pcfg.repl_followers = std::to_string(fport);
  NwsServer primary(pcfg);
  const std::uint16_t pport = primary.start(0);
  ASSERT_NE(pport, 0);

  RouterConfig rcfg;
  rcfg.backends = std::to_string(pport) + "|" + std::to_string(fport);
  rcfg.pool_size = 2;
  rcfg.replay_limit = 8;
  rcfg.backoff = BackoffConfig{2.0, 20.0, 2.0, 0.0, 0.1};
  Router router(rcfg);
  ASSERT_TRUE(router.start(0));

  // One client connection outlives the failover: a sequence-tagged stream
  // before the kill, the same stream (with a client-side replay overlap)
  // after PROMOTE.
  RawConn conn(router.port());
  ASSERT_TRUE(conn.ok());
  std::string burst1;
  for (int seq = 1; seq <= 20; ++seq) {
    burst1 += "PUTS kill/cpu " + std::to_string(seq) + " " +
              std::to_string(10 * seq) + " 0.5\n";
  }
  ASSERT_TRUE(conn.send_bytes(burst1));
  for (int seq = 1; seq <= 20; ++seq) {
    EXPECT_EQ(conn.read_line().value_or(""), "OK") << "seq " << seq;
  }
  ASSERT_TRUE(wait_for([&] {
    const auto stats = parse_stats_response(follower.handle_line("STATS"));
    return stats && stats->appended == 20u;
  })) << "follower never caught up";

  // Kill the primary; promote the follower (the failover an operator or
  // the follower's own timer performs).
  primary.stop();
  EXPECT_EQ(follower.handle_line("PROMOTE").rfind("OK", 0), 0u);

  // Same connection, overlapping seqs 15..20 (an outbox replay) plus fresh
  // 21..30: the promoted backend's dedup answers the overlap with the
  // server's own "OK dup" and applies the rest exactly once.
  std::string burst2;
  for (int seq = 15; seq <= 30; ++seq) {
    burst2 += "PUTS kill/cpu " + std::to_string(seq) + " " +
              std::to_string(10 * seq) + " 0.5\n";
  }
  ASSERT_TRUE(conn.send_bytes(burst2));
  for (int seq = 15; seq <= 30; ++seq) {
    EXPECT_EQ(conn.read_line().value_or(""), seq <= 20 ? "OK dup" : "OK")
        << "seq " << seq;
  }

  // Fleet state: exactly 30 distinct samples, 6 duplicates absorbed.
  const auto stats = parse_stats_response(follower.handle_line("STATS"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->appended, 30u);
  EXPECT_EQ(follower.duplicates_acked(), 6u);
  EXPECT_EQ(run_text(router.port(), {"VALUES kill/cpu 64"})[0],
            follower.handle_line("VALUES kill/cpu 64"));
  EXPECT_GE(router.upstream_reconnects(), 1u);
  EXPECT_EQ(router.route_misses(), 0u);

  router.stop();
  follower.stop();
}

// ---------------------------------------------------------------------------
// Admission control, configuration, concurrency

TEST(RouterConfigTest, BacklogZeroShedsEveryRoutedRequest) {
  RouterConfig rcfg;
  rcfg.upstream_backlog = 0;
  rcfg.busy_retry_ms = 7;
  Fleet fleet(1, rcfg);
  const auto out =
      run_text(fleet.router->port(), {"PUT shed/cpu 1 0.5", "SERIES", "PING"});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "ERR busy retry_after_ms=7");
  EXPECT_EQ(out[1], "ERR busy retry_after_ms=7");
  EXPECT_EQ(out[2], "OK");  // answered at the router, never queued
}

TEST(RouterConfigTest, EnvironmentProvidesBackendsAndStartFailsWithout) {
  ServerConfig cfg;
  cfg.shards = 1;
  NwsServer a(cfg);
  NwsServer b(cfg);
  const std::uint16_t pa = a.start(0);
  const std::uint16_t pb = b.start(0);
  ASSERT_NE(pa, 0);
  ASSERT_NE(pb, 0);

  ::setenv("NWSCPU_ROUTER_BACKENDS",
           (std::to_string(pa) + "," + std::to_string(pb)).c_str(), 1);
  {
    Router router;
    EXPECT_TRUE(router.start(0));
    EXPECT_EQ(router.backend_count(), 2u);
    EXPECT_EQ(run_text(router.port(), {"PING"})[0], "OK");
    router.stop();
  }
  ::unsetenv("NWSCPU_ROUTER_BACKENDS");
  {
    Router router;  // no config, no environment: nothing to route to
    EXPECT_FALSE(router.start(0));
  }
  a.stop();
  b.stop();
}

TEST(RouterConcurrent, ParallelClientsSeeOnlyTheirOwnResponses) {
  Fleet fleet(2);
  const std::uint16_t port = fleet.router->port();
  constexpr int kThreads = 4;
  constexpr int kRounds = 40;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      // Distinct series per worker: every response is attributable, so a
      // cross-client demux mixup would show up as a wrong byte.
      const std::string series = "conc" + std::to_string(w) + "/cpu";
      std::vector<std::string> script;
      for (int r = 1; r <= kRounds; ++r) {
        script.push_back("PUT " + series + " " + std::to_string(10 * r) +
                         " 0.5");
      }
      script.push_back("VALUES " + series + " 2");
      const auto out = run_text(port, script);
      if (out.size() != script.size()) {
        ++failures;
        return;
      }
      for (int r = 0; r < kRounds; ++r) {
        if (out[r] != "OK") ++failures;
      }
      const std::string tail = "OK 2 " + std::to_string(10 * (kRounds - 1)) +
                               " 0.5 " + std::to_string(10 * kRounds) +
                               " 0.5";
      if (out.back().rfind("OK 2 ", 0) != 0) ++failures;
      (void)tail;
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(fleet.router->requests_routed(),
            static_cast<std::uint64_t>(kThreads * kRounds));
}

}  // namespace
}  // namespace nws

// Unit tests for src/experiments: host configurations, the experiment
// runner's protocol mechanics, and the error-analysis functions (validated
// against hand-computed synthetic traces).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "experiments/analysis.hpp"
#include "experiments/hosts.hpp"
#include "experiments/runner.hpp"

namespace nws {
namespace {

// ---------------------------------------------------------------------------
// Host factory

TEST(Hosts, AllSixInPaperOrder) {
  const auto& hosts = all_ucsd_hosts();
  ASSERT_EQ(hosts.size(), 6u);
  EXPECT_EQ(host_name(hosts[0]), "thing2");
  EXPECT_EQ(host_name(hosts[2]), "conundrum");
  EXPECT_EQ(host_name(hosts[5]), "kongo");
}

class EveryHost : public ::testing::TestWithParam<UcsdHost> {};

TEST_P(EveryHost, ConstructsAndRuns) {
  auto host = make_ucsd_host(GetParam(), 1);
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(host->config().name, host_name(GetParam()));
  host->run_for(120.0);
  EXPECT_EQ(host->counters().total(), host->now_ticks());
}

TEST_P(EveryHost, DeterministicForSameSeed) {
  auto a = make_ucsd_host(GetParam(), 9);
  auto b = make_ucsd_host(GetParam(), 9);
  a->run_for(300.0);
  b->run_for(300.0);
  EXPECT_EQ(a->counters().user, b->counters().user);
  EXPECT_EQ(a->counters().sys, b->counters().sys);
  EXPECT_EQ(a->counters().idle, b->counters().idle);
}

INSTANTIATE_TEST_SUITE_P(Fleet, EveryHost,
                         ::testing::ValuesIn(all_ucsd_hosts()),
                         [](const auto& info) {
                           return host_name(info.param);
                         });

TEST(Hosts, ResidentLoadHostsLookBusy) {
  for (UcsdHost h : {UcsdHost::kConundrum, UcsdHost::kKongo}) {
    auto host = make_ucsd_host(h, 2);
    host->run_for(600.0);
    EXPECT_GT(host->load_average(), 0.8) << host_name(h);
  }
}

// ---------------------------------------------------------------------------
// Runner protocol mechanics

TEST(Runner, SeriesLengthsMatchProtocol) {
  auto host = make_ucsd_host(UcsdHost::kGremlin, 3);
  RunnerConfig cfg;
  cfg.duration = 1800.0;
  cfg.warmup = 60.0;
  const HostTrace trace = run_experiment(*host, cfg);
  // One epoch every 10 s from t0 through t0+duration inclusive.
  const std::size_t expected = 1800 / 10 + 1;
  EXPECT_EQ(trace.load_series.size(), expected);
  EXPECT_EQ(trace.vmstat_series.size(), expected);
  EXPECT_EQ(trace.hybrid_series.size(), expected);
  EXPECT_DOUBLE_EQ(trace.load_series.period(), 10.0);
  EXPECT_DOUBLE_EQ(trace.load_series.start(), 60.0);
}

TEST(Runner, TestCadenceAndDuration) {
  auto host = make_ucsd_host(UcsdHost::kGremlin, 4);
  RunnerConfig cfg;
  cfg.duration = 3600.0;
  cfg.warmup = 60.0;
  const HostTrace trace = run_experiment(*host, cfg);
  // One 10 s test every 5 minutes, first at +15 s: 12 per hour.
  EXPECT_EQ(trace.tests.size(), 12u);
  EXPECT_TRUE(trace.agg_tests.empty());
  for (std::size_t i = 0; i < trace.tests.size(); ++i) {
    EXPECT_NEAR(trace.tests[i].start,
                60.0 + 15.0 + 300.0 * static_cast<double>(i), 1e-9);
    EXPECT_GE(trace.tests[i].availability, 0.0);
    EXPECT_LE(trace.tests[i].availability, 1.0);
  }
}

TEST(Runner, AggregatedTestCadence) {
  auto host = make_ucsd_host(UcsdHost::kGremlin, 5);
  RunnerConfig cfg;
  cfg.duration = 2.0 * 3600.0;
  cfg.run_tests = false;
  cfg.run_agg_tests = true;
  const HostTrace trace = run_experiment(*host, cfg);
  EXPECT_TRUE(trace.tests.empty());
  // Hourly 5-minute tests at +3600 and +7200.
  ASSERT_EQ(trace.agg_tests.size(), 2u);
  EXPECT_NEAR(trace.agg_tests[0].start, cfg.warmup + 3600.0, 1e-9);
  EXPECT_NEAR(trace.agg_tests[1].start, cfg.warmup + 7200.0, 1e-9);
}

TEST(Runner, MeasurementsAreValidFractions) {
  auto host = make_ucsd_host(UcsdHost::kThing2, 6);
  RunnerConfig cfg;
  cfg.duration = 1800.0;
  const HostTrace trace = run_experiment(*host, cfg);
  for (const TimeSeries* s :
       {&trace.load_series, &trace.vmstat_series, &trace.hybrid_series}) {
    for (double v : s->values()) {
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 1.0);
    }
  }
}

TEST(Runner, NoTestsWhenDisabled) {
  auto host = make_ucsd_host(UcsdHost::kGremlin, 7);
  RunnerConfig cfg;
  cfg.duration = 1200.0;
  cfg.run_tests = false;
  const HostTrace trace = run_experiment(*host, cfg);
  EXPECT_TRUE(trace.tests.empty());
  EXPECT_TRUE(trace.agg_tests.empty());
}

TEST(Runner, DeterministicTraces) {
  RunnerConfig cfg;
  cfg.duration = 1200.0;
  auto a = make_ucsd_host(UcsdHost::kBeowulf, 8);
  auto b = make_ucsd_host(UcsdHost::kBeowulf, 8);
  const HostTrace ta = run_experiment(*a, cfg);
  const HostTrace tb = run_experiment(*b, cfg);
  ASSERT_EQ(ta.load_series.size(), tb.load_series.size());
  for (std::size_t i = 0; i < ta.load_series.size(); ++i) {
    ASSERT_DOUBLE_EQ(ta.load_series[i], tb.load_series[i]);
  }
  ASSERT_EQ(ta.tests.size(), tb.tests.size());
  for (std::size_t i = 0; i < ta.tests.size(); ++i) {
    ASSERT_DOUBLE_EQ(ta.tests[i].availability, tb.tests[i].availability);
  }
}

// ---------------------------------------------------------------------------
// Analysis functions on a hand-built synthetic trace

HostTrace synthetic_trace() {
  // 10-sample series at 10 s period starting at t = 0; one test at t = 35
  // (just after epoch index 3) observing availability 0.9.
  HostTrace trace{TimeSeries("load", 0.0, 10.0),
                  TimeSeries("vmstat", 0.0, 10.0),
                  TimeSeries("hybrid", 0.0, 10.0),
                  {{35.0, 0.9}},
                  {}};
  for (int i = 0; i < 10; ++i) {
    trace.load_series.push_back(0.5);
    trace.vmstat_series.push_back(0.8);
    trace.hybrid_series.push_back(1.0);
  }
  return trace;
}

TEST(Analysis, MeasurementErrorUsesReadingJustBeforeTest) {
  const HostTrace trace = synthetic_trace();
  const MethodTriple err = measurement_error(trace);
  EXPECT_NEAR(err.load_average, 0.4, 1e-12);  // |0.5 - 0.9|
  EXPECT_NEAR(err.vmstat, 0.1, 1e-12);        // |0.8 - 0.9|
  EXPECT_NEAR(err.hybrid, 0.1, 1e-12);        // |1.0 - 0.9|
}

TEST(Analysis, MeasurementErrorSkipsTestsBeforeFirstEpoch) {
  HostTrace trace = synthetic_trace();
  trace.tests.insert(trace.tests.begin(), {-5.0, 0.2});
  const MethodTriple err = measurement_error(trace);
  EXPECT_NEAR(err.load_average, 0.4, 1e-12);  // the early test is ignored
}

TEST(Analysis, TrueForecastErrorOnConstantSeriesEqualsMeasurementError) {
  // On a constant series every forecaster predicts the constant, so the
  // true forecasting error must equal the measurement error (the paper's
  // central observation, in its sharpest form).
  const HostTrace trace = synthetic_trace();
  const MethodTriple fc = true_forecast_error(trace);
  const MethodTriple me = measurement_error(trace);
  EXPECT_NEAR(fc.load_average, me.load_average, 1e-9);
  EXPECT_NEAR(fc.vmstat, me.vmstat, 1e-9);
  EXPECT_NEAR(fc.hybrid, me.hybrid, 1e-9);
}

TEST(Analysis, PredictionErrorZeroOnConstantSeries) {
  const HostTrace trace = synthetic_trace();
  const MethodTriple err = prediction_error(trace);
  EXPECT_NEAR(err.load_average, 0.0, 1e-9);
  EXPECT_NEAR(err.vmstat, 0.0, 1e-9);
  EXPECT_NEAR(err.hybrid, 0.0, 1e-9);
}

TEST(Analysis, VarianceOfConstantSeriesIsZero) {
  const HostTrace trace = synthetic_trace();
  const MethodTriple var = series_variance(trace);
  EXPECT_DOUBLE_EQ(var.load_average, 0.0);
  const MethodTriple agg = aggregated_variance(trace, 5);
  EXPECT_DOUBLE_EQ(agg.load_average, 0.0);
}

TEST(Analysis, AggregatedVarianceNeverExceedsForAlternatingSeries) {
  HostTrace trace{TimeSeries("load", 0.0, 10.0), TimeSeries("v", 0.0, 10.0),
                  TimeSeries("h", 0.0, 10.0), {}, {}};
  for (int i = 0; i < 120; ++i) {
    const double v = i % 2 == 0 ? 0.2 : 0.8;
    trace.load_series.push_back(v);
    trace.vmstat_series.push_back(v);
    trace.hybrid_series.push_back(v);
  }
  const MethodTriple orig = series_variance(trace);
  const MethodTriple agg = aggregated_variance(trace, 30);
  EXPECT_LT(agg.load_average, orig.load_average);
  EXPECT_NEAR(agg.load_average, 0.0, 1e-12);  // block means identical
}

TEST(Analysis, AggregatedTrueErrorAlignsBlocks) {
  // Series: block 0 (epochs 0..2) = 0.3, block 1 = 0.9.  An agg test at
  // t = 30 (start of block 1) observing 0.6 must be compared with the
  // forecast for block 1, which (with persistence-dominated forecasting on
  // two points) is 0.3 -> error 0.3.
  HostTrace trace{TimeSeries("load", 0.0, 10.0), TimeSeries("v", 0.0, 10.0),
                  TimeSeries("h", 0.0, 10.0), {}, {{30.0, 0.6}}};
  for (int i = 0; i < 3; ++i) {
    trace.load_series.push_back(0.3);
    trace.vmstat_series.push_back(0.3);
    trace.hybrid_series.push_back(0.3);
  }
  for (int i = 0; i < 3; ++i) {
    trace.load_series.push_back(0.9);
    trace.vmstat_series.push_back(0.9);
    trace.hybrid_series.push_back(0.9);
  }
  const MethodTriple err = aggregated_true_error(trace, 3);
  EXPECT_NEAR(err.load_average, 0.3, 1e-9);
}

TEST(Analysis, NwsPredictionMaeMatchesPredictionError) {
  const HostTrace trace = synthetic_trace();
  EXPECT_NEAR(nws_prediction_mae(trace.load_series.values()),
              prediction_error(trace).load_average, 1e-12);
}

}  // namespace
}  // namespace nws

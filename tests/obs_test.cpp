// Unit tests for the observability layer (src/obs/): the lock-light
// metrics registry, the log2 histogram and its per-slot sharding, the
// Prometheus exposition, the span-tracing rings, and the leveled logger.
//
// The ObsConcurrent suite is the contract the wait-free claim rests on:
// 8 threads hammering one Counter and one Histogram must produce *exact*
// totals (relaxed fetch_adds lose nothing), and a snapshot racing the
// writers must be safe.  CI runs this suite under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nws::obs {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Every metrics test runs with the global switch on and leaves it on.
class ObsMetrics : public ::testing::Test {
 protected:
  void SetUp() override { set_metrics_enabled(true); }
  void TearDown() override { set_metrics_enabled(true); }
};

TEST_F(ObsMetrics, HistogramBucketBoundariesFollowBitWidth) {
  // Bucket 0 is exactly zero; bucket b holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  // Values past the top bucket clamp instead of indexing out of range.
  EXPECT_EQ(Histogram::bucket_index(std::uint64_t{1} << 60),
            Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kBuckets - 1);

  EXPECT_EQ(Histogram::bucket_upper(0), 1u);
  EXPECT_EQ(Histogram::bucket_upper(10), 1024u);
  EXPECT_EQ(Histogram::bucket_upper(63), ~std::uint64_t{0});

  // Containment: every unclamped value lands strictly inside its bucket.
  for (const std::uint64_t v :
       {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3}, std::uint64_t{5},
        std::uint64_t{100}, std::uint64_t{4096}, std::uint64_t{1} << 33}) {
    const std::size_t b = Histogram::bucket_index(v);
    EXPECT_LT(v, Histogram::bucket_upper(b)) << "v=" << v;
    EXPECT_GE(v, Histogram::bucket_upper(b - 1)) << "v=" << v;
  }
}

TEST_F(ObsMetrics, HistogramSnapshotMergesEverySlot) {
  Histogram h(1.0);
  for (std::size_t slot = 0; slot < Histogram::kSlots; ++slot) {
    h.record_in_slot(3, slot);
  }
  // Slot indices fold modulo kSlots, so an out-of-range writer is safe.
  h.record_in_slot(3, Histogram::kSlots + 2);

  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, Histogram::kSlots + 1);
  EXPECT_EQ(snap.sum, 3 * (Histogram::kSlots + 1));
  EXPECT_EQ(snap.buckets[Histogram::bucket_index(3)], Histogram::kSlots + 1);
  EXPECT_DOUBLE_EQ(snap.mean(), 3.0);

  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().sum, 0u);
}

TEST_F(ObsMetrics, HistogramQuantilesInterpolateAndScale) {
  Histogram h(1.0);
  for (int i = 0; i < 100; ++i) h.record(1000);  // bucket 10: [512, 1024)
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_GE(snap.quantile(0.5), 512.0);
  EXPECT_LE(snap.quantile(0.5), 1024.0);
  EXPECT_LE(snap.quantile(0.1), snap.quantile(0.9));

  // Latency histograms report seconds: scale applies to quantiles + mean.
  Histogram lat(1e-9);
  lat.record(2'000'000'000);  // 2s in ns
  const HistogramSnapshot ls = lat.snapshot();
  EXPECT_DOUBLE_EQ(ls.mean(), 2.0);
  EXPECT_GE(ls.quantile(0.5), 1.0);
  EXPECT_LE(ls.quantile(0.5), 5.0);

  // All-zero samples sit in bucket 0 and every quantile is exactly 0.
  Histogram zeros(1.0);
  zeros.record(0);
  zeros.record(0);
  EXPECT_DOUBLE_EQ(zeros.snapshot().quantile(0.99), 0.0);

  // Empty histogram: quantiles are defined (0), not UB.
  EXPECT_DOUBLE_EQ(Histogram(1.0).snapshot().quantile(0.5), 0.0);
}

TEST_F(ObsMetrics, DisabledSwitchTurnsEveryWriteIntoANoOp) {
  Counter c;
  Gauge g;
  Histogram h(1.0);
  set_metrics_enabled(false);
  c.inc();
  c.inc(41);
  g.set(5.0);
  g.add(1.5);
  h.record(7);
  { const ScopedTimer timer(h); }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count, 0u);

  set_metrics_enabled(true);
  c.inc(2);
  g.set(1.0);
  g.add(0.5);
  h.record(7);
  EXPECT_EQ(c.value(), 2u);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST_F(ObsMetrics, RegistryFindsOrCreatesAndResetKeepsPointersValid) {
  Registry& r = registry();
  Counter& c1 = r.counter("test_obs_registry_total", "registration test");
  Counter& c2 = r.counter("test_obs_registry_total");
  EXPECT_EQ(&c1, &c2);  // one entry per name, help from first registration

  Gauge& g1 = r.gauge("test_obs_registry_gauge");
  Histogram& h1 = r.histogram("test_obs_registry_seconds", "", 1e-9);
  EXPECT_EQ(&g1, &r.gauge("test_obs_registry_gauge"));
  EXPECT_EQ(&h1, &r.histogram("test_obs_registry_seconds"));

  c1.inc(5);
  g1.set(2.0);
  h1.record(100);
  r.reset();
  EXPECT_EQ(c1.value(), 0u);
  EXPECT_DOUBLE_EQ(g1.value(), 0.0);
  EXPECT_EQ(h1.snapshot().count, 0u);
  // Registration survives reset: cached pointers still reach the entry.
  c2.inc(3);
  EXPECT_EQ(c1.value(), 3u);
}

TEST_F(ObsMetrics, PrometheusExpositionGroupsLabelVariantsUnderOneHeader) {
  Registry& r = registry();
  r.counter("test_obs_verbs_total{verb=\"GET\"}", "per-verb requests").inc(2);
  r.counter("test_obs_verbs_total{verb=\"PUT\"}").inc(3);
  r.gauge("test_obs_depth", "queue depth").set(4.0);
  Histogram& h = r.histogram("test_obs_lat_seconds", "request latency", 1e-9);
  h.record(1500);

  std::string out;
  r.render_prometheus(out);
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');

  // Two label variants, exactly one HELP/TYPE header for the base name.
  EXPECT_EQ(count_occurrences(out, "# TYPE test_obs_verbs_total counter"), 1u);
  EXPECT_EQ(count_occurrences(out, "# HELP test_obs_verbs_total per-verb requests"),
            1u);
  EXPECT_NE(out.find("test_obs_verbs_total{verb=\"GET\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("test_obs_verbs_total{verb=\"PUT\"} 3\n"),
            std::string::npos);

  EXPECT_NE(out.find("# TYPE test_obs_depth gauge"), std::string::npos);
  EXPECT_NE(out.find("test_obs_depth 4\n"), std::string::npos);

  // Histogram series: cumulative _bucket with an le label, then _sum/_count.
  EXPECT_NE(out.find("# TYPE test_obs_lat_seconds histogram"),
            std::string::npos);
  EXPECT_NE(out.find("test_obs_lat_seconds_bucket{le=\""), std::string::npos);
  EXPECT_NE(out.find("test_obs_lat_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("test_obs_lat_seconds_sum "), std::string::npos);
  EXPECT_NE(out.find("test_obs_lat_seconds_count 1\n"), std::string::npos);
}

TEST_F(ObsMetrics, SnapshotTableElidesZeroCounters) {
  Registry& r = registry();
  r.reset();
  r.counter("test_obs_table_nonzero_total").inc(7);
  (void)r.counter("test_obs_table_zero_total");
  const std::string table = r.snapshot().to_table();
  EXPECT_NE(table.find("test_obs_table_nonzero_total"), std::string::npos);
  EXPECT_EQ(table.find("test_obs_table_zero_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency contract (runs under TSan in CI)

TEST(ObsConcurrent, EightThreadsProduceExactTotals) {
  set_metrics_enabled(true);
  Counter counter;
  Histogram hist(1.0);
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.inc();
        hist.record_in_slot(i % 1024 + 1, t);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  std::uint64_t per_thread_sum = 0;
  for (std::uint64_t i = 0; i < kPerThread; ++i) per_thread_sum += i % 1024 + 1;

  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.sum, kThreads * per_thread_sum);
  std::uint64_t bucketed = 0;
  for (const std::uint64_t b : snap.buckets) bucketed += b;
  EXPECT_EQ(bucketed, snap.count);
}

TEST(ObsConcurrent, SnapshotAndRenderRaceSafelyWithWriters) {
  set_metrics_enabled(true);
  Registry& r = registry();
  Counter& c = r.counter("test_obs_race_total");
  Histogram& h = r.histogram("test_obs_race_seconds", "", 1e-9);
  const std::uint64_t c0 = c.value();
  const std::uint64_t h0 = h.snapshot().count;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)h.snapshot();
      std::string out;
      r.render_prometheus(out);
    }
  });

  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c, &h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record_in_slot(i + 1, t);
      }
    });
  }
  for (std::thread& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(c.value() - c0, kThreads * kPerThread);
  EXPECT_EQ(h.snapshot().count - h0, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Span tracing

TEST(ObsTrace, DisabledByDefaultAndCostsNoRecords) {
  ASSERT_EQ(trace_ring_capacity(), 0u) << "tracing must default to off";
  const std::uint64_t before = spans_recorded();
  { const TraceSpan span("obs_test.disabled"); }
  EXPECT_EQ(spans_recorded(), before);
}

TEST(ObsTrace, RingKeepsTheNewestSpansAndDumpsSorted) {
  set_trace_ring_capacity(4);
  clear_spans();
  // Rings capture their capacity at creation, so record from a thread
  // whose ring does not exist yet.
  std::thread([] {
    for (int i = 0; i < 10; ++i) {
      const TraceSpan span("obs_test.ring");
    }
  }).join();

  const std::vector<SpanRecord> spans = dump_spans();
  ASSERT_EQ(spans.size(), 4u) << "ring must overwrite, not grow";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_STREQ(spans[i].name, "obs_test.ring");
    if (i > 0) {
      EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
    }
  }
  EXPECT_GE(spans_recorded(), 10u);

  std::string text;
  dump_spans_text(text);
  EXPECT_NE(text.find("obs_test.ring"), std::string::npos);

  clear_spans();
  EXPECT_TRUE(dump_spans().empty());
  set_trace_ring_capacity(0);  // restore the default for later tests
}

// ---------------------------------------------------------------------------
// Leveled logger

TEST(ObsLog, LevelsGateStrictlyAndLoggingNeverThrows) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kError);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  set_log_level(LogLevel::kInfo);
  EXPECT_TRUE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));

  log_info("obs_test", "logger smoke line %d of %s", 1, "obs_test");
  set_log_level(LogLevel::kOff);
  // Disabled levels must not evaluate the sink at all (and never crash).
  log_debug("obs_test", "this line must not appear");
  set_log_level(original);
}

}  // namespace
}  // namespace nws::obs

// Tests for the extension modules: MixtureForecaster, multi-step horizon
// evaluation, the log-periodogram (GPH) Hurst estimator, and the extra
// workload drivers (PeriodicDaemon, TraceReplay).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <memory>

#include "forecast/adaptive.hpp"
#include "forecast/ar.hpp"
#include "forecast/battery.hpp"
#include "forecast/evaluate.hpp"
#include "forecast/methods.hpp"
#include "forecast/mixture.hpp"
#include "forecast/multistep.hpp"
#include "sim/extra_workloads.hpp"
#include "tsa/autocorrelation.hpp"
#include "tsa/fgn.hpp"
#include "tsa/periodogram.hpp"
#include "util/distributions.hpp"
#include "util/stats.hpp"

namespace nws {
namespace {

// ---------------------------------------------------------------------------
// MixtureForecaster

std::vector<ForecasterPtr> small_battery() {
  std::vector<ForecasterPtr> methods;
  methods.push_back(std::make_unique<LastValueForecaster>());
  methods.push_back(std::make_unique<RunningMeanForecaster>());
  methods.push_back(std::make_unique<ExpSmoothForecaster>(0.3));
  return methods;
}

TEST(Mixture, ThrowsOnEmptyBattery) {
  EXPECT_THROW(MixtureForecaster(std::vector<ForecasterPtr>{}),
               std::invalid_argument);
}

TEST(Mixture, UniformWeightsBeforeErrors) {
  MixtureForecaster f(small_battery());
  EXPECT_EQ(f.num_methods(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(f.weight(i), 1.0 / 3.0, 1e-12);
  }
}

TEST(Mixture, WeightsSumToOneAlways) {
  MixtureForecaster f(small_battery());
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    f.observe(rng.uniform());
    double total = 0.0;
    for (std::size_t j = 0; j < f.num_methods(); ++j) total += f.weight(j);
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Mixture, ConcentratesOnTheAccurateMethod) {
  // Slow random walk: persistence (index 0) is clearly best.
  MixtureForecaster f(small_battery(), 30, /*sharpness=*/2.0);
  Rng rng(2);
  double level = 0.5;
  for (int i = 0; i < 500; ++i) {
    level = std::clamp(level + sample_normal(rng, 0.0, 0.02), 0.0, 1.0);
    f.observe(level);
  }
  EXPECT_GT(f.weight(0), f.weight(1));
  EXPECT_GT(f.weight(0), 0.4);
}

TEST(Mixture, LearnsConstantExactly) {
  MixtureForecaster f(small_battery());
  for (int i = 0; i < 100; ++i) f.observe(0.37);
  EXPECT_NEAR(f.forecast(), 0.37, 1e-9);
}

TEST(Mixture, ForecastIsConvexCombination) {
  MixtureForecaster f(small_battery());
  Rng rng(3);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform();
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    f.observe(x);
    ASSERT_GE(f.forecast(), lo - 1e-9);
    ASSERT_LE(f.forecast(), hi + 1e-9);
  }
}

TEST(Mixture, CloneAndResetProtocol) {
  MixtureForecaster f(small_battery());
  for (double x : {0.2, 0.4, 0.6}) f.observe(x);
  const auto copy = f.clone();
  EXPECT_DOUBLE_EQ(copy->forecast(), f.forecast());
  copy->observe(0.99);
  EXPECT_NE(copy->forecast(), f.forecast());
  f.reset();
  EXPECT_DOUBLE_EQ(f.forecast(), Forecaster::kInitialGuess);
}

TEST(Mixture, CompetitiveWithAdaptiveSelection) {
  // On a regime-switching series the blend should be within a modest
  // factor of pure selection (both built over the canonical battery).
  Rng rng(4);
  std::vector<double> xs;
  double level = 0.3;
  for (int i = 0; i < 3000; ++i) {
    if (rng.chance(0.004)) level = rng.uniform(0.1, 0.9);
    xs.push_back(std::clamp(level + sample_normal(rng, 0.0, 0.03), 0.0, 1.0));
  }
  const MixtureForecaster mixture(make_nws_methods());
  const auto adaptive = make_nws_forecaster();
  const double mix_mae = evaluate_forecaster(mixture, xs).mae;
  const double sel_mae = evaluate_forecaster(*adaptive, xs).mae;
  EXPECT_LT(mix_mae, sel_mae * 1.5);
  EXPECT_GT(mix_mae, 0.0);
}

// ---------------------------------------------------------------------------
// ArForecaster

TEST(Ar, RecoversAr1Coefficient) {
  ArForecaster f(/*order=*/1, /*window=*/512, /*refit_interval=*/1);
  Rng rng(40);
  const auto xs = generate_ar1(rng, 0.8, 2000);
  for (double x : xs) f.observe(x);
  ASSERT_EQ(f.coefficients().size(), 1u);
  EXPECT_NEAR(f.coefficients()[0], 0.8, 0.08);
}

TEST(Ar, FallsBackToMeanOnConstantWindow) {
  ArForecaster f(4, 64);
  for (int i = 0; i < 200; ++i) f.observe(0.6);
  EXPECT_NEAR(f.forecast(), 0.6, 1e-9);
}

TEST(Ar, InitialGuessBeforeData) {
  const ArForecaster f(8);
  EXPECT_DOUBLE_EQ(f.forecast(), Forecaster::kInitialGuess);
}

TEST(Ar, ForecastClampedToObservedRange) {
  ArForecaster f(2, 64, 1);
  Rng rng(41);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.3, 0.7);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    f.observe(x);
    ASSERT_GE(f.forecast(), lo - 1e-9);
    ASSERT_LE(f.forecast(), hi + 1e-9);
  }
}

TEST(Ar, BeatsPersistenceOnOscillatingAr2) {
  // x_t = -0.75 x_{t-2} + e: strong negative lag-2 structure persistence
  // cannot see.
  Rng rng(42);
  std::vector<double> xs(2, 0.0);
  for (int i = 2; i < 4000; ++i) {
    xs.push_back(-0.75 * xs[static_cast<std::size_t>(i) - 2] +
                 sample_normal(rng, 0.0, 0.2));
  }
  const ArForecaster ar(4, 256, 5);
  const LastValueForecaster last;
  EXPECT_LT(evaluate_forecaster(ar, xs).mae,
            0.8 * evaluate_forecaster(last, xs).mae);
}

TEST(Ar, CloneAndResetProtocol) {
  ArForecaster f(4);
  Rng rng(43);
  for (int i = 0; i < 200; ++i) f.observe(rng.uniform());
  const auto copy = f.clone();
  EXPECT_DOUBLE_EQ(copy->forecast(), f.forecast());
  EXPECT_EQ(copy->name(), "ar(4)");
  f.reset();
  EXPECT_DOUBLE_EQ(f.forecast(), Forecaster::kInitialGuess);
  EXPECT_TRUE(f.coefficients().empty());
}

TEST(Ar, IntegratesIntoAdaptiveBattery) {
  auto methods = make_nws_methods();
  methods.push_back(std::make_unique<ArForecaster>(8));
  AdaptiveForecaster adaptive(std::move(methods));
  Rng rng(44);
  for (int i = 0; i < 500; ++i) {
    adaptive.observe(std::clamp(0.5 + sample_normal(rng, 0.0, 0.05), 0.0,
                                1.0));
  }
  // Just verify the extended battery operates and reports sane errors.
  EXPECT_GE(adaptive.forecast(), 0.0);
  EXPECT_LE(adaptive.forecast(), 1.0);
}

// ---------------------------------------------------------------------------
// Multi-step horizon evaluation

TEST(Multistep, HorizonOneMatchesOneStepEvaluation) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(rng.uniform());
  const LastValueForecaster f;
  const HorizonError h1 = evaluate_horizon(f, xs, 1);
  const ForecastEvaluation ev = evaluate_forecaster(f, xs);
  EXPECT_NEAR(h1.mae, ev.mae, 1e-12);
  EXPECT_EQ(h1.count, ev.errors.size());
}

TEST(Multistep, PerfectOnConstantSeriesAtAllHorizons) {
  const std::vector<double> xs(200, 0.5);
  const LastValueForecaster f;
  for (std::size_t k : {1u, 5u, 30u}) {
    const HorizonError h = evaluate_horizon(f, xs, k);
    EXPECT_NEAR(h.mae, 0.0, 1e-12) << k;
    EXPECT_GT(h.count, 0u);
  }
}

TEST(Multistep, ErrorGrowsWithHorizonOnRandomWalk) {
  Rng rng(6);
  std::vector<double> xs;
  double level = 0.5;
  for (int i = 0; i < 4000; ++i) {
    level = std::clamp(level + sample_normal(rng, 0.0, 0.01), 0.0, 1.0);
    xs.push_back(level);
  }
  const LastValueForecaster f;
  const std::vector<std::size_t> horizons = {1, 10, 60};
  const auto errors = evaluate_horizons(f, xs, horizons);
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_LT(errors[0].mae, errors[1].mae);
  EXPECT_LT(errors[1].mae, errors[2].mae);
}

TEST(Multistep, DegenerateInputs) {
  const LastValueForecaster f;
  const std::vector<double> xs = {0.5, 0.6};
  EXPECT_EQ(evaluate_horizon(f, xs, 0).count, 0u);
  EXPECT_EQ(evaluate_horizon(f, xs, 5).count, 0u);
  EXPECT_EQ(evaluate_horizon(f, {}, 1).count, 0u);
}

TEST(Multistep, TargetIsWindowMean) {
  // Hand check: xs = {0, 1, 1}; horizon 2.  After seeing x0=0, forecast
  // (last = 0) vs mean(x1,x2) = 1 -> error 1.  Only one evaluation.
  const std::vector<double> xs = {0.0, 1.0, 1.0};
  const LastValueForecaster f;
  const HorizonError h = evaluate_horizon(f, xs, 2);
  EXPECT_EQ(h.count, 1u);
  EXPECT_NEAR(h.mae, 1.0, 1e-12);
  EXPECT_NEAR(h.rmse, 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Periodogram / GPH estimator

TEST(Periodogram, ParsevalEnergyCheck) {
  // Sum of periodogram ordinates over all Fourier frequencies ~ variance
  // (up to the 2 pi normalisation); check a looser proportionality.
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 512; ++i) xs.push_back(sample_normal(rng));
  const auto ordinates = periodogram(xs, 256);
  ASSERT_EQ(ordinates.size(), 256u);
  double total = 0.0;
  for (double p : ordinates) total += p;
  // Parseval over the positive-frequency half (j = 1..n/2) of a
  // mean-centred series: sum I(l_j) * 4 pi / n ~ variance.
  EXPECT_NEAR(total * 4.0 * std::numbers::pi / 512.0, variance(xs), 0.15);
}

TEST(Periodogram, DetectsPureTone) {
  // x_t = cos(2 pi 16 t / n): all energy in bin j = 16.
  const std::size_t n = 256;
  std::vector<double> xs;
  for (std::size_t t = 0; t < n; ++t) {
    xs.push_back(std::cos(2.0 * std::numbers::pi * 16.0 *
                          static_cast<double>(t) / static_cast<double>(n)));
  }
  const auto ordinates = periodogram(xs, 32);
  ASSERT_GE(ordinates.size(), 17u);
  std::size_t peak = 0;
  for (std::size_t j = 1; j < ordinates.size(); ++j) {
    if (ordinates[j] > ordinates[peak]) peak = j;
  }
  EXPECT_EQ(peak + 1, 16u);  // ordinate index j-1 holds frequency j
}

TEST(Periodogram, WhiteNoiseGphNearHalf) {
  Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 16384; ++i) xs.push_back(sample_normal(rng));
  const HurstEstimate est = estimate_hurst_periodogram(xs);
  EXPECT_NEAR(est.hurst, 0.5, 0.15);
}

class GphRecovery : public ::testing::TestWithParam<double> {};

TEST_P(GphRecovery, RecoversFgnTarget) {
  const double h = GetParam();
  Rng rng(static_cast<std::uint64_t>(h * 10007));
  const auto xs = generate_fgn(rng, h, 8192);
  const HurstEstimate est = estimate_hurst_periodogram(xs);
  // GPH has notoriously wide small-sample variance; accept a band.
  EXPECT_NEAR(est.hurst, h, 0.2) << "target " << h;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GphRecovery,
                         ::testing::Values(0.6, 0.7, 0.8),
                         [](const auto& param_info) {
                           return "H" + std::to_string(static_cast<int>(
                                            param_info.param * 100));
                         });

TEST(Periodogram, DegenerateInputs) {
  EXPECT_TRUE(periodogram({}, 8).empty());
  const std::vector<double> flat(64, 1.0);
  // Constant series: all ordinates ~0; estimator returns a zero fit.
  const HurstEstimate est = estimate_hurst_periodogram(flat);
  EXPECT_EQ(est.num_points, 0u);
  const std::vector<double> tiny = {1.0, 2.0};
  EXPECT_EQ(estimate_hurst_periodogram(tiny).num_scales, 0u);
}

// ---------------------------------------------------------------------------
// PeriodicDaemon

TEST(PeriodicDaemonW, ConsumesConfiguredDuty) {
  sim::Host host({.name = "h"}, 1);
  sim::PeriodicDaemonConfig cfg;
  cfg.period = 60.0;
  cfg.burst = 3.0;  // 5% duty
  cfg.syscall_fraction = 0.0;
  host.add_workload(std::make_unique<sim::PeriodicDaemon>(cfg));
  host.run_for(3600.0);
  const double duty =
      static_cast<double>(host.counters().user) /
      static_cast<double>(host.counters().total());
  EXPECT_NEAR(duty, 0.05, 0.005);
}

TEST(PeriodicDaemonW, PhaseDelaysFirstBurst) {
  sim::Host host({.name = "h"}, 1);
  sim::PeriodicDaemonConfig cfg;
  cfg.period = 100.0;
  cfg.burst = 10.0;
  cfg.phase = 50.0;
  host.add_workload(std::make_unique<sim::PeriodicDaemon>(cfg));
  host.run_for(49.0);
  EXPECT_EQ(host.counters().user, 0);
  host.run_for(12.0);
  EXPECT_GT(host.counters().user, 0);
}

TEST(PeriodicDaemonW, CreatesPeriodicAvailabilitySignal) {
  // The daemon's period must show up as an autocorrelation peak at the
  // matching lag of the availability series — the reason departmental
  // hosts show weak periodicities.
  sim::Host host({.name = "h"}, 1);
  sim::PeriodicDaemonConfig cfg;
  cfg.period = 100.0;
  cfg.burst = 30.0;
  host.add_workload(std::make_unique<sim::PeriodicDaemon>(cfg));
  std::vector<double> series;
  for (int i = 0; i < 600; ++i) {
    host.run_for(10.0);
    series.push_back(1.0 /
                     (host.load_average() + 1.0));
  }
  const double at_period = autocorrelation(series, 10);   // lag 100 s
  const double off_period = autocorrelation(series, 5);   // lag 50 s
  EXPECT_GT(at_period, off_period);
}

// ---------------------------------------------------------------------------
// TraceReplay

TEST(TraceReplayW, ReproducesTargetAvailability) {
  // Replay a three-level trace and verify a test process obtains roughly
  // the trace value during each level.
  for (const double target : {1.0, 0.5, 0.25}) {
    sim::Host host({.name = "replay"}, 3);
    TimeSeries trace("t", 0.0, 3600.0, std::vector<double>{target});
    host.add_workload(
        std::make_unique<sim::TraceReplay>(trace, Rng(4)));
    host.run_for(120.0);
    const double observed = host.run_timed_process("test", 30.0);
    // Priority decay gives a fresh process a little more than its fair
    // share at the start; accept a one-sided band.
    EXPECT_GE(observed, target - 0.06) << target;
    EXPECT_LE(observed, std::min(1.0, target + 0.2)) << target;
  }
}

TEST(TraceReplayW, FractionalCompetitorsViaDutyCycle) {
  // Availability 0.75 needs 1/3 of a competitor: load average must settle
  // near 0.33, not 0 or 1.
  sim::Host host({.name = "replay"}, 5);
  TimeSeries trace("t", 0.0, 3600.0, std::vector<double>{0.75});
  host.add_workload(std::make_unique<sim::TraceReplay>(trace, Rng(6)));
  host.run_for(600.0);
  EXPECT_NEAR(host.load_average(), 1.0 / 3.0, 0.08);
}

TEST(TraceReplayW, LoopsAndFollowsLevels) {
  sim::Host host({.name = "replay"}, 7);
  TimeSeries trace("t", 0.0, 60.0, std::vector<double>{1.0, 0.5});
  host.add_workload(std::make_unique<sim::TraceReplay>(trace, Rng(8)));
  // First sample: idle.
  host.run_for(55.0);
  EXPECT_EQ(host.runnable_count(), 0u);
  // Second sample: one competitor.
  host.run_for(60.0);
  EXPECT_EQ(host.runnable_count(), 1u);
  // Loops back to idle.
  host.run_for(60.0);
  EXPECT_EQ(host.runnable_count(), 0u);
}

}  // namespace
}  // namespace nws

// Tests for the fault-injection harness (util/fault.hpp), the
// deterministic retry/backoff policy (util/backoff.hpp), and the
// fault-aware persistence journal.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "nws/forecast_service.hpp"
#include "nws/persistence.hpp"
#include "util/backoff.hpp"
#include "util/fault.hpp"

namespace nws {
namespace {

namespace fs = std::filesystem;

/// Installs an injector for the lifetime of a scope; never leaks the
/// global hook into other tests.
class ScopedInjector {
 public:
  ScopedInjector(std::uint64_t seed, FaultProfile profile)
      : injector_(seed, profile) {
    install_fault_injector(&injector_);
  }
  ~ScopedInjector() { install_fault_injector(nullptr); }
  FaultInjector& get() noexcept { return injector_; }

 private:
  FaultInjector injector_;
};

// ---------------------------------------------------------------------------
// FaultInjector

std::vector<FaultAction::Kind> draw_schedule(FaultInjector& injector,
                                             FaultSite site, int n) {
  std::vector<FaultAction::Kind> kinds;
  kinds.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) kinds.push_back(injector.decide(site).kind);
  return kinds;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultProfile profile;
  profile.reset_prob = 0.2;
  profile.delay_prob = 0.1;
  profile.truncate_prob = 0.1;
  profile.garbage_prob = 0.1;
  profile.disk_fail_prob = 0.3;
  FaultInjector a(42, profile);
  FaultInjector b(42, profile);
  for (const FaultSite site :
       {FaultSite::kServerRead, FaultSite::kServerRespond,
        FaultSite::kDiskWrite}) {
    EXPECT_EQ(draw_schedule(a, site, 500), draw_schedule(b, site, 500));
  }
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  FaultProfile profile;
  profile.reset_prob = 0.2;
  FaultInjector a(1, profile);
  FaultInjector b(2, profile);
  EXPECT_NE(draw_schedule(a, FaultSite::kServerRead, 500),
            draw_schedule(b, FaultSite::kServerRead, 500));
}

TEST(FaultInjector, SiteStreamsAreIndependent) {
  // Draining one site's stream must not perturb another's schedule.
  FaultProfile profile;
  profile.reset_prob = 0.3;
  profile.disk_fail_prob = 0.3;
  FaultInjector a(7, profile);
  FaultInjector b(7, profile);
  (void)draw_schedule(a, FaultSite::kDiskWrite, 1000);  // extra traffic
  EXPECT_EQ(draw_schedule(a, FaultSite::kServerRead, 300),
            draw_schedule(b, FaultSite::kServerRead, 300));
}

TEST(FaultInjector, RatesRoughlyMatchProfile) {
  FaultProfile profile;
  profile.delay_prob = 0.25;
  profile.truncate_prob = 0.1;
  profile.garbage_prob = 0.05;
  FaultInjector injector(3, profile);
  (void)draw_schedule(injector, FaultSite::kServerRespond, 10000);
  const double rate =
      static_cast<double>(injector.faults(FaultSite::kServerRespond)) /
      static_cast<double>(injector.calls(FaultSite::kServerRespond));
  EXPECT_NEAR(rate, 0.4, 0.03);
}

TEST(FaultInjector, DelayCarriesConfiguredMs) {
  FaultProfile profile;
  profile.delay_prob = 1.0;
  profile.delay_ms = 123;
  FaultInjector injector(1, profile);
  const FaultAction action = injector.decide(FaultSite::kServerRespond);
  EXPECT_EQ(action.kind, FaultAction::Kind::kDelay);
  EXPECT_EQ(action.delay_ms, 123);
}

TEST(FaultInjector, HookDisabledReturnsNone) {
  install_fault_injector(nullptr);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fault_check(FaultSite::kServerRead).kind,
              FaultAction::Kind::kNone);
  }
}

TEST(FaultInjector, HookRoutesToInstalledInjector) {
  FaultProfile profile;
  profile.disk_fail_prob = 1.0;
  ScopedInjector scoped(9, profile);
  EXPECT_EQ(fault_check(FaultSite::kDiskWrite).kind,
            FaultAction::Kind::kFail);
  EXPECT_EQ(scoped.get().calls(FaultSite::kDiskWrite), 1u);
  EXPECT_EQ(scoped.get().total_faults(), 1u);
}

// ---------------------------------------------------------------------------
// ExponentialBackoff

TEST(Backoff, DeterministicGivenSeed) {
  BackoffConfig cfg;
  ExponentialBackoff a(cfg, 5);
  ExponentialBackoff b(cfg, 5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.next_delay_ms(), b.next_delay_ms());
  }
}

TEST(Backoff, GrowsGeometricallyWithoutJitter) {
  BackoffConfig cfg;
  cfg.base_ms = 10.0;
  cfg.cap_ms = 100.0;
  cfg.multiplier = 2.0;
  cfg.jitter = 0.0;
  ExponentialBackoff backoff(cfg, 0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 10.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 20.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 40.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 80.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 100.0);  // capped
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 100.0);
}

TEST(Backoff, JitterStaysWithinBand) {
  BackoffConfig cfg;
  cfg.base_ms = 100.0;
  cfg.cap_ms = 100.0;
  cfg.jitter = 0.5;
  ExponentialBackoff backoff(cfg, 11);
  for (int i = 0; i < 200; ++i) {
    const double d = backoff.next_delay_ms();
    EXPECT_GT(d, 50.0 - 1e-9);
    EXPECT_LE(d, 100.0);
  }
}

TEST(Backoff, SpreadStaysWithinTheSymmetricBand) {
  // spread widens the delay in BOTH directions: d * [1 - s, 1 + s].  With
  // jitter off and the schedule pinned at the cap, every draw must land in
  // the band — and actually use it (peers sharing a schedule but not a
  // seed must decorrelate both early and late).
  BackoffConfig cfg;
  cfg.base_ms = 100.0;
  cfg.cap_ms = 100.0;
  cfg.jitter = 0.0;
  cfg.spread = 0.2;
  ExponentialBackoff backoff(cfg, 17);
  double lo = 1e9;
  double hi = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double d = backoff.next_delay_ms();
    EXPECT_GE(d, 80.0 - 1e-9);
    EXPECT_LE(d, 120.0 + 1e-9);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, 90.0) << "spread never drew from the early half of the band";
  EXPECT_GT(hi, 110.0) << "spread never drew from the late half of the band";
}

TEST(Backoff, SpreadIsDeterministicPerSeedAndDivergesAcrossSeeds) {
  BackoffConfig cfg;
  cfg.base_ms = 50.0;
  cfg.cap_ms = 400.0;
  cfg.jitter = 0.25;  // spread draws share the jitter's seeded stream
  cfg.spread = 0.2;
  ExponentialBackoff a(cfg, 7);
  ExponentialBackoff b(cfg, 7);
  ExponentialBackoff other(cfg, 8);
  bool diverged = false;
  for (int i = 0; i < 50; ++i) {
    const double da = a.next_delay_ms();
    EXPECT_DOUBLE_EQ(da, b.next_delay_ms());
    if (da != other.next_delay_ms()) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds produced identical schedules";
}

TEST(Backoff, ZeroSpreadPreservesTheHistoricalSequence) {
  // spread = 0 (the default) must not consume Rng draws: the delay
  // sequence stays bit-for-bit what jitter alone produced before the knob
  // existed.  Replay the historical recipe against the same seeded stream.
  BackoffConfig cfg;
  cfg.base_ms = 10.0;
  cfg.cap_ms = 1000.0;
  cfg.multiplier = 2.0;
  cfg.jitter = 0.5;  // spread left at its 0.0 default
  ExponentialBackoff backoff(cfg, 42);
  Rng replay(42);
  double expected = cfg.base_ms;
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(backoff.next_delay_ms(),
                     expected * (1.0 - cfg.jitter * replay.uniform()));
    expected = std::min(expected * cfg.multiplier, cfg.cap_ms);
  }
}

TEST(Backoff, ResetRestartsTheSequence) {
  BackoffConfig cfg;
  cfg.jitter = 0.0;
  ExponentialBackoff backoff(cfg, 0);
  (void)backoff.next_delay_ms();
  (void)backoff.next_delay_ms();
  EXPECT_EQ(backoff.attempts(), 2u);
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0u);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), cfg.base_ms);
}

// ---------------------------------------------------------------------------
// Journal under injected disk faults

class FaultJournalDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nwscpu_fault_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    journal_ = dir_ / "memory.journal";
  }
  void TearDown() override {
    install_fault_injector(nullptr);
    fs::remove_all(dir_);
  }

  fs::path dir_;
  fs::path journal_;
};

TEST_F(FaultJournalDir, InjectedWriteFailureKeepsInCoreState) {
  FaultProfile profile;
  profile.disk_fail_prob = 1.0;  // every append fails
  {
    PersistentMemory pm(journal_);
    ASSERT_TRUE(pm.record("s", {0.0, 0.1}));  // journalled
    {
      ScopedInjector scoped(1, profile);
      ASSERT_TRUE(pm.record("s", {10.0, 0.2}));  // lost on disk, kept in core
      ASSERT_TRUE(pm.record("s", {20.0, 0.3}));
    }
    ASSERT_TRUE(pm.record("s", {30.0, 0.4}));  // healthy again
    pm.sync();
    EXPECT_EQ(pm.write_failures(), 2u);
    EXPECT_EQ(pm.memory().find("s")->size(), 4u);  // core kept everything
  }
  // Only the successfully journalled records come back.
  PersistentMemory pm(journal_);
  EXPECT_EQ(pm.recovered(), 2u);
  EXPECT_DOUBLE_EQ(pm.memory().find("s")->at(0).time, 0.0);
  EXPECT_DOUBLE_EQ(pm.memory().find("s")->at(1).time, 30.0);
}

TEST_F(FaultJournalDir, CompactRepairsAfterWriteFaults) {
  FaultProfile profile;
  profile.disk_fail_prob = 0.5;
  {
    PersistentMemory pm(journal_, /*series_capacity=*/64);
    {
      ScopedInjector scoped(2, profile);
      for (int i = 0; i < 40; ++i) {
        ASSERT_TRUE(pm.record("s", {i * 10.0, 0.5}));
      }
    }
    EXPECT_GT(pm.write_failures(), 0u);
    // compact() rewrites the journal from the (complete) in-core state,
    // repairing the holes the faults tore.
    pm.compact();
  }
  PersistentMemory pm(journal_, 64);
  EXPECT_EQ(pm.recovered(), 40u);
  EXPECT_EQ(pm.skipped(), 0u);
}

TEST_F(FaultJournalDir, ForecastServiceSurvivesRestartViaJournal) {
  Forecast before;
  {
    ForecastService svc(1024, {}, journal_);
    for (int i = 0; i < 120; ++i) {
      ASSERT_TRUE(
          svc.record("h/cpu", {i * 10.0, 0.5 + 0.3 * ((i % 7) / 7.0)}));
    }
    before = *svc.predict("h/cpu");
    svc.sync();
  }
  ForecastService svc(1024, {}, journal_);
  EXPECT_EQ(svc.recovered(), 120u);
  const auto after = svc.predict("h/cpu");
  ASSERT_TRUE(after.has_value());
  // Replay re-feeds the forecasters, so the restarted service forecasts
  // exactly as the uninterrupted one did.
  EXPECT_DOUBLE_EQ(after->value, before.value);
  EXPECT_DOUBLE_EQ(after->mae, before.mae);
  EXPECT_DOUBLE_EQ(after->mse, before.mse);
  EXPECT_EQ(after->history, before.history);
  EXPECT_DOUBLE_EQ(after->last_time, before.last_time);
  EXPECT_EQ(after->method, before.method);
}

}  // namespace
}  // namespace nws

// Tests for PersistentMemory (journal + recovery) and the fleet
// configuration parser/builder.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "experiments/fleet_config.hpp"
#include "nws/persistence.hpp"
#include "nws/server.hpp"

namespace nws {
namespace {

namespace fs = std::filesystem;

class JournalDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nwscpu_journal_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    journal_ = dir_ / "memory.journal";
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  fs::path journal_;
};

// ---------------------------------------------------------------------------
// PersistentMemory

TEST_F(JournalDir, FreshStoreStartsEmpty) {
  PersistentMemory pm(journal_);
  EXPECT_EQ(pm.recovered(), 0u);
  EXPECT_EQ(pm.memory().series_count(), 0u);
}

TEST_F(JournalDir, SurvivesRestart) {
  {
    PersistentMemory pm(journal_);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pm.record("a/cpu", {i * 10.0, 0.5 + 0.001 * i}));
      ASSERT_TRUE(pm.record("b/cpu", {i * 10.0, 0.9}));
    }
    pm.sync();
  }  // "crash"
  PersistentMemory pm(journal_);
  EXPECT_EQ(pm.recovered(), 100u);
  EXPECT_EQ(pm.skipped(), 0u);
  ASSERT_NE(pm.memory().find("a/cpu"), nullptr);
  EXPECT_EQ(pm.memory().find("a/cpu")->size(), 50u);
  EXPECT_DOUBLE_EQ(pm.memory().find("a/cpu")->newest().value, 0.549);
  EXPECT_DOUBLE_EQ(pm.memory().find("b/cpu")->newest().time, 490.0);
}

TEST_F(JournalDir, AppendsAcrossRestarts) {
  {
    PersistentMemory pm(journal_);
    ASSERT_TRUE(pm.record("s", {0.0, 0.1}));
    pm.sync();
  }
  {
    PersistentMemory pm(journal_);
    ASSERT_TRUE(pm.record("s", {10.0, 0.2}));
    pm.sync();
  }
  PersistentMemory pm(journal_);
  EXPECT_EQ(pm.recovered(), 2u);
  EXPECT_EQ(pm.memory().find("s")->size(), 2u);
}

TEST_F(JournalDir, TornTailLineSkippedOnRecovery) {
  {
    PersistentMemory pm(journal_);
    ASSERT_TRUE(pm.record("s", {0.0, 0.1}));
    ASSERT_TRUE(pm.record("s", {10.0, 0.2}));
    pm.sync();
  }
  // Simulate a crash mid-append: a torn record with no trailing fields.
  {
    std::ofstream out(journal_, std::ios::app);
    out << "s 20.0";  // value missing, no newline terminator issues
  }
  PersistentMemory pm(journal_);
  EXPECT_EQ(pm.recovered(), 2u);
  EXPECT_EQ(pm.skipped(), 1u);
  EXPECT_DOUBLE_EQ(pm.memory().find("s")->newest().time, 10.0);
  // The store remains usable for new records.
  EXPECT_TRUE(pm.record("s", {30.0, 0.3}));
}

TEST_F(JournalDir, OutOfOrderNeverJournalled) {
  {
    PersistentMemory pm(journal_);
    ASSERT_TRUE(pm.record("s", {100.0, 0.5}));
    EXPECT_FALSE(pm.record("s", {50.0, 0.9}));
    pm.sync();
  }
  PersistentMemory pm(journal_);
  EXPECT_EQ(pm.recovered(), 1u);
  EXPECT_EQ(pm.skipped(), 0u);
}

TEST_F(JournalDir, CompactBoundsJournalToRetention) {
  {
    // Tiny capacity: the ring retains only 4 of 100 measurements.
    PersistentMemory pm(journal_, /*series_capacity=*/4);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pm.record("s", {i * 10.0, 0.5}));
    }
    pm.sync();
    const auto before = fs::file_size(journal_);
    pm.compact();
    const auto after = fs::file_size(journal_);
    EXPECT_LT(after, before / 4);
    // Still appendable after compaction.
    ASSERT_TRUE(pm.record("s", {2000.0, 0.7}));
    pm.sync();
  }
  PersistentMemory pm(journal_, 4);
  // 4 compacted survivors + the post-compact record, all replayable; the
  // bounded store retains the most recent 4 of them.
  EXPECT_EQ(pm.recovered(), 5u);
  EXPECT_EQ(pm.memory().find("s")->size(), 4u);
  EXPECT_DOUBLE_EQ(pm.memory().find("s")->newest().value, 0.7);
}

TEST_F(JournalDir, CommentsIgnoredOnReplay) {
  {
    std::ofstream out(journal_);
    out << "# hand-written journal\ns 1 0.25\n\ns 2 0.75\n";
  }
  PersistentMemory pm(journal_);
  EXPECT_EQ(pm.recovered(), 2u);
  EXPECT_DOUBLE_EQ(pm.memory().find("s")->newest().value, 0.75);
}

TEST_F(JournalDir, MidJournalGarbageSkippedNotFatal) {
  // Crash-torn journals are not always torn at the tail: a partial block
  // write can corrupt the middle.  Every good record around the damage
  // must still be recovered.
  {
    std::ofstream out(journal_, std::ios::binary);
    out << "s 0 0.1\n";
    out << "s 10 not-a-number\n";              // non-numeric value
    out << std::string("\x00\x7f\xfe garbage \x01\n", 15);  // binary noise
    out << "s 20\n";                           // missing field
    out << "s 30 0.2 0.9 extra\n";             // too many fields
    out << "s 40 0.3\n";                       // good again
  }
  PersistentMemory pm(journal_);
  EXPECT_EQ(pm.recovered(), 2u);
  EXPECT_EQ(pm.skipped(), 4u);
  ASSERT_NE(pm.memory().find("s"), nullptr);
  EXPECT_EQ(pm.memory().find("s")->size(), 2u);
  EXPECT_DOUBLE_EQ(pm.memory().find("s")->at(0).time, 0.0);
  EXPECT_DOUBLE_EQ(pm.memory().find("s")->at(1).time, 40.0);
}

TEST_F(JournalDir, CompactScrubsGarbageFromJournal) {
  // After recovery skips damage, compact() rewrites the journal from the
  // in-core state: the next replay is clean.
  {
    std::ofstream out(journal_, std::ios::binary);
    out << "s 0 0.1\njunk line here\ns 10 0.2\ns 2";  // torn tail too
  }
  {
    PersistentMemory pm(journal_);
    EXPECT_EQ(pm.recovered(), 2u);
    EXPECT_GT(pm.skipped(), 0u);
    pm.compact();
  }
  PersistentMemory pm(journal_);
  EXPECT_EQ(pm.recovered(), 2u);
  EXPECT_EQ(pm.skipped(), 0u);
  EXPECT_DOUBLE_EQ(pm.memory().find("s")->newest().value, 0.2);
}

TEST_F(JournalDir, RecoveredStateMatchesInCoreState) {
  // Whatever survives a restart equals what the live store held: same
  // series, same order, same values.
  std::vector<std::pair<std::string, Measurement>> live;
  {
    PersistentMemory pm(journal_);
    for (int i = 0; i < 30; ++i) {
      const std::string series = (i % 3 == 0) ? "a" : (i % 3 == 1 ? "b" : "c");
      const Measurement m{i * 5.0, 0.25 + 0.02 * (i % 11)};
      ASSERT_TRUE(pm.record(series, m));
    }
    pm.sync();
    for (const auto& series : pm.memory().series_names()) {
      const SeriesStore* buf = pm.memory().find(series);
      for (std::size_t i = 0; i < buf->size(); ++i) {
        live.emplace_back(series, buf->at(i));
      }
    }
  }
  PersistentMemory pm(journal_);
  EXPECT_EQ(pm.recovered(), 30u);
  std::vector<std::pair<std::string, Measurement>> recovered;
  for (const auto& series : pm.memory().series_names()) {
    const SeriesStore* buf = pm.memory().find(series);
    for (std::size_t i = 0; i < buf->size(); ++i) {
      recovered.emplace_back(series, buf->at(i));
    }
  }
  ASSERT_EQ(recovered.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(recovered[i].first, live[i].first);
    EXPECT_DOUBLE_EQ(recovered[i].second.time, live[i].second.time);
    EXPECT_DOUBLE_EQ(recovered[i].second.value, live[i].second.value);
  }
}

// ---------------------------------------------------------------------------
// Follower durability: the replication cursor (journal + .replmeta) must
// let a restarted follower resume mid-stream from its high-watermark with
// no duplicate applies — the server-side half of exactly-once.

TEST_F(JournalDir, FollowerRestartResumesFromHighWatermark) {
  ServerConfig cfg;
  cfg.role = ServerRole::kFollower;
  cfg.shards = 1;
  cfg.journal_path = journal_;
  {
    NwsServer f(cfg);
    ASSERT_EQ(f.handle_line("REPL HELLO 2 1 127.0.0.1:9001"), "OK 2 0 1 0");
    ASSERT_EQ(f.handle_line("REPL RESET 2 0 0 0 0"), "OK 0");
    ASSERT_EQ(f.handle_line("REPL BATCH 2 0 0 2 a 1 0.5 b 1 0.4"), "OK 2");
    ASSERT_EQ(f.handle_line("REPL BATCH 2 0 2 1 a 2 0.6"), "OK 3");
  }  // "crash" mid-stream: journal and replmeta survive

  NwsServer f(cfg);
  // The cursor came back: epoch and watermark survived the restart, so
  // the handshake tells the primary to resume at 3, not resnapshot.
  EXPECT_EQ(f.epoch(), 2u);
  EXPECT_EQ(f.handle_line("REPL HELLO 2 1 127.0.0.1:9001"), "OK 2 2 1 3");

  // The primary replays the tail it never saw acked — the overlap is
  // re-acked without re-applying (appended stays 3, dropped stays 0).
  EXPECT_EQ(f.handle_line("REPL BATCH 2 0 0 3 a 1 0.5 b 1 0.4 a 2 0.6"),
            "OK 3");
  EXPECT_EQ(f.handle_line("REPL BATCH 2 0 3 1 b 2 0.7"), "OK 4");
  EXPECT_EQ(f.handle_line("STATS"),
            "OK 2 4 4 0 0 role=follower epoch=2 repl_lag=0");
  EXPECT_EQ(f.handle_line("VALUES a 10"), "OK 2 1 0.5 2 0.6");
  EXPECT_EQ(f.handle_line("VALUES b 10"), "OK 2 1 0.4 2 0.7");

  // A batch past the watermark is still a gap after restart.
  EXPECT_EQ(f.handle_line("REPL BATCH 2 0 9 1 a 9 0.9"), "ERR gap 4");
}

TEST_F(JournalDir, TornReplMetaForcesResyncNotCorruption) {
  ServerConfig cfg;
  cfg.role = ServerRole::kFollower;
  cfg.shards = 1;
  cfg.journal_path = journal_;
  {
    NwsServer f(cfg);
    ASSERT_EQ(f.handle_line("REPL HELLO 3 1 -"), "OK 3 0 1 0");
    ASSERT_EQ(f.handle_line("REPL RESET 3 0 0 0 1 a 1 0.5"), "OK 1");
  }
  // Tear the cursor file as a mid-write crash would.
  const fs::path meta = journal_.string() + ".replmeta";
  {
    std::ofstream out(meta, std::ios::trunc);
    out << "replmeta 3 3 1";  // missing watermark and end marker
  }
  NwsServer f(cfg);
  // No cursor: the follower reports epoch 0 / watermark 0 and the primary
  // resnapshots — conservative, never wrong.
  EXPECT_EQ(f.epoch(), 0u);
  EXPECT_EQ(f.handle_line("REPL HELLO 3 1 -"), "OK 3 0 1 0");
  // But the journaled samples themselves recovered fine.
  const auto stats = parse_stats_response(f.handle_line("STATS"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->appended, 1u);
}

// ---------------------------------------------------------------------------
// Fleet config parsing

TEST(FleetConfig, ParsesFullExample) {
  std::istringstream in(R"(
# two-host fleet
[host buildbox]
interrupt_load = 0.02
users = 3
user.mean_think = 20
user.burst_alpha = 1.5
user.diurnal_amplitude = 0.4
batch = true
batch.jobs_per_hour = 6
batch.cpu_duty = 0.6
daemon.period = 300
daemon.burst = 2

[host soakerbox]
soaker = true
soaker.nice = 19
hog = false
)");
  const auto specs = parse_fleet_config(in);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "buildbox");
  EXPECT_DOUBLE_EQ(specs[0].interrupt_load, 0.02);
  EXPECT_EQ(specs[0].users, 3);
  EXPECT_DOUBLE_EQ(specs[0].user_burst_alpha, 1.5);
  EXPECT_TRUE(specs[0].batch);
  ASSERT_TRUE(specs[0].daemon_period.has_value());
  EXPECT_DOUBLE_EQ(*specs[0].daemon_period, 300.0);
  EXPECT_TRUE(specs[1].soaker);
  EXPECT_FALSE(specs[1].hog);
  EXPECT_FALSE(specs[1].daemon_period.has_value());
}

struct BadConfig {
  const char* name;
  const char* text;
};

class FleetConfigBad : public ::testing::TestWithParam<BadConfig> {};

TEST_P(FleetConfigBad, Rejected) {
  std::istringstream in(GetParam().text);
  EXPECT_THROW(parse_fleet_config(in), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FleetConfigBad,
    ::testing::Values(
        BadConfig{"key_before_section", "users = 3\n"},
        BadConfig{"unknown_key", "[host a]\nfrobnicate = 1\n"},
        BadConfig{"bad_number", "[host a]\nusers = three\n"},
        BadConfig{"bad_bool", "[host a]\nbatch = maybe\n"},
        BadConfig{"duplicate_host", "[host a]\n[host a]\n"},
        BadConfig{"unterminated_section", "[host a\n"},
        BadConfig{"bad_section_kind", "[machine a]\n"},
        BadConfig{"missing_equals", "[host a]\nusers 3\n"},
        BadConfig{"negative_users", "[host a]\nusers = -1\n"},
        BadConfig{"interrupt_out_of_range",
                  "[host a]\ninterrupt_load = 1.5\n"},
        BadConfig{"duty_out_of_range", "[host a]\nbatch.cpu_duty = 0\n"},
        BadConfig{"daemon_burst_exceeds_period",
                  "[host a]\ndaemon.period = 10\ndaemon.burst = 10\n"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(FleetConfig, CommentsAndBlankLinesIgnored) {
  std::istringstream in("# lead\n\n[host a]  # trailing\nusers = 1 # eol\n");
  const auto specs = parse_fleet_config(in);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].users, 1);
}

TEST(FleetConfig, MissingFileThrows) {
  EXPECT_THROW(parse_fleet_config(fs::path("/nonexistent/fleet.conf")),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Building hosts from specs

TEST(FleetConfig, BuiltHostRunsAndMatchesSpecShape) {
  HostSpec spec;
  spec.name = "soakerbox";
  spec.soaker = true;
  auto host = build_host(spec, 1);
  ASSERT_NE(host, nullptr);
  host->run_for(300.0);
  // The soaker keeps the run queue occupied...
  EXPECT_NEAR(host->load_average(), 1.0, 0.05);
  // ...but a full-priority process pre-empts it.
  EXPECT_GT(host->run_timed_process("test", 10.0), 0.95);
}

TEST(FleetConfig, BuiltHostDeterministicInSeed) {
  HostSpec spec;
  spec.name = "b";
  spec.users = 2;
  spec.user_mean_think = 5.0;
  auto a1 = build_host(spec, 7);
  auto a2 = build_host(spec, 7);
  auto b = build_host(spec, 8);
  a1->run_for(600.0);
  a2->run_for(600.0);
  b->run_for(600.0);
  EXPECT_EQ(a1->counters().user, a2->counters().user);
  EXPECT_NE(a1->counters().user, b->counters().user);
}

TEST(FleetConfig, HogDutyRespected) {
  HostSpec spec;
  spec.name = "halfhog";
  spec.hog = true;
  spec.hog_duty = 0.5;
  auto host = build_host(spec, 3);
  host->run_for(3600.0);
  const double duty = static_cast<double>(host->counters().user) /
                      static_cast<double>(host->counters().total());
  EXPECT_NEAR(duty, 0.5, 0.06);
}

}  // namespace
}  // namespace nws

// Parity matrix for the network front end: poll vs epoll event-loop
// backends x text vs binary wire framing x shard counts, all driven by
// one pipelined request script.  The text protocol is the oracle — a
// binary response frame must carry the exact bytes of the text response —
// so every cell of the matrix is compared byte-for-byte against it.
//
// Also covers the HELLO negotiation state machine, the mid-pipeline
// upgrade (text requests before HELLO BIN keep text framing), the
// NwsClient binary mode (including the sequence-tagged outbox replay
// across a server restart), and NWSCPU_NET_BACKEND resolution.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "nws/client.hpp"
#include "nws/protocol.hpp"
#include "nws/server.hpp"

namespace nws {
namespace {

/// Request script spanning every verb, both put flavours, duplicates,
/// out-of-order samples, unknown series, malformed input and enough
/// distinct series to hit several shards.  (METRICS is exercised
/// separately: its response is multi-line in text framing.)
std::vector<std::string> script_lines() {
  std::vector<std::string> lines;
  const char* series[] = {"alpha/cpu", "bravo/cpu", "charlie/cpu",
                          "delta/cpu", "echo/cpu"};
  for (int round = 0; round < 12; ++round) {
    for (const char* s : series) {
      const double t = 10.0 * (round + 1);
      lines.push_back("PUT " + std::string(s) + " " + std::to_string(t) +
                      " 0." + std::to_string(20 + (round * 11) % 75));
    }
  }
  for (const char* s : series) {
    lines.push_back("FORECAST " + std::string(s));
    lines.push_back("VALUES " + std::string(s) + " 4");
    lines.push_back("STATS " + std::string(s));
  }
  lines.push_back("PUTS alpha/cpu 1 400 0.5");
  lines.push_back("PUTS alpha/cpu 1 410 0.5");  // seq dup
  lines.push_back("PUTS alpha/cpu 2 395 0.5");  // time dup
  lines.push_back("PUT bravo/cpu 5 0.5");       // out of order
  lines.push_back("PUTB echo/cpu 3 1 500 0.5 510 0.625 520 0.75");
  lines.push_back("PUTB echo/cpu 3 1 500 0.5 510 0.625 520 0.75");  // replay
  lines.push_back("FORECAST nobody/cpu");  // unknown series
  lines.push_back("SERIES");
  lines.push_back("STATS");
  lines.push_back("PING");
  lines.push_back("BOGUS request");  // malformed
  return lines;
}

/// Encodes one script line as a binary request frame.  Lines the text
/// parser accepts get their native encoding; anything else rides the TEXT
/// op raw, so even the malformed probe elicits the oracle's exact
/// "ERR malformed request".
void append_frame_for_line(std::string& wire, const std::string& line) {
  if (const auto req = parse_request(line)) {
    append_binary_request(wire, *req);
    return;
  }
  std::string payload;
  payload += static_cast<char>(kBinOpText);
  payload += line;
  append_binary_response(wire, payload);  // same [u32 len][bytes] layout
}

class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  bool send_bytes(std::string_view bytes) {
    std::size_t sent = 0;
    while (fd_ >= 0 && sent < bytes.size()) {
      const ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (w <= 0) return false;
      sent += static_cast<std::size_t>(w);
    }
    return sent == bytes.size();
  }

  /// One newline-terminated response line (text framing).
  [[nodiscard]] std::optional<std::string> read_line() {
    for (;;) {
      const std::size_t nl = rx_.find('\n');
      if (nl != std::string::npos) {
        std::string line = rx_.substr(0, nl);
        rx_.erase(0, nl + 1);
        return line;
      }
      if (!fill()) return std::nullopt;
    }
  }

  /// One binary response frame's payload.
  [[nodiscard]] std::optional<std::string> read_frame() {
    for (;;) {
      std::size_t frame_end = 0;
      std::string_view payload;
      const BinFrameStatus status =
          extract_binary_frame(rx_, 16 * 1024 * 1024, frame_end, payload);
      if (status == BinFrameStatus::kError) return std::nullopt;
      if (status == BinFrameStatus::kFrame) {
        std::string out(payload);
        rx_.erase(0, frame_end);
        return out;
      }
      if (!fill()) return std::nullopt;
    }
  }

  /// True when the server closed the connection (EOF after draining rx).
  [[nodiscard]] bool at_eof() {
    if (!rx_.empty()) return false;
    return !fill();
  }

 private:
  bool fill() {
    char chunk[4096];
    const ssize_t n = fd_ >= 0 ? ::recv(fd_, chunk, sizeof chunk, 0) : -1;
    if (n <= 0) return false;
    rx_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string rx_;
};

ServerConfig backend_config(NetBackend backend, std::size_t shards) {
  ServerConfig cfg;
  cfg.net_backend = backend;
  cfg.shards = shards;
  return cfg;
}

/// Runs the script pipelined (one buffered write) in text framing and
/// returns the response lines.
std::vector<std::string> run_text(std::uint16_t port,
                                  const std::vector<std::string>& script) {
  std::string wire;
  for (const std::string& line : script) {
    wire += line;
    wire += '\n';
  }
  RawConn conn(port);
  EXPECT_TRUE(conn.ok());
  EXPECT_TRUE(conn.send_bytes(wire));
  std::vector<std::string> responses;
  responses.reserve(script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    const auto line = conn.read_line();
    EXPECT_TRUE(line.has_value()) << "response " << i << " missing";
    if (!line) break;
    responses.push_back(*line);
  }
  return responses;
}

/// Runs the script pipelined in binary framing (one write: HELLO BIN +
/// every frame) and returns the frame payloads.
std::vector<std::string> run_binary(std::uint16_t port,
                                    const std::vector<std::string>& script) {
  std::string wire(kHelloBinRequest);
  wire += '\n';
  for (const std::string& line : script) append_frame_for_line(wire, line);
  RawConn conn(port);
  EXPECT_TRUE(conn.ok());
  EXPECT_TRUE(conn.send_bytes(wire));
  const auto ack = conn.read_line();
  EXPECT_EQ(ack.value_or(""), kHelloBinAck);
  std::vector<std::string> responses;
  responses.reserve(script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    const auto payload = conn.read_frame();
    EXPECT_TRUE(payload.has_value()) << "frame " << i << " missing";
    if (!payload) break;
    responses.push_back(*payload);
  }
  return responses;
}

TEST(NetBackendParity, BackendsAndFramingsByteIdenticalAtAnyShardCount) {
  const std::vector<std::string> script = script_lines();
  // The oracle: the text protocol on the single-shard poll server.
  std::vector<std::string> oracle;
  {
    NwsServer server(backend_config(NetBackend::kPoll, 1));
    const std::uint16_t port = server.start(0);
    ASSERT_NE(port, 0);
    oracle = run_text(port, script);
    server.stop();
  }
  ASSERT_EQ(oracle.size(), script.size());

  for (const NetBackend backend : {NetBackend::kPoll, NetBackend::kEpoll}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      // A fresh server per framing: the script mutates state (STATS
      // totals), so both runs must start from the oracle's blank slate.
      std::vector<std::string> text;
      std::vector<std::string> binary;
      {
        NwsServer server(backend_config(backend, shards));
        ASSERT_EQ(server.backend(), backend);
        const std::uint16_t port = server.start(0);
        ASSERT_NE(port, 0);
        text = run_text(port, script);
        server.stop();
      }
      {
        NwsServer server(backend_config(backend, shards));
        const std::uint16_t port = server.start(0);
        ASSERT_NE(port, 0);
        binary = run_binary(port, script);
        server.stop();
      }
      const std::string cell = std::string("backend=") +
                               (backend == NetBackend::kPoll ? "poll" : "epoll") +
                               " shards=" + std::to_string(shards);
      ASSERT_EQ(text.size(), oracle.size()) << cell;
      ASSERT_EQ(binary.size(), oracle.size()) << cell;
      for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(text[i], oracle[i]) << cell << " request: " << script[i];
        EXPECT_EQ(binary[i], oracle[i]) << cell << " request: " << script[i];
      }
    }
  }
}

TEST(NetBackendParity, HelloNegotiationStateMachine) {
  for (const NetBackend backend : {NetBackend::kPoll, NetBackend::kEpoll}) {
    NwsServer server(backend_config(backend, 2));
    const std::uint16_t port = server.start(0);
    ASSERT_NE(port, 0);
    {
      // HELLO / HELLO TEXT ack and stay text; an unknown argument draws an
      // ERR and the connection still speaks text afterwards.
      RawConn conn(port);
      ASSERT_TRUE(conn.ok());
      ASSERT_TRUE(conn.send_bytes("HELLO\nHELLO TEXT\nHELLO GOBBLE\nPING\n"));
      EXPECT_EQ(conn.read_line().value_or(""), kHelloTextAck);
      EXPECT_EQ(conn.read_line().value_or(""), kHelloTextAck);
      EXPECT_EQ(conn.read_line().value_or(""), "ERR unknown framing");
      EXPECT_EQ(conn.read_line().value_or(""), "OK");
    }
    {
      // The upgrade is per connection: a parallel text connection is
      // untouched by another connection's HELLO BIN.
      RawConn bin(port);
      RawConn text(port);
      ASSERT_TRUE(bin.ok());
      ASSERT_TRUE(text.ok());
      std::string wire(kHelloBinRequest);
      wire += '\n';
      append_frame_for_line(wire, "PING");
      ASSERT_TRUE(bin.send_bytes(wire));
      EXPECT_EQ(bin.read_line().value_or(""), kHelloBinAck);
      EXPECT_EQ(bin.read_frame().value_or(""), "OK");
      ASSERT_TRUE(text.send_bytes("PING\n"));
      EXPECT_EQ(text.read_line().value_or(""), "OK");
    }
    server.stop();
  }
}

TEST(NetBackendParity, MidPipelineUpgradeKeepsEarlierResponsesText) {
  // One buffered write: two text requests, the upgrade, two binary frames.
  // The first three responses are text lines (the ack is the last text
  // response); everything after is framed — even though shards may finish
  // the binary requests before the text ones flush.
  NwsServer server(backend_config(NetBackend::kEpoll, 4));
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  std::string wire = "PUT mid/cpu 10 0.5\nPING\n";
  wire += kHelloBinRequest;
  wire += '\n';
  append_frame_for_line(wire, "FORECAST mid/cpu");
  append_frame_for_line(wire, "PING");
  RawConn conn(port);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.send_bytes(wire));
  EXPECT_EQ(conn.read_line().value_or(""), "OK");
  EXPECT_EQ(conn.read_line().value_or(""), "OK");
  EXPECT_EQ(conn.read_line().value_or(""), kHelloBinAck);
  const auto forecast = conn.read_frame();
  ASSERT_TRUE(forecast.has_value());
  EXPECT_TRUE(parse_forecast_response(*forecast).has_value());
  EXPECT_EQ(conn.read_frame().value_or(""), "OK");
  server.stop();
}

TEST(NetBackendParity, BinaryQuitFlushesAckAndCloses) {
  for (const NetBackend backend : {NetBackend::kPoll, NetBackend::kEpoll}) {
    NwsServer server(backend_config(backend, 2));
    const std::uint16_t port = server.start(0);
    ASSERT_NE(port, 0);
    std::string wire(kHelloBinRequest);
    wire += '\n';
    append_frame_for_line(wire, "PUT q/cpu 1 0.5");
    append_frame_for_line(wire, "QUIT");
    RawConn conn(port);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.send_bytes(wire));
    EXPECT_EQ(conn.read_line().value_or(""), kHelloBinAck);
    EXPECT_EQ(conn.read_frame().value_or(""), "OK");
    EXPECT_EQ(conn.read_frame().value_or(""), "OK");  // the QUIT ack
    EXPECT_TRUE(conn.at_eof());
    server.stop();
  }
}

TEST(NetBackendClient, BinaryModeMatchesTextAcrossTheApi) {
  NwsServer server(backend_config(NetBackend::kEpoll, 4));
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);

  ClientConfig bin_cfg;
  bin_cfg.binary = true;
  NwsClient bin(bin_cfg);
  NwsClient text;
  ASSERT_TRUE(bin.connect(port));
  ASSERT_TRUE(text.connect(port));
  EXPECT_TRUE(bin.binary_active());
  EXPECT_FALSE(text.binary_active());

  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(bin.put("api/cpu", {static_cast<double>(i) * 10.0, 0.5}));
  }
  const auto reply = bin.put_batch(
      "api/cpu", {{300.0, 0.25}, {310.0, 0.375}, {320.0, 0.5}}, 1);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->applied, 3u);

  // Every read-side verb answers identically through either framing.
  const auto f_bin = bin.forecast("api/cpu");
  const auto f_text = text.forecast("api/cpu");
  ASSERT_TRUE(f_bin.has_value());
  ASSERT_TRUE(f_text.has_value());
  EXPECT_DOUBLE_EQ(f_bin->value, f_text->value);
  EXPECT_EQ(f_bin->history, f_text->history);
  EXPECT_EQ(f_bin->method, f_text->method);

  const auto v_bin = bin.values("api/cpu", 5);
  const auto v_text = text.values("api/cpu", 5);
  ASSERT_TRUE(v_bin.has_value());
  ASSERT_TRUE(v_text.has_value());
  ASSERT_EQ(v_bin->size(), v_text->size());
  for (std::size_t i = 0; i < v_bin->size(); ++i) {
    EXPECT_DOUBLE_EQ((*v_bin)[i].time, (*v_text)[i].time);
    EXPECT_DOUBLE_EQ((*v_bin)[i].value, (*v_text)[i].value);
  }

  EXPECT_EQ(bin.series().value_or(std::vector<std::string>{}),
            text.series().value_or(std::vector<std::string>{}));
  const auto s_bin = bin.stats();
  const auto s_text = text.stats();
  ASSERT_TRUE(s_bin.has_value());
  ASSERT_TRUE(s_text.has_value());
  EXPECT_EQ(s_bin->appended, s_text->appended);

  // METRICS travels as one frame in binary mode; same exposition text.
  const auto m_bin = bin.metrics();
  ASSERT_TRUE(m_bin.has_value());
  EXPECT_NE(m_bin->find("nws_server_requests_total"), std::string::npos);
  EXPECT_NE(m_bin->find("nws_server_bin_upgrades_total"), std::string::npos);
  EXPECT_TRUE(bin.ping());
  server.stop();
}

TEST(NetBackendClient, ReliableOutboxReplaysInBinaryAcrossRestart) {
  // The sequence-tagged outbox/replay machinery is framing-agnostic: queue
  // against a dead server, restart it on the same port, flush in binary —
  // exactly-once delivery holds and the reconnect renegotiates HELLO BIN.
  ClientConfig cfg;
  cfg.binary = true;
  cfg.connect_timeout_ms = 500;
  cfg.io_timeout_ms = 500;
  cfg.max_flush_attempts = 10;
  cfg.backoff = BackoffConfig{5.0, 60.0, 2.0, 0.5};
  NwsClient client(cfg);

  NwsServer first(backend_config(NetBackend::kEpoll, 2));
  const std::uint16_t port = first.start(0);
  ASSERT_NE(port, 0);
  ASSERT_TRUE(client.connect(port));
  EXPECT_TRUE(client.binary_active());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        client.put_reliable("replay/cpu", {static_cast<double>(i) * 10, 0.5}));
  }
  EXPECT_TRUE(client.flush());
  first.stop();

  // Queue more while down; the samples sit in the outbox.
  for (int i = 10; i < 30; ++i) {
    EXPECT_TRUE(
        client.put_reliable("replay/cpu", {static_cast<double>(i) * 10, 0.5}));
  }

  NwsServer second(backend_config(NetBackend::kEpoll, 2));
  std::uint16_t reborn = 0;
  for (int tries = 0; tries < 50 && reborn == 0; ++tries) {
    reborn = second.start(port);
  }
  ASSERT_EQ(reborn, port);
  bool drained = false;
  for (int i = 0; i < 20 && !drained; ++i) drained = client.flush();
  EXPECT_TRUE(drained);
  EXPECT_TRUE(client.binary_active()) << "reconnect must renegotiate BIN";
  const auto forecast = client.forecast("replay/cpu");
  ASSERT_TRUE(forecast.has_value());
  // The first server's 10 samples died with it (no journal); exactly the
  // 20 still queued were applied, none twice.
  EXPECT_EQ(forecast->history, 20u);
  second.stop();
}

TEST(NetBackendConfig, EnvironmentSelectsBackend) {
  ::setenv("NWSCPU_NET_BACKEND", "poll", 1);
  {
    NwsServer server;
    EXPECT_EQ(server.backend(), NetBackend::kPoll);
  }
  ::setenv("NWSCPU_NET_BACKEND", "epoll", 1);
  {
    NwsServer server;
    EXPECT_EQ(server.backend(), NetBackend::kEpoll);
  }
  // A config override beats the environment.
  {
    ServerConfig cfg;
    cfg.net_backend = NetBackend::kPoll;
    NwsServer server(cfg);
    EXPECT_EQ(server.backend(), NetBackend::kPoll);
  }
  ::unsetenv("NWSCPU_NET_BACKEND");
}

}  // namespace
}  // namespace nws

// Unit and property tests for src/tsa: series container, autocorrelation,
// R/S analysis / Hurst estimation, aggregation, fGn generation.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "tsa/aggregate.hpp"
#include "tsa/autocorrelation.hpp"
#include "tsa/fgn.hpp"
#include "tsa/rs_analysis.hpp"
#include "tsa/series.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nws {
namespace {

// ---------------------------------------------------------------------------
// TimeSeries

TEST(TimeSeries, BasicAccessors) {
  TimeSeries s("demo", 100.0, 10.0, {0.1, 0.2, 0.3});
  EXPECT_EQ(s.name(), "demo");
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[1], 0.2);
  EXPECT_DOUBLE_EQ(s.time_at(0), 100.0);
  EXPECT_DOUBLE_EQ(s.time_at(2), 120.0);
}

TEST(TimeSeries, IndexAtOrBefore) {
  TimeSeries s("x", 100.0, 10.0, {1.0, 2.0, 3.0});
  EXPECT_EQ(s.index_at_or_before(99.0), TimeSeries::npos);
  EXPECT_EQ(s.index_at_or_before(100.0), 0u);
  EXPECT_EQ(s.index_at_or_before(109.9), 0u);
  EXPECT_EQ(s.index_at_or_before(110.0), 1u);
  EXPECT_EQ(s.index_at_or_before(125.0), 2u);
  EXPECT_EQ(s.index_at_or_before(1e9), 2u);  // clamps to last sample
}

TEST(TimeSeries, IndexAtOrBeforeEmpty) {
  TimeSeries s("x", 0.0, 1.0);
  EXPECT_EQ(s.index_at_or_before(5.0), TimeSeries::npos);
}

TEST(TimeSeries, Slice) {
  TimeSeries s("x", 0.0, 2.0, {0.0, 1.0, 2.0, 3.0, 4.0});
  const TimeSeries mid = s.slice(1, 3);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_DOUBLE_EQ(mid[0], 1.0);
  EXPECT_DOUBLE_EQ(mid.start(), 2.0);
  const TimeSeries tail = s.slice(3, 100);
  EXPECT_EQ(tail.size(), 2u);
  const TimeSeries past = s.slice(9, 2);
  EXPECT_TRUE(past.empty());
}

TEST(TimeSeries, PushAndClear) {
  TimeSeries s("x", 0.0, 1.0);
  s.push_back(0.5);
  s.push_back(0.6);
  EXPECT_EQ(s.size(), 2u);
  s.clear();
  EXPECT_TRUE(s.empty());
}

// ---------------------------------------------------------------------------
// Autocorrelation

TEST(Acf, LagZeroIsOne) {
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform());
  EXPECT_NEAR(autocorrelation(xs, 0), 1.0, 1e-12);
}

TEST(Acf, BoundedByOne) {
  Rng rng(2);
  const auto xs = generate_ar1(rng, 0.9, 2000);
  for (std::size_t k = 0; k < 50; ++k) {
    const double r = autocorrelation(xs, k);
    EXPECT_LE(std::abs(r), 1.0 + 1e-12) << "lag " << k;
  }
}

TEST(Acf, WhiteNoiseNearZero) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(sample_normal(rng));
  for (std::size_t k : {1u, 5u, 20u}) {
    EXPECT_NEAR(autocorrelation(xs, k), 0.0, 0.03) << "lag " << k;
  }
}

TEST(Acf, Ar1MatchesTheory) {
  // AR(1) with coefficient phi has ACF(k) = phi^k.
  Rng rng(4);
  const double phi = 0.8;
  const auto xs = generate_ar1(rng, phi, 100000);
  for (std::size_t k : {1u, 2u, 3u, 5u}) {
    EXPECT_NEAR(autocorrelation(xs, k), std::pow(phi, k), 0.03)
        << "lag " << k;
  }
}

TEST(Acf, ConstantSeriesIsZero) {
  const std::vector<double> xs(100, 3.14);
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 1), 0.0);
  const auto all = autocorrelations(xs, 10);
  for (double r : all) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(Acf, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(autocorrelation(std::span<const double>{}, 1), 0.0);
  const std::vector<double> one = {1.0};
  EXPECT_DOUBLE_EQ(autocorrelation(one, 0), 0.0);
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(autocorrelation(two, 5), 0.0);  // lag >= n
}

TEST(Acf, VectorAgreesWithScalar) {
  Rng rng(5);
  const auto xs = generate_ar1(rng, 0.7, 3000);
  const auto all = autocorrelations(xs, 30);
  ASSERT_EQ(all.size(), 31u);
  for (std::size_t k = 0; k <= 30; ++k) {
    EXPECT_NEAR(all[k], autocorrelation(xs, k), 1e-12);
  }
}

TEST(Acf, MaxLagClampedToSeries) {
  const std::vector<double> xs = {1.0, 2.0, 1.0, 2.0};
  const auto all = autocorrelations(xs, 100);
  EXPECT_EQ(all.size(), 4u);  // lags 0..3
}

TEST(Acf, DecaySummary) {
  Rng rng(6);
  const auto xs = generate_ar1(rng, 0.95, 20000);
  const AcfDecay d = acf_decay(xs, 200, 0.2);
  EXPECT_EQ(d.lags_computed, 201u);
  // AR(1) 0.95: 0.95^k < 0.2 at k ~ 32.
  EXPECT_GT(d.first_below, 10u);
  EXPECT_LT(d.first_below, 80u);
}

// ---------------------------------------------------------------------------
// R/S analysis

TEST(RsAnalysis, RescaledRangeHandComputed) {
  // xs = {1, 2}: mean 1.5, sd 0.5; cumulative mean-adjusted sums W = {-.5, 0}
  // (plus W_0 = 0), range = 0.5, R/S = 1.
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_NEAR(rescaled_range(xs), 1.0, 1e-12);
}

TEST(RsAnalysis, RescaledRangeDegenerate) {
  const std::vector<double> one = {1.0};
  EXPECT_DOUBLE_EQ(rescaled_range(one), 0.0);
  const std::vector<double> flat = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(rescaled_range(flat), 0.0);
}

TEST(RsAnalysis, RescaledRangePositiveAndScaleFree) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 256; ++i) xs.push_back(sample_normal(rng));
  const double rs1 = rescaled_range(xs);
  EXPECT_GT(rs1, 0.0);
  // R/S is invariant under affine transforms of the data.
  std::vector<double> scaled;
  for (double x : xs) scaled.push_back(3.0 * x + 10.0);
  EXPECT_NEAR(rescaled_range(scaled), rs1, 1e-9);
}

TEST(RsAnalysis, PoxPointsCoverScales) {
  Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 4096; ++i) xs.push_back(sample_normal(rng));
  const auto points = pox_points(xs);
  EXPECT_GT(points.size(), 50u);
  double min_d = 1e9, max_d = -1e9;
  for (const auto& p : points) {
    min_d = std::min(min_d, p.log10_d);
    max_d = std::max(max_d, p.log10_d);
  }
  EXPECT_NEAR(min_d, std::log10(8.0), 1e-9);
  EXPECT_GE(max_d, std::log10(1024.0) - 1e-9);
}

TEST(RsAnalysis, PoxPointsEmptyForShortSeries) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_TRUE(pox_points(xs).empty());
}

TEST(RsAnalysis, WhiteNoiseHurstNearHalf) {
  Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 16384; ++i) xs.push_back(sample_normal(rng));
  const HurstEstimate est = estimate_hurst_rs(xs);
  EXPECT_NEAR(est.hurst, 0.5, 0.08);
  EXPECT_GT(est.r_squared, 0.9);
}

struct HurstCase {
  double h;
  double tolerance;
};

class HurstRecovery : public ::testing::TestWithParam<HurstCase> {};

TEST_P(HurstRecovery, RsEstimatorRecoversFgnTarget) {
  const auto [h, tol] = GetParam();
  Rng rng(static_cast<std::uint64_t>(h * 1000));
  const auto xs = generate_fgn(rng, h, 8192);
  const HurstEstimate est = estimate_hurst_rs(xs);
  EXPECT_NEAR(est.hurst, h, tol) << "target H " << h;
  EXPECT_GT(est.hurst, 0.0);
  EXPECT_LT(est.hurst, 1.1);
}

TEST_P(HurstRecovery, AggVarEstimatorRecoversFgnTarget) {
  const auto [h, tol] = GetParam();
  Rng rng(static_cast<std::uint64_t>(h * 1000) + 1);
  const auto xs = generate_fgn(rng, h, 8192);
  const HurstEstimate est = estimate_hurst_aggvar(xs);
  EXPECT_NEAR(est.hurst, h, tol + 0.05) << "target H " << h;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HurstRecovery,
                         ::testing::Values(HurstCase{0.5, 0.08},
                                           HurstCase{0.6, 0.08},
                                           HurstCase{0.7, 0.08},
                                           HurstCase{0.8, 0.08},
                                           HurstCase{0.9, 0.10}),
                         [](const auto& info) {
                           return "H" + std::to_string(static_cast<int>(
                                            info.param.h * 100));
                         });

TEST(RsAnalysis, EstimateDegenerateSeries) {
  const std::vector<double> flat(1000, 1.0);
  const HurstEstimate est = estimate_hurst_rs(flat);
  EXPECT_EQ(est.num_points, 0u);
  EXPECT_DOUBLE_EQ(est.hurst, 0.0);
}

TEST(RsAnalysis, Ar1IsShortMemoryDespiteHighAcf) {
  // AR(1) has exponentially decaying correlations: its asymptotic H is 0.5
  // even though lag-1 ACF is 0.9.  At finite length the estimate is biased
  // upward, but must stay clearly below a genuinely long-memory series.
  Rng rng(10);
  const auto ar1 = generate_ar1(rng, 0.9, 16384);
  const auto fgn = generate_fgn(rng, 0.9, 8192);
  EXPECT_LT(estimate_hurst_rs(ar1).hurst, estimate_hurst_rs(fgn).hurst);
}

// ---------------------------------------------------------------------------
// Aggregation

TEST(Aggregate, BlockMeans) {
  const std::vector<double> xs = {1.0, 3.0, 5.0, 7.0, 9.0, 11.0};
  const auto agg = aggregate_series(xs, 2);
  ASSERT_EQ(agg.size(), 3u);
  EXPECT_DOUBLE_EQ(agg[0], 2.0);
  EXPECT_DOUBLE_EQ(agg[1], 6.0);
  EXPECT_DOUBLE_EQ(agg[2], 10.0);
}

TEST(Aggregate, DropsPartialTrailingBlock) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(aggregate_series(xs, 2).size(), 2u);
  EXPECT_EQ(aggregate_series(xs, 3).size(), 1u);
  EXPECT_EQ(aggregate_series(xs, 6).size(), 0u);
}

TEST(Aggregate, IdentityAtLevelOne) {
  const std::vector<double> xs = {0.5, 0.7, 0.2};
  const auto agg = aggregate_series(xs, 1);
  EXPECT_EQ(agg, xs);
}

TEST(Aggregate, PreservesGrandMean) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 900; ++i) xs.push_back(rng.uniform());
  const auto agg = aggregate_series(xs, 30);
  EXPECT_NEAR(mean(agg), mean(xs), 1e-12);
}

TEST(Aggregate, TimeSeriesMetadata) {
  const TimeSeries s("host/load", 100.0, 10.0,
                     std::vector<double>(60, 0.5));
  const TimeSeries agg = aggregate_series(s, 30);
  EXPECT_EQ(agg.size(), 2u);
  EXPECT_DOUBLE_EQ(agg.period(), 300.0);
  EXPECT_DOUBLE_EQ(agg.start(), 100.0);
  EXPECT_NE(agg.name().find("agg30"), std::string::npos);
}

TEST(Aggregate, VarianceTimeMonotoneForWhiteNoise) {
  Rng rng(12);
  std::vector<double> xs;
  for (int i = 0; i < 32768; ++i) xs.push_back(sample_normal(rng));
  const auto points = variance_time(xs);
  ASSERT_GE(points.size(), 5u);
  EXPECT_EQ(points.front().m, 1u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].variance, points[i - 1].variance);
  }
  // White noise: Var(X^(m)) = Var(X)/m.
  for (const auto& p : points) {
    EXPECT_NEAR(p.variance * static_cast<double>(p.m), points[0].variance,
                0.25 * points[0].variance)
        << "m=" << p.m;
  }
}

TEST(Aggregate, SelfSimilarVarianceDecaysSlowerThanWhiteNoise) {
  Rng rng(13);
  const auto fgn = generate_fgn(rng, 0.85, 8192);
  const auto points = variance_time(fgn);
  ASSERT_GE(points.size(), 4u);
  const auto& last = points.back();
  // Var should decay ~ m^(2H-2) = m^-0.3, much slower than m^-1.
  const double white_noise_prediction =
      points[0].variance / static_cast<double>(last.m);
  EXPECT_GT(last.variance, 3.0 * white_noise_prediction);
}

// ---------------------------------------------------------------------------
// Fractional Gaussian noise

TEST(Fgn, AutocovarianceBasics) {
  EXPECT_DOUBLE_EQ(fgn_autocovariance(0.7, 0), 1.0);
  // H = 0.5 is white noise: zero autocovariance at all positive lags.
  for (std::size_t k : {1u, 2u, 10u}) {
    EXPECT_NEAR(fgn_autocovariance(0.5, k), 0.0, 1e-12);
  }
  // Long-memory: positive, decaying covariance.
  EXPECT_GT(fgn_autocovariance(0.8, 1), 0.0);
  EXPECT_GT(fgn_autocovariance(0.8, 1), fgn_autocovariance(0.8, 10));
  // Anti-persistent (H < 0.5): negative lag-1 covariance.
  EXPECT_LT(fgn_autocovariance(0.3, 1), 0.0);
}

TEST(Fgn, UnitVarianceAndZeroMean) {
  Rng rng(14);
  const auto xs = generate_fgn(rng, 0.75, 4096);
  EXPECT_NEAR(mean(xs), 0.0, 0.15);
  EXPECT_NEAR(variance(xs), 1.0, 0.25);
}

TEST(Fgn, SampleAcfMatchesTheory) {
  Rng rng(15);
  const auto xs = generate_fgn(rng, 0.8, 8192);
  for (std::size_t k : {1u, 2u, 4u}) {
    EXPECT_NEAR(autocorrelation(xs, k), fgn_autocovariance(0.8, k), 0.06)
        << "lag " << k;
  }
}

TEST(Fgn, HalfIsWhiteNoise) {
  Rng rng(16);
  const auto xs = generate_fgn(rng, 0.5, 4096);
  EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.05);
}

TEST(Fgn, DeterministicGivenSeed) {
  Rng a(17), b(17);
  const auto xs = generate_fgn(a, 0.7, 64);
  const auto ys = generate_fgn(b, 0.7, 64);
  EXPECT_EQ(xs, ys);
}

TEST(Fgn, SizeZeroAndOne) {
  Rng rng(18);
  EXPECT_TRUE(generate_fgn(rng, 0.7, 0).empty());
  EXPECT_EQ(generate_fgn(rng, 0.7, 1).size(), 1u);
}

TEST(Ar1, VarianceMatchesTheory) {
  Rng rng(19);
  const double phi = 0.6;
  const auto xs = generate_ar1(rng, phi, 100000);
  // Stationary variance of AR(1): 1 / (1 - phi^2).
  EXPECT_NEAR(variance(xs), 1.0 / (1.0 - phi * phi), 0.1);
}

}  // namespace
}  // namespace nws

// Tests for the shard-per-core service: hash routing, byte-identical
// responses across shard counts (in-process and over pipelined TCP),
// segmented journal restart + reshard migration, STATS drop accounting,
// PUTB idempotence, and concurrent multi-client traffic (the TSan target
// for the dispatcher/worker architecture).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "nws/client.hpp"
#include "nws/server.hpp"
#include "nws/sharded_service.hpp"
#include "obs/metrics.hpp"

namespace nws {
namespace {

/// Extracts the value of one exposition line ("name value") from a
/// Prometheus text dump; -1 when the metric is absent.
double metric_value(const std::string& exposition, const std::string& name) {
  std::size_t pos = 0;
  const std::string needle = name + " ";
  while ((pos = exposition.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || exposition[pos - 1] == '\n') {
      return std::atof(exposition.c_str() + pos + needle.size());
    }
    pos += needle.size();
  }
  return -1.0;
}

namespace fs = std::filesystem;

/// The request script the parity tests replay: covers every verb, both
/// put flavours plus batches, duplicates, out-of-order samples, unknown
/// series, malformed input, and enough distinct series to span shards.
std::vector<std::string> parity_script() {
  std::vector<std::string> lines;
  const char* series[] = {"thing1/cpu", "thing2/cpu", "conundrum/cpu",
                          "beowulf/cpu", "gremlin/cpu", "kongo/cpu"};
  for (int round = 0; round < 30; ++round) {
    for (const char* s : series) {
      const double t = 10.0 * (round + 1);
      lines.push_back("PUT " + std::string(s) + " " + std::to_string(t) +
                      " 0." + std::to_string(25 + (round * 7) % 70));
    }
  }
  for (const char* s : series) {
    lines.push_back("FORECAST " + std::string(s));
    lines.push_back("VALUES " + std::string(s) + " 5");
    lines.push_back("STATS " + std::string(s));
  }
  lines.push_back("PUTS thing1/cpu 1 400 0.5");
  lines.push_back("PUTS thing1/cpu 1 410 0.5");       // seq dup
  lines.push_back("PUTS thing1/cpu 2 395 0.5");       // time dup
  lines.push_back("PUT thing2/cpu 5 0.5");            // out of order
  lines.push_back("PUTB kongo/cpu 3 1 500 0.5 510 0.625 520 0.75");
  lines.push_back("PUTB kongo/cpu 3 1 500 0.5 510 0.625 520 0.75");  // replay
  lines.push_back("PUTB kongo/cpu 2 4 530 0.5 525 0.75");  // one stale dup
  lines.push_back("FORECAST nobody/cpu");             // unknown series
  lines.push_back("VALUES nobody/cpu 3");
  lines.push_back("STATS nobody/cpu");
  lines.push_back("SERIES");
  lines.push_back("STATS");
  lines.push_back("PING");
  lines.push_back("BOGUS request");                   // malformed
  return lines;
}

TEST(ShardHash, StableAndSpreadsSeries) {
  // The journal segment layout depends on this hash staying put.
  EXPECT_EQ(ShardedForecastService::hash_series("a"),
            ShardedForecastService::hash_series("a"));
  ShardedForecastService svc(8, 64, {}, {});
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 256; ++i) {
    ++hits[svc.shard_of("host" + std::to_string(i) + "/cpu")];
  }
  // FNV-1a over 256 distinct names must touch most of 8 shards; an empty
  // shard or a >3x overload would mean the routing is degenerate.
  for (int k = 0; k < 8; ++k) {
    EXPECT_GT(hits[k], 0) << "shard " << k << " never hit";
    EXPECT_LT(hits[k], 96) << "shard " << k << " overloaded";
  }
}

TEST(ShardParity, ResponsesByteIdenticalAcrossShardCounts) {
  ServerConfig one;
  one.shards = 1;
  ServerConfig eight;
  eight.shards = 8;
  NwsServer s1(one);
  NwsServer s8(eight);
  ASSERT_EQ(s1.shard_count(), 1u);
  ASSERT_EQ(s8.shard_count(), 8u);
  for (const std::string& line : parity_script()) {
    EXPECT_EQ(s1.handle_line(line), s8.handle_line(line)) << line;
  }
}

/// Sends `wire` in one write over a fresh loopback connection and reads
/// until `expected_lines` newline-terminated responses arrive.
std::string pipeline_exchange(std::uint16_t port, const std::string& wire,
                              std::size_t expected_lines) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t w =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    EXPECT_GT(w, 0) << "send failed";
    if (w <= 0) break;
    sent += static_cast<std::size_t>(w);
  }
  std::string rx;
  char chunk[4096];
  while (static_cast<std::size_t>(
             std::count(rx.begin(), rx.end(), '\n')) < expected_lines) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    EXPECT_GT(n, 0) << "connection closed before all responses arrived";
    if (n <= 0) break;
    rx.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return rx;
}

TEST(ShardParity, PipelinedTcpResponsesOrderedAndByteIdentical) {
  // One buffered write carrying the whole script: shards finish out of
  // order, the per-connection slots must put responses back in request
  // order, and the bytes must match the single-shard server exactly.
  const std::vector<std::string> script = parity_script();
  std::string wire;
  for (const std::string& line : script) {
    wire += line;
    wire += '\n';
  }
  ServerConfig one;
  one.shards = 1;
  ServerConfig eight;
  eight.shards = 8;
  NwsServer s1(one);
  NwsServer s8(eight);
  const std::uint16_t p1 = s1.start(0);
  const std::uint16_t p8 = s8.start(0);
  ASSERT_NE(p1, 0);
  ASSERT_NE(p8, 0);
  const std::string r1 = pipeline_exchange(p1, wire, script.size());
  const std::string r8 = pipeline_exchange(p8, wire, script.size());
  EXPECT_EQ(r1, r8);
  s1.stop();
  s8.stop();
}

class ShardJournal : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nwscpu_shard_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ServerConfig config(std::size_t shards, std::size_t group = 16) {
    ServerConfig cfg;
    cfg.memory_capacity = 1024;
    cfg.journal_path = dir_ / "svc.journal";
    cfg.shards = shards;
    cfg.journal_group_size = group;
    return cfg;
  }

  static void feed(NwsServer& server, std::size_t per_series) {
    for (std::size_t i = 1; i <= per_series; ++i) {
      for (int s = 0; s < 5; ++s) {
        const std::string line =
            "PUT host" + std::to_string(s) + "/cpu " +
            std::to_string(10.0 * static_cast<double>(i)) + " 0.5";
        ASSERT_EQ(server.handle_line(line), "OK");
      }
    }
  }

  static std::vector<std::string> forecasts(NwsServer& server) {
    std::vector<std::string> out;
    for (int s = 0; s < 5; ++s) {
      out.push_back(
          server.handle_line("FORECAST host" + std::to_string(s) + "/cpu"));
    }
    return out;
  }

  fs::path dir_;
};

TEST_F(ShardJournal, SegmentedJournalSurvivesRestart) {
  std::vector<std::string> before;
  {
    NwsServer server(config(4));
    feed(server, 40);
    before = forecasts(server);
  }  // destructor syncs every segment
  // Four segment files, no unsuffixed base file.
  EXPECT_FALSE(fs::exists(dir_ / "svc.journal"));
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(fs::exists(dir_ / ("svc.journal.shard" + std::to_string(k))))
        << "segment " << k;
  }
  NwsServer reborn(config(4));
  EXPECT_EQ(reborn.service().recovered(), 200u);
  EXPECT_EQ(reborn.service().replay_skipped(), 0u);
  EXPECT_EQ(forecasts(reborn), before);
}

TEST_F(ShardJournal, ReshardMigratesJournalLayout) {
  std::vector<std::string> before;
  {
    // Written under the legacy single-file layout...
    NwsServer server(config(1));
    feed(server, 30);
    before = forecasts(server);
  }
  EXPECT_TRUE(fs::exists(dir_ / "svc.journal"));
  {
    // ...restarted with 4 shards: lossless recovery, layout migrated.
    NwsServer server(config(4));
    EXPECT_EQ(server.service().recovered(), 150u);
    EXPECT_EQ(forecasts(server), before);
    EXPECT_FALSE(fs::exists(dir_ / "svc.journal"))
        << "legacy file must be removed after migration";
  }
  {
    // And back down to 2 shards: segments re-routed again.
    NwsServer server(config(2));
    EXPECT_EQ(server.service().recovered(), 150u);
    EXPECT_EQ(forecasts(server), before);
    EXPECT_FALSE(fs::exists(dir_ / "svc.journal.shard2"));
    EXPECT_FALSE(fs::exists(dir_ / "svc.journal.shard3"));
  }
}

TEST_F(ShardJournal, StatsSurfacesReplaySkippedAfterTornJournal) {
  // A crash-torn single-shard journal: two good records around two lines
  // replay cannot parse.  The damage must be visible on the wire — the
  // fifth STATS number — not just in the C++ accessor.
  {
    std::ofstream out(dir_ / "svc.journal", std::ios::trunc);
    out << "host/cpu 10 0.5\n"
        << "!! not a journal record !!\n"
        << "host/cpu 20 0.6\n"
        << "host/cpu 3";  // torn tail
  }
  NwsServer server(config(1));
  EXPECT_EQ(server.service().recovered(), 2u);
  EXPECT_EQ(server.service().replay_skipped(), 2u);
  EXPECT_EQ(server.handle_line("STATS"),
            "OK 1 2 2 0 2 role=primary epoch=1 repl_lag=0");
  // The per-series form does not attribute replay damage.
  EXPECT_EQ(server.handle_line("STATS host/cpu"), "OK 1 2 2 0 0");
}

TEST(ShardServer, MetricsVerbReportsPerVerbCountsOnLiveServer) {
  // The acceptance scenario: a live sharded server, real traffic through
  // the TCP front end, then one METRICS scrape showing per-verb request
  // counts and latency histogram series.  The registry is process-global,
  // so assert deltas against a pre-traffic scrape rather than absolutes.
  obs::set_metrics_enabled(true);
  ServerConfig cfg;
  cfg.shards = 4;
  NwsServer server(cfg);
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  NwsClient client;
  ASSERT_TRUE(client.connect(port));

  const auto before = client.metrics();
  ASSERT_TRUE(before.has_value());
  const double put_before =
      std::max(0.0, metric_value(*before, "nws_server_requests_total"
                                          "{verb=\"PUT\"}"));
  const double fc_before =
      std::max(0.0, metric_value(*before, "nws_server_requests_total"
                                          "{verb=\"FORECAST\"}"));

  // 64 PUTs per series: latency timings are sampled 1-in-64 per worker
  // thread, so 64 consecutive requests on one shard guarantee at least
  // one histogram sample no matter the tick phase.
  for (int i = 1; i <= 64; ++i) {
    ASSERT_TRUE(client.put("obs/a/cpu", {10.0 * i, 0.5}));
    ASSERT_TRUE(client.put("obs/b/cpu", {10.0 * i, 0.7}));
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.forecast("obs/a/cpu").has_value());
  }

  const auto after = client.metrics();
  ASSERT_TRUE(after.has_value());
  EXPECT_DOUBLE_EQ(metric_value(*after, "nws_server_requests_total"
                                        "{verb=\"PUT\"}"),
                   put_before + 128.0);
  EXPECT_DOUBLE_EQ(metric_value(*after, "nws_server_requests_total"
                                        "{verb=\"FORECAST\"}"),
                   fc_before + 5.0);
  // Latency histograms expose cumulative buckets and a (sampled) count.
  EXPECT_NE(after->find("nws_server_request_seconds_bucket{verb=\"PUT\",le="),
            std::string::npos);
  EXPECT_GE(metric_value(*after, "nws_server_request_seconds_count"
                                 "{verb=\"PUT\"}"),
            1.0);
  // Shard queue gauges and the connection gauge are registered too.
  EXPECT_NE(after->find("nws_shard_queue_depth{shard=\"0\"}"),
            std::string::npos);
  EXPECT_GE(metric_value(*after, "nws_server_connections"), 1.0);

  // In-process handle_line frames the same exposition.
  const std::string framed = server.handle_line("METRICS");
  EXPECT_EQ(framed.rfind("OK ", 0), 0u);
  const auto body = parse_metrics_response(framed);
  ASSERT_TRUE(body.has_value());
  EXPECT_NE(body->find("nws_server_requests_total{verb=\"METRICS\"}"),
            std::string::npos);

  client.disconnect();
  server.stop();
}

TEST_F(ShardJournal, GroupCommitDurableAfterStop) {
  // Fewer appends than the group size: nothing would hit disk without the
  // drain/stop commits.
  {
    NwsServer server(config(2, /*group=*/1024));
    ASSERT_EQ(server.handle_line("PUT a/cpu 10 0.5"), "OK");
    ASSERT_EQ(server.handle_line("PUT b/cpu 10 0.5"), "OK");
  }
  NwsServer reborn(config(2, 1024));
  EXPECT_EQ(reborn.service().recovered(), 2u);
}

TEST(ShardStats, CountsDropsAndTotalsPerSeries) {
  NwsServer server;
  EXPECT_EQ(server.handle_line("STATS"),
            "OK 0 0 0 0 0 role=primary epoch=1 repl_lag=0");
  EXPECT_EQ(server.handle_line("PUT host/cpu 10 0.5"), "OK");
  EXPECT_EQ(server.handle_line("PUT host/cpu 20 0.6"), "OK");
  EXPECT_EQ(server.handle_line("PUT host/cpu 15 0.7"),
            "ERR out-of-order measurement");
  EXPECT_EQ(server.handle_line("PUT other/cpu 10 0.5"), "OK");
  // series retained appended dropped
  EXPECT_EQ(server.handle_line("STATS"),
            "OK 2 3 3 1 0 role=primary epoch=1 repl_lag=0");
  EXPECT_EQ(server.handle_line("STATS host/cpu"), "OK 1 2 2 1 0");
  EXPECT_EQ(server.handle_line("STATS other/cpu"), "OK 1 1 1 0 0");
  EXPECT_EQ(server.handle_line("STATS nobody/cpu"), "ERR unknown series");
}

TEST(ShardStats, DroppedCountSurvivesRetentionEviction) {
  // A tiny store: appended keeps counting past eviction, retained is
  // bounded, dropped counts every out-of-order rejection.
  NwsServer server(/*memory_capacity=*/4);
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(server.handle_line("PUT host/cpu " + std::to_string(10 * i) +
                                 " 0.5"),
              "OK");
  }
  EXPECT_EQ(server.handle_line("PUT host/cpu 5 0.5"),
            "ERR out-of-order measurement");
  EXPECT_EQ(server.handle_line("STATS host/cpu"), "OK 1 4 10 1 0");
}

TEST(ShardServer, PutBatchAppliesDedupsAndDrops) {
  NwsServer server;
  EXPECT_EQ(server.handle_line("PUTB host/cpu 3 1 10 0.5 20 0.6 30 0.7"),
            "OK 3 0 0");
  // Full replay: every sample already applied.
  EXPECT_EQ(server.handle_line("PUTB host/cpu 3 1 10 0.5 20 0.6 30 0.7"),
            "OK 0 3 0");
  // Overlapping continuation: seq 3 is a dup, 4 and 5 apply.
  EXPECT_EQ(server.handle_line("PUTB host/cpu 3 3 30 0.7 40 0.8 50 0.9"),
            "OK 2 1 0");
  // A fresh sequence with a stale timestamp acks as a duplicate — exactly
  // the PUTS rule, which cannot tell late data from a replay after a
  // restart — so a replayed outbox never double-counts.
  EXPECT_EQ(server.handle_line("PUTS host/cpu 6 60 0.5"), "OK");
  EXPECT_EQ(server.handle_line("PUTB host/cpu 2 7 55 0.5 70 0.5"),
            "OK 1 1 0");
  EXPECT_EQ(server.handle_line("STATS host/cpu"), "OK 1 7 7 0 0");
}

TEST(ShardServer, RespectsShardsEnvOverride) {
  ::setenv("NWSCPU_SHARDS", "3", 1);
  NwsServer server;  // ServerConfig::shards == 0 -> consult the env
  EXPECT_EQ(server.shard_count(), 3u);
  ::unsetenv("NWSCPU_SHARDS");
  ServerConfig cfg;
  cfg.shards = 5;
  NwsServer pinned(cfg);
  EXPECT_EQ(pinned.shard_count(), 5u);
}

TEST(ShardServer, ConcurrentClientsSeeExactCounts) {
  // The TSan target: 4 client threads hammer a 4-shard server over TCP
  // (distinct series per thread, so they exercise distinct shard queues),
  // while a fifth repeatedly reads cross-shard totals.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  ServerConfig cfg;
  cfg.shards = 4;
  NwsServer server(cfg);
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([port, w] {
      NwsClient client;
      ASSERT_TRUE(client.connect(port));
      const std::string series = "writer" + std::to_string(w) + "/cpu";
      std::vector<Measurement> batch;
      for (int i = 1; i <= kPerThread; ++i) {
        if (i % 2 == 0) {
          EXPECT_TRUE(client.put(series, {10.0 * i, 0.5}));
        } else {
          batch.assign(1, Measurement{10.0 * i, 0.5});
          const auto reply = client.put_batch(
              series, batch, static_cast<std::uint64_t>(i));
          ASSERT_TRUE(reply.has_value());
          EXPECT_EQ(reply->applied, 1u);
        }
        if (i % 50 == 0) (void)client.forecast(series);
      }
      client.disconnect();
    });
  }
  std::thread reader([port] {
    NwsClient client;
    ASSERT_TRUE(client.connect(port));
    for (int i = 0; i < 50; ++i) {
      (void)client.stats();
      (void)client.series();
    }
    client.disconnect();
  });
  for (std::thread& t : writers) t.join();
  reader.join();

  NwsClient client;
  ASSERT_TRUE(client.connect(port));
  const auto stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->series, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats->appended,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats->dropped, 0u);
  client.disconnect();
  server.stop();
}

}  // namespace
}  // namespace nws

// Integration tests: shortened (2-hour) versions of the paper's
// experiments asserting the *shape* of every headline result end-to-end —
// measurement-method pathologies, prediction-error magnitudes, the
// long-range-dependence findings, and the forecast service plumbing.
//
// These simulate hours of host time and take a few seconds each; they are
// the regression net for the table/figure bench binaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "experiments/analysis.hpp"
#include "experiments/hosts.hpp"
#include "experiments/runner.hpp"
#include "nws/forecast_service.hpp"
#include "sensors/sim_sensors.hpp"
#include "tsa/aggregate.hpp"
#include "tsa/autocorrelation.hpp"
#include "tsa/rs_analysis.hpp"

namespace nws {
namespace {

constexpr std::uint64_t kSeed = 42;

RunnerConfig two_hour_config() {
  RunnerConfig cfg;
  cfg.duration = 2.0 * 3600.0;
  return cfg;
}

const HostTrace& trace_of(UcsdHost which) {
  // Traces are expensive; build each host's once and share across tests.
  static auto* cache = new std::map<UcsdHost, HostTrace>();
  auto it = cache->find(which);
  if (it == cache->end()) {
    auto host = make_ucsd_host(which, kSeed);
    it = cache->emplace(which, run_experiment(*host, two_hour_config()))
             .first;
  }
  return it->second;
}

// --- Table 1 shape ---------------------------------------------------------

TEST(Table1Shape, OrdinaryHostsMeasureWithinSchedulingGrade) {
  // "An error of 10% or less ... is considered useful for scheduling"; we
  // allow some slack on the short 2 h run.
  for (UcsdHost h : {UcsdHost::kThing1, UcsdHost::kGremlin}) {
    const MethodTriple err = measurement_error(trace_of(h));
    EXPECT_LT(err.load_average, 0.13) << host_name(h);
    EXPECT_LT(err.vmstat, 0.13) << host_name(h);
    EXPECT_LT(err.hybrid, 0.13) << host_name(h);
  }
}

TEST(Table1Shape, ConundrumCheapMethodsFailHybridSucceeds) {
  const MethodTriple err = measurement_error(trace_of(UcsdHost::kConundrum));
  EXPECT_GT(err.load_average, 0.25);
  EXPECT_GT(err.vmstat, 0.25);
  EXPECT_LT(err.hybrid, 0.15);
  EXPECT_GT(err.load_average, 3.0 * err.hybrid);
}

TEST(Table1Shape, KongoHybridFailsCheapMethodsSucceed) {
  const MethodTriple err = measurement_error(trace_of(UcsdHost::kKongo));
  EXPECT_GT(err.hybrid, 0.25);
  EXPECT_LT(err.load_average, 0.15);
  EXPECT_LT(err.vmstat, 0.15);
  EXPECT_GT(err.hybrid, 2.0 * err.load_average);
}

// --- Table 2 shape ---------------------------------------------------------

TEST(Table2Shape, ForecastingAddsLittleOverMeasurement) {
  for (UcsdHost h : all_ucsd_hosts()) {
    const MethodTriple fc = true_forecast_error(trace_of(h));
    const MethodTriple me = measurement_error(trace_of(h));
    // True forecast error tracks measurement error within a few points.
    EXPECT_NEAR(fc.load_average, me.load_average, 0.05) << host_name(h);
    EXPECT_NEAR(fc.vmstat, me.vmstat, 0.05) << host_name(h);
    EXPECT_NEAR(fc.hybrid, me.hybrid, 0.05) << host_name(h);
  }
}

// --- Table 3 shape ---------------------------------------------------------

TEST(Table3Shape, OneStepPredictionErrorBelowFivePercent) {
  for (UcsdHost h : all_ucsd_hosts()) {
    const MethodTriple err = prediction_error(trace_of(h));
    EXPECT_LT(err.load_average, 0.05) << host_name(h);
    EXPECT_LT(err.vmstat, 0.06) << host_name(h);
    EXPECT_LT(err.hybrid, 0.06) << host_name(h);
  }
}

TEST(Table3Shape, PredictionErrorFarBelowMeasurementErrorOnPathologies) {
  // The paper's first conclusion: the dominant error source is measuring,
  // not predicting the next measurement.  Sharpest on the two pathological
  // hosts, whose readings are stable but wrong.
  for (UcsdHost h : {UcsdHost::kConundrum, UcsdHost::kKongo}) {
    const double worst_measurement = std::max(
        {measurement_error(trace_of(h)).load_average,
         measurement_error(trace_of(h)).vmstat});
    const double worst_prediction = std::max(
        {prediction_error(trace_of(h)).load_average,
         prediction_error(trace_of(h)).vmstat});
    EXPECT_LT(worst_prediction * 5.0, worst_measurement) << host_name(h);
  }
}

// --- Table 4 / Figures 2-3 shape -------------------------------------------

TEST(Table4Shape, HurstParameterIndicatesLongRangeDependence) {
  for (UcsdHost h : {UcsdHost::kThing1, UcsdHost::kThing2}) {
    const HurstEstimate est =
        estimate_hurst_rs(trace_of(h).load_series.values());
    EXPECT_GT(est.hurst, 0.5) << host_name(h);
    EXPECT_LT(est.hurst, 1.0) << host_name(h);
    EXPECT_GT(est.r_squared, 0.85) << host_name(h);
  }
}

TEST(Table4Shape, AggregationReducesVarianceOnBusyHosts) {
  for (UcsdHost h : {UcsdHost::kThing2, UcsdHost::kBeowulf}) {
    const MethodTriple orig = series_variance(trace_of(h));
    const MethodTriple agg = aggregated_variance(trace_of(h), 30);
    EXPECT_LE(agg.load_average, orig.load_average * 1.05) << host_name(h);
    EXPECT_LE(agg.vmstat, orig.vmstat * 1.05) << host_name(h);
  }
}

TEST(Fig2Shape, AutocorrelationDecaysSlowly) {
  const auto acf =
      autocorrelations(trace_of(UcsdHost::kThing2).load_series.values(), 60);
  ASSERT_EQ(acf.size(), 61u);
  EXPECT_GT(acf[1], 0.5);   // adjacent 10 s readings strongly correlated
  EXPECT_GT(acf[30], 0.0);  // five minutes apart: still positive
}

// --- Tables 5-6 shape ------------------------------------------------------

TEST(Table5Shape, AggregatedSeriesStillPredictable) {
  for (UcsdHost h : all_ucsd_hosts()) {
    const MethodTriple err = aggregated_prediction_error(trace_of(h), 30);
    EXPECT_LT(err.load_average, 0.12) << host_name(h);
    EXPECT_LT(err.vmstat, 0.12) << host_name(h);
    EXPECT_LT(err.hybrid, 0.12) << host_name(h);
  }
}

TEST(Table6Shape, MediumTermTrueForecastsAreSchedulingGrade) {
  // 3-hour run with hourly 5-minute test processes on a well-behaved host.
  auto host = make_ucsd_host(UcsdHost::kGremlin, kSeed);
  RunnerConfig cfg;
  cfg.duration = 3.0 * 3600.0;
  cfg.run_tests = false;
  cfg.run_agg_tests = true;
  const HostTrace trace = run_experiment(*host, cfg);
  ASSERT_EQ(trace.agg_tests.size(), 3u);
  const MethodTriple err = aggregated_true_error(trace, 30);
  EXPECT_LT(err.load_average, 0.12);
  EXPECT_LT(err.vmstat, 0.12);
}

TEST(Table6Shape, KongoHybridPathologyPersistsUnderAggregation) {
  auto host = make_ucsd_host(UcsdHost::kKongo, kSeed);
  RunnerConfig cfg;
  cfg.duration = 3.0 * 3600.0;
  cfg.run_tests = false;
  cfg.run_agg_tests = true;
  const HostTrace trace = run_experiment(*host, cfg);
  const MethodTriple err = aggregated_true_error(trace, 30);
  EXPECT_GT(err.hybrid, 2.0 * err.load_average);
}

// --- End-to-end service plumbing -------------------------------------------

TEST(ServicePlumbing, ForecastServiceOverLiveSimulation) {
  auto host = make_ucsd_host(UcsdHost::kThing1, kSeed);
  LoadAvgSensor sensor(*host);
  ForecastService svc;
  host->run_for(300.0);
  for (int i = 0; i < 360; ++i) {  // one hour of 10 s epochs
    host->run_for(10.0);
    ASSERT_TRUE(svc.record("thing1/cpu", {host->now(), sensor.measure()}));
  }
  const auto f = svc.predict("thing1/cpu");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->history, 360u);
  EXPECT_GE(f->value, 0.0);
  EXPECT_LE(f->value, 1.0);
  EXPECT_LT(f->mae, 0.1);
  // The forecast must beat the neutral prior by a wide margin.
  const double truth = host->run_timed_process("check", 10.0);
  EXPECT_LT(std::abs(f->value - truth), 0.25);
}

}  // namespace
}  // namespace nws

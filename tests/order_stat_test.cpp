// Randomized equivalence tests for the incremental order-statistic windows
// (order_stat_window.hpp) and the shared-window battery forecasters.
//
// Numerical contract under test (see order_stat_window.hpp): medians and
// k-th order statistics are exact element values — bit-identical to a
// sort-based recompute — while sums (mean, trimmed mean, tail mean) are
// maintained structurally and may differ from naive left-to-right
// summation by reordering rounding, so they are compared to 1e-9.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "forecast/battery.hpp"
#include "forecast/methods.hpp"
#include "forecast/order_stat_window.hpp"
#include "util/rng.hpp"

namespace {

constexpr double kSumTol = 1e-9;

// Duplicate-heavy random value: quantised to two decimals half the time so
// the treap's multiset paths (equal keys) get real coverage.
double draw(nws::Rng& rng) {
  const double v = rng.uniform(0.0, 1.0);
  return rng.chance(0.5) ? std::round(v * 100.0) / 100.0 : v;
}

struct Brute {
  std::size_t capacity;
  std::deque<double> vals;

  void push(double x) {
    if (vals.size() == capacity) vals.pop_front();
    vals.push_back(x);
  }
  void clear() { vals.clear(); }

  [[nodiscard]] std::vector<double> sorted() const {
    std::vector<double> s(vals.begin(), vals.end());
    std::sort(s.begin(), s.end());
    return s;
  }
  [[nodiscard]] double median() const {
    const auto s = sorted();
    const std::size_t n = s.size();
    const std::size_t mid = n / 2;
    return n % 2 == 1 ? s[mid] : 0.5 * (s[mid - 1] + s[mid]);
  }
  [[nodiscard]] double trimmed_mean(std::size_t trim) const {
    auto s = sorted();
    const std::size_t n = s.size();
    const std::size_t t = std::min(trim, (n - 1) / 2);
    double acc = 0.0;
    for (std::size_t i = t; i < n - t; ++i) acc += s[i];
    return acc / static_cast<double>(n - 2 * t);
  }
  [[nodiscard]] double tail_mean(std::size_t k) const {
    const std::size_t n = vals.size();
    const std::size_t use = std::min(k, n);
    double acc = 0.0;
    for (std::size_t i = n - use; i < n; ++i) acc += vals[i];
    return acc / static_cast<double>(use);
  }
};

TEST(OrderStatWindow, MatchesBruteForceOverRandomStream) {
  nws::Rng rng(20260806);
  for (const std::size_t cap : {1u, 2u, 3u, 5u, 8u, 31u, 64u}) {
    nws::OrderStatWindow win(cap);
    Brute ref{cap, {}};
    for (std::size_t step = 0; step < 1500; ++step) {
      if (rng.chance(0.002)) {  // mixed window fills: occasional restart
        win.clear();
        ref.clear();
      }
      const double x = draw(rng);
      win.push(x);
      ref.push(x);

      ASSERT_EQ(win.size(), ref.vals.size());
      // Order statistics: exact.
      EXPECT_DOUBLE_EQ(win.median(), ref.median())
          << "cap=" << cap << " step=" << step;
      const auto s = ref.sorted();
      const std::size_t k = rng.below(s.size());
      EXPECT_DOUBLE_EQ(win.kth(k), s[k]) << "cap=" << cap << " step=" << step;
      // Sums: summation-order tolerance.
      for (const std::size_t trim : {0u, 1u, 5u}) {
        EXPECT_NEAR(win.trimmed_mean(trim), ref.trimmed_mean(trim), kSumTol)
            << "cap=" << cap << " step=" << step << " trim=" << trim;
      }
      const std::size_t tail = 1 + rng.below(cap);
      EXPECT_NEAR(win.tail_mean(tail), ref.tail_mean(tail), kSumTol)
          << "cap=" << cap << " step=" << step << " tail=" << tail;
      EXPECT_NEAR(win.mean(), ref.tail_mean(ref.vals.size()), kSumTol);
    }
  }
}

TEST(OrderStatWindow, ExtremeOutliersKeepMedianExact) {
  // Values spanning eight orders of magnitude: a regime where naive
  // incremental sums lose digits but order statistics must stay exact.
  nws::Rng rng(7);
  nws::OrderStatWindow win(31);
  Brute ref{31, {}};
  for (std::size_t step = 0; step < 2000; ++step) {
    const double x =
        rng.chance(0.1) ? rng.uniform(-1e8, 1e8) : rng.uniform(-1.0, 1.0);
    win.push(x);
    ref.push(x);
    EXPECT_DOUBLE_EQ(win.median(), ref.median()) << "step=" << step;
  }
}

TEST(SuffixOrderStat, TracksRetargetedSuffixExactly) {
  nws::Rng rng(99);
  nws::ValueRing ring(64);
  nws::SuffixOrderStat suffix(8);
  std::deque<double> history;  // everything still in the ring

  for (std::size_t step = 0; step < 4000; ++step) {
    if (rng.chance(0.05)) {
      const std::size_t len = 1 + rng.below(64);
      suffix.set_length(len, ring);
    }
    if (rng.chance(0.002)) {
      ring.clear();
      history.clear();
      suffix.reset(suffix.length());
    }
    const double x = draw(rng);
    suffix.before_push(ring, x);
    ring.push(x);
    if (history.size() == 64) history.pop_front();
    history.push_back(x);

    const std::size_t want = std::min(suffix.length(), history.size());
    ASSERT_EQ(suffix.size(), want) << "step=" << step;
    std::vector<double> tail(history.end() - static_cast<std::ptrdiff_t>(want),
                             history.end());
    std::sort(tail.begin(), tail.end());
    const std::size_t mid = want / 2;
    const double ref_median =
        want % 2 == 1 ? tail[mid] : 0.5 * (tail[mid - 1] + tail[mid]);
    EXPECT_DOUBLE_EQ(suffix.median(), ref_median) << "step=" << step;
  }
}

// The ported adaptive-window median forecaster must make bit-identical
// forecasts (and therefore identical window-size decisions) to the seed
// implementation, replicated here over a plain deque.
TEST(AdaptiveWindowForecaster, MedianKindMatchesNaiveReference) {
  struct NaiveAdaptive {
    std::size_t min_w = 0, max_w = 0, cur = 0;
    double discount = 0.95;
    std::deque<double> win = {};
    double err_small = 0, err_cur = 0, err_large = 0;
    std::size_t observed = 0;

    [[nodiscard]] double estimate(std::size_t w) const {
      const std::size_t n = win.size();
      if (n == 0) return nws::Forecaster::kInitialGuess;
      const std::size_t use = std::min(w, n);
      std::vector<double> tail(win.end() - static_cast<std::ptrdiff_t>(use),
                               win.end());
      std::sort(tail.begin(), tail.end());
      const std::size_t mid = use / 2;
      return use % 2 == 1 ? tail[mid] : 0.5 * (tail[mid - 1] + tail[mid]);
    }
    [[nodiscard]] double forecast() const { return estimate(cur); }
    void observe(double value) {
      const std::size_t small_w = std::max(min_w, cur / 2);
      const std::size_t large_w = std::min(max_w, cur * 2);
      if (observed > 0) {
        const double e_small = std::abs(estimate(small_w) - value);
        const double e_cur = std::abs(estimate(cur) - value);
        const double e_large = std::abs(estimate(large_w) - value);
        err_small = discount * err_small + (1.0 - discount) * e_small;
        err_cur = discount * err_cur + (1.0 - discount) * e_cur;
        err_large = discount * err_large + (1.0 - discount) * e_large;
        constexpr double kEps = 1e-9;
        if (err_small + kEps < err_cur && err_small <= err_large + kEps) {
          cur = small_w;
        } else if (err_large + kEps < err_cur &&
                   err_large + kEps < err_small) {
          cur = large_w;
        }
      }
      if (win.size() == max_w) win.pop_front();
      win.push_back(value);
      ++observed;
    }
  };

  nws::Rng rng(4242);
  nws::AdaptiveWindowForecaster fast(
      nws::AdaptiveWindowForecaster::Kind::kMedian, 3, 60);
  NaiveAdaptive ref{3, 60, std::clamp<std::size_t>((3 + 60) / 2, 3, 60)};

  double level = 0.7;
  for (std::size_t step = 0; step < 5000; ++step) {
    EXPECT_DOUBLE_EQ(fast.forecast(), ref.forecast()) << "step=" << step;
    EXPECT_EQ(fast.current_window(), ref.cur) << "step=" << step;
    if (rng.chance(0.01)) level = rng.uniform(0.1, 1.0);
    const double x =
        std::clamp(level + 0.05 * (rng.uniform() - 0.5), 0.0, 1.0);
    fast.observe(x);
    ref.observe(x);
    if (step == 2500) {  // reset mid-stream and keep comparing
      fast.reset();
      ref = NaiveAdaptive{3, 60, std::clamp<std::size_t>((3 + 60) / 2, 3, 60)};
    }
  }
}

// The canonical battery shares one measurement window across all sliding
// means, medians and the trimmed mean.  Sharing must not change any
// forecast relative to standalone (private-window) instances.
TEST(SharedBattery, MatchesStandaloneForecastersByName) {
  auto shared = nws::make_nws_methods();

  std::map<std::string, nws::ForecasterPtr> standalone;
  for (const std::size_t w : {5u, 10u, 20u, 30u, 60u}) {
    auto f = std::make_unique<nws::SlidingMeanForecaster>(w);
    standalone[f->name()] = std::move(f);
  }
  for (const std::size_t w : {5u, 11u, 21u, 31u}) {
    auto f = std::make_unique<nws::MedianForecaster>(w);
    standalone[f->name()] = std::move(f);
  }
  {
    auto f = std::make_unique<nws::TrimmedMeanForecaster>(21, 5);
    standalone[f->name()] = std::move(f);
  }

  nws::Rng rng(31337);
  std::size_t matched = 0;
  for (std::size_t step = 0; step < 3000; ++step) {
    const double x = draw(rng);
    for (const auto& m : shared) {
      const auto it = standalone.find(m->name());
      if (it == standalone.end()) continue;
      const bool is_median = m->name().rfind("median", 0) == 0;
      if (is_median) {
        EXPECT_DOUBLE_EQ(m->forecast(), it->second->forecast())
            << m->name() << " step=" << step;
      } else {
        EXPECT_NEAR(m->forecast(), it->second->forecast(), kSumTol)
            << m->name() << " step=" << step;
      }
      ++matched;
    }
    for (const auto& m : shared) m->observe(x);
    for (const auto& [name, f] : standalone) f->observe(x);
  }
  // 5 means + 4 medians + 1 trimmed mean compared on every step.
  EXPECT_EQ(matched, 10u * 3000u);
}

}  // namespace

// Unit tests for src/sensors: the availability equations, the simulated
// load-average/vmstat sensors, and the hybrid sensor policy.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sensors/availability.hpp"
#include "sensors/hybrid_sensor.hpp"
#include "sensors/sim_sensors.hpp"
#include "sim/workload.hpp"

namespace nws {
namespace {

// ---------------------------------------------------------------------------
// Equation 1

TEST(Equation1, KnownValues) {
  EXPECT_DOUBLE_EQ(availability_from_load(0.0), 1.0);
  EXPECT_DOUBLE_EQ(availability_from_load(1.0), 0.5);
  EXPECT_DOUBLE_EQ(availability_from_load(3.0), 0.25);
}

TEST(Equation1, MonotoneDecreasingInLoad) {
  double prev = 2.0;
  for (double load = 0.0; load < 20.0; load += 0.25) {
    const double a = availability_from_load(load);
    EXPECT_LT(a, prev);
    EXPECT_GT(a, 0.0);
    EXPECT_LE(a, 1.0);
    prev = a;
  }
}

// ---------------------------------------------------------------------------
// Equation 2

TEST(Equation2, IdleMachineFullyAvailable) {
  EXPECT_DOUBLE_EQ(
      availability_from_vmstat({.user = 0.0, .sys = 0.0, .idle = 1.0}, 0.0),
      1.0);
}

TEST(Equation2, SingleHogGivesHalf) {
  // One running CPU-bound process: idle 0, user 1, np 1 -> 0 + 1/2 + w*0.
  EXPECT_DOUBLE_EQ(
      availability_from_vmstat({.user = 1.0, .sys = 0.0, .idle = 0.0}, 1.0),
      0.5);
}

TEST(Equation2, SystemTimeWeightedByUserFraction) {
  // Gateway scenario: all system time, no user progress -> w = 0, so the
  // kernel's consumption is not promised to a new process.
  EXPECT_DOUBLE_EQ(
      availability_from_vmstat({.user = 0.0, .sys = 1.0, .idle = 0.0}, 0.0),
      0.0);
  // Mixed: user 0.5, sys 0.5, np 1 -> 0 + .5/2 + .5*.5/2 = 0.375.
  EXPECT_DOUBLE_EQ(
      availability_from_vmstat({.user = 0.5, .sys = 0.5, .idle = 0.0}, 1.0),
      0.375);
}

TEST(Equation2, ClampedToUnitInterval) {
  EXPECT_LE(
      availability_from_vmstat({.user = 1.0, .sys = 1.0, .idle = 1.0}, 0.0),
      1.0);
  EXPECT_GE(
      availability_from_vmstat({.user = 0.0, .sys = 0.0, .idle = 0.0}, 5.0),
      0.0);
}

TEST(Equation2, MoreRunningProcessesLowerAvailability) {
  const CpuFractions busy{.user = 1.0, .sys = 0.0, .idle = 0.0};
  double prev = 2.0;
  for (double np = 0.0; np <= 8.0; np += 1.0) {
    const double a = availability_from_vmstat(busy, np);
    EXPECT_LT(a, prev) << "np " << np;
    prev = a;
  }
}

// ---------------------------------------------------------------------------
// Simulated sensors

TEST(LoadAvgSensorT, MatchesEquationOnHostLoad) {
  sim::Host host({.name = "h"}, 1);
  sim::PersistentProcessConfig hog;
  host.add_workload(std::make_unique<sim::PersistentProcess>(hog, Rng(2)));
  host.run_for(600.0);
  LoadAvgSensor sensor(host);
  EXPECT_NEAR(sensor.measure(),
              availability_from_load(host.load_average()), 1e-12);
  EXPECT_NEAR(sensor.measure(), 0.5, 0.01);
  EXPECT_EQ(sensor.name(), "load_average");
}

TEST(VmstatSensorT, FirstMeasurementPrimesCounters) {
  sim::Host host({.name = "h"}, 1);
  VmstatSensor sensor(host);
  // No interval yet: reports the optimistic default.
  EXPECT_DOUBLE_EQ(sensor.measure(), 1.0);
}

TEST(VmstatSensorT, SeesIdleHost) {
  sim::Host host({.name = "h"}, 1);
  VmstatSensor sensor(host);
  (void)sensor.measure();
  host.run_for(10.0);
  EXPECT_NEAR(sensor.measure(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(sensor.last_fractions().idle, 1.0);
}

TEST(VmstatSensorT, SeesSingleHogAsHalf) {
  sim::Host host({.name = "h"}, 1);
  sim::PersistentProcessConfig hog;
  host.add_workload(std::make_unique<sim::PersistentProcess>(hog, Rng(3)));
  host.run_for(60.0);
  VmstatSensor sensor(host);
  (void)sensor.measure();
  host.run_for(10.0);
  double reading = 0.0;
  // np smoothing (EWMA) needs a few readings to converge on 1.
  for (int i = 0; i < 20; ++i) {
    host.run_for(10.0);
    reading = sensor.measure();
  }
  EXPECT_NEAR(reading, 0.5, 0.03);
  EXPECT_NEAR(sensor.smoothed_np(), 1.0, 0.05);
  EXPECT_NEAR(sensor.last_fractions().user, 1.0, 1e-9);
}

TEST(VmstatSensorT, ReactsWithinOneInterval) {
  // vmstat differences over its own interval, so (unlike the 1-minute load
  // average) a load change shows up in the very next reading.
  sim::Host host({.name = "h"}, 1);
  VmstatSensor vmstat(host);
  LoadAvgSensor load(host);
  (void)vmstat.measure();
  host.run_for(60.0);
  (void)vmstat.measure();
  // Hog appears now.
  sim::PersistentProcessConfig hog;
  host.add_workload(std::make_unique<sim::PersistentProcess>(hog, Rng(4)));
  host.run_for(10.0);
  const double vmstat_reading = vmstat.measure();
  const double load_reading = load.measure();
  // vmstat already sees the hog (user time 100% of the last interval; only
  // the np EWMA still lags), while the 1-minute load average is mostly
  // clean after 10 s.
  EXPECT_LT(vmstat_reading, 0.8);
  EXPECT_GT(load_reading, 0.85);
  EXPECT_LT(vmstat_reading, load_reading - 0.05);
}

// ---------------------------------------------------------------------------
// Hybrid sensor policy

TEST(Hybrid, ProbeScheduling) {
  HybridSensor h({.probe_period = 60.0, .probe_duration = 1.5});
  EXPECT_TRUE(h.probe_due(0.0));
  h.probe_result(0.0, 0.9, 0.9, 0.8);
  EXPECT_FALSE(h.probe_due(59.9));
  EXPECT_TRUE(h.probe_due(60.0));
  EXPECT_EQ(h.probes_run(), 1u);
}

TEST(Hybrid, SelectsMethodClosestToProbe) {
  HybridSensor h;
  h.probe_result(0.0, 0.9, /*load_reading=*/0.85, /*vmstat_reading=*/0.5);
  EXPECT_EQ(h.selected(), HybridMethod::kLoadAverage);
  h.probe_result(60.0, 0.55, /*load_reading=*/0.9, /*vmstat_reading=*/0.5);
  EXPECT_EQ(h.selected(), HybridMethod::kVmstat);
}

TEST(Hybrid, TieGoesToLoadAverage) {
  HybridSensor h;
  h.probe_result(0.0, 0.7, 0.6, 0.8);  // both off by 0.1
  EXPECT_EQ(h.selected(), HybridMethod::kLoadAverage);
}

TEST(Hybrid, BiasCorrectsSubsequentReadings) {
  // The conundrum mechanism: cheap methods read 0.5 while the probe
  // experienced ~1.0; the +0.5 bias is applied until the next probe.
  HybridSensor h;
  h.probe_result(0.0, 1.0, 0.5, 0.48);
  EXPECT_NEAR(h.bias(), 0.5, 1e-12);
  EXPECT_NEAR(h.measure(0.5, 0.48), 1.0, 1e-12);
  EXPECT_NEAR(h.measure(0.4, 0.3), 0.9, 1e-12);
}

TEST(Hybrid, NegativeBiasWorksToo) {
  HybridSensor h;
  h.probe_result(0.0, 0.3, 0.8, 0.9);
  EXPECT_NEAR(h.bias(), -0.5, 1e-12);
  EXPECT_NEAR(h.measure(0.8, 0.9), 0.3, 1e-12);
}

TEST(Hybrid, MeasurementsClampedToUnitInterval) {
  HybridSensor h;
  h.probe_result(0.0, 1.0, 0.6, 0.9);
  EXPECT_LE(h.measure(0.95, 0.2), 1.0);
  h.probe_result(60.0, 0.0, 0.4, 0.05);
  EXPECT_GE(h.measure(0.1, 0.0), 0.0);
}

TEST(Hybrid, BiasDisabledLeavesRawMethod) {
  HybridSensor h({.probe_period = 60.0, .probe_duration = 1.5,
                  .apply_bias = false});
  h.probe_result(0.0, 1.0, 0.5, 0.48);
  EXPECT_DOUBLE_EQ(h.bias(), 0.0);
  EXPECT_DOUBLE_EQ(h.measure(0.5, 0.48), 0.5);
}

TEST(Hybrid, BeforeFirstProbeUsesUnbiasedLoadAverage) {
  HybridSensor h;
  EXPECT_DOUBLE_EQ(h.measure(0.7, 0.2), 0.7);
  EXPECT_EQ(h.probes_run(), 0u);
}

// ---------------------------------------------------------------------------
// Hybrid sensor degradation: probe failures must not take the sensor down.

TEST(Hybrid, ProbeFailureDegradesAndReschedulesSooner) {
  HybridSensor h({.probe_period = 60.0, .probe_duration = 1.5,
                  .probe_retry = 10.0});
  h.probe_result(0.0, 0.9, 0.9, 0.8);
  EXPECT_FALSE(h.degraded());
  EXPECT_DOUBLE_EQ(h.confidence(), 1.0);

  h.probe_failed(60.0);
  EXPECT_TRUE(h.degraded());
  EXPECT_EQ(h.probe_failures(), 1u);
  EXPECT_DOUBLE_EQ(h.confidence(), 0.5);
  // Retries sooner than the regular period...
  EXPECT_FALSE(h.probe_due(69.9));
  EXPECT_TRUE(h.probe_due(70.0));
  // ...but keeps measuring from the cheap methods meanwhile.
  EXPECT_NO_THROW((void)h.measure(0.6, 0.5));
}

TEST(Hybrid, RepeatedProbeFailuresDropStaleBias) {
  HybridSensor h({.probe_period = 60.0, .probe_duration = 1.5,
                  .bias_drop_failures = 3});
  h.probe_result(0.0, 1.0, 0.5, 0.48);  // conundrum: +0.5 bias
  ASSERT_NEAR(h.bias(), 0.5, 1e-12);

  h.probe_failed(60.0);
  h.probe_failed(70.0);
  EXPECT_NEAR(h.bias(), 0.5, 1e-12);  // two failures: bias still trusted
  h.probe_failed(80.0);
  // Three consecutive failures: the correction is stale; fall back to the
  // raw cheap method rather than keep applying an old bias.
  EXPECT_DOUBLE_EQ(h.bias(), 0.0);
  EXPECT_DOUBLE_EQ(h.measure(0.5, 0.48), 0.5);
  EXPECT_NEAR(h.confidence(), 0.25, 1e-12);
}

TEST(Hybrid, SuccessfulProbeClearsDegradation) {
  HybridSensor h;
  h.probe_failed(0.0);
  h.probe_failed(10.0);
  ASSERT_TRUE(h.degraded());
  h.probe_result(20.0, 0.9, 0.85, 0.8);
  EXPECT_FALSE(h.degraded());
  EXPECT_DOUBLE_EQ(h.confidence(), 1.0);
  EXPECT_EQ(h.probe_failures(), 2u);  // lifetime counter keeps history
  // Regular cadence resumes.
  EXPECT_FALSE(h.probe_due(79.9));
  EXPECT_TRUE(h.probe_due(80.0));
}

TEST(Hybrid, RetryNeverSlowerThanPeriod) {
  // A retry interval longer than the period must not postpone probes.
  HybridSensor h({.probe_period = 30.0, .probe_duration = 1.5,
                  .probe_retry = 120.0});
  h.probe_failed(0.0);
  EXPECT_TRUE(h.probe_due(30.0));
}

TEST(Hybrid, EndToEndAgainstNiceSoaker) {
  // Full pipeline on a simulated conundrum: cheap sensors read ~0.5, the
  // probe reveals ~1.0, and the hybrid's bias lands its measurement near
  // the truth.
  sim::Host host({.name = "conundrum"}, 1);
  sim::PersistentProcessConfig soaker;
  soaker.nice = 19;
  host.add_workload(std::make_unique<sim::PersistentProcess>(soaker, Rng(5)));
  host.run_for(600.0);

  LoadAvgSensor load(host);
  VmstatSensor vmstat(host);
  HybridSensor hybrid;
  (void)vmstat.measure();
  host.run_for(10.0);

  const double load_reading = load.measure();
  double vmstat_reading = vmstat.measure();
  for (int i = 0; i < 20; ++i) {  // settle the np EWMA
    host.run_for(10.0);
    vmstat_reading = vmstat.measure();
  }
  ASSERT_NEAR(load_reading, 0.5, 0.05);
  ASSERT_NEAR(vmstat_reading, 0.5, 0.05);

  const double probe = host.run_timed_process("probe", 1.5);
  ASSERT_GT(probe, 0.97);
  hybrid.probe_result(host.now(), probe, load_reading, vmstat_reading);
  const double corrected = hybrid.measure(load_reading, vmstat_reading);
  EXPECT_GT(corrected, 0.95);

  const double truth = host.run_timed_process("test", 10.0);
  EXPECT_NEAR(corrected, truth, 0.05);
}

}  // namespace
}  // namespace nws

// Tests for the spectral kernels introduced for the O(n log n) TSA layer:
// the radix-2/Bluestein FFT (util/fft), the Wiener-Khinchin ACF, the
// FFT-backed periodogram, the Davies-Harte fGn generator, and the
// prefix-sum R/S machinery.  The naive direct-sum implementations stay in
// the library precisely so these tests can check randomized equivalence.
#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tsa/autocorrelation.hpp"
#include "tsa/fgn.hpp"
#include "tsa/periodogram.hpp"
#include "tsa/rs_analysis.hpp"
#include "util/fft.hpp"
#include "util/rng.hpp"

namespace nws {
namespace {

// O(n^2) reference DFT with the same e^{-2*pi*i*j*t/n} convention.
std::vector<std::complex<double>> naive_dft(std::span<const double> xs,
                                            std::size_t n,
                                            std::size_t count) {
  std::vector<std::complex<double>> out(count);
  for (std::size_t j = 0; j < count; ++j) {
    std::complex<double> acc = 0.0;
    for (std::size_t t = 0; t < xs.size(); ++t) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(j) * static_cast<double>(t) /
                           static_cast<double>(n);
      acc += xs[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[j] = acc;
  }
  return out;
}

std::vector<double> random_series(Rng& rng, std::size_t n) {
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.uniform(-1.0, 1.0);
  return xs;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_TRUE(is_pow2(65536));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(96));
}

TEST(Fft, MatchesNaiveDftAtPowersOfTwo) {
  Rng rng(11);
  for (std::size_t n : {1u, 2u, 4u, 8u, 64u, 256u, 1024u}) {
    std::vector<std::complex<double>> a(n);
    std::vector<double> re(n);
    for (std::size_t i = 0; i < n; ++i) {
      re[i] = rng.uniform(-1.0, 1.0);
      a[i] = {re[i], rng.uniform(-1.0, 1.0)};
    }
    // Forward transform of the real parts cross-checked against the naive
    // DFT; the imaginary parts are exercised by the round-trip below.
    std::vector<std::complex<double>> b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = re[i];
    fft_pow2(b);
    const auto want = naive_dft(re, n, n);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(b[j].real(), want[j].real(), 1e-9) << "n=" << n;
      EXPECT_NEAR(b[j].imag(), want[j].imag(), 1e-9) << "n=" << n;
    }
    // Complex round trip restores the input exactly (to rounding).
    auto c = a;
    fft_pow2(c);
    fft_pow2(c, /*inverse=*/true);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(c[i].real(), a[i].real(), 1e-10);
      EXPECT_NEAR(c[i].imag(), a[i].imag(), 1e-10);
    }
  }
}

TEST(Fft, RealFftMatchesComplexAndRoundTrips) {
  Rng rng(23);
  for (std::size_t n : {2u, 4u, 16u, 128u, 2048u}) {
    const auto xs = random_series(rng, n);
    const auto half = real_fft(xs, n);
    ASSERT_EQ(half.size(), n / 2 + 1);
    std::vector<std::complex<double>> full(xs.begin(), xs.end());
    fft_pow2(full);
    for (std::size_t k = 0; k <= n / 2; ++k) {
      EXPECT_NEAR(half[k].real(), full[k].real(), 1e-9) << "n=" << n;
      EXPECT_NEAR(half[k].imag(), full[k].imag(), 1e-9) << "n=" << n;
    }
    const auto back = real_ifft(half, n);
    ASSERT_EQ(back.size(), n);
    EXPECT_LT(max_abs_diff(back, xs), 1e-10) << "n=" << n;
  }
}

TEST(Fft, RealFftZeroPads) {
  Rng rng(29);
  const auto xs = random_series(rng, 300);
  std::vector<double> padded(512, 0.0);
  std::copy(xs.begin(), xs.end(), padded.begin());
  const auto a = real_fft(xs, 512);
  const auto b = real_fft(padded, 512);
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k].real(), b[k].real(), 1e-12);
    EXPECT_NEAR(a[k].imag(), b[k].imag(), 1e-12);
  }
}

TEST(Fft, DftRealMatchesNaiveAtArbitraryLengths) {
  Rng rng(37);
  // Powers of two, primes, highly composite, and the awkward 2^k +/- 1.
  for (std::size_t n : {1u, 2u, 3u, 5u, 7u, 12u, 96u, 100u, 127u, 129u, 360u,
                        500u, 1000u, 1024u, 2047u}) {
    const auto xs = random_series(rng, n);
    const auto got = dft_real(xs, n);
    const auto want = naive_dft(xs, n, n);
    ASSERT_EQ(got.size(), n);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(got[j].real(), want[j].real(), 1e-8) << "n=" << n;
      EXPECT_NEAR(got[j].imag(), want[j].imag(), 1e-8) << "n=" << n;
    }
  }
}

TEST(Fft, DftRealConstantSeries) {
  const std::vector<double> xs(100, 3.0);
  const auto got = dft_real(xs, 100);
  EXPECT_NEAR(got[0].real(), 300.0, 1e-9);
  for (std::size_t j = 1; j < got.size(); ++j) {
    EXPECT_NEAR(std::abs(got[j]), 0.0, 1e-8);
  }
}

// The plan cache is shared across threads; hammer it with mixed sizes and
// check every result against a serially-computed reference.  (Named *Fft*
// so the TSan CI job picks it up.)
TEST(FftThreads, ConcurrentPlanCacheIsConsistent) {
  const std::vector<std::size_t> sizes = {64, 100, 128, 360, 512, 1000};
  Rng rng(41);
  std::vector<std::vector<double>> inputs;
  std::vector<std::vector<std::complex<double>>> want;
  for (std::size_t n : sizes) {
    inputs.push_back(random_series(rng, n));
    want.push_back(dft_real(inputs.back(), n));
  }
  constexpr int kThreads = 8;
  std::vector<int> bad(kThreads, 0);
  {
    std::vector<std::jthread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        for (int rep = 0; rep < 4; ++rep) {
          for (std::size_t i = 0; i < sizes.size(); ++i) {
            const auto got = dft_real(inputs[i], sizes[i]);
            for (std::size_t j = 0; j < got.size(); ++j) {
              if (std::abs(got[j] - want[i][j]) > 1e-9) ++bad[t];
            }
          }
        }
      });
    }
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(bad[t], 0);
}

TEST(FftAcf, MatchesNaiveAcrossSizes) {
  Rng rng(43);
  // Straddles the direct-sum crossover (n * (lags+1) <= 1<<15) and
  // includes non-power-of-two lengths on the FFT path.
  struct Case {
    std::size_t n, lags;
  };
  for (const auto& [n, lags] : {Case{50, 10}, Case{300, 50}, Case{1000, 360},
                                Case{4096, 128}, Case{8640, 360},
                                Case{10000, 1000}}) {
    const auto xs = random_series(rng, n);
    const auto fast = autocorrelations(xs, lags);
    const auto slow = autocorrelations_naive(xs, lags);
    EXPECT_LT(max_abs_diff(fast, slow), 1e-9) << "n=" << n << " L=" << lags;
  }
}

TEST(FftAcf, MatchesNaiveOnCorrelatedSeries) {
  Rng rng(47);
  const auto xs = generate_ar1(rng, 0.9, 6000);
  const auto fast = autocorrelations(xs, 500);
  const auto slow = autocorrelations_naive(xs, 500);
  EXPECT_LT(max_abs_diff(fast, slow), 1e-9);
  EXPECT_NEAR(fast[0], 1.0, 1e-12);
  EXPECT_NEAR(fast[1], 0.9, 0.05);
}

TEST(FftAcf, ConstantAndShortSeriesDegenerate) {
  const std::vector<double> flat(5000, 2.5);
  const auto acf = autocorrelations(flat, 100);
  for (double r : acf) EXPECT_EQ(r, 0.0);
  EXPECT_TRUE(autocorrelations(std::vector<double>{}, 10).empty());
}

TEST(FftAcf, DecayOverloadMatchesRecompute) {
  Rng rng(53);
  const auto xs = generate_ar1(rng, 0.8, 5000);
  const auto acf = autocorrelations(xs, 200);
  const AcfDecay from_curve = acf_decay(acf, 0.2);
  const AcfDecay from_series = acf_decay(xs, 200, 0.2);
  EXPECT_EQ(from_curve.first_below, from_series.first_below);
  EXPECT_EQ(from_curve.lags_computed, from_series.lags_computed);
  EXPECT_EQ(from_curve.value_at_last, from_series.value_at_last);
}

TEST(FftPeriodogram, MatchesNaiveAcrossSizes) {
  Rng rng(59);
  struct Case {
    std::size_t n, count;
  };
  // 4096 exercises the pow2 real_fft path, 1000/8640 Bluestein, and
  // 120/40 the small-input direct path.
  for (const auto& [n, count] :
       {Case{120, 40}, Case{1000, 31}, Case{4096, 64}, Case{8640, 92}}) {
    const auto xs = random_series(rng, n);
    const auto fast = periodogram(xs, count);
    const auto slow = periodogram_naive(xs, count);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t j = 0; j < fast.size(); ++j) {
      // Relative tolerance: ordinates span orders of magnitude.
      EXPECT_NEAR(fast[j], slow[j], 1e-9 * (1.0 + std::abs(slow[j])))
          << "n=" << n << " j=" << j;
    }
  }
}

TEST(FftFgn, DaviesHarteIsDeterministic) {
  Rng a(7), b(7);
  const auto xs = generate_fgn(a, 0.75, 1000);
  const auto ys = generate_fgn(b, 0.75, 1000);
  ASSERT_EQ(xs.size(), 1000u);
  EXPECT_EQ(xs, ys);
}

TEST(FftFgn, DaviesHarteEdgeCases) {
  Rng rng(7);
  EXPECT_TRUE(generate_fgn(rng, 0.7, 0).empty());
  const auto one = generate_fgn(rng, 0.7, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_TRUE(std::isfinite(one[0]));
}

TEST(FftFgn, DaviesHarteSampleAcfMatchesTheory) {
  // The circulant draw has *exactly* the fGn covariance, so the sample
  // ACF over a long path should sit close to fgn_autocovariance.
  for (double h : {0.6, 0.8}) {
    double worst = 0.0;
    constexpr int kSeeds = 3;
    constexpr std::size_t kLags = 20;
    std::vector<double> mean_acf(kLags + 1, 0.0);
    for (int s = 0; s < kSeeds; ++s) {
      Rng rng(100 + static_cast<std::uint64_t>(s) +
              static_cast<std::uint64_t>(h * 10));
      const auto xs = generate_fgn(rng, h, 1 << 15);
      const auto acf = autocorrelations(xs, kLags);
      for (std::size_t k = 0; k <= kLags; ++k) mean_acf[k] += acf[k] / kSeeds;
    }
    for (std::size_t k = 0; k <= kLags; ++k) {
      worst = std::max(worst,
                       std::abs(mean_acf[k] - fgn_autocovariance(h, k)));
    }
    EXPECT_LT(worst, 0.06) << "h=" << h;
  }
}

TEST(FftFgn, DaviesHarteMomentsAreStandard) {
  Rng rng(77);
  const auto xs = generate_fgn(rng, 0.7, 1 << 15);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(var, 1.0, 0.15);
}

TEST(FftFgn, HoskingCrossCheckAgreesStatistically) {
  // Different draws from the same distribution: compare sample ACFs of
  // the two exact generators rather than sample paths.
  constexpr double kH = 0.75;
  constexpr std::size_t kN = 8192;
  Rng a(5), b(6);
  const auto dh = generate_fgn(a, kH, kN, FgnMethod::kDaviesHarte);
  const auto ho = generate_fgn(b, kH, kN, FgnMethod::kHosking);
  const auto acf_dh = autocorrelations(dh, 10);
  const auto acf_ho = autocorrelations(ho, 10);
  for (std::size_t k = 0; k <= 10; ++k) {
    EXPECT_NEAR(acf_dh[k], acf_ho[k], 0.12) << "k=" << k;
  }
}

// Satellite acceptance check: both time-domain Hurst estimators (and the
// spectral GPH cross-check) recover H in {0.6, 0.7, 0.8} within +-0.05 on
// Davies-Harte fGn, averaging a few seeds to tame sampling noise.
TEST(FftHurstRecovery, EstimatorsRecoverKnownH) {
  constexpr std::size_t kN = 32768;
  constexpr int kSeeds = 6;
  for (double h : {0.6, 0.7, 0.8}) {
    double rs = 0.0, aggvar = 0.0, gph = 0.0;
    for (int s = 0; s < kSeeds; ++s) {
      Rng rng(static_cast<std::uint64_t>(h * 1000) +
              static_cast<std::uint64_t>(s) * 7919);
      const auto xs = generate_fgn(rng, h, kN);
      rs += estimate_hurst_rs(xs).hurst;
      aggvar += estimate_hurst_aggvar(xs).hurst;
      gph += estimate_hurst_periodogram(xs, 0.6).hurst;
    }
    EXPECT_NEAR(rs / kSeeds, h, 0.05) << "R/S at h=" << h;
    EXPECT_NEAR(aggvar / kSeeds, h, 0.05) << "aggvar at h=" << h;
    EXPECT_NEAR(gph / kSeeds, h, 0.05) << "GPH at h=" << h;
  }
}

TEST(FftRs, GeometricScales) {
  const auto scales = geometric_scales(8, 100, 1.5);
  ASSERT_FALSE(scales.empty());
  EXPECT_EQ(scales.front(), 8u);
  EXPECT_LE(scales.back(), 100u);
  for (std::size_t i = 1; i < scales.size(); ++i) {
    EXPECT_GT(scales[i], scales[i - 1]);  // strictly increasing, no dups
  }
  // Degenerate growth yields just the minimum scale.
  EXPECT_EQ(geometric_scales(4, 100, 1.0), std::vector<std::size_t>{4});
  EXPECT_EQ(geometric_scales(16, 8, 2.0), std::vector<std::size_t>{});
}

TEST(FftRs, PoxRegressionHelperMatchesDirectEstimate) {
  Rng rng(101);
  const auto xs = generate_fgn(rng, 0.7, 4096);
  const auto points = pox_points(xs);
  const HurstEstimate from_points = estimate_hurst_from_pox(points);
  const HurstEstimate direct = estimate_hurst_rs(xs);
  EXPECT_DOUBLE_EQ(from_points.hurst, direct.hurst);
  EXPECT_DOUBLE_EQ(from_points.intercept, direct.intercept);
  EXPECT_EQ(from_points.num_points, direct.num_points);
}

TEST(FftRs, RescaledRangeMatchesPoxPipeline) {
  // pox_points' prefix-sum path must agree with the standalone
  // rescaled_range on every segment it emits.
  Rng rng(103);
  const auto xs = random_series(rng, 512);
  RsOptions opt;
  opt.min_segment = 8;
  opt.growth = 2.0;
  const auto points = pox_points(xs, opt);
  ASSERT_FALSE(points.empty());
  std::size_t i = 0;
  for (std::size_t d : geometric_scales(opt.min_segment,
                                        xs.size() / opt.max_segment_divisor,
                                        opt.growth)) {
    for (std::size_t off = 0; off + d <= xs.size(); off += d) {
      const double rs =
          rescaled_range(std::span<const double>(xs).subspan(off, d));
      if (rs <= 0.0) continue;
      ASSERT_LT(i, points.size());
      EXPECT_NEAR(points[i].log10_d, std::log10(static_cast<double>(d)),
                  1e-12);
      EXPECT_NEAR(points[i].log10_rs, std::log10(rs), 1e-9);
      ++i;
    }
  }
  EXPECT_EQ(i, points.size());
}

}  // namespace
}  // namespace nws

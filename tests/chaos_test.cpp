// End-to-end chaos test: the full sensor -> server -> forecaster pipeline
// under a deterministic fault schedule (connection resets, stalled /
// truncated / garbage responses) plus one server restart mid-run.
//
// The resilience contract it proves:
//  * every measurement is delivered exactly once (outbox replay with
//    sequence-tagged PUTS; duplicates acked, never re-applied);
//  * client calls return within their configured timeouts even against a
//    stalled or garbage-spewing server;
//  * once the faults stop, the forecast state is byte-for-byte the state
//    of a fault-free run over the same measurements.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "nws/client.hpp"
#include "nws/server.hpp"
#include "obs/metrics.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace nws {
namespace {

namespace fs = std::filesystem;

constexpr const char* kSeries = "chaos/cpu";

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("NWSCPU_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

/// A plausible availability trace: a bounded random walk in [0, 1].
std::vector<Measurement> make_measurements(std::size_t n) {
  std::vector<Measurement> ms;
  ms.reserve(n);
  Rng rng(7);
  double v = 0.6;
  for (std::size_t i = 0; i < n; ++i) {
    v = std::min(1.0, std::max(0.0, v + rng.uniform(-0.08, 0.08)));
    ms.push_back({static_cast<double>(i) * 10.0, v});
  }
  return ms;
}

/// Registry-side fired-fault counters, indexed like FaultSite.
std::array<std::uint64_t, kFaultSiteCount> fault_counter_values() {
  static constexpr std::array<const char*, kFaultSiteCount> kSites = {
      "server_read", "server_respond", "disk_write", "repl_stream",
      "repl_ack"};
  std::array<std::uint64_t, kFaultSiteCount> values{};
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    values[i] = obs::registry()
                    .counter(std::string("nws_fault_fired_total{site=\"") +
                             kSites[i] + "\"}")
                    .value();
  }
  return values;
}

ClientConfig fast_client_config() {
  ClientConfig cfg;
  cfg.connect_timeout_ms = 500;
  cfg.io_timeout_ms = 250;
  cfg.max_flush_attempts = 10;
  cfg.backoff = BackoffConfig{5.0, 60.0, 2.0, 0.5};
  cfg.backoff_seed = 17;
  return cfg;
}

class ChaosPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nwscpu_chaos_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    // The fired-fault cross-check below needs the registry counting.
    obs::set_metrics_enabled(true);
  }
  void TearDown() override {
    install_fault_injector(nullptr);
    fs::remove_all(dir_);
  }

  ServerConfig server_config(const std::string& journal_name) {
    ServerConfig cfg;
    cfg.memory_capacity = 1024;  // retains the whole run: restart-lossless
    cfg.journal_path = dir_ / journal_name;
    cfg.shards = shards_;
    cfg.net_backend = backend_;
    if (journal_group_ > 0) cfg.journal_group_size = journal_group_;
    return cfg;
  }

  /// Fault-free reference: same measurements, same machinery, no faults.
  ForecastReply reference_run(const std::vector<Measurement>& ms) {
    NwsServer server(server_config("reference.journal"));
    const std::uint16_t port = server.start(0);
    EXPECT_NE(port, 0);
    NwsClient client(fast_client_config());
    EXPECT_TRUE(client.connect(port));
    for (const Measurement& m : ms) {
      EXPECT_TRUE(client.put_reliable(kSeries, m));
    }
    EXPECT_TRUE(client.flush());
    const auto forecast = client.forecast(kSeries);
    EXPECT_TRUE(forecast.has_value());
    server.stop();
    return forecast.value_or(ForecastReply{});
  }

  /// The chaos run: faults on, one restart halfway.  Returns the final
  /// forecast; asserts delivery and latency invariants along the way.
  ForecastReply chaos_run(const std::vector<Measurement>& ms,
                          std::uint64_t seed, const std::string& journal) {
    FaultProfile profile;
    profile.reset_prob = 0.06;
    profile.delay_prob = 0.08;
    profile.delay_ms = 40;
    profile.truncate_prob = 0.05;
    profile.garbage_prob = 0.04;
    FaultInjector injector(seed, profile);

    const ServerConfig cfg = server_config(journal);
    auto server = std::make_unique<NwsServer>(cfg);
    const std::uint16_t port = server->start(0);
    EXPECT_NE(port, 0);
    NwsClient client(fast_client_config());
    EXPECT_TRUE(client.connect(port));

    const auto fired_before = fault_counter_values();
    install_fault_injector(&injector);
    for (std::size_t i = 0; i < ms.size(); ++i) {
      if (i == ms.size() / 2) {
        // The server "crashes" (journal intact) and a new incarnation
        // takes over the same port.
        server.reset();
        server = std::make_unique<NwsServer>(cfg);
        std::uint16_t reborn = 0;
        for (int tries = 0; tries < 50 && reborn == 0; ++tries) {
          reborn = server->start(port);
          if (reborn == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
        }
        EXPECT_EQ(reborn, port) << "could not rebind chaos port";
      }
      // Never lose a sample to the outbox bound in this run.
      EXPECT_TRUE(client.put_reliable(kSeries, ms[i]));
      if (i % 8 == 0) (void)client.flush();
      if (i % 10 == 0) {
        // Latency bound: a scheduler polling forecasts mid-chaos must get
        // an answer (or a failure) within its timeouts, never a hang.
        const auto t0 = std::chrono::steady_clock::now();
        (void)client.forecast(kSeries);
        const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
        EXPECT_LT(elapsed.count(), 2000) << "forecast exceeded its timeout";
      }
    }
    // Faults stop; the outbox must drain completely.
    install_fault_injector(nullptr);
    bool drained = false;
    for (int i = 0; i < 20 && !drained; ++i) drained = client.flush();
    EXPECT_TRUE(drained);
    EXPECT_EQ(client.outbox_size(), 0u);
    EXPECT_EQ(client.outbox_overflows(), 0u);
    EXPECT_GT(injector.total_faults(), 0u) << "chaos run injected nothing";

    const auto forecast = client.forecast(kSeries);
    EXPECT_TRUE(forecast.has_value());
    // Exactly-once: every measurement applied, none twice.
    EXPECT_EQ(forecast ? forecast->history : 0, ms.size());
    server->stop();

    // Telemetry cross-check: with the server threads joined, every fault
    // the injector fired is visible in the metrics registry — the counter
    // and the injector's own tally increment under the same lock, so the
    // deltas must match exactly.
    const auto fired_after = fault_counter_values();
    EXPECT_EQ(fired_after[0] - fired_before[0],
              injector.faults(FaultSite::kServerRead));
    EXPECT_EQ(fired_after[1] - fired_before[1],
              injector.faults(FaultSite::kServerRespond));
    EXPECT_EQ(fired_after[2] - fired_before[2],
              injector.faults(FaultSite::kDiskWrite));
    EXPECT_EQ(fired_after[3] - fired_before[3],
              injector.faults(FaultSite::kReplStream));
    EXPECT_EQ(fired_after[4] - fired_before[4],
              injector.faults(FaultSite::kReplAck));
    return forecast.value_or(ForecastReply{});
  }

  fs::path dir_;
  std::size_t shards_ = 0;         ///< 0 = server default resolution
  std::size_t journal_group_ = 0;  ///< 0 = server default group size
  NetBackend backend_ = NetBackend::kAuto;  ///< event-loop under test
};

TEST_F(ChaosPipeline, ExactlyOnceDeliveryAndForecastParityUnderFaults) {
  const auto ms = make_measurements(160);
  const ForecastReply expected = reference_run(ms);
  const ForecastReply actual = chaos_run(ms, chaos_seed(), "chaos.journal");

  // Once the faults stop, the chaotic pipeline converged to the exact
  // state of the fault-free one: same forecast, same error pedigree, same
  // history, same staleness anchor.
  EXPECT_DOUBLE_EQ(actual.value, expected.value);
  EXPECT_DOUBLE_EQ(actual.mae, expected.mae);
  EXPECT_DOUBLE_EQ(actual.mse, expected.mse);
  EXPECT_EQ(actual.history, expected.history);
  EXPECT_DOUBLE_EQ(actual.last_time, expected.last_time);
  EXPECT_EQ(actual.method, expected.method);
}

TEST_F(ChaosPipeline, ShardedGroupCommitMatchesSingleShardReference) {
  // The whole PR 3 stack under chaos: 4 shards, segmented journals,
  // group commit, batched outbox replay — and the forecast must still be
  // byte-for-byte the single-shard fault-free run (exactly-once survives
  // sharding, and the restart proves segmented group-commit durability).
  const auto ms = make_measurements(160);
  shards_ = 1;
  journal_group_ = 0;
  const ForecastReply expected = reference_run(ms);
  shards_ = 4;
  journal_group_ = 16;
  const ForecastReply actual =
      chaos_run(ms, chaos_seed(), "sharded_chaos.journal");

  EXPECT_DOUBLE_EQ(actual.value, expected.value);
  EXPECT_DOUBLE_EQ(actual.mae, expected.mae);
  EXPECT_DOUBLE_EQ(actual.mse, expected.mse);
  EXPECT_EQ(actual.history, expected.history);
  EXPECT_DOUBLE_EQ(actual.last_time, expected.last_time);
  EXPECT_EQ(actual.method, expected.method);
}

TEST_F(ChaosPipeline, EventLoopBackendsConvergeIdenticallyUnderFaults) {
  // The dispatcher rewrite must be invisible to the chaos invariants:
  // resets, delays, truncations and a restart produce the same converged
  // forecast whether the front end runs the poll loop or the epoll one.
  // (kAuto resolves to epoll on Linux, so the default suite above already
  // soaks that path; this pins both explicitly.)
  const auto ms = make_measurements(160);
  backend_ = NetBackend::kPoll;
  const ForecastReply expected = reference_run(ms);
  const ForecastReply on_poll = chaos_run(ms, chaos_seed(), "poll.journal");
  backend_ = NetBackend::kEpoll;
  shards_ = 4;
  const ForecastReply on_epoll = chaos_run(ms, chaos_seed(), "epoll.journal");

  for (const ForecastReply& actual : {on_poll, on_epoll}) {
    EXPECT_DOUBLE_EQ(actual.value, expected.value);
    EXPECT_DOUBLE_EQ(actual.mae, expected.mae);
    EXPECT_DOUBLE_EQ(actual.mse, expected.mse);
    EXPECT_EQ(actual.history, expected.history);
    EXPECT_DOUBLE_EQ(actual.last_time, expected.last_time);
    EXPECT_EQ(actual.method, expected.method);
  }
}

TEST_F(ChaosPipeline, ReplicatedFailoverExactlyOnceUnderFaults) {
  // The headline robustness claim of the replication PR: the primary is
  // killed mid-burst with faults firing on every site — connection
  // resets, stalled/truncated/garbage responses, dropped replication
  // batches, delayed replication acks — the follower is promoted, the
  // reliable client walks its endpoint list through the not_primary
  // redirect, and when the dust settles the promoted follower serves the
  // exact fault-free state: same forecast (1.000x MAE), byte-identical
  // VALUES and per-series STATS, zero lost or duplicated samples.
  const auto ms = make_measurements(160);
  shards_ = 2;
  const ForecastReply expected = reference_run(ms);

  // Byte-level reference state, kept alive for VALUES/STATS comparison.
  NwsServer ref(server_config("failover_ref.journal"));
  for (const Measurement& m : ms) {
    Request put;
    put.kind = RequestKind::kPut;
    put.series = kSeries;
    put.measurement = m;
    ASSERT_EQ(ref.handle_line(format_request(put)), "OK");
  }

  ServerConfig fcfg = server_config("failover_follower.journal");
  fcfg.role = ServerRole::kFollower;
  fcfg.repl_heartbeat_ms = 10;
  NwsServer follower(fcfg);
  const std::uint16_t fport = follower.start(0);
  ASSERT_NE(fport, 0);

  ServerConfig pcfg = server_config("failover_primary.journal");
  pcfg.repl_followers = std::to_string(fport);
  pcfg.repl_heartbeat_ms = 10;
  pcfg.repl_sync = true;  // an acked write provably survives the kill
  auto primary = std::make_unique<NwsServer>(pcfg);
  const std::uint16_t pport = primary->start(0);
  ASSERT_NE(pport, 0);

  FaultProfile profile;
  profile.reset_prob = 0.05;
  profile.delay_prob = 0.04;
  profile.delay_ms = 10;
  profile.truncate_prob = 0.04;
  profile.garbage_prob = 0.03;
  profile.repl_drop_prob = 0.06;
  profile.repl_ack_delay_prob = 0.06;
  FaultInjector injector(chaos_seed(), profile);

  ClientConfig ccfg = fast_client_config();
  ccfg.io_timeout_ms = 500;  // sync-replicated acks ride fault delays too
  ccfg.endpoints = {pport, fport};
  NwsClient client(ccfg);
  ASSERT_TRUE(client.connect(pport));

  install_fault_injector(&injector);
  for (std::size_t i = 0; i < ms.size(); ++i) {
    if (i == ms.size() / 2) {
      // The primary dies mid-burst and the follower is promoted (the
      // silence-triggered path is pinned in replication_test; promoting
      // explicitly keeps this run deterministic).  The client is never
      // told: its next flush walks the endpoint list, eats the
      // not_primary redirect, and replays the outbox.
      primary->stop();
      primary.reset();
      ASSERT_EQ(follower.handle_line("PROMOTE"), "OK 2");
    }
    EXPECT_TRUE(client.put_reliable(kSeries, ms[i]));
    if (i % 8 == 0) (void)client.flush();
  }
  install_fault_injector(nullptr);
  bool drained = false;
  for (int i = 0; i < 20 && !drained; ++i) drained = client.flush();
  EXPECT_TRUE(drained);
  EXPECT_EQ(client.outbox_size(), 0u);
  EXPECT_EQ(client.outbox_overflows(), 0u);
  EXPECT_GT(injector.total_faults(), 100u)
      << "failover burst injected too few faults to mean anything";

  const auto forecast = client.forecast(kSeries);
  ASSERT_TRUE(forecast.has_value());
  EXPECT_DOUBLE_EQ(forecast ? forecast->value : 0.0, expected.value);
  EXPECT_DOUBLE_EQ(forecast ? forecast->mae : 0.0, expected.mae);
  EXPECT_DOUBLE_EQ(forecast ? forecast->mse : 0.0, expected.mse);
  EXPECT_EQ(forecast ? forecast->history : 0, ms.size());
  EXPECT_DOUBLE_EQ(forecast ? forecast->last_time : 0.0, expected.last_time);

  // Byte-identical series state on the promoted follower.
  const std::string values_cmd = std::string("VALUES ") + kSeries + " 2048";
  EXPECT_EQ(follower.handle_line(values_cmd), ref.handle_line(values_cmd));
  const std::string stats_cmd = std::string("STATS ") + kSeries;
  EXPECT_EQ(follower.handle_line(stats_cmd), ref.handle_line(stats_cmd));
  EXPECT_TRUE(follower.is_primary());
  EXPECT_EQ(follower.epoch(), 2u);

  follower.stop();
}

TEST_F(ChaosPipeline, SameSeedSameOutcome) {
  const auto ms = make_measurements(100);
  const ForecastReply a = chaos_run(ms, 1234, "a.journal");
  const ForecastReply b = chaos_run(ms, 1234, "b.journal");
  EXPECT_DOUBLE_EQ(a.value, b.value);
  EXPECT_DOUBLE_EQ(a.mae, b.mae);
  EXPECT_DOUBLE_EQ(a.mse, b.mse);
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(a.method, b.method);
}

}  // namespace
}  // namespace nws

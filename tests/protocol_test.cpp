// Unit tests for the nwscpu wire protocol, the NwsServer request handling,
// the TCP server/client loopback path, and the hardening behaviours (line
// caps, idle expiry, busy shedding, client timeouts, fuzzed input).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "nws/client.hpp"
#include "nws/protocol.hpp"
#include "nws/server.hpp"
#include "util/rng.hpp"

namespace nws {
namespace {

// ---------------------------------------------------------------------------
// Request parsing

TEST(Protocol, ParsePut) {
  const auto req = parse_request("PUT host/cpu 120.5 0.75");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->kind, RequestKind::kPut);
  EXPECT_EQ(req->series, "host/cpu");
  EXPECT_DOUBLE_EQ(req->measurement.time, 120.5);
  EXPECT_DOUBLE_EQ(req->measurement.value, 0.75);
}

TEST(Protocol, ParseForecastValuesSeriesPingQuit) {
  EXPECT_EQ(parse_request("FORECAST a")->kind, RequestKind::kForecast);
  const auto values = parse_request("VALUES a 12");
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ(values->kind, RequestKind::kValues);
  EXPECT_EQ(values->max_values, 12u);
  EXPECT_EQ(parse_request("SERIES")->kind, RequestKind::kSeries);
  EXPECT_EQ(parse_request("PING")->kind, RequestKind::kPing);
  EXPECT_EQ(parse_request("QUIT")->kind, RequestKind::kQuit);
}

TEST(Protocol, ParseToleratesExtraWhitespaceAndCr) {
  const auto req = parse_request("  PUT   s   1   0.5 \r");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->series, "s");
}

struct BadLine {
  const char* name;
  const char* line;
};

class ProtocolBad : public ::testing::TestWithParam<BadLine> {};

TEST_P(ProtocolBad, Rejected) {
  EXPECT_FALSE(parse_request(GetParam().line).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ProtocolBad,
    ::testing::Values(BadLine{"empty", ""}, BadLine{"unknown_verb", "FROB x"},
                      BadLine{"put_missing_value", "PUT s 1.0"},
                      BadLine{"put_extra_field", "PUT s 1.0 0.5 9"},
                      BadLine{"put_bad_number", "PUT s one 0.5"},
                      BadLine{"forecast_no_series", "FORECAST"},
                      BadLine{"values_zero_max", "VALUES s 0"},
                      BadLine{"values_bad_max", "VALUES s many"},
                      BadLine{"series_with_arg", "SERIES x"},
                      BadLine{"ping_with_arg", "PING 1"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(Protocol, ParsePutSeq) {
  const auto req = parse_request("PUTS host/cpu 17 120.5 0.75");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->kind, RequestKind::kPutSeq);
  EXPECT_EQ(req->series, "host/cpu");
  EXPECT_EQ(req->seq, 17u);
  EXPECT_DOUBLE_EQ(req->measurement.time, 120.5);
  EXPECT_DOUBLE_EQ(req->measurement.value, 0.75);
  // Sequence numbers start at 1; 0 and junk are malformed.
  EXPECT_FALSE(parse_request("PUTS s 0 1.0 0.5").has_value());
  EXPECT_FALSE(parse_request("PUTS s one 1.0 0.5").has_value());
  EXPECT_FALSE(parse_request("PUTS s 1 1.0").has_value());
}

TEST(Protocol, PutSeqFormatRoundTrip) {
  Request req;
  req.kind = RequestKind::kPutSeq;
  req.series = "h/cpu";
  req.seq = 987654321;
  req.measurement = {86400.125, 0.375};
  const auto back = parse_request(format_request(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, RequestKind::kPutSeq);
  EXPECT_EQ(back->seq, req.seq);
  EXPECT_DOUBLE_EQ(back->measurement.value, req.measurement.value);
}

TEST(Protocol, FormatParseRoundTrip) {
  Request req;
  req.kind = RequestKind::kPut;
  req.series = "thing2/cpu";
  req.measurement = {86400.125, 0.123456789012345};
  const auto back = parse_request(format_request(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->series, req.series);
  EXPECT_DOUBLE_EQ(back->measurement.time, req.measurement.time);
  EXPECT_DOUBLE_EQ(back->measurement.value, req.measurement.value);
}

// ---------------------------------------------------------------------------
// Response formatting / parsing

TEST(Protocol, OkAndErrorShapes) {
  EXPECT_TRUE(response_is_ok(format_ok()));
  EXPECT_TRUE(response_is_ok("OK 1 2 3"));
  EXPECT_FALSE(response_is_ok(format_error("nope")));
  EXPECT_FALSE(response_is_ok("OKAY"));
  EXPECT_FALSE(response_is_ok(""));
}

TEST(Protocol, ForecastResponseRoundTrip) {
  const std::string response = format_forecast_response(
      0.875, 0.031, 0.002, 1234, 86400.5, "sw_mean(10)");
  const auto reply = parse_forecast_response(response);
  ASSERT_TRUE(reply.has_value());
  EXPECT_DOUBLE_EQ(reply->value, 0.875);
  EXPECT_DOUBLE_EQ(reply->mae, 0.031);
  EXPECT_DOUBLE_EQ(reply->mse, 0.002);
  EXPECT_EQ(reply->history, 1234u);
  EXPECT_DOUBLE_EQ(reply->last_time, 86400.5);
  EXPECT_EQ(reply->method, "sw_mean(10)");
}

TEST(Protocol, ForecastResponseRejectsErrAndGarbage) {
  EXPECT_FALSE(parse_forecast_response("ERR unknown series").has_value());
  EXPECT_FALSE(parse_forecast_response("OK 1 2 3").has_value());
}

TEST(Protocol, ValuesResponseRoundTrip) {
  const std::vector<Measurement> values = {{1.0, 0.5}, {2.0, 0.75}};
  const auto back = parse_values_response(format_values_response(values));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_DOUBLE_EQ((*back)[1].value, 0.75);
  // Empty list round-trips too.
  const auto empty = parse_values_response(format_values_response({}));
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(Protocol, ValuesResponseRejectsCountMismatch) {
  EXPECT_FALSE(parse_values_response("OK 2 1.0 0.5").has_value());
}

TEST(Protocol, SeriesResponseRoundTrip) {
  const auto back = parse_series_response(
      format_series_response({"a/cpu", "b/cpu"}));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0], "a/cpu");
}

// ---------------------------------------------------------------------------
// Server request handling (no sockets)

TEST(Server, PutThenForecast) {
  NwsServer server;
  for (int i = 0; i < 20; ++i) {
    const std::string response = server.handle_line(
        "PUT h/cpu " + std::to_string(i * 10) + " 0.8");
    ASSERT_EQ(response, "OK");
  }
  const auto reply = parse_forecast_response(server.handle_line(
      "FORECAST h/cpu"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_NEAR(reply->value, 0.8, 1e-9);
  EXPECT_EQ(reply->history, 20u);
}

TEST(Server, ErrorsForUnknownSeriesAndMalformedLines) {
  NwsServer server;
  EXPECT_EQ(server.handle_line("FORECAST ghost").rfind("ERR", 0), 0u);
  EXPECT_EQ(server.handle_line("VALUES ghost 5").rfind("ERR", 0), 0u);
  EXPECT_EQ(server.handle_line("BOGUS").rfind("ERR", 0), 0u);
  EXPECT_EQ(server.handle_line("").rfind("ERR", 0), 0u);
}

TEST(Server, OutOfOrderPutRejected) {
  NwsServer server;
  EXPECT_EQ(server.handle_line("PUT s 100 0.5"), "OK");
  EXPECT_EQ(server.handle_line("PUT s 50 0.5").rfind("ERR", 0), 0u);
}

TEST(Server, ValuesReturnsMostRecent) {
  NwsServer server;
  for (int i = 0; i < 10; ++i) {
    (void)server.handle_line("PUT s " + std::to_string(i) + " 0." +
                             std::to_string(i));
  }
  const auto values = parse_values_response(server.handle_line("VALUES s 3"));
  ASSERT_TRUE(values.has_value());
  ASSERT_EQ(values->size(), 3u);
  EXPECT_DOUBLE_EQ(values->front().time, 7.0);
  EXPECT_DOUBLE_EQ(values->back().time, 9.0);
}

TEST(Server, SeriesListsEverything) {
  NwsServer server;
  (void)server.handle_line("PUT b 0 0.1");
  (void)server.handle_line("PUT a 0 0.2");
  const auto names = parse_series_response(server.handle_line("SERIES"));
  ASSERT_TRUE(names.has_value());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[0], "a");  // sorted
}

TEST(Server, PingQuitAndRequestCounter) {
  NwsServer server;
  EXPECT_EQ(server.handle_line("PING"), "OK");
  EXPECT_EQ(server.handle_line("QUIT"), "OK");
  EXPECT_EQ(server.requests_served(), 2u);
}

// ---------------------------------------------------------------------------
// TCP loopback

TEST(Net, ClientServerRoundTrip) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  EXPECT_TRUE(server.running());

  NwsClient client;
  ASSERT_TRUE(client.connect(port));
  EXPECT_TRUE(client.ping());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client.put("net/cpu", {i * 10.0, 0.6}));
  }
  const auto forecast = client.forecast("net/cpu");
  ASSERT_TRUE(forecast.has_value());
  EXPECT_NEAR(forecast->value, 0.6, 1e-9);
  EXPECT_EQ(forecast->history, 30u);

  const auto values = client.values("net/cpu", 5);
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ(values->size(), 5u);

  const auto names = client.series();
  ASSERT_TRUE(names.has_value());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ(names->front(), "net/cpu");

  EXPECT_FALSE(client.forecast("nope").has_value());
  client.disconnect();
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(Net, SequentialConnectionsShareState) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  {
    NwsClient sensor;
    ASSERT_TRUE(sensor.connect(port));
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(sensor.put("shared", {i * 1.0, 0.4}));
    }
  }  // sensor connection closes
  NwsClient scheduler;
  ASSERT_TRUE(scheduler.connect(port));
  const auto forecast = scheduler.forecast("shared");
  ASSERT_TRUE(forecast.has_value());
  EXPECT_EQ(forecast->history, 10u);
  server.stop();
}

TEST(Net, ManyConcurrentClients) {
  // The poll()-based event loop must interleave several live connections —
  // six sensors and one scheduler talking at once, as in the service demo.
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  std::vector<NwsClient> sensors(6);
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    ASSERT_TRUE(sensors[i].connect(port)) << i;
  }
  NwsClient scheduler;
  ASSERT_TRUE(scheduler.connect(port));
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (std::size_t i = 0; i < sensors.size(); ++i) {
      ASSERT_TRUE(sensors[i].put("host" + std::to_string(i),
                                 {epoch * 10.0, 0.1 * static_cast<double>(i)}));
    }
    ASSERT_TRUE(scheduler.ping());
  }
  const auto names = scheduler.series();
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(names->size(), sensors.size());
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    const auto f = scheduler.forecast("host" + std::to_string(i));
    ASSERT_TRUE(f.has_value()) << i;
    EXPECT_NEAR(f->value, 0.1 * static_cast<double>(i), 1e-6) << i;
    EXPECT_EQ(f->history, 20u);
  }
  EXPECT_GE(server.connections(), 7u);
  server.stop();
}

TEST(Net, QuitClosesOnlyThatConnection) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  NwsClient a, b;
  ASSERT_TRUE(a.connect(port));
  ASSERT_TRUE(b.connect(port));
  ASSERT_TRUE(a.put("s", {0.0, 0.5}));
  // Send QUIT on a; its connection drains and closes.
  Request quit;
  quit.kind = RequestKind::kQuit;
  (void)a.ping();
  // b keeps working regardless.
  EXPECT_TRUE(b.ping());
  EXPECT_TRUE(b.forecast("s").has_value());
  server.stop();
}

TEST(Net, ConnectToClosedPortFails) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  server.stop();
  NwsClient client;
  EXPECT_FALSE(client.connect(port));
  EXPECT_FALSE(client.ping());
}

TEST(Net, StopIsIdempotentAndRestartable) {
  NwsServer server;
  server.stop();  // not started: no-op
  const std::uint16_t p1 = server.start(0);
  ASSERT_NE(p1, 0);
  server.stop();
  server.stop();
  const std::uint16_t p2 = server.start(0);
  ASSERT_NE(p2, 0);
  NwsClient client;
  EXPECT_TRUE(client.connect(p2));
  EXPECT_TRUE(client.ping());
  server.stop();
}

TEST(Net, StartWhileRunningFails) {
  NwsServer server;
  ASSERT_NE(server.start(0), 0);
  EXPECT_EQ(server.start(0), 0);
  server.stop();
}

// ---------------------------------------------------------------------------
// Failure injection: hostile / broken peers must not wedge the server.

namespace failure_injection {

/// Raw socket helper for sending byte sequences no well-behaved client
/// would produce.
class RawPeer {
 public:
  explicit RawPeer(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawPeer() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  bool send_bytes(std::string_view bytes) {
    // MSG_NOSIGNAL: the server may already have dropped us (oversized-line
    // tests); surface that as a failed send, not a SIGPIPE.
    return fd_ >= 0 &&
           ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
               static_cast<ssize_t>(bytes.size());
  }
  [[nodiscard]] std::string read_line() {
    std::string line;
    char c;
    while (fd_ >= 0 && ::recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') break;
      line += c;
    }
    return line;
  }
  /// Exactly n bytes, or nullopt on EOF/error (binary framing tests).
  [[nodiscard]] std::optional<std::string> read_exact(std::size_t n) {
    std::string out;
    out.reserve(n);
    char c;
    while (fd_ >= 0 && out.size() < n && ::recv(fd_, &c, 1, 0) == 1) out += c;
    if (out.size() == n) return out;
    return std::nullopt;
  }
  /// One binary response frame's payload, or nullopt on EOF.
  [[nodiscard]] std::optional<std::string> read_frame() {
    const auto header = read_exact(kBinFrameHeaderBytes);
    if (!header) return std::nullopt;
    const auto* b = reinterpret_cast<const unsigned char*>(header->data());
    const std::uint32_t len = static_cast<std::uint32_t>(b[0]) |
                              (static_cast<std::uint32_t>(b[1]) << 8) |
                              (static_cast<std::uint32_t>(b[2]) << 16) |
                              (static_cast<std::uint32_t>(b[3]) << 24);
    return read_exact(len);
  }
  /// True when the server closed the connection.
  [[nodiscard]] bool at_eof() {
    char c;
    return fd_ < 0 || ::recv(fd_, &c, 1, 0) <= 0;
  }

 private:
  int fd_ = -1;
};

TEST(NetFailure, FragmentedRequestReassembled) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  RawPeer peer(port);
  ASSERT_TRUE(peer.ok());
  ASSERT_TRUE(peer.send_bytes("PU"));
  ASSERT_TRUE(peer.send_bytes("T frag/cpu 1"));
  ASSERT_TRUE(peer.send_bytes("0 0.5\n"));
  EXPECT_EQ(peer.read_line(), "OK");
  server.stop();
}

TEST(NetFailure, PipelinedRequestsAllAnswered) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  RawPeer peer(port);
  ASSERT_TRUE(peer.ok());
  ASSERT_TRUE(
      peer.send_bytes("PUT p/cpu 0 0.5\nPUT p/cpu 10 0.6\nFORECAST p/cpu\n"));
  EXPECT_EQ(peer.read_line(), "OK");
  EXPECT_EQ(peer.read_line(), "OK");
  EXPECT_EQ(peer.read_line().rfind("OK ", 0), 0u);
  server.stop();
}

TEST(NetFailure, GarbageFloodAnsweredWithErrors) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  RawPeer peer(port);
  ASSERT_TRUE(peer.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(peer.send_bytes("\x01\x02 nonsense \xff\n"));
    EXPECT_EQ(peer.read_line().rfind("ERR", 0), 0u) << i;
  }
  // The server is still healthy for real clients afterwards.
  NwsClient client;
  ASSERT_TRUE(client.connect(port));
  EXPECT_TRUE(client.ping());
  server.stop();
}

TEST(NetFailure, AbruptDisconnectMidRequestIsHarmless) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  {
    RawPeer peer(port);
    ASSERT_TRUE(peer.ok());
    ASSERT_TRUE(peer.send_bytes("PUT half/cpu 10 0."));  // no newline
  }  // peer closes mid-line
  NwsClient client;
  ASSERT_TRUE(client.connect(port));
  EXPECT_TRUE(client.ping());
  // The half-line was never completed, so the series must not exist.
  EXPECT_FALSE(client.forecast("half/cpu").has_value());
  server.stop();
}

TEST(NetFailure, StopWithClientsMidSessionDoesNotHang) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  NwsClient a, b;
  ASSERT_TRUE(a.connect(port));
  ASSERT_TRUE(b.connect(port));
  ASSERT_TRUE(a.put("s", {0.0, 0.5}));
  server.stop();  // must join promptly despite two open connections
  EXPECT_FALSE(server.running());
}

TEST(NetFailure, OversizedLineAnsweredAndDropped) {
  ServerConfig cfg;
  cfg.max_line_bytes = 256;
  NwsServer server(cfg);
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  {
    // Complete-but-huge line: answered with ERR, then dropped.
    RawPeer peer(port);
    ASSERT_TRUE(peer.ok());
    ASSERT_TRUE(peer.send_bytes(std::string(512, 'x') + "\n"));
    EXPECT_EQ(peer.read_line(), "ERR line too long");
    EXPECT_TRUE(peer.read_line().empty());  // connection closed
  }
  {
    // A peer that never sends a newline cannot grow the rx buffer without
    // bound: the cap fires on the buffered prefix too.
    RawPeer peer(port);
    ASSERT_TRUE(peer.ok());
    for (int i = 0; i < 8 && peer.ok(); ++i) {
      if (!peer.send_bytes(std::string(128, 'y'))) break;  // no newline ever
    }
    EXPECT_EQ(peer.read_line(), "ERR line too long");
  }
  EXPECT_GE(server.connections_dropped(), 2u);
  // The server remains healthy for well-behaved clients.
  NwsClient client;
  ASSERT_TRUE(client.connect(port));
  EXPECT_TRUE(client.ping());
  server.stop();
}

TEST(NetFailure, IdleConnectionsExpire) {
  ServerConfig cfg;
  cfg.idle_timeout_ms = 150;
  NwsServer server(cfg);
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  NwsClient idle, active;
  ASSERT_TRUE(idle.connect(port));
  ASSERT_TRUE(active.connect(port));
  ASSERT_TRUE(idle.ping());
  // Keep one client chatty while the other goes silent.
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_TRUE(active.ping());
  }
  EXPECT_EQ(server.connections(), 1u);
  EXPECT_GE(server.connections_dropped(), 1u);
  // The idle client's next request fails fast (connection was closed).
  EXPECT_FALSE(idle.ping());
  server.stop();
}

// ---------------------------------------------------------------------------
// Binary framing against a live server: every hostile byte stream must
// draw an ERR or a close, never a crash or a desynchronised stream.

/// Builds a request frame [u32 len][payload] from raw payload bytes —
/// the same layout as a response frame, so append_binary_response works.
std::string raw_frame(std::string_view payload) {
  std::string wire;
  append_binary_response(wire, payload);
  return wire;
}

std::string hello_bin() { return std::string(kHelloBinRequest) + "\n"; }

TEST(NetFailure, GarbageAfterHelloBinDrawsBadFrameAndClose) {
  // Text-looking bytes on a binary connection read as an absurd length
  // prefix ("FORE" = ~1.2 GB): the framing is dead, the server answers a
  // framed ERR and closes rather than hunting for a resync point.
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  const std::uint64_t dropped_before = server.connections_dropped();
  {
    RawPeer peer(port);
    ASSERT_TRUE(peer.ok());
    ASSERT_TRUE(peer.send_bytes(hello_bin() + "FORECAST some/series\n"));
    EXPECT_EQ(peer.read_line(), kHelloBinAck);
    EXPECT_EQ(peer.read_frame().value_or(""), "ERR bad frame");
    EXPECT_TRUE(peer.at_eof());
  }
  {
    // Pure binary garbage with a hostile length prefix: same fate.
    RawPeer peer(port);
    ASSERT_TRUE(peer.ok());
    std::string wire = hello_bin();
    wire += std::string("\xff\xff\xff\xff\x00garbage", 12);
    ASSERT_TRUE(peer.send_bytes(wire));
    EXPECT_EQ(peer.read_line(), kHelloBinAck);
    EXPECT_EQ(peer.read_frame().value_or(""), "ERR bad frame");
    EXPECT_TRUE(peer.at_eof());
  }
  for (int i = 0; i < 200 && server.connections_dropped() < dropped_before + 2;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.connections_dropped(), dropped_before + 2);
  // The server remains healthy for well-behaved clients.
  NwsClient client;
  ASSERT_TRUE(client.connect(port));
  EXPECT_TRUE(client.ping());
  server.stop();
}

TEST(NetFailure, ZeroLengthBinaryFrameDrawsBadFrameAndClose) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  RawPeer peer(port);
  ASSERT_TRUE(peer.ok());
  std::string wire = hello_bin();
  wire += std::string(kBinFrameHeaderBytes, '\0');  // len == 0
  ASSERT_TRUE(peer.send_bytes(wire));
  EXPECT_EQ(peer.read_line(), kHelloBinAck);
  EXPECT_EQ(peer.read_frame().value_or(""), "ERR bad frame");
  EXPECT_TRUE(peer.at_eof());
  server.stop();
}

TEST(NetFailure, MalformedBinaryPayloadsAnswerErrAndStaySynced) {
  // A well-framed but undecodable payload is the binary analogue of a
  // malformed text line: ERR malformed request, and the next frame on the
  // same connection still gets its answer — the stream never desyncs.
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  RawPeer peer(port);
  ASSERT_TRUE(peer.ok());
  std::string ping;
  {
    Request req;
    req.kind = RequestKind::kPing;
    append_binary_request(ping, req);
  }
  std::string wire = hello_bin();
  wire += raw_frame("\x77junk");                  // unknown op
  wire += ping;
  wire += raw_frame(std::string("\x01\x05\x00"
                                "ab",
                                5));              // PUT body truncated
  wire += ping;
  wire += raw_frame(std::string("\x03\x01\x00s\xff\xff\xff\xff\x01\x00\x00"
                                "\x00\x00\x00\x00\x00",
                                16));             // PUTB count >> body
  wire += ping;
  ASSERT_TRUE(peer.send_bytes(wire));
  EXPECT_EQ(peer.read_line(), kHelloBinAck);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(peer.read_frame().value_or(""), "ERR malformed request") << i;
    EXPECT_EQ(peer.read_frame().value_or(""), "OK") << i;
  }
  server.stop();
}

TEST(NetFailure, FragmentedBinaryFrameReassembled) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  RawPeer peer(port);
  ASSERT_TRUE(peer.ok());
  std::string wire = hello_bin();
  {
    Request req;
    req.kind = RequestKind::kPut;
    req.series = "frag/cpu";
    req.measurement = {10.0, 0.5};
    append_binary_request(wire, req);
  }
  // Dribble the negotiation and the frame one byte at a time.
  for (char c : wire) {
    ASSERT_TRUE(peer.send_bytes(std::string_view(&c, 1)));
  }
  EXPECT_EQ(peer.read_line(), kHelloBinAck);
  EXPECT_EQ(peer.read_frame().value_or(""), "OK");
  server.stop();
}

TEST(NetFailure, OversizedBinaryFrameDrawsBadFrameAndClose) {
  // A length prefix above max_line_bytes is rejected before any body
  // buffering, mirroring the text path's line cap.
  ServerConfig cfg;
  cfg.max_line_bytes = 256;
  NwsServer server(cfg);
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  RawPeer peer(port);
  ASSERT_TRUE(peer.ok());
  std::string wire = hello_bin();
  append_binary_response(wire, std::string(257, 'x'));  // len 257 > cap
  ASSERT_TRUE(peer.send_bytes(wire));
  EXPECT_EQ(peer.read_line(), kHelloBinAck);
  EXPECT_EQ(peer.read_frame().value_or(""), "ERR bad frame");
  EXPECT_TRUE(peer.at_eof());
  server.stop();
}

}  // namespace failure_injection

// ---------------------------------------------------------------------------
// Hardening: capacity shedding, idempotent PUTS, bounded client timeouts.

TEST(Server, ShedsNewSeriesWithBusyWhenFull) {
  ServerConfig cfg;
  cfg.max_series = 2;
  NwsServer server(cfg);
  EXPECT_EQ(server.handle_line("PUT a 0 0.1"), "OK");
  EXPECT_EQ(server.handle_line("PUT b 0 0.2"), "OK");
  EXPECT_EQ(server.handle_line("PUT c 0 0.3"),
            "ERR busy retry_after_ms=100");
  EXPECT_EQ(server.handle_line("PUTS c 1 0 0.3"),
            "ERR busy retry_after_ms=100");
  // Existing series keep working at capacity.
  EXPECT_EQ(server.handle_line("PUT a 10 0.4"), "OK");
  EXPECT_EQ(server.shed_busy(), 2u);
}

TEST(Server, PutSeqDuplicatesAckedNotReapplied) {
  NwsServer server;
  EXPECT_EQ(server.handle_line("PUTS s 1 0 0.5"), "OK");
  EXPECT_EQ(server.handle_line("PUTS s 2 10 0.6"), "OK");
  // Replay of an applied sequence: acked, not re-applied.
  EXPECT_EQ(server.handle_line("PUTS s 2 10 0.6"), "OK dup");
  EXPECT_EQ(server.handle_line("PUTS s 1 0 0.5"), "OK dup");
  EXPECT_EQ(server.duplicates_acked(), 2u);
  const auto reply = parse_forecast_response(server.handle_line("FORECAST s"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->history, 2u);  // exactly once
  EXPECT_DOUBLE_EQ(reply->last_time, 10.0);
}

TEST(Server, PutSeqDedupeSurvivesRestartViaTimestamps) {
  // After a restart the sequence table is empty, but a journal-restored
  // series still detects replayed measurements by timestamp.
  NwsServer server;
  EXPECT_EQ(server.handle_line("PUT s 0 0.5"), "OK");    // "recovered"
  EXPECT_EQ(server.handle_line("PUT s 10 0.6"), "OK");
  EXPECT_EQ(server.handle_line("PUTS s 7 10 0.6"), "OK dup");
  EXPECT_EQ(server.handle_line("PUTS s 8 20 0.7"), "OK");
  const auto reply = parse_forecast_response(server.handle_line("FORECAST s"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->history, 3u);
}

TEST(Server, ForecastReportsStalenessAnchor) {
  NwsServer server;
  (void)server.handle_line("PUT s 100 0.5");
  (void)server.handle_line("PUT s 250 0.6");
  const auto reply = parse_forecast_response(server.handle_line("FORECAST s"));
  ASSERT_TRUE(reply.has_value());
  // A scheduler at time T knows this forecast is T - 250 seconds stale.
  EXPECT_DOUBLE_EQ(reply->last_time, 250.0);
}

TEST(Net, ClientNeverHangsOnSilentServer) {
  // A listener that accepts and then says nothing: every client call must
  // return within its configured timeout rather than blocking a scheduler.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  ClientConfig cfg;
  cfg.connect_timeout_ms = 200;
  cfg.io_timeout_ms = 200;
  NwsClient client(cfg);
  ASSERT_TRUE(client.connect(port));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.forecast("s").has_value());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 1500);
  EXPECT_FALSE(client.connected());  // timeout tears the session down
  ::close(listener);
}

// ---------------------------------------------------------------------------
// Fuzz / property tests: arbitrary bytes through the parser and the
// request handler must never crash and must answer ERR to anything
// malformed.

TEST(ProtocolFuzz, RandomByteLinesNeverCrashAndMalformedYieldsErr) {
  Rng rng(20260806);
  NwsServer server;
  for (int i = 0; i < 20000; ++i) {
    std::string line;
    const std::size_t n = rng.below(48);
    line.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      // Any byte except the line terminator (the transport strips it).
      char c = static_cast<char>(rng.below(256));
      if (c == '\n') c = ' ';
      line += c;
    }
    const auto parsed = parse_request(line);
    const std::string response = server.handle_line(line);
    ASSERT_FALSE(response.empty());
    if (!parsed.has_value()) {
      EXPECT_EQ(response.rfind("ERR", 0), 0u) << "line " << i;
    } else {
      EXPECT_TRUE(response.rfind("OK", 0) == 0 ||
                  response.rfind("ERR", 0) == 0);
    }
  }
}

TEST(ProtocolFuzz, TruncatedValidRequestsNeverCrashAndNeverParse) {
  const std::string lines[] = {
      "PUT host/cpu 120.5 0.75", "PUTS host/cpu 17 120.5 0.75",
      "PUTB host/cpu 3 17 10 0.5 20 0.625 30 0.75",
      "FORECAST host/cpu",       "VALUES host/cpu 12",
      "SERIES",                  "STATS",
      "STATS host/cpu",          "METRICS",
      "PING",                    "QUIT"};
  NwsServer server;
  for (const std::string& line : lines) {
    const auto whole = parse_request(line);
    ASSERT_TRUE(whole.has_value()) << line;
    for (std::size_t cut = 0; cut < line.size(); ++cut) {
      const std::string prefix = line.substr(0, cut);
      const auto parsed = parse_request(prefix);
      // A strict prefix is either malformed or a shorter *valid* request
      // (e.g. "PING" inside "PING "); it must never be the original kind
      // with garbled fields crashing the handler.
      const std::string response = server.handle_line(prefix);
      ASSERT_FALSE(response.empty());
      if (!parsed.has_value()) {
        EXPECT_EQ(response.rfind("ERR", 0), 0u) << '"' << prefix << '"';
      }
    }
  }
}

TEST(ProtocolFuzz, PutBatchParsesAndRejectsMalformedShapes) {
  // The happy path.
  const auto ok = parse_request("PUTB host/cpu 2 5 10 0.5 20 0.75");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->kind, RequestKind::kPutBatch);
  EXPECT_EQ(ok->series, "host/cpu");
  EXPECT_EQ(ok->seq, 5u);
  ASSERT_EQ(ok->batch.size(), 2u);
  EXPECT_DOUBLE_EQ(ok->batch[0].time, 10.0);
  EXPECT_DOUBLE_EQ(ok->batch[1].value, 0.75);

  const char* bad[] = {
      "PUTB",                                  // nothing at all
      "PUTB host/cpu",                         // no count
      "PUTB host/cpu 0 5",                     // zero-sample batch
      "PUTB host/cpu 2 0 10 0.5 20 0.75",      // sequence zero
      "PUTB host/cpu 2 5 10 0.5",              // fewer samples than declared
      "PUTB host/cpu 2 5 10 0.5 20 0.75 30",   // trailing junk
      "PUTB host/cpu 2 5 10 0.5 20 0.75 30 1", // more samples than declared
      "PUTB host/cpu x 5 10 0.5",              // non-numeric count
      "PUTB host/cpu 1000000000000 1 10 0.5",  // count the line cannot back
  };
  NwsServer server;
  for (const char* line : bad) {
    EXPECT_FALSE(parse_request(line).has_value()) << line;
    EXPECT_EQ(server.handle_line(line).rfind("ERR", 0), 0u) << line;
  }
}

TEST(ProtocolFuzz, StatsParsesGlobalAndPerSeriesForms) {
  const auto global = parse_request("STATS");
  ASSERT_TRUE(global.has_value());
  EXPECT_EQ(global->kind, RequestKind::kStats);
  EXPECT_TRUE(global->series.empty());

  const auto one = parse_request("STATS host/cpu");
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->kind, RequestKind::kStats);
  EXPECT_EQ(one->series, "host/cpu");

  EXPECT_FALSE(parse_request("STATS host/cpu extra").has_value());

  StatsReply reply;
  std::string wire;
  append_stats_response(wire, 3, 120, 130, 10, 7);
  EXPECT_EQ(wire, "OK 3 120 130 10 7");
  const auto back = parse_stats_response(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->series, 3u);
  EXPECT_EQ(back->retained, 120u);
  EXPECT_EQ(back->appended, 130u);
  EXPECT_EQ(back->dropped, 10u);
  EXPECT_EQ(back->replay_skipped, 7u);

  // Pre-telemetry servers answer four numbers; the parser still accepts
  // them (replay_skipped defaults to zero).
  const auto old_form = parse_stats_response("OK 3 120 130 10");
  ASSERT_TRUE(old_form.has_value());
  EXPECT_EQ(old_form->dropped, 10u);
  EXPECT_EQ(old_form->replay_skipped, 0u);
  EXPECT_FALSE(parse_stats_response("OK 3 120 130").has_value());
  EXPECT_FALSE(parse_stats_response("OK 3 120 130 10 7 9").has_value());
  (void)reply;
}

TEST(ProtocolFuzz, MetricsVerbParsesFormatsAndRejectsOperands) {
  const auto parsed = parse_request("METRICS");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, RequestKind::kMetrics);
  EXPECT_FALSE(parse_request("METRICS extra").has_value());

  Request req;
  req.kind = RequestKind::kMetrics;
  EXPECT_EQ(format_request(req), "METRICS");
  const auto back = parse_request(format_request(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, RequestKind::kMetrics);
}

TEST(ProtocolFuzz, MetricsResponseFramingRoundTripsAndRejectsMalformed) {
  const std::string body = "nws_a_total 1\nnws_b_total 2\nnws_c 3.5";
  std::string wire;
  append_metrics_response(wire, body);
  EXPECT_EQ(wire, "OK 3\nnws_a_total 1\nnws_b_total 2\nnws_c 3.5");

  const std::string_view header(wire.data(), wire.find('\n'));
  const auto lines = parse_metrics_header(header);
  ASSERT_TRUE(lines.has_value());
  EXPECT_EQ(*lines, 3u);

  const auto round = parse_metrics_response(wire);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, body + "\n");

  // An empty registry dump frames as zero lines.
  std::string empty_wire;
  append_metrics_response(empty_wire, "");
  EXPECT_EQ(empty_wire, "OK 0");
  const auto empty = parse_metrics_response(empty_wire);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());

  // Malformed headers and disagreeing line counts must not parse.
  EXPECT_FALSE(parse_metrics_header("OK").has_value());
  EXPECT_FALSE(parse_metrics_header("OK x").has_value());
  EXPECT_FALSE(parse_metrics_header("ERR busy").has_value());
  EXPECT_FALSE(parse_metrics_header("OK 3 4").has_value());
  EXPECT_FALSE(parse_metrics_response("OK 2\nonly_one 1").has_value());
  EXPECT_FALSE(parse_metrics_response("OK 1\na 1\nb 2").has_value());

  // Random mutations of a framed response never crash the parser.
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = wire;
    const std::size_t flips = rng.below(4) + 1;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] = static_cast<char>(rng.below(256));
    }
    (void)parse_metrics_response(mutated);
  }
}

TEST(ProtocolFuzz, RandomValidPutBatchesRoundTripThroughFormatter) {
  Rng rng(1203);
  for (int i = 0; i < 500; ++i) {
    Request req;
    req.kind = RequestKind::kPutBatch;
    req.series = "s" + std::to_string(rng.below(100));
    req.seq = rng.below(1u << 30) + 1;
    const std::size_t n = rng.below(32) + 1;
    double t = rng.uniform(0.0, 1e6);
    for (std::size_t j = 0; j < n; ++j) {
      t += rng.uniform(0.1, 100.0);
      req.batch.push_back({t, rng.uniform(0.0, 1.0)});
    }
    const std::string wire = format_request(req);
    const auto back = parse_request(wire);
    ASSERT_TRUE(back.has_value()) << wire;
    EXPECT_EQ(back->kind, RequestKind::kPutBatch);
    EXPECT_EQ(back->series, req.series);
    EXPECT_EQ(back->seq, req.seq);
    ASSERT_EQ(back->batch.size(), req.batch.size());
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(back->batch[j].time, req.batch[j].time);
      EXPECT_DOUBLE_EQ(back->batch[j].value, req.batch[j].value);
    }
    // Random mutations of a valid PUTB line must never crash the parser
    // or the handler (they may still parse when the mutation is benign).
    std::string mutated = wire;
    const std::size_t flips = rng.below(3) + 1;
    for (std::size_t f = 0; f < flips; ++f) {
      char c = static_cast<char>(rng.below(256));
      if (c == '\n') c = ' ';
      mutated[rng.below(mutated.size())] = c;
    }
    (void)parse_request(mutated);
    const std::string truncated = wire.substr(0, rng.below(wire.size() + 1));
    (void)parse_request(truncated);
  }
}

TEST(ProtocolFuzz, RandomValidPutsRoundTripThroughFormatter) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    Request req;
    req.kind = rng.chance(0.5) ? RequestKind::kPut : RequestKind::kPutSeq;
    req.series = "s" + std::to_string(rng.below(1000));
    req.seq = rng.below(1u << 30) + 1;
    req.measurement.time = rng.uniform(0.0, 1e9);
    req.measurement.value = rng.uniform(0.0, 1.0);
    const auto back = parse_request(format_request(req));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->kind, req.kind);
    EXPECT_EQ(back->series, req.series);
    if (req.kind == RequestKind::kPutSeq) {
      EXPECT_EQ(back->seq, req.seq);
    }
    EXPECT_DOUBLE_EQ(back->measurement.time, req.measurement.time);
    EXPECT_DOUBLE_EQ(back->measurement.value, req.measurement.value);
  }
}

// ---------------------------------------------------------------------------
// Binary framing (wire v2) decoder fuzz: the encoder/decoder pair must
// round-trip every request, and arbitrary bytes through the decoder must
// fail cleanly, never crash or over-read.

/// append_binary_request → extract_binary_frame → parse_binary_request.
std::optional<Request> binary_round_trip(const Request& req) {
  std::string wire;
  append_binary_request(wire, req);
  std::size_t frame_end = 0;
  std::string_view payload;
  if (extract_binary_frame(wire, 1 << 20, frame_end, payload) !=
      BinFrameStatus::kFrame) {
    return std::nullopt;
  }
  EXPECT_EQ(frame_end, wire.size());  // one request, one frame, no slack
  Request out;
  if (!parse_binary_request(payload, out)) return std::nullopt;
  return out;
}

TEST(BinaryFraming, EveryRequestKindRoundTripsThroughTheEncoder) {
  std::vector<Request> requests;
  {
    Request r;
    r.kind = RequestKind::kPut;
    r.series = "host/cpu";
    r.measurement = {120.5, 0.75};
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kPutSeq;
    r.series = "host/cpu";
    r.seq = 987654321;
    r.measurement = {86400.125, 0.375};
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kPutBatch;
    r.series = "h/cpu";
    r.seq = 17;
    r.batch = {{10.0, 0.5}, {20.0, 0.625}, {30.0, 0.75}};
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kForecast;
    r.series = "host/cpu";
    requests.push_back(r);
  }
  // Cold verbs ride the TEXT op; the decoder must hand back the same
  // request the text parser would.
  {
    Request r;
    r.kind = RequestKind::kValues;
    r.series = "host/cpu";
    r.max_values = 12;
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kSeries;
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kStats;
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kStats;
    r.series = "host/cpu";
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kMetrics;
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kPing;
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kQuit;
    requests.push_back(r);
  }
  for (const Request& req : requests) {
    const auto back = binary_round_trip(req);
    ASSERT_TRUE(back.has_value()) << format_request(req);
    EXPECT_EQ(back->kind, req.kind);
    EXPECT_EQ(back->series, req.series);
    EXPECT_EQ(back->seq, req.seq);
    EXPECT_EQ(back->max_values, req.max_values);
    ASSERT_EQ(back->batch.size(), req.batch.size());
    for (std::size_t i = 0; i < req.batch.size(); ++i) {
      EXPECT_DOUBLE_EQ(back->batch[i].time, req.batch[i].time);
      EXPECT_DOUBLE_EQ(back->batch[i].value, req.batch[i].value);
    }
    EXPECT_DOUBLE_EQ(back->measurement.time, req.measurement.time);
    EXPECT_DOUBLE_EQ(back->measurement.value, req.measurement.value);
  }
  // Doubles survive bit-exactly — the binary body carries IEEE-754 bits,
  // not a decimal rendering.
  Request exact;
  exact.kind = RequestKind::kPut;
  exact.series = "bits/cpu";
  exact.measurement = {0.1 + 0.2, 1.0 / 3.0};
  const auto back = binary_round_trip(exact);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->measurement.time, exact.measurement.time);
  EXPECT_EQ(back->measurement.value, exact.measurement.value);

  // A series name the u16 length field cannot carry rides the TEXT op and
  // still round-trips.
  Request huge;
  huge.kind = RequestKind::kForecast;
  huge.series = std::string(70000, 's');
  const auto huge_back = binary_round_trip(huge);
  ASSERT_TRUE(huge_back.has_value());
  EXPECT_EQ(huge_back->kind, RequestKind::kForecast);
  EXPECT_EQ(huge_back->series, huge.series);
}

TEST(BinaryFraming, ExtractEnforcesTheLengthPrefixContract) {
  std::size_t frame_end = 0;
  std::string_view payload;

  // Anything shorter than the header wants more bytes.
  for (std::size_t n = 0; n < kBinFrameHeaderBytes; ++n) {
    EXPECT_EQ(extract_binary_frame(std::string(n, '\x01'), 1024, frame_end,
                                   payload),
              BinFrameStatus::kNeedMore);
  }
  // Zero length is dead on arrival.
  EXPECT_EQ(extract_binary_frame(std::string(4, '\0'), 1024, frame_end,
                                 payload),
            BinFrameStatus::kError);
  // So is a length above the cap — including the all-ones prefix, checked
  // before any body arrives.
  EXPECT_EQ(extract_binary_frame(std::string(4, '\xff'), 1024, frame_end,
                                 payload),
            BinFrameStatus::kError);
  std::string over;
  append_binary_response(over, std::string(1025, 'x'));
  EXPECT_EQ(extract_binary_frame(over, 1024, frame_end, payload),
            BinFrameStatus::kError);
  // A length exactly at the cap is fine.
  std::string at_cap;
  append_binary_response(at_cap, std::string(1024, 'x'));
  EXPECT_EQ(extract_binary_frame(at_cap, 1024, frame_end, payload),
            BinFrameStatus::kFrame);
  EXPECT_EQ(payload.size(), 1024u);
  EXPECT_EQ(frame_end, at_cap.size());
  // Back-to-back frames extract one at a time.
  std::string two;
  append_binary_response(two, "first");
  append_binary_response(two, "second");
  ASSERT_EQ(extract_binary_frame(two, 1024, frame_end, payload),
            BinFrameStatus::kFrame);
  EXPECT_EQ(payload, "first");
  two.erase(0, frame_end);
  ASSERT_EQ(extract_binary_frame(two, 1024, frame_end, payload),
            BinFrameStatus::kFrame);
  EXPECT_EQ(payload, "second");
}

TEST(BinaryFraming, TruncatedFramesWantMoreBytesAndTruncatedBodiesReject) {
  Request req;
  req.kind = RequestKind::kPutBatch;
  req.series = "trunc/cpu";
  req.seq = 5;
  req.batch = {{10.0, 0.5}, {20.0, 0.75}};
  std::string wire;
  append_binary_request(wire, req);

  std::size_t frame_end = 0;
  std::string_view payload;
  // Every strict prefix of the byte stream is just an incomplete frame.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_EQ(extract_binary_frame(wire.substr(0, cut), 1 << 20, frame_end,
                                   payload),
              BinFrameStatus::kNeedMore)
        << "cut " << cut;
  }
  // Every strict prefix of the *payload* (reframed with a matching length)
  // must be rejected by the decoder, never crash or over-read.
  ASSERT_EQ(extract_binary_frame(wire, 1 << 20, frame_end, payload),
            BinFrameStatus::kFrame);
  const std::string full(payload);
  Request out;
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(parse_binary_request(full.substr(0, cut), out))
        << "cut " << cut;
  }
  // Trailing slack after a well-formed body is equally malformed.
  EXPECT_FALSE(parse_binary_request(full + '\0', out));
  EXPECT_TRUE(parse_binary_request(full, out));
}

TEST(BinaryFraming, RandomPayloadsNeverCrashTheDecoder) {
  Rng rng(20260808);
  Request out;
  std::size_t parsed = 0;
  for (int i = 0; i < 20000; ++i) {
    std::string payload;
    const std::size_t n = rng.below(64) + 1;
    payload.reserve(n);
    // Bias the first byte toward real opcodes so body decoding gets
    // exercised, not just the unknown-op bailout.
    payload += static_cast<char>(rng.chance(0.7) ? rng.below(10)
                                                 : rng.below(256));
    for (std::size_t j = 1; j < n; ++j) {
      payload += static_cast<char>(rng.below(256));
    }
    if (parse_binary_request(payload, out)) ++parsed;
  }
  // Sanity: random bytes occasionally decode (tiny PING/QUIT payloads),
  // proving the loop is not vacuously rejecting everything at the door.
  EXPECT_GT(parsed, 0u);

  // Mutations of valid frames: flip bytes in encoded requests and feed the
  // result straight to the decoder.
  Request seed;
  seed.kind = RequestKind::kPutBatch;
  seed.series = "mut/cpu";
  seed.seq = 9;
  seed.batch = {{1.0, 0.25}, {2.0, 0.5}, {3.0, 0.75}};
  std::string wire;
  append_binary_request(wire, seed);
  std::size_t frame_end = 0;
  std::string_view payload_view;
  ASSERT_EQ(extract_binary_frame(wire, 1 << 20, frame_end, payload_view),
            BinFrameStatus::kFrame);
  const std::string base(payload_view);
  for (int i = 0; i < 20000; ++i) {
    std::string mutated = base;
    const std::size_t flips = rng.below(4) + 1;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] = static_cast<char>(rng.below(256));
    }
    (void)parse_binary_request(mutated, out);
  }
}

// ---------------------------------------------------------------------------
// Replication verbs (REPL HELLO / BATCH / RESET, PROMOTE): text and binary
// forms, the failover reply helpers, and fuzz over the handshake/batch
// frames — a hostile or corrupted peer must draw ERR, never a crash or a
// desynced session.

TEST(ReplProtocol, TextFormsRoundTripThroughTheFormatter) {
  const auto hello = parse_request("REPL HELLO 7 4 10.0.0.2:7002");
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->kind, RequestKind::kReplHello);
  EXPECT_EQ(hello->epoch, 7u);
  EXPECT_EQ(hello->shard, 4u);  // shard COUNT in HELLO
  EXPECT_EQ(hello->endpoint, "10.0.0.2:7002");
  EXPECT_EQ(format_request(*hello), "REPL HELLO 7 4 10.0.0.2:7002");

  const std::string batch_line = "REPL BATCH 7 2 40 2 a/cpu 1.5 0.25 b 2 0.5";
  const auto batch = parse_request(batch_line);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->kind, RequestKind::kReplBatch);
  EXPECT_EQ(batch->epoch, 7u);
  EXPECT_EQ(batch->shard, 2u);
  EXPECT_EQ(batch->seq, 40u);  // absolute first index
  ASSERT_EQ(batch->repl.size(), 2u);
  EXPECT_EQ(batch->repl[0].series, "a/cpu");
  EXPECT_DOUBLE_EQ(batch->repl[0].measurement.time, 1.5);
  EXPECT_DOUBLE_EQ(batch->repl[0].measurement.value, 0.25);
  EXPECT_EQ(batch->repl[1].series, "b");
  EXPECT_DOUBLE_EQ(batch->repl[1].measurement.value, 0.5);
  EXPECT_EQ(format_request(*batch), batch_line);

  // Heartbeat: a zero-record batch is just a watermark probe.
  const auto beat = parse_request("REPL BATCH 7 0 40 0");
  ASSERT_TRUE(beat.has_value());
  EXPECT_TRUE(beat->repl.empty());
  EXPECT_EQ(format_request(*beat), "REPL BATCH 7 0 40 0");

  const std::string reset_line = "REPL RESET 7 1 10 3 1 s 1 0.5";
  const auto reset = parse_request(reset_line);
  ASSERT_TRUE(reset.has_value());
  EXPECT_EQ(reset->kind, RequestKind::kReplReset);
  EXPECT_EQ(reset->seq, 10u);            // chunk start
  EXPECT_EQ(reset->repl_remaining, 3u);  // records after this chunk
  ASSERT_EQ(reset->repl.size(), 1u);
  EXPECT_EQ(format_request(*reset), reset_line);

  const auto promote = parse_request("PROMOTE");
  ASSERT_TRUE(promote.has_value());
  EXPECT_EQ(promote->kind, RequestKind::kPromote);
  EXPECT_EQ(format_request(*promote), "PROMOTE");
}

TEST(ReplProtocol, MalformedReplLinesRejected) {
  for (const char* line : {
           "REPL",                                //
           "REPL HELLO",                          //
           "REPL HELLO 7",                        //
           "REPL HELLO 7 4",                      //
           "REPL HELLO x 4 -",                    //
           "REPL HELLO 7 y -",                    //
           "REPL HELLO 7 4 - extra",              //
           "REPL BATCH",                          //
           "REPL BATCH 7 0 40",                   //
           "REPL BATCH 7 0 40 2 a 1 0.5",         // count says 2, carries 1
           "REPL BATCH 7 0 40 1 a 1 0.5 b 2 1",   // count says 1, carries 2
           "REPL BATCH 7 0 40 1 a one 0.5",       //
           "REPL RESET 7 0 10",                   //
           "REPL RESET 7 0 10 3",                 //
           "REPL RESET 7 0 10 3 1 s 1",           //
           "REPL FLUSH 7 0",                      // unknown subverb
           "PROMOTE now",                         //
       }) {
    EXPECT_FALSE(parse_request(line).has_value()) << line;
  }
}

TEST(ReplProtocol, FailoverReplyHelpersRoundTrip) {
  std::string wire;
  append_repl_hello_response(wire, 5, 4, {3, 0, 9});
  EXPECT_EQ(wire, "OK 5 4 3 3 0 9");
  const auto hello = parse_repl_hello_response(wire);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->epoch, 5u);
  EXPECT_EQ(hello->synced_epoch, 4u);
  EXPECT_EQ(hello->watermarks, (std::vector<std::uint64_t>{3, 0, 9}));
  EXPECT_FALSE(parse_repl_hello_response("ERR stale_epoch 9").has_value());
  EXPECT_FALSE(parse_repl_hello_response("OK 5 4 3 3 0").has_value());
  EXPECT_FALSE(parse_repl_hello_response("OK 5 4").has_value());

  wire.clear();
  append_repl_ack(wire, 17);
  EXPECT_EQ(wire, "OK 17");
  EXPECT_EQ(parse_repl_ack("OK 17").value_or(0), 17u);
  EXPECT_FALSE(parse_repl_ack("ERR gap 3").has_value());
  EXPECT_FALSE(parse_repl_ack("OK").has_value());

  EXPECT_EQ(parse_not_primary("ERR not_primary 127.0.0.1:7002").value_or(1),
            7002u);
  EXPECT_EQ(parse_not_primary("ERR not_primary -").value_or(1), 0u);
  EXPECT_FALSE(parse_not_primary("ERR busy").has_value());
  EXPECT_FALSE(parse_not_primary("OK").has_value());

  EXPECT_EQ(parse_retry_after_ms("ERR busy retry_after_ms=250").value_or(0),
            250);
  EXPECT_FALSE(parse_retry_after_ms("ERR busy").has_value());
  EXPECT_FALSE(parse_retry_after_ms("OK").has_value());

  EXPECT_EQ(parse_stale_epoch("ERR stale_epoch 12").value_or(0), 12u);
  EXPECT_FALSE(parse_stale_epoch("ERR gap 12").has_value());
  EXPECT_FALSE(parse_stale_epoch("OK 12").has_value());
}

TEST(ReplProtocol, StatsSuffixParsesNewAndOldForms) {
  std::string wire;
  append_stats_response(wire, 3, 120, 130, 10, 7);
  append_stats_repl_suffix(wire, "follower", 4, 2);
  EXPECT_EQ(wire, "OK 3 120 130 10 7 role=follower epoch=4 repl_lag=2");
  const auto parsed = parse_stats_response(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->series, 3u);
  EXPECT_EQ(parsed->replay_skipped, 7u);
  EXPECT_EQ(parsed->role, "follower");
  EXPECT_EQ(parsed->epoch, 4u);
  EXPECT_EQ(parsed->repl_lag, 2u);

  // A pre-failover server's reply parses with the defaults.
  const auto old_form = parse_stats_response("OK 3 120 130 10 7");
  ASSERT_TRUE(old_form.has_value());
  EXPECT_TRUE(old_form->role.empty());
  EXPECT_EQ(old_form->epoch, 0u);
  EXPECT_EQ(old_form->repl_lag, 0u);

  // Unknown trailing key=value tokens are future servers, not errors; a
  // bare trailing token is a malformed reply.
  EXPECT_TRUE(
      parse_stats_response("OK 1 1 1 0 0 role=primary epoch=1 repl_lag=0 x=9")
          .has_value());
  EXPECT_FALSE(parse_stats_response("OK 1 1 1 0 0 role").has_value());
}

TEST(ReplProtocol, BinaryFormsRoundTripAndMatchTextParsing) {
  std::vector<Request> requests;
  {
    Request r;
    r.kind = RequestKind::kReplHello;
    r.epoch = 7;
    r.shard = 4;
    r.endpoint = "10.0.0.2:7002";
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kReplBatch;
    r.epoch = 7;
    r.shard = 2;
    r.seq = 40;
    r.repl = {{"a/cpu", {1.5, 0.25}}, {"b", {2.0, 0.5}}};
    requests.push_back(r);
  }
  {
    Request r;  // heartbeat
    r.kind = RequestKind::kReplBatch;
    r.epoch = 7;
    r.seq = 40;
    requests.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kReplReset;
    r.epoch = 7;
    r.shard = 1;
    r.seq = 10;
    r.repl_remaining = 3;
    r.repl = {{"s", {1.0, 0.5}}};
    requests.push_back(r);
  }
  for (const Request& req : requests) {
    const auto back = binary_round_trip(req);
    ASSERT_TRUE(back.has_value()) << format_request(req);
    // The text form is the parity oracle: both framings must parse to
    // requests with identical wire text.
    EXPECT_EQ(format_request(*back), format_request(req));
  }
}

TEST(ReplProtocol, FuzzedReplLinesNeverCrashOrDesyncTheSession) {
  ServerConfig cfg;
  cfg.role = ServerRole::kFollower;
  cfg.shards = 1;
  NwsServer follower(cfg);
  ASSERT_EQ(follower.handle_line("REPL HELLO 2 1 -"), "OK 2 0 1 0");
  ASSERT_EQ(follower.handle_line("REPL RESET 2 0 0 0 0"), "OK 0");

  const std::vector<std::string> seeds = {
      "REPL HELLO 2 1 127.0.0.1:7001",
      "REPL BATCH 2 0 0 2 a 1 0.5 b 1 0.4",
      "REPL RESET 2 0 0 1 1 s 1 0.5",
  };
  Rng rng(20260808);
  for (int i = 0; i < 4000; ++i) {
    std::string line = seeds[rng.below(seeds.size())];
    if (rng.chance(0.5)) {
      line = line.substr(0, rng.below(line.size() + 1));  // truncate
    } else {
      const std::size_t flips = rng.below(4) + 1;  // mutate bytes
      for (std::size_t f = 0; f < flips && !line.empty(); ++f) {
        line[rng.below(line.size())] = static_cast<char>(rng.below(256));
      }
    }
    const std::string reply = follower.handle_line(line);
    ASSERT_TRUE(reply.rfind("OK", 0) == 0 || reply.rfind("ERR", 0) == 0)
        << "line " << i << " drew unframed reply: " << reply;
  }
  // The session survived: STATS still parses and a fresh handshake (at an
  // epoch above anything the fuzz could have adopted) still answers.
  EXPECT_TRUE(parse_stats_response(follower.handle_line("STATS")).has_value());
  const auto hello = parse_repl_hello_response(
      follower.handle_line("REPL HELLO 99999999999 1 -"));
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->epoch, 99999999999u);
}

TEST(ReplProtocol, FuzzedReplBinaryFramesNeverCrashTheDecoder) {
  Request seed;
  seed.kind = RequestKind::kReplBatch;
  seed.epoch = 3;
  seed.shard = 1;
  seed.seq = 12;
  seed.repl = {{"mut/cpu", {1.0, 0.25}}, {"mut/cpu", {2.0, 0.5}}};
  std::string wire;
  append_binary_request(wire, seed);
  std::size_t frame_end = 0;
  std::string_view payload_view;
  ASSERT_EQ(extract_binary_frame(wire, 1 << 20, frame_end, payload_view),
            BinFrameStatus::kFrame);
  const std::string base(payload_view);

  Rng rng(424242);
  Request out;
  for (int i = 0; i < 20000; ++i) {
    std::string mutated = base;
    if (rng.chance(0.4)) {
      mutated = mutated.substr(0, rng.below(mutated.size() + 1));
    } else {
      const std::size_t flips = rng.below(4) + 1;
      for (std::size_t f = 0; f < flips && !mutated.empty(); ++f) {
        mutated[rng.below(mutated.size())] =
            static_cast<char>(rng.below(256));
      }
    }
    (void)parse_binary_request(mutated, out);  // must never crash/over-read
  }
  // And the unmutated frame still decodes to the seed.
  ASSERT_TRUE(parse_binary_request(base, out));
  EXPECT_EQ(format_request(out), format_request(seed));
}

}  // namespace
}  // namespace nws

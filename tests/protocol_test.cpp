// Unit tests for the nwscpu wire protocol, the NwsServer request handling,
// and the TCP server/client loopback path.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "nws/client.hpp"
#include "nws/protocol.hpp"
#include "nws/server.hpp"

namespace nws {
namespace {

// ---------------------------------------------------------------------------
// Request parsing

TEST(Protocol, ParsePut) {
  const auto req = parse_request("PUT host/cpu 120.5 0.75");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->kind, RequestKind::kPut);
  EXPECT_EQ(req->series, "host/cpu");
  EXPECT_DOUBLE_EQ(req->measurement.time, 120.5);
  EXPECT_DOUBLE_EQ(req->measurement.value, 0.75);
}

TEST(Protocol, ParseForecastValuesSeriesPingQuit) {
  EXPECT_EQ(parse_request("FORECAST a")->kind, RequestKind::kForecast);
  const auto values = parse_request("VALUES a 12");
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ(values->kind, RequestKind::kValues);
  EXPECT_EQ(values->max_values, 12u);
  EXPECT_EQ(parse_request("SERIES")->kind, RequestKind::kSeries);
  EXPECT_EQ(parse_request("PING")->kind, RequestKind::kPing);
  EXPECT_EQ(parse_request("QUIT")->kind, RequestKind::kQuit);
}

TEST(Protocol, ParseToleratesExtraWhitespaceAndCr) {
  const auto req = parse_request("  PUT   s   1   0.5 \r");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->series, "s");
}

struct BadLine {
  const char* name;
  const char* line;
};

class ProtocolBad : public ::testing::TestWithParam<BadLine> {};

TEST_P(ProtocolBad, Rejected) {
  EXPECT_FALSE(parse_request(GetParam().line).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ProtocolBad,
    ::testing::Values(BadLine{"empty", ""}, BadLine{"unknown_verb", "FROB x"},
                      BadLine{"put_missing_value", "PUT s 1.0"},
                      BadLine{"put_extra_field", "PUT s 1.0 0.5 9"},
                      BadLine{"put_bad_number", "PUT s one 0.5"},
                      BadLine{"forecast_no_series", "FORECAST"},
                      BadLine{"values_zero_max", "VALUES s 0"},
                      BadLine{"values_bad_max", "VALUES s many"},
                      BadLine{"series_with_arg", "SERIES x"},
                      BadLine{"ping_with_arg", "PING 1"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(Protocol, FormatParseRoundTrip) {
  Request req;
  req.kind = RequestKind::kPut;
  req.series = "thing2/cpu";
  req.measurement = {86400.125, 0.123456789012345};
  const auto back = parse_request(format_request(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->series, req.series);
  EXPECT_DOUBLE_EQ(back->measurement.time, req.measurement.time);
  EXPECT_DOUBLE_EQ(back->measurement.value, req.measurement.value);
}

// ---------------------------------------------------------------------------
// Response formatting / parsing

TEST(Protocol, OkAndErrorShapes) {
  EXPECT_TRUE(response_is_ok(format_ok()));
  EXPECT_TRUE(response_is_ok("OK 1 2 3"));
  EXPECT_FALSE(response_is_ok(format_error("nope")));
  EXPECT_FALSE(response_is_ok("OKAY"));
  EXPECT_FALSE(response_is_ok(""));
}

TEST(Protocol, ForecastResponseRoundTrip) {
  const std::string response =
      format_forecast_response(0.875, 0.031, 0.002, 1234, "sw_mean(10)");
  const auto reply = parse_forecast_response(response);
  ASSERT_TRUE(reply.has_value());
  EXPECT_DOUBLE_EQ(reply->value, 0.875);
  EXPECT_DOUBLE_EQ(reply->mae, 0.031);
  EXPECT_DOUBLE_EQ(reply->mse, 0.002);
  EXPECT_EQ(reply->history, 1234u);
  EXPECT_EQ(reply->method, "sw_mean(10)");
}

TEST(Protocol, ForecastResponseRejectsErrAndGarbage) {
  EXPECT_FALSE(parse_forecast_response("ERR unknown series").has_value());
  EXPECT_FALSE(parse_forecast_response("OK 1 2 3").has_value());
}

TEST(Protocol, ValuesResponseRoundTrip) {
  const std::vector<Measurement> values = {{1.0, 0.5}, {2.0, 0.75}};
  const auto back = parse_values_response(format_values_response(values));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_DOUBLE_EQ((*back)[1].value, 0.75);
  // Empty list round-trips too.
  const auto empty = parse_values_response(format_values_response({}));
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(Protocol, ValuesResponseRejectsCountMismatch) {
  EXPECT_FALSE(parse_values_response("OK 2 1.0 0.5").has_value());
}

TEST(Protocol, SeriesResponseRoundTrip) {
  const auto back = parse_series_response(
      format_series_response({"a/cpu", "b/cpu"}));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0], "a/cpu");
}

// ---------------------------------------------------------------------------
// Server request handling (no sockets)

TEST(Server, PutThenForecast) {
  NwsServer server;
  for (int i = 0; i < 20; ++i) {
    const std::string response = server.handle_line(
        "PUT h/cpu " + std::to_string(i * 10) + " 0.8");
    ASSERT_EQ(response, "OK");
  }
  const auto reply = parse_forecast_response(server.handle_line(
      "FORECAST h/cpu"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_NEAR(reply->value, 0.8, 1e-9);
  EXPECT_EQ(reply->history, 20u);
}

TEST(Server, ErrorsForUnknownSeriesAndMalformedLines) {
  NwsServer server;
  EXPECT_EQ(server.handle_line("FORECAST ghost").rfind("ERR", 0), 0u);
  EXPECT_EQ(server.handle_line("VALUES ghost 5").rfind("ERR", 0), 0u);
  EXPECT_EQ(server.handle_line("BOGUS").rfind("ERR", 0), 0u);
  EXPECT_EQ(server.handle_line("").rfind("ERR", 0), 0u);
}

TEST(Server, OutOfOrderPutRejected) {
  NwsServer server;
  EXPECT_EQ(server.handle_line("PUT s 100 0.5"), "OK");
  EXPECT_EQ(server.handle_line("PUT s 50 0.5").rfind("ERR", 0), 0u);
}

TEST(Server, ValuesReturnsMostRecent) {
  NwsServer server;
  for (int i = 0; i < 10; ++i) {
    (void)server.handle_line("PUT s " + std::to_string(i) + " 0." +
                             std::to_string(i));
  }
  const auto values = parse_values_response(server.handle_line("VALUES s 3"));
  ASSERT_TRUE(values.has_value());
  ASSERT_EQ(values->size(), 3u);
  EXPECT_DOUBLE_EQ(values->front().time, 7.0);
  EXPECT_DOUBLE_EQ(values->back().time, 9.0);
}

TEST(Server, SeriesListsEverything) {
  NwsServer server;
  (void)server.handle_line("PUT b 0 0.1");
  (void)server.handle_line("PUT a 0 0.2");
  const auto names = parse_series_response(server.handle_line("SERIES"));
  ASSERT_TRUE(names.has_value());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[0], "a");  // sorted
}

TEST(Server, PingQuitAndRequestCounter) {
  NwsServer server;
  EXPECT_EQ(server.handle_line("PING"), "OK");
  EXPECT_EQ(server.handle_line("QUIT"), "OK");
  EXPECT_EQ(server.requests_served(), 2u);
}

// ---------------------------------------------------------------------------
// TCP loopback

TEST(Net, ClientServerRoundTrip) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  EXPECT_TRUE(server.running());

  NwsClient client;
  ASSERT_TRUE(client.connect(port));
  EXPECT_TRUE(client.ping());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client.put("net/cpu", {i * 10.0, 0.6}));
  }
  const auto forecast = client.forecast("net/cpu");
  ASSERT_TRUE(forecast.has_value());
  EXPECT_NEAR(forecast->value, 0.6, 1e-9);
  EXPECT_EQ(forecast->history, 30u);

  const auto values = client.values("net/cpu", 5);
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ(values->size(), 5u);

  const auto names = client.series();
  ASSERT_TRUE(names.has_value());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ(names->front(), "net/cpu");

  EXPECT_FALSE(client.forecast("nope").has_value());
  client.disconnect();
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(Net, SequentialConnectionsShareState) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  {
    NwsClient sensor;
    ASSERT_TRUE(sensor.connect(port));
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(sensor.put("shared", {i * 1.0, 0.4}));
    }
  }  // sensor connection closes
  NwsClient scheduler;
  ASSERT_TRUE(scheduler.connect(port));
  const auto forecast = scheduler.forecast("shared");
  ASSERT_TRUE(forecast.has_value());
  EXPECT_EQ(forecast->history, 10u);
  server.stop();
}

TEST(Net, ManyConcurrentClients) {
  // The poll()-based event loop must interleave several live connections —
  // six sensors and one scheduler talking at once, as in the service demo.
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  std::vector<NwsClient> sensors(6);
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    ASSERT_TRUE(sensors[i].connect(port)) << i;
  }
  NwsClient scheduler;
  ASSERT_TRUE(scheduler.connect(port));
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (std::size_t i = 0; i < sensors.size(); ++i) {
      ASSERT_TRUE(sensors[i].put("host" + std::to_string(i),
                                 {epoch * 10.0, 0.1 * static_cast<double>(i)}));
    }
    ASSERT_TRUE(scheduler.ping());
  }
  const auto names = scheduler.series();
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(names->size(), sensors.size());
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    const auto f = scheduler.forecast("host" + std::to_string(i));
    ASSERT_TRUE(f.has_value()) << i;
    EXPECT_NEAR(f->value, 0.1 * static_cast<double>(i), 1e-6) << i;
    EXPECT_EQ(f->history, 20u);
  }
  EXPECT_GE(server.connections(), 7u);
  server.stop();
}

TEST(Net, QuitClosesOnlyThatConnection) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  NwsClient a, b;
  ASSERT_TRUE(a.connect(port));
  ASSERT_TRUE(b.connect(port));
  ASSERT_TRUE(a.put("s", {0.0, 0.5}));
  // Send QUIT on a; its connection drains and closes.
  Request quit;
  quit.kind = RequestKind::kQuit;
  (void)a.ping();
  // b keeps working regardless.
  EXPECT_TRUE(b.ping());
  EXPECT_TRUE(b.forecast("s").has_value());
  server.stop();
}

TEST(Net, ConnectToClosedPortFails) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  server.stop();
  NwsClient client;
  EXPECT_FALSE(client.connect(port));
  EXPECT_FALSE(client.ping());
}

TEST(Net, StopIsIdempotentAndRestartable) {
  NwsServer server;
  server.stop();  // not started: no-op
  const std::uint16_t p1 = server.start(0);
  ASSERT_NE(p1, 0);
  server.stop();
  server.stop();
  const std::uint16_t p2 = server.start(0);
  ASSERT_NE(p2, 0);
  NwsClient client;
  EXPECT_TRUE(client.connect(p2));
  EXPECT_TRUE(client.ping());
  server.stop();
}

TEST(Net, StartWhileRunningFails) {
  NwsServer server;
  ASSERT_NE(server.start(0), 0);
  EXPECT_EQ(server.start(0), 0);
  server.stop();
}

// ---------------------------------------------------------------------------
// Failure injection: hostile / broken peers must not wedge the server.

namespace failure_injection {

/// Raw socket helper for sending byte sequences no well-behaved client
/// would produce.
class RawPeer {
 public:
  explicit RawPeer(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawPeer() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  bool send_bytes(std::string_view bytes) {
    return fd_ >= 0 &&
           ::send(fd_, bytes.data(), bytes.size(), 0) ==
               static_cast<ssize_t>(bytes.size());
  }
  [[nodiscard]] std::string read_line() {
    std::string line;
    char c;
    while (fd_ >= 0 && ::recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') break;
      line += c;
    }
    return line;
  }

 private:
  int fd_ = -1;
};

TEST(NetFailure, FragmentedRequestReassembled) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  RawPeer peer(port);
  ASSERT_TRUE(peer.ok());
  ASSERT_TRUE(peer.send_bytes("PU"));
  ASSERT_TRUE(peer.send_bytes("T frag/cpu 1"));
  ASSERT_TRUE(peer.send_bytes("0 0.5\n"));
  EXPECT_EQ(peer.read_line(), "OK");
  server.stop();
}

TEST(NetFailure, PipelinedRequestsAllAnswered) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  RawPeer peer(port);
  ASSERT_TRUE(peer.ok());
  ASSERT_TRUE(
      peer.send_bytes("PUT p/cpu 0 0.5\nPUT p/cpu 10 0.6\nFORECAST p/cpu\n"));
  EXPECT_EQ(peer.read_line(), "OK");
  EXPECT_EQ(peer.read_line(), "OK");
  EXPECT_EQ(peer.read_line().rfind("OK ", 0), 0u);
  server.stop();
}

TEST(NetFailure, GarbageFloodAnsweredWithErrors) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  RawPeer peer(port);
  ASSERT_TRUE(peer.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(peer.send_bytes("\x01\x02 nonsense \xff\n"));
    EXPECT_EQ(peer.read_line().rfind("ERR", 0), 0u) << i;
  }
  // The server is still healthy for real clients afterwards.
  NwsClient client;
  ASSERT_TRUE(client.connect(port));
  EXPECT_TRUE(client.ping());
  server.stop();
}

TEST(NetFailure, AbruptDisconnectMidRequestIsHarmless) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  {
    RawPeer peer(port);
    ASSERT_TRUE(peer.ok());
    ASSERT_TRUE(peer.send_bytes("PUT half/cpu 10 0."));  // no newline
  }  // peer closes mid-line
  NwsClient client;
  ASSERT_TRUE(client.connect(port));
  EXPECT_TRUE(client.ping());
  // The half-line was never completed, so the series must not exist.
  EXPECT_FALSE(client.forecast("half/cpu").has_value());
  server.stop();
}

TEST(NetFailure, StopWithClientsMidSessionDoesNotHang) {
  NwsServer server;
  const std::uint16_t port = server.start(0);
  ASSERT_NE(port, 0);
  NwsClient a, b;
  ASSERT_TRUE(a.connect(port));
  ASSERT_TRUE(b.connect(port));
  ASSERT_TRUE(a.put("s", {0.0, 0.5}));
  server.stop();  // must join promptly despite two open connections
  EXPECT_FALSE(server.running());
}

}  // namespace failure_injection

}  // namespace
}  // namespace nws

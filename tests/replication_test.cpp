// Replicated journal streaming, live failover and the exactly-once client
// redirect (DESIGN.md §11).
//
// Deterministic units (ReplLog, the replmeta cursor file, endpoint lists,
// socket-free REPL verb handling through handle_line) plus live two-server
// scenarios: stream + state parity, snapshot resync of a lagging follower,
// PROMOTE fencing a stale primary, the follower's failover timer, and the
// reliable client walking its endpoint list across a promotion without
// losing or duplicating a sample.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nws/client.hpp"
#include "nws/replication.hpp"
#include "nws/server.hpp"
#include "obs/metrics.hpp"

namespace nws {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

bool wait_for(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

// ---------------------------------------------------------------------------
// ReplLog

TEST(ReplLog, AppendsWithAbsoluteIndicesAndEvictsOldest) {
  ReplLog log(3);
  EXPECT_EQ(log.start(), 0u);
  EXPECT_EQ(log.end(), 0u);
  EXPECT_TRUE(log.contains(0));   // resume-at-end needs no snapshot
  EXPECT_FALSE(log.contains(1));  // beyond the end does

  for (int i = 0; i < 5; ++i) {
    log.append("s", Measurement{static_cast<double>(i), 0.5});
  }
  EXPECT_EQ(log.start(), 2u);  // two evicted
  EXPECT_EQ(log.end(), 5u);
  EXPECT_FALSE(log.contains(1));
  EXPECT_TRUE(log.contains(2));
  EXPECT_TRUE(log.contains(5));
  EXPECT_FALSE(log.contains(6));

  std::vector<ReplSample> out;
  EXPECT_EQ(log.copy_from(3, 10, out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].measurement.time, 3.0);
  EXPECT_DOUBLE_EQ(out[1].measurement.time, 4.0);
  EXPECT_EQ(log.copy_from(5, 10, out), 0u);  // nothing past the end
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(log.copy_from(2, 1, out), 1u);  // max bounds the copy
  EXPECT_DOUBLE_EQ(out[0].measurement.time, 2.0);
}

TEST(ReplLog, ResetBaseRestartsIndexing) {
  ReplLog log(8);
  log.append("s", Measurement{1.0, 0.1});
  log.reset_base(42);
  EXPECT_EQ(log.start(), 42u);
  EXPECT_EQ(log.end(), 42u);
  EXPECT_FALSE(log.contains(41));
  EXPECT_TRUE(log.contains(42));
  log.append("s", Measurement{2.0, 0.2});
  EXPECT_EQ(log.end(), 43u);
}

// ---------------------------------------------------------------------------
// Replication meta (the follower's durable cursor)

class ReplMetaFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = fs::temp_directory_path() /
            ("nwscpu_replmeta_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove(path_, ec);
    fs::remove(path_.string() + ".tmp", ec);
  }
  fs::path path_;
};

TEST_F(ReplMetaFile, RoundTripsEpochAndWatermarks) {
  ReplMetaState state;
  state.epoch = 7;
  state.synced_epoch = 6;
  state.watermarks = {12, 0, 99};
  ASSERT_TRUE(save_repl_meta(path_, state));
  const auto loaded = load_repl_meta(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 7u);
  EXPECT_EQ(loaded->synced_epoch, 6u);
  EXPECT_EQ(loaded->watermarks, state.watermarks);
}

TEST_F(ReplMetaFile, TornOrGarbageFilesReadAsAbsent) {
  EXPECT_FALSE(load_repl_meta(path_).has_value());  // missing

  ReplMetaState state;
  state.epoch = 3;
  state.synced_epoch = 3;
  state.watermarks = {5, 5};
  ASSERT_TRUE(save_repl_meta(path_, state));
  // Tear the file: drop the trailing end-marker as a partial write would.
  std::string text;
  {
    std::ifstream in(path_);
    std::getline(in, text);
  }
  {
    std::ofstream out(path_, std::ios::trunc);
    out << text.substr(0, text.size() - 4);
  }
  EXPECT_FALSE(load_repl_meta(path_).has_value());

  {
    std::ofstream out(path_, std::ios::trunc);
    out << "not a replmeta file\n";
  }
  EXPECT_FALSE(load_repl_meta(path_).has_value());
}

TEST(EndpointList, ParsesPortsHostsAndDropsGarbage) {
  const auto list =
      parse_endpoint_list(" 7002, example.org:7003 ,bad:port, :0,,8000 ");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].host, "127.0.0.1");
  EXPECT_EQ(list[0].port, 7002);
  EXPECT_EQ(list[1].host, "example.org");
  EXPECT_EQ(list[1].port, 7003);
  EXPECT_EQ(list[2].host, "127.0.0.1");
  EXPECT_EQ(list[2].port, 8000);
  EXPECT_EQ(list[1].to_string(), "example.org:7003");
  EXPECT_TRUE(parse_endpoint_list("").empty());
}

// ---------------------------------------------------------------------------
// Socket-free REPL verb handling (handle_line is the protocol oracle)

ServerConfig follower_config(std::size_t shards = 1) {
  ServerConfig cfg;
  cfg.role = ServerRole::kFollower;
  cfg.shards = shards;
  return cfg;
}

TEST(ReplVerbs, HelloBatchAndGapAnswers) {
  NwsServer f(follower_config());
  EXPECT_FALSE(f.is_primary());
  EXPECT_EQ(f.epoch(), 0u);

  // Handshake adopts the primary's epoch and reports zero watermarks.
  EXPECT_EQ(f.handle_line("REPL HELLO 2 1 127.0.0.1:9001"), "OK 2 0 1 0");
  EXPECT_EQ(f.epoch(), 2u);
  EXPECT_EQ(f.primary_hint(), "127.0.0.1:9001");

  // Shard-count mismatch is refused before any state changes.
  EXPECT_EQ(f.handle_line("REPL HELLO 2 8 127.0.0.1:9001"),
            "ERR shard_mismatch 1");

  // A batch before the snapshot seal is a gap (synced_epoch != epoch).
  EXPECT_EQ(f.handle_line("REPL BATCH 2 0 0 1 a 1 0.5"), "ERR gap 0");

  // Empty snapshot seals the shard at watermark 0 under epoch 2.
  EXPECT_EQ(f.handle_line("REPL RESET 2 0 0 0 0"), "OK 0");
  EXPECT_EQ(f.handle_line("REPL BATCH 2 0 0 2 a 1 0.5 b 1 0.4"), "OK 2");
  EXPECT_EQ(f.handle_line("REPL BATCH 2 0 2 1 a 2 0.6"), "OK 3");
  // Heartbeat: no records, just the watermark.
  EXPECT_EQ(f.handle_line("REPL BATCH 2 0 3 0"), "OK 3");
  // A gap ahead of the watermark reports where to resume.
  EXPECT_EQ(f.handle_line("REPL BATCH 2 0 9 1 a 9 0.9"), "ERR gap 3");
  // Overlapping redelivery re-acks without re-applying (see STATS below).
  EXPECT_EQ(f.handle_line("REPL BATCH 2 0 0 3 a 1 0.5 b 1 0.4 a 2 0.6"),
            "OK 3");

  EXPECT_EQ(f.handle_line("STATS"),
            "OK 2 3 3 0 0 role=follower epoch=2 repl_lag=0");
  EXPECT_EQ(f.handle_line("VALUES a 10"), "OK 2 1 0.5 2 0.6");

  // Stale epochs are fenced; newer epochs adopted.
  EXPECT_EQ(f.handle_line("REPL BATCH 1 0 3 0"), "ERR stale_epoch 2");
  EXPECT_EQ(f.repl_fenced(), 1u);
  EXPECT_EQ(f.handle_line("REPL HELLO 5 1 127.0.0.1:9002"), "OK 5 2 1 3");
  EXPECT_EQ(f.primary_hint(), "127.0.0.1:9002");
}

TEST(ReplVerbs, SnapshotReplacesStateAndSealsWatermark) {
  NwsServer f(follower_config());
  EXPECT_EQ(f.handle_line("REPL HELLO 3 1 -"), "OK 3 0 1 0");
  // Chunked snapshot with absolute indices [5, 8): two chunks.
  EXPECT_EQ(f.handle_line("REPL RESET 3 0 5 1 2 a 1 0.5 a 2 0.6"), "OK 7");
  EXPECT_EQ(f.handle_line("REPL RESET 3 0 7 0 1 b 1 0.3"), "OK 8");
  EXPECT_EQ(f.handle_line("REPL BATCH 3 0 8 1 b 2 0.4"), "OK 9");
  EXPECT_EQ(f.handle_line("VALUES b 10"), "OK 2 1 0.3 2 0.4");

  // A chunk that does not extend the snapshot in progress restarts it.
  EXPECT_EQ(f.handle_line("REPL RESET 3 0 0 0 1 c 1 0.9"), "OK 1");
  EXPECT_EQ(f.handle_line("VALUES a 10"), "ERR unknown series");
  EXPECT_EQ(f.handle_line("VALUES c 10"), "OK 1 1 0.9");
}

TEST(ReplVerbs, FollowerRejectsClientWritesWithRedirect) {
  NwsServer f(follower_config());
  EXPECT_EQ(f.handle_line("PUT a 1 0.5"), "ERR not_primary -");
  EXPECT_EQ(f.handle_line("REPL HELLO 2 1 127.0.0.1:9001"), "OK 2 0 1 0");
  EXPECT_EQ(f.handle_line("PUTS a 1 1 0.5"),
            "ERR not_primary 127.0.0.1:9001");
  EXPECT_EQ(f.handle_line("PUTB a 1 1 1 0.5"),
            "ERR not_primary 127.0.0.1:9001");
  EXPECT_EQ(f.writes_redirected(), 3u);
  // Reads still serve (a scheduler may consult a warm standby).
  EXPECT_EQ(f.handle_line("SERIES"), "OK 0");
}

TEST(ReplVerbs, PromoteBumpsEpochPastEverySeenAndAcceptsWrites) {
  NwsServer f(follower_config());
  EXPECT_EQ(f.handle_line("REPL HELLO 7 1 127.0.0.1:9001"), "OK 7 0 1 0");
  EXPECT_EQ(f.handle_line("REPL RESET 7 0 0 0 1 a 1 0.5"), "OK 1");
  EXPECT_EQ(f.handle_line("PROMOTE"), "OK 8");
  EXPECT_TRUE(f.is_primary());
  EXPECT_EQ(f.promotions(), 1u);
  EXPECT_EQ(f.handle_line("PROMOTE"), "OK 8");  // idempotent
  EXPECT_EQ(f.promotions(), 1u);
  EXPECT_EQ(f.handle_line("PUT a 2 0.6"), "OK");
  // The fenced ex-primary's stream bounces off the higher epoch.
  EXPECT_EQ(f.handle_line("REPL BATCH 7 0 1 1 a 3 0.7"),
            "ERR stale_epoch 8");
  EXPECT_EQ(f.handle_line("STATS"),
            "OK 1 2 2 0 0 role=primary epoch=8 repl_lag=0");
}

TEST(ReplVerbs, DisabledWithoutConfigurationButPromoteStillAnswers) {
  NwsServer plain(ServerConfig{});
  EXPECT_EQ(plain.handle_line("REPL HELLO 9 1 x:1"),
            "ERR replication disabled");
  EXPECT_EQ(plain.handle_line("REPL BATCH 9 0 0 0"),
            "ERR replication disabled");
  // A fuzzer's huge epoch must not demote a standalone server.
  EXPECT_TRUE(plain.is_primary());
  EXPECT_EQ(plain.handle_line("PROMOTE"), "OK 1");  // already primary
  EXPECT_EQ(plain.handle_line("PUT a 1 0.5"), "OK");
}

// ---------------------------------------------------------------------------
// Live streaming between two servers

class ReplicationLive : public ::testing::Test {
 protected:
  void SetUp() override { obs::set_metrics_enabled(true); }

  static ServerConfig base_config(std::size_t shards) {
    ServerConfig cfg;
    cfg.shards = shards;
    cfg.repl_heartbeat_ms = 10;
    return cfg;
  }

  /// STATS parity that ignores the role/epoch suffix (the promoted
  /// follower's epoch legitimately differs from the old primary's).
  static void expect_stats_parity(NwsServer& a, NwsServer& b) {
    const auto sa = parse_stats_response(a.handle_line("STATS"));
    const auto sb = parse_stats_response(b.handle_line("STATS"));
    ASSERT_TRUE(sa.has_value());
    ASSERT_TRUE(sb.has_value());
    EXPECT_EQ(sa->series, sb->series);
    EXPECT_EQ(sa->retained, sb->retained);
    EXPECT_EQ(sa->appended, sb->appended);
    EXPECT_EQ(sa->dropped, sb->dropped);
  }
};

TEST_F(ReplicationLive, StreamsEveryShardAndServesIdenticalReads) {
  const std::size_t kShards = 4;
  NwsServer follower([&] {
    ServerConfig cfg = base_config(kShards);
    cfg.role = ServerRole::kFollower;
    return cfg;
  }());
  const std::uint16_t fport = follower.start(0);
  ASSERT_NE(fport, 0);

  NwsServer primary([&] {
    ServerConfig cfg = base_config(kShards);
    cfg.repl_followers = std::to_string(fport);
    return cfg;
  }());
  ASSERT_NE(primary.start(0), 0);

  const std::vector<std::string> series = {"cpu/a", "cpu/b", "cpu/c",
                                           "cpu/d", "cpu/e"};
  std::size_t total = 0;
  for (int t = 1; t <= 40; ++t) {
    for (const std::string& s : series) {
      const std::string line = "PUT " + s + " " + std::to_string(t) + " 0." +
                               std::to_string((t * 7) % 10);
      ASSERT_EQ(primary.handle_line(line), "OK");
      ++total;
    }
  }
  ASSERT_TRUE(wait_for([&] {
    const auto stats = parse_stats_response(follower.handle_line("STATS"));
    return stats && stats->appended == total;
  })) << "follower never caught up";

  EXPECT_EQ(follower.handle_line("SERIES"), primary.handle_line("SERIES"));
  for (const std::string& s : series) {
    EXPECT_EQ(follower.handle_line("VALUES " + s + " 64"),
              primary.handle_line("VALUES " + s + " 64"));
    EXPECT_EQ(follower.handle_line("FORECAST " + s),
              primary.handle_line("FORECAST " + s));
    EXPECT_EQ(follower.handle_line("STATS " + s),
              primary.handle_line("STATS " + s));
  }
  expect_stats_parity(primary, follower);
  EXPECT_EQ(follower.primary_hint(), "127.0.0.1:" +
                                         std::to_string(primary.port()));
  EXPECT_EQ(primary.repl_lag(), 0u);

  primary.stop();
  follower.stop();
}

TEST_F(ReplicationLive, LateFollowerResyncsViaSnapshotWhenLogEvicted) {
  const std::size_t kShards = 2;
  NwsServer follower([&] {
    ServerConfig cfg = base_config(kShards);
    cfg.role = ServerRole::kFollower;
    return cfg;
  }());
  const std::uint16_t fport = follower.start(0);
  ASSERT_NE(fport, 0);

  // Tiny log: by the time the stream starts, the early indices are gone
  // and only a snapshot can seed the follower.
  NwsServer primary([&] {
    ServerConfig cfg = base_config(kShards);
    cfg.repl_log_capacity = 8;
    cfg.repl_followers = std::to_string(fport);
    return cfg;
  }());
  // Pre-load before the sender threads exist (handle_line needs no
  // transport), so the log has evicted most of the history.
  std::size_t total = 0;
  for (int t = 1; t <= 50; ++t) {
    ASSERT_EQ(primary.handle_line("PUT cpu/x " + std::to_string(t) + " 0.5"),
              "OK");
    ASSERT_EQ(primary.handle_line("PUT cpu/y " + std::to_string(t) + " 0.7"),
              "OK");
    total += 2;
  }
  ASSERT_NE(primary.start(0), 0);

  ASSERT_TRUE(wait_for([&] {
    const auto stats = parse_stats_response(follower.handle_line("STATS"));
    return stats && stats->appended == total;
  })) << "snapshot resync never completed";
  EXPECT_EQ(follower.handle_line("VALUES cpu/x 64"),
            primary.handle_line("VALUES cpu/x 64"));
  EXPECT_EQ(follower.handle_line("VALUES cpu/y 64"),
            primary.handle_line("VALUES cpu/y 64"));
  EXPECT_EQ(follower.handle_line("SERIES"), primary.handle_line("SERIES"));

  primary.stop();
  follower.stop();
}

TEST_F(ReplicationLive, SyncReplicationAcksOnlyReplicatedWrites) {
  NwsServer follower([&] {
    ServerConfig cfg = base_config(1);
    cfg.role = ServerRole::kFollower;
    return cfg;
  }());
  const std::uint16_t fport = follower.start(0);
  ASSERT_NE(fport, 0);

  NwsServer primary([&] {
    ServerConfig cfg = base_config(1);
    cfg.repl_followers = std::to_string(fport);
    cfg.repl_sync = true;
    return cfg;
  }());
  ASSERT_NE(primary.start(0), 0);

  // An acked synchronous write is on the follower the moment the ack
  // returns — no wait_for needed.
  ASSERT_EQ(primary.handle_line("PUT cpu/s 1 0.5"), "OK");
  const auto stats = parse_stats_response(follower.handle_line("STATS"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->appended, 1u);

  primary.stop();
  follower.stop();
}

TEST_F(ReplicationLive, FailoverTimerPromotesSilentFollower) {
  NwsServer follower([&] {
    ServerConfig cfg = base_config(1);
    cfg.role = ServerRole::kFollower;
    cfg.failover_ms = 80;
    return cfg;
  }());
  ASSERT_NE(follower.start(0), 0);
  EXPECT_FALSE(follower.is_primary());
  // No primary ever speaks: the silence timer fires and the follower
  // promotes itself.
  EXPECT_TRUE(wait_for([&] { return follower.is_primary(); }, 5000));
  EXPECT_EQ(follower.promotions(), 1u);
  EXPECT_EQ(follower.handle_line("PUT a 1 0.5"), "OK");
  follower.stop();
}

TEST_F(ReplicationLive, ReliableClientFollowsPromotionExactlyOnce) {
  NwsServer follower([&] {
    ServerConfig cfg = base_config(2);
    cfg.role = ServerRole::kFollower;
    return cfg;
  }());
  const std::uint16_t fport = follower.start(0);
  ASSERT_NE(fport, 0);

  auto primary = std::make_unique<NwsServer>([&] {
    ServerConfig cfg = base_config(2);
    cfg.repl_followers = std::to_string(fport);
    cfg.repl_sync = true;  // acked writes provably survive the kill
    return cfg;
  }());
  const std::uint16_t pport = primary->start(0);
  ASSERT_NE(pport, 0);

  ClientConfig ccfg;
  ccfg.connect_timeout_ms = 500;
  ccfg.io_timeout_ms = 500;
  ccfg.max_flush_attempts = 20;
  ccfg.backoff = BackoffConfig{5.0, 40.0, 2.0, 0.5};
  ccfg.endpoints = {pport, fport};
  NwsClient client(ccfg);
  ASSERT_TRUE(client.connect(pport));

  for (int t = 1; t <= 20; ++t) {
    ASSERT_TRUE(client.put_reliable(
        "cpu/f", Measurement{static_cast<double>(t), 0.5}));
  }
  ASSERT_TRUE(client.flush());

  // Kill the primary mid-stream and promote the follower.
  primary->stop();
  primary.reset();
  ASSERT_EQ(follower.handle_line("PROMOTE"), "OK 2");

  for (int t = 21; t <= 40; ++t) {
    (void)client.put_reliable("cpu/f",
                              Measurement{static_cast<double>(t), 0.6});
  }
  bool drained = false;
  for (int i = 0; i < 20 && !drained; ++i) drained = client.flush();
  ASSERT_TRUE(drained);
  EXPECT_EQ(client.outbox_overflows(), 0u);

  // Exactly-once across the failover: all 40 samples, none twice.
  const auto stats = parse_stats_response(follower.handle_line("STATS"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->appended, 40u);
  EXPECT_EQ(stats->dropped, 0u);
  EXPECT_EQ(stats->role, "primary");
  EXPECT_EQ(stats->epoch, 2u);

  follower.stop();
}

TEST_F(ReplicationLive, DemotedPrimaryRedirectsToItsSuccessor) {
  NwsServer follower([&] {
    ServerConfig cfg = base_config(1);
    cfg.role = ServerRole::kFollower;
    return cfg;
  }());
  const std::uint16_t fport = follower.start(0);
  ASSERT_NE(fport, 0);

  NwsServer primary([&] {
    ServerConfig cfg = base_config(1);
    cfg.repl_followers = std::to_string(fport);
    return cfg;
  }());
  ASSERT_NE(primary.start(0), 0);
  ASSERT_EQ(primary.handle_line("PUT cpu/d 1 0.5"), "OK");
  ASSERT_TRUE(wait_for([&] {
    const auto stats = parse_stats_response(follower.handle_line("STATS"));
    return stats && stats->appended == 1;
  }));

  // Promote the follower while the old primary still runs: its stream is
  // fenced at the higher epoch and it steps down.
  ASSERT_EQ(follower.handle_line("PROMOTE"), "OK 2");
  EXPECT_TRUE(wait_for([&] { return !primary.is_primary(); }, 5000))
      << "stale primary never demoted";
  EXPECT_GE(follower.repl_fenced(), 1u);
  EXPECT_GE(primary.epoch(), 2u);
  const std::string reply = primary.handle_line("PUT cpu/d 2 0.6");
  EXPECT_EQ(reply.rfind("ERR not_primary", 0), 0u) << reply;
  EXPECT_GE(primary.writes_redirected(), 1u);

  primary.stop();
  follower.stop();
}

TEST_F(ReplicationLive, RebornPrimaryAtOldEpochIsFencedAtHandshake) {
  // A promoted follower at a high epoch; a "reborn" primary comes back at
  // epoch 1 believing it still leads.  Its very first handshake bounces
  // off the fence and it demotes — stale-primary writes can never land.
  NwsServer follower([&] {
    ServerConfig cfg = base_config(1);
    cfg.role = ServerRole::kFollower;
    return cfg;
  }());
  ASSERT_EQ(follower.handle_line("REPL HELLO 5 1 -"), "OK 5 0 1 0");
  ASSERT_EQ(follower.handle_line("PROMOTE"), "OK 6");
  const std::uint16_t fport = follower.start(0);
  ASSERT_NE(fport, 0);

  NwsServer reborn([&] {
    ServerConfig cfg = base_config(1);
    cfg.repl_followers = std::to_string(fport);
    return cfg;
  }());
  ASSERT_NE(reborn.start(0), 0);
  EXPECT_TRUE(wait_for([&] { return !reborn.is_primary(); }, 5000))
      << "reborn stale primary never demoted";
  EXPECT_GE(follower.repl_fenced(), 1u);
  EXPECT_GE(reborn.epoch(), 6u);
  const std::string reply = reborn.handle_line("PUT cpu/r 1 0.5");
  EXPECT_EQ(reply.rfind("ERR not_primary", 0), 0u) << reply;

  reborn.stop();
  follower.stop();
}

}  // namespace
}  // namespace nws

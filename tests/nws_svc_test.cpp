// Unit tests for src/nws: measurement memory, the forecast service, and
// trace persistence.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "forecast/methods.hpp"
#include "nws/forecast_service.hpp"
#include "nws/memory.hpp"
#include "nws/trace_io.hpp"
#include "util/rng.hpp"

namespace nws {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// SeriesStore

TEST(SeriesStore, AppendAndAccess) {
  SeriesStore store(4);
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.append({1.0, 0.5}));
  EXPECT_TRUE(store.append({2.0, 0.6}));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_DOUBLE_EQ(store.at(0).value, 0.5);
  EXPECT_DOUBLE_EQ(store.newest().time, 2.0);
}

TEST(SeriesStore, EvictsOldestAtCapacity) {
  SeriesStore store(3);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.append({static_cast<double>(i), i * 0.1}));
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_DOUBLE_EQ(store.at(0).time, 2.0);
  EXPECT_DOUBLE_EQ(store.newest().time, 4.0);
}

TEST(SeriesStore, RejectsOutOfOrderTimestamps) {
  SeriesStore store(4);
  EXPECT_TRUE(store.append({5.0, 0.1}));
  EXPECT_FALSE(store.append({4.0, 0.2}));
  EXPECT_EQ(store.size(), 1u);
  // Equal timestamps are allowed (multiple sensors can share an epoch).
  EXPECT_TRUE(store.append({5.0, 0.3}));
}

TEST(SeriesStore, RangeQuery) {
  SeriesStore store(10);
  for (int i = 0; i < 10; ++i) {
    store.append({static_cast<double>(i), static_cast<double>(i)});
  }
  const auto mid = store.range(3.0, 6.0);
  ASSERT_EQ(mid.size(), 4u);
  EXPECT_DOUBLE_EQ(mid.front().time, 3.0);
  EXPECT_DOUBLE_EQ(mid.back().time, 6.0);
  EXPECT_TRUE(store.range(100.0, 200.0).empty());
}

TEST(SeriesStore, ValuesInOrder) {
  SeriesStore store(3);
  for (int i = 0; i < 5; ++i) {
    store.append({static_cast<double>(i), static_cast<double>(i * i)});
  }
  const auto values = store.values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 4.0);
  EXPECT_DOUBLE_EQ(values[2], 16.0);
}

TEST(SeriesStore, ZeroCapacityThrows) {
  EXPECT_THROW(SeriesStore(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Memory

TEST(Memory, RecordsMultipleSeries) {
  Memory mem(16);
  EXPECT_TRUE(mem.record("a/cpu", {1.0, 0.5}));
  EXPECT_TRUE(mem.record("b/cpu", {1.0, 0.7}));
  EXPECT_TRUE(mem.contains("a/cpu"));
  EXPECT_FALSE(mem.contains("c/cpu"));
  EXPECT_EQ(mem.series_count(), 2u);
  ASSERT_NE(mem.find("b/cpu"), nullptr);
  EXPECT_DOUBLE_EQ(mem.find("b/cpu")->newest().value, 0.7);
  EXPECT_EQ(mem.find("missing"), nullptr);
}

TEST(Memory, SeriesNamesSorted) {
  Memory mem;
  mem.record("zeta", {0.0, 0.0});
  mem.record("alpha", {0.0, 0.0});
  const auto names = mem.series_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(Memory, OutOfOrderRejectedPerSeries) {
  Memory mem;
  EXPECT_TRUE(mem.record("s", {10.0, 0.1}));
  EXPECT_FALSE(mem.record("s", {5.0, 0.2}));
  // Other series are unaffected.
  EXPECT_TRUE(mem.record("t", {5.0, 0.2}));
}

// ---------------------------------------------------------------------------
// ForecastService

TEST(ForecastService, UnknownSeriesHasNoForecast) {
  ForecastService svc;
  EXPECT_FALSE(svc.predict("nope").has_value());
}

TEST(ForecastService, RecordsAndPredicts) {
  ForecastService svc;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(svc.record("host/cpu", {i * 10.0, 0.8}));
  }
  const auto f = svc.predict("host/cpu");
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(f->value, 0.8, 1e-9);
  EXPECT_EQ(f->history, 50u);
  EXPECT_NEAR(f->mae, 0.0, 1e-6);
  EXPECT_FALSE(f->method.empty());
}

TEST(ForecastService, TracksErrorOverChangingSeries) {
  ForecastService svc;
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    svc.record("host/cpu", {i * 10.0, rng.uniform(0.3, 0.7)});
  }
  const auto f = svc.predict("host/cpu");
  ASSERT_TRUE(f.has_value());
  EXPECT_GT(f->mae, 0.0);
  EXPECT_LT(f->mae, 0.3);
  EXPECT_GE(f->mse, 0.0);
}

TEST(ForecastService, RejectsOutOfOrderAndDoesNotFeedForecaster) {
  ForecastService svc;
  svc.record("s", {10.0, 0.5});
  EXPECT_FALSE(svc.record("s", {5.0, 0.9}));
  const auto f = svc.predict("s");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->history, 1u);
  EXPECT_NEAR(f->value, 0.5, 1e-9);
}

TEST(ForecastService, CustomFactoryIsUsed) {
  ForecastService svc(1024, [] {
    return std::make_unique<LastValueForecaster>();
  });
  svc.record("s", {0.0, 0.25});
  svc.record("s", {10.0, 0.75});
  const auto f = svc.predict("s");
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(f->value, 0.75);
  EXPECT_EQ(f->method, "last");
}

TEST(ForecastService, MemoryBoundedButForecastContinues) {
  ForecastService svc(8);  // tiny memory
  for (int i = 0; i < 100; ++i) {
    svc.record("s", {static_cast<double>(i), 0.6});
  }
  EXPECT_EQ(svc.memory().find("s")->size(), 8u);
  const auto f = svc.predict("s");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->history, 100u);  // forecaster saw everything
}

TEST(ForecastService, IndependentSeriesIndependentForecasts) {
  ForecastService svc;
  for (int i = 0; i < 30; ++i) {
    svc.record("low", {i * 10.0, 0.2});
    svc.record("high", {i * 10.0, 0.9});
  }
  EXPECT_NEAR(svc.predict("low")->value, 0.2, 1e-6);
  EXPECT_NEAR(svc.predict("high")->value, 0.9, 1e-6);
  EXPECT_EQ(svc.series_count(), 2u);
}

// ---------------------------------------------------------------------------
// Trace I/O

TEST(TraceIo, RoundTrip) {
  const fs::path path =
      fs::temp_directory_path() / "nwscpu_trace_roundtrip.csv";
  TimeSeries series("host/load", 600.0, 10.0, {0.1, 0.5, 0.9, 0.7});
  write_trace(path, series);
  const TimeSeries back = read_trace(path);
  ASSERT_EQ(back.size(), series.size());
  EXPECT_DOUBLE_EQ(back.period(), 10.0);
  EXPECT_DOUBLE_EQ(back.start(), 600.0);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i], series[i]);
  }
  fs::remove(path);
}

TEST(TraceIo, ReadRejectsTooShort) {
  const fs::path path = fs::temp_directory_path() / "nwscpu_trace_short.csv";
  std::ofstream(path) << "time_seconds,value\n1.0,0.5\n";
  EXPECT_THROW(read_trace(path), std::runtime_error);
  fs::remove(path);
}

TEST(TraceIo, ReadRejectsIrregularGrid) {
  const fs::path path =
      fs::temp_directory_path() / "nwscpu_trace_irregular.csv";
  std::ofstream(path) << "time_seconds,value\n0,0.5\n10,0.6\n25,0.7\n";
  EXPECT_THROW(read_trace(path), std::runtime_error);
  fs::remove(path);
}

TEST(TraceIo, ReadRejectsNonIncreasingTime) {
  const fs::path path =
      fs::temp_directory_path() / "nwscpu_trace_backwards.csv";
  std::ofstream(path) << "time_seconds,value\n10,0.5\n10,0.6\n";
  EXPECT_THROW(read_trace(path), std::runtime_error);
  fs::remove(path);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace("/nonexistent/trace.csv"), std::runtime_error);
}

}  // namespace
}  // namespace nws

// Unit tests for src/proc: /proc parsers, file readers, the real spin
// probe, and the live-host sensors (exercised against fake proc files).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "proc/procfs.hpp"
#include "proc/real_probe.hpp"
#include "proc/real_sensors.hpp"

namespace nws {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("nwscpu_proc_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  fs::path write(const std::string& name, const std::string& content) const {
    const fs::path p = dir_ / name;
    std::ofstream(p) << content;
    return p;
  }

 private:
  fs::path dir_;
};

// ---------------------------------------------------------------------------
// /proc/loadavg parsing

TEST(ParseLoadavg, TypicalLine) {
  const auto parsed = parse_loadavg("0.52 0.58 0.59 1/467 12345\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->one_minute, 0.52);
  EXPECT_DOUBLE_EQ(parsed->five_minutes, 0.58);
  EXPECT_DOUBLE_EQ(parsed->fifteen_minutes, 0.59);
}

TEST(ParseLoadavg, MinimalThreeFields) {
  EXPECT_TRUE(parse_loadavg("1.0 2.0 3.0").has_value());
}

struct BadInput {
  const char* name;
  const char* content;
};

class ParseLoadavgBad : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParseLoadavgBad, Rejected) {
  EXPECT_FALSE(parse_loadavg(GetParam().content).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseLoadavgBad,
    ::testing::Values(BadInput{"empty", ""}, BadInput{"garbage", "not a load"},
                      BadInput{"two_fields", "0.5 0.6"},
                      BadInput{"negative", "-1.0 0.5 0.5 1/2 3"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(ParseRunningCount, ExtractsNumeratorOfSlashField) {
  const auto running = parse_running_count("0.52 0.58 0.59 3/467 12345\n");
  ASSERT_TRUE(running.has_value());
  EXPECT_EQ(*running, 3);
}

class ParseRunningBad : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParseRunningBad, Rejected) {
  EXPECT_FALSE(parse_running_count(GetParam().content).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseRunningBad,
    ::testing::Values(BadInput{"empty", ""},
                      BadInput{"no_slash", "0.5 0.6 0.7 467 123"},
                      BadInput{"leading_slash", "0.5 0.6 0.7 /467 123"},
                      BadInput{"negative", "0.5 0.6 0.7 -1/467 123"},
                      BadInput{"non_numeric", "0.5 0.6 0.7 x/467 123"}),
    [](const auto& param_info) { return param_info.param.name; });

// ---------------------------------------------------------------------------
// /proc/stat parsing

TEST(ParseProcStat, ModernLineWithAllFields) {
  const auto st = parse_proc_stat(
      "cpu  100 20 30 400 50 6 7 8 0 0\n"
      "cpu0 100 20 30 400 50 6 7 8 0 0\n");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->user, 100u);
  EXPECT_EQ(st->nice_time, 20u);
  EXPECT_EQ(st->system, 30u);
  EXPECT_EQ(st->idle, 400u);
  EXPECT_EQ(st->iowait, 50u);
  EXPECT_EQ(st->irq, 6u);
  EXPECT_EQ(st->softirq, 7u);
  EXPECT_EQ(st->steal, 8u);
  EXPECT_EQ(st->total(), 100u + 20 + 30 + 400 + 50 + 6 + 7 + 8);
}

TEST(ParseProcStat, AncientFourFieldLine) {
  // 2.4-era kernels only had user/nice/system/idle.
  const auto st = parse_proc_stat("cpu 1 2 3 4\n");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->idle, 4u);
  EXPECT_EQ(st->iowait, 0u);
}

TEST(ParseProcStat, SkipsPerCpuAndOtherLines) {
  const auto st = parse_proc_stat(
      "intr 12345\n"
      "cpu0 9 9 9 9\n"
      "cpu 1 2 3 4\n");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->user, 1u);
}

TEST(ParseProcStat, RejectsMissingCpuLine) {
  EXPECT_FALSE(parse_proc_stat("intr 1 2 3\nctxt 99\n").has_value());
  EXPECT_FALSE(parse_proc_stat("").has_value());
}

TEST(ParseProcStat, RejectsTruncatedCpuLine) {
  EXPECT_FALSE(parse_proc_stat("cpu 1 2\n").has_value());
}

// ---------------------------------------------------------------------------
// File readers

TEST(ProcReaders, ReadFromFiles) {
  TempDir tmp;
  const auto loadavg = tmp.write("loadavg", "1.25 0.5 0.25 2/100 999\n");
  const auto stat = tmp.write("stat", "cpu 10 0 10 80 0 0 0 0\n");
  EXPECT_DOUBLE_EQ(read_loadavg(loadavg).one_minute, 1.25);
  EXPECT_EQ(read_running_count(loadavg), 2);
  EXPECT_EQ(read_proc_stat(stat).idle, 80u);
}

TEST(ProcReaders, MissingFileThrows) {
  EXPECT_THROW((void)read_loadavg("/nonexistent/loadavg"), std::runtime_error);
  EXPECT_THROW((void)read_proc_stat("/nonexistent/stat"), std::runtime_error);
}

TEST(ProcReaders, MalformedFileThrows) {
  TempDir tmp;
  const auto bad = tmp.write("loadavg", "oops\n");
  EXPECT_THROW((void)read_loadavg(bad), std::runtime_error);
  EXPECT_THROW((void)read_running_count(bad), std::runtime_error);
}

TEST(ProcReaders, RealProcfsIfPresent) {
  if (!fs::exists("/proc/loadavg")) GTEST_SKIP() << "no procfs";
  const LoadAvg load = read_loadavg();
  EXPECT_GE(load.one_minute, 0.0);
  const ProcStat st = read_proc_stat();
  EXPECT_GT(st.total(), 0u);
  EXPECT_GE(read_running_count(), 0);
}

// ---------------------------------------------------------------------------
// Real spin probe

TEST(RealProbe, AvailabilityWithinUnitInterval) {
  const ProbeResult r = run_cpu_probe(std::chrono::milliseconds(60));
  EXPECT_GE(r.wall_seconds, 0.055);
  EXPECT_GT(r.cpu_seconds, 0.0);
  EXPECT_GE(r.availability(), 0.0);
  EXPECT_LE(r.availability(), 1.0);
}

TEST(RealProbe, ZeroWallYieldsZeroAvailability) {
  ProbeResult r;
  r.cpu_seconds = 1.0;
  r.wall_seconds = 0.0;
  EXPECT_DOUBLE_EQ(r.availability(), 0.0);
}

TEST(RealProbe, MostlyIdleMachineGivesHighAvailability) {
  // This container is single-tenant during tests; the probe should obtain
  // the lion's share of the CPU.  Keep the bound loose for CI noise, retry
  // a few times (sibling test binaries run concurrently under `ctest -j`
  // and can momentarily crowd the probe out), and when the machine is
  // demonstrably busy — load per core >= 1 — skip rather than report a
  // failure that says nothing about the probe itself.
  double best = 0.0;
  for (int attempt = 0; attempt < 4 && best <= 0.3; ++attempt) {
    const ProbeResult r = run_cpu_probe(std::chrono::milliseconds(120));
    best = std::max(best, r.availability());
  }
  if (best <= 0.3 && fs::exists("/proc/loadavg")) {
    const LoadAvg load = read_loadavg();
    const auto cores =
        std::max(1u, std::thread::hardware_concurrency());
    if (load.one_minute >= static_cast<double>(cores)) {
      GTEST_SKIP() << "machine busy (1-min load " << load.one_minute << " on "
                   << cores << " cores); probe availability " << best;
    }
  }
  EXPECT_GT(best, 0.3);
}

// ---------------------------------------------------------------------------
// Real sensors over fake proc files

TEST(RealSensors, LoadAvgSensorAppliesEquation1) {
  TempDir tmp;
  const auto loadavg = tmp.write("loadavg", "1.00 0.9 0.8 1/50 10\n");
  RealLoadAvgSensor sensor(loadavg);
  EXPECT_DOUBLE_EQ(sensor.measure(), 0.5);
}

TEST(RealSensors, VmstatSensorDiffsIntervals) {
  TempDir tmp;
  const auto loadavg = tmp.write("loadavg", "0.0 0.0 0.0 1/50 10\n");
  const auto stat1 = tmp.write("stat", "cpu 100 0 100 800 0 0 0 0\n");
  RealVmstatSensor sensor(stat1, loadavg);
  (void)sensor.measure();  // prime
  // Next interval: 100 user, 0 sys, 900 idle jiffies.
  tmp.write("stat", "cpu 200 0 100 1700 0 0 0 0\n");
  const double a = sensor.measure();
  // np = 1/0 running minus the reader itself = 0 -> idle + user = 1.0.
  EXPECT_NEAR(a, 1.0, 1e-9);
}

TEST(RealSensors, VmstatSensorSeesBusyInterval) {
  TempDir tmp;
  // 2 running entities incl. reader -> np 1 after self-subtraction.
  const auto loadavg = tmp.write("loadavg", "1.0 1.0 1.0 2/50 10\n");
  const auto stat = tmp.write("stat", "cpu 0 0 0 0 0 0 0 0\n");
  RealVmstatSensor sensor(stat, loadavg, /*np_gain=*/1.0);
  (void)sensor.measure();
  // Interval fully consumed by user work.
  tmp.write("stat", "cpu 1000 0 0 0 0 0 0 0\n");
  EXPECT_NEAR(sensor.measure(), 0.5, 1e-9);
}

TEST(RealSensors, NicedCpuTimeCountsAsReclaimable) {
  TempDir tmp;
  const auto loadavg = tmp.write("loadavg", "1.0 1.0 1.0 1/50 10\n");
  const auto stat = tmp.write("stat", "cpu 0 0 0 0 0 0 0 0\n");
  RealVmstatSensor sensor(stat, loadavg, /*np_gain=*/1.0);
  (void)sensor.measure();
  // Interval fully consumed by nice-19 work: a full-priority newcomer
  // could reclaim all of it, so availability stays ~1.
  tmp.write("stat", "cpu 0 1000 0 0 0 0 0 0\n");
  EXPECT_NEAR(sensor.measure(), 1.0, 1e-9);
}

TEST(RealSensors, HybridMonitorProducesBoundedReadings) {
  if (!fs::exists("/proc/loadavg")) GTEST_SKIP() << "no procfs";
  RealHybridMonitor monitor({.probe_period = 3600.0,
                             .probe_duration = 0.05});
  const double first = monitor.measure(0.0);  // runs the tiny probe
  EXPECT_GE(first, 0.0);
  EXPECT_LE(first, 1.0);
  EXPECT_EQ(monitor.policy().probes_run(), 1u);
  const double second = monitor.measure(1.0);  // no probe due
  EXPECT_GE(second, 0.0);
  EXPECT_LE(second, 1.0);
  EXPECT_EQ(monitor.policy().probes_run(), 1u);
}

}  // namespace
}  // namespace nws

// The real CPU probe: a short full-priority spin measuring the availability
// it experiences, exactly as the NWS hybrid sensor's probe process does —
// the ratio of CPU time consumed (getrusage) to wall-clock time elapsed.
//
// Also used as the ground-truth "test process" on live hosts (with a longer
// duration).  Note the intrusiveness trade-off the paper quantifies: a
// `duration`-second spin every probe period costs duration/period of a CPU.
#pragma once

#include <chrono>

namespace nws {

struct ProbeResult {
  double cpu_seconds = 0.0;   ///< user+system CPU consumed by this thread
  double wall_seconds = 0.0;  ///< elapsed wall-clock time
  /// CPU availability the probe experienced, cpu/wall clamped to [0, 1].
  [[nodiscard]] double availability() const noexcept;
};

/// Spins for `wall` of wall-clock time on the calling thread and reports
/// the CPU share it obtained.  The spin performs real arithmetic work so it
/// cannot be optimised away and behaves like the paper's probe under
/// contention.
[[nodiscard]] ProbeResult run_cpu_probe(std::chrono::duration<double> wall);

}  // namespace nws

// Linux /proc parsing — the real-host measurement substrate.
//
// The paper's sensors shell out to `uptime` and `vmstat`; on modern Linux
// the same kernel counters are exposed directly in /proc, which is what the
// current NWS CPU monitor reads.  Parsers take the file *content* so they
// are unit-testable without procfs; the convenience readers open the real
// files (paths overridable for tests).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string_view>

namespace nws {

/// First three fields of /proc/loadavg: 1-, 5- and 15-minute load averages.
struct LoadAvg {
  double one_minute = 0.0;
  double five_minutes = 0.0;
  double fifteen_minutes = 0.0;
};

/// Aggregate "cpu" line of /proc/stat, in jiffies.  `nice_time` is time
/// spent by niced processes — exactly the CPU consumption the paper notes
/// load-derived metrics cannot separate from full-priority demand.
struct ProcStat {
  std::uint64_t user = 0;
  std::uint64_t nice_time = 0;
  std::uint64_t system = 0;
  std::uint64_t idle = 0;
  std::uint64_t iowait = 0;
  std::uint64_t irq = 0;
  std::uint64_t softirq = 0;
  std::uint64_t steal = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return user + nice_time + system + idle + iowait + irq + softirq + steal;
  }
};

/// Parses "0.52 0.58 0.59 1/467 12345" -> LoadAvg.  nullopt on malformed
/// input.
[[nodiscard]] std::optional<LoadAvg> parse_loadavg(std::string_view content);

/// Parses the first "cpu " line of /proc/stat.  nullopt if absent or
/// malformed.
[[nodiscard]] std::optional<ProcStat> parse_proc_stat(
    std::string_view content);

/// Number of currently runnable entities from the "N/M" field of
/// /proc/loadavg (N includes the reader itself).  nullopt on malformed
/// input.
[[nodiscard]] std::optional<int> parse_running_count(std::string_view content);

/// File readers (throw std::runtime_error on I/O failure).
[[nodiscard]] LoadAvg read_loadavg(
    const std::filesystem::path& path = "/proc/loadavg");
[[nodiscard]] ProcStat read_proc_stat(
    const std::filesystem::path& path = "/proc/stat");
[[nodiscard]] int read_running_count(
    const std::filesystem::path& path = "/proc/loadavg");

}  // namespace nws

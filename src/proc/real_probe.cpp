#include "proc/real_probe.hpp"

#include <sys/resource.h>
#include <sys/time.h>

#include <algorithm>
#include <cstdint>

#include "obs/metrics.hpp"

namespace nws {

namespace {

double thread_cpu_seconds() {
  rusage usage{};
  // RUSAGE_THREAD so a multi-threaded caller measures only the probe thread.
  getrusage(RUSAGE_THREAD, &usage);
  const auto to_sec = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return to_sec(usage.ru_utime) + to_sec(usage.ru_stime);
}

}  // namespace

double ProbeResult::availability() const noexcept {
  if (wall_seconds <= 0.0) return 0.0;
  return std::clamp(cpu_seconds / wall_seconds, 0.0, 1.0);
}

ProbeResult run_cpu_probe(std::chrono::duration<double> wall) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(wall);
  const double cpu_start = thread_cpu_seconds();

  // Busy arithmetic loop; `sink` is kept observable via volatile so the
  // optimiser must perform the work.
  volatile std::uint64_t sink = 0;
  std::uint64_t x = 0x243f6a8885a308d3ULL;
  while (Clock::now() < deadline) {
    for (int i = 0; i < 4096; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    sink = sink + x;
  }

  ProbeResult result;
  result.cpu_seconds = thread_cpu_seconds() - cpu_start;
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (obs::metrics_enabled()) {
    // Wall duration, not CPU share: the histogram answers "how long do
    // probes hold the CPU hostage" (the paper's intrusiveness trade-off).
    static obs::Histogram& h = obs::registry().histogram(
        "nws_probe_run_seconds", "Wall-clock duration of real CPU probes");
    h.record(static_cast<std::uint64_t>(result.wall_seconds * 1e9));
  }
  return result;
}

}  // namespace nws

// Live-host CPU availability sensors built on /proc — the real-machine
// counterparts of the simulated sensors in src/sensors.
//
// RealLoadAvgSensor and RealVmstatSensor produce the Equation 1 / Equation 2
// readings from /proc/loadavg and /proc/stat.  RealHybridMonitor composes
// them with the HybridSensor policy and the spin probe to run the full NWS
// hybrid method on the machine nwscpu itself runs on (see
// examples/live_monitor.cpp).
#pragma once

#include <filesystem>
#include <string>

#include "proc/procfs.hpp"
#include "sensors/availability.hpp"
#include "sensors/hybrid_sensor.hpp"

namespace nws {

class RealLoadAvgSensor {
 public:
  explicit RealLoadAvgSensor(std::filesystem::path loadavg_path =
                                 "/proc/loadavg")
      : path_(std::move(loadavg_path)) {}

  [[nodiscard]] std::string name() const { return "load_average"; }
  /// Equation 1 on the 1-minute load average.  Throws on I/O failure.
  [[nodiscard]] double measure() const;

 private:
  std::filesystem::path path_;
};

class RealVmstatSensor {
 public:
  RealVmstatSensor(std::filesystem::path stat_path = "/proc/stat",
                   std::filesystem::path loadavg_path = "/proc/loadavg",
                   double np_gain = 0.3);

  [[nodiscard]] std::string name() const { return "vmstat"; }
  /// Equation 2 on the jiffy deltas since the previous call.  The first
  /// call primes the counters and reports the unloaded estimate.  Throws on
  /// I/O failure.
  [[nodiscard]] double measure();

  [[nodiscard]] double smoothed_np() const noexcept { return np_; }

 private:
  std::filesystem::path stat_path_;
  std::filesystem::path loadavg_path_;
  double np_gain_;
  ProcStat prev_{};
  bool primed_ = false;
  double np_ = 0.0;
};

/// One full NWS hybrid measurement cycle on the live host: cheap readings
/// plus (when due) a real spin probe feeding the HybridSensor policy.
class RealHybridMonitor {
 public:
  explicit RealHybridMonitor(HybridConfig config = {});

  /// Takes one hybrid measurement at wall-clock time `now` (seconds since
  /// an arbitrary epoch, e.g. steady_clock).  Runs the spin probe when due
  /// (blocking for probe_duration).
  [[nodiscard]] double measure(double now);

  [[nodiscard]] const HybridSensor& policy() const noexcept { return hybrid_; }

 private:
  RealLoadAvgSensor load_;
  RealVmstatSensor vmstat_;
  HybridSensor hybrid_;
};

}  // namespace nws

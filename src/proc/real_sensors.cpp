#include "proc/real_sensors.hpp"

#include <cassert>
#include <chrono>

#include "proc/real_probe.hpp"

namespace nws {

double RealLoadAvgSensor::measure() const {
  return availability_from_load(read_loadavg(path_).one_minute);
}

RealVmstatSensor::RealVmstatSensor(std::filesystem::path stat_path,
                                   std::filesystem::path loadavg_path,
                                   double np_gain)
    : stat_path_(std::move(stat_path)),
      loadavg_path_(std::move(loadavg_path)),
      np_gain_(np_gain) {
  assert(np_gain > 0.0 && np_gain <= 1.0);
}

double RealVmstatSensor::measure() {
  const ProcStat cur = read_proc_stat(stat_path_);
  // The running count includes this reader; subtract ourselves as the
  // paper's sensors (separate monitor processes) effectively do.
  const int raw_running = read_running_count(loadavg_path_);
  const double n_run = raw_running > 0 ? raw_running - 1 : 0;
  np_ = primed_ ? (1.0 - np_gain_) * np_ + np_gain_ * n_run : n_run;

  CpuFractions f;
  if (primed_) {
    const auto du = static_cast<double>(cur.user - prev_.user);
    // Niced CPU consumption counts toward the share a full-priority process
    // can reclaim, so treat it as reclaimable (idle-like) rather than load:
    // that is precisely what the cheap methods get wrong in the paper and
    // the hybrid fixes; here the /proc split lets us do better directly.
    const auto dn = static_cast<double>(cur.nice_time - prev_.nice_time);
    const auto ds = static_cast<double>((cur.system - prev_.system) +
                                        (cur.irq - prev_.irq) +
                                        (cur.softirq - prev_.softirq));
    const auto di = static_cast<double>((cur.idle - prev_.idle) +
                                        (cur.iowait - prev_.iowait));
    const double total = du + dn + ds + di;
    if (total > 0) {
      f.user = du / total;
      f.sys = ds / total;
      f.idle = (di + dn) / total;
    }
  }
  prev_ = cur;
  primed_ = true;
  return availability_from_vmstat(f, np_);
}

RealHybridMonitor::RealHybridMonitor(HybridConfig config) : hybrid_(config) {}

double RealHybridMonitor::measure(double now) {
  const double load_reading = load_.measure();
  const double vmstat_reading = vmstat_.measure();
  if (hybrid_.probe_due(now)) {
    try {
      const ProbeResult probe = run_cpu_probe(
          std::chrono::duration<double>(hybrid_.config().probe_duration));
      hybrid_.probe_result(now, probe.availability(), load_reading,
                           vmstat_reading);
    } catch (...) {
      // A probe that cannot run (fork/priority/clock failure) must not
      // take the sensor down: degrade to the cheap methods and retry.
      hybrid_.probe_failed(now);
    }
  }
  return hybrid_.measure(load_reading, vmstat_reading);
}

}  // namespace nws

#include "proc/procfs.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace nws {

namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("cannot open " + path.string());
  }
  std::ostringstream ss;
  ss << file.rdbuf();
  return ss.str();
}

}  // namespace

std::optional<LoadAvg> parse_loadavg(std::string_view content) {
  std::istringstream ss{std::string(content)};
  LoadAvg out;
  if (!(ss >> out.one_minute >> out.five_minutes >> out.fifteen_minutes)) {
    return std::nullopt;
  }
  if (out.one_minute < 0.0 || out.five_minutes < 0.0 ||
      out.fifteen_minutes < 0.0) {
    return std::nullopt;
  }
  return out;
}

std::optional<int> parse_running_count(std::string_view content) {
  std::istringstream ss{std::string(content)};
  double l1 = 0.0, l5 = 0.0, l15 = 0.0;
  std::string frac;
  if (!(ss >> l1 >> l5 >> l15 >> frac)) return std::nullopt;
  const auto slash = frac.find('/');
  if (slash == std::string::npos || slash == 0) return std::nullopt;
  int running = 0;
  const auto [ptr, ec] =
      std::from_chars(frac.data(), frac.data() + slash, running);
  if (ec != std::errc{} || ptr != frac.data() + slash || running < 0) {
    return std::nullopt;
  }
  return running;
}

std::optional<ProcStat> parse_proc_stat(std::string_view content) {
  std::istringstream ss{std::string(content)};
  std::string line;
  while (std::getline(ss, line)) {
    if (line.rfind("cpu ", 0) != 0) continue;
    std::istringstream ls(line);
    std::string label;
    ProcStat st;
    if (!(ls >> label >> st.user >> st.nice_time >> st.system >> st.idle)) {
      return std::nullopt;
    }
    // Optional newer fields.
    ls >> st.iowait >> st.irq >> st.softirq >> st.steal;
    return st;
  }
  return std::nullopt;
}

LoadAvg read_loadavg(const std::filesystem::path& path) {
  const auto parsed = parse_loadavg(read_file(path));
  if (!parsed) throw std::runtime_error("malformed loadavg: " + path.string());
  return *parsed;
}

ProcStat read_proc_stat(const std::filesystem::path& path) {
  const auto parsed = parse_proc_stat(read_file(path));
  if (!parsed) throw std::runtime_error("malformed stat: " + path.string());
  return *parsed;
}

int read_running_count(const std::filesystem::path& path) {
  const auto parsed = parse_running_count(read_file(path));
  if (!parsed) throw std::runtime_error("malformed loadavg: " + path.string());
  return *parsed;
}

}  // namespace nws

#include "forecast/battery.hpp"

#include "forecast/methods.hpp"
#include "forecast/shared_window.hpp"

namespace nws {

std::vector<ForecasterPtr> make_nws_methods() {
  // Every windowed method below looks at a suffix of the same series, and
  // the suffixes nest inside the longest window (60): back them all with
  // one SharedMeasurementWindow instead of a ring buffer per method.
  // Sliding means of any width are O(1) cumulative-sum reads; each
  // distinct median/trimmed window length gets one order-statistic tree
  // (median(21) and trim_mean(21)/5 share theirs).
  auto shared = std::make_shared<SharedMeasurementWindow>(60);
  std::vector<ForecasterPtr> methods;
  methods.push_back(std::make_unique<LastValueForecaster>());
  methods.push_back(std::make_unique<RunningMeanForecaster>());
  for (std::size_t w : {5u, 10u, 20u, 30u, 60u}) {
    methods.push_back(std::make_unique<SharedTailMeanForecaster>(shared, w));
  }
  for (double g : {0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 0.9}) {
    methods.push_back(std::make_unique<ExpSmoothForecaster>(g));
  }
  for (std::size_t w : {5u, 11u, 21u, 31u}) {
    methods.push_back(std::make_unique<SharedTailMedianForecaster>(shared, w));
  }
  methods.push_back(
      std::make_unique<SharedTailTrimmedMeanForecaster>(shared, 21, 5));
  methods.push_back(std::make_unique<AdaptiveWindowForecaster>(
      AdaptiveWindowForecaster::Kind::kMean, 3, 60));
  methods.push_back(std::make_unique<AdaptiveWindowForecaster>(
      AdaptiveWindowForecaster::Kind::kMedian, 3, 60));
  methods.push_back(std::make_unique<GradientForecaster>());
  return methods;
}

std::unique_ptr<AdaptiveForecaster> make_nws_forecaster(
    std::size_t error_window, SelectionNorm norm) {
  return std::make_unique<AdaptiveForecaster>(make_nws_methods(),
                                              error_window, norm);
}

}  // namespace nws

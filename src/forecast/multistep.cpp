#include "forecast/multistep.hpp"

#include <cmath>

namespace nws {

HorizonError evaluate_horizon(const Forecaster& f, std::span<const double> xs,
                              std::size_t horizon) {
  HorizonError out;
  out.horizon = horizon;
  if (horizon == 0 || xs.size() < horizon + 1) return out;
  const auto fc = f.clone();
  fc->reset();

  // Rolling sum of the window x_t .. x_{t+k-1}.
  double window_sum = 0.0;
  for (std::size_t i = 0; i < horizon; ++i) window_sum += xs[i];

  double abs_acc = 0.0;
  double sq_acc = 0.0;
  std::size_t n = 0;
  for (std::size_t t = 0; t + horizon <= xs.size(); ++t) {
    if (t > 0) {
      // The forecast at time t has seen x_0..x_{t-1}.
      const double target = window_sum / static_cast<double>(horizon);
      const double err = fc->forecast() - target;
      abs_acc += std::abs(err);
      sq_acc += err * err;
      ++n;
    }
    fc->observe(xs[t]);
    if (t + horizon < xs.size()) {
      window_sum += xs[t + horizon] - xs[t];
    }
  }
  out.count = n;
  if (n > 0) {
    out.mae = abs_acc / static_cast<double>(n);
    out.rmse = std::sqrt(sq_acc / static_cast<double>(n));
  }
  return out;
}

std::vector<HorizonError> evaluate_horizons(
    const Forecaster& f, std::span<const double> xs,
    std::span<const std::size_t> horizons) {
  std::vector<HorizonError> out;
  out.reserve(horizons.size());
  for (std::size_t k : horizons) {
    out.push_back(evaluate_horizon(f, xs, k));
  }
  return out;
}

}  // namespace nws

// Autoregressive forecaster: AR(p) fitted by Yule-Walker over a sliding
// window.
//
// The strongest classical competitor to the NWS battery on host-load
// series: Dinda & O'Halloran's follow-up work found AR(16) models to be
// the best practical predictors for Unix load.  nwscpu ships it as an
// *extension* — bench/ablation_ar.cpp measures what adding it to the NWS
// battery buys on the paper's series (the canonical battery stays as the
// paper had it).
//
// Implementation: sample autocovariances over the most recent `window`
// measurements, Levinson-Durbin recursion for the AR coefficients, refit
// every `refit_interval` observations (the fit is O(window * p + p^2)).
// Forecast = mean + sum phi_i * (x_{t-i} - mean), clamped to the observed
// range to keep an ill-conditioned fit from producing absurd availability.
#pragma once

#include <cstddef>
#include <vector>

#include "forecast/forecaster.hpp"
#include "forecast/window.hpp"

namespace nws {

class ArForecaster final : public Forecaster {
 public:
  /// order >= 1; window must comfortably exceed the order (>= 4 * order is
  /// enforced); refit_interval >= 1.
  explicit ArForecaster(std::size_t order = 16, std::size_t window = 256,
                        std::size_t refit_interval = 10);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override;
  void observe(double value) override;
  void reset() override;
  [[nodiscard]] ForecasterPtr clone() const override;

  [[nodiscard]] std::size_t order() const noexcept { return order_; }
  /// Current coefficients (empty until the first fit).
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return phi_;
  }

 private:
  void refit();

  std::size_t order_;
  SlidingWindow win_;
  std::size_t refit_interval_;
  std::size_t since_fit_ = 0;
  std::vector<double> phi_;  // AR coefficients, most recent lag first
  double fit_mean_ = 0.0;
  double lo_ = kInitialGuess;
  double hi_ = kInitialGuess;
  bool has_data_ = false;
};

}  // namespace nws

// Offline forecaster evaluation over a recorded series.
//
// Runs a forecaster through a series in time order and records the
// one-step-ahead forecast made *before* each value arrived, together with
// summary error statistics.  This implements the paper's "one step ahead
// prediction error" (Equation 5): |forecast_t - measurement_t| averaged
// over the series.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "forecast/forecaster.hpp"
#include "tsa/series.hpp"

namespace nws {

struct ForecastEvaluation {
  std::string method;
  /// forecasts[i] is the prediction for series[i] made from series[0..i-1].
  std::vector<double> forecasts;
  /// Errors skip index 0 (no history yet): errors[i-1] corresponds to
  /// series[i].
  std::vector<double> errors;
  double mae = 0.0;   ///< mean absolute error
  double mse = 0.0;   ///< mean squared error
  double rmse = 0.0;  ///< root mean squared error
  double mape = 0.0;  ///< mean absolute percentage error (skips zeros)
};

/// Evaluates a (reset) copy of the forecaster over `xs` in order.
[[nodiscard]] ForecastEvaluation evaluate_forecaster(const Forecaster& f,
                                                     std::span<const double> xs);

[[nodiscard]] ForecastEvaluation evaluate_forecaster(const Forecaster& f,
                                                     const TimeSeries& series);

/// Convenience: evaluates every method plus the adaptive battery and
/// returns the evaluations sorted by ascending MAE.
[[nodiscard]] std::vector<ForecastEvaluation> evaluate_battery(
    std::span<const double> xs, std::size_t error_window = 50);

}  // namespace nws

#include "forecast/order_stat_window.hpp"

#include <algorithm>

namespace nws {

namespace detail {

OrderStatIndex::OrderStatIndex(std::size_t capacity_hint) {
  sorted_.reserve(capacity_hint);
}

void OrderStatIndex::insert(double x) {
  const auto pos = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  sorted_.insert(pos, x);
  total_ += x;
  if (++mutations_since_rebase_ >= kRebaseInterval) rebase();
}

bool OrderStatIndex::erase(double x) {
  const auto pos = std::lower_bound(sorted_.begin(), sorted_.end(), x);
  if (pos == sorted_.end() || *pos != x) return false;
  sorted_.erase(pos);
  total_ -= x;
  if (++mutations_since_rebase_ >= kRebaseInterval) rebase();
  return true;
}

void OrderStatIndex::clear() noexcept {
  sorted_.clear();
  total_ = 0.0;
  mutations_since_rebase_ = 0;
}

double OrderStatIndex::sum_smallest(std::size_t k) const noexcept {
  if (k > sorted_.size()) k = sorted_.size();
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) acc += sorted_[i];
  return acc;
}

double OrderStatIndex::median() const noexcept {
  const std::size_t n = sorted_.size();
  if (n == 0) return 0.0;
  const std::size_t mid = n / 2;
  if (n % 2 == 1) return sorted_[mid];
  return 0.5 * (sorted_[mid - 1] + sorted_[mid]);
}

double OrderStatIndex::trimmed_mean(std::size_t trim) const noexcept {
  const std::size_t n = sorted_.size();
  if (n == 0) return 0.0;
  const std::size_t max_trim = (n - 1) / 2;
  const std::size_t t = trim < max_trim ? trim : max_trim;
  // total_ minus O(t) reads off the sorted ends; t is small (<= 5 in the
  // canonical battery), so this stays cheap for any window size.
  double cut = 0.0;
  for (std::size_t i = 0; i < t; ++i) {
    cut += sorted_[i] + sorted_[n - 1 - i];
  }
  return (total_ - cut) / static_cast<double>(n - 2 * t);
}

void OrderStatIndex::rebase() noexcept {
  mutations_since_rebase_ = 0;
  double acc = 0.0;
  for (const double v : sorted_) acc += v;
  total_ = acc;
}

}  // namespace detail

void ValueRing::push(double x) noexcept {
  total_ += x;
  if (size_ == capacity_) {
    cum_prior_ = cum_[head_];
    buf_[head_] = x;
    cum_[head_] = total_;
    head_ = (head_ + 1) % capacity_;
  } else {
    const std::size_t slot = (head_ + size_) % capacity_;
    buf_[slot] = x;
    cum_[slot] = total_;
    ++size_;
  }
  if (++pushes_since_rebase_ >= kRebaseInterval) rebase();
}

void ValueRing::clear() noexcept {
  head_ = 0;
  size_ = 0;
  total_ = 0.0;
  cum_prior_ = 0.0;
  pushes_since_rebase_ = 0;
}

double ValueRing::tail_sum(std::size_t k) const noexcept {
  if (k > size_) k = size_;
  if (k == 0) return 0.0;
  const double before =
      k == size_ ? cum_prior_ : cum_[(head_ + (size_ - k - 1)) % capacity_];
  return total_ - before;
}

double ValueRing::tail_mean(std::size_t k) const noexcept {
  if (k > size_) k = size_;
  if (k == 0) return 0.0;
  return tail_sum(k) / static_cast<double>(k);
}

void ValueRing::rebase() noexcept {
  pushes_since_rebase_ = 0;
  cum_prior_ = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t slot = (head_ + i) % capacity_;
    acc += buf_[slot];
    cum_[slot] = acc;
  }
  total_ = acc;
}

}  // namespace nws

#include "forecast/shared_window.hpp"

namespace nws {

std::size_t SharedMeasurementWindow::tracker_for(std::size_t length) {
  for (std::size_t i = 0; i < trackers_.size(); ++i) {
    if (trackers_[i].length() == length) return i;
  }
  trackers_.emplace_back(length);
  // Late registration: adopt whatever history the ring already holds.
  trackers_.back().set_length(length, ring_);
  return trackers_.size() - 1;
}

void SharedMeasurementWindow::observe(std::uint64_t* seen, double x) {
  ++*seen;
  if (*seen <= ticks_) return;  // a sibling already recorded this tick
  for (SuffixOrderStat& t : trackers_) t.before_push(ring_, x);
  ring_.push(x);
  ++ticks_;
  *seen = ticks_;  // heals desync if a sibling reset the window
}

void SharedMeasurementWindow::clear() noexcept {
  ring_.clear();
  for (SuffixOrderStat& t : trackers_) t.reset(t.length());
  ticks_ = 0;
}

namespace {

std::string sized_name(const char* base, std::size_t w) {
  return std::string(base) + "(" + std::to_string(w) + ")";
}

SharedWindowPtr detached_copy(const SharedWindowPtr& win) {
  return std::make_shared<SharedMeasurementWindow>(*win);
}

}  // namespace

std::string SharedTailMeanForecaster::name() const {
  return sized_name("sw_mean", window_);
}

void SharedTailMeanForecaster::reset() {
  seen_ = 0;
  win_->clear();
}

ForecasterPtr SharedTailMeanForecaster::clone() const {
  auto copy = std::make_unique<SharedTailMeanForecaster>(*this);
  copy->win_ = detached_copy(win_);
  return copy;
}

SharedTailMedianForecaster::SharedTailMedianForecaster(SharedWindowPtr win,
                                                       std::size_t window)
    : win_(std::move(win)),
      window_(window),
      tracker_(win_->tracker_for(window)) {}

std::string SharedTailMedianForecaster::name() const {
  return sized_name("median", window_);
}

void SharedTailMedianForecaster::reset() {
  seen_ = 0;
  win_->clear();
}

ForecasterPtr SharedTailMedianForecaster::clone() const {
  auto copy = std::make_unique<SharedTailMedianForecaster>(*this);
  copy->win_ = detached_copy(win_);
  return copy;
}

SharedTailTrimmedMeanForecaster::SharedTailTrimmedMeanForecaster(
    SharedWindowPtr win, std::size_t window, std::size_t trim)
    : win_(std::move(win)),
      window_(window),
      trim_(trim),
      tracker_(win_->tracker_for(window)) {}

std::string SharedTailTrimmedMeanForecaster::name() const {
  return sized_name("trim_mean", window_) + "/" + std::to_string(trim_);
}

void SharedTailTrimmedMeanForecaster::reset() {
  seen_ = 0;
  win_->clear();
}

ForecasterPtr SharedTailTrimmedMeanForecaster::clone() const {
  auto copy = std::make_unique<SharedTailTrimmedMeanForecaster>(*this);
  copy->win_ = detached_copy(win_);
  return copy;
}

}  // namespace nws

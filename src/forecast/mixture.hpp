// MixtureForecaster: error-weighted combination of the battery.
//
// The NWS picks a single recent winner (AdaptiveForecaster).  An obvious
// extension — and the direction the paper's conclusions gesture at — is to
// *blend* the battery instead: each method contributes proportionally to
// the inverse of its recent error, so several near-tied methods average
// out their idiosyncrasies instead of the selection jumping between them.
// bench/ablation_mixture.cpp compares the two on every host series.
#pragma once

#include <cstddef>
#include <vector>

#include "forecast/forecaster.hpp"
#include "forecast/window.hpp"

namespace nws {

class MixtureForecaster final : public Forecaster {
 public:
  /// Takes ownership of the battery.  `error_window` bounds the recent
  /// error estimate per method; `sharpness` controls how strongly weights
  /// concentrate on low-error methods (1 = inverse-error, larger = closer
  /// to pure selection).
  explicit MixtureForecaster(std::vector<ForecasterPtr> methods,
                             std::size_t error_window = 50,
                             double sharpness = 2.0);

  MixtureForecaster(const MixtureForecaster& other);
  MixtureForecaster& operator=(const MixtureForecaster&) = delete;

  [[nodiscard]] std::string name() const override { return "nws_mixture"; }
  [[nodiscard]] double forecast() const override;
  void observe(double value) override;
  void reset() override;
  [[nodiscard]] ForecasterPtr clone() const override;

  [[nodiscard]] std::size_t num_methods() const noexcept {
    return methods_.size();
  }
  /// Current weight of method i (normalised; uniform before any errors).
  [[nodiscard]] double weight(std::size_t i) const;

 private:
  [[nodiscard]] std::vector<double> weights() const;

  std::vector<ForecasterPtr> methods_;
  std::vector<SlidingWindow> errors_;
  std::size_t error_window_;
  double sharpness_;
  std::size_t observed_ = 0;
};

}  // namespace nws

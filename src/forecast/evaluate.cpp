#include "forecast/evaluate.hpp"

#include <algorithm>
#include <cmath>

#include "forecast/battery.hpp"

namespace nws {

ForecastEvaluation evaluate_forecaster(const Forecaster& f,
                                       std::span<const double> xs) {
  ForecastEvaluation ev;
  ev.method = f.name();
  auto fc = f.clone();
  fc->reset();
  ev.forecasts.reserve(xs.size());
  double abs_acc = 0.0;
  double sq_acc = 0.0;
  double pct_acc = 0.0;
  std::size_t pct_n = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fc->forecast();
    ev.forecasts.push_back(pred);
    if (i > 0) {
      const double err = pred - xs[i];
      ev.errors.push_back(err);
      abs_acc += std::abs(err);
      sq_acc += err * err;
      if (xs[i] != 0.0) {
        pct_acc += std::abs(err / xs[i]);
        ++pct_n;
      }
    }
    fc->observe(xs[i]);
  }
  const std::size_t n = ev.errors.size();
  if (n > 0) {
    ev.mae = abs_acc / static_cast<double>(n);
    ev.mse = sq_acc / static_cast<double>(n);
    ev.rmse = std::sqrt(ev.mse);
    ev.mape = pct_n ? pct_acc / static_cast<double>(pct_n) : 0.0;
  }
  return ev;
}

ForecastEvaluation evaluate_forecaster(const Forecaster& f,
                                       const TimeSeries& series) {
  return evaluate_forecaster(f, series.values());
}

std::vector<ForecastEvaluation> evaluate_battery(std::span<const double> xs,
                                                 std::size_t error_window) {
  std::vector<ForecastEvaluation> out;
  for (const auto& m : make_nws_methods()) {
    out.push_back(evaluate_forecaster(*m, xs));
  }
  const auto adaptive = make_nws_forecaster(error_window);
  out.push_back(evaluate_forecaster(*adaptive, xs));
  std::sort(out.begin(), out.end(),
            [](const ForecastEvaluation& a, const ForecastEvaluation& b) {
              return a.mae < b.mae;
            });
  return out;
}

}  // namespace nws

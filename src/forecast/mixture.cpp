#include "forecast/mixture.hpp"

#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace nws {

MixtureForecaster::MixtureForecaster(std::vector<ForecasterPtr> methods,
                                     std::size_t error_window,
                                     double sharpness)
    : methods_(std::move(methods)),
      error_window_(error_window ? error_window : 1),
      sharpness_(sharpness) {
  if (methods_.empty()) {
    throw std::invalid_argument("MixtureForecaster: empty battery");
  }
  assert(sharpness_ > 0.0);
  errors_.reserve(methods_.size());
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    errors_.emplace_back(error_window_);
  }
}

MixtureForecaster::MixtureForecaster(const MixtureForecaster& other)
    : errors_(other.errors_),
      error_window_(other.error_window_),
      sharpness_(other.sharpness_),
      observed_(other.observed_) {
  methods_.reserve(other.methods_.size());
  for (const auto& m : other.methods_) methods_.push_back(m->clone());
}

std::vector<double> MixtureForecaster::weights() const {
  std::vector<double> w(methods_.size(), 1.0);
  bool any_error = false;
  for (const SlidingWindow& e : errors_) any_error |= !e.empty();
  if (any_error) {
    // Floor keeps a perfectly-scoring method from taking infinite weight
    // and keeps methods with no samples yet at a finite share.
    constexpr double kFloor = 1e-4;
    for (std::size_t i = 0; i < errors_.size(); ++i) {
      const double mae = errors_[i].empty() ? 1.0 : errors_[i].mean();
      w[i] = std::pow(1.0 / (mae + kFloor), sharpness_);
    }
  }
  double total = 0.0;
  for (double x : w) total += x;
  for (double& x : w) x /= total;
  return w;
}

double MixtureForecaster::weight(std::size_t i) const {
  return weights().at(i);
}

double MixtureForecaster::forecast() const {
  const std::vector<double> w = weights();
  double acc = 0.0;
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    acc += w[i] * methods_[i]->forecast();
  }
  return acc;
}

void MixtureForecaster::observe(double value) {
  if (observed_ > 0) {
    for (std::size_t i = 0; i < methods_.size(); ++i) {
      errors_[i].push(std::abs(methods_[i]->forecast() - value));
    }
  }
  for (auto& m : methods_) m->observe(value);
  ++observed_;
}

void MixtureForecaster::reset() {
  for (auto& m : methods_) m->reset();
  for (auto& e : errors_) e.clear();
  observed_ = 0;
}

ForecasterPtr MixtureForecaster::clone() const {
  return std::make_unique<MixtureForecaster>(*this);
}

}  // namespace nws

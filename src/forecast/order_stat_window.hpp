// Incremental order statistics over sliding measurement windows.
//
// The NWS design constraint is that every forecasting technique "must be
// relatively cheap to compute": a deployed forecaster processes every
// measurement of every tracked series on-line.  SlidingWindow (window.hpp)
// pays O(w log w) per median/trimmed-mean call (copy + sort).  The classes
// here make the same queries O(log w) per *push* with no per-call
// allocation:
//
//   OrderStatIndex   — sorted multiset index with a running total:
//                      insert/erase locate by binary search, k-th smallest
//                      and the median are O(1) reads, trimmed sums are
//                      O(trim) reads off the sorted ends.
//   ValueRing        — ring buffer with running cumulative sums: O(1)
//                      tail-window means for arbitrary suffix lengths.
//   SuffixOrderStat  — an OrderStatIndex slaved to the most recent L
//                      elements of a ValueRing; L can be retargeted
//                      incrementally (the adaptive-window forecaster moves
//                      it as its window adapts).
//   OrderStatWindow  — SlidingWindow-compatible facade combining a
//                      ValueRing with a full-window OrderStatIndex.
//
// Numerical notes: median() and kth() return exact element values and are
// bit-identical to a sort-based recompute.  Sums (mean, trimmed mean) are
// maintained incrementally — the index keeps a running total that is
// rebased from the raw values periodically, like the ring's cumulative
// sums — so they agree with a naive left-to-right summation to within
// summation-reordering rounding (~1 ulp of the window sum), not
// bit-for-bit.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace nws {

namespace detail {

/// Sorted multiset index of doubles with a running total.  insert/erase
/// find their position by binary search (O(log n) comparisons) and shift
/// the tail of one contiguous array — for forecaster-sized windows this is
/// a short memmove, far cheaper than any pointer- or pool-based tree, and
/// a warmed-up index never allocates.  kth()/median() are O(1) array
/// reads; trimmed sums read O(trim) elements off the sorted ends.  The
/// running total is rebased from the raw values periodically to bound
/// floating-point drift.
class OrderStatIndex {
 public:
  explicit OrderStatIndex(std::size_t capacity_hint = 0);

  void insert(double x);
  /// Removes one instance of x; returns false if absent.
  bool erase(double x);
  /// Empties the index, keeping array capacity.
  void clear() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }

  /// k-th smallest element, 0-based; k must be < size().
  [[nodiscard]] double kth(std::size_t k) const noexcept {
    return sorted_[k];
  }
  /// Sum of the k smallest elements (k clamped to size()).  O(k).
  [[nodiscard]] double sum_smallest(std::size_t k) const noexcept;

  /// Median of the contents (0 when empty); exact element values.
  [[nodiscard]] double median() const noexcept;
  /// Mean after discarding `trim` elements at each extreme, clamped so at
  /// least one element remains (the NWS alpha-trimmed estimator).
  [[nodiscard]] double trimmed_mean(std::size_t trim) const noexcept;

 private:
  static constexpr std::size_t kRebaseInterval = 1u << 15;

  void rebase() noexcept;

  std::vector<double> sorted_;
  double total_ = 0.0;
  std::size_t mutations_since_rebase_ = 0;
};

}  // namespace detail

/// Ring buffer over the most recent `capacity` values with running
/// cumulative sums: any tail (suffix) sum or mean is O(1).  The cumulative
/// sums are rebased from the raw values periodically to bound
/// floating-point drift, exactly like SlidingWindow's incremental mean.
class ValueRing {
 public:
  explicit ValueRing(std::size_t capacity)
      : capacity_(capacity), buf_(capacity), cum_(capacity) {
    assert(capacity >= 1);
  }

  void push(double x) noexcept;
  void clear() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == capacity_; }

  /// Oldest-to-newest element access; i < size().
  [[nodiscard]] double at(std::size_t i) const noexcept {
    assert(i < size_);
    return buf_[(head_ + i) % capacity_];
  }
  [[nodiscard]] double newest() const noexcept { return at(size_ - 1); }
  [[nodiscard]] double oldest() const noexcept { return at(0); }

  /// Sum of the most recent k elements (k clamped to size()).  O(1).
  [[nodiscard]] double tail_sum(std::size_t k) const noexcept;
  /// Mean of the most recent k elements (0 when empty).  O(1).
  [[nodiscard]] double tail_mean(std::size_t k) const noexcept;
  [[nodiscard]] double mean() const noexcept { return tail_mean(size_); }

 private:
  static constexpr std::size_t kRebaseInterval = 1u << 15;

  void rebase() noexcept;

  std::size_t capacity_;
  std::vector<double> buf_;
  std::vector<double> cum_;  // cumulative total as of each slot's push
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  double total_ = 0.0;      // cumulative total as of the newest push
  double cum_prior_ = 0.0;  // cumulative total just before the oldest
  std::size_t pushes_since_rebase_ = 0;
};

/// Order statistics over the most recent length() elements of a ValueRing.
/// The owner must call before_push(ring, x) immediately before every
/// ring.push(x) so the index tracks the suffix incrementally: O(log w) per
/// step.  length() can be retargeted at any time; the adjustment reuses
/// the ring's history and costs O(delta * log w).
class SuffixOrderStat {
 public:
  explicit SuffixOrderStat(std::size_t length)
      : length_(length < 1 ? 1 : length), index_(length_) {}

  /// Syncs the index for the arrival of x: evicts the element leaving the
  /// suffix (if it is full) and inserts x.  Call before ring.push(x).
  void before_push(const ValueRing& ring, double x) {
    if (index_.size() == length_) {
      index_.erase(ring.at(ring.size() - length_));
    }
    index_.insert(x);
  }

  /// Retargets the tracked suffix length, pulling any newly covered
  /// elements from (or returning shed elements to) the ring's history.
  void set_length(std::size_t length, const ValueRing& ring) {
    length_ = length < 1 ? 1 : length;
    const std::size_t n = ring.size();
    while (index_.size() > length_) {
      index_.erase(ring.at(n - index_.size()));
    }
    const std::size_t want = length_ < n ? length_ : n;
    while (index_.size() < want) {
      index_.insert(ring.at(n - index_.size() - 1));
    }
  }

  /// Empties the index and adopts a (possibly new) length; for reset()
  /// paths where the backing ring is cleared too.
  void reset(std::size_t length) noexcept {
    length_ = length < 1 ? 1 : length;
    index_.clear();
  }

  [[nodiscard]] std::size_t length() const noexcept { return length_; }
  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] bool empty() const noexcept { return index_.empty(); }
  [[nodiscard]] double median() const noexcept { return index_.median(); }
  [[nodiscard]] double trimmed_mean(std::size_t trim) const noexcept {
    return index_.trimmed_mean(trim);
  }
  [[nodiscard]] double kth(std::size_t k) const noexcept {
    return index_.kth(k);
  }

 private:
  std::size_t length_;
  detail::OrderStatIndex index_;
};

/// Drop-in replacement for SlidingWindow where order statistics are on the
/// hot path: push is O(log w) and median()/trimmed_mean() are O(log w)
/// queries with no per-call copy, sort or allocation.
class OrderStatWindow {
 public:
  explicit OrderStatWindow(std::size_t capacity)
      : ring_(capacity), index_(capacity) {}

  void push(double x) {
    if (ring_.full()) index_.erase(ring_.oldest());
    index_.insert(x);
    ring_.push(x);
  }

  void clear() noexcept {
    ring_.clear();
    index_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.capacity();
  }
  [[nodiscard]] bool empty() const noexcept { return ring_.empty(); }
  [[nodiscard]] bool full() const noexcept { return ring_.full(); }
  [[nodiscard]] double at(std::size_t i) const noexcept { return ring_.at(i); }
  [[nodiscard]] double newest() const noexcept { return ring_.newest(); }
  [[nodiscard]] double oldest() const noexcept { return ring_.oldest(); }

  [[nodiscard]] double mean() const noexcept { return ring_.mean(); }
  [[nodiscard]] double tail_mean(std::size_t k) const noexcept {
    return ring_.tail_mean(k);
  }
  [[nodiscard]] double median() const noexcept { return index_.median(); }
  [[nodiscard]] double trimmed_mean(std::size_t trim) const noexcept {
    return index_.trimmed_mean(trim);
  }
  [[nodiscard]] double kth(std::size_t k) const noexcept {
    return index_.kth(k);
  }

 private:
  ValueRing ring_;
  detail::OrderStatIndex index_;
};

}  // namespace nws

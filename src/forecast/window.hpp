// Fixed-capacity sliding window over the most recent measurements.
//
// Shared by the windowed forecasters (sliding mean, median, trimmed mean)
// and the adaptive battery's error trackers.  Ring-buffer backed: O(1)
// insertion, O(1) windowed mean via an incremental sum, O(w log w) median.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

namespace nws {

class SlidingWindow {
 public:
  /// capacity must be >= 1.
  explicit SlidingWindow(std::size_t capacity)
      : capacity_(capacity), buf_(capacity) {
    assert(capacity >= 1);
  }

  void push(double x) noexcept {
    if (size_ == capacity_) {
      sum_ -= buf_[head_];
      buf_[head_] = x;
      head_ = (head_ + 1) % capacity_;
    } else {
      buf_[(head_ + size_) % capacity_] = x;
      ++size_;
    }
    sum_ += x;
    if (++pushes_since_refresh_ >= kRefreshInterval) {
      pushes_since_refresh_ = 0;
      // Single linear pass over the raw buffer: when the window is not yet
      // full the live elements are buf_[0, size_) (head_ only advances on
      // eviction), and when it is full size_ == capacity_ covers the whole
      // buffer — no modulo indexing needed either way.
      sum_ = 0.0;
      for (std::size_t i = 0; i < size_; ++i) sum_ += buf_[i];
    }
  }

  void clear() noexcept {
    size_ = 0;
    head_ = 0;
    sum_ = 0.0;
    pushes_since_refresh_ = 0;
    // Release the median/trimmed-mean scratch allocation too: a cleared
    // window should not pin capacity from past use.  (swap idiom rather
    // than shrink_to_fit: guaranteed deallocation, cannot throw.)
    std::vector<double>().swap(scratch_);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == capacity_; }

  /// Oldest-to-newest element access; i < size().
  [[nodiscard]] double at(std::size_t i) const noexcept {
    assert(i < size_);
    return buf_[(head_ + i) % capacity_];
  }
  [[nodiscard]] double newest() const noexcept { return at(size_ - 1); }
  [[nodiscard]] double oldest() const noexcept { return at(0); }

  /// Mean of the current contents (0 when empty).  The incremental sum is
  /// refreshed from scratch periodically to bound floating-point drift.
  [[nodiscard]] double mean() const noexcept {
    return size_ ? sum_ / static_cast<double>(size_) : 0.0;
  }

  /// Copies contents (oldest first) into `out`, resizing it.
  void copy_to(std::vector<double>& out) const {
    out.resize(size_);
    for (std::size_t i = 0; i < size_; ++i) out[i] = at(i);
  }

  /// Median of the current contents (0 when empty).
  [[nodiscard]] double median() const {
    if (size_ == 0) return 0.0;
    scratch_.resize(size_);
    for (std::size_t i = 0; i < size_; ++i) scratch_[i] = at(i);
    const std::size_t mid = size_ / 2;
    std::nth_element(scratch_.begin(),
                     scratch_.begin() + static_cast<std::ptrdiff_t>(mid),
                     scratch_.end());
    if (size_ % 2 == 1) return scratch_[mid];
    const double hi = scratch_[mid];
    const double lo = *std::max_element(
        scratch_.begin(), scratch_.begin() + static_cast<std::ptrdiff_t>(mid));
    return 0.5 * (lo + hi);
  }

  /// Mean of the window after discarding `trim` elements at each extreme
  /// (the NWS "alpha-trimmed" estimator).  trim is clamped so that at least
  /// one element remains.
  [[nodiscard]] double trimmed_mean(std::size_t trim) const {
    if (size_ == 0) return 0.0;
    scratch_.resize(size_);
    for (std::size_t i = 0; i < size_; ++i) scratch_[i] = at(i);
    std::sort(scratch_.begin(), scratch_.end());
    const std::size_t max_trim = (size_ - 1) / 2;
    const std::size_t t = std::min(trim, max_trim);
    double acc = 0.0;
    for (std::size_t i = t; i < size_ - t; ++i) acc += scratch_[i];
    return acc / static_cast<double>(size_ - 2 * t);
  }

 private:
  static constexpr std::size_t kRefreshInterval = 1u << 15;

  std::size_t capacity_;
  std::vector<double> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  double sum_ = 0.0;
  std::size_t pushes_since_refresh_ = 0;
  mutable std::vector<double> scratch_;
};

}  // namespace nws

// Forecaster: the one-step-ahead prediction interface (paper, Section 3).
//
// The NWS treats a measurement history as a time series and produces a
// forecast for the *next* measurement.  Every concrete method is cheap —
// O(1) or O(window) per update — because forecasts are recomputed on-line
// for every series a deployed NWS tracks.
//
// Protocol: observe() feeds measurements in time order; forecast() returns
// the prediction for the value that the *next* observe() will deliver.
// forecast() before any observe() returns `initial_guess` (0.5 by default:
// "half the CPU", a neutral prior for an availability fraction).
#pragma once

#include <memory>
#include <string>
#include <string_view>

namespace nws {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Human-readable method name, e.g. "sw_mean(10)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Prediction of the next value.
  [[nodiscard]] virtual double forecast() const = 0;

  /// Feeds the next measurement.
  virtual void observe(double value) = 0;

  /// Forgets all history.
  virtual void reset() = 0;

  /// Deep copy (used by the adaptive battery and by evaluation sweeps).
  [[nodiscard]] virtual std::unique_ptr<Forecaster> clone() const = 0;

  /// Value returned by forecast() before any data has been observed.
  static constexpr double kInitialGuess = 0.5;
};

using ForecasterPtr = std::unique_ptr<Forecaster>;

}  // namespace nws

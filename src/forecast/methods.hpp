// The concrete NWS forecasting methods (paper Section 3; Wolski '98).
//
// Each method computes a one-step-ahead forecast from a "sliding window"
// over previous measurements using an estimate of the mean or median of
// those measurements.  All are deliberately cheap; the battery (adaptive.hpp)
// runs every one of them on every series and picks the recent winner.
#pragma once

#include <cstddef>

#include "forecast/forecaster.hpp"
#include "forecast/window.hpp"

namespace nws {

/// Predicts the last observed value ("persistence").  The strongest naive
/// baseline on slowly varying series.
class LastValueForecaster final : public Forecaster {
 public:
  [[nodiscard]] std::string name() const override { return "last"; }
  [[nodiscard]] double forecast() const override {
    return has_ ? last_ : kInitialGuess;
  }
  void observe(double value) override {
    last_ = value;
    has_ = true;
  }
  void reset() override { has_ = false; }
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  double last_ = kInitialGuess;
  bool has_ = false;
};

/// Mean of the entire history (O(1) incremental).
class RunningMeanForecaster final : public Forecaster {
 public:
  [[nodiscard]] std::string name() const override { return "run_mean"; }
  [[nodiscard]] double forecast() const override {
    return n_ ? mean_ : kInitialGuess;
  }
  void observe(double value) override {
    ++n_;
    mean_ += (value - mean_) / static_cast<double>(n_);
  }
  void reset() override {
    n_ = 0;
    mean_ = 0.0;
  }
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
};

/// Mean of the most recent `window` measurements.
class SlidingMeanForecaster final : public Forecaster {
 public:
  explicit SlidingMeanForecaster(std::size_t window) : win_(window) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override {
    return win_.empty() ? kInitialGuess : win_.mean();
  }
  void observe(double value) override { win_.push(value); }
  void reset() override { win_.clear(); }
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  SlidingWindow win_;
};

/// Exponential smoothing p' = (1-g)*p + g*x with gain g in (0, 1].
class ExpSmoothForecaster final : public Forecaster {
 public:
  explicit ExpSmoothForecaster(double gain) : gain_(gain) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override {
    return has_ ? state_ : kInitialGuess;
  }
  void observe(double value) override {
    state_ = has_ ? (1.0 - gain_) * state_ + gain_ * value : value;
    has_ = true;
  }
  void reset() override { has_ = false; }
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  double gain_;
  double state_ = kInitialGuess;
  bool has_ = false;
};

/// Median of the most recent `window` measurements.  Robust to the load
/// spikes that contaminate mean-based estimates.
class MedianForecaster final : public Forecaster {
 public:
  explicit MedianForecaster(std::size_t window) : win_(window) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override {
    return win_.empty() ? kInitialGuess : win_.median();
  }
  void observe(double value) override { win_.push(value); }
  void reset() override { win_.clear(); }
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  SlidingWindow win_;
};

/// Alpha-trimmed mean: mean of the window after discarding the `trim`
/// smallest and `trim` largest samples.
class TrimmedMeanForecaster final : public Forecaster {
 public:
  TrimmedMeanForecaster(std::size_t window, std::size_t trim)
      : win_(window), trim_(trim) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override {
    return win_.empty() ? kInitialGuess : win_.trimmed_mean(trim_);
  }
  void observe(double value) override { win_.push(value); }
  void reset() override { win_.clear(); }
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  SlidingWindow win_;
  std::size_t trim_;
};

/// Adaptive-window mean or median: tracks the recent forecast error of a
/// small, a current and a large window and moves the current window size
/// toward the best performer.  This is the NWS "adaptive window" idea:
/// shrink when the series shifts regime, grow when it is stable.
class AdaptiveWindowForecaster final : public Forecaster {
 public:
  enum class Kind { kMean, kMedian };

  /// Window size is kept within [min_window, max_window]; the error
  /// comparison uses an exponentially discounted mean absolute error with
  /// the given discount (closer to 1 = longer error memory).
  AdaptiveWindowForecaster(Kind kind, std::size_t min_window,
                           std::size_t max_window, double discount = 0.95);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override;
  void observe(double value) override;
  void reset() override;
  [[nodiscard]] ForecasterPtr clone() const override;

  /// Current window length (exposed for tests/ablations).
  [[nodiscard]] std::size_t current_window() const noexcept { return cur_; }

 private:
  [[nodiscard]] double window_estimate(std::size_t w) const;

  Kind kind_;
  std::size_t min_w_;
  std::size_t max_w_;
  double discount_;
  std::size_t cur_;
  SlidingWindow win_;  // holds max_window samples; estimates use suffixes
  double err_small_ = 0.0;
  double err_cur_ = 0.0;
  double err_large_ = 0.0;
  std::size_t observed_ = 0;
};

/// Gradient ("sign-tracking") predictor: p' = p + g * (x - p) where the
/// gain g itself adapts — it is increased while the errors keep the same
/// sign (the predictor is lagging a trend) and decreased when the error
/// sign alternates (the predictor is chasing noise).
class GradientForecaster final : public Forecaster {
 public:
  explicit GradientForecaster(double initial_gain = 0.1,
                              double min_gain = 0.01, double max_gain = 0.9);
  [[nodiscard]] std::string name() const override { return "adapt_grad"; }
  [[nodiscard]] double forecast() const override {
    return has_ ? state_ : kInitialGuess;
  }
  void observe(double value) override;
  void reset() override;
  [[nodiscard]] ForecasterPtr clone() const override;

  [[nodiscard]] double gain() const noexcept { return gain_; }

 private:
  double initial_gain_;
  double min_gain_;
  double max_gain_;
  double gain_;
  double state_ = kInitialGuess;
  double last_error_ = 0.0;
  bool has_ = false;
};

}  // namespace nws

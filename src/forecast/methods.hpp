// The concrete NWS forecasting methods (paper Section 3; Wolski '98).
//
// Each method computes a one-step-ahead forecast from a "sliding window"
// over previous measurements using an estimate of the mean or median of
// those measurements.  All are deliberately cheap; the battery (adaptive.hpp)
// runs every one of them on every series and picks the recent winner.
#pragma once

#include <algorithm>
#include <cstddef>

#include "forecast/forecaster.hpp"
#include "forecast/order_stat_window.hpp"
#include "forecast/window.hpp"

namespace nws {

/// Predicts the last observed value ("persistence").  The strongest naive
/// baseline on slowly varying series.
class LastValueForecaster final : public Forecaster {
 public:
  [[nodiscard]] std::string name() const override { return "last"; }
  [[nodiscard]] double forecast() const override {
    return has_ ? last_ : kInitialGuess;
  }
  void observe(double value) override {
    last_ = value;
    has_ = true;
  }
  void reset() override { has_ = false; }
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  double last_ = kInitialGuess;
  bool has_ = false;
};

/// Mean of the entire history (O(1) incremental).
class RunningMeanForecaster final : public Forecaster {
 public:
  [[nodiscard]] std::string name() const override { return "run_mean"; }
  [[nodiscard]] double forecast() const override {
    return n_ ? mean_ : kInitialGuess;
  }
  void observe(double value) override {
    ++n_;
    mean_ += (value - mean_) / static_cast<double>(n_);
  }
  void reset() override {
    n_ = 0;
    mean_ = 0.0;
  }
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
};

/// Mean of the most recent `window` measurements.
class SlidingMeanForecaster final : public Forecaster {
 public:
  explicit SlidingMeanForecaster(std::size_t window) : win_(window) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override {
    return win_.empty() ? kInitialGuess : win_.mean();
  }
  void observe(double value) override { win_.push(value); }
  void reset() override { win_.clear(); }
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  SlidingWindow win_;
};

/// Exponential smoothing p' = (1-g)*p + g*x with gain g in (0, 1].
class ExpSmoothForecaster final : public Forecaster {
 public:
  explicit ExpSmoothForecaster(double gain) : gain_(gain) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override {
    return has_ ? state_ : kInitialGuess;
  }
  void observe(double value) override {
    state_ = has_ ? (1.0 - gain_) * state_ + gain_ * value : value;
    has_ = true;
  }
  void reset() override { has_ = false; }
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  double gain_;
  double state_ = kInitialGuess;
  bool has_ = false;
};

/// Median of the most recent `window` measurements.  Robust to the load
/// spikes that contaminate mean-based estimates.  Backed by an
/// OrderStatWindow: observe() and forecast() are O(log w), with no
/// per-call sort, copy or allocation.
class MedianForecaster final : public Forecaster {
 public:
  explicit MedianForecaster(std::size_t window) : win_(window) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override {
    return win_.empty() ? kInitialGuess : win_.median();
  }
  void observe(double value) override { win_.push(value); }
  void reset() override { win_.clear(); }
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  OrderStatWindow win_;
};

/// Alpha-trimmed mean: mean of the window after discarding the `trim`
/// smallest and `trim` largest samples.  O(log w) per observe+forecast via
/// the order-statistic tree's rank-range sums.
class TrimmedMeanForecaster final : public Forecaster {
 public:
  TrimmedMeanForecaster(std::size_t window, std::size_t trim)
      : win_(window), trim_(trim) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override {
    return win_.empty() ? kInitialGuess : win_.trimmed_mean(trim_);
  }
  void observe(double value) override { win_.push(value); }
  void reset() override { win_.clear(); }
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  OrderStatWindow win_;
  std::size_t trim_;
};

/// Adaptive-window mean or median: tracks the recent forecast error of a
/// small, a current and a large window and moves the current window size
/// toward the best performer.  This is the NWS "adaptive window" idea:
/// shrink when the series shifts regime, grow when it is stable.
///
/// Incremental hot path: one ValueRing holds the last max_window samples
/// (tail means for any of the three candidate windows are O(1) cumulative
/// sum reads), and — for the median kind — three SuffixOrderStat trees
/// slave themselves to the small/current/large suffixes, so each observe()
/// is O(log w) instead of three full-window scans with sorts.  When the
/// current window adapts, the trees retarget incrementally from the ring.
class AdaptiveWindowForecaster final : public Forecaster {
 public:
  enum class Kind { kMean, kMedian };

  /// Window size is kept within [min_window, max_window]; the error
  /// comparison uses an exponentially discounted mean absolute error with
  /// the given discount (closer to 1 = longer error memory).
  AdaptiveWindowForecaster(Kind kind, std::size_t min_window,
                           std::size_t max_window, double discount = 0.95);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override;
  void observe(double value) override;
  void reset() override;
  [[nodiscard]] ForecasterPtr clone() const override;

  /// Current window length (exposed for tests/ablations).
  [[nodiscard]] std::size_t current_window() const noexcept { return cur_; }

 private:
  [[nodiscard]] std::size_t small_window() const noexcept {
    return std::max(min_w_, cur_ / 2);
  }
  [[nodiscard]] std::size_t large_window() const noexcept {
    return std::min(max_w_, cur_ * 2);
  }
  /// Estimate over the last min(w, size) samples: tail mean (kMean) or the
  /// suffix tree's median (kMedian).
  [[nodiscard]] double window_estimate(const SuffixOrderStat& os,
                                       std::size_t w) const;
  /// Points the suffix trees at the current small/cur/large lengths and
  /// feeds them the arriving sample (median kind only).
  void sync_trees(double value);

  Kind kind_;
  std::size_t min_w_;
  std::size_t max_w_;
  double discount_;
  std::size_t cur_;
  ValueRing ring_;  // holds max_window samples; estimates use suffixes
  SuffixOrderStat small_os_;
  SuffixOrderStat cur_os_;
  SuffixOrderStat large_os_;
  double err_small_ = 0.0;
  double err_cur_ = 0.0;
  double err_large_ = 0.0;
  std::size_t observed_ = 0;
};

/// Gradient ("sign-tracking") predictor: p' = p + g * (x - p) where the
/// gain g itself adapts — it is increased while the errors keep the same
/// sign (the predictor is lagging a trend) and decreased when the error
/// sign alternates (the predictor is chasing noise).
class GradientForecaster final : public Forecaster {
 public:
  explicit GradientForecaster(double initial_gain = 0.1,
                              double min_gain = 0.01, double max_gain = 0.9);
  [[nodiscard]] std::string name() const override { return "adapt_grad"; }
  [[nodiscard]] double forecast() const override {
    return has_ ? state_ : kInitialGuess;
  }
  void observe(double value) override;
  void reset() override;
  [[nodiscard]] ForecasterPtr clone() const override;

  [[nodiscard]] double gain() const noexcept { return gain_; }

 private:
  double initial_gain_;
  double min_gain_;
  double max_gain_;
  double gain_;
  double state_ = kInitialGuess;
  double last_error_ = 0.0;
  bool has_ = false;
};

}  // namespace nws

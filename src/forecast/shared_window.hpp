// SharedMeasurementWindow: one measurement history backing a whole battery.
//
// Every windowed method in the canonical NWS battery — sw_mean(5..60),
// median(5..31), trim_mean(21)/5 — observes the *same* series, and their
// windows nest: each is a suffix of the last 60 measurements.  Instead of
// one ring buffer per method (the seed layout), the battery keeps a single
// ValueRing plus one SuffixOrderStat per distinct order-statistic window
// length; sliding means of any width fall out of the ring's cumulative
// sums in O(1), and medians/trimmed means are O(log w) tree queries.
//
// Lockstep contract: forecasters sharing a window must observe the same
// series in the same order (each value once per method).  The canonical
// battery guarantees this — AdaptiveForecaster feeds every method every
// measurement — and the window dedupes the pushes with a tick counter.
// clone() of a sharing forecaster detaches it onto a private deep copy of
// the window, so clones are fully independent (evaluation sweeps clone
// single methods out of the battery and drive them on other series).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "forecast/forecaster.hpp"
#include "forecast/order_stat_window.hpp"

namespace nws {

class SharedMeasurementWindow {
 public:
  /// `capacity` must cover the longest window of any sharing forecaster.
  explicit SharedMeasurementWindow(std::size_t capacity) : ring_(capacity) {}

  /// Returns the id of the order-statistic tracker for windows of `length`
  /// measurements, registering one if no sharing method asked for that
  /// length yet (median(21) and trim_mean(21) share a tracker).
  std::size_t tracker_for(std::size_t length);

  /// Advances the window to this observer's next tick.  The first sharing
  /// method to report a tick pushes the value; the rest are no-ops.
  /// `seen` is the caller's private tick counter and is kept in sync.
  void observe(std::uint64_t* seen, double x);

  /// Forgets all measurements (tracker registrations survive).  Idempotent
  /// so that every sharing method's reset() can call it.
  void clear() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }

  /// Mean of the last min(w, size()) measurements.  O(1).
  [[nodiscard]] double tail_mean(std::size_t w) const noexcept {
    return ring_.tail_mean(w);
  }
  /// Median of the tracker's window.  O(log w).
  [[nodiscard]] double median(std::size_t tracker) const noexcept {
    return trackers_[tracker].median();
  }
  /// Alpha-trimmed mean of the tracker's window.  O(log w).
  [[nodiscard]] double trimmed_mean(std::size_t tracker,
                                    std::size_t trim) const noexcept {
    return trackers_[tracker].trimmed_mean(trim);
  }

 private:
  ValueRing ring_;
  std::vector<SuffixOrderStat> trackers_;
  std::uint64_t ticks_ = 0;
};

using SharedWindowPtr = std::shared_ptr<SharedMeasurementWindow>;

/// Mean of the most recent `window` measurements, read out of a shared
/// window's cumulative sums.  Same forecasts and name ("sw_mean(w)") as
/// SlidingMeanForecaster, up to summation-order rounding.
class SharedTailMeanForecaster final : public Forecaster {
 public:
  SharedTailMeanForecaster(SharedWindowPtr win, std::size_t window)
      : win_(std::move(win)), window_(window) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override {
    return win_->size() == 0 ? kInitialGuess : win_->tail_mean(window_);
  }
  void observe(double value) override { win_->observe(&seen_, value); }
  void reset() override;
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  SharedWindowPtr win_;
  std::size_t window_;
  std::uint64_t seen_ = 0;
};

/// Median of the most recent `window` measurements via a shared suffix
/// tracker.  Same forecasts and name ("median(w)") as MedianForecaster.
class SharedTailMedianForecaster final : public Forecaster {
 public:
  SharedTailMedianForecaster(SharedWindowPtr win, std::size_t window);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override {
    return win_->size() == 0 ? kInitialGuess : win_->median(tracker_);
  }
  void observe(double value) override { win_->observe(&seen_, value); }
  void reset() override;
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  SharedWindowPtr win_;
  std::size_t window_;
  std::size_t tracker_;
  std::uint64_t seen_ = 0;
};

/// Alpha-trimmed mean over a shared suffix tracker; reuses the median
/// tracker of the same window length.  Name matches TrimmedMeanForecaster
/// ("trim_mean(w)/t").
class SharedTailTrimmedMeanForecaster final : public Forecaster {
 public:
  SharedTailTrimmedMeanForecaster(SharedWindowPtr win, std::size_t window,
                                  std::size_t trim);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double forecast() const override {
    return win_->size() == 0 ? kInitialGuess
                             : win_->trimmed_mean(tracker_, trim_);
  }
  void observe(double value) override { win_->observe(&seen_, value); }
  void reset() override;
  [[nodiscard]] ForecasterPtr clone() const override;

 private:
  SharedWindowPtr win_;
  std::size_t window_;
  std::size_t trim_;
  std::size_t tracker_;
  std::uint64_t seen_ = 0;
};

}  // namespace nws

// AdaptiveForecaster: the NWS dynamic model selection (paper, Section 3).
//
// "Rather than use a single forecasting model, the NWS applies a collection
// of forecasting techniques to each series, and dynamically chooses the one
// that has been most accurate over the recent set of measurements."
//
// Every constituent method is fed every measurement.  Each method's error
// is tracked as the mean absolute error over a sliding window of recent
// one-step-ahead forecasts (plus, optionally, squared error); forecast()
// returns the prediction of the method with the lowest recent error.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "forecast/forecaster.hpp"
#include "forecast/window.hpp"

namespace nws {

/// Which error norm drives model selection.
enum class SelectionNorm { kMae, kMse };

class AdaptiveForecaster final : public Forecaster {
 public:
  /// Takes ownership of the battery.  `error_window` is the number of
  /// recent errors considered when ranking methods (0 = entire history).
  AdaptiveForecaster(std::vector<ForecasterPtr> methods,
                     std::size_t error_window = 50,
                     SelectionNorm norm = SelectionNorm::kMae);

  AdaptiveForecaster(const AdaptiveForecaster& other);
  AdaptiveForecaster& operator=(const AdaptiveForecaster&) = delete;

  [[nodiscard]] std::string name() const override { return "nws_adaptive"; }
  [[nodiscard]] double forecast() const override;
  void observe(double value) override;
  void reset() override;
  [[nodiscard]] ForecasterPtr clone() const override;

  /// Introspection for reports and ablations -------------------------------

  [[nodiscard]] std::size_t num_methods() const noexcept {
    return methods_.size();
  }
  /// Name of the currently selected method.
  [[nodiscard]] std::string selected_method() const;
  /// Index of the currently selected method.
  [[nodiscard]] std::size_t selected_index() const noexcept {
    return best_;
  }
  /// Recent error of method i under the selection norm.
  [[nodiscard]] double method_error(std::size_t i) const;
  /// How many times method i has been the selected forecaster at
  /// observation time (for "which method wins" reports).
  [[nodiscard]] std::size_t times_selected(std::size_t i) const {
    return selections_[i];
  }
  [[nodiscard]] const Forecaster& method(std::size_t i) const {
    return *methods_[i];
  }

 private:
  struct Tracker {
    explicit Tracker(std::size_t window)
        : abs_err(window ? window : 1), sq_err(window ? window : 1) {}
    SlidingWindow abs_err;
    SlidingWindow sq_err;
    // Whole-history fallbacks when error_window == 0.
    double total_abs = 0.0;
    double total_sq = 0.0;
    std::size_t count = 0;
  };

  [[nodiscard]] double tracker_error(const Tracker& t) const;
  void reselect();

  std::vector<ForecasterPtr> methods_;
  std::vector<Tracker> trackers_;
  std::vector<std::size_t> selections_;
  std::size_t error_window_;
  SelectionNorm norm_;
  std::size_t best_ = 0;
  std::size_t observed_ = 0;
};

}  // namespace nws

#include "forecast/adaptive.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace nws {

namespace {

// Battery telemetry: how often the winner changes, and the running error
// of whichever method currently leads.  Per-method gauges are looked up on
// a switch (a rare event — the hot observe loop never touches the registry
// mutex).
void note_method_switch(const std::string& method, double mae) {
  static obs::Counter& switches = obs::registry().counter(
      "nws_forecast_method_switches_total",
      "Battery selection changes (a different method took the lead)");
  switches.inc();
  obs::Registry& reg = obs::registry();
  reg.counter("nws_forecast_selected_total{method=\"" + method + "\"}",
              "Times a method took the lead")
      .inc();
  if (std::isfinite(mae)) {
    reg.gauge("nws_forecast_method_mae{method=\"" + method + "\"}",
              "Running selection error of a method when it took the lead")
        .set(mae);
  }
}

}  // namespace

AdaptiveForecaster::AdaptiveForecaster(std::vector<ForecasterPtr> methods,
                                       std::size_t error_window,
                                       SelectionNorm norm)
    : methods_(std::move(methods)),
      selections_(methods_.size(), 0),
      error_window_(error_window),
      norm_(norm) {
  if (methods_.empty()) {
    throw std::invalid_argument("AdaptiveForecaster: empty battery");
  }
  trackers_.reserve(methods_.size());
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    trackers_.emplace_back(error_window_);
  }
}

AdaptiveForecaster::AdaptiveForecaster(const AdaptiveForecaster& other)
    : trackers_(other.trackers_),
      selections_(other.selections_),
      error_window_(other.error_window_),
      norm_(other.norm_),
      best_(other.best_),
      observed_(other.observed_) {
  methods_.reserve(other.methods_.size());
  for (const auto& m : other.methods_) methods_.push_back(m->clone());
}

double AdaptiveForecaster::forecast() const {
  return methods_[best_]->forecast();
}

double AdaptiveForecaster::tracker_error(const Tracker& t) const {
  if (error_window_ == 0) {
    if (t.count == 0) return std::numeric_limits<double>::infinity();
    const double denom = static_cast<double>(t.count);
    return norm_ == SelectionNorm::kMae ? t.total_abs / denom
                                        : t.total_sq / denom;
  }
  const SlidingWindow& win =
      norm_ == SelectionNorm::kMae ? t.abs_err : t.sq_err;
  if (win.empty()) return std::numeric_limits<double>::infinity();
  return win.mean();
}

double AdaptiveForecaster::method_error(std::size_t i) const {
  return tracker_error(trackers_.at(i));
}

void AdaptiveForecaster::reselect() {
  double best_err = std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  for (std::size_t i = 0; i < trackers_.size(); ++i) {
    const double e = tracker_error(trackers_[i]);
    if (e < best_err) {
      best_err = e;
      best = i;
    }
  }
  best_ = best;
}

void AdaptiveForecaster::observe(double value) {
  // Score every method's standing forecast against the arriving value
  // *before* the methods see it (genuine one-step-ahead errors).
  if (observed_ > 0) {
    for (std::size_t i = 0; i < methods_.size(); ++i) {
      const double err = methods_[i]->forecast() - value;
      Tracker& t = trackers_[i];
      t.abs_err.push(std::abs(err));
      t.sq_err.push(err * err);
      t.total_abs += std::abs(err);
      t.total_sq += err * err;
      ++t.count;
    }
    const std::size_t previous_best = best_;
    reselect();
    if (best_ != previous_best && obs::metrics_enabled()) {
      note_method_switch(methods_[best_]->name(),
                         tracker_error(trackers_[best_]));
    }
  }
  ++selections_[best_];
  for (auto& m : methods_) m->observe(value);
  ++observed_;
}

void AdaptiveForecaster::reset() {
  for (auto& m : methods_) m->reset();
  for (auto& t : trackers_) {
    t.abs_err.clear();
    t.sq_err.clear();
    t.total_abs = t.total_sq = 0.0;
    t.count = 0;
  }
  std::fill(selections_.begin(), selections_.end(), std::size_t{0});
  best_ = 0;
  observed_ = 0;
}

std::string AdaptiveForecaster::selected_method() const {
  return methods_[best_]->name();
}

ForecasterPtr AdaptiveForecaster::clone() const {
  return std::make_unique<AdaptiveForecaster>(*this);
}

}  // namespace nws

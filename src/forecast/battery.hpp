// Canonical NWS forecaster battery.
//
// The set mirrors the mean/median sliding-window family described in the
// NWS papers: persistence, whole-history and windowed means, exponential
// smoothing at several gains, windowed medians, a trimmed mean, adaptive
// windows and an adaptive-gain gradient predictor.
#pragma once

#include <memory>
#include <vector>

#include "forecast/adaptive.hpp"
#include "forecast/forecaster.hpp"

namespace nws {

/// The individual methods of the canonical battery (fresh instances).
[[nodiscard]] std::vector<ForecasterPtr> make_nws_methods();

/// The full NWS adaptive forecaster over the canonical battery.
/// `error_window` is the recent-error horizon used for model selection.
[[nodiscard]] std::unique_ptr<AdaptiveForecaster> make_nws_forecaster(
    std::size_t error_window = 50,
    SelectionNorm norm = SelectionNorm::kMae);

}  // namespace nws

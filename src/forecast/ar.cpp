#include "forecast/ar.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

namespace nws {

ArForecaster::ArForecaster(std::size_t order, std::size_t window,
                           std::size_t refit_interval)
    : order_(std::max<std::size_t>(order, 1)),
      win_(std::max(window, 4 * std::max<std::size_t>(order, 1))),
      refit_interval_(std::max<std::size_t>(refit_interval, 1)) {}

std::string ArForecaster::name() const {
  return "ar(" + std::to_string(order_) + ")";
}

void ArForecaster::refit() {
  const std::size_t n = win_.size();
  phi_.clear();
  if (n < 4 * order_) return;

  // Sample mean and autocovariances r_0 .. r_p of the window.
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += win_.at(i);
  mean /= static_cast<double>(n);
  fit_mean_ = mean;

  std::vector<double> r(order_ + 1, 0.0);
  for (std::size_t k = 0; k <= order_; ++k) {
    double acc = 0.0;
    for (std::size_t t = 0; t + k < n; ++t) {
      acc += (win_.at(t) - mean) * (win_.at(t + k) - mean);
    }
    r[k] = acc / static_cast<double>(n);
  }
  if (r[0] <= 1e-12) return;  // (near-)constant window: fall back to mean

  // Levinson-Durbin on the Yule-Walker equations.
  std::vector<double> phi(order_, 0.0);
  std::vector<double> prev(order_, 0.0);
  double err = r[0];
  for (std::size_t k = 1; k <= order_; ++k) {
    double acc = r[k];
    for (std::size_t j = 1; j < k; ++j) acc -= phi[j - 1] * r[k - j];
    const double kappa = acc / err;
    prev = phi;
    phi[k - 1] = kappa;
    for (std::size_t j = 1; j < k; ++j) {
      phi[j - 1] = prev[j - 1] - kappa * prev[k - 1 - j];
    }
    err *= (1.0 - kappa * kappa);
    if (err <= 1e-14) break;  // numerically singular: keep what we have
  }
  phi_ = std::move(phi);
}

double ArForecaster::forecast() const {
  if (!has_data_) return kInitialGuess;
  if (phi_.empty() || win_.size() < order_) {
    // Not enough history for the model yet: windowed mean.
    return win_.mean();
  }
  const std::size_t n = win_.size();
  double pred = fit_mean_;
  for (std::size_t i = 0; i < order_; ++i) {
    pred += phi_[i] * (win_.at(n - 1 - i) - fit_mean_);
  }
  return std::clamp(pred, lo_, hi_);
}

void ArForecaster::observe(double value) {
  if (!has_data_) {
    lo_ = hi_ = value;
    has_data_ = true;
  } else {
    lo_ = std::min(lo_, value);
    hi_ = std::max(hi_, value);
  }
  win_.push(value);
  if (++since_fit_ >= refit_interval_) {
    since_fit_ = 0;
    refit();
  }
}

void ArForecaster::reset() {
  win_.clear();
  phi_.clear();
  since_fit_ = 0;
  fit_mean_ = 0.0;
  lo_ = hi_ = kInitialGuess;
  has_data_ = false;
}

ForecasterPtr ArForecaster::clone() const {
  return std::make_unique<ArForecaster>(*this);
}

}  // namespace nws

#include "forecast/methods.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

namespace nws {

namespace {

std::string sized_name(const char* base, std::size_t w) {
  return std::string(base) + "(" + std::to_string(w) + ")";
}

}  // namespace

ForecasterPtr LastValueForecaster::clone() const {
  return std::make_unique<LastValueForecaster>(*this);
}

ForecasterPtr RunningMeanForecaster::clone() const {
  return std::make_unique<RunningMeanForecaster>(*this);
}

std::string SlidingMeanForecaster::name() const {
  return sized_name("sw_mean", win_.capacity());
}

ForecasterPtr SlidingMeanForecaster::clone() const {
  return std::make_unique<SlidingMeanForecaster>(*this);
}

std::string ExpSmoothForecaster::name() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "exp(%.2f)", gain_);
  return buf;
}

ForecasterPtr ExpSmoothForecaster::clone() const {
  return std::make_unique<ExpSmoothForecaster>(*this);
}

std::string MedianForecaster::name() const {
  return sized_name("median", win_.capacity());
}

ForecasterPtr MedianForecaster::clone() const {
  return std::make_unique<MedianForecaster>(*this);
}

std::string TrimmedMeanForecaster::name() const {
  return sized_name("trim_mean", win_.capacity()) + "/" +
         std::to_string(trim_);
}

ForecasterPtr TrimmedMeanForecaster::clone() const {
  return std::make_unique<TrimmedMeanForecaster>(*this);
}

AdaptiveWindowForecaster::AdaptiveWindowForecaster(Kind kind,
                                                   std::size_t min_window,
                                                   std::size_t max_window,
                                                   double discount)
    : kind_(kind),
      min_w_(std::max<std::size_t>(min_window, 1)),
      max_w_(std::max(max_window, min_w_)),
      discount_(discount),
      cur_(std::clamp((min_w_ + max_w_) / 2, min_w_, max_w_)),
      ring_(max_w_),
      small_os_(small_window()),
      cur_os_(cur_),
      large_os_(large_window()) {
  assert(discount > 0.0 && discount < 1.0);
}

std::string AdaptiveWindowForecaster::name() const {
  return std::string(kind_ == Kind::kMean ? "adapt_mean" : "adapt_median") +
         "[" + std::to_string(min_w_) + ".." + std::to_string(max_w_) + "]";
}

double AdaptiveWindowForecaster::window_estimate(const SuffixOrderStat& os,
                                                 std::size_t w) const {
  const std::size_t n = ring_.size();
  if (n == 0) return kInitialGuess;
  if (kind_ == Kind::kMean) return ring_.tail_mean(std::min(w, n));
  // The suffix tree already holds exactly the last min(w, n) samples.
  return os.median();
}

double AdaptiveWindowForecaster::forecast() const {
  return window_estimate(cur_os_, cur_);
}

void AdaptiveWindowForecaster::sync_trees(double value) {
  if (kind_ != Kind::kMedian) return;
  small_os_.set_length(small_window(), ring_);
  cur_os_.set_length(cur_, ring_);
  large_os_.set_length(large_window(), ring_);
  small_os_.before_push(ring_, value);
  cur_os_.before_push(ring_, value);
  large_os_.before_push(ring_, value);
}

void AdaptiveWindowForecaster::observe(double value) {
  if (observed_ > 0) {
    // The trees were targeted at small/cur/large when the previous sample
    // was pushed, so each estimate is a direct O(log w) (or O(1)) query.
    const double e_small =
        std::abs(window_estimate(small_os_, small_window()) - value);
    const double e_cur = std::abs(window_estimate(cur_os_, cur_) - value);
    const double e_large =
        std::abs(window_estimate(large_os_, large_window()) - value);
    err_small_ = discount_ * err_small_ + (1.0 - discount_) * e_small;
    err_cur_ = discount_ * err_cur_ + (1.0 - discount_) * e_cur;
    err_large_ = discount_ * err_large_ + (1.0 - discount_) * e_large;
    // Move toward the better-performing neighbour; require a win beyond
    // floating-point rounding noise so near-ties (e.g. a constant series,
    // where all window means differ only in summation rounding) keep the
    // current window.
    constexpr double kEps = 1e-9;
    const std::size_t small_w = small_window();
    const std::size_t large_w = large_window();
    if (err_small_ + kEps < err_cur_ && err_small_ <= err_large_ + kEps) {
      cur_ = small_w;
    } else if (err_large_ + kEps < err_cur_ && err_large_ + kEps < err_small_) {
      cur_ = large_w;
    }
  }
  // Retarget the suffix trees at the (possibly moved) windows and push.
  sync_trees(value);
  ring_.push(value);
  ++observed_;
}

void AdaptiveWindowForecaster::reset() {
  ring_.clear();
  cur_ = std::clamp((min_w_ + max_w_) / 2, min_w_, max_w_);
  small_os_.reset(small_window());
  cur_os_.reset(cur_);
  large_os_.reset(large_window());
  err_small_ = err_cur_ = err_large_ = 0.0;
  observed_ = 0;
}

ForecasterPtr AdaptiveWindowForecaster::clone() const {
  return std::make_unique<AdaptiveWindowForecaster>(*this);
}

GradientForecaster::GradientForecaster(double initial_gain, double min_gain,
                                       double max_gain)
    : initial_gain_(initial_gain),
      min_gain_(min_gain),
      max_gain_(max_gain),
      gain_(initial_gain) {
  assert(min_gain_ > 0.0 && min_gain_ <= initial_gain_ &&
         initial_gain_ <= max_gain_ && max_gain_ <= 1.0);
}

void GradientForecaster::observe(double value) {
  if (!has_) {
    state_ = value;
    has_ = true;
    last_error_ = 0.0;
    return;
  }
  const double error = value - state_;
  // Same-sign consecutive errors mean the predictor lags a level shift:
  // speed up.  Alternating signs mean it is tracking noise: slow down.
  if (error * last_error_ > 0.0) {
    gain_ = std::min(max_gain_, gain_ * 1.25);
  } else if (error * last_error_ < 0.0) {
    gain_ = std::max(min_gain_, gain_ * 0.8);
  }
  state_ += gain_ * error;
  last_error_ = error;
}

void GradientForecaster::reset() {
  gain_ = initial_gain_;
  state_ = kInitialGuess;
  last_error_ = 0.0;
  has_ = false;
}

ForecasterPtr GradientForecaster::clone() const {
  return std::make_unique<GradientForecaster>(*this);
}

}  // namespace nws

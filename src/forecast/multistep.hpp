// Multi-step (k-step-ahead) forecast evaluation.
//
// The paper evaluates one-step-ahead forecasts of the raw and aggregated
// series; a scheduler placing an hour-long job implicitly needs the *mean
// availability over the next k steps*.  This harness measures how a
// one-step forecaster's prediction degrades as the horizon grows — the
// direct "longer-term prediction" question of Section 3.2 — by comparing
// the forecast made at time t against the realised mean of the next k
// samples.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "forecast/forecaster.hpp"

namespace nws {

struct HorizonError {
  std::size_t horizon = 1;  ///< k: number of future samples averaged
  double mae = 0.0;         ///< mean |forecast - mean(next k samples)|
  double rmse = 0.0;
  std::size_t count = 0;    ///< forecasts evaluated
};

/// Evaluates |forecast_t - mean(x_{t}..x_{t+k-1})| for each horizon in
/// `horizons`, feeding the forecaster the series in order (one pass per
/// horizon over a fresh clone).  Horizons larger than the series yield
/// count == 0.
[[nodiscard]] std::vector<HorizonError> evaluate_horizons(
    const Forecaster& f, std::span<const double> xs,
    std::span<const std::size_t> horizons);

/// Convenience single-horizon variant.
[[nodiscard]] HorizonError evaluate_horizon(const Forecaster& f,
                                            std::span<const double> xs,
                                            std::size_t horizon);

}  // namespace nws

// nws::Router — the consistent-hash scale-out tier (DESIGN.md §12).
//
// A router terminates client connections exactly like an NwsServer (text
// lines by default, per-connection "HELLO BIN" upgrade to binary frames)
// and proxies every request to a fleet of NwsServer backends, so a client
// talks to one endpoint and the fleet looks like a single server whose
// capacity is the sum of its machines:
//
//   - each series key is mapped onto a consistent-hash ring of backends
//     (FNV-1a virtual-node points, hash_ring.hpp).  The layout is a pure
//     function of RouterConfig::backends + vnodes, so a restarted router —
//     or a second router in front of the same fleet — routes identically;
//   - per backend the router keeps a small pool of pipelined upstream
//     connections (always binary-framed).  Client requests are forwarded
//     verbatim — a text line rides the binary TEXT op, a binary frame is
//     re-framed untouched — and many client requests coalesce into one
//     upstream write, so the router adds fan-in batching, not just a hop.
//     Responses demultiplex by position: each upstream connection is a
//     FIFO, and a per-connection deque of in-flight requests pairs every
//     response frame with its origin (client connection + response slot).
//     A series is pinned to one pool connection (hash % pool) so its
//     sequence-tagged stream stays ordered;
//   - cross-backend verbs (SERIES / STATS / METRICS with no argument)
//     scatter to every backend and gather an ordered merge.  A scatter is a
//     sequencing barrier for its client: it fires only after the client's
//     in-flight point requests are acked, and later input from that client
//     is held until the gather lands — so the fleet view cannot overtake
//     requests pipelined on other pool connections, and routed responses
//     stay byte-identical to a direct connection at any backend count
//     (with one backend the single part is forwarded verbatim, unmerged);
//   - an upstream connection loss or an "ERR not_primary <hint>" reply
//     triggers the PR 7 endpoint walk *inside the router*: the backend
//     group's endpoint list is walked (preferring the redirect hint), the
//     un-acked in-flight requests replay in order, and the backend's
//     duplicate detection (PUTS/PUTB sequence tags) keeps delivery
//     exactly-once — clients never learn a failover happened.
//
// The router parses only what routing needs (verb + series token, or the
// binary op byte + series field); request bytes reach the backend
// untouched and response payloads reach the client untouched, so protocol
// behaviour — including "ERR malformed request" for garbage — is the
// backend's own, byte-for-byte.  Requests the router must answer itself:
// HELLO (framing is per-hop), PING/QUIT (connection-local), and the
// REPL*/PROMOTE admin verbs, which are deliberately NOT routable ("ERR not
// routable") so a client can never demote a backend through the proxy.
//
// Threading: N dispatcher planes (RouterConfig::dispatchers), each an
// event-loop thread (EventLoop seam, epoll or poll) owning its accepted
// clients and a per-plane share of every backend's upstream pool.  Accept
// load shards across planes via SO_REUSEPORT listeners on Linux (one
// shared listener behind a lock elsewhere); a client connection is pinned
// to its accepting plane for life, so per-client slot ordering and the
// scatter barrier need no cross-thread coordination.  Counters are atomics
// readable from outside.  With several planes, a series written through
// two different client connections may ride two different planes' pools —
// the same already-documented caveat as running two routers side by side.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nws/event_loop.hpp"  // NetBackend
#include "nws/hash_ring.hpp"
#include "util/backoff.hpp"

namespace nws {

struct RouterConfig {
  /// Backend fleet: comma-separated groups, one group per ring member.  A
  /// group is a '|'-separated endpoint list ("7001" or "host:7001"); the
  /// first endpoint is the group's ring identity and initial target, the
  /// rest are failover candidates walked on connection loss or an
  /// "ERR not_primary" redirect (a replicated primary/follower pair is one
  /// group: "7001|7002").  Empty = the NWSCPU_ROUTER_BACKENDS environment
  /// variable.
  std::string backends;
  /// Pipelined upstream connections per backend (0 = NWSCPU_ROUTER_POOL
  /// env, else 2).  A series is pinned to pool slot hash(series) % pool.
  /// With several dispatcher planes the pool divides across them (each
  /// plane keeps at least one connection per backend).
  std::size_t pool_size = 0;
  /// Virtual nodes per backend on the ring (0 = NWSCPU_ROUTER_VNODES env,
  /// else 64).
  std::size_t vnodes = 0;
  /// Client line / frame cap, mirroring ServerConfig::max_line_bytes.
  std::size_t max_line_bytes = 64 * 1024;
  /// Event-loop backend (kAuto = NWSCPU_NET_BACKEND, else epoll on Linux).
  NetBackend net_backend = NetBackend::kAuto;
  /// Dispatcher planes (0 = NWSCPU_DISPATCHERS env, else 1).  Each plane
  /// owns an event loop, its accepted clients, and a share of every
  /// backend's upstream pool.
  std::size_t dispatchers = 0;
  /// listen() backlog (0 = NWSCPU_LISTEN_BACKLOG env, else SOMAXCONN).
  int listen_backlog = 0;
  /// Allow SO_REUSEPORT accept sharding with several dispatchers
  /// (NWSCPU_REUSEPORT=0 forces the shared-listener fallback).
  bool reuseport = true;
  /// Upstream reconnect pacing.  spread > 0 decorrelates the pool: after a
  /// backend restart its connections come back staggered, not in lockstep.
  BackoffConfig backoff{5.0, 500.0, 2.0, 0.0, 0.2};
  std::uint64_t backoff_seed = 1;
  /// Forward attempts per request across reconnects/redirects before the
  /// router gives up and answers "ERR upstream unavailable" (counted as a
  /// route miss).
  int replay_limit = 4;
  /// Queued-request bound per backend (sendq + in-flight across its pool);
  /// excess draws the server's shedding reply "ERR busy retry_after_ms=<n>".
  std::size_t upstream_backlog = 64 * 1024;
  /// Backoff hint carried by the shedding reply, mirroring
  /// ServerConfig::busy_retry_ms.
  int busy_retry_ms = 100;
};

class Router {
 public:
  Router() : Router(RouterConfig{}) {}
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds 127.0.0.1:port (0 = ephemeral), resolves the backend fleet and
  /// starts the proxy thread.  False when the bind fails or no backends
  /// are configured.
  bool start(std::uint16_t port = 0);
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_.load(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const RouterConfig& config() const noexcept { return cfg_; }
  /// The resolved event-loop backend (never kAuto once started).
  [[nodiscard]] NetBackend backend() const noexcept { return net_backend_; }

  [[nodiscard]] std::size_t backend_count() const noexcept;
  /// Dispatcher planes actually running (resolved config after start()).
  [[nodiscard]] std::size_t dispatcher_count() const noexcept;
  /// True when every dispatcher owns a private SO_REUSEPORT listener
  /// shard; false on the shared-listener fallback (and with one plane).
  [[nodiscard]] bool accept_sharded() const noexcept;
  /// Ring index of the backend that owns `series` (for tests/tooling).
  [[nodiscard]] std::size_t backend_of(std::string_view series) const;
  [[nodiscard]] const HashRing& ring() const noexcept;

  // Telemetry mirrors (also exported through obs as nws_router_*).
  [[nodiscard]] std::uint64_t requests_routed() const noexcept {
    return requests_routed_.load();
  }
  [[nodiscard]] std::uint64_t scatter_requests() const noexcept {
    return scatter_requests_.load();
  }
  /// Requests re-sent after an upstream connection loss or redirect.
  [[nodiscard]] std::uint64_t replays() const noexcept {
    return replays_.load();
  }
  /// "ERR not_primary" redirects followed (backend failovers observed).
  [[nodiscard]] std::uint64_t redirects() const noexcept {
    return redirects_.load();
  }
  /// Requests answered "ERR upstream unavailable" after replay exhaustion.
  [[nodiscard]] std::uint64_t route_misses() const noexcept {
    return route_misses_.load();
  }
  [[nodiscard]] std::uint64_t upstream_reconnects() const noexcept {
    return reconnects_.load();
  }

 private:
  struct Impl;

  RouterConfig cfg_;
  std::unique_ptr<Impl> impl_;  ///< owns one thread per dispatcher plane
  std::atomic<bool> running_{false};
  std::uint16_t port_ = 0;
  NetBackend net_backend_ = NetBackend::kAuto;

  std::atomic<std::uint64_t> requests_routed_{0};
  std::atomic<std::uint64_t> scatter_requests_{0};
  std::atomic<std::uint64_t> replays_{0};
  std::atomic<std::uint64_t> redirects_{0};
  std::atomic<std::uint64_t> route_misses_{0};
  std::atomic<std::uint64_t> reconnects_{0};

  friend struct Impl;
};

}  // namespace nws

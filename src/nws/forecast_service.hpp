// ForecastService: the NWS "forecaster" component as an embeddable service.
//
// Couples the measurement Memory with one adaptive forecaster per series:
// record() stores a measurement and feeds the series' forecaster; predict()
// returns the current one-step-ahead forecast together with the forecaster's
// recent error statistics (an NWS forecast is always shipped with its error,
// so schedulers can weight it).
//
// Per-series update cost is dominated by the battery, whose order-statistic
// windows (median / trimmed mean / adaptive window) are incremental —
// O(log w) per measurement against shared windows, no per-call sort or
// copy (see forecast/order_stat_window.hpp) — so a service instance can
// track many series at measurement rate.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "forecast/adaptive.hpp"
#include "forecast/forecaster.hpp"
#include "nws/memory.hpp"

namespace nws {

/// A forecast plus its pedigree, as the NWS API reports it.
struct Forecast {
  double value = 0.0;         ///< predicted next measurement
  double mae = 0.0;           ///< recent mean absolute error of the method
  double mse = 0.0;           ///< recent mean squared error
  std::string method;         ///< name of the selected forecasting method
  std::size_t history = 0;    ///< measurements seen for this series
};

class ForecastService {
 public:
  using ForecasterFactory = std::function<ForecasterPtr()>;

  /// `memory_capacity` bounds each series' stored history;
  /// `factory` builds the per-series forecaster (defaults to the canonical
  /// NWS adaptive battery).
  explicit ForecastService(std::size_t memory_capacity = 8192,
                           ForecasterFactory factory = {});

  /// Stores the measurement and updates the series forecaster.  Returns
  /// false (and ignores the sample) on out-of-order timestamps.
  bool record(const std::string& series, Measurement m);

  /// Current forecast for the series; nullopt for an unknown series.
  [[nodiscard]] std::optional<Forecast> predict(
      const std::string& series) const;

  [[nodiscard]] const Memory& memory() const noexcept { return memory_; }
  [[nodiscard]] std::size_t series_count() const noexcept {
    return entries_.size();
  }

 private:
  struct Entry {
    ForecasterPtr forecaster;
    std::size_t history = 0;
    // Whole-run error accumulators over genuine one-step-ahead forecasts.
    double abs_err_sum = 0.0;
    double sq_err_sum = 0.0;
    std::size_t err_count = 0;
  };

  Memory memory_;
  ForecasterFactory factory_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace nws

// ForecastService: the NWS "forecaster" component as an embeddable service.
//
// Couples the measurement Memory with one adaptive forecaster per series:
// record() stores a measurement and feeds the series' forecaster; predict()
// returns the current one-step-ahead forecast together with the forecaster's
// recent error statistics (an NWS forecast is always shipped with its error,
// so schedulers can weight it).
//
// Per-series update cost is dominated by the battery, whose order-statistic
// windows (median / trimmed mean / adaptive window) are incremental —
// O(log w) per measurement against shared windows, no per-call sort or
// copy (see forecast/order_stat_window.hpp) — so a service instance can
// track many series at measurement rate.
//
// Durability: given a journal path the service replays the journal on
// construction — re-feeding every recovered measurement through the
// forecasters, so forecaster state after a restart matches an uninterrupted
// run over the retained history — and appends each accepted measurement.
// Journal write failures never reject a measurement (the in-core state is
// authoritative); they are counted on the Journal.
#pragma once

#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "forecast/adaptive.hpp"
#include "forecast/forecaster.hpp"
#include "nws/memory.hpp"
#include "nws/persistence.hpp"

namespace nws {

/// A forecast plus its pedigree, as the NWS API reports it.
struct Forecast {
  double value = 0.0;         ///< predicted next measurement
  double mae = 0.0;           ///< recent mean absolute error of the method
  double mse = 0.0;           ///< recent mean squared error
  std::string method;         ///< name of the selected forecasting method
  std::size_t history = 0;    ///< measurements seen for this series
  /// Timestamp of the newest stored measurement (staleness anchor: the
  /// scheduler subtracts this from its clock to age the forecast).
  double last_time = 0.0;
};

class ForecastService {
 public:
  using ForecasterFactory = std::function<ForecasterPtr()>;

  /// `memory_capacity` bounds each series' stored history;
  /// `factory` builds the per-series forecaster (defaults to the canonical
  /// NWS adaptive battery); a non-empty `journal_path` makes the service
  /// durable (replay on construction, append per record).
  explicit ForecastService(std::size_t memory_capacity = 8192,
                           ForecasterFactory factory = {},
                           std::filesystem::path journal_path = {});

  /// Stores the measurement and updates the series forecaster.  Returns
  /// false (and ignores the sample) on out-of-order timestamps.
  bool record(const std::string& series, Measurement m);

  /// Applies a recovered measurement to memory + forecaster WITHOUT
  /// journalling it — the replay path for an externally-managed journal
  /// (ShardedForecastService replays segmented journals and routes each
  /// record here by series hash).
  bool restore(const std::string& series, Measurement m);

  /// Binds a journal for appends without replaying it (the caller already
  /// restored state).  Throws std::runtime_error when the file cannot be
  /// opened.
  void attach_journal(std::filesystem::path path);

  /// Rewrites the attached journal to hold exactly what memory retains
  /// (segment compaction / re-shard migration).  No-op without a journal.
  void rewrite_journal();

  /// Drops every series — memory, forecasters and error pedigree — and
  /// truncates the attached journal to match.  The replication snapshot
  /// path (REPL RESET) rebuilds the shard from scratch after this.
  void reset();

  /// Current forecast for the series; nullopt for an unknown series.
  [[nodiscard]] std::optional<Forecast> predict(
      const std::string& series) const;

  [[nodiscard]] const Memory& memory() const noexcept { return memory_; }
  [[nodiscard]] std::size_t series_count() const noexcept {
    return entries_.size();
  }

  /// The journal, or nullptr for an in-core-only service.
  [[nodiscard]] Journal* journal() noexcept { return journal_.get(); }
  /// Measurements recovered from the journal at construction.
  [[nodiscard]] std::size_t recovered() const noexcept { return recovered_; }
  /// Flushes the journal (no-op without one).
  void sync();

 private:
  struct Entry {
    ForecasterPtr forecaster;
    std::size_t history = 0;
    // Whole-run error accumulators over genuine one-step-ahead forecasts.
    double abs_err_sum = 0.0;
    double sq_err_sum = 0.0;
    std::size_t err_count = 0;
  };

  /// Applies a measurement to memory + forecaster, without journalling.
  bool apply(const std::string& series, Measurement m);

  Memory memory_;
  ForecasterFactory factory_;
  std::unordered_map<std::string, Entry> entries_;
  std::unique_ptr<Journal> journal_;
  std::size_t recovered_ = 0;
};

}  // namespace nws

// The nwscpu wire protocol: a line-oriented text protocol in the spirit of
// the original NWS's sensor/memory/forecaster interfaces.
//
// Requests (one per line):
//   PUT <series> <time> <value>     store a measurement
//   FORECAST <series>               one-step-ahead forecast + error pedigree
//   VALUES <series> <max>           most recent <max> measurements
//   SERIES                          list known series names
//   PING                            liveness check
//   QUIT                            close the connection
//
// Responses (first token is the status):
//   OK [payload...]
//   ERR <message>
//
// Parsing and formatting are pure functions over strings so the protocol is
// fully unit-testable without sockets; server.hpp binds them to a
// ForecastService and a TCP listener.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nws/memory.hpp"

namespace nws {

enum class RequestKind { kPut, kForecast, kValues, kSeries, kPing, kQuit };

struct Request {
  RequestKind kind = RequestKind::kPing;
  std::string series;        // PUT / FORECAST / VALUES
  Measurement measurement;   // PUT
  std::size_t max_values = 0;  // VALUES
};

/// Parses one request line (no trailing newline).  nullopt on malformed
/// input; the caller answers with ERR.
[[nodiscard]] std::optional<Request> parse_request(std::string_view line);

/// Serialises a request into its wire form (inverse of parse_request).
[[nodiscard]] std::string format_request(const Request& request);

/// Response formatting helpers.
[[nodiscard]] std::string format_ok();
[[nodiscard]] std::string format_error(std::string_view message);
[[nodiscard]] std::string format_forecast_response(double value, double mae,
                                                   double mse,
                                                   std::size_t history,
                                                   std::string_view method);
[[nodiscard]] std::string format_values_response(
    const std::vector<Measurement>& values);
[[nodiscard]] std::string format_series_response(
    const std::vector<std::string>& names);

/// Client-side response parsing.
struct ForecastReply {
  double value = 0.0;
  double mae = 0.0;
  double mse = 0.0;
  std::size_t history = 0;
  std::string method;
};

[[nodiscard]] bool response_is_ok(std::string_view response);
[[nodiscard]] std::optional<ForecastReply> parse_forecast_response(
    std::string_view response);
[[nodiscard]] std::optional<std::vector<Measurement>> parse_values_response(
    std::string_view response);
[[nodiscard]] std::optional<std::vector<std::string>> parse_series_response(
    std::string_view response);

}  // namespace nws

// The nwscpu wire protocol: a line-oriented text protocol in the spirit of
// the original NWS's sensor/memory/forecaster interfaces.
//
// Requests (one per line):
//   PUT <series> <time> <value>     store a measurement
//   PUTS <series> <seq> <time> <value>
//                                   sequence-tagged PUT: replay-safe.  The
//                                   server acks duplicates (seq already
//                                   applied, or time not newer than the
//                                   stored series) with "OK dup" instead of
//                                   re-applying, so a client outbox can be
//                                   replayed across resets and restarts
//                                   without double-counting.
//   PUTB <series> <n> <seq0> <t0> <v0> ... <tn-1> <vn-1>
//                                   batched PUT: n measurements in one
//                                   request, sequence-tagged seq0..seq0+n-1
//                                   with the same replay-safe semantics as
//                                   PUTS applied per sample.  One syscall
//                                   and one parse setup carry a whole
//                                   sensor batch; the response is
//                                   "OK <applied> <dup> <dropped>".
//   FORECAST <series>               one-step-ahead forecast + error pedigree
//   VALUES <series> <max>           most recent <max> measurements
//   SERIES                          list known series names
//   STATS                           service totals: "OK <series> <retained>
//                                   <appended> <dropped> <replay_skipped>"
//                                   (dropped counts out-of-order samples
//                                   SeriesStore rejected; replay_skipped
//                                   counts torn/corrupt journal lines
//                                   skipped at the last restart)
//   STATS <series>                  the same shape for one series (the
//                                   series field is 1, replay_skipped 0 —
//                                   replay damage is not attributed per
//                                   series)
//   METRICS                         telemetry registry dump.  The response
//                                   is multi-line: a header "OK <n>"
//                                   followed by n lines of Prometheus text
//                                   exposition (per-verb request counts and
//                                   latency histograms, shard queue depths,
//                                   journal commit timings, ...)
//   PING                            liveness check
//   QUIT                            close the connection
//   PROMOTE                         admin: promote this server to primary
//                                   (bumps the replication epoch; the reply
//                                   is "OK <epoch>")
//
// Replication (primary -> follower stream; see DESIGN.md §11):
//   REPL HELLO <epoch> <shards> <endpoint>
//                                   handshake: the primary announces its
//                                   epoch, shard count and redirect
//                                   endpoint.  The follower answers
//                                   "OK <epoch> <synced_epoch> <n> <w0> ..
//                                   <wn-1>" (its per-shard high-watermarks)
//                                   so the primary can resume each shard's
//                                   stream, or "ERR stale_epoch <epoch>" /
//                                   "ERR shard_mismatch <n>".
//   REPL BATCH <epoch> <shard> <first> <n> [<series> <t> <v>]...
//                                   appends n committed records with
//                                   absolute indices first..first+n-1 to
//                                   one shard.  n = 0 is a heartbeat.  The
//                                   ack is "OK <watermark>"; a follower
//                                   whose watermark disagrees answers
//                                   "ERR gap <watermark>" and the primary
//                                   rewinds (or snapshots).
//   REPL RESET <epoch> <shard> <start> <remaining> <n> [<series> <t> <v>]...
//                                   snapshot transfer, chunked: the first
//                                   chunk (or any chunk whose start does
//                                   not extend the snapshot in progress)
//                                   clears the shard; remaining == 0 seals
//                                   it and sets the watermark.  Ack is
//                                   "OK <next>" per chunk.
//
// Responses (first token is the status):
//   OK [payload...]
//   ERR <message>
//
// Failover-aware errors carry a machine-readable payload:
//   ERR not_primary <host:port>     writes rejected on a follower (or a
//                                   fenced ex-primary); the endpoint is the
//                                   last known primary, "-" when unknown
//   ERR busy retry_after_ms=<n>     admission shed; clients back off n ms
//   ERR stale_epoch <epoch>         replication fenced: the receiver is at
//                                   a higher epoch
//
// A FORECAST response is "OK <value> <mae> <mse> <history> <last_time>
// <method>": last_time is the timestamp of the newest measurement backing
// the forecast, so a scheduler can compute the forecast's age against its
// own clock and distrust stale data.
//
// Parsing and formatting are pure functions over strings so the protocol is
// fully unit-testable without sockets; server.hpp binds them to a sharded
// forecast service and a TCP listener.  The hot path uses the reusable
// variants — parse_request_into() re-fills a caller-owned Request (string
// and batch capacity survive across requests) and the append_* formatters
// write into a caller-owned buffer with std::to_chars — so steady-state
// request handling performs no per-request allocations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nws/memory.hpp"

namespace nws {

enum class RequestKind {
  kPut,
  kPutSeq,
  kPutBatch,
  kForecast,
  kValues,
  kSeries,
  kStats,
  kMetrics,
  kPing,
  kQuit,
  kReplHello,
  kReplBatch,
  kReplReset,
  kPromote
};

/// One replicated record: unlike a PUTB sample, it carries its series (a
/// replication batch interleaves records from every series of one shard in
/// commit order).
struct ReplSample {
  std::string series;
  Measurement measurement;
};

struct Request {
  RequestKind kind = RequestKind::kPing;
  std::string series;          // PUT / PUTS / PUTB / FORECAST / VALUES / STATS
  Measurement measurement;     // PUT / PUTS
  std::uint64_t seq = 0;       // PUTS / PUTB (client-assigned, starts at 1);
                               // REPL BATCH/RESET: absolute first index
  std::size_t max_values = 0;  // VALUES
  std::vector<Measurement> batch;  // PUTB: sample i carries sequence seq + i
  // Replication fields (REPL HELLO / BATCH / RESET):
  std::uint64_t epoch = 0;          ///< stream epoch (>= 1)
  std::uint32_t shard = 0;          ///< target shard; shard COUNT in HELLO
  std::uint64_t repl_remaining = 0; ///< RESET: records left after this chunk
  std::string endpoint;             ///< HELLO: primary's redirect endpoint
  std::vector<ReplSample> repl;     ///< BATCH/RESET records, commit order
  // Distributed-trace context.  A nonzero trace_id rides the wire — as a
  // "TRC <trace>-<span>-<s>" prefix on a text line, or a flagged frame in
  // the binary framing (see kBinTraceFlag) — and the parsers fill these
  // in.  span_id is the SENDER's span: the receiver's spans parent to it.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool trace_sampled = false;
};

/// Parses one request line (no trailing newline) into `out`, reusing its
/// string/vector capacity.  Returns false on malformed input (the caller
/// answers with ERR; `out` is unspecified but reusable).
[[nodiscard]] bool parse_request_into(std::string_view line, Request& out);

/// Convenience wrapper over parse_request_into for non-hot-path callers.
[[nodiscard]] std::optional<Request> parse_request(std::string_view line);

/// Serialises a request into its wire form (inverse of parse_request).
[[nodiscard]] std::string format_request(const Request& request);
/// Appends the wire form to `out` (no trailing newline, no allocation
/// beyond `out` growth).  When request.trace_id is nonzero the line is
/// prefixed with the trace-context token (see parse_trace_prefix).
void append_request(std::string& out, const Request& request);

// ---------------------------------------------------------------------------
// Trace-context carrier, text form.
//
// A traced request line is prefixed with one extra token pair:
//
//   TRC <trace_hex>-<span_hex>-<0|1> <verb> ...
//
// where trace_hex/span_hex are lowercase hex (no 0x) and the final digit is
// the sampled bit.  The prefix is negotiated via HELLO ("HELLO TRC" /
// "HELLO BIN TRC" answered by "OK TRC" / "OK BIN TRC") so a new client
// never sends it at an old server; the server itself parses it
// unconditionally.  A malformed prefix fails the whole line (the caller
// answers ERR and resyncs at the next newline, exactly like any other
// malformed request).

enum class TracePrefixStatus {
  kNone,  ///< line does not start with the TRC token
  kOk,    ///< prefix parsed; rest points at the verb
  kBad    ///< TRC token present but the context is malformed
};

/// Splits a trace prefix off `line`.  On kOk fills trace/span/sampled and
/// sets `rest` to the remainder (leading whitespace preserved); on kNone
/// leaves the outputs untouched.  A zero trace id in the prefix is kBad.
[[nodiscard]] TracePrefixStatus parse_trace_prefix(std::string_view line,
                                                   std::string_view& rest,
                                                   std::uint64_t& trace_id,
                                                   std::uint64_t& span_id,
                                                   bool& sampled);

/// Appends "TRC <trace>-<span>-<s> " (with the trailing space) to `out`.
void append_trace_prefix(std::string& out, std::uint64_t trace_id,
                         std::uint64_t span_id, bool sampled);

/// Response formatting: the append_* functions write into a caller-owned
/// buffer (no trailing newline); the string-returning forms wrap them.
void append_ok(std::string& out);
void append_error(std::string& out, std::string_view message);
void append_forecast_response(std::string& out, double value, double mae,
                              double mse, std::size_t history,
                              double last_time, std::string_view method);
void append_values_response(std::string& out,
                            const std::vector<Measurement>& values);
void append_series_response(std::string& out,
                            const std::vector<std::string>& names);
/// PUTB outcome: applied + dup + dropped == batch size on success.
void append_put_batch_response(std::string& out, std::uint64_t applied,
                               std::uint64_t dup, std::uint64_t dropped);
/// STATS payload (global totals, or one series with series == 1).
void append_stats_response(std::string& out, std::uint64_t series,
                           std::uint64_t retained, std::uint64_t appended,
                           std::uint64_t dropped,
                           std::uint64_t replay_skipped);
/// Replication suffix appended to the global STATS payload:
/// " role=<role> epoch=<n> repl_lag=<n>".  Old parsers that stop at the
/// five numeric fields are unaffected; parse_stats_response understands
/// both forms.
void append_stats_repl_suffix(std::string& out, std::string_view role,
                              std::uint64_t epoch, std::uint64_t repl_lag);
/// REPL HELLO ack: "OK <epoch> <synced_epoch> <n> <w0> .. <wn-1>".
void append_repl_hello_response(std::string& out, std::uint64_t epoch,
                                std::uint64_t synced_epoch,
                                const std::vector<std::uint64_t>& watermarks);
/// REPL BATCH / RESET ack: "OK <watermark>".
void append_repl_ack(std::string& out, std::uint64_t watermark);
/// METRICS payload: line-count framing ("OK <n>" + n exposition lines).
/// `body` is Prometheus text, '\n'-separated (a trailing newline is
/// tolerated); empty lines inside the body are not allowed.
void append_metrics_response(std::string& out, std::string_view body);

[[nodiscard]] std::string format_ok();
[[nodiscard]] std::string format_error(std::string_view message);
[[nodiscard]] std::string format_forecast_response(double value, double mae,
                                                   double mse,
                                                   std::size_t history,
                                                   double last_time,
                                                   std::string_view method);
[[nodiscard]] std::string format_values_response(
    const std::vector<Measurement>& values);
[[nodiscard]] std::string format_series_response(
    const std::vector<std::string>& names);

/// Client-side response parsing.
struct ForecastReply {
  double value = 0.0;
  double mae = 0.0;
  double mse = 0.0;
  std::size_t history = 0;
  /// Timestamp of the newest measurement backing this forecast; subtract
  /// from the caller's clock for the staleness/age of the prediction.
  double last_time = 0.0;
  std::string method;
};

/// Per-sample accounting a PUTB response reports.
struct PutBatchReply {
  std::uint64_t applied = 0;
  std::uint64_t dup = 0;
  std::uint64_t dropped = 0;
};

/// STATS payload: series/measurement totals plus out-of-order drops and
/// journal replay damage.
struct StatsReply {
  std::uint64_t series = 0;    ///< series counted (1 for STATS <series>)
  std::uint64_t retained = 0;  ///< measurements currently held in memory
  std::uint64_t appended = 0;  ///< measurements ever accepted
  std::uint64_t dropped = 0;   ///< out-of-order samples rejected
  /// Torn/corrupt journal lines skipped at the last restart (global form
  /// only; 0 in the per-series form).
  std::uint64_t replay_skipped = 0;
  // Replication suffix (global form since the failover PR; empty role
  // when the server predates it — old servers parse fine).
  std::string role;             ///< "primary" / "follower" / "" (old server)
  std::uint64_t epoch = 0;      ///< replication epoch (0 = old server)
  std::uint64_t repl_lag = 0;   ///< records streamed but not yet acked
};

/// REPL HELLO ack payload.
struct ReplHelloReply {
  std::uint64_t epoch = 0;         ///< follower's current epoch
  std::uint64_t synced_epoch = 0;  ///< epoch its watermarks are valid under
  std::vector<std::uint64_t> watermarks;  ///< per-shard applied indices
};

[[nodiscard]] bool response_is_ok(std::string_view response);
[[nodiscard]] std::optional<ForecastReply> parse_forecast_response(
    std::string_view response);
[[nodiscard]] std::optional<std::vector<Measurement>> parse_values_response(
    std::string_view response);
[[nodiscard]] std::optional<std::vector<std::string>> parse_series_response(
    std::string_view response);
[[nodiscard]] std::optional<PutBatchReply> parse_put_batch_response(
    std::string_view response);
[[nodiscard]] std::optional<StatsReply> parse_stats_response(
    std::string_view response);
[[nodiscard]] std::optional<ReplHelloReply> parse_repl_hello_response(
    std::string_view response);
/// Parses a replication ack "OK <watermark>".
[[nodiscard]] std::optional<std::uint64_t> parse_repl_ack(
    std::string_view response);
/// Parses "ERR not_primary <host:port>": returns the redirect port, or 0
/// when the primary is unknown ("-"); nullopt when the response is some
/// other error (or not an error at all).
[[nodiscard]] std::optional<std::uint16_t> parse_not_primary(
    std::string_view response);
/// Parses "ERR busy retry_after_ms=<n>": the back-off hint in ms; nullopt
/// for any other response (including a bare "ERR busy" from an old server).
[[nodiscard]] std::optional<int> parse_retry_after_ms(
    std::string_view response);
/// Parses "ERR stale_epoch <epoch>": the receiver's (higher) epoch.
[[nodiscard]] std::optional<std::uint64_t> parse_stale_epoch(
    std::string_view response);
/// Parses the METRICS header line "OK <n>" (the exposition line count).
[[nodiscard]] std::optional<std::size_t> parse_metrics_header(
    std::string_view header);
/// Parses a complete framed METRICS response (header + body, as
/// handle_line returns it); nullopt when the header is malformed or the
/// body line count disagrees with it.  Returns the exposition text with
/// one trailing newline.
[[nodiscard]] std::optional<std::string> parse_metrics_response(
    std::string_view response);

// ---------------------------------------------------------------------------
// Wire protocol v2: opt-in length-prefixed binary framing.
//
// Negotiated per connection.  A client that sends the text line "HELLO BIN"
// receives the text reply "OK BIN" and every byte after that handshake —
// both directions — is binary-framed.  "HELLO" and "HELLO TEXT" are
// acknowledged with "OK TEXT" and the connection stays text; any other
// HELLO argument draws an ERR and the connection stays text.  Text remains
// the default wire format and the fuzz/parity oracle: a binary response
// frame carries the exact bytes of the text response (without the trailing
// newline), so responses are byte-identical across framings by
// construction.
//
//   request frame:   [u32 length LE][u8 op][body]   length counts op+body
//   response frame:  [u32 length LE][payload]       payload = text response
//
// Bodies (integers little-endian; doubles as IEEE-754 bit patterns):
//   PUT       u16 series_len, series, f64 time, f64 value
//   PUTS      u16 series_len, series, u64 seq, f64 time, f64 value
//   PUTB      u16 series_len, series, u64 seq, u32 n, then n x (f64, f64)
//   FORECAST  u16 series_len, series
//   METRICS / PING / QUIT    empty body
//   TEXT      one complete text request line — the escape hatch that keeps
//             the cold verbs (VALUES/SERIES/STATS) available to a
//             binary-mode client without dedicated encodings
//
// A zero or over-cap length prefix is a framing error: the server answers
// ERR and closes (a text verb accidentally sent down a binary connection
// reads as an absurd length and lands here, never desyncing the stream).

inline constexpr std::uint8_t kBinOpPut = 1;
inline constexpr std::uint8_t kBinOpPutSeq = 2;
inline constexpr std::uint8_t kBinOpPutBatch = 3;
inline constexpr std::uint8_t kBinOpForecast = 4;
inline constexpr std::uint8_t kBinOpMetrics = 5;
inline constexpr std::uint8_t kBinOpPing = 6;
inline constexpr std::uint8_t kBinOpQuit = 7;
inline constexpr std::uint8_t kBinOpText = 8;
// Replication rides the same framing (the stream IS a v2 binary client):
//   REPL HELLO  u64 epoch, u32 shards, u16 endpoint_len, endpoint
//   REPL BATCH  u64 epoch, u32 shard, u64 first, u32 n,
//               then n x (u16 series_len, series, f64 time, f64 value)
//   REPL RESET  u64 epoch, u32 shard, u64 start, u64 remaining, u32 n,
//               then n records as in BATCH
inline constexpr std::uint8_t kBinOpReplHello = 9;
inline constexpr std::uint8_t kBinOpReplBatch = 10;
inline constexpr std::uint8_t kBinOpReplReset = 11;

/// Bytes of the [u32 length] prefix on every frame, both directions.
inline constexpr std::size_t kBinFrameHeaderBytes = 4;

/// The negotiation lines (requests and acks travel as text).
inline constexpr std::string_view kHelloBinRequest = "HELLO BIN";
inline constexpr std::string_view kHelloBinAck = "OK BIN";
inline constexpr std::string_view kHelloTextAck = "OK TEXT";

// Trace-context negotiation arms.  "HELLO TRC" keeps the connection text
// but licenses TRC prefixes; "HELLO BIN TRC" upgrades to binary framing
// AND licenses trace-flagged frames.  An old server answers either with
// "ERR unknown framing" and stays text, so a new client retries the plain
// handshake on the same connection and proceeds untraced.
inline constexpr std::string_view kHelloTrcRequest = "HELLO TRC";
inline constexpr std::string_view kHelloTrcAck = "OK TRC";
inline constexpr std::string_view kHelloBinTrcRequest = "HELLO BIN TRC";
inline constexpr std::string_view kHelloBinTrcAck = "OK BIN TRC";

/// Trace-context flag on the u32 length word of a request frame.  A
/// flagged frame's payload begins with a fixed-size context block —
/// [u64 trace_id LE][u64 span_id LE][u8 sampled] — before the op byte; the
/// low 31 bits of the length word count the whole payload (context + op +
/// body) as usual.  Response frames are never flagged.
inline constexpr std::uint32_t kBinTraceFlag = 0x80000000u;
/// Bytes of the flagged-frame context block.
inline constexpr std::size_t kBinTraceCtxBytes = 17;

enum class BinFrameStatus {
  kNeedMore,  ///< buffer holds a prefix of a valid frame; read more bytes
  kFrame,     ///< a complete frame was extracted
  kError      ///< length prefix is zero or exceeds the cap: framing is dead
};

/// Incremental frame extraction over a receive buffer.  On kFrame,
/// `payload` views the frame body inside `buffer` and `frame_end` is the
/// total bytes consumed (header + body) — the caller erases that prefix
/// after handling the payload.  `max_frame_bytes` caps the declared body
/// length (mirror of the text path's max_line_bytes).
[[nodiscard]] BinFrameStatus extract_binary_frame(std::string_view buffer,
                                                  std::size_t max_frame_bytes,
                                                  std::size_t& frame_end,
                                                  std::string_view& payload);

/// Trace-aware extraction: like the overload above but accepts frames with
/// kBinTraceFlag set, reporting the flag in `traced`.  The context block is
/// NOT stripped — `payload` still views the whole frame body; pass `traced`
/// through to parse_binary_request.  The overload above treats a flagged
/// frame as kError, which is exactly right for response streams (responses
/// are never flagged, so a flagged length there is garbage).
[[nodiscard]] BinFrameStatus extract_binary_frame(std::string_view buffer,
                                                  std::size_t max_frame_bytes,
                                                  std::size_t& frame_end,
                                                  std::string_view& payload,
                                                  bool& traced);

/// Appends the binary frame encoding of `request` to `out` (header +
/// op + body).  Hot verbs get native encodings; everything else rides the
/// TEXT op, so any Request is encodable.  When request.trace_id is nonzero
/// the frame is trace-flagged and carries the context block.
void append_binary_request(std::string& out, const Request& request);

/// Decodes a request frame payload (op + body, as extract_binary_frame
/// yields it) into `out`, reusing its capacity like parse_request_into.
/// Returns false on malformed payloads (unknown op, truncated or oversized
/// body, zero seq/batch, whitespace in a series name).
[[nodiscard]] bool parse_binary_request(std::string_view payload,
                                        Request& out);

/// Trace-aware decode: when `traced`, reads and strips the leading context
/// block (filling out.trace_id/span_id/trace_sampled) before decoding the
/// op + body.  A traced payload shorter than the context block is
/// malformed; a zero trace id in the block is malformed.
[[nodiscard]] bool parse_binary_request(std::string_view payload, bool traced,
                                        Request& out);

/// Appends a response frame: [u32 length][payload].  `payload` is the
/// exact text-protocol response (multi-line METRICS payloads travel as one
/// frame).
void append_binary_response(std::string& out, std::string_view payload);

}  // namespace nws

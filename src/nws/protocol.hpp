// The nwscpu wire protocol: a line-oriented text protocol in the spirit of
// the original NWS's sensor/memory/forecaster interfaces.
//
// Requests (one per line):
//   PUT <series> <time> <value>     store a measurement
//   PUTS <series> <seq> <time> <value>
//                                   sequence-tagged PUT: replay-safe.  The
//                                   server acks duplicates (seq already
//                                   applied, or time not newer than the
//                                   stored series) with "OK dup" instead of
//                                   re-applying, so a client outbox can be
//                                   replayed across resets and restarts
//                                   without double-counting.
//   FORECAST <series>               one-step-ahead forecast + error pedigree
//   VALUES <series> <max>           most recent <max> measurements
//   SERIES                          list known series names
//   PING                            liveness check
//   QUIT                            close the connection
//
// Responses (first token is the status):
//   OK [payload...]
//   ERR <message>
//
// A FORECAST response is "OK <value> <mae> <mse> <history> <last_time>
// <method>": last_time is the timestamp of the newest measurement backing
// the forecast, so a scheduler can compute the forecast's age against its
// own clock and distrust stale data.
//
// Parsing and formatting are pure functions over strings so the protocol is
// fully unit-testable without sockets; server.hpp binds them to a
// ForecastService and a TCP listener.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nws/memory.hpp"

namespace nws {

enum class RequestKind {
  kPut,
  kPutSeq,
  kForecast,
  kValues,
  kSeries,
  kPing,
  kQuit
};

struct Request {
  RequestKind kind = RequestKind::kPing;
  std::string series;          // PUT / PUTS / FORECAST / VALUES
  Measurement measurement;     // PUT / PUTS
  std::uint64_t seq = 0;       // PUTS (client-assigned, starts at 1)
  std::size_t max_values = 0;  // VALUES
};

/// Parses one request line (no trailing newline).  nullopt on malformed
/// input; the caller answers with ERR.
[[nodiscard]] std::optional<Request> parse_request(std::string_view line);

/// Serialises a request into its wire form (inverse of parse_request).
[[nodiscard]] std::string format_request(const Request& request);

/// Response formatting helpers.
[[nodiscard]] std::string format_ok();
[[nodiscard]] std::string format_error(std::string_view message);
[[nodiscard]] std::string format_forecast_response(double value, double mae,
                                                   double mse,
                                                   std::size_t history,
                                                   double last_time,
                                                   std::string_view method);
[[nodiscard]] std::string format_values_response(
    const std::vector<Measurement>& values);
[[nodiscard]] std::string format_series_response(
    const std::vector<std::string>& names);

/// Client-side response parsing.
struct ForecastReply {
  double value = 0.0;
  double mae = 0.0;
  double mse = 0.0;
  std::size_t history = 0;
  /// Timestamp of the newest measurement backing this forecast; subtract
  /// from the caller's clock for the staleness/age of the prediction.
  double last_time = 0.0;
  std::string method;
};

[[nodiscard]] bool response_is_ok(std::string_view response);
[[nodiscard]] std::optional<ForecastReply> parse_forecast_response(
    std::string_view response);
[[nodiscard]] std::optional<std::vector<Measurement>> parse_values_response(
    std::string_view response);
[[nodiscard]] std::optional<std::vector<std::string>> parse_series_response(
    std::string_view response);

}  // namespace nws

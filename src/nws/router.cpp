#include "nws/router.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>

#include "nws/protocol.hpp"
#include "nws/replication.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nws {

namespace {

// --- config resolution ------------------------------------------------------

std::string resolve_backends(const RouterConfig& cfg) {
  if (!cfg.backends.empty()) return cfg.backends;
  if (const char* env = std::getenv("NWSCPU_ROUTER_BACKENDS")) return env;
  return {};
}

std::size_t resolve_env_size(std::size_t configured, const char* env_name,
                             std::size_t fallback) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv(env_name)) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return fallback;
}

std::size_t resolve_dispatchers(const RouterConfig& cfg) {
  return resolve_env_size(cfg.dispatchers, "NWSCPU_DISPATCHERS", 1);
}

int resolve_listen_backlog(const RouterConfig& cfg) {
  if (cfg.listen_backlog > 0) return cfg.listen_backlog;
  if (const char* env = std::getenv("NWSCPU_LISTEN_BACKLOG")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  return SOMAXCONN;
}

bool resolve_reuseport(const RouterConfig& cfg) {
  if (!cfg.reuseport) return false;
  if (const char* env = std::getenv("NWSCPU_REUSEPORT")) {
    const std::string_view v(env);
    if (v == "0" || v == "off" || v == "false") return false;
  }
  return true;
}

std::int64_t steady_ms() noexcept {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t steady_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void configure_socket(int fd) {
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// Resolves an endpoint to its socket address.  Called once when the
/// endpoint enters the config (setup or a learned redirect hint) — NEVER
/// on the connect path, so a dead endpoint cycling through reconnects
/// costs the dispatcher thread no per-attempt string parsing.
sockaddr_in resolve_endpoint_addr(const ReplEndpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (ep.host.empty() ||
      ::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  }
  return addr;
}

/// Opens a nonblocking loopback listener on `*port` (0 = ephemeral;
/// updated to the bound port).  `reuseport` adds SO_REUSEPORT before bind
/// so several listeners can shard one port's accept queue (Linux).
int open_listener(std::uint16_t* port, int backlog, bool reuseport) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
#ifdef __linux__
  if (reuseport) {
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      ::close(fd);
      return -1;
    }
  }
#else
  if (reuseport) {
    ::close(fd);
    return -1;
  }
#endif
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(*port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, backlog) < 0) {
    ::close(fd);
    return -1;
  }
  socklen_t alen = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen);
  *port = ntohs(addr.sin_port);
  set_nonblocking(fd);
  return fd;
}

// --- request token scanning -------------------------------------------------
// Mirrors protocol.cpp's TokenCursor exactly (whitespace = ' ', '\t', '\r';
// leading whitespace skipped) so the router's routing decision agrees with
// the backend's parser on every byte sequence.

bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\r'; }

std::string_view next_token(std::string_view line, std::size_t& pos) {
  while (pos < line.size() && is_ws(line[pos])) ++pos;
  const std::size_t start = pos;
  while (pos < line.size() && !is_ws(line[pos])) ++pos;
  return line.substr(start, pos - start);
}

bool rest_is_ws(std::string_view line, std::size_t pos) {
  while (pos < line.size() && is_ws(line[pos])) ++pos;
  return pos == line.size();
}

/// Upstream response frames can legitimately exceed the request-side line
/// cap (a VALUES dump or a METRICS exposition is one frame); only an
/// absurd length counts as a demux failure.
constexpr std::size_t kUpstreamFrameCap = 16u << 20;
/// Upstream tx high-water per pump round: enough to coalesce hundreds of
/// requests into one vectored write without unbounded buffering.
constexpr std::size_t kTxHighWater = 1u << 20;

const std::string kErrUpstreamUnavailable = "ERR upstream unavailable";
const std::string kErrNotRoutable = "ERR not routable";

/// Wraps a raw client text line as an upstream TEXT-op frame.
void append_text_frame(std::string& out, std::string_view line) {
  const std::uint32_t len = static_cast<std::uint32_t>(line.size() + 1);
  for (std::size_t b = 0; b < 4; ++b) {
    out.push_back(static_cast<char>((len >> (8 * b)) & 0xff));
  }
  out.push_back(static_cast<char>(kBinOpText));
  out.append(line);
}

/// Re-frames a client binary request payload untouched.
void append_payload_frame(std::string& out, std::string_view payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (std::size_t b = 0; b < 4; ++b) {
    out.push_back(static_cast<char>((len >> (8 * b)) & 0xff));
  }
  out.append(payload);
}

/// Rewraps a plain upstream frame ([u32 len][payload]) as a trace-flagged
/// frame carrying the context block ahead of the payload.  Built per
/// target connection at pump time: the in-flight entry keeps the plain
/// image, so a replay that lands on a peer which never ack'd the TRC
/// upgrade just forwards the plain frame (the trace drops that hop).
std::string traced_frame(const std::string& plain, std::uint64_t trace_id,
                         std::uint64_t span_id, bool sampled) {
  std::uint32_t len = 0;
  for (std::size_t b = 0; b < 4; ++b) {
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(plain[b]))
           << (8 * b);
  }
  len = (len + static_cast<std::uint32_t>(kBinTraceCtxBytes)) | kBinTraceFlag;
  std::string out;
  out.reserve(plain.size() + kBinTraceCtxBytes);
  for (std::size_t b = 0; b < 4; ++b) {
    out.push_back(static_cast<char>((len >> (8 * b)) & 0xff));
  }
  for (std::size_t b = 0; b < 8; ++b) {
    out.push_back(static_cast<char>((trace_id >> (8 * b)) & 0xff));
  }
  for (std::size_t b = 0; b < 8; ++b) {
    out.push_back(static_cast<char>((span_id >> (8 * b)) & 0xff));
  }
  out.push_back(sampled ? '\1' : '\0');
  out.append(plain, 4, std::string::npos);
  return out;
}

/// Formats a metrics sample value the way the obs renderer does: integers
/// without a decimal point, everything else shortest-round-trip.
void append_metric_value(std::string& out, double v) {
  const auto as_int = static_cast<long long>(v);
  char buf[32];
  if (static_cast<double>(as_int) == v) {
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, as_int);
    out.append(buf, end);
  } else {
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, end);
  }
}

struct RouterMetrics {
  obs::Counter* requests;
  obs::Counter* scatters;
  obs::Counter* replays;
  obs::Counter* redirects;
  obs::Counter* route_misses;
  obs::Counter* reconnects;
  obs::Gauge* clients;
  obs::Histogram* hop_latency;
};

RouterMetrics& router_metrics() {
  static RouterMetrics* m = [] {
    auto* r = new RouterMetrics;
    auto& reg = obs::registry();
    r->requests = &reg.counter("nws_router_requests_total",
                               "Client requests routed to a backend");
    r->scatters = &reg.counter("nws_router_scatter_total",
                               "Cross-backend scatter-gather requests");
    r->replays = &reg.counter(
        "nws_router_replays_total",
        "Requests re-sent after an upstream loss or redirect");
    r->redirects = &reg.counter("nws_router_redirects_total",
                                "ERR not_primary redirects followed");
    r->route_misses = &reg.counter(
        "nws_router_route_miss_total",
        "Requests failed after exhausting upstream replays");
    r->reconnects = &reg.counter("nws_router_upstream_reconnects_total",
                                 "Upstream connections re-established");
    r->clients =
        &reg.gauge("nws_router_clients", "Client connections currently open");
    r->hop_latency = &reg.histogram(
        "nws_router_hop_latency_us",
        "Client-request-to-upstream-response latency (sampled 1-in-64)",
        1e-6);
    return r;
  }();
  return *m;
}

}  // namespace

// ===========================================================================
// Router::Impl — shared immutable state plus one Plane per dispatcher.
//
// The Impl parses the backend spec, builds the ring, resolves endpoint
// addresses ONCE, and opens the listener topology (SO_REUSEPORT shard per
// plane, or one shared listener behind accept_mu_).  Each Plane then runs
// the former single-threaded proxy loop unchanged over its own connection
// population: clients are pinned to their accepting plane, every backend
// gets a per-plane pool share, and nothing mutable is shared between
// planes except the obs counters (atomics) and the accept lock.

struct Router::Impl {
  explicit Impl(Router& outer) : outer_(outer), cfg_(outer.cfg_) {}

  Router& outer_;
  const RouterConfig& cfg_;
  HashRing ring_;
  std::size_t pool_size_ = 2;   ///< configured pool per backend (total)
  std::size_t plane_pool_ = 2;  ///< per-plane share (>= 1)
  int listen_backlog_ = 128;
  bool shared_listener_ = true;
  std::mutex accept_mu_;  ///< serializes accept drains on a shared listener
  std::vector<int> listen_fds_;

  /// One backend endpoint with its socket address pre-resolved (see
  /// resolve_endpoint_addr — keeps string parsing off the connect path).
  struct Endpoint {
    ReplEndpoint ep;
    sockaddr_in addr{};
  };

  /// Immutable parse of one backend group (ring identity + failover
  /// endpoints) plus its fleet-wide metrics; planes copy the endpoint
  /// list (redirect hints mutate a plane's own copy) and share the
  /// metric pointers.
  struct Group {
    std::string id;
    std::vector<Endpoint> endpoints;
    obs::Counter* up_requests = nullptr;
    obs::Gauge* depth = nullptr;
  };
  std::vector<Group> groups_;

  // =========================================================================
  // Plane: one dispatcher thread's whole world.

  struct Plane {
    Plane(Impl& impl, std::size_t index)
        : impl_(impl),
          outer_(impl.outer_),
          cfg_(impl.cfg_),
          ring_(impl.ring_),
          index_(index),
          pool_size_(impl.plane_pool_) {}

    // --- wiring ------------------------------------------------------------

    Impl& impl_;
    Router& outer_;
    const RouterConfig& cfg_;
    const HashRing& ring_;
    std::size_t index_ = 0;
    std::size_t pool_size_;  ///< this plane's pool share per backend
    std::unique_ptr<EventLoop> loop_;
    LoopWaker waker_;
    int listen_fd_ = -1;  ///< borrowed from impl_.listen_fds_
    obs::Counter* accepts_ = nullptr;
    std::thread thread_;

    // Tag encoding: top 2 bits select the kind (tags are plane-local —
    // each plane has its own event loop, so no plane bits are needed).
    static constexpr std::uint64_t kTagListen = 1;
    static constexpr std::uint64_t kTagWake = 2;
    static constexpr std::uint64_t kKindClient = std::uint64_t{1} << 62;
    static constexpr std::uint64_t kKindUpstream = std::uint64_t{2} << 62;

    static std::uint64_t client_tag(std::uint64_t id) {
      return kKindClient | id;
    }
    std::uint64_t upstream_tag(std::size_t backend, std::size_t slot) const {
      return kKindUpstream | (static_cast<std::uint64_t>(backend) << 16) |
             slot;
    }

    // --- client side -------------------------------------------------------

    struct Gather {
      enum Kind { kSeries, kStats, kMetrics };
      Kind kind = kSeries;
      std::uint64_t client_id = 0;
      std::uint64_t slot = 0;
      bool client_binary = false;
      /// Single-backend scatter: the one part is forwarded verbatim, no
      /// merge — routed bytes stay identical to a direct connection.
      bool verbatim = false;
      std::size_t remaining = 0;
      std::vector<std::string> parts;
      std::vector<char> have;
    };

    struct ClientConn {
      int fd = -1;
      std::uint64_t id = 0;
      std::string rx;
      TxQueue tx;  ///< whole responses; drained with one vectored sendmsg
      bool binary = false;    ///< negotiated HELLO BIN (applies to later slots)
      bool stop_input = false;  ///< QUIT / fatal framing error seen
      bool closing = false;     ///< close once every response has flushed
      bool dirty = false;       ///< queued for the end-of-iteration flush
      std::uint64_t next_slot = 0;
      std::uint64_t flush_slot = 0;
      /// Routed point requests awaiting an upstream ack.  A scatter verb is
      /// a barrier: it only fires once this drains, so the cross-backend
      /// view observes every prior request of this client — exactly the
      /// effect order a single direct connection would give.
      std::size_t outstanding = 0;
      bool gated = false;  ///< input held until the pending gather completes
      bool has_pending_scatter = false;
      Gather::Kind pending_kind = Gather::kSeries;
      std::string pending_verb;
      std::uint64_t pending_slot = 0;
      /// Out-of-order completions parked until their slot is next:
      /// slot -> (payload, response rides binary framing).
      std::map<std::uint64_t, std::pair<std::string, bool>> done;
    };

    std::unordered_map<std::uint64_t, std::unique_ptr<ClientConn>> clients_;
    std::uint64_t next_client_id_ = 1;
    std::vector<std::uint64_t> dirty_clients_;
    /// Clients whose input gate opened this iteration (their gather
    /// completed): re-run input processing for them after event dispatch.
    std::vector<std::uint64_t> pending_resume_;

    // --- upstream side -----------------------------------------------------

    struct InFlight {
      std::string frame;  ///< complete upstream wire bytes (kept for replay)
      std::uint64_t client_id = 0;
      std::uint64_t slot = 0;
      bool client_binary = false;
      int attempts = 0;  ///< times handed to a connection's send queue
      std::shared_ptr<Gather> gather;
      std::size_t part = 0;
      std::uint64_t t0_us = 0;  ///< nonzero -> hop latency sampled
      /// Distributed-trace context (nonzero trace_id = active): the
      /// client's span becomes this hop's parent, and the forwarded
      /// context carries router_span so the backend's server.apply span
      /// parents to this hop's router.forward span.
      std::uint64_t trace_id = 0;
      std::uint64_t parent_span = 0;
      std::uint64_t router_span = 0;
      bool trace_sampled = false;
      std::uint64_t t0_ns = 0;  ///< span clock (obs::now_ns) when sampled
    };
    using Entry = std::unique_ptr<InFlight>;

    struct UpstreamConn {
      int fd = -1;
      enum class St { kDown, kConnecting, kHello, kReady };
      St st = St::kDown;
      std::string rx;
      TxQueue tx;  ///< coalesced request frames; vectored flush
      std::deque<Entry> sendq;     ///< not yet written to the socket
      std::deque<Entry> inflight;  ///< written; response pending, FIFO
      ExponentialBackoff backoff;
      std::int64_t retry_at = 0;  ///< steady_ms gate for the next connect
      std::size_t backend = 0;
      std::size_t slot = 0;
      std::size_t target_idx = 0;  ///< endpoint index this connect used
      bool dirty = false;
      bool trace_ok = false;   ///< peer ack'd the TRC upgrade
      bool hello_trc = false;  ///< TRC upgrade sent; may downgrade on ERR

      UpstreamConn() : backoff(BackoffConfig{}, 0) {}
    };

    struct Backend {
      std::string id;  ///< ring identity: the group's first endpoint
      /// Plane-local copy of the group's endpoint list: redirect hints
      /// learned by this plane mutate only this copy.
      std::vector<Endpoint> endpoints;
      std::size_t active = 0;         ///< current target in `endpoints`
      std::deque<UpstreamConn> pool;  ///< stable refs, no moves needed
      std::size_t queued = 0;  ///< sendq + inflight across this plane's pool
      obs::Counter* up_requests = nullptr;  ///< shared across planes
      obs::Gauge* depth = nullptr;  ///< shared: updated with add() deltas
    };

    std::deque<Backend> backends_;
    std::vector<std::pair<std::size_t, std::size_t>> dirty_upstreams_;

    // =======================================================================

    bool init(int listen_fd) {
      listen_fd_ = listen_fd;
      loop_ = std::make_unique<EventLoop>(cfg_.net_backend);
      if (!waker_.open()) return false;
      for (std::size_t i = 0; i < impl_.groups_.size(); ++i) {
        const Group& g = impl_.groups_[i];
        Backend b;
        b.id = g.id;
        b.endpoints = g.endpoints;
        b.up_requests = g.up_requests;
        b.depth = g.depth;
        for (std::size_t s = 0; s < pool_size_; ++s) {
          UpstreamConn& c = b.pool.emplace_back();
          c.backend = i;
          c.slot = s;
          // Distinct deterministic jitter stream per pooled connection
          // (and per plane): the whole point of BackoffConfig::spread is
          // that these never reconnect in lockstep.
          c.backoff = ExponentialBackoff(
              cfg_.backoff,
              cfg_.backoff_seed ^ (index_ * 8191 + i * 131 + s + 1));
        }
        backends_.push_back(std::move(b));
      }
      // A shared listener is registered in EVERY plane's loop
      // (level-triggered: losers of accept_mu_ just see EAGAIN).
      loop_->add(listen_fd_, kTagListen, false);
      loop_->add(waker_.rx(), kTagWake, false);
      return true;
    }

    // =======================================================================
    // Main loop

    void run() {
      std::vector<LoopEvent> events;
      while (outer_.running_.load(std::memory_order_acquire)) {
        reconnect_pass();
        loop_->wait(events, wait_timeout());
        for (const LoopEvent& ev : events) {
          if (ev.tag == kTagListen) {
            accept_ready();
          } else if (ev.tag == kTagWake) {
            waker_.drain();
          } else if ((ev.tag & kKindUpstream) != 0) {
            const std::size_t b = (ev.tag >> 16) & 0xffffffffull;
            const std::size_t s = ev.tag & 0xffff;
            handle_upstream_event(backends_[b].pool[s], ev);
          } else if ((ev.tag & kKindClient) != 0) {
            handle_client_event(ev.tag & ~kKindClient, ev);
          }
        }
        drain_resumes();
        flush_dirty();
      }
      teardown_all();
    }

    int wait_timeout() {
      std::int64_t next = std::numeric_limits<std::int64_t>::max();
      for (const Backend& b : backends_) {
        for (const UpstreamConn& c : b.pool) {
          if (c.st == UpstreamConn::St::kDown) {
            next = std::min(next, c.retry_at);
          }
        }
      }
      if (next == std::numeric_limits<std::int64_t>::max()) return 1000;
      const std::int64_t now = steady_ms();
      return static_cast<int>(std::clamp<std::int64_t>(next - now, 0, 1000));
    }

    void reconnect_pass() {
      const std::int64_t now = steady_ms();
      for (Backend& b : backends_) {
        for (UpstreamConn& c : b.pool) {
          if (c.st == UpstreamConn::St::kDown && now >= c.retry_at) {
            start_connect(b, c);
          }
        }
      }
    }

    void flush_dirty() {
      for (auto [bi, si] : dirty_upstreams_) {
        UpstreamConn& c = backends_[bi].pool[si];
        c.dirty = false;
        if (c.st == UpstreamConn::St::kReady) pump_upstream(c);
        if (c.fd >= 0) flush_upstream(c);
      }
      dirty_upstreams_.clear();
      for (const std::uint64_t id : dirty_clients_) {
        const auto it = clients_.find(id);
        if (it == clients_.end()) continue;
        it->second->dirty = false;
        flush_client(*it->second);
      }
      dirty_clients_.clear();
    }

    void mark_upstream_dirty(UpstreamConn& c) {
      if (!c.dirty) {
        c.dirty = true;
        dirty_upstreams_.emplace_back(c.backend, c.slot);
      }
    }

    /// Clients whose barrier lifted resume consuming buffered input.  A
    /// resumed client can immediately park another scatter whose gather
    /// completes synchronously (every backend sheds "busy"), re-queueing
    /// the client — loop until quiet; the buffered input is finite.
    void drain_resumes() {
      while (!pending_resume_.empty()) {
        std::vector<std::uint64_t> batch;
        batch.swap(pending_resume_);
        for (const std::uint64_t id : batch) {
          const auto it = clients_.find(id);
          if (it == clients_.end()) continue;
          process_client_input(*it->second);
        }
      }
    }

    void mark_client_dirty(ClientConn& c) {
      if (!c.dirty) {
        c.dirty = true;
        dirty_clients_.push_back(c.id);
      }
    }

    void teardown_all() {
      router_metrics().clients->add(-static_cast<double>(clients_.size()));
      for (auto& [id, c] : clients_) {
        if (c->fd >= 0) {
          loop_->remove(c->fd);
          ::close(c->fd);
        }
      }
      clients_.clear();
      for (Backend& b : backends_) {
        for (UpstreamConn& c : b.pool) {
          if (c.fd >= 0) {
            loop_->remove(c.fd);
            ::close(c.fd);
            c.fd = -1;
          }
          c.st = UpstreamConn::St::kDown;
        }
      }
      // The listener belongs to the Impl (it may be shared between
      // planes); just unregister it here.
      if (listen_fd_ >= 0) {
        loop_->remove(listen_fd_);
        listen_fd_ = -1;
      }
      // Only unregister the waker here: stop() on another thread may
      // still be inside wake_all() writing to it.  The Impl closes the
      // fds after join_all().
      if (waker_.is_open()) loop_->remove(waker_.rx());
    }

    // =======================================================================
    // Client connections

    void accept_ready() {
      // A shared listener is level-triggered readable on every plane at
      // once; the lock serializes the drain (losers see EAGAIN).
      std::unique_lock<std::mutex> accept_lock;
      if (impl_.shared_listener_ && impl_.planes_.size() > 1) {
        accept_lock = std::unique_lock(impl_.accept_mu_);
      }
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EINTR) continue;
          return;
        }
        configure_socket(fd);
        auto conn = std::make_unique<ClientConn>();
        conn->fd = fd;
        conn->id = next_client_id_++;
        loop_->add(fd, client_tag(conn->id), false);
        clients_.emplace(conn->id, std::move(conn));
        accepts_->inc();
        router_metrics().clients->add(1.0);
      }
    }

    void teardown_client(ClientConn& c) {
      if (c.fd >= 0) {
        loop_->remove(c.fd);
        ::close(c.fd);
        c.fd = -1;
      }
      clients_.erase(c.id);  // invalidates `c`
      router_metrics().clients->add(-1.0);
    }

    void handle_client_event(std::uint64_t id, const LoopEvent& ev) {
      const auto it = clients_.find(id);
      if (it == clients_.end()) return;
      ClientConn& c = *it->second;
      if (ev.error && !ev.readable) {
        teardown_client(c);
        return;
      }
      if (ev.writable) flush_client(c);
      if (clients_.find(id) == clients_.end()) return;  // flush closed it
      if (!ev.readable) return;
      char buf[65536];
      for (;;) {
        const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
        if (n > 0) {
          c.rx.append(buf, static_cast<std::size_t>(n));
          if (static_cast<std::size_t>(n) < sizeof buf) break;
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        // EOF or hard error: drop the connection (any in-flight upstream
        // work completes into the void).
        teardown_client(c);
        return;
      }
      process_client_input(c);
    }

    void process_client_input(ClientConn& c) {
      while (!c.stop_input && !c.gated) {
        if (!c.binary) {
          const std::size_t newline = c.rx.find('\n');
          if (newline == std::string::npos) {
            if (c.rx.size() > cfg_.max_line_bytes) client_overflow(c, false);
            return;
          }
          if (newline > cfg_.max_line_bytes) {
            client_overflow(c, false);
            return;
          }
          std::string line(c.rx, 0, newline);
          c.rx.erase(0, newline + 1);
          if (maybe_hello(c, line)) continue;
          classify_text_line(c, line);
        } else {
          std::size_t frame_end = 0;
          std::string_view payload;
          bool traced = false;
          const BinFrameStatus status = extract_binary_frame(
              c.rx, cfg_.max_line_bytes, frame_end, payload, traced);
          if (status == BinFrameStatus::kNeedMore) return;
          if (status == BinFrameStatus::kError) {
            client_overflow(c, true);
            return;
          }
          std::string frame(payload);
          c.rx.erase(0, frame_end);
          classify_frame(c, frame, traced);
        }
      }
    }

    /// Line-too-long / bad-frame: answer, stop reading, close after flush —
    /// the server dispatcher's exact policy.
    void client_overflow(ClientConn& c, bool binary) {
      c.rx.clear();
      c.stop_input = true;
      c.closing = true;
      deliver(c.id, c.next_slot++,
              format_error(binary ? "bad frame" : "line too long"), binary);
    }

    /// Mirrors NwsServer::handle_hello byte-for-byte (the ack itself always
    /// rides text framing; later responses follow the upgrade).
    bool maybe_hello(ClientConn& c, std::string_view line) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' ' ||
                               line.back() == '\t')) {
        line.remove_suffix(1);
      }
      if (line != "HELLO" && line.rfind("HELLO ", 0) != 0) return false;
      std::string_view arg =
          line.size() > 5 ? line.substr(6) : std::string_view{};
      while (!arg.empty() && (arg.front() == ' ' || arg.front() == '\t')) {
        arg.remove_prefix(1);
      }
      std::string reply;
      bool upgrade = false;
      if (arg.empty() || arg == "TEXT") {
        reply.assign(kHelloTextAck);
      } else if (arg == "BIN") {
        reply.assign(kHelloBinAck);
        upgrade = true;
      } else if (arg == "TRC") {
        // The router forwards trace context unconditionally (like the
        // server it parses the prefix on every line); the ack only tells
        // a new client that no pre-TRC tier sits in the way.
        reply.assign(kHelloTrcAck);
      } else if (arg == "BIN TRC") {
        reply.assign(kHelloBinTrcAck);
        upgrade = true;
      } else {
        reply = format_error("unknown framing");
      }
      deliver(c.id, c.next_slot++, std::move(reply), /*binary=*/false);
      if (upgrade) c.binary = true;
      return true;
    }

    void local_response(ClientConn& c, std::string payload) {
      deliver(c.id, c.next_slot++, std::move(payload), c.binary);
    }

    void classify_text_line(ClientConn& c, const std::string& line) {
      // Peel an optional trace-context prefix first, exactly like the
      // server dispatcher: QUIT detection, routing, and classification
      // all look at the line behind it.  The context itself moves into
      // the forwarded frame's binary block (the inner line travels
      // stripped), with this hop's own span id substituted — see
      // route_point.  A malformed prefix fails the whole line, the same
      // verdict the backend's parser would reach.
      std::uint64_t trace_id = 0;
      std::uint64_t parent_span = 0;
      bool sampled = false;
      std::string_view eff(line);
      {
        std::string_view rest;
        const TracePrefixStatus trc =
            parse_trace_prefix(line, rest, trace_id, parent_span, sampled);
        if (trc == TracePrefixStatus::kBad) {
          local_response(c, format_error("malformed request"));
          return;
        }
        if (trc == TracePrefixStatus::kOk) {
          eff = rest;
          while (!eff.empty() &&
                 (eff.front() == ' ' || eff.front() == '\t')) {
            eff.remove_prefix(1);
          }
        }
      }
      // The server dispatcher stops feeding lines past a QUIT-shaped
      // prefix; mirror that before anything else.
      const bool quit_shaped =
          eff.substr(0, 4) == "QUIT" &&
          (eff.size() == 4 || eff[4] == ' ' || eff[4] == '\t' ||
           eff[4] == '\r');
      if (quit_shaped) c.stop_input = true;

      std::size_t pos = 0;
      const std::string_view verb = next_token(eff, pos);
      if (verb == "PUT" || verb == "PUTS" || verb == "PUTB" ||
          verb == "FORECAST" || verb == "VALUES") {
        const std::string_view series = next_token(eff, pos);
        if (series.empty()) {
          local_response(c, format_error("malformed request"));
          return;
        }
        std::string frame;
        frame.reserve(eff.size() + 5);
        append_text_frame(frame, eff);
        route_point(c, series, std::move(frame), trace_id, parent_span,
                    sampled);
        return;
      }
      if (verb == "STATS") {
        const std::string_view series = next_token(eff, pos);
        if (series.empty()) {
          scatter(c, Gather::kStats, "STATS");
          return;
        }
        std::string frame;
        frame.reserve(eff.size() + 5);
        append_text_frame(frame, eff);
        route_point(c, series, std::move(frame), trace_id, parent_span,
                    sampled);
        return;
      }
      if (verb == "SERIES" || verb == "METRICS") {
        if (rest_is_ws(eff, pos)) {
          // Scatter verbs drop the context: one client span fanning into
          // N backend spans needs multi-parent stitching the span ring
          // does not model (DESIGN.md §9).
          scatter(c, verb == "SERIES" ? Gather::kSeries : Gather::kMetrics,
                  verb);
        } else {
          local_response(c, format_error("malformed request"));
        }
        return;
      }
      if (verb == "PING") {
        local_response(c, rest_is_ws(eff, pos)
                              ? format_ok()
                              : format_error("malformed request"));
        return;
      }
      if (verb == "QUIT") {
        if (rest_is_ws(eff, pos)) {
          local_response(c, format_ok());
          c.closing = true;
        } else {
          local_response(c, format_error("malformed request"));
        }
        return;
      }
      if (verb == "REPL" || verb == "PROMOTE") {
        // Admin verbs stop at the proxy: a client must not be able to
        // promote/demote a backend or inject replication records through
        // the public tier.
        local_response(c, std::string(kErrNotRoutable));
        return;
      }
      // Unknown verb or empty line: the backend's parser would reject it —
      // answer with its exact error locally instead of burning a hop.
      local_response(c, format_error("malformed request"));
    }

    void classify_frame(ClientConn& c, const std::string& payload,
                        bool traced) {
      // A trace-flagged frame opens with the fixed context block; strip
      // it here and classify the op + body behind it.  The forwarded
      // frame is rebuilt from the plain body — the context (with this
      // hop's span substituted) goes back on per upstream connection at
      // pump time, so a pre-TRC backend gets plain bytes.
      std::uint64_t trace_id = 0;
      std::uint64_t parent_span = 0;
      bool sampled = false;
      std::string_view body(payload);
      if (traced) {
        if (payload.size() <= kBinTraceCtxBytes) {
          local_response(c, format_error("malformed request"));
          return;
        }
        for (std::size_t b = 0; b < 8; ++b) {
          trace_id |= static_cast<std::uint64_t>(
                          static_cast<unsigned char>(payload[b]))
                      << (8 * b);
          parent_span |= static_cast<std::uint64_t>(
                             static_cast<unsigned char>(payload[8 + b]))
                         << (8 * b);
        }
        sampled = payload[16] != 0;
        if (trace_id == 0) {
          // The backend's decoder rejects a zero trace id; match it.
          local_response(c, format_error("malformed request"));
          return;
        }
        body.remove_prefix(kBinTraceCtxBytes);
      }
      const auto op = static_cast<std::uint8_t>(body[0]);
      switch (op) {
        case kBinOpPut:
        case kBinOpPutSeq:
        case kBinOpPutBatch:
        case kBinOpForecast: {
          if (body.size() >= 3) {
            const auto lo = static_cast<unsigned char>(body[1]);
            const auto hi = static_cast<unsigned char>(body[2]);
            const std::size_t len = static_cast<std::size_t>(lo) |
                                    (static_cast<std::size_t>(hi) << 8);
            if (len > 0 && body.size() >= 3 + len) {
              std::string frame;
              frame.reserve(body.size() + 4);
              append_payload_frame(frame, body);
              route_point(c, body.substr(3, len), std::move(frame),
                          trace_id, parent_span, sampled);
              return;
            }
          }
          local_response(c, format_error("malformed request"));
          return;
        }
        case kBinOpMetrics:
          if (body.size() == 1) {
            scatter(c, Gather::kMetrics, "METRICS");
          } else {
            local_response(c, format_error("malformed request"));
          }
          return;
        case kBinOpPing:
          local_response(c, body.size() == 1
                                ? format_ok()
                                : format_error("malformed request"));
          return;
        case kBinOpQuit:
          // The server dispatcher stops reading past any QUIT-op frame.
          c.stop_input = true;
          if (body.size() == 1) {
            local_response(c, format_ok());
            c.closing = true;
          } else {
            local_response(c, format_error("malformed request"));
          }
          return;
        case kBinOpText: {
          classify_text_in_frame(c, body, body.substr(1), trace_id,
                                 parent_span, sampled);
          return;
        }
        case kBinOpReplHello:
        case kBinOpReplBatch:
        case kBinOpReplReset:
          local_response(c, std::string(kErrNotRoutable));
          return;
        default:
          local_response(c, format_error("malformed request"));
          return;
      }
    }

    /// A TEXT-op frame routes by its inner line but forwards the original
    /// frame bytes untouched.  NOTE: HELLO is NOT special inside a frame —
    /// the server only negotiates framing on raw text lines, and its
    /// parser rejects "HELLO ..." as malformed; match that.
    void classify_text_in_frame(ClientConn& c, std::string_view body,
                                std::string_view inner,
                                std::uint64_t trace_id,
                                std::uint64_t parent_span, bool sampled) {
      // The inner line may itself carry a TRC prefix (a text-era client
      // behind a framing proxy): peel it for classification, and adopt
      // its context only when the frame header carried none — the
      // backend's decoder gives frame context the same precedence.
      {
        std::string_view rest;
        std::uint64_t inner_trace = 0;
        std::uint64_t inner_span = 0;
        bool inner_sampled = false;
        const TracePrefixStatus trc = parse_trace_prefix(
            inner, rest, inner_trace, inner_span, inner_sampled);
        if (trc == TracePrefixStatus::kBad) {
          local_response(c, format_error("malformed request"));
          return;
        }
        if (trc == TracePrefixStatus::kOk) {
          inner = rest;
          if (trace_id == 0) {
            trace_id = inner_trace;
            parent_span = inner_span;
            sampled = inner_sampled;
          }
        }
      }
      std::size_t pos = 0;
      const std::string_view verb = next_token(inner, pos);
      if (verb == "PUT" || verb == "PUTS" || verb == "PUTB" ||
          verb == "FORECAST" || verb == "VALUES" || verb == "STATS") {
        const std::string_view series = next_token(inner, pos);
        if (series.empty()) {
          if (verb == "STATS") {
            scatter(c, Gather::kStats, "STATS");
          } else {
            local_response(c, format_error("malformed request"));
          }
          return;
        }
        std::string frame;
        frame.reserve(body.size() + 4);
        append_payload_frame(frame, body);
        route_point(c, series, std::move(frame), trace_id, parent_span,
                    sampled);
        return;
      }
      if (verb == "SERIES" || verb == "METRICS") {
        if (rest_is_ws(inner, pos)) {
          scatter(c, verb == "SERIES" ? Gather::kSeries : Gather::kMetrics,
                  verb);
        } else {
          local_response(c, format_error("malformed request"));
        }
        return;
      }
      if (verb == "PING") {
        local_response(c, rest_is_ws(inner, pos)
                              ? format_ok()
                              : format_error("malformed request"));
        return;
      }
      if (verb == "QUIT") {
        // Via the worker (not the dispatcher): the server closes after a
        // well-formed QUIT but keeps reading otherwise.
        if (rest_is_ws(inner, pos)) {
          c.stop_input = true;
          local_response(c, format_ok());
          c.closing = true;
        } else {
          local_response(c, format_error("malformed request"));
        }
        return;
      }
      if (verb == "REPL" || verb == "PROMOTE") {
        local_response(c, std::string(kErrNotRoutable));
        return;
      }
      local_response(c, format_error("malformed request"));
    }

    // --- response delivery (per-client slot ordering) -----------------------

    void deliver(std::uint64_t client_id, std::uint64_t slot,
                 std::string payload, bool binary) {
      const auto it = clients_.find(client_id);
      if (it == clients_.end()) return;  // client left; drop
      ClientConn& c = *it->second;
      if (slot != c.flush_slot) {
        c.done.emplace(slot, std::make_pair(std::move(payload), binary));
        return;
      }
      append_response(c, payload, binary);
      ++c.flush_slot;
      while (!c.done.empty() && c.done.begin()->first == c.flush_slot) {
        auto& [p, b] = c.done.begin()->second;
        append_response(c, p, b);
        c.done.erase(c.done.begin());
        ++c.flush_slot;
      }
      mark_client_dirty(c);
    }

    static void append_response(ClientConn& c, std::string_view payload,
                                bool binary) {
      std::string wire;
      if (binary) {
        append_binary_response(wire, payload);
      } else {
        wire.reserve(payload.size() + 1);
        wire.assign(payload);
        wire.push_back('\n');
      }
      c.tx.push(std::move(wire));
    }

    void flush_client(ClientConn& c) {
      if (!c.tx.empty() &&
          c.tx.flush(c.fd) == TxQueue::FlushStatus::kClosed) {
        teardown_client(c);
        return;
      }
      const bool complete = c.done.empty() && c.flush_slot == c.next_slot;
      if (c.tx.empty() && c.closing && complete) {
        teardown_client(c);
        return;
      }
      loop_->update(c.fd, client_tag(c.id), !c.tx.empty());
    }

    // =======================================================================
    // Routing

    void route_point(ClientConn& c, std::string_view series,
                     std::string frame, std::uint64_t trace_id = 0,
                     std::uint64_t parent_span = 0, bool sampled = false) {
      const std::uint64_t h = fnv1a64(series);
      const std::size_t b = ring_.lookup_hash(h);
      auto entry = std::make_unique<InFlight>();
      entry->frame = std::move(frame);
      entry->client_id = c.id;
      entry->slot = c.next_slot++;
      entry->client_binary = c.binary;
      entry->attempts = 1;
      if (obs::latency_sample_tick()) entry->t0_us = steady_us();
      if (trace_id != 0) {
        // This hop gets its own span: the forwarded context carries
        // router_span, so the backend's server.apply span parents here
        // and this span parents to the client's request span.
        entry->trace_id = trace_id;
        entry->parent_span = parent_span;
        entry->router_span = obs::mint_span_id();
        entry->trace_sampled = sampled;
        if (sampled) entry->t0_ns = obs::now_ns();
      }
      ++c.outstanding;
      outer_.requests_routed_.fetch_add(1, std::memory_order_relaxed);
      router_metrics().requests->inc();
      // Pin the series to one pool connection: its PUTS/PUTB sequence
      // stream must stay FIFO end-to-end or the server's max-seq dedup
      // would drop reordered samples.
      enqueue(backends_[b], h % pool_size_, std::move(entry));
    }

    /// A cross-backend verb is a sequencing barrier for its client: firing
    /// it while earlier point requests are still in flight on OTHER pool
    /// connections would let the fleet view overtake them (a direct server
    /// processes one connection in order; the router must not observably
    /// reorder).  So the scatter waits for the client's in-flight window
    /// to drain, and the client's later input is held until the gather
    /// lands.  Point requests keep full pipelining — only the rare
    /// fleet-view verbs pay the round-trip.
    void scatter(ClientConn& c, Gather::Kind kind, std::string_view verb) {
      outer_.scatter_requests_.fetch_add(1, std::memory_order_relaxed);
      router_metrics().scatters->inc();
      const std::uint64_t slot = c.next_slot++;
      c.gated = true;
      if (c.outstanding == 0) {
        fire_scatter(c, kind, verb, slot);
        return;
      }
      c.has_pending_scatter = true;
      c.pending_kind = kind;
      c.pending_verb.assign(verb);
      c.pending_slot = slot;
    }

    void fire_scatter(ClientConn& c, Gather::Kind kind, std::string_view verb,
                      std::uint64_t slot) {
      auto g = std::make_shared<Gather>();
      g->kind = kind;
      g->client_id = c.id;
      g->slot = slot;
      g->client_binary = c.binary;
      g->verbatim = backends_.size() == 1;
      g->remaining = backends_.size();
      g->parts.resize(backends_.size());
      g->have.assign(backends_.size(), 0);
      for (std::size_t i = 0; i < backends_.size(); ++i) {
        auto entry = std::make_unique<InFlight>();
        append_text_frame(entry->frame, verb);
        entry->client_id = c.id;
        entry->slot = slot;
        entry->client_binary = c.binary;
        entry->attempts = 1;
        entry->gather = g;
        entry->part = i;
        enqueue(backends_[i], 0, std::move(entry));
      }
    }

    void enqueue(Backend& b, std::size_t pool_slot, Entry entry) {
      if (b.queued >= cfg_.upstream_backlog) {
        // Admission control, the server's own shedding reply: the client
        // backs off retry_after_ms and replays (reliable path) or fails.
        deliver_entry(std::move(entry),
                      format_error("busy retry_after_ms=" +
                                   std::to_string(cfg_.busy_retry_ms)));
        return;
      }
      b.up_requests->inc();
      ++b.queued;
      b.depth->add(1.0);
      UpstreamConn& c = b.pool[pool_slot % pool_size_];
      c.sendq.push_back(std::move(entry));
      mark_upstream_dirty(c);
    }

    /// Terminal completion: route the payload to the waiting client (or
    /// gather part), accounting depth and sampled hop latency.
    void deliver_entry(Entry entry, std::string payload) {
      if (entry->t0_us != 0) {
        router_metrics().hop_latency->record(
            steady_us() - entry->t0_us,
            entry->trace_sampled ? entry->trace_id : 0);
      }
      if (entry->t0_ns != 0) {
        // Async completion: no RAII scope brackets the upstream round
        // trip, so the span records with explicit ids at delivery.
        obs::record_span_with("router.forward", entry->t0_ns,
                              obs::now_ns() - entry->t0_ns, entry->trace_id,
                              entry->router_span, entry->parent_span);
      }
      if (entry->gather) {
        Gather& g = *entry->gather;
        if (!g.have[entry->part]) {
          g.have[entry->part] = 1;
          g.parts[entry->part] = std::move(payload);
          if (--g.remaining == 0) {
            deliver(g.client_id, g.slot, merge_gather(g), g.client_binary);
            // The barrier lifts: the client resumes buffered input.
            const auto it = clients_.find(g.client_id);
            if (it != clients_.end() && it->second->gated) {
              it->second->gated = false;
              pending_resume_.push_back(g.client_id);
            }
          }
        }
        return;
      }
      const std::uint64_t client_id = entry->client_id;
      deliver(client_id, entry->slot, std::move(payload),
              entry->client_binary);
      const auto it = clients_.find(client_id);
      if (it == clients_.end()) return;
      ClientConn& c = *it->second;
      if (c.outstanding > 0) --c.outstanding;
      if (c.outstanding == 0 && c.has_pending_scatter) {
        c.has_pending_scatter = false;
        fire_scatter(c, c.pending_kind, c.pending_verb, c.pending_slot);
      }
    }

    // =======================================================================
    // Upstream pool

    void start_connect(Backend& b, UpstreamConn& c) {
      const Endpoint& ep = b.endpoints[b.active];
      c.target_idx = b.active;
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        connect_failed(b, c);
        return;
      }
      configure_socket(fd);
      // ep.addr was resolved when the endpoint entered the config — a
      // reconnect storm after a backend restart costs no per-attempt
      // address parsing on this thread.
      sockaddr_in addr = ep.addr;
      const int rc =
          ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
      if (rc == 0) {
        c.fd = fd;
        loop_->add(fd, upstream_tag(c.backend, c.slot), true);
        on_connected(c);
        return;
      }
      if (errno == EINPROGRESS) {
        c.fd = fd;
        c.st = UpstreamConn::St::kConnecting;
        loop_->add(fd, upstream_tag(c.backend, c.slot), true);
        return;
      }
      ::close(fd);
      connect_failed(b, c);
    }

    void connect_failed(Backend& b, UpstreamConn& c) {
      c.st = UpstreamConn::St::kDown;
      c.retry_at =
          steady_ms() + static_cast<std::int64_t>(
                            std::max(1.0, c.backoff.next_delay_ms()));
      advance_active(b, c.target_idx);
    }

    /// Walks the backend group's endpoint list (once per failed endpoint —
    /// the target_idx guard keeps a pool of failing connections from
    /// leapfrogging each other past a live endpoint).
    void advance_active(Backend& b, std::size_t from_idx) {
      if (b.endpoints.size() > 1 && b.active == from_idx) {
        b.active = (b.active + 1) % b.endpoints.size();
      }
    }

    void on_connected(UpstreamConn& c) {
      c.st = UpstreamConn::St::kHello;
      c.rx.clear();
      c.trace_ok = false;
      c.hello_trc = true;
      std::string hello(kHelloBinTrcRequest);
      hello.push_back('\n');
      c.tx.push(std::move(hello));
      flush_upstream(c);
    }

    void handle_upstream_event(UpstreamConn& c, const LoopEvent& ev) {
      Backend& b = backends_[c.backend];
      if (c.st == UpstreamConn::St::kDown || c.fd < 0) return;
      if (c.st == UpstreamConn::St::kConnecting) {
        if (ev.error) {
          drop_upstream(b, c, /*count_reconnect=*/false);
          return;
        }
        if (!ev.writable) return;
        int err = 0;
        socklen_t len = sizeof err;
        ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          drop_upstream(b, c, /*count_reconnect=*/false);
          return;
        }
        on_connected(c);
        if (c.st == UpstreamConn::St::kDown) return;
      }
      if (ev.writable) {
        if (c.st == UpstreamConn::St::kReady) pump_upstream(c);
        flush_upstream(c);
        if (c.st == UpstreamConn::St::kDown || c.fd < 0) return;
      }
      if (!ev.readable) return;
      char buf[65536];
      for (;;) {
        const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
        if (n > 0) {
          c.rx.append(buf, static_cast<std::size_t>(n));
          if (static_cast<std::size_t>(n) < sizeof buf) break;
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        upstream_fail(b, c);
        return;
      }
      drain_upstream_rx(b, c);
    }

    void drain_upstream_rx(Backend& b, UpstreamConn& c) {
      if (c.st == UpstreamConn::St::kHello) {
        const std::size_t newline = c.rx.find('\n');
        if (newline == std::string::npos) {
          if (c.rx.size() > 256) upstream_fail(b, c);  // ack is tiny
          return;
        }
        std::string_view ack(c.rx.data(), newline);
        while (!ack.empty() && ack.back() == '\r') ack.remove_suffix(1);
        if (ack == kHelloBinTrcAck) {
          c.trace_ok = true;
        } else if (ack == kHelloBinAck) {
          c.trace_ok = false;  // plain-BIN peer: forward without context
        } else if (c.hello_trc) {
          // A pre-TRC backend rejects the upgraded HELLO with an error
          // but keeps reading (it negotiates framing per line): retry
          // the plain binary upgrade on the same connection.
          c.hello_trc = false;
          c.rx.erase(0, newline + 1);
          std::string hello(kHelloBinRequest);
          hello.push_back('\n');
          c.tx.push(std::move(hello));
          flush_upstream(c);
          return;
        } else {
          // The backend does not speak the binary upgrade (or answered
          // with an error): this endpoint is unusable as an upstream.
          upstream_fail(b, c);
          return;
        }
        c.hello_trc = false;
        c.rx.erase(0, newline + 1);
        c.st = UpstreamConn::St::kReady;
        c.backoff.reset();
        pump_upstream(c);
        flush_upstream(c);
        if (c.st != UpstreamConn::St::kReady) return;
      }
      while (c.st == UpstreamConn::St::kReady) {
        std::size_t frame_end = 0;
        std::string_view payload;
        const BinFrameStatus status =
            extract_binary_frame(c.rx, kUpstreamFrameCap, frame_end, payload);
        if (status == BinFrameStatus::kNeedMore) return;
        if (status == BinFrameStatus::kError || c.inflight.empty()) {
          // A response we cannot frame, or one nobody asked for: the
          // stream is desynchronized beyond repair — drop the connection
          // and replay the un-acked window on a fresh one.
          upstream_fail(b, c);
          return;
        }
        std::string response(payload);
        c.rx.erase(0, frame_end);
        complete_front(b, c, std::move(response));
      }
    }

    void complete_front(Backend& b, UpstreamConn& c, std::string payload) {
      Entry entry = std::move(c.inflight.front());
      c.inflight.pop_front();
      --b.queued;
      b.depth->add(-1.0);
      if (!entry->gather && payload.rfind("ERR not_primary", 0) == 0) {
        handle_redirect(b, c, std::move(entry), std::move(payload));
        return;
      }
      deliver_entry(std::move(entry), std::move(payload));
    }

    /// "ERR not_primary <hint>" — the backend group failed over.  Follow
    /// the hint (the PR 7 endpoint walk, executed inside the router),
    /// replay the redirected request plus every un-acked in-flight request
    /// behind it, and let the new primary's sequence/timestamp dedup keep
    /// the stream exactly-once.  Clients never see the redirect.
    void handle_redirect(Backend& b, UpstreamConn& c, Entry entry,
                         std::string payload) {
      outer_.redirects_.fetch_add(1, std::memory_order_relaxed);
      router_metrics().redirects->inc();
      if (entry->attempts >= cfg_.replay_limit) {
        deliver_entry(std::move(entry), std::move(payload));
        return;
      }
      ++entry->attempts;
      // Prefer the redirect hint; fall back to round-robin in the group.
      const auto hint = parse_not_primary(payload);
      bool switched = false;
      if (hint && *hint != 0) {
        for (std::size_t i = 0; i < b.endpoints.size(); ++i) {
          if (b.endpoints[i].ep.port == *hint) {
            switched = b.active != i;
            b.active = i;
            break;
          }
        }
        if (!switched && b.endpoints[b.active].ep.port != *hint) {
          // Hint outside the configured group: trust it (the fleet knows
          // its own promotion better than our static config) and remember
          // it — resolving the address NOW, once, off the connect path.
          Endpoint learned;
          learned.ep = ReplEndpoint{"127.0.0.1", *hint};
          learned.addr = resolve_endpoint_addr(learned.ep);
          b.endpoints.push_back(std::move(learned));
          b.active = b.endpoints.size() - 1;
          switched = true;
        }
      } else {
        const std::size_t before = b.active;
        b.active = (b.active + 1) % b.endpoints.size();
        switched = b.active != before;
      }
      // Cycle the whole pool onto the new endpoint; their un-acked
      // windows replay in order.  The redirected request itself replays
      // first on its pinned connection.
      UpstreamConn* home = &b.pool[c.slot];
      for (UpstreamConn& pc : b.pool) {
        fail_conn_keep_entries(b, pc);
      }
      ++outer_.replays_;  // the redirected request itself
      router_metrics().replays->inc();
      ++b.queued;
      b.depth->add(1.0);
      home->sendq.push_front(std::move(entry));
      // Immediate retry at the new endpoint.
      for (UpstreamConn& pc : b.pool) pc.retry_at = 0;
    }

    /// Closes a connection and splices its un-acked window (inflight, then
    /// queued) back onto its send queue for replay, expiring entries that
    /// have exhausted their attempts.
    void fail_conn_keep_entries(Backend& b, UpstreamConn& c) {
      if (c.fd >= 0) {
        loop_->remove(c.fd);
        ::close(c.fd);
        c.fd = -1;
      }
      const bool was_up = c.st != UpstreamConn::St::kDown;
      c.st = UpstreamConn::St::kDown;
      c.rx.clear();
      c.tx.clear();
      if (was_up) {
        outer_.reconnects_.fetch_add(1, std::memory_order_relaxed);
        router_metrics().reconnects->inc();
      }
      if (c.inflight.empty()) return;
      // inflight (older) must precede whatever is still queued.
      while (!c.sendq.empty()) {
        c.inflight.push_back(std::move(c.sendq.front()));
        c.sendq.pop_front();
      }
      while (!c.inflight.empty()) {
        Entry e = std::move(c.inflight.front());
        c.inflight.pop_front();
        if (e->attempts >= cfg_.replay_limit) {
          --b.queued;
          b.depth->add(-1.0);
          outer_.route_misses_.fetch_add(1, std::memory_order_relaxed);
          router_metrics().route_misses->inc();
          deliver_entry(std::move(e), std::string(kErrUpstreamUnavailable));
          continue;
        }
        ++e->attempts;
        outer_.replays_.fetch_add(1, std::memory_order_relaxed);
        router_metrics().replays->inc();
        c.sendq.push_back(std::move(e));
      }
    }

    /// Connection-level failure while up: resplice, back off, and walk the
    /// endpoint list so a dead (or byzantine) endpoint doesn't pin the
    /// pool.
    void upstream_fail(Backend& b, UpstreamConn& c) {
      fail_conn_keep_entries(b, c);
      c.retry_at =
          steady_ms() + static_cast<std::int64_t>(
                            std::max(1.0, c.backoff.next_delay_ms()));
      advance_active(b, c.target_idx);
    }

    void drop_upstream(Backend& b, UpstreamConn& c, bool count_reconnect) {
      if (c.fd >= 0) {
        loop_->remove(c.fd);
        ::close(c.fd);
        c.fd = -1;
      }
      (void)count_reconnect;
      c.st = UpstreamConn::St::kDown;
      connect_failed(b, c);
    }

    /// Moves queued requests into the tx queue (coalescing many requests
    /// into one vectored upstream write — the fan-in batching) and tracks
    /// them as in-flight, FIFO with the responses.
    void pump_upstream(UpstreamConn& c) {
      while (!c.sendq.empty() && c.tx.bytes() < kTxHighWater) {
        Entry e = std::move(c.sendq.front());
        c.sendq.pop_front();
        // The in-flight entry keeps the PLAIN frame for replay; the tx
        // queue takes this connection's wire image (a partial write can't
        // corrupt the replay copy, and a replay landing on a peer that
        // never ack'd the TRC upgrade forwards the plain bytes).
        if (e->trace_id != 0 && c.trace_ok) {
          c.tx.push(traced_frame(e->frame, e->trace_id, e->router_span,
                                 e->trace_sampled));
        } else {
          c.tx.push(std::string(e->frame));
        }
        c.inflight.push_back(std::move(e));
      }
    }

    void flush_upstream(UpstreamConn& c) {
      Backend& b = backends_[c.backend];
      for (;;) {
        if (!c.tx.empty()) {
          const TxQueue::FlushStatus st = c.tx.flush(c.fd);
          if (st == TxQueue::FlushStatus::kClosed) {
            upstream_fail(b, c);
            return;
          }
          if (st == TxQueue::FlushStatus::kBlocked) break;
        }
        // Drained: more queued work may have arrived while writing.
        if (c.st != UpstreamConn::St::kReady || c.sendq.empty()) break;
        pump_upstream(c);
        if (c.tx.empty()) break;
      }
      loop_->update(c.fd, upstream_tag(c.backend, c.slot), !c.tx.empty());
    }

    // =======================================================================
    // Scatter-gather merges

    std::string merge_gather(Gather& g) {
      // One backend: the single part passes through untouched, errors and
      // all — byte-identical to a direct connection by construction.
      if (g.verbatim) return std::move(g.parts.front());
      for (const std::string& part : g.parts) {
        if (part.rfind("ERR", 0) == 0) return part;
      }
      switch (g.kind) {
        case Gather::kSeries:
          return merge_series(g);
        case Gather::kStats:
          return merge_stats(g);
        case Gather::kMetrics:
          return merge_metrics(g);
      }
      return format_error("merge failed");
    }

    std::string merge_series(const Gather& g) {
      std::vector<std::string> all;
      for (const std::string& part : g.parts) {
        auto names = parse_series_response(part);
        if (!names) return format_error("upstream invalid response");
        for (auto& n : *names) all.push_back(std::move(n));
      }
      // Each backend already sorts; the merged fleet view re-sorts so the
      // routed response is byte-identical to a single server holding
      // every series.
      std::sort(all.begin(), all.end());
      all.erase(std::unique(all.begin(), all.end()), all.end());
      std::string out;
      append_series_response(out, all);
      return out;
    }

    std::string merge_stats(const Gather& g) {
      StatsReply total;
      std::string role;
      bool first = true;
      bool mixed = false;
      bool any_role = false;
      for (const std::string& part : g.parts) {
        const auto reply = parse_stats_response(part);
        if (!reply) return format_error("upstream invalid response");
        total.series += reply->series;
        total.retained += reply->retained;
        total.appended += reply->appended;
        total.dropped += reply->dropped;
        total.replay_skipped += reply->replay_skipped;
        total.epoch = std::max(total.epoch, reply->epoch);
        total.repl_lag += reply->repl_lag;
        if (!reply->role.empty()) any_role = true;
        if (first) {
          role = reply->role;
          first = false;
        } else if (role != reply->role) {
          mixed = true;
        }
      }
      std::string out;
      append_stats_response(out, total.series, total.retained, total.appended,
                            total.dropped, total.replay_skipped);
      if (any_role) {
        append_stats_repl_suffix(out, mixed ? "mixed" : role, total.epoch,
                                 total.repl_lag);
      }
      return out;
    }

    std::string merge_metrics(const Gather& g) {
      // Fleet view of the registry: '#' header lines dedup on first
      // occurrence, samples with the same "name{labels}" key sum across
      // backends, ordering follows first appearance (backend 0 first) so
      // the merge is deterministic.
      std::vector<std::string> order;         // emitted keys, in order
      std::map<std::string, double> samples;  // key -> summed value
      std::set<std::string> comments;
      std::vector<char> is_comment_flag;
      for (const std::string& part : g.parts) {
        const auto body = parse_metrics_response(part);
        if (!body) return format_error("upstream invalid response");
        std::string_view rest(*body);
        while (!rest.empty()) {
          std::size_t nl = rest.find('\n');
          if (nl == std::string_view::npos) nl = rest.size();
          const std::string_view line = rest.substr(0, nl);
          rest.remove_prefix(std::min(nl + 1, rest.size()));
          if (line.empty()) continue;
          if (line.front() == '#') {
            std::string key(line);
            if (comments.insert(key).second) {
              order.push_back(std::move(key));
              is_comment_flag.push_back(1);
            }
            continue;
          }
          const std::size_t sp = line.rfind(' ');
          if (sp == std::string_view::npos) continue;  // malformed sample
          std::string key(line.substr(0, sp));
          double value = 0.0;
          const std::string_view vtext = line.substr(sp + 1);
          std::from_chars(vtext.data(), vtext.data() + vtext.size(), value);
          const auto [it, inserted] = samples.emplace(key, value);
          if (!inserted) {
            it->second += value;
          } else {
            order.push_back(std::move(key));
            is_comment_flag.push_back(0);
          }
        }
      }
      std::string body;
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (is_comment_flag[i]) {
          body.append(order[i]);
        } else {
          body.append(order[i]);
          body.push_back(' ');
          append_metric_value(body, samples[order[i]]);
        }
        body.push_back('\n');
      }
      std::string out;
      append_metrics_response(out, body);
      return out;
    }
  };

  std::deque<Plane> planes_;  ///< deque: Plane is pinned (refs + thread)

  // =========================================================================

  bool setup(std::uint16_t port) {
    const std::string spec = resolve_backends(cfg_);
    std::vector<std::string> identities;
    std::size_t start_pos = 0;
    while (start_pos <= spec.size() && !spec.empty()) {
      std::size_t comma = spec.find(',', start_pos);
      if (comma == std::string::npos) comma = spec.size();
      const std::string group = spec.substr(start_pos, comma - start_pos);
      start_pos = comma + 1;
      if (!group.empty()) {
        Group g;
        std::size_t gp = 0;
        while (gp <= group.size()) {
          std::size_t bar = group.find('|', gp);
          if (bar == std::string::npos) bar = group.size();
          const std::string ep = group.substr(gp, bar - gp);
          gp = bar + 1;
          auto parsed = parse_endpoint_list(ep);
          for (auto& e : parsed) {
            Endpoint resolved;
            resolved.addr = resolve_endpoint_addr(e);
            resolved.ep = std::move(e);
            g.endpoints.push_back(std::move(resolved));
          }
          if (bar == group.size()) break;
        }
        if (!g.endpoints.empty()) {
          g.id = g.endpoints.front().ep.to_string();
          identities.push_back(g.id);
          groups_.push_back(std::move(g));
        }
      }
      if (comma == spec.size()) break;
    }
    if (groups_.empty()) return false;

    pool_size_ = resolve_env_size(cfg_.pool_size, "NWSCPU_ROUTER_POOL", 2);
    const std::size_t vnodes =
        resolve_env_size(cfg_.vnodes, "NWSCPU_ROUTER_VNODES", 64);
    ring_ = HashRing(identities, vnodes);

    const std::size_t nd = resolve_dispatchers(cfg_);
    // The pool divides across planes; every plane keeps at least one
    // connection per backend (a plane with zero connections could not
    // route at all).
    plane_pool_ = std::max<std::size_t>(1, pool_size_ / nd);
    listen_backlog_ = resolve_listen_backlog(cfg_);

    auto& reg = obs::registry();
    for (Group& g : groups_) {
      g.up_requests = &reg.counter(
          "nws_router_upstream_requests_total{backend=\"" + g.id + "\"}",
          "Requests forwarded per backend");
      g.depth = &reg.gauge("nws_router_queue_depth{backend=\"" + g.id + "\"}",
                           "Queued + in-flight upstream requests per backend");
    }

    // Listener topology: one SO_REUSEPORT shard per plane when the
    // platform + config allow it (the kernel then spreads accepts across
    // the planes' queues); otherwise one shared listener every plane
    // polls behind accept_mu_.
    std::uint16_t bound = port;
    shared_listener_ = true;
    if (nd > 1 && resolve_reuseport(cfg_)) {
      const int first = open_listener(&bound, listen_backlog_, true);
      if (first >= 0) {
        listen_fds_.push_back(first);
        while (listen_fds_.size() < nd) {
          std::uint16_t p = bound;  // later shards bind the resolved port
          const int fd = open_listener(&p, listen_backlog_, true);
          if (fd < 0) break;
          listen_fds_.push_back(fd);
        }
        if (listen_fds_.size() == nd) {
          shared_listener_ = false;
        } else {
          // Partial shard set (kernel refused a later bind): fall back to
          // the shared-listener shape rather than skew the accept load.
          close_listeners();
          bound = port;
        }
      }
    }
    if (listen_fds_.empty()) {
      const int fd = open_listener(&bound, listen_backlog_, false);
      if (fd < 0) return false;
      listen_fds_.push_back(fd);
    }
    outer_.port_ = bound;

    for (std::size_t i = 0; i < nd; ++i) {
      Plane& p = planes_.emplace_back(*this, i);
      p.accepts_ = &reg.counter(
          "nws_router_dispatcher_accepts_total{dispatcher=\"" +
              std::to_string(i) + "\"}",
          "Client connections accepted, per router dispatcher");
      if (!p.init(shared_listener_ ? listen_fds_[0] : listen_fds_[i])) {
        planes_.clear();
        close_listeners();
        return false;
      }
    }
    outer_.net_backend_ = planes_.front().loop_->backend();
    return true;
  }

  void start_threads() {
    for (Plane& p : planes_) {
      p.thread_ = std::thread([&p] { p.run(); });
    }
  }

  void wake_all() {
    // Shutting the listeners down plus a wakeup write kicks every plane
    // out of a quiet event wait immediately.
    for (const int fd : listen_fds_) ::shutdown(fd, SHUT_RDWR);
    for (Plane& p : planes_) p.waker_.wake();
  }

  void join_all() {
    for (Plane& p : planes_) {
      if (p.thread_.joinable()) p.thread_.join();
      p.waker_.close_fds();
    }
  }

  void close_listeners() {
    for (const int fd : listen_fds_) ::close(fd);
    listen_fds_.clear();
  }
};

// ===========================================================================
// Router facade

Router::Router(RouterConfig config) : cfg_(std::move(config)) {}

Router::~Router() { stop(); }

bool Router::start(std::uint16_t port) {
  if (running_.load()) return false;
  impl_ = std::make_unique<Impl>(*this);
  if (!impl_->setup(port)) {
    impl_.reset();
    return false;
  }
  running_.store(true, std::memory_order_release);
  impl_->start_threads();
  return true;
}

void Router::stop() {
  if (!running_.exchange(false)) return;
  impl_->wake_all();
  impl_->join_all();
  impl_->close_listeners();
}

std::size_t Router::backend_count() const noexcept {
  return impl_ ? impl_->groups_.size() : 0;
}

std::size_t Router::dispatcher_count() const noexcept {
  return impl_ ? impl_->planes_.size() : 0;
}

bool Router::accept_sharded() const noexcept {
  return impl_ && !impl_->shared_listener_;
}

std::size_t Router::backend_of(std::string_view series) const {
  return impl_ && !impl_->ring_.empty() ? impl_->ring_.lookup(series) : 0;
}

const HashRing& Router::ring() const noexcept {
  static const HashRing kEmpty;
  return impl_ ? impl_->ring_ : kEmpty;
}

}  // namespace nws

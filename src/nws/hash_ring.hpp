// Consistent-hash ring for the router tier (DESIGN.md §12).
//
// Each backend contributes `vnodes` virtual points to a 64-bit hash circle;
// a series key routes to the owner of the first point clockwise of its
// hash.  Virtual nodes smooth the per-backend share toward 1/N, and the
// point layout is a pure function of the backend identity strings and the
// vnode count — a restarted router (or a second router in front of the
// same fleet) derives the identical ring and routes every key the same
// way, with no coordination channel.
//
// Membership changes remap only the arc segments owned by the joining or
// leaving backend: adding one backend to an N-backend ring moves an
// expected K/(N+1) of K keys and leaves the rest untouched (the classic
// consistent-hashing bound; router_test measures it).
//
// The point hash is FNV-1a over "identity#vnode".  FNV-1a is also the
// series hash the sharded server uses (ShardedForecastService::hash_series
// delegates to fnv1a64 below), so one well-tested hash covers both tiers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nws {

/// 64-bit FNV-1a.  Stable across platforms and processes by construction
/// (pure arithmetic on bytes) — routing and sharding layouts derived from
/// it survive restarts.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

class HashRing {
 public:
  HashRing() = default;

  /// Builds the ring: node i (by position in `identities`) contributes
  /// points hash(identities[i] + "#" + v) for v in [0, vnodes).  Identity
  /// strings should be stable across restarts (the router uses a backend
  /// group's first endpoint, NOT its currently-active failover target).
  /// vnodes == 0 is treated as 1.
  HashRing(const std::vector<std::string>& identities, std::size_t vnodes);

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t vnodes() const noexcept { return vnodes_; }

  /// Index (into the constructor's identity list) of the node owning `key`.
  /// Must not be called on an empty ring.
  [[nodiscard]] std::size_t lookup(std::string_view key) const noexcept {
    return lookup_hash(fnv1a64(key));
  }

  /// Owner of a raw 64-bit point: the first ring point with hash >= h,
  /// wrapping past the top of the circle.
  [[nodiscard]] std::size_t lookup_hash(std::uint64_t h) const noexcept;

  /// Fraction of the hash circle owned by each node (sums to 1).  Used by
  /// tests to assert vnode smoothing and by DESIGN.md's rebalancing math.
  [[nodiscard]] std::vector<double> ownership() const;

  /// The sorted (point hash, node index) layout — deterministic given
  /// (identities, vnodes).
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, std::uint32_t>>&
  points() const noexcept {
    return points_;
  }

 private:
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;  ///< sorted
  std::size_t nodes_ = 0;
  std::size_t vnodes_ = 0;
};

}  // namespace nws

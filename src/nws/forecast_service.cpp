#include "nws/forecast_service.hpp"

#include <cmath>

#include "forecast/battery.hpp"

namespace nws {

ForecastService::ForecastService(std::size_t memory_capacity,
                                 ForecasterFactory factory,
                                 std::filesystem::path journal_path)
    : memory_(memory_capacity), factory_(std::move(factory)) {
  if (!factory_) {
    factory_ = [] { return make_nws_forecaster(); };
  }
  if (!journal_path.empty()) {
    journal_ = std::make_unique<Journal>(std::move(journal_path));
    recovered_ =
        journal_
            ->replay([this](const std::string& series, Measurement m) {
              return apply(series, m);
            })
            .recovered;
    journal_->open_for_append();
  }
}

bool ForecastService::apply(const std::string& series, Measurement m) {
  if (!memory_.record(series, m)) return false;
  auto it = entries_.find(series);
  if (it == entries_.end()) {
    it = entries_.emplace(series, Entry{factory_(), 0, 0.0, 0.0, 0}).first;
  }
  Entry& e = it->second;
  if (e.history > 0) {
    const double err = e.forecaster->forecast() - m.value;
    e.abs_err_sum += std::abs(err);
    e.sq_err_sum += err * err;
    ++e.err_count;
  }
  e.forecaster->observe(m.value);
  ++e.history;
  return true;
}

bool ForecastService::record(const std::string& series, Measurement m) {
  if (!apply(series, m)) return false;
  if (journal_) (void)journal_->append(series, m);
  return true;
}

bool ForecastService::restore(const std::string& series, Measurement m) {
  if (!apply(series, m)) return false;
  ++recovered_;
  return true;
}

void ForecastService::attach_journal(std::filesystem::path path) {
  journal_ = std::make_unique<Journal>(std::move(path));
  journal_->open_for_append();
}

void ForecastService::rewrite_journal() {
  if (journal_) journal_->rewrite(memory_);
}

void ForecastService::reset() {
  memory_.clear();
  entries_.clear();
  recovered_ = 0;
  rewrite_journal();  // memory is empty, so this truncates the segment
}

void ForecastService::sync() {
  if (journal_) journal_->sync();
}

std::optional<Forecast> ForecastService::predict(
    const std::string& series) const {
  const auto it = entries_.find(series);
  if (it == entries_.end()) return std::nullopt;
  const Entry& e = it->second;
  Forecast f;
  f.value = e.forecaster->forecast();
  f.history = e.history;
  if (e.err_count > 0) {
    f.mae = e.abs_err_sum / static_cast<double>(e.err_count);
    f.mse = e.sq_err_sum / static_cast<double>(e.err_count);
  }
  if (const SeriesStore* store = memory_.find(series);
      store != nullptr && !store->empty()) {
    f.last_time = store->newest().time;
  }
  if (const auto* adaptive =
          dynamic_cast<const AdaptiveForecaster*>(e.forecaster.get())) {
    f.method = adaptive->selected_method();
  } else {
    f.method = e.forecaster->name();
  }
  return f;
}

}  // namespace nws

// Trace persistence: TimeSeries <-> CSV files.
//
// Traces use a two-column CSV (time_seconds, value) with the series name
// and period recorded in '#' comment lines, so external tools can plot them
// and nwscpu can reload them for offline analysis (see
// examples/trace_analysis.cpp).
#pragma once

#include <filesystem>
#include <vector>

#include "tsa/series.hpp"

namespace nws {

/// Writes one series.  Throws std::runtime_error on I/O failure.
void write_trace(const std::filesystem::path& path, const TimeSeries& series);

/// Reads a series written by write_trace (or any 2-column time,value CSV
/// on a regular grid).  The period is taken from the time column spacing
/// when no metadata comment is present.  Throws on I/O failure, on fewer
/// than 2 samples, or on an irregular time grid (> 1% deviation).
[[nodiscard]] TimeSeries read_trace(const std::filesystem::path& path);

}  // namespace nws

// EventLoop: the readiness-notification seam shared by the network tier.
//
// A thin ownership wrapper over epoll (Linux) or poll (portable fallback)
// with the same level-triggered semantics on both backends, so code built
// on it — the router's proxy loop — behaves identically whichever kernel
// facility drives it.  The backend is chosen exactly like the server
// dispatcher's: an explicit NetBackend wins, then NWSCPU_NET_BACKEND, then
// epoll on Linux.
//
// Semantics:
//   - every registered fd is always watched for readability;
//   - writability is watched only while `want_write` is set (toggle it when
//     a tx buffer goes non-empty / drains, the classic level-triggered
//     discipline — leaving EPOLLOUT armed on a writable socket busy-spins);
//   - hangup/error conditions surface as `error` (and typically also as
//     readable: a read() then observes EOF/errno).
//
// Single-threaded: one loop, one owner thread, no locks.  The owner hands
// each fd a u64 tag (an index or generation-checked handle) that comes
// back verbatim in LoopEvent.
#pragma once

#include <cstdint>
#include <vector>

#include "nws/server.hpp"  // NetBackend

namespace nws {

struct LoopEvent {
  int fd = -1;
  std::uint64_t tag = 0;
  bool readable = false;
  bool writable = false;
  bool error = false;  ///< EPOLLERR/EPOLLHUP (POLLERR/POLLHUP/POLLNVAL)
};

class EventLoop {
 public:
  /// `backend` kAuto resolves NWSCPU_NET_BACKEND then the platform default
  /// (epoll on Linux, poll elsewhere; a non-Linux kEpoll request degrades
  /// to poll).
  explicit EventLoop(NetBackend backend = NetBackend::kAuto);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The backend actually driving the loop (never kAuto).
  [[nodiscard]] NetBackend backend() const noexcept { return backend_; }

  /// Registers `fd` (must not already be registered).
  void add(int fd, std::uint64_t tag, bool want_write);
  /// Re-arms an fd's write interest / tag (fd must be registered).
  void update(int fd, std::uint64_t tag, bool want_write);
  /// Unregisters an fd (call BEFORE closing it).
  void remove(int fd);

  /// Blocks up to timeout_ms (-1 = forever) and appends ready events to
  /// `out` (cleared first).  Returns the number of events, 0 on timeout.
  /// EINTR retries internally.
  std::size_t wait(std::vector<LoopEvent>& out, int timeout_ms);

 private:
  struct Entry {
    std::uint64_t tag = 0;
    bool want_write = false;
    bool live = false;
  };

  [[nodiscard]] Entry* entry_for(int fd) noexcept;

  NetBackend backend_ = NetBackend::kPoll;
  int epoll_fd_ = -1;
  /// fd -> registration, indexed by fd (loopback fds are small and dense;
  /// the vector grows on demand).
  std::vector<Entry> entries_;
  std::size_t live_ = 0;
};

}  // namespace nws

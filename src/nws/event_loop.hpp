// EventLoop: the readiness-notification seam shared by the network tier.
//
// A thin ownership wrapper over epoll (Linux) or poll (portable fallback)
// with the same level-triggered semantics on both backends, so code built
// on it — the router's proxy planes — behaves identically whichever kernel
// facility drives it.  The backend is chosen exactly like the server
// dispatcher's: an explicit NetBackend wins, then NWSCPU_NET_BACKEND, then
// epoll on Linux.
//
// Semantics:
//   - every registered fd is always watched for readability;
//   - writability is watched only while `want_write` is set (toggle it when
//     a tx buffer goes non-empty / drains, the classic level-triggered
//     discipline — leaving EPOLLOUT armed on a writable socket busy-spins);
//   - hangup/error conditions surface as `error` (and typically also as
//     readable: a read() then observes EOF/errno).
//
// Single-threaded: one loop, one owner thread, no locks.  The owner hands
// each fd a u64 tag (an index or generation-checked handle) that comes
// back verbatim in LoopEvent.  A multi-dispatcher server/router simply
// owns one EventLoop (plus one LoopWaker) per dispatcher thread.
//
// This header also hosts the two helpers every dispatcher needs:
//   - LoopWaker: the cross-thread wakeup channel (eventfd, else self-pipe);
//   - TxQueue: an outbound queue of wire images flushed with one vectored
//     sendmsg (writev + MSG_NOSIGNAL) per drain instead of copy-then-send.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace nws {

/// Event-loop backend for dispatcher threads.  kAuto resolves the
/// NWSCPU_NET_BACKEND environment variable ("poll" or "epoll"); unset
/// defaults to epoll, whose readiness lists are O(ready) instead of the
/// poll backend's O(connections) pollfd rebuild per iteration.
enum class NetBackend { kAuto, kPoll, kEpoll };

struct LoopEvent {
  int fd = -1;
  std::uint64_t tag = 0;
  bool readable = false;
  bool writable = false;
  bool error = false;  ///< EPOLLERR/EPOLLHUP (POLLERR/POLLHUP/POLLNVAL)
};

class EventLoop {
 public:
  /// `backend` kAuto resolves NWSCPU_NET_BACKEND then the platform default
  /// (epoll on Linux, poll elsewhere; a non-Linux kEpoll request degrades
  /// to poll).
  explicit EventLoop(NetBackend backend = NetBackend::kAuto);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The backend actually driving the loop (never kAuto).
  [[nodiscard]] NetBackend backend() const noexcept { return backend_; }

  /// Registers `fd` (must not already be registered).
  void add(int fd, std::uint64_t tag, bool want_write);
  /// Re-arms an fd's write interest / tag (fd must be registered).
  void update(int fd, std::uint64_t tag, bool want_write);
  /// Unregisters an fd (call BEFORE closing it).
  void remove(int fd);

  /// Blocks up to timeout_ms (-1 = forever) and appends ready events to
  /// `out` (cleared first).  Returns the number of events, 0 on timeout.
  /// EINTR retries internally.
  std::size_t wait(std::vector<LoopEvent>& out, int timeout_ms);

 private:
  struct Entry {
    std::uint64_t tag = 0;
    bool want_write = false;
    bool live = false;
  };

  [[nodiscard]] Entry* entry_for(int fd) noexcept;

  NetBackend backend_ = NetBackend::kPoll;
  int epoll_fd_ = -1;
  /// fd -> registration, indexed by fd (loopback fds are small and dense;
  /// the vector grows on demand).
  std::vector<Entry> entries_;
  std::size_t live_ = 0;
};

/// Worker -> dispatcher wakeup channel: an eventfd when available (one fd
/// is both ends), else a nonblocking self-pipe.  wake() is async-safe with
/// respect to the loop thread; drain() empties the channel after the loop
/// observes rx() readable.  Every dispatcher owns one, so a wake targets
/// exactly the loop that owns the flagged connection.
class LoopWaker {
 public:
  LoopWaker() = default;
  ~LoopWaker() { close_fds(); }

  LoopWaker(const LoopWaker&) = delete;
  LoopWaker& operator=(const LoopWaker&) = delete;

  /// Opens the channel (idempotent).  False when both eventfd and pipe
  /// creation fail.
  bool open();
  void close_fds() noexcept;

  /// The fd the event loop watches for readability (-1 when closed).
  [[nodiscard]] int rx() const noexcept { return rx_; }
  [[nodiscard]] bool is_open() const noexcept { return rx_ >= 0; }

  /// Nudges the loop out of its event wait (callable from any thread).
  void wake() const noexcept;
  /// Drains pending wake tokens (call on the loop thread when rx() fires).
  void drain() const noexcept;

 private:
  int rx_ = -1;
  int tx_ = -1;  ///< == rx_ for an eventfd, the pipe write end otherwise
};

/// Outbound byte queue holding whole wire images (one string per response
/// or frame) and flushing them with a single vectored ::sendmsg per drain:
/// no O(bytes) copy into a flat tx buffer, no memmove on partial writes,
/// and any number of pipelined responses coalesce into one syscall.
class TxQueue {
 public:
  /// iovec fan-in per sendmsg call (IOV_MAX is >=1024 everywhere; 64 keeps
  /// the stack frame small while still batching deep pipelines).
  static constexpr std::size_t kMaxIov = 64;

  enum class FlushStatus {
    kDrained,  ///< queue empty; disarm write interest
    kBlocked,  ///< kernel buffer full (EAGAIN); arm write interest
    kClosed,   ///< hard error (EPIPE/ECONNRESET/...): peer is gone
  };

  [[nodiscard]] bool empty() const noexcept { return bytes_ == 0; }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

  /// Enqueues one wire image (empty strings are dropped: a zero-length
  /// iovec would make the flush loop spin).
  void push(std::string&& wire);
  void clear() noexcept;

  /// Writes as much as `fd` accepts (looping over EINTR and continuing
  /// after full sendmsg batches) and pops fully-sent images.  Counts
  /// syscalls/bytes/buffers into the nws_net_writev_* registry metrics.
  FlushStatus flush(int fd);

 private:
  void consume(std::size_t n) noexcept;

  std::deque<std::string> bufs_;
  std::size_t front_off_ = 0;  ///< bytes of bufs_.front() already sent
  std::size_t bytes_ = 0;      ///< total unsent bytes across bufs_
};

}  // namespace nws

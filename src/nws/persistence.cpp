#include "nws/persistence.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "util/fault.hpp"
#include "util/fmt.hpp"

namespace nws {

namespace {

// Durability telemetry, summed across every journal segment in the
// process (one per shard).  Registered once, held by pointer.
struct JournalMetrics {
  obs::Counter* appends = nullptr;
  obs::Counter* commits = nullptr;
  obs::Counter* write_failures = nullptr;
  obs::Histogram* commit_seconds = nullptr;
  obs::Histogram* batch_records = nullptr;
  obs::Counter* replay_recovered = nullptr;
  obs::Counter* replay_skipped = nullptr;
};

JournalMetrics& journal_metrics() {
  static JournalMetrics* metrics = [] {
    auto* m = new JournalMetrics();
    obs::Registry& reg = obs::registry();
    m->appends = &reg.counter("nws_journal_appends_total",
                              "Records buffered for group commit");
    m->commits = &reg.counter("nws_journal_commits_total",
                              "Group commits issued (write + flush)");
    m->write_failures = &reg.counter(
        "nws_journal_write_failures_total",
        "Records lost to injected or real journal write failures");
    m->commit_seconds = &reg.histogram(
        "nws_journal_commit_seconds", "Group-commit write + flush duration");
    m->batch_records =
        &reg.histogram("nws_journal_batch_records",
                       "Records carried per group commit", /*scale=*/1.0);
    m->replay_recovered = &reg.counter(
        "nws_journal_replay_recovered_total",
        "Records recovered from journal replay at the last restart");
    m->replay_skipped = &reg.counter(
        "nws_journal_replay_skipped_total",
        "Torn or corrupt journal lines skipped during replay");
    return m;
  }();
  return *metrics;
}

/// Parses one journal record: "series time value".  Series names contain
/// no whitespace (enforced on the write side by the protocol's tokeniser
/// conventions).
bool parse_record(const std::string& line, std::string& series,
                  Measurement& m) {
  std::istringstream ss(line);
  if (!(ss >> series >> m.time >> m.value)) return false;
  std::string extra;
  return !(ss >> extra);
}

}  // namespace

// ---------------------------------------------------------------------------
// Journal

Journal::Journal(std::filesystem::path path) : path_(std::move(path)) {}

Journal::~Journal() { (void)commit(); }

Journal::ReplayStats Journal::replay(
    const std::function<bool(const std::string&, Measurement)>& apply) {
  ReplayStats stats;
  std::ifstream in(path_);
  if (!in) return stats;  // no journal yet: fresh store
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::string series;
    Measurement m;
    if (!parse_record(line, series, m) || !apply(series, m)) {
      // Torn tail from a crash, or a corrupt record: skip but count it so
      // operators can notice unexpected damage.
      ++stats.skipped;
      continue;
    }
    ++stats.recovered;
  }
  JournalMetrics& jm = journal_metrics();
  jm.replay_recovered->inc(stats.recovered);
  jm.replay_skipped->inc(stats.skipped);
  return stats;
}

void Journal::open_for_append() {
  out_.close();
  out_.clear();
  out_.open(path_, std::ios::app);
  if (!out_) {
    throw std::runtime_error("Journal: cannot open " + path_.string());
  }
}

void Journal::encode(std::string& out, const std::string& series,
                     Measurement m) {
  out += series;
  out += ' ';
  append_double(out, m.time);
  out += ' ';
  append_double(out, m.value);
  out += '\n';
}

bool Journal::append(const std::string& series, Measurement m) {
  if (fault_check(FaultSite::kDiskWrite).kind == FaultAction::Kind::kFail) {
    ++write_failures_;
    journal_metrics().write_failures->inc();
    return false;
  }
  encode(buffer_, series, m);
  ++pending_;
  journal_metrics().appends->inc();
  if (pending_ >= group_size_) return commit();
  return true;
}

bool Journal::commit() {
  if (pending_ == 0) return true;
  JournalMetrics& jm = journal_metrics();
  jm.commits->inc();
  jm.batch_records->record(pending_);
  const std::uint64_t t0 = obs::metrics_enabled() ? obs::now_ns() : 0;
  out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  out_.flush();
  if (t0 != 0) jm.commit_seconds->record(obs::now_ns() - t0);
  const bool ok = out_.good();
  if (!ok) {
    // Real write failure (disk full, file rotated away, ...): count every
    // record the batch carried and reopen so the next commit gets a fresh
    // stream instead of a stuck failbit swallowing every record from here
    // on.
    write_failures_ += pending_;
    jm.write_failures->inc(pending_);
    out_.close();
    out_.clear();
    out_.open(path_, std::ios::app);
  }
  buffer_.clear();
  pending_ = 0;
  return ok;
}

void Journal::set_group_size(std::size_t records) {
  group_size_ = std::max<std::size_t>(1, records);
  if (pending_ >= group_size_) (void)commit();
}

void Journal::sync() {
  (void)commit();
  out_.flush();
}

void Journal::rewrite(const Memory& memory) {
  // Anything still buffered is already reflected in `memory`; the rewrite
  // below re-emits it, so the buffer is simply discarded.
  buffer_.clear();
  pending_ = 0;
  out_.close();
  const std::filesystem::path tmp = path_.string() + ".compact";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("Journal: cannot write " + tmp.string());
    }
    out << "# nwscpu journal (compacted)\n";
    std::string record;
    for (const std::string& name : memory.series_names()) {
      const SeriesStore* store = memory.find(name);
      for (std::size_t i = 0; i < store->size(); ++i) {
        record.clear();
        encode(record, name, store->at(i));
        out << record;
      }
    }
    if (!out) {
      throw std::runtime_error("Journal: write failure on " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, path_);
  open_for_append();
}

// ---------------------------------------------------------------------------
// PersistentMemory

PersistentMemory::PersistentMemory(std::filesystem::path path,
                                   std::size_t series_capacity)
    : memory_(series_capacity), journal_(std::move(path)) {
  const Journal::ReplayStats stats =
      journal_.replay([this](const std::string& series, Measurement m) {
        return memory_.record(series, m);
      });
  recovered_ = stats.recovered;
  skipped_ = stats.skipped;
  journal_.open_for_append();
}

bool PersistentMemory::record(const std::string& series, Measurement m) {
  if (!memory_.record(series, m)) return false;
  (void)journal_.append(series, m);
  return true;
}

void PersistentMemory::sync() { journal_.sync(); }

void PersistentMemory::compact() { journal_.rewrite(memory_); }

}  // namespace nws

#include "nws/persistence.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace nws {

namespace {

/// Parses one journal record: "series time value".  Series names contain
/// no whitespace (enforced on the write side by the protocol's tokeniser
/// conventions).
bool parse_record(const std::string& line, std::string& series,
                  Measurement& m) {
  std::istringstream ss(line);
  if (!(ss >> series >> m.time >> m.value)) return false;
  std::string extra;
  return !(ss >> extra);
}

}  // namespace

PersistentMemory::PersistentMemory(std::filesystem::path path,
                                   std::size_t series_capacity)
    : path_(std::move(path)), memory_(series_capacity) {
  replay();
  open_for_append();
}

void PersistentMemory::replay() {
  std::ifstream in(path_);
  if (!in) return;  // no journal yet: fresh store
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::string series;
    Measurement m;
    if (!parse_record(line, series, m) || !memory_.record(series, m)) {
      // Torn tail from a crash, or a corrupt record: skip but count it so
      // operators can notice unexpected damage.
      ++skipped_;
      continue;
    }
    ++recovered_;
  }
}

void PersistentMemory::open_for_append() {
  journal_.open(path_, std::ios::app);
  if (!journal_) {
    throw std::runtime_error("PersistentMemory: cannot open journal " +
                             path_.string());
  }
}

std::string PersistentMemory::encode(const std::string& series,
                                     Measurement m) {
  std::ostringstream ss;
  ss.precision(17);
  ss << series << ' ' << m.time << ' ' << m.value;
  return ss.str();
}

bool PersistentMemory::record(const std::string& series, Measurement m) {
  if (!memory_.record(series, m)) return false;
  journal_ << encode(series, m) << '\n';
  return true;
}

void PersistentMemory::sync() { journal_.flush(); }

void PersistentMemory::compact() {
  journal_.close();
  const std::filesystem::path tmp = path_.string() + ".compact";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("PersistentMemory: cannot write " +
                               tmp.string());
    }
    out << "# nwscpu journal (compacted)\n";
    for (const std::string& name : memory_.series_names()) {
      const SeriesStore* store = memory_.find(name);
      for (std::size_t i = 0; i < store->size(); ++i) {
        out << encode(name, store->at(i)) << '\n';
      }
    }
    if (!out) {
      throw std::runtime_error("PersistentMemory: write failure on " +
                               tmp.string());
    }
  }
  std::filesystem::rename(tmp, path_);
  open_for_append();
}

}  // namespace nws

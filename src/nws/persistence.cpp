#include "nws/persistence.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/fault.hpp"

namespace nws {

namespace {

/// Parses one journal record: "series time value".  Series names contain
/// no whitespace (enforced on the write side by the protocol's tokeniser
/// conventions).
bool parse_record(const std::string& line, std::string& series,
                  Measurement& m) {
  std::istringstream ss(line);
  if (!(ss >> series >> m.time >> m.value)) return false;
  std::string extra;
  return !(ss >> extra);
}

}  // namespace

// ---------------------------------------------------------------------------
// Journal

Journal::Journal(std::filesystem::path path) : path_(std::move(path)) {}

Journal::ReplayStats Journal::replay(
    const std::function<bool(const std::string&, Measurement)>& apply) {
  ReplayStats stats;
  std::ifstream in(path_);
  if (!in) return stats;  // no journal yet: fresh store
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::string series;
    Measurement m;
    if (!parse_record(line, series, m) || !apply(series, m)) {
      // Torn tail from a crash, or a corrupt record: skip but count it so
      // operators can notice unexpected damage.
      ++stats.skipped;
      continue;
    }
    ++stats.recovered;
  }
  return stats;
}

void Journal::open_for_append() {
  out_.close();
  out_.clear();
  out_.open(path_, std::ios::app);
  if (!out_) {
    throw std::runtime_error("Journal: cannot open " + path_.string());
  }
}

std::string Journal::encode(const std::string& series, Measurement m) {
  std::ostringstream ss;
  ss.precision(17);
  ss << series << ' ' << m.time << ' ' << m.value;
  return ss.str();
}

bool Journal::append(const std::string& series, Measurement m) {
  if (fault_check(FaultSite::kDiskWrite).kind == FaultAction::Kind::kFail) {
    ++write_failures_;
    return false;
  }
  out_ << encode(series, m) << '\n';
  if (out_.good()) return true;
  // Real write failure (disk full, file rotated away, ...): count it and
  // reopen so the next append gets a fresh stream instead of a stuck
  // failbit swallowing every record from here on.
  ++write_failures_;
  out_.close();
  out_.clear();
  out_.open(path_, std::ios::app);
  return false;
}

void Journal::sync() { out_.flush(); }

void Journal::rewrite(const Memory& memory) {
  out_.close();
  const std::filesystem::path tmp = path_.string() + ".compact";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("Journal: cannot write " + tmp.string());
    }
    out << "# nwscpu journal (compacted)\n";
    for (const std::string& name : memory.series_names()) {
      const SeriesStore* store = memory.find(name);
      for (std::size_t i = 0; i < store->size(); ++i) {
        out << encode(name, store->at(i)) << '\n';
      }
    }
    if (!out) {
      throw std::runtime_error("Journal: write failure on " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, path_);
  open_for_append();
}

// ---------------------------------------------------------------------------
// PersistentMemory

PersistentMemory::PersistentMemory(std::filesystem::path path,
                                   std::size_t series_capacity)
    : memory_(series_capacity), journal_(std::move(path)) {
  const Journal::ReplayStats stats =
      journal_.replay([this](const std::string& series, Measurement m) {
        return memory_.record(series, m);
      });
  recovered_ = stats.recovered;
  skipped_ = stats.skipped;
  journal_.open_for_append();
}

bool PersistentMemory::record(const std::string& series, Measurement m) {
  if (!memory_.record(series, m)) return false;
  (void)journal_.append(series, m);
  return true;
}

void PersistentMemory::sync() { journal_.sync(); }

void PersistentMemory::compact() { journal_.rewrite(memory_); }

}  // namespace nws

#include "nws/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/fault.hpp"

namespace nws {

namespace {

ServerConfig capacity_only(std::size_t memory_capacity) {
  ServerConfig config;
  config.memory_capacity = memory_capacity;
  return config;
}

}  // namespace

NwsServer::NwsServer(ServerConfig config)
    : cfg_(std::move(config)),
      service_(cfg_.memory_capacity, {}, cfg_.journal_path) {}

NwsServer::NwsServer(std::size_t memory_capacity)
    : NwsServer(capacity_only(memory_capacity)) {}

NwsServer::~NwsServer() {
  stop();
  service_.sync();
}

std::string NwsServer::handle_put(const Request& request) {
  // Admission control: shed new series when the table is full, loudly.
  if (cfg_.max_series != 0 && !service_.memory().contains(request.series) &&
      service_.series_count() >= cfg_.max_series) {
    ++shed_;
    return format_error("busy");
  }
  if (request.kind == RequestKind::kPutSeq) {
    // Idempotent replay: a duplicate is either a sequence number we have
    // already applied (same server incarnation) or a timestamp that is not
    // newer than the stored series (covers replay after a restart, when
    // applied_seq_ is empty but the journal restored the measurements).
    const auto seq_it = applied_seq_.find(request.series);
    const bool seq_dup =
        seq_it != applied_seq_.end() && request.seq <= seq_it->second;
    const SeriesStore* store = service_.memory().find(request.series);
    const bool time_dup = store != nullptr && !store->empty() &&
                          request.measurement.time <= store->newest().time;
    if (seq_dup || time_dup) {
      ++duplicates_;
      return "OK dup";
    }
  }
  if (!service_.record(request.series, request.measurement)) {
    return format_error("out-of-order measurement");
  }
  if (request.kind == RequestKind::kPutSeq) {
    applied_seq_[request.series] = request.seq;
  }
  return format_ok();
}

std::string NwsServer::handle_line(std::string_view line) {
  ++requests_;
  const auto request = parse_request(line);
  if (!request) return format_error("malformed request");

  const std::scoped_lock lock(mutex_);
  switch (request->kind) {
    case RequestKind::kPut:
    case RequestKind::kPutSeq:
      return handle_put(*request);
    case RequestKind::kForecast: {
      const auto forecast = service_.predict(request->series);
      if (!forecast) return format_error("unknown series");
      return format_forecast_response(forecast->value, forecast->mae,
                                      forecast->mse, forecast->history,
                                      forecast->last_time, forecast->method);
    }
    case RequestKind::kValues: {
      const SeriesStore* store = service_.memory().find(request->series);
      if (store == nullptr) return format_error("unknown series");
      std::vector<Measurement> values;
      const std::size_t n = std::min(request->max_values, store->size());
      values.reserve(n);
      for (std::size_t i = store->size() - n; i < store->size(); ++i) {
        values.push_back(store->at(i));
      }
      return format_values_response(values);
    }
    case RequestKind::kSeries:
      return format_series_response(service_.memory().series_names());
    case RequestKind::kPing:
    case RequestKind::kQuit:
      return format_ok();
  }
  return format_error("unhandled request");
}

std::uint16_t NwsServer::start(std::uint16_t port) {
  if (running_.load()) return 0;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return 0;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 32) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return 0;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return 0;
  }
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  thread_ = std::thread(&NwsServer::serve_loop, this);
  return port_;
}

void NwsServer::stop() {
  if (!running_.exchange(false)) {
    service_.sync();
    return;
  }
  // The event loop polls with a timeout, so flipping running_ is enough;
  // shutting the listener down also kicks it out of a quiet poll()
  // immediately.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
  service_.sync();
}

void NwsServer::process_buffered_lines(Connection& conn) {
  std::size_t newline;
  while (!conn.closing &&
         (newline = conn.rx.find('\n')) != std::string::npos) {
    if (newline > cfg_.max_line_bytes) {
      conn.tx += format_error("line too long") + "\n";
      conn.rx.clear();
      conn.closing = true;
      ++dropped_;
      return;
    }
    const std::string line = conn.rx.substr(0, newline);
    conn.rx.erase(0, newline + 1);
    std::string response = handle_line(line);

    const FaultAction fault = fault_check(FaultSite::kServerRespond);
    switch (fault.kind) {
      case FaultAction::Kind::kDelay:
        // A stalled server: the whole event loop blocks, exactly the
        // pathology client timeouts must absorb.
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
        break;
      case FaultAction::Kind::kTruncate:
        // Half a response and then a dead connection, as if the server
        // crashed mid-write.
        conn.tx += response.substr(0, response.size() / 2);
        conn.closing = true;
        continue;
      case FaultAction::Kind::kGarbage:
        response = "\x02\x7f!garbage";
        break;
      default:
        break;
    }

    conn.tx += response + "\n";
    const auto request = parse_request(line);
    if (request && request->kind == RequestKind::kQuit) {
      conn.closing = true;
    }
  }
  // A peer may also stream an endless line with no newline at all; cap the
  // buffered prefix too.
  if (!conn.closing && conn.rx.size() > cfg_.max_line_bytes) {
    conn.tx += format_error("line too long") + "\n";
    conn.rx.clear();
    conn.closing = true;
    ++dropped_;
  }
}

bool NwsServer::flush_tx(Connection& conn) {
  while (!conn.tx.empty()) {
    const ssize_t w =
        ::send(conn.fd, conn.tx.data(), conn.tx.size(), MSG_NOSIGNAL);
    if (w < 0) {
      // EAGAIN cannot happen on blocking sockets with poll-gated writes of
      // modest responses; treat any failure as a dead peer.
      return false;
    }
    conn.tx.erase(0, static_cast<std::size_t>(w));
  }
  return !conn.closing;
}

void NwsServer::serve_loop() {
  std::vector<Connection> conns;
  char chunk[4096];

  const auto drop = [&](std::size_t i) {
    ::close(conns[i].fd);
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
    connections_.store(conns.size());
  };

  while (running_.load()) {
    std::vector<pollfd> fds;
    fds.reserve(conns.size() + 1);
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const Connection& c : conns) {
      fds.push_back({c.fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (!running_.load()) break;
    const auto now = std::chrono::steady_clock::now();

    if (ready > 0) {
      // Client traffic first: only the connections present when the pollfd
      // list was built have a valid fds[i + 1] slot, so the accept below
      // must not grow conns before this walk.  Iterate backwards so drops
      // do not shift unvisited entries.
      for (std::size_t i = conns.size(); i-- > 0;) {
        const short revents = fds[i + 1].revents;
        if (revents == 0) continue;
        if (revents & (POLLERR | POLLNVAL)) {
          drop(i);
          continue;
        }
        if (revents & (POLLIN | POLLHUP)) {
          const ssize_t n = ::recv(conns[i].fd, chunk, sizeof chunk, 0);
          if (n <= 0) {
            drop(i);
            continue;
          }
          if (fault_check(FaultSite::kServerRead).kind ==
              FaultAction::Kind::kReset) {
            // The network "ate" the connection: drop it with the bytes.
            drop(i);
            continue;
          }
          conns[i].last_activity = now;
          conns[i].rx.append(chunk, static_cast<std::size_t>(n));
          process_buffered_lines(conns[i]);
          if (!flush_tx(conns[i])) drop(i);
        }
      }

      // New connections.
      if (fds[0].revents & (POLLIN | POLLERR | POLLHUP)) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd >= 0) {
          conns.push_back(Connection{fd, {}, {}, false, now});
          connections_.store(conns.size());
        }
      }
    }

    // Idle expiry: long-lived infrastructure must not let dead sensors pin
    // sockets forever.
    if (cfg_.idle_timeout_ms > 0) {
      const auto limit = std::chrono::milliseconds(cfg_.idle_timeout_ms);
      for (std::size_t i = conns.size(); i-- > 0;) {
        if (now - conns[i].last_activity > limit) {
          drop(i);
          ++dropped_;
        }
      }
    }
  }

  for (const Connection& c : conns) ::close(c.fd);
  conns.clear();
  connections_.store(0);
}

}  // namespace nws

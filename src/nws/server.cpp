#include "nws/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <vector>

#include "nws/client.hpp"
#include "obs/http_exporter.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/fmt.hpp"

// Build identity for nws_build_info / statusz: CMake injects the real
// values; the fallbacks keep non-CMake builds (and IDE parses) compiling.
#ifndef NWSCPU_VERSION
#define NWSCPU_VERSION "dev"
#endif
#ifndef NWSCPU_GIT_SHA
#define NWSCPU_GIT_SHA "unknown"
#endif

namespace nws {

namespace {

// -------------------------------------------------------------------------
// Telemetry: per-verb request counters and latency histograms plus the
// server-wide counters mirrored into the registry (the legacy atomics on
// NwsServer stay authoritative for the accessor API; these feed METRICS).
// Registered once, held by pointer — the hot path never touches the
// registry mutex.

constexpr std::size_t kVerbCount = 14;

const char* verb_label(RequestKind kind) noexcept {
  switch (kind) {
    case RequestKind::kReplHello:
      return "REPL_HELLO";
    case RequestKind::kReplBatch:
      return "REPL_BATCH";
    case RequestKind::kReplReset:
      return "REPL_RESET";
    case RequestKind::kPromote:
      return "PROMOTE";
    case RequestKind::kPut:
      return "PUT";
    case RequestKind::kPutSeq:
      return "PUTS";
    case RequestKind::kPutBatch:
      return "PUTB";
    case RequestKind::kForecast:
      return "FORECAST";
    case RequestKind::kValues:
      return "VALUES";
    case RequestKind::kSeries:
      return "SERIES";
    case RequestKind::kStats:
      return "STATS";
    case RequestKind::kMetrics:
      return "METRICS";
    case RequestKind::kPing:
      return "PING";
    case RequestKind::kQuit:
      return "QUIT";
  }
  return "?";
}

struct ServerMetrics {
  std::array<obs::Counter*, kVerbCount> requests{};
  std::array<obs::Histogram*, kVerbCount> latency{};
  obs::Counter* malformed = nullptr;
  obs::Counter* fence_waits = nullptr;
  obs::Histogram* fence_wait_seconds = nullptr;
  obs::Counter* duplicates = nullptr;
  obs::Counter* shed = nullptr;
  obs::Counter* conns_dropped = nullptr;
  obs::Gauge* connections = nullptr;
  obs::Gauge* series = nullptr;
  obs::Counter* accepts = nullptr;
  obs::Counter* accept_overflows = nullptr;
  obs::Counter* bin_upgrades = nullptr;
  obs::Counter* wakeups = nullptr;
  obs::Counter* event_waits_poll = nullptr;
  obs::Counter* event_waits_epoll = nullptr;
  // Replication & failover (DESIGN.md §11).
  obs::Counter* repl_streamed = nullptr;
  obs::Counter* repl_applied = nullptr;
  obs::Counter* repl_acks = nullptr;
  obs::Counter* repl_snapshots = nullptr;
  obs::Counter* repl_fenced = nullptr;
  obs::Counter* repl_gaps = nullptr;
  obs::Counter* repl_sync_timeouts = nullptr;
  obs::Counter* repl_meta_failures = nullptr;
  obs::Counter* promotions = nullptr;
  obs::Counter* not_primary = nullptr;
  obs::Gauge* repl_lag = nullptr;
  obs::Gauge* role = nullptr;
};

ServerMetrics& server_metrics() {
  // Leaked (like the registry): instrumentation sites may fire from worker
  // threads during static destruction of other objects.
  static ServerMetrics* metrics = [] {
    auto* m = new ServerMetrics();
    obs::Registry& reg = obs::registry();
    for (std::size_t i = 0; i < kVerbCount; ++i) {
      const std::string labels =
          std::string("{verb=\"") + verb_label(static_cast<RequestKind>(i)) +
          "\"}";
      m->requests[i] = &reg.counter("nws_server_requests_total" + labels,
                                    "Requests served, by verb");
      m->latency[i] =
          &reg.histogram("nws_server_request_seconds" + labels,
                         "Request latency (parse + execute), by verb");
    }
    m->malformed = &reg.counter("nws_server_malformed_total",
                                "Requests rejected by the parser");
    m->fence_waits =
        &reg.counter("nws_server_fence_waits_total",
                     "Cross-shard reads that waited on the read-your-writes "
                     "barrier");
    m->fence_wait_seconds =
        &reg.histogram("nws_server_fence_wait_seconds",
                       "Read-your-writes barrier wait before a cross-shard "
                       "read executes");
    m->duplicates = &reg.counter(
        "nws_server_duplicates_total",
        "Duplicate PUTS requests / PUTB samples acked without re-applying");
    m->shed = &reg.counter("nws_server_shed_busy_total",
                           "Requests shed with ERR busy (series table full)");
    m->conns_dropped =
        &reg.counter("nws_server_connections_dropped_total",
                     "Connections dropped for oversized lines or idleness");
    m->connections = &reg.gauge(
        "nws_server_connections",
        "Connected clients (live: updated on accept and teardown)");
    m->series = &reg.gauge("nws_server_series",
                           "Distinct series (refreshed on METRICS)");
    m->accepts = &reg.counter("nws_server_accepts_total",
                              "Connections accepted since start");
    m->accept_overflows = &reg.counter(
        "nws_server_accept_overflows_total",
        "Accept-readiness events that found the kernel accept queue at or "
        "past the configured listen backlog (Linux TCP_INFO)");
    m->bin_upgrades =
        &reg.counter("nws_server_bin_upgrades_total",
                     "Connections upgraded to binary framing (HELLO BIN)");
    m->wakeups =
        &reg.counter("nws_server_dispatcher_wakeups_total",
                     "Worker -> dispatcher wakeups (eventfd/self-pipe)");
    m->event_waits_poll =
        &reg.counter("nws_server_event_waits_total{backend=\"poll\"}",
                     "Event-loop wait returns, poll backend");
    m->event_waits_epoll =
        &reg.counter("nws_server_event_waits_total{backend=\"epoll\"}",
                     "Event-loop wait returns, epoll backend");
    m->repl_streamed =
        &reg.counter("nws_repl_records_streamed_total",
                     "Records a primary streamed to followers (acked)");
    m->repl_applied = &reg.counter(
        "nws_repl_records_applied_total",
        "Replicated records a follower applied (batches + snapshots)");
    m->repl_acks = &reg.counter("nws_repl_batches_acked_total",
                                "REPL BATCH/RESET acks a follower sent");
    m->repl_snapshots =
        &reg.counter("nws_repl_snapshots_total",
                     "Shard snapshot transfers (follower out of log range)");
    m->repl_fenced = &reg.counter(
        "nws_repl_fenced_total",
        "Replication requests rejected with ERR stale_epoch");
    m->repl_gaps = &reg.counter(
        "nws_repl_gaps_total",
        "REPL batches rejected with ERR gap (watermark disagreement)");
    m->repl_sync_timeouts = &reg.counter(
        "nws_repl_sync_timeouts_total",
        "Synchronous-replication waits that timed out (ERR repl_timeout)");
    m->repl_meta_failures =
        &reg.counter("nws_repl_meta_failures_total",
                     "Follower cursor (replmeta) writes that failed");
    m->promotions = &reg.counter("nws_server_promotions_total",
                                 "Follower -> primary promotions");
    m->not_primary = &reg.counter(
        "nws_server_not_primary_total",
        "Client writes rejected with ERR not_primary (redirect)");
    m->repl_lag = &reg.gauge(
        "nws_repl_lag_records",
        "Records committed locally, not yet acked by the slowest follower");
    m->role = &reg.gauge("nws_server_role",
                         "1 = primary (accepts writes), 0 = follower");
    return m;
  }();
  return *metrics;
}

ServerConfig capacity_only(std::size_t memory_capacity) {
  ServerConfig config;
  config.memory_capacity = memory_capacity;
  return config;
}

std::size_t resolve_shards(const ServerConfig& cfg) {
  if (cfg.shards > 0) return cfg.shards;
  if (const char* env = std::getenv("NWSCPU_SHARDS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::size_t resolve_dispatchers(const ServerConfig& cfg) {
  if (cfg.dispatchers > 0) return cfg.dispatchers;
  if (const char* env = std::getenv("NWSCPU_DISPATCHERS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return 1;
}

int resolve_listen_backlog(const ServerConfig& cfg) {
  if (cfg.listen_backlog > 0) return cfg.listen_backlog;
  if (const char* env = std::getenv("NWSCPU_LISTEN_BACKLOG")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  return SOMAXCONN;
}

/// HTTP observability side port: config wins, then NWSCPU_OBS_PORT;
/// negative = disabled (0 is a valid "pick an ephemeral port" request).
int resolve_obs_port(const ServerConfig& cfg) {
  if (cfg.obs_port >= 0) return cfg.obs_port;
  if (const char* env = std::getenv("NWSCPU_OBS_PORT")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0 && v <= 65535) {
      return static_cast<int>(v);
    }
  }
  return -1;
}

bool resolve_reuseport(const ServerConfig& cfg) {
  if (!cfg.reuseport) return false;
  if (const char* env = std::getenv("NWSCPU_REUSEPORT")) {
    const std::string_view v(env);
    if (v == "0" || v == "off" || v == "false") return false;
  }
  return true;
}

/// Opens a nonblocking loopback listener on `*port` (0 = ephemeral;
/// updated to the bound port).  `reuseport` adds SO_REUSEPORT before bind
/// so several listeners can shard one port's accept queue (Linux).
int open_listener(std::uint16_t* port, int backlog, bool reuseport) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
#ifdef __linux__
  if (reuseport) {
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      ::close(fd);
      return -1;
    }
  }
#else
  if (reuseport) {
    ::close(fd);
    return -1;
  }
#endif
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(*port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, backlog) < 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return -1;
  }
  *port = ntohs(addr.sin_port);
  set_nonblocking(fd);
  return fd;
}

std::string resolve_followers(const ServerConfig& cfg) {
  if (!cfg.repl_followers.empty()) return cfg.repl_followers;
  if (const char* env = std::getenv("NWSCPU_REPL_FOLLOWERS")) return env;
  return {};
}

int resolve_failover_ms(const ServerConfig& cfg) {
  if (cfg.failover_ms > 0) return cfg.failover_ms;
  if (const char* env = std::getenv("NWSCPU_FAILOVER_MS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  return 0;
}

std::int64_t steady_ms() noexcept {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Lock-free monotonic max for epoch bookkeeping.
void store_max(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value,
                                       std::memory_order_acq_rel)) {
  }
}

NetBackend resolve_backend(const ServerConfig& cfg) {
  if (cfg.net_backend != NetBackend::kAuto) return cfg.net_backend;
  if (const char* env = std::getenv("NWSCPU_NET_BACKEND")) {
    const std::string_view v(env);
    if (v == "poll") return NetBackend::kPoll;
    if (v == "epoll") return NetBackend::kEpoll;
  }
#ifdef __linux__
  return NetBackend::kEpoll;
#else
  return NetBackend::kPoll;
#endif
}

/// Accepted sockets are nonblocking (the dispatcher must never stall on
/// one peer) and run with Nagle off: a sensor's single PUT must not sit
/// in the kernel for a delayed-ack round trip (the latency delta is
/// recorded in DESIGN.md §10).  The Linux accept path gets the nonblocking
/// half from accept4(SOCK_NONBLOCK) and sets TCP_NODELAY inline.
[[maybe_unused]] void configure_conn_socket(int fd) {
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

NwsServer::NwsServer(ServerConfig config)
    : cfg_(std::move(config)),
      service_(resolve_shards(cfg_), cfg_.memory_capacity, {},
               cfg_.journal_path) {
  shards_.reserve(service_.shard_count());
  shard_queue_depth_.reserve(service_.shard_count());
  for (std::size_t k = 0; k < service_.shard_count(); ++k) {
    shards_.push_back(std::make_unique<ShardState>());
    shard_queue_depth_.push_back(&obs::registry().gauge(
        "nws_shard_queue_depth{shard=\"" + std::to_string(k) + "\"}",
        "Requests queued per shard worker"));
  }
  service_.set_group_size(cfg_.journal_group_size);
  total_series_.store(service_.series_count(), std::memory_order_relaxed);
  backend_ = resolve_backend(cfg_);

  // --- Replication wiring (DESIGN.md §11) -------------------------------
  cfg_.repl_followers = resolve_followers(cfg_);
  cfg_.failover_ms = resolve_failover_ms(cfg_);
  follower_endpoints_ = parse_endpoint_list(cfg_.repl_followers);
  repl_enabled_ =
      !follower_endpoints_.empty() || cfg_.role == ServerRole::kFollower;
  const std::size_t n = service_.shard_count();
  repl_end_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  shard_synced_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (std::size_t k = 0; k < n; ++k) {
    repl_end_[k].store(0, std::memory_order_relaxed);
    shard_synced_[k].store(0, std::memory_order_relaxed);
  }
  if (repl_enabled_) {
    for (std::size_t k = 0; k < n; ++k) {
      shards_[k]->repl_log = std::make_unique<ReplLog>(cfg_.repl_log_capacity);
    }
    if (cfg_.role == ServerRole::kFollower) {
      is_primary_.store(false, std::memory_order_release);
      epoch_.store(0, std::memory_order_release);
      if (!cfg_.journal_path.empty()) {
        meta_path_ = cfg_.journal_path.string() + ".replmeta";
        const auto meta = load_repl_meta(meta_path_);
        if (meta && meta->watermarks.size() == n) {
          epoch_.store(meta->epoch, std::memory_order_release);
          store_max(max_seen_epoch_, meta->epoch);
          for (std::size_t k = 0; k < n; ++k) {
            // The watermark may legitimately lead the journal (dup-skipped
            // records advance it without appending); resume from it as-is.
            repl_end_[k].store(meta->watermarks[k],
                               std::memory_order_relaxed);
            shard_synced_[k].store(meta->synced_epoch,
                                   std::memory_order_relaxed);
            shards_[k]->repl_log->reset_base(meta->watermarks[k]);
          }
        }
      }
    } else {
      // Primary: the commit index starts at each shard's replayed total.
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint64_t appended =
            service_.shard(k).memory().totals().appended;
        shards_[k]->repl_log->reset_base(appended);
        repl_end_[k].store(appended, std::memory_order_relaxed);
        shard_synced_[k].store(1, std::memory_order_relaxed);
      }
    }
  }
  server_metrics().role->set(is_primary() ? 1.0 : 0.0);
}

NwsServer::NwsServer(std::size_t memory_capacity)
    : NwsServer(capacity_only(memory_capacity)) {}

NwsServer::~NwsServer() {
  stop();
  service_.sync();
}

void NwsServer::handle_put(const Request& req, std::size_t k,
                           std::string& out) {
  ForecastService& svc = service_.shard(k);
  const bool is_new = !svc.memory().contains(req.series);
  // Admission control: shed new series when the table is full, loudly.
  if (cfg_.max_series != 0 && is_new &&
      total_series_.load(std::memory_order_relaxed) >= cfg_.max_series) {
    ++shed_;
    server_metrics().shed->inc();
    append_error(out, "busy");
    out += " retry_after_ms=";
    append_unsigned(out, static_cast<std::uint64_t>(cfg_.busy_retry_ms));
    return;
  }
  auto& applied_seq = shards_[k]->applied_seq;
  ReplLog* const repl_log = shards_[k]->repl_log.get();

  if (req.kind == RequestKind::kPutBatch) {
    // Per-sample exactly-once accounting: a sample is a duplicate when its
    // sequence was already applied (same incarnation) or its timestamp is
    // not newer than the stored series (covers replay after a restart).
    std::uint64_t applied = 0;
    std::uint64_t dup = 0;
    std::uint64_t dropped = 0;
    const auto seq_it = applied_seq.find(req.series);
    std::uint64_t high = seq_it != applied_seq.end() ? seq_it->second : 0;
    for (std::size_t i = 0; i < req.batch.size(); ++i) {
      const std::uint64_t seq = req.seq + i;
      const Measurement m = req.batch[i];
      const SeriesStore* store = svc.memory().find(req.series);
      const bool time_dup =
          store != nullptr && !store->empty() && m.time <= store->newest().time;
      if (seq <= high || time_dup) {
        ++dup;
        continue;
      }
      if (svc.record(req.series, m)) {
        ++applied;
        if (repl_log != nullptr) repl_log->append(req.series, m);
      } else {
        ++dropped;
      }
    }
    // Every sample is accounted in the reply, so the whole range is
    // settled: a replay of this batch must ack as duplicate.
    applied_seq[req.series] =
        std::max(high, req.seq + req.batch.size() - 1);
    duplicates_ += dup;
    server_metrics().duplicates->inc(dup);
    if (applied > 0 && is_new) {
      total_series_.fetch_add(1, std::memory_order_relaxed);
    }
    append_put_batch_response(out, applied, dup, dropped);
    return;
  }

  if (req.kind == RequestKind::kPutSeq) {
    const auto seq_it = applied_seq.find(req.series);
    const bool seq_dup =
        seq_it != applied_seq.end() && req.seq <= seq_it->second;
    const SeriesStore* store = svc.memory().find(req.series);
    const bool time_dup = store != nullptr && !store->empty() &&
                          req.measurement.time <= store->newest().time;
    if (seq_dup || time_dup) {
      ++duplicates_;
      server_metrics().duplicates->inc();
      out += "OK dup";
      return;
    }
  }
  if (!svc.record(req.series, req.measurement)) {
    append_error(out, "out-of-order measurement");
    return;
  }
  if (repl_log != nullptr) repl_log->append(req.series, req.measurement);
  if (is_new) total_series_.fetch_add(1, std::memory_order_relaxed);
  if (req.kind == RequestKind::kPutSeq) {
    applied_seq[req.series] = req.seq;
  }
  append_ok(out);
}

void NwsServer::execute_request(const Request& req, std::string& out) {
  switch (req.kind) {
    case RequestKind::kPut:
    case RequestKind::kPutSeq:
    case RequestKind::kPutBatch: {
      if (repl_enabled_ && !is_primary_.load(std::memory_order_acquire)) {
        // Redirect instead of silently applying: a write accepted by a
        // follower would be lost on the next resync.
        ++not_primary_;
        server_metrics().not_primary->inc();
        append_error(out, "not_primary");
        out += ' ';
        out += primary_hint();
        return;
      }
      const std::size_t k = service_.shard_of(req.series);
      std::uint64_t sync_target = 0;
      bool appended = false;
      {
        const std::scoped_lock lock(shards_[k]->mu);
        ReplLog* const log = shards_[k]->repl_log.get();
        const std::uint64_t before = log != nullptr ? log->end() : 0;
        handle_put(req, k, out);
        if (log != nullptr) {
          sync_target = log->end();
          appended = sync_target != before;
          if (appended) {
            repl_end_[k].store(sync_target, std::memory_order_release);
          }
        }
      }
      if (appended) {
        if (req.trace_sampled && req.trace_id != 0) {
          // Remember the write's context (the ambient span is our apply
          // span) so the repl sender can piggyback it onto the next BATCH
          // for this shard and the follower's apply joins the trace.
          shards_[k]->last_trace_id.store(req.trace_id,
                                          std::memory_order_relaxed);
          shards_[k]->last_trace_span.store(
              obs::current_trace_context().span_id, std::memory_order_relaxed);
        }
        {
          const std::scoped_lock rlock(repl_mu_);
          ++repl_gen_;
        }
        repl_cv_.notify_all();
        if (cfg_.repl_sync && !wait_repl_acked(k, sync_target)) {
          // The write is applied locally but not provably replicated; the
          // client's outbox retries and the dup-ack path converges.
          out.clear();
          append_error(out, "repl_timeout");
          server_metrics().repl_sync_timeouts->inc();
        }
      }
      return;
    }
    case RequestKind::kForecast: {
      const std::size_t k = service_.shard_of(req.series);
      const std::scoped_lock lock(shards_[k]->mu);
      const auto forecast = service_.shard(k).predict(req.series);
      if (!forecast) {
        append_error(out, "unknown series");
        return;
      }
      append_forecast_response(out, forecast->value, forecast->mae,
                               forecast->mse, forecast->history,
                               forecast->last_time, forecast->method);
      return;
    }
    case RequestKind::kValues: {
      const std::size_t k = service_.shard_of(req.series);
      const std::scoped_lock lock(shards_[k]->mu);
      const SeriesStore* store = service_.shard(k).memory().find(req.series);
      if (store == nullptr) {
        append_error(out, "unknown series");
        return;
      }
      std::vector<Measurement> values;
      const std::size_t n = std::min(req.max_values, store->size());
      values.reserve(n);
      for (std::size_t i = store->size() - n; i < store->size(); ++i) {
        values.push_back(store->at(i));
      }
      append_values_response(out, values);
      return;
    }
    case RequestKind::kSeries: {
      std::vector<std::unique_lock<std::mutex>> locks;
      locks.reserve(shards_.size());
      for (auto& sh : shards_) locks.emplace_back(sh->mu);
      append_series_response(out, service_.series_names());
      return;
    }
    case RequestKind::kStats: {
      if (!req.series.empty()) {
        const std::size_t k = service_.shard_of(req.series);
        const std::scoped_lock lock(shards_[k]->mu);
        const SeriesStore* store =
            service_.shard(k).memory().find(req.series);
        if (store == nullptr) {
          append_error(out, "unknown series");
          return;
        }
        append_stats_response(out, 1, store->size(), store->appended(),
                              store->dropped(), /*replay_skipped=*/0);
        return;
      }
      std::vector<std::unique_lock<std::mutex>> locks;
      locks.reserve(shards_.size());
      for (auto& sh : shards_) locks.emplace_back(sh->mu);
      const Memory::Totals totals = service_.totals();
      append_stats_response(out, service_.series_count(), totals.retained,
                            totals.appended, totals.dropped,
                            service_.replay_skipped());
      const std::uint64_t lag = repl_lag();
      server_metrics().repl_lag->set(static_cast<double>(lag));
      append_stats_repl_suffix(
          out, is_primary_.load(std::memory_order_acquire) ? "primary"
                                                           : "follower",
          epoch_.load(std::memory_order_acquire), lag);
      return;
    }
    case RequestKind::kMetrics: {
      // Registry-only read: no shard locks, no read-your-writes fence — a
      // monitoring scrape must never contend with the measurement path.
      append_metrics_response(out, metrics_body());
      return;
    }
    case RequestKind::kReplHello:
      execute_repl_hello(req, out);
      return;
    case RequestKind::kReplBatch:
      execute_repl_batch(req, out);
      return;
    case RequestKind::kReplReset:
      execute_repl_reset(req, out);
      return;
    case RequestKind::kPromote:
      out += "OK ";
      append_unsigned(out, promote());
      return;
    case RequestKind::kPing:
    case RequestKind::kQuit:
      append_ok(out);
      return;
  }
  append_error(out, "unhandled request");
}

void NwsServer::process_line(std::string_view line, Request& req,
                             std::string& out, bool& close_after,
                             const Task* task) {
  ++requests_;
  ServerMetrics& m = server_metrics();
  // Latency is sampled 1-in-64: per-verb request counters stay exact, but
  // the two clock reads bounding a timing are paid only on sampled
  // requests — on a ~0.5us in-process request the clock alone busts the
  // <2% overhead budget DESIGN.md §9 sets (measured by bench/micro_obs).
  // The tick lives in obs::latency_sample_tick(): one thread-local counter
  // per worker, never a shared cache line (bench/micro_obs measures the
  // shared-atomic alternative for contrast).
  const bool counted = obs::metrics_enabled();
  const bool timed = counted && obs::latency_sample_tick();
  // A slow-request threshold also needs the clock: every request is timed
  // while NWSCPU_SLOW_MS is set, but only offenders emit a line (and only
  // sampled timings feed the histogram, keeping its cost model intact).
  const bool slow_watch = obs::slow_log_enabled();
  const std::uint64_t t0 = (timed || slow_watch) ? obs::now_ns() : 0;
  // A binary task's `line` is a frame payload (op + body); the framing
  // already resynchronized the stream, so a bad payload is answered like
  // a bad text line and the connection lives on.  A traced frame carries
  // its 17-byte context block ahead of the op byte.
  const bool parsed = (task != nullptr && task->binary)
                          ? parse_binary_request(line, task->traced, req)
                          : parse_request_into(line, req);
  if (!parsed) {
    m.malformed->inc();
    append_error(out, "malformed request");
    return;
  }
  const std::uint64_t parse_ns = t0 != 0 ? obs::now_ns() - t0 : 0;
  if (req.kind == RequestKind::kQuit) close_after = true;
  if (task != nullptr &&
      (req.kind == RequestKind::kSeries ||
       (req.kind == RequestKind::kStats && req.series.empty()))) {
    // Read-your-writes barrier: a cross-shard read must observe every
    // earlier request pipelined on the same connection, or its response
    // would vary with the shard count.  Earlier slots never queue behind
    // this task (dispatch order is queue order per shard), so waiting for
    // our slot to be next to flush cannot deadlock; closing/dead unblocks
    // a torn-down connection (its response is dropped unsent anyway).
    m.fence_waits->inc();
    const obs::ScopedTimer fence_timer(*m.fence_wait_seconds);
    std::unique_lock lock(task->conn->mu);
    task->conn->cv.wait(lock, [&] {
      return task->conn->flush_slot == task->slot || task->conn->closing ||
             task->conn->dead;
    });
  }
  {
    // A wire trace context becomes the worker's ambient context for the
    // apply: the server.apply span (and everything nested under it, e.g.
    // repl.apply on a follower) parents to the sender's span.
    const obs::TraceContext wire_ctx{req.trace_id, req.span_id,
                                     req.trace_sampled};
    const obs::ScopedTraceContext scope(wire_ctx.active()
                                            ? wire_ctx
                                            : obs::current_trace_context());
    const obs::TraceSpan span("server.apply");
    execute_request(req, out);
  }
  const std::uint64_t total_ns = t0 != 0 ? obs::now_ns() - t0 : 0;
  if (counted) {
    const auto v = static_cast<std::size_t>(req.kind);
    m.requests[v]->inc();
    if (timed) {
      m.latency[v]->record(total_ns,
                           req.trace_sampled ? req.trace_id : 0);
    }
  }
  if (slow_watch &&
      total_ns >= std::uint64_t{obs::slow_log_ms()} * 1'000'000u) {
    const bool shardable = req.kind == RequestKind::kPut ||
                           req.kind == RequestKind::kPutSeq ||
                           req.kind == RequestKind::kPutBatch ||
                           req.kind == RequestKind::kForecast ||
                           req.kind == RequestKind::kValues;
    obs::slow_log(
        "server",
        "trace=%016llx verb=%s shard=%lld total_us=%llu parse_us=%llu "
        "apply_us=%llu",
        static_cast<unsigned long long>(req.trace_id), verb_label(req.kind),
        shardable ? static_cast<long long>(service_.shard_of(req.series)) : -1,
        static_cast<unsigned long long>(total_ns / 1000),
        static_cast<unsigned long long>(parse_ns / 1000),
        static_cast<unsigned long long>((total_ns - parse_ns) / 1000));
  }
}

std::string NwsServer::metrics_body() const {
  ServerMetrics& m = server_metrics();
  m.connections->set(static_cast<double>(connections_.load()));
  m.series->set(
      static_cast<double>(total_series_.load(std::memory_order_relaxed)));
  std::string body;
  body.reserve(4096);
  obs::registry().render_prometheus(body);
  return body;
}

std::string NwsServer::handle_line(std::string_view line) {
  Request req;
  std::string out;
  bool close_after = false;
  process_line(line, req, out, close_after, nullptr);
  return out;
}

// ---------------------------------------------------------------------------
// Transport

std::uint16_t NwsServer::start(std::uint16_t port) {
  if (running_.load()) return 0;
  const std::size_t nd = resolve_dispatchers(cfg_);
  listen_backlog_ = resolve_listen_backlog(cfg_);

  const auto abort_start = [&] {
    for (const int fd : listen_fds_) ::close(fd);
    listen_fds_.clear();
    dispatchers_.clear();
    return std::uint16_t{0};
  };

  // Listener topology: one SO_REUSEPORT shard per dispatcher when the
  // platform + config allow it (the kernel then spreads accepts across
  // the dispatchers' queues); otherwise one shared listener every
  // dispatcher polls behind accept_mu_.  The backlog must absorb a
  // fleet-scale connection stampede (the 100k-connection bench opens
  // sockets far faster than one accept per event-loop turn can drain).
  std::uint16_t bound = port;
  shared_listener_ = true;
  if (nd > 1 && resolve_reuseport(cfg_)) {
    const int first = open_listener(&bound, listen_backlog_, true);
    if (first >= 0) {
      listen_fds_.push_back(first);
      while (listen_fds_.size() < nd) {
        std::uint16_t p = bound;  // later shards bind the resolved port
        const int fd = open_listener(&p, listen_backlog_, true);
        if (fd < 0) break;
        listen_fds_.push_back(fd);
      }
      if (listen_fds_.size() == nd) {
        shared_listener_ = false;
      } else {
        // Partial shard set (kernel refused a later bind): fall back to
        // the shared-listener shape rather than skew the accept load.
        for (const int fd : listen_fds_) ::close(fd);
        listen_fds_.clear();
        bound = port;
      }
    }
  }
  if (listen_fds_.empty()) {
    const int fd = open_listener(&bound, listen_backlog_, false);
    if (fd < 0) return abort_start();
    listen_fds_.push_back(fd);
  }

  dispatchers_.reserve(nd);
  obs::Registry& reg = obs::registry();
  for (std::size_t i = 0; i < nd; ++i) {
    auto d = std::make_unique<Dispatcher>();
    d->index = i;
    d->listen_fd = shared_listener_ ? listen_fds_[0] : listen_fds_[i];
    if (!d->waker.open()) return abort_start();
    const std::string label = "{dispatcher=\"" + std::to_string(i) + "\"}";
    d->accepts = &reg.counter("nws_server_dispatcher_accepts_total" + label,
                              "Connections accepted, per dispatcher");
    d->conns_gauge =
        &reg.gauge("nws_server_dispatcher_connections" + label,
                   "Connections owned, per dispatcher");
    dispatchers_.push_back(std::move(d));
  }

  port_ = bound;
  running_.store(true);
  workers_stop_.store(false);
  workers_.reserve(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    workers_.emplace_back(&NwsServer::worker_loop, this, k);
  }
  for (auto& d : dispatchers_) {
    Dispatcher* dp = d.get();
#ifdef __linux__
    d->thread = std::thread([this, dp] {
      backend_ == NetBackend::kEpoll ? serve_epoll(*dp) : serve_poll(*dp);
    });
#else
    d->thread = std::thread([this, dp] { serve_poll(*dp); });
#endif
  }
  if (repl_enabled_) {
    note_repl_activity();
    {
      const std::scoped_lock admin(repl_admin_mu_);
      start_replication();
    }
    if (!is_primary_.load(std::memory_order_acquire) && cfg_.failover_ms > 0) {
      failover_thread_ = std::thread(&NwsServer::failover_monitor_loop, this);
    }
  }

  // Build/topology identity gauge: the constant-1 Prometheus idiom — the
  // labels ARE the payload (version, sha, backend, shape).
  reg.gauge("nws_build_info{version=\"" NWSCPU_VERSION "\",sha=\"" NWSCPU_GIT_SHA
                "\",net=\"" +
                std::string(backend_ == NetBackend::kEpoll ? "epoll" : "poll") +
                "\",dispatchers=\"" + std::to_string(nd) + "\",shards=\"" +
                std::to_string(shards_.size()) + "\"}",
            "Build and topology info (value is always 1; labels carry it)")
      .set(1.0);

  // HTTP observability plane (opt-in): /metrics /healthz /tracez /statusz
  // on a side port, served by one exporter thread off the EventLoop seam.
  const int obs_port = resolve_obs_port(cfg_);
  if (obs_port >= 0) {
    obs::HttpExporterConfig ec;
    ec.port = static_cast<std::uint16_t>(obs_port);
    ec.backend = backend_;
    ec.metrics = [this] { return metrics_body(); };
    ec.health = [this](std::string& body) {
      bool ok = false;
      body = healthz_body(ok);
      return ok;
    };
    ec.statusz = [this] { return statusz_body(); };
    exporter_ = std::make_unique<obs::HttpExporter>(std::move(ec));
    obs_port_ = exporter_->start();
    if (obs_port_ == 0) {
      obs::log_error("server", "obs HTTP plane failed to bind port %d",
                     obs_port);
      exporter_.reset();
    } else {
      obs::log_info("server", "obs HTTP plane on 127.0.0.1:%u",
                    static_cast<unsigned>(obs_port_));
    }
  }
  return port_;
}

std::string NwsServer::healthz_body(bool& ok) const {
  const bool primary = is_primary_.load(std::memory_order_acquire);
  const std::uint64_t lag = repl_lag();
  std::size_t max_queue = 0;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const std::scoped_lock qlock(shards_[k]->qmu);
    max_queue = std::max(max_queue, shards_[k]->queue.size());
  }
  // Healthy = serving, and (as a follower) we know who the primary is —
  // a follower that never heard a primary cannot answer redirects, which
  // a load balancer should treat as not-ready.
  const std::string hint = primary_hint();
  ok = running_.load() && (primary || !repl_enabled_ || hint != "-");
  std::string out;
  out += "status: ";
  out += ok ? "ok" : "unavailable";
  out += "\nrole: ";
  out += primary ? "primary" : "follower";
  out += "\nepoch: ";
  append_unsigned(out, epoch_.load(std::memory_order_acquire));
  out += "\nrepl_lag_records: ";
  append_unsigned(out, lag);
  out += "\nmax_shard_queue_depth: ";
  append_unsigned(out, max_queue);
  out += "\nprimary_hint: ";
  out += hint;
  out += '\n';
  return out;
}

std::string NwsServer::statusz_body() const {
  std::string out;
  out += "nwscpu " NWSCPU_VERSION " (" NWSCPU_GIT_SHA ")\n";
  out += "net_backend: ";
  out += backend_ == NetBackend::kEpoll ? "epoll" : "poll";
  out += "\ndispatchers: ";
  append_unsigned(out, dispatcher_count());
  out += "\naccept_sharded: ";
  out += accept_sharded() ? "true" : "false";
  out += "\nshards: ";
  append_unsigned(out, shard_count());
  out += "\nport: ";
  append_unsigned(out, port_);
  out += "\nobs_port: ";
  append_unsigned(out, obs_port_);
  out += "\nrole: ";
  out += is_primary_.load(std::memory_order_acquire) ? "primary" : "follower";
  out += "\nepoch: ";
  append_unsigned(out, epoch_.load(std::memory_order_acquire));
  out += "\nrequests_served: ";
  append_unsigned(out, requests_.load());
  out += "\nconnections: ";
  append_unsigned(out, connections_.load());
  out += "\ntrace_sample_every: ";
  append_unsigned(out, obs::trace_sample_every());
  out += "\ntrace_ring_capacity: ";
  append_unsigned(out, obs::trace_ring_capacity());
  out += "\nslow_log_ms: ";
  append_unsigned(out, obs::slow_log_ms());
  out += "\nmetrics_enabled: ";
  out += obs::metrics_enabled() ? "true" : "false";
  out += "\nmax_line_bytes: ";
  append_unsigned(out, cfg_.max_line_bytes);
  out += "\nmemory_capacity: ";
  append_unsigned(out, cfg_.memory_capacity);
  out += '\n';
  return out;
}

void NwsServer::stop() {
  const bool was_running = running_.exchange(false);
  // The exporter thread first: its callbacks read server state that the
  // teardown below starts dismantling.
  if (exporter_) {
    exporter_->stop();
    exporter_.reset();
  }
  obs_port_ = 0;
  // Replication teardown first: the failover monitor exits on !running_,
  // and sender threads may exist even without a transport (a promote via
  // handle_line starts them).
  if (failover_thread_.joinable()) failover_thread_.join();
  {
    const std::scoped_lock admin(repl_admin_mu_);
    stop_replication();
  }
  if (!was_running) {
    service_.sync();
    return;
  }
  // Each event loop may be blocked indefinitely (no fixed timeout any
  // more): a wakeup write plus shutting the listeners down kicks every
  // dispatcher out of a quiet wait immediately.
  for (const int fd : listen_fds_) ::shutdown(fd, SHUT_RDWR);
  for (auto& d : dispatchers_) d->waker.wake();
  for (auto& d : dispatchers_) {
    if (d->thread.joinable()) d->thread.join();
  }
  // With the dispatchers gone no new tasks are produced; workers drain
  // their queues (completions to closed connections are no-ops), commit
  // their journal segments and exit.
  workers_stop_.store(true);
  for (auto& sh : shards_) {
    const std::scoped_lock lock(sh->qmu);
    sh->qcv.notify_all();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  for (const int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
  for (auto& d : dispatchers_) {
    d->waker.close_fds();
    const std::scoped_lock lock(d->attention_mu);
    d->attention.clear();
  }
  dispatchers_.clear();
  port_ = 0;
  service_.sync();
}

std::size_t NwsServer::dispatcher_count() const noexcept {
  return !dispatchers_.empty() ? dispatchers_.size()
                               : resolve_dispatchers(cfg_);
}

void NwsServer::request_attention(const ConnPtr& conn) {
  // Workers joined after the dispatchers can still complete tasks for
  // torn-down connections; the list is gone with the dispatchers, and the
  // completion itself already did everything that matters.
  if (conn->dispatcher >= dispatchers_.size()) return;
  Dispatcher& d = *dispatchers_[conn->dispatcher];
  {
    const std::scoped_lock lock(d.attention_mu);
    d.attention.push_back(conn);
  }
  server_metrics().wakeups->inc();
  d.waker.wake();
}

void NwsServer::complete(const ConnPtr& conn, std::size_t slot,
                         std::string&& text, bool close_after, bool binary) {
  const obs::TraceSpan span("server.respond");
  bool want_attention = false;
  {
    const std::scoped_lock lock(conn->mu);
    conn->pending.emplace(slot, Pending{std::move(text), close_after, binary});
    // Flush the contiguous done-prefix.  Later slots stay parked; once
    // closing/dead is set they are dropped unsent (matching the old
    // serial loop, which stopped processing after a teardown).
    std::string wire;  // the response's wire image, per its framing
    while (!conn->closing && !conn->dead) {
      const auto it = conn->pending.find(conn->flush_slot);
      if (it == conn->pending.end()) break;
      Pending p = std::move(it->second);
      conn->pending.erase(it);
      ++conn->flush_slot;

      // Frame first, then let the fault schedule mangle the wire image —
      // faults act on bytes-on-the-wire whatever the framing.
      wire.clear();
      if (p.binary) {
        append_binary_response(wire, p.text);
      } else {
        wire = std::move(p.text);
        wire += '\n';
      }
      const FaultAction fault = fault_check(FaultSite::kServerRespond);
      switch (fault.kind) {
        case FaultAction::Kind::kDelay:
          // A stalled server: this connection's responses hang, exactly
          // the pathology client timeouts must absorb.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(fault.delay_ms));
          conn->tx.push(std::move(wire));
          break;
        case FaultAction::Kind::kTruncate:
          // Half a response and then a dead connection, as if the server
          // crashed mid-write.
          wire.resize(wire.size() / 2);
          conn->tx.push(std::move(wire));
          conn->closing = true;
          break;
        case FaultAction::Kind::kGarbage:
          conn->tx.push("\x02\x7f!garbage\n");
          break;
        default:
          conn->tx.push(std::move(wire));
          break;
      }
      if (p.close_after) conn->closing = true;
    }
    // One vectored flush covers every response queued above (and any tail
    // an earlier flush left).  EAGAIN leaves the tail in tx and hands the
    // fd to the dispatcher to watch for writability — a worker must never
    // block on one slow peer.
    (void)flush_tx_locked(*conn);
    want_attention = conn->closing || conn->dead || !conn->tx.empty();
  }
  // flush_slot moved (or teardown latched): release any cross-shard read
  // fenced on this connection.
  conn->cv.notify_all();
  conn->inflight.fetch_sub(1, std::memory_order_release);
  if (want_attention) request_attention(conn);
}

bool NwsServer::flush_tx(const ConnPtr& conn) {
  const std::scoped_lock lock(conn->mu);
  return flush_tx_locked(*conn);
}

bool NwsServer::flush_tx_locked(Connection& conn) {
  if (!conn.tx.empty() && !conn.dead && conn.fd >= 0 &&
      conn.tx.flush(conn.fd) == TxQueue::FlushStatus::kClosed) {
    conn.dead = true;
  }
  return conn.tx.empty();
}

void NwsServer::commit_shard(std::size_t k) {
  const obs::TraceSpan span("server.journal_commit");
  const std::scoped_lock lock(shards_[k]->mu);
  service_.commit(k);
}

void NwsServer::worker_loop(std::size_t k) {
  ShardState& sh = *shards_[k];
  Request req;       // capacity reused across requests
  std::string resp;  // likewise
  for (;;) {
    Task task;
    bool have_task = false;
    {
      std::unique_lock qlock(sh.qmu);
      for (;;) {
        if (!sh.queue.empty()) {
          task = std::move(sh.queue.front());
          sh.queue.pop_front();
          shard_queue_depth_[k]->set(static_cast<double>(sh.queue.size()));
          have_task = true;
          break;
        }
        if (workers_stop_.load()) break;
        // Queue drained: group-commit buffered journal records before
        // sleeping, so a lull never leaves appends sitting in core.
        qlock.unlock();
        commit_shard(k);
        qlock.lock();
        if (!sh.queue.empty() || workers_stop_.load()) continue;
        if (cfg_.journal_flush_ms > 0) {
          sh.qcv.wait_for(qlock,
                          std::chrono::milliseconds(cfg_.journal_flush_ms));
        } else {
          sh.qcv.wait(qlock);
        }
      }
    }
    if (!have_task) break;
    resp.clear();
    bool close_after = false;
    process_line(task.line, req, resp, close_after, &task);
    complete(task.conn, task.slot, std::move(resp), close_after, task.binary);
    resp = std::string();  // moved-from: re-arm the reusable buffer
  }
  commit_shard(k);
}

std::size_t NwsServer::route_line(std::string_view line) const {
  // Verb + series tokens only; malformed input routes anywhere (worker 0)
  // and the worker's authoritative parse answers ERR.
  const auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\r';
  };
  std::size_t i = 0;
  while (i < line.size() && is_ws(line[i])) ++i;
  const std::size_t verb_begin = i;
  while (i < line.size() && !is_ws(line[i])) ++i;
  const std::string_view verb = line.substr(verb_begin, i - verb_begin);
  if (verb == "REPL") {
    // "REPL BATCH <epoch> <shard> ..." routes to its target shard so one
    // shard's stream stays FIFO; HELLO (and malformed) go to worker 0.
    const auto token = [&]() -> std::string_view {
      while (i < line.size() && is_ws(line[i])) ++i;
      const std::size_t begin = i;
      while (i < line.size() && !is_ws(line[i])) ++i;
      return line.substr(begin, i - begin);
    };
    const std::string_view sub = token();
    if (sub != "BATCH" && sub != "RESET") return 0;
    (void)token();  // epoch
    const std::string_view shard_text = token();
    std::uint64_t shard = 0;
    for (const char c : shard_text) {
      if (c < '0' || c > '9') return 0;
      shard = shard * 10 + static_cast<std::uint64_t>(c - '0');
      if (shard > 0xFFFFFFFFu) return 0;
    }
    return shard_text.empty() ? 0 : shard % service_.shard_count();
  }
  if (verb != "PUT" && verb != "PUTS" && verb != "PUTB" &&
      verb != "FORECAST" && verb != "VALUES" && verb != "STATS") {
    return 0;  // SERIES / PING / QUIT / PROMOTE / unknown: any queue works
  }
  while (i < line.size() && is_ws(line[i])) ++i;
  const std::size_t series_begin = i;
  while (i < line.size() && !is_ws(line[i])) ++i;
  const std::string_view series = line.substr(series_begin, i - series_begin);
  if (series.empty()) return 0;
  return service_.shard_of(series);
}

std::size_t NwsServer::route_frame(std::string_view payload) const {
  // Mirror of route_line over a frame payload: peek the op and the series
  // length-prefixed at offset 1.  Malformed payloads route to worker 0,
  // whose authoritative parse answers ERR.
  if (payload.empty()) return 0;
  const auto op = static_cast<std::uint8_t>(payload[0]);
  switch (op) {
    case kBinOpPut:
    case kBinOpPutSeq:
    case kBinOpPutBatch:
    case kBinOpForecast: {
      if (payload.size() < 3) return 0;
      const auto lo = static_cast<unsigned char>(payload[1]);
      const auto hi = static_cast<unsigned char>(payload[2]);
      const std::size_t len =
          static_cast<std::size_t>(lo) | (static_cast<std::size_t>(hi) << 8);
      if (len == 0 || payload.size() < 3 + len) return 0;
      return service_.shard_of(payload.substr(3, len));
    }
    case kBinOpReplBatch:
    case kBinOpReplReset: {
      // u8 op, u64 epoch, u32 shard: the stream target sits at offset 9.
      if (payload.size() < 13) return 0;
      std::size_t shard = 0;
      for (std::size_t b = 0; b < 4; ++b) {
        shard |= static_cast<std::size_t>(
                     static_cast<unsigned char>(payload[9 + b]))
                 << (8 * b);
      }
      return shard % service_.shard_count();
    }
    case kBinOpText:
      return route_line(payload.substr(1));
    default:
      return 0;  // METRICS / PING / QUIT / REPL HELLO: any queue works
  }
}

bool NwsServer::handle_hello(const ConnPtr& conn, std::string_view line) {
  // HELLO is transport negotiation, not a service verb: the dispatcher
  // owns the connection's framing state, so it answers in place (through
  // the slot machinery, preserving pipelined response order) and never
  // queues it on a shard.
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ' ||
                           line.back() == '\t')) {
    line.remove_suffix(1);
  }
  if (line != "HELLO" && line.rfind("HELLO ", 0) != 0) return false;
  std::string_view arg = line.size() > 5 ? line.substr(6) : std::string_view{};
  while (!arg.empty() && (arg.front() == ' ' || arg.front() == '\t')) {
    arg.remove_prefix(1);
  }
  std::string reply;
  bool upgrade = false;
  if (arg.empty() || arg == "TEXT") {
    reply.assign(kHelloTextAck);
  } else if (arg == "BIN") {
    reply.assign(kHelloBinAck);
    upgrade = true;
    server_metrics().bin_upgrades->inc();
  } else if (arg == "TRC") {
    // Trace-context arm: the server parses TRC prefixes (and trace-flagged
    // frames) unconditionally, so the ack only tells a new client an old
    // server is not on the other end.
    reply.assign(kHelloTrcAck);
  } else if (arg == "BIN TRC") {
    reply.assign(kHelloBinTrcAck);
    upgrade = true;
    server_metrics().bin_upgrades->inc();
  } else {
    reply = format_error("unknown framing");
  }
  // The ack is the connection's last text-mode response; responses to
  // requests dispatched after it are framed binary (per-task flag).
  conn->inflight.fetch_add(1, std::memory_order_relaxed);
  complete(conn, conn->next_slot++, std::move(reply), /*close_after=*/false,
           /*binary=*/false);
  if (upgrade) conn->binary = true;
  return true;
}

void NwsServer::dispatch_lines(const ConnPtr& conn) {
  const obs::TraceSpan span("server.dispatch");
  std::size_t newline;
  while (!conn->stop_dispatch && !conn->binary &&
         (newline = conn->rx.find('\n')) != std::string::npos) {
    if (newline > cfg_.max_line_bytes) {
      conn->rx.clear();
      conn->stop_dispatch = true;
      ++dropped_;
      server_metrics().conns_dropped->inc();
      conn->inflight.fetch_add(1, std::memory_order_relaxed);
      complete(conn, conn->next_slot++, format_error("line too long"),
               /*close_after=*/true, /*binary=*/false);
      return;
    }
    Task task;
    task.conn = conn;
    task.line.assign(conn->rx, 0, newline);
    conn->rx.erase(0, newline + 1);
    if (handle_hello(conn, task.line)) continue;
    task.slot = conn->next_slot++;
    // The dispatcher's cheap scans must look past a "TRC <ctx> " prefix:
    // a traced line routes (and QUIT-stops) on its real verb.  A bad
    // prefix routes anywhere — the worker's authoritative parse answers.
    std::string_view eff(task.line);
    {
      std::string_view rest;
      std::uint64_t trace = 0;
      std::uint64_t span_id = 0;
      bool sampled = false;
      if (parse_trace_prefix(eff, rest, trace, span_id, sampled) ==
          TracePrefixStatus::kOk) {
        eff = rest;
        while (!eff.empty() &&
               (eff.front() == ' ' || eff.front() == '\t')) {
          eff.remove_prefix(1);
        }
      }
    }
    // Stop feeding lines past a QUIT: the connection closes once its
    // response flushes, matching the old serial loop.
    if (eff.compare(0, 4, "QUIT") == 0 &&
        (eff.size() == 4 || eff[4] == ' ' || eff[4] == '\t' ||
         eff[4] == '\r')) {
      conn->stop_dispatch = true;
    }
    const std::size_t k = route_line(eff);
    conn->inflight.fetch_add(1, std::memory_order_relaxed);
    ShardState& sh = *shards_[k];
    {
      const std::scoped_lock qlock(sh.qmu);
      sh.queue.push_back(std::move(task));
      shard_queue_depth_[k]->set(static_cast<double>(sh.queue.size()));
    }
    sh.qcv.notify_one();
  }
  // A peer may also stream an endless line with no newline at all; cap the
  // buffered prefix too.
  if (!conn->stop_dispatch && !conn->binary &&
      conn->rx.size() > cfg_.max_line_bytes) {
    conn->rx.clear();
    conn->stop_dispatch = true;
    ++dropped_;
    server_metrics().conns_dropped->inc();
    conn->inflight.fetch_add(1, std::memory_order_relaxed);
    complete(conn, conn->next_slot++, format_error("line too long"),
             /*close_after=*/true, /*binary=*/false);
  }
}

void NwsServer::dispatch_frames(const ConnPtr& conn) {
  const obs::TraceSpan span("server.dispatch");
  while (!conn->stop_dispatch) {
    std::size_t frame_end = 0;
    std::string_view payload;
    bool traced = false;
    const BinFrameStatus status = extract_binary_frame(
        conn->rx, cfg_.max_line_bytes, frame_end, payload, traced);
    if (status == BinFrameStatus::kNeedMore) return;
    if (status == BinFrameStatus::kError) {
      // Zero or absurd length prefix — including a text verb sent down a
      // binary connection.  Framing cannot resynchronize: answer and
      // close, exactly the text path's line-too-long policy.
      obs::log_debug("server", "bad binary frame; dropping connection");
      conn->rx.clear();
      conn->stop_dispatch = true;
      ++dropped_;
      server_metrics().conns_dropped->inc();
      conn->inflight.fetch_add(1, std::memory_order_relaxed);
      complete(conn, conn->next_slot++, format_error("bad frame"),
               /*close_after=*/true, /*binary=*/true);
      return;
    }
    Task task;
    task.conn = conn;
    task.binary = true;
    task.traced = traced;
    task.line.assign(payload);
    conn->rx.erase(0, frame_end);
    task.slot = conn->next_slot++;
    // The op byte sits after the 17-byte context block on traced frames;
    // the extractor guaranteed at least one byte beyond it.
    const std::string_view body =
        traced ? std::string_view(task.line).substr(kBinTraceCtxBytes)
               : std::string_view(task.line);
    if (!body.empty() && static_cast<std::uint8_t>(body[0]) == kBinOpQuit) {
      conn->stop_dispatch = true;
    }
    const std::size_t k = route_frame(body);
    conn->inflight.fetch_add(1, std::memory_order_relaxed);
    ShardState& sh = *shards_[k];
    {
      const std::scoped_lock qlock(sh.qmu);
      sh.queue.push_back(std::move(task));
      shard_queue_depth_[k]->set(static_cast<double>(sh.queue.size()));
    }
    sh.qcv.notify_one();
  }
}

void NwsServer::dispatch_input(const ConnPtr& conn) {
  // A HELLO BIN line flips conn->binary mid-buffer: finish the text lines
  // before it, then treat the remainder as frames.
  if (!conn->binary) dispatch_lines(conn);
  if (conn->binary) dispatch_frames(conn);
}

int NwsServer::wait_timeout_ms() const noexcept {
  // Satellite of the epoll PR: no fixed 100 ms busy-wake.  An idle server
  // blocks indefinitely — workers wake the dispatcher through the eventfd
  // when a connection needs reaping or writability watching.  Only a
  // configured idle timeout requires a periodic expiry tick.
  if (cfg_.idle_timeout_ms <= 0) return -1;
  return std::clamp(cfg_.idle_timeout_ms / 2, 10, 100);
}

void NwsServer::teardown(const ConnPtr& conn) {
  {
    const std::scoped_lock lock(conn->mu);
    conn->dead = true;
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  conn->cv.notify_all();  // unfence any cross-shard read parked on us
  // fetch_sub, not store: several dispatchers retire connections
  // concurrently.
  const std::size_t live =
      connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  server_metrics().connections->set(static_cast<double>(live));
}

std::size_t NwsServer::accept_ready(Dispatcher& d, std::vector<ConnPtr>& out) {
  const obs::TraceSpan span("server.accept");
  ServerMetrics& m = server_metrics();
#ifdef __linux__
  // Accept-queue pressure probe: tcpi_unacked on a listening socket is the
  // current accept-queue occupancy.  At/past the backlog the kernel is
  // dropping or deferring SYNs — surface it instead of hiding the stall.
  {
    tcp_info info{};
    socklen_t len = sizeof info;
    if (::getsockopt(d.listen_fd, IPPROTO_TCP, TCP_INFO, &info, &len) == 0 &&
        info.tcpi_unacked >= static_cast<std::uint32_t>(listen_backlog_)) {
      m.accept_overflows->inc();
    }
  }
#endif
  // A shared listener is level-triggered readable on every dispatcher at
  // once; the lock serializes the drain (losers see EAGAIN immediately).
  std::unique_lock<std::mutex> accept_lock;
  if (shared_listener_ && dispatchers_.size() > 1) {
    accept_lock = std::unique_lock(accept_mu_);
  }
  std::size_t accepted = 0;
  for (;;) {
#ifdef __linux__
    // accept4 skips the two-fcntl nonblocking dance per connection — at
    // stampede scale the saved syscalls are most of the accept cost.
    const int fd = ::accept4(d.listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or a transient error: retry on the next event
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
#else
    const int fd = ::accept(d.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or a transient error: retry on the next event
    }
    configure_conn_socket(fd);
#endif
    m.accepts->inc();
    d.accepts->inc();
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->dispatcher = d.index;
    out.push_back(std::move(conn));
    ++accepted;
  }
  return accepted;
}

bool NwsServer::read_ready(const ConnPtr& conn) {
  const obs::TraceSpan span("server.read");
  char chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n == 0) return false;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
    if (fault_check(FaultSite::kServerRead).kind ==
        FaultAction::Kind::kReset) {
      // The network "ate" the connection: drop it with the bytes.
      return false;
    }
    conn->rx.append(chunk, static_cast<std::size_t>(n));
    // Bound rx growth against a peer that streams faster than one event
    // per buffer: hand complete requests to the shards mid-read.
    if (conn->rx.size() >= 4 * sizeof chunk) dispatch_input(conn);
    // A short read emptied the socket buffer at that instant; data landing
    // afterwards re-arms the (edge-triggered) readiness, so stopping here
    // is safe and saves the EAGAIN round.
    if (static_cast<std::size_t>(n) < sizeof chunk) return true;
  }
}

void NwsServer::serve_poll(Dispatcher& d) {
  ServerMetrics& m = server_metrics();
  std::vector<ConnPtr> conns;
  std::vector<pollfd> fds;
  std::vector<ConnPtr> fresh;

  const auto drop = [&](std::size_t i) {
    const ConnPtr conn = conns[i];
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
    teardown(conn);
    d.conns_gauge->set(static_cast<double>(conns.size()));
  };

  while (running_.load()) {
    fds.clear();
    fds.push_back({d.listen_fd, POLLIN, 0});
    fds.push_back({d.waker.rx(), POLLIN, 0});
    for (const ConnPtr& c : conns) {
      short events = POLLIN;
      {
        const std::scoped_lock lock(c->mu);
        if (!c->tx.empty()) events |= POLLOUT;
      }
      fds.push_back({c->fd, events, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), wait_timeout_ms());
    m.event_waits_poll->inc();
    if (!running_.load()) break;
    const auto now = std::chrono::steady_clock::now();

    if (ready > 0) {
      if (fds[1].revents & POLLIN) d.waker.drain();
      // Client traffic first: only the connections present when the pollfd
      // list was built have a valid fds[i + 2] slot, so the accept below
      // must not grow conns before this walk.  Iterate backwards so drops
      // do not shift unvisited entries.
      for (std::size_t i = conns.size(); i-- > 0;) {
        const short revents = fds[i + 2].revents;
        if (revents == 0) continue;
        if (revents & (POLLERR | POLLNVAL)) {
          drop(i);
          continue;
        }
        if (revents & POLLOUT) (void)flush_tx(conns[i]);
        if (revents & (POLLIN | POLLHUP)) {
          if (!read_ready(conns[i])) {
            drop(i);
            continue;
          }
          conns[i]->last_activity = now;
          dispatch_input(conns[i]);
        }
      }

      // New connections.
      if (fds[0].revents & (POLLIN | POLLERR | POLLHUP)) {
        fresh.clear();
        const std::size_t got = accept_ready(d, fresh);
        for (ConnPtr& c : fresh) {
          c->last_activity = now;
          conns.push_back(std::move(c));
        }
        if (got > 0) {
          const std::size_t live =
              connections_.fetch_add(got, std::memory_order_acq_rel) + got;
          m.connections->set(static_cast<double>(live));
          d.conns_gauge->set(static_cast<double>(conns.size()));
        }
      }
    }

    // The attention list drives the epoll backend; this loop recomputes
    // write interest and reaps by scanning every iteration, so just clear
    // it (the wakeup write already did its job).
    {
      const std::scoped_lock lock(d.attention_mu);
      d.attention.clear();
    }

    // Reap connections whose last response went out (QUIT, truncate fault)
    // or whose peer died mid-send.  closing waits for tx to drain: the
    // QUIT ack must reach the wire before the socket closes.
    for (std::size_t i = conns.size(); i-- > 0;) {
      bool reap;
      {
        const std::scoped_lock lock(conns[i]->mu);
        reap = conns[i]->dead ||
               (conns[i]->closing && conns[i]->tx.empty());
      }
      if (reap) drop(i);
    }

    // Idle expiry: long-lived infrastructure must not let dead sensors pin
    // sockets forever.  A connection with requests still in flight is not
    // idle, whatever its socket looks like.
    if (cfg_.idle_timeout_ms > 0) {
      const auto limit = std::chrono::milliseconds(cfg_.idle_timeout_ms);
      for (std::size_t i = conns.size(); i-- > 0;) {
        if (conns[i]->inflight.load(std::memory_order_acquire) == 0 &&
            now - conns[i]->last_activity > limit) {
          drop(i);
          ++dropped_;
          m.conns_dropped->inc();
        }
      }
    }
  }

  for (std::size_t i = conns.size(); i-- > 0;) {
    drop(i);
  }
}

#ifdef __linux__

void NwsServer::serve_epoll(Dispatcher& d) {
  ServerMetrics& m = server_metrics();
  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) {
    serve_poll(d);  // cannot happen on a sane kernel; degrade gracefully
    return;
  }

  // The epoll registry holds raw Connection pointers; this map keeps the
  // owning shared_ptrs alive and is the O(1) pointer -> connection lookup
  // (the poll backend's O(n) pollfd rebuild is exactly what this loop
  // exists to avoid).
  std::unordered_map<Connection*, ConnPtr> conns;

  const auto ctl = [ep](int op, int fd, void* ptr, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.ptr = ptr;
    (void)::epoll_ctl(ep, op, fd, &ev);
  };
  constexpr std::uint32_t kConnEvents = EPOLLIN | EPOLLRDHUP | EPOLLET;
  // Sentinels: nullptr = listener, this = wakeup fd.  A shared listener is
  // registered in every dispatcher's epoll set (level-triggered: whoever
  // wins accept_mu_ drains it, the rest see EAGAIN).
  ctl(EPOLL_CTL_ADD, d.listen_fd, nullptr, EPOLLIN);
  ctl(EPOLL_CTL_ADD, d.waker.rx(), this, EPOLLIN);

  const auto drop = [&](Connection* key) {
    const auto it = conns.find(key);
    if (it == conns.end()) return;
    const ConnPtr conn = it->second;  // keep alive past the erase
    conns.erase(it);
    teardown(conn);  // close() deregisters the fd from ep
    d.conns_gauge->set(static_cast<double>(conns.size()));
  };

  std::array<epoll_event, 512> events{};
  std::vector<ConnPtr> fresh;
  std::vector<ConnPtr> flagged;
  while (running_.load()) {
    const int n = ::epoll_wait(ep, events.data(),
                               static_cast<int>(events.size()),
                               wait_timeout_ms());
    m.event_waits_epoll->inc();
    if (!running_.load()) break;
    const auto now = std::chrono::steady_clock::now();

    bool accept_pending = false;
    for (int i = 0; i < n; ++i) {
      void* ptr = events[i].data.ptr;
      const std::uint32_t ev = events[i].events;
      if (ptr == nullptr) {
        accept_pending = true;  // client traffic first, accepts after
        continue;
      }
      if (ptr == this) {
        d.waker.drain();
        continue;
      }
      auto* key = static_cast<Connection*>(ptr);
      const auto it = conns.find(key);
      if (it == conns.end()) continue;  // dropped earlier in this batch
      const ConnPtr& conn = it->second;
      if (ev & EPOLLERR) {
        drop(key);
        continue;
      }
      if (ev & EPOLLOUT) {
        if (flush_tx(conn)) {
          // Drained: stop watching writability until a worker re-arms.
          if (conn->fd >= 0) ctl(EPOLL_CTL_MOD, conn->fd, key, kConnEvents);
        }
        bool want_drop;
        {
          const std::scoped_lock lock(conn->mu);
          want_drop = conn->dead || (conn->closing && conn->tx.empty());
        }
        if (want_drop) {
          drop(key);
          continue;
        }
      }
      if (ev & (EPOLLIN | EPOLLHUP | EPOLLRDHUP)) {
        if (!read_ready(conn)) {
          drop(key);
          continue;
        }
        conn->last_activity = now;
        dispatch_input(conn);
      }
    }

    if (accept_pending) {
      fresh.clear();
      const std::size_t got = accept_ready(d, fresh);
      for (ConnPtr& c : fresh) {
        c->last_activity = now;
        Connection* key = c.get();
        const int fd = c->fd;
        conns.emplace(key, std::move(c));
        ctl(EPOLL_CTL_ADD, fd, key, kConnEvents);
      }
      if (got > 0) {
        const std::size_t live =
            connections_.fetch_add(got, std::memory_order_acq_rel) + got;
        m.connections->set(static_cast<double>(live));
        d.conns_gauge->set(static_cast<double>(conns.size()));
      }
    }

    // Worker attention: reap finished/dead connections; arm writability
    // for tx a worker could not flush (the eventfd wakeup replaces any
    // periodic scan — O(flagged), not O(connections)).
    {
      const std::scoped_lock lock(d.attention_mu);
      flagged.swap(d.attention);
    }
    for (const ConnPtr& conn : flagged) {
      Connection* key = conn.get();
      if (conns.find(key) == conns.end()) continue;
      bool reap;
      bool want_out;
      {
        const std::scoped_lock lock(conn->mu);
        reap = conn->dead || (conn->closing && conn->tx.empty());
        want_out = !conn->tx.empty() && !conn->dead;
      }
      if (reap) {
        drop(key);
        continue;
      }
      if (want_out && conn->fd >= 0) {
        ctl(EPOLL_CTL_MOD, conn->fd, key, kConnEvents | EPOLLOUT);
      }
    }
    flagged.clear();

    // Idle expiry, only when configured (the wait then ticks periodically).
    if (cfg_.idle_timeout_ms > 0) {
      const auto limit = std::chrono::milliseconds(cfg_.idle_timeout_ms);
      for (auto it = conns.begin(); it != conns.end();) {
        const ConnPtr conn = it->second;
        ++it;
        if (conn->inflight.load(std::memory_order_acquire) == 0 &&
            now - conn->last_activity > limit) {
          drop(conn.get());
          ++dropped_;
          m.conns_dropped->inc();
        }
      }
    }
  }

  while (!conns.empty()) {
    drop(conns.begin()->first);
  }
  ::close(ep);
}

#else  // !__linux__

void NwsServer::serve_epoll(Dispatcher& d) { serve_poll(d); }

#endif

// ---------------------------------------------------------------------------
// Replication & failover (DESIGN.md §11)

void NwsServer::note_repl_activity() noexcept {
  last_repl_ms_.store(steady_ms(), std::memory_order_release);
}

std::string NwsServer::advertised_endpoint() const {
  if (!cfg_.advertise.empty()) return cfg_.advertise;
  if (port_ != 0) return "127.0.0.1:" + std::to_string(port_);
  return "-";
}

std::string NwsServer::primary_hint() const {
  const std::scoped_lock lock(hint_mu_);
  return primary_hint_.empty() ? "-" : primary_hint_;
}

std::uint64_t NwsServer::repl_lag() const noexcept {
  if (repl_end_ == nullptr) return 0;
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    total += repl_end_[k].load(std::memory_order_acquire);
  }
  const std::scoped_lock lock(repl_mu_);
  std::uint64_t lag = 0;
  for (const auto& link : links_) {
    std::uint64_t acked = 0;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      acked += link->acked[k].load(std::memory_order_acquire);
    }
    lag = std::max(lag, total - std::min(total, acked));
  }
  return lag;
}

void NwsServer::save_meta() {
  if (meta_path_.empty()) return;
  ReplMetaState state;
  state.epoch = epoch_.load(std::memory_order_acquire);
  const std::size_t n = shards_.size();
  state.watermarks.resize(n);
  std::uint64_t synced = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t k = 0; k < n; ++k) {
    state.watermarks[k] = repl_end_[k].load(std::memory_order_acquire);
    synced = std::min(synced, shard_synced_[k].load(std::memory_order_acquire));
  }
  state.synced_epoch = n != 0 ? synced : 0;
  if (!save_repl_meta(meta_path_, state)) {
    server_metrics().repl_meta_failures->inc();
    obs::log_error("repl", "cursor save failed: %s",
                   meta_path_.string().c_str());
  }
}

void NwsServer::demote(std::uint64_t seen_epoch) {
  store_max(max_seen_epoch_, seen_epoch);
  store_max(epoch_, seen_epoch);
  if (is_primary_.exchange(false, std::memory_order_acq_rel)) {
    server_metrics().role->set(0.0);
    obs::log_info("repl", "demoted after observing epoch %llu",
                  static_cast<unsigned long long>(seen_epoch));
  }
  // Senders notice !is_primary_ / the epoch change and wind down; they are
  // joined at the next promote()/stop() (demote runs ON a sender thread,
  // so it must not join here).
  repl_cv_.notify_all();
  ack_cv_.notify_all();
}

std::uint64_t NwsServer::promote() {
  const std::scoped_lock admin(repl_admin_mu_);
  if (is_primary_.load(std::memory_order_acquire)) {
    return epoch_.load(std::memory_order_acquire);
  }
  const obs::TraceSpan span("server.promote");
  stop_replication();  // join any senders left over from a past primacy
  const std::uint64_t e =
      std::max(epoch_.load(std::memory_order_acquire),
               max_seen_epoch_.load(std::memory_order_acquire)) +
      1;
  epoch_.store(e, std::memory_order_release);
  store_max(max_seen_epoch_, e);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const std::scoped_lock lock(shards_[k]->mu);
    if (shards_[k]->repl_log != nullptr) {
      // Adopt the applied watermark as the commit index: our log restarts
      // there and any follower behind it resyncs via snapshot.
      shards_[k]->repl_log->reset_base(
          repl_end_[k].load(std::memory_order_acquire));
    }
    shards_[k]->snap_active = false;
    shard_synced_[k].store(e, std::memory_order_release);
  }
  is_primary_.store(true, std::memory_order_release);
  ++promotions_;
  server_metrics().promotions->inc();
  server_metrics().role->set(1.0);
  obs::log_info("repl", "promoted to primary at epoch %llu",
                static_cast<unsigned long long>(e));
  save_meta();
  start_replication();
  return e;
}

void NwsServer::start_replication() {
  // Caller holds repl_admin_mu_.
  if (follower_endpoints_.empty() ||
      !is_primary_.load(std::memory_order_acquire)) {
    return;
  }
  repl_stop_.store(false, std::memory_order_release);
  {
    const std::scoped_lock lock(repl_mu_);
    for (const ReplEndpoint& ep : follower_endpoints_) {
      auto link = std::make_unique<FollowerLink>();
      link->endpoint = ep;
      link->acked =
          std::make_unique<std::atomic<std::uint64_t>[]>(shards_.size());
      for (std::size_t k = 0; k < shards_.size(); ++k) {
        link->acked[k].store(0, std::memory_order_relaxed);
      }
      links_.push_back(std::move(link));
    }
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    links_[i]->thread = std::thread(&NwsServer::repl_sender_loop, this, i);
  }
}

void NwsServer::stop_replication() {
  // Caller holds repl_admin_mu_.
  repl_stop_.store(true, std::memory_order_release);
  repl_cv_.notify_all();
  ack_cv_.notify_all();
  for (auto& link : links_) {
    if (link->thread.joinable()) link->thread.join();
  }
  {
    const std::scoped_lock lock(repl_mu_);
    links_.clear();
  }
  repl_stop_.store(false, std::memory_order_release);
}

bool NwsServer::wait_repl_acked(std::size_t k, std::uint64_t target) {
  std::unique_lock lock(repl_mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cfg_.repl_sync_timeout_ms);
  const auto done = [&] {
    if (repl_stop_.load(std::memory_order_acquire) ||
        !is_primary_.load(std::memory_order_acquire)) {
      return true;  // resolved below: stopping/demoted is NOT success
    }
    for (const auto& link : links_) {
      if (link->acked[k].load(std::memory_order_acquire) < target) {
        return false;
      }
    }
    return true;
  };
  if (!ack_cv_.wait_until(lock, deadline, done)) return false;
  return !repl_stop_.load(std::memory_order_acquire) &&
         is_primary_.load(std::memory_order_acquire);
}

void NwsServer::failover_monitor_loop() {
  const int tick = std::clamp(cfg_.failover_ms / 4, 5, 100);
  while (running_.load() && !is_primary_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(tick));
    if (!running_.load() || is_primary_.load(std::memory_order_acquire)) {
      break;
    }
    const std::int64_t last = last_repl_ms_.load(std::memory_order_acquire);
    if (steady_ms() - last >= cfg_.failover_ms) {
      promote();
      break;
    }
  }
}

void NwsServer::execute_repl_hello(const Request& req, std::string& out) {
  if (!repl_enabled_) {
    append_error(out, "replication disabled");
    return;
  }
  note_repl_activity();
  store_max(max_seen_epoch_, req.epoch);
  const std::uint64_t my = epoch_.load(std::memory_order_acquire);
  if (req.epoch < my ||
      (req.epoch == my && is_primary_.load(std::memory_order_acquire))) {
    // An equal epoch from another primary is split-brain: the receiver
    // stays primary and the sender demotes itself on this reply.
    ++fenced_;
    server_metrics().repl_fenced->inc();
    append_error(out, "stale_epoch");
    out += ' ';
    append_unsigned(out, my);
    return;
  }
  if (req.shard != shard_count()) {
    append_error(out, "shard_mismatch");
    out += ' ';
    append_unsigned(out, shard_count());
    return;
  }
  if (req.epoch > my) demote(req.epoch);
  {
    const std::scoped_lock lock(hint_mu_);
    primary_hint_ = req.endpoint;
  }
  const std::size_t n = shards_.size();
  std::vector<std::uint64_t> watermarks(n);
  std::uint64_t synced = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t k = 0; k < n; ++k) {
    watermarks[k] = repl_end_[k].load(std::memory_order_acquire);
    synced = std::min(synced, shard_synced_[k].load(std::memory_order_acquire));
  }
  append_repl_hello_response(out, epoch_.load(std::memory_order_acquire),
                             n != 0 ? synced : 0, watermarks);
}

/// Shared epoch gate for BATCH/RESET.  Returns false after appending the
/// fencing error; adopts a higher epoch (demoting a primary receiver).
bool NwsServer::repl_gate(const Request& req, std::string& out) {
  if (!repl_enabled_) {
    append_error(out, "replication disabled");
    return false;
  }
  note_repl_activity();
  store_max(max_seen_epoch_, req.epoch);
  const std::uint64_t my = epoch_.load(std::memory_order_acquire);
  if (req.epoch < my ||
      (req.epoch == my && is_primary_.load(std::memory_order_acquire))) {
    ++fenced_;
    server_metrics().repl_fenced->inc();
    append_error(out, "stale_epoch");
    out += ' ';
    append_unsigned(out, my);
    return false;
  }
  if (req.epoch > my) demote(req.epoch);
  if (req.shard >= shard_count()) {
    append_error(out, "shard_mismatch");
    out += ' ';
    append_unsigned(out, shard_count());
    return false;
  }
  return true;
}

void NwsServer::execute_repl_batch(const Request& req, std::string& out) {
  if (!repl_gate(req, out)) return;
  ServerMetrics& m = server_metrics();
  const auto k = static_cast<std::size_t>(req.shard);
  std::uint64_t watermark = 0;
  std::uint64_t applied = 0;
  bool advanced = false;
  {
    const obs::TraceSpan span("repl.apply");
    const std::scoped_lock lock(shards_[k]->mu);
    watermark = repl_end_[k].load(std::memory_order_relaxed);
    if (!req.repl.empty()) {
      if (shard_synced_[k].load(std::memory_order_relaxed) != req.epoch ||
          req.seq > watermark) {
        m.repl_gaps->inc();
        append_error(out, "gap");
        out += ' ';
        append_unsigned(out, watermark);
        return;
      }
      if (req.seq + req.repl.size() > watermark) {
        ForecastService& svc = service_.shard(k);
        for (std::size_t i = static_cast<std::size_t>(watermark - req.seq);
             i < req.repl.size(); ++i) {
          const ReplSample& s = req.repl[i];
          const SeriesStore* store = svc.memory().find(s.series);
          // Quiet time-dedup for re-delivered overlap (a crash between
          // journal commit and meta save re-streams a tail): letting
          // record() reject them would pollute the `dropped` counter and
          // break byte-identity with the primary's STATS.
          const bool dup = store != nullptr && !store->empty() &&
                           s.measurement.time <= store->newest().time;
          if (dup) continue;
          const bool is_new = store == nullptr;
          if (svc.record(s.series, s.measurement)) {
            ++applied;
            if (is_new) total_series_.fetch_add(1, std::memory_order_relaxed);
          }
        }
        watermark = req.seq + req.repl.size();
        repl_end_[k].store(watermark, std::memory_order_release);
        service_.commit(k);
        advanced = true;
      }
    }
  }
  if (advanced) {
    // Durability order: journal commit (above, under the lock) before the
    // cursor — a crash between the two resumes behind and re-dedups.
    save_meta();
    m.repl_applied->inc(applied);
  }
  const FaultAction fault = fault_check(FaultSite::kReplAck);
  if (fault.kind == FaultAction::Kind::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
  }
  m.repl_acks->inc();
  append_repl_ack(out, watermark);
}

void NwsServer::execute_repl_reset(const Request& req, std::string& out) {
  if (!repl_gate(req, out)) return;
  ServerMetrics& m = server_metrics();
  const auto k = static_cast<std::size_t>(req.shard);
  bool sealed = false;
  std::uint64_t next = 0;
  {
    const obs::TraceSpan span("repl.apply");
    const std::scoped_lock lock(shards_[k]->mu);
    ShardState& sh = *shards_[k];
    ForecastService& svc = service_.shard(k);
    if (!sh.snap_active || req.seq != sh.snap_expect) {
      // (Re)started snapshot: drop the shard's state and adopt the
      // primary's absolute indexing from this chunk on.
      total_series_.fetch_sub(svc.series_count(), std::memory_order_relaxed);
      svc.reset();
      sh.applied_seq.clear();
      sh.snap_active = true;
      sh.snap_expect = req.seq;
      m.repl_snapshots->inc();
    }
    for (const ReplSample& s : req.repl) {
      const bool is_new = !svc.memory().contains(s.series);
      if (svc.record(s.series, s.measurement) && is_new) {
        total_series_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    m.repl_applied->inc(req.repl.size());
    sh.snap_expect = req.seq + req.repl.size();
    next = sh.snap_expect;
    if (req.repl_remaining == 0) {
      sh.snap_active = false;
      repl_end_[k].store(next, std::memory_order_release);
      shard_synced_[k].store(req.epoch, std::memory_order_release);
      sealed = true;
    }
    service_.commit(k);
  }
  if (sealed) save_meta();
  const FaultAction fault = fault_check(FaultSite::kReplAck);
  if (fault.kind == FaultAction::Kind::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
  }
  m.repl_acks->inc();
  append_repl_ack(out, next);
}

void NwsServer::repl_sender_loop(std::size_t link) {
  FollowerLink& fl = *links_[link];
  ClientConfig cc;
  cc.binary = true;
  // Trace propagation on the replication hop: a sampled write's context is
  // piggybacked onto the next BATCH so the follower's apply span joins the
  // client's trace.  An old follower declines the arm; the stream runs
  // untraced.
  cc.trace = true;
  cc.connect_timeout_ms = 1000;
  cc.io_timeout_ms = std::max(cfg_.repl_sync_timeout_ms, 1000);
  int backoff_ms = 10;
  while (!repl_stop_.load(std::memory_order_acquire) &&
         is_primary_.load(std::memory_order_acquire)) {
    NwsClient client(cc);
    if (!client.connect(fl.endpoint.port)) {
      obs::log_debug("repl", "follower %u unreachable; retry in %d ms",
                     static_cast<unsigned>(fl.endpoint.port), backoff_ms);
      std::unique_lock lock(repl_mu_);
      repl_cv_.wait_for(lock, std::chrono::milliseconds(backoff_ms), [&] {
        return repl_stop_.load(std::memory_order_acquire);
      });
      backoff_ms = std::min(backoff_ms * 2, 500);
      continue;
    }
    backoff_ms = 10;
    const obs::TraceSpan span("repl.stream");
    (void)repl_sender_session(link, client);
  }
}

bool NwsServer::repl_sender_session(std::size_t link, NwsClient& client) {
  FollowerLink& fl = *links_[link];
  ServerMetrics& m = server_metrics();
  const std::uint64_t my_epoch = epoch_.load(std::memory_order_acquire);
  const std::size_t n = shards_.size();

  Request req;
  req.kind = RequestKind::kReplHello;
  req.epoch = my_epoch;
  req.shard = static_cast<std::uint32_t>(n);
  req.endpoint = advertised_endpoint();
  const auto hello_resp = client.request(req);
  if (!hello_resp) return false;
  if (const auto stale = parse_stale_epoch(*hello_resp)) {
    demote(*stale);
    return false;
  }
  const auto hello = parse_repl_hello_response(*hello_resp);
  if (!hello || hello->watermarks.size() != n) return false;
  if (hello->epoch > my_epoch) {
    demote(hello->epoch);
    return false;
  }

  // Per-shard stream position = the follower's applied watermark; shards
  // synced under an older epoch (or fallen off the log window) restart
  // with a snapshot.
  std::vector<std::uint64_t> pos(hello->watermarks);
  std::vector<char> need_snap(n, hello->synced_epoch != my_epoch ? 1 : 0);

  std::uint64_t seen_gen = 0;
  {
    const std::scoped_lock lock(repl_mu_);
    seen_gen = repl_gen_;
  }

  std::vector<ReplSample> batch;
  while (!repl_stop_.load(std::memory_order_acquire) &&
         is_primary_.load(std::memory_order_acquire) &&
         epoch_.load(std::memory_order_acquire) == my_epoch) {
    bool progressed = false;
    for (std::size_t k = 0; k < n; ++k) {
      {
        const std::scoped_lock lock(shards_[k]->mu);
        if (!shards_[k]->repl_log->contains(pos[k])) need_snap[k] = 1;
      }
      if (need_snap[k] != 0) {
        if (!repl_send_snapshot(link, k, client, pos[k])) return false;
        need_snap[k] = 0;
        fl.acked[k].store(pos[k], std::memory_order_release);
        ack_cv_.notify_all();
        progressed = true;
      }
      for (;;) {
        if (repl_stop_.load(std::memory_order_acquire)) return true;
        {
          const std::scoped_lock lock(shards_[k]->mu);
          if (!shards_[k]->repl_log->contains(pos[k])) {
            need_snap[k] = 1;
            break;
          }
          shards_[k]->repl_log->copy_from(pos[k], cfg_.repl_batch_max, batch);
        }
        if (batch.empty()) break;
        if (fault_check(FaultSite::kReplStream).kind ==
            FaultAction::Kind::kReset) {
          return false;  // injected stream loss: reconnect and resume
        }
        req.kind = RequestKind::kReplBatch;
        req.epoch = my_epoch;
        req.shard = static_cast<std::uint32_t>(k);
        req.seq = pos[k];
        req.repl = batch;
        // Piggyback the shard's last sampled write context (consume-once)
        // so the follower's apply joins that trace; req is reused, so the
        // fields are cleared when there is nothing to carry.
        req.trace_id = 0;
        req.span_id = 0;
        req.trace_sampled = false;
        if (client.trace_active()) {
          const std::uint64_t trace = shards_[k]->last_trace_id.exchange(
              0, std::memory_order_acq_rel);
          if (trace != 0) {
            req.trace_id = trace;
            req.span_id =
                shards_[k]->last_trace_span.load(std::memory_order_acquire);
            req.trace_sampled = true;
          }
        }
        const auto ack = client.request(req);
        if (!ack) return false;
        if (const auto stale = parse_stale_epoch(*ack)) {
          demote(*stale);
          return false;
        }
        if (const auto w = parse_repl_ack(*ack)) {
          m.repl_streamed->inc(batch.size());
          pos[k] = std::max(*w, pos[k]);
          fl.acked[k].store(pos[k], std::memory_order_release);
          ack_cv_.notify_all();
          progressed = true;
          continue;
        }
        // "ERR gap <w>" (or anything unexpected): resync this shard.
        need_snap[k] = 1;
        break;
      }
    }
    if (progressed) {
      const std::scoped_lock lock(repl_mu_);
      seen_gen = repl_gen_;
      continue;
    }
    bool work = false;
    {
      std::unique_lock lock(repl_mu_);
      work = repl_cv_.wait_for(
          lock, std::chrono::milliseconds(cfg_.repl_heartbeat_ms), [&] {
            return repl_gen_ != seen_gen ||
                   repl_stop_.load(std::memory_order_acquire);
          });
      seen_gen = repl_gen_;
    }
    if (!work) {
      // Idle heartbeat: keeps the follower's failover timer fed.
      if (fault_check(FaultSite::kReplStream).kind ==
          FaultAction::Kind::kReset) {
        return false;
      }
      req.kind = RequestKind::kReplBatch;
      req.epoch = my_epoch;
      req.shard = 0;
      req.seq = pos[0];
      req.repl.clear();
      req.trace_id = 0;
      req.span_id = 0;
      req.trace_sampled = false;
      const auto ack = client.request(req);
      if (!ack) return false;
      if (const auto stale = parse_stale_epoch(*ack)) {
        demote(*stale);
        return false;
      }
    }
  }
  return true;
}

bool NwsServer::repl_send_snapshot(std::size_t link, std::size_t k,
                                   NwsClient& client, std::uint64_t& pos) {
  FollowerLink& fl = *links_[link];
  (void)fl;
  server_metrics().repl_snapshots->inc();
  // One bounded copy under the shard lock: the retained window is capped
  // by memory_capacity per series.  Chunks are indexed so the final chunk
  // seals the follower's watermark at the shard's commit index (evicted
  // history is not re-streamed; see the counter-fidelity caveat in
  // DESIGN.md §11).
  std::vector<ReplSample> records;
  std::uint64_t log_end = 0;
  {
    const std::scoped_lock lock(shards_[k]->mu);
    const ForecastService& svc = service_.shard(k);
    log_end = shards_[k]->repl_log->end();
    for (const std::string& name : svc.memory().series_names()) {
      const SeriesStore* store = svc.memory().find(name);
      for (std::size_t i = 0; i < store->size(); ++i) {
        records.push_back(ReplSample{name, store->at(i)});
      }
    }
  }
  const std::uint64_t first = log_end - records.size();
  const std::uint64_t my_epoch = epoch_.load(std::memory_order_acquire);
  Request req;
  std::size_t off = 0;
  do {
    const std::size_t count =
        std::min(cfg_.repl_batch_max, records.size() - off);
    if (fault_check(FaultSite::kReplStream).kind ==
        FaultAction::Kind::kReset) {
      return false;
    }
    req.kind = RequestKind::kReplReset;
    req.epoch = my_epoch;
    req.shard = static_cast<std::uint32_t>(k);
    req.seq = first + off;
    req.repl_remaining = records.size() - off - count;
    req.repl.assign(records.begin() + static_cast<std::ptrdiff_t>(off),
                    records.begin() + static_cast<std::ptrdiff_t>(off + count));
    const auto ack = client.request(req);
    if (!ack) return false;
    if (const auto stale = parse_stale_epoch(*ack)) {
      demote(*stale);
      return false;
    }
    if (!parse_repl_ack(*ack)) return false;
    off += count;
  } while (off < records.size());
  pos = log_end;
  return true;
}

}  // namespace nws

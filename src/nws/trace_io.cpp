#include "nws/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace nws {

void write_trace(const std::filesystem::path& path, const TimeSeries& series) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("write_trace: cannot open " + path.string());
  }
  file << "# nwscpu trace\n";
  file << "# name: " << series.name() << "\n";
  file << "# period_seconds: " << series.period() << "\n";
  CsvTable table;
  table.headers = {"time_seconds", "value"};
  table.columns.resize(2);
  table.columns[0].reserve(series.size());
  table.columns[1].reserve(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    table.columns[0].push_back(series.time_at(i));
    table.columns[1].push_back(series[i]);
  }
  write_csv(file, table);
}

TimeSeries read_trace(const std::filesystem::path& path) {
  const CsvTable table = read_csv(path);
  if (table.cols() < 2) {
    throw std::runtime_error("read_trace: need time,value columns in " +
                             path.string());
  }
  const auto& times = table.columns[0];
  const auto& values = table.columns[1];
  if (times.size() < 2) {
    throw std::runtime_error("read_trace: need >= 2 samples in " +
                             path.string());
  }
  const double period = times[1] - times[0];
  if (period <= 0.0) {
    throw std::runtime_error("read_trace: non-increasing time column in " +
                             path.string());
  }
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double gap = times[i] - times[i - 1];
    if (std::abs(gap - period) > 0.01 * period) {
      throw std::runtime_error("read_trace: irregular time grid in " +
                               path.string());
    }
  }
  return TimeSeries(path.stem().string(), times.front(), period, values);
}

}  // namespace nws

#include "nws/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace nws {

NwsClient::~NwsClient() { disconnect(); }

NwsClient::NwsClient(NwsClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rx_buffer_(std::move(other.rx_buffer_)) {}

NwsClient& NwsClient::operator=(NwsClient&& other) noexcept {
  if (this != &other) {
    disconnect();
    fd_ = std::exchange(other.fd_, -1);
    rx_buffer_ = std::move(other.rx_buffer_);
  }
  return *this;
}

bool NwsClient::connect(std::uint16_t port) {
  disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    disconnect();
    return false;
  }
  return true;
}

void NwsClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_buffer_.clear();
}

std::optional<std::string> NwsClient::round_trip(const Request& request) {
  if (fd_ < 0) return std::nullopt;
  const std::string line = format_request(request) + "\n";
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t w = ::send(fd_, line.data() + sent, line.size() - sent, 0);
    if (w <= 0) {
      disconnect();
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(w);
  }
  char chunk[1024];
  while (true) {
    const std::size_t newline = rx_buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = rx_buffer_.substr(0, newline);
      rx_buffer_.erase(0, newline + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      return response;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      disconnect();
      return std::nullopt;
    }
    rx_buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool NwsClient::put(const std::string& series, Measurement measurement) {
  Request req;
  req.kind = RequestKind::kPut;
  req.series = series;
  req.measurement = measurement;
  const auto response = round_trip(req);
  return response && response_is_ok(*response);
}

std::optional<ForecastReply> NwsClient::forecast(const std::string& series) {
  Request req;
  req.kind = RequestKind::kForecast;
  req.series = series;
  const auto response = round_trip(req);
  if (!response) return std::nullopt;
  return parse_forecast_response(*response);
}

std::optional<std::vector<Measurement>> NwsClient::values(
    const std::string& series, std::size_t max_values) {
  Request req;
  req.kind = RequestKind::kValues;
  req.series = series;
  req.max_values = max_values;
  const auto response = round_trip(req);
  if (!response) return std::nullopt;
  return parse_values_response(*response);
}

std::optional<std::vector<std::string>> NwsClient::series() {
  Request req;
  req.kind = RequestKind::kSeries;
  const auto response = round_trip(req);
  if (!response) return std::nullopt;
  return parse_series_response(*response);
}

bool NwsClient::ping() {
  Request req;
  req.kind = RequestKind::kPing;
  const auto response = round_trip(req);
  return response && response_is_ok(*response);
}

}  // namespace nws

#include "nws/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nws {

namespace {

// Outbox telemetry, shared by every client in the process (the fleet
// runner spawns one client per simulated host; fleet-wide totals are what
// the end-of-run table wants).  Registered once, held by pointer.
struct ClientMetrics {
  obs::Counter* reconnects = nullptr;
  obs::Counter* overflows = nullptr;
  obs::Counter* replayed = nullptr;
  obs::Counter* flushes = nullptr;
  obs::Counter* flush_failures = nullptr;
  obs::Counter* redirects = nullptr;
  obs::Counter* busy_backoffs = nullptr;
  obs::Histogram* flush_seconds = nullptr;
};

ClientMetrics& client_metrics() {
  static ClientMetrics* metrics = [] {
    auto* m = new ClientMetrics();
    obs::Registry& reg = obs::registry();
    m->reconnects = &reg.counter("nws_client_reconnects_total",
                                 "Reconnect attempts by the reliable path");
    m->overflows = &reg.counter(
        "nws_client_outbox_overflows_total",
        "Measurements dropped because the outbox was full");
    m->replayed = &reg.counter("nws_client_replayed_total",
                               "Outbox records acked by the server");
    m->flushes = &reg.counter("nws_client_flushes_total",
                              "flush() calls that started with a backlog");
    m->flush_failures =
        &reg.counter("nws_client_flush_failures_total",
                     "flush() calls that exhausted their attempts with "
                     "records still queued");
    m->redirects = &reg.counter(
        "nws_client_redirects_total",
        "not_primary redirects followed by the reliable path");
    m->busy_backoffs = &reg.counter(
        "nws_client_busy_backoffs_total",
        "retry_after_ms hints honoured with a backoff sleep");
    m->flush_seconds = &reg.histogram(
        "nws_client_flush_seconds", "Outbox flush duration (incl. backoff)");
    return m;
  }();
  return *metrics;
}

}  // namespace

NwsClient::NwsClient(ClientConfig config)
    : cfg_(config), backoff_(config.backoff, config.backoff_seed) {}

NwsClient::~NwsClient() { disconnect(); }

NwsClient::NwsClient(NwsClient&& other) noexcept
    : cfg_(other.cfg_),
      fd_(std::exchange(other.fd_, -1)),
      rx_buffer_(std::move(other.rx_buffer_)),
      last_port_(other.last_port_),
      binary_active_(std::exchange(other.binary_active_, false)),
      trace_active_(std::exchange(other.trace_active_, false)),
      outbox_(std::move(other.outbox_)),
      next_seq_(other.next_seq_),
      overflows_(other.overflows_),
      reconnects_(other.reconnects_),
      redirects_(other.redirects_),
      busy_backoffs_(other.busy_backoffs_),
      endpoint_idx_(other.endpoint_idx_),
      backoff_(other.backoff_) {}

NwsClient& NwsClient::operator=(NwsClient&& other) noexcept {
  if (this != &other) {
    disconnect();
    cfg_ = other.cfg_;
    fd_ = std::exchange(other.fd_, -1);
    rx_buffer_ = std::move(other.rx_buffer_);
    last_port_ = other.last_port_;
    binary_active_ = std::exchange(other.binary_active_, false);
    trace_active_ = std::exchange(other.trace_active_, false);
    outbox_ = std::move(other.outbox_);
    next_seq_ = other.next_seq_;
    overflows_ = other.overflows_;
    reconnects_ = other.reconnects_;
    redirects_ = other.redirects_;
    busy_backoffs_ = other.busy_backoffs_;
    endpoint_idx_ = other.endpoint_idx_;
    backoff_ = other.backoff_;
  }
  return *this;
}

bool NwsClient::wait_ready(short events, int timeout_ms) const {
  pollfd pfd{fd_, events, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  return ready > 0 && (pfd.revents & (events | POLLHUP)) != 0 &&
         (pfd.revents & (POLLERR | POLLNVAL)) == 0;
}

bool NwsClient::connect(std::uint16_t port) {
  disconnect();
  last_port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  // Non-blocking connect bounded by poll(): a blackholed listener must not
  // hang the caller past connect_timeout_ms.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof addr);
  if (rc < 0) {
    if (errno != EINPROGRESS) {
      disconnect();
      return false;
    }
    if (!wait_ready(POLLOUT, cfg_.connect_timeout_ms)) {
      disconnect();
      return false;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      disconnect();
      return false;
    }
  }
  ::fcntl(fd_, F_SETFL, flags);
  // Nagle off: a sensor's single PUT is a sub-MSS write that must not sit
  // in the kernel waiting for a delayed ack.
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (cfg_.binary || cfg_.trace) {
    // Negotiate the binary framing and/or trace propagation.  The
    // handshake travels as text; only the exact expected ack flips the
    // connection.  An old server ERRs the TRC arms and stays text, so the
    // trace request falls back to the plain handshake on the same
    // connection — an unknown server costs one extra round trip, never
    // the connection.
    const std::string_view want_ack =
        cfg_.binary ? (cfg_.trace ? kHelloBinTrcAck : kHelloBinAck)
                    : kHelloTrcAck;
    std::string hello(cfg_.binary
                          ? (cfg_.trace ? kHelloBinTrcRequest
                                        : kHelloBinRequest)
                          : kHelloTrcRequest);
    hello += '\n';
    if (!send_all(hello)) {
      disconnect();
      return false;
    }
    const auto ack = read_response();
    if (!ack) return false;  // read_response() already disconnected
    if (*ack == want_ack) {
      binary_active_ = cfg_.binary;
      trace_active_ = cfg_.trace;
    } else if (cfg_.trace && cfg_.binary) {
      std::string retry(kHelloBinRequest);
      retry += '\n';
      if (!send_all(retry)) {
        disconnect();
        return false;
      }
      const auto retry_ack = read_response();
      if (!retry_ack) return false;
      binary_active_ = (*retry_ack == kHelloBinAck);
    }
  }
  return true;
}

void NwsClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_buffer_.clear();
  binary_active_ = false;
  trace_active_ = false;
}

bool NwsClient::send_all(const std::string& line) {
  std::size_t sent = 0;
  while (sent < line.size()) {
    if (!wait_ready(POLLOUT, cfg_.io_timeout_ms)) return false;
    const ssize_t w = ::send(fd_, line.data() + sent, line.size() - sent,
                             MSG_NOSIGNAL);
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

std::optional<std::string> NwsClient::read_response() {
  char chunk[4096];
  while (true) {
    const std::size_t newline = rx_buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = rx_buffer_.substr(0, newline);
      rx_buffer_.erase(0, newline + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      return response;
    }
    // Bounded wait: a stalled or truncating server yields a timeout here,
    // not a wedged scheduler.
    if (!wait_ready(POLLIN, cfg_.io_timeout_ms)) {
      disconnect();
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      disconnect();
      return std::nullopt;
    }
    rx_buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> NwsClient::read_frame() {
  // Response frames carry the exact text response, so a frame cap sized
  // for the largest plausible reply (VALUES over a deep memory, a big
  // METRICS dump) is ample; anything larger means a desynced stream.
  constexpr std::size_t kMaxFrameBytes = 16 * 1024 * 1024;
  char chunk[4096];
  while (true) {
    std::size_t frame_end = 0;
    std::string_view payload;
    const BinFrameStatus status =
        extract_binary_frame(rx_buffer_, kMaxFrameBytes, frame_end, payload);
    if (status == BinFrameStatus::kError) {
      disconnect();
      return std::nullopt;
    }
    if (status == BinFrameStatus::kFrame) {
      std::string response(payload);
      rx_buffer_.erase(0, frame_end);
      return response;
    }
    if (!wait_ready(POLLIN, cfg_.io_timeout_ms)) {
      disconnect();
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      disconnect();
      return std::nullopt;
    }
    rx_buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> NwsClient::read_reply() {
  return binary_active_ ? read_frame() : read_response();
}

void NwsClient::maybe_mint(Request& request) {
  if (!trace_active_ || request.trace_id != 0) return;
  const obs::TraceContext ctx = obs::mint_trace_context();
  if (!ctx.active()) return;
  request.trace_id = ctx.trace_id;
  request.span_id = ctx.span_id;
  request.trace_sampled = true;
}

std::optional<std::string> NwsClient::round_trip(Request& request) {
  maybe_mint(request);
  if (request.trace_id == 0) return send_request(request);
  // Sampled request: the whole round trip is the trace's root span.
  const std::uint64_t start = obs::now_ns();
  auto response = send_request(request);
  obs::record_span_with("client.request", start, obs::now_ns() - start,
                        request.trace_id, request.span_id, 0);
  return response;
}

std::optional<std::string> NwsClient::send_request(const Request& request) {
  if (fd_ < 0) return std::nullopt;
  std::string wire;
  if (binary_active_) {
    append_binary_request(wire, request);
  } else {
    append_request(wire, request);
    wire += '\n';
  }
  if (!send_all(wire)) {
    disconnect();
    return std::nullopt;
  }
  return read_reply();
}

bool NwsClient::put(const std::string& series, Measurement measurement) {
  Request req;
  req.kind = RequestKind::kPut;
  req.series = series;
  req.measurement = measurement;
  const auto response = round_trip(req);
  return response && response_is_ok(*response);
}

std::optional<PutBatchReply> NwsClient::put_batch(
    const std::string& series, const std::vector<Measurement>& batch,
    std::uint64_t seq0) {
  if (batch.empty()) return PutBatchReply{};
  Request req;
  req.kind = RequestKind::kPutBatch;
  req.series = series;
  req.seq = seq0;
  req.batch = batch;
  const auto response = round_trip(req);
  if (!response || !response_is_ok(*response)) return std::nullopt;
  return parse_put_batch_response(*response);
}

bool NwsClient::put_reliable(const std::string& series,
                             Measurement measurement) {
  const obs::TraceSpan span("client.enqueue");
  if (outbox_.size() >= cfg_.outbox_capacity) {
    ++overflows_;
    client_metrics().overflows->inc();
    return false;
  }
  outbox_.push_back(Pending{next_seq_++, series, measurement});
  // Opportunistic fast path: one delivery attempt, no backoff sleeps, so a
  // healthy pipeline stays at one round trip per measurement and an outage
  // just leaves the sample queued for the next flush().
  if (connected()) {
    Request req;
    req.kind = RequestKind::kPutSeq;
    req.seq = outbox_.front().seq;
    req.series = outbox_.front().series;
    req.measurement = outbox_.front().measurement;
    const auto response = round_trip(req);
    if (response && response_is_ok(*response)) {
      outbox_.pop_front();
      client_metrics().replayed->inc();
      backoff_.reset();
    }
  }
  return true;
}

bool NwsClient::reconnect_any() {
  if (last_port_ != 0 && connect(last_port_)) return true;
  const std::uint16_t failed = last_port_;
  for (std::size_t i = 0; i < cfg_.endpoints.size(); ++i) {
    const std::uint16_t port = cfg_.endpoints[endpoint_idx_];
    endpoint_idx_ = (endpoint_idx_ + 1) % cfg_.endpoints.size();
    if (port == failed) continue;  // just tried it
    if (connect(port)) return true;
  }
  return false;
}

bool NwsClient::flush() {
  if (outbox_.empty()) return true;
  ClientMetrics& m = client_metrics();
  m.flushes->inc();
  const obs::TraceSpan span("client.flush");
  const obs::ScopedTimer timer(*m.flush_seconds);
  for (int attempt = 0; attempt < cfg_.max_flush_attempts; ++attempt) {
    if (outbox_.empty()) return true;
    if (!connected()) {
      if (!reconnect_any()) {
        ++reconnects_;
        m.reconnects->inc();
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            backoff_.next_delay_ms()));
        continue;
      }
      ++reconnects_;
      m.reconnects->inc();
    }
    // Replay in order from the head; the server acks duplicates per
    // sample, so re-sending records whose ack was lost is safe.  Runs of
    // consecutive sequences for one series coalesce into PUTB lines; the
    // whole backlog goes out in a single buffered write, then one
    // response is read per line.  Records pop only when their line acks,
    // so a mid-pipeline failure leaves the unacked tail queued.
    std::string wire;
    std::vector<std::size_t> line_records;
    Request req;
    const std::size_t batch_max = std::max<std::size_t>(
        1, cfg_.outbox_batch_max);
    std::size_t idx = 0;
    while (idx < outbox_.size()) {
      const Pending& head = outbox_[idx];
      std::size_t run = 1;
      while (idx + run < outbox_.size() && run < batch_max &&
             outbox_[idx + run].series == head.series &&
             outbox_[idx + run].seq == head.seq + run) {
        ++run;
      }
      req.series = head.series;
      req.seq = head.seq;
      req.batch.clear();
      if (run == 1) {
        req.kind = RequestKind::kPutSeq;
        req.measurement = head.measurement;
      } else {
        req.kind = RequestKind::kPutBatch;
        req.batch.reserve(run);
        for (std::size_t j = 0; j < run; ++j) {
          req.batch.push_back(outbox_[idx + j].measurement);
        }
      }
      req.trace_id = 0;  // reused Request: mint each line independently
      maybe_mint(req);
      if (binary_active_) {
        append_binary_request(wire, req);
      } else {
        append_request(wire, req);
        wire += '\n';
      }
      line_records.push_back(run);
      idx += run;
    }
    if (!send_all(wire)) {
      disconnect();
      continue;
    }
    for (const std::size_t records : line_records) {
      const obs::TraceSpan ack_span("client.ack");
      const auto response = read_reply();
      if (!response || !response_is_ok(*response)) {
        // Any failure desyncs the pipelined replies, so always disconnect;
        // the unacked tail stays queued and replays (exactly-once holds via
        // the server's duplicate detection).  Failover redirects steer the
        // next attempt; a shed hint paces it.
        if (response) {
          if (const auto port = parse_not_primary(*response)) {
            ++redirects_;
            m.redirects->inc();
            if (*port != 0) {
              last_port_ = *port;
            } else {
              last_port_ = 0;  // unknown primary: walk the endpoint list
            }
          } else if (const auto hold = parse_retry_after_ms(*response)) {
            ++busy_backoffs_;
            m.busy_backoffs->inc();
            std::this_thread::sleep_for(std::chrono::milliseconds(*hold));
          }
        }
        disconnect();
        break;
      }
      outbox_.erase(outbox_.begin(),
                    outbox_.begin() + static_cast<std::ptrdiff_t>(records));
      m.replayed->inc(records);
      backoff_.reset();
    }
  }
  if (!outbox_.empty()) m.flush_failures->inc();
  return outbox_.empty();
}

std::optional<StatsReply> NwsClient::stats(const std::string& series) {
  Request req;
  req.kind = RequestKind::kStats;
  req.series = series;
  const auto response = round_trip(req);
  if (!response) return std::nullopt;
  return parse_stats_response(*response);
}

std::optional<std::string> NwsClient::metrics() {
  Request req;
  req.kind = RequestKind::kMetrics;
  if (binary_active_) {
    // One frame carries the whole multi-line response ("OK <n>" header
    // plus n exposition lines) — the length prefix frames it, no
    // line-count bookkeeping on the read path.
    const auto response = round_trip(req);
    if (!response) return std::nullopt;
    return parse_metrics_response(*response);
  }
  // Text: "OK <n>" then n exposition lines, framed by the header's line
  // count (no sentinel to scan for).
  const auto header = round_trip(req);
  if (!header) return std::nullopt;
  const auto lines = parse_metrics_header(*header);
  if (!lines) return std::nullopt;
  std::string body;
  body.reserve(*lines * 48);
  for (std::size_t i = 0; i < *lines; ++i) {
    const auto line = read_response();
    if (!line) return std::nullopt;
    body += *line;
    body += '\n';
  }
  return body;
}

std::optional<ForecastReply> NwsClient::forecast(const std::string& series) {
  Request req;
  req.kind = RequestKind::kForecast;
  req.series = series;
  const auto response = round_trip(req);
  if (!response) return std::nullopt;
  return parse_forecast_response(*response);
}

std::optional<std::vector<Measurement>> NwsClient::values(
    const std::string& series, std::size_t max_values) {
  Request req;
  req.kind = RequestKind::kValues;
  req.series = series;
  req.max_values = max_values;
  const auto response = round_trip(req);
  if (!response) return std::nullopt;
  return parse_values_response(*response);
}

std::optional<std::vector<std::string>> NwsClient::series() {
  Request req;
  req.kind = RequestKind::kSeries;
  const auto response = round_trip(req);
  if (!response) return std::nullopt;
  return parse_series_response(*response);
}

bool NwsClient::ping() {
  Request req;
  req.kind = RequestKind::kPing;
  const auto response = round_trip(req);
  return response && response_is_ok(*response);
}

}  // namespace nws

// NwsClient: blocking TCP client for the nwscpu wire protocol.
//
// The counterpart a dynamic scheduler embeds: put() streams sensor
// measurements to the server, forecast() retrieves the one-step-ahead
// prediction with its error pedigree.  One request in flight at a time;
// connect once, reuse for the session (the protocol is line-oriented and
// stateless between requests).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nws/protocol.hpp"

namespace nws {

class NwsClient {
 public:
  NwsClient() = default;
  ~NwsClient();

  NwsClient(const NwsClient&) = delete;
  NwsClient& operator=(const NwsClient&) = delete;
  NwsClient(NwsClient&& other) noexcept;
  NwsClient& operator=(NwsClient&& other) noexcept;

  /// Connects to 127.0.0.1:port.  Returns false on failure.
  bool connect(std::uint16_t port);
  void disconnect();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Stores a measurement.  False on transport failure or server ERR.
  bool put(const std::string& series, Measurement measurement);

  /// One-step-ahead forecast; nullopt on failure or unknown series.
  [[nodiscard]] std::optional<ForecastReply> forecast(
      const std::string& series);

  /// Most recent measurements (up to max_values).
  [[nodiscard]] std::optional<std::vector<Measurement>> values(
      const std::string& series, std::size_t max_values);

  /// Known series names.
  [[nodiscard]] std::optional<std::vector<std::string>> series();

  /// Liveness round trip.
  bool ping();

 private:
  /// Sends one request line, reads one response line.  nullopt on
  /// transport failure.
  [[nodiscard]] std::optional<std::string> round_trip(const Request& request);

  int fd_ = -1;
  std::string rx_buffer_;
};

}  // namespace nws

// NwsClient: TCP client for the nwscpu wire protocol, with bounded
// timeouts and an optional reliable-delivery path.
//
// The counterpart a dynamic scheduler embeds: put() streams sensor
// measurements to the server, forecast() retrieves the one-step-ahead
// prediction with its error pedigree.  One request in flight at a time;
// connect once, reuse for the session (the protocol is line-oriented and
// stateless between requests).
//
// Every socket operation is poll()-bounded by ClientConfig's timeouts, so
// a stalled or half-dead server can never hang a scheduler: connect(),
// forecast(), put() etc. return failure within the configured bound.
//
// Reliable delivery: put_reliable() enqueues the measurement into a
// bounded outbox of sequence-tagged records and flush() replays the
// queue — reconnecting with deterministic exponential backoff — until the
// server acks each record.  Acks are idempotent on the server side ("OK
// dup" for an already-applied sequence/timestamp), so a record whose ack
// was lost is safely re-sent: every measurement is applied exactly once
// even across connection resets and a server restart.  Measurements are
// only lost when the outbox overflows (put_reliable returns false), which
// the sensor loop can count.
//
// Replay is batched: flush() coalesces runs of consecutive sequences for
// the same series into PUTB lines (up to outbox_batch_max samples each),
// formats the whole backlog into one buffer, writes it with a single
// send, and then reads one response per line — one syscall pair moves
// hundreds of queued measurements instead of one write+read per record.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "nws/protocol.hpp"
#include "util/backoff.hpp"

namespace nws {

struct ClientConfig {
  int connect_timeout_ms = 2000;  ///< bound on connect()
  int io_timeout_ms = 2000;       ///< bound on each send/recv wait
  std::size_t outbox_capacity = 1024;  ///< queued record bound
  /// Reconnect attempts per flush() before giving up (the outbox is kept).
  int max_flush_attempts = 8;
  /// Longest run of consecutive outbox records coalesced into one PUTB
  /// line during flush (1 = always PUTS, the pre-batching wire traffic).
  std::size_t outbox_batch_max = 256;
  BackoffConfig backoff{5.0, 500.0, 2.0, 0.5};  ///< reconnect pacing
  std::uint64_t backoff_seed = 1;  ///< deterministic jitter stream
  /// Opt into the length-prefixed binary wire framing: connect() sends
  /// "HELLO BIN" and, when the server acks, every request/response after
  /// it travels as binary frames (responses carry the exact text-protocol
  /// payload, so replies parse identically).  A server that does not speak
  /// the upgrade leaves the connection on text — the client degrades
  /// gracefully.  The reliable outbox/replay machinery is framing-
  /// agnostic and unchanged.
  bool binary = false;
  /// Opt into distributed-trace propagation: connect() negotiates the TRC
  /// arm ("HELLO TRC", or "HELLO BIN TRC" combined with `binary`) and,
  /// when the server acks, sampled requests carry a trace context on the
  /// wire (a TRC line prefix, or a trace-flagged binary frame).  Contexts
  /// are minted per request at the NWSCPU_TRACE_SAMPLE rate; an old server
  /// draws the plain handshake retry and the connection runs untraced.
  bool trace = false;
  /// Failover endpoint list (loopback ports).  When non-empty, a failed
  /// reconnect walks the list until a listener answers; combined with the
  /// "ERR not_primary <host:port>" redirect this makes the reliable path
  /// follow a promotion: the outbox replays against the new primary and
  /// the server's duplicate detection keeps delivery exactly-once.
  std::vector<std::uint16_t> endpoints;
};

class NwsClient {
 public:
  NwsClient() : NwsClient(ClientConfig{}) {}
  explicit NwsClient(ClientConfig config);
  ~NwsClient();

  NwsClient(const NwsClient&) = delete;
  NwsClient& operator=(const NwsClient&) = delete;
  NwsClient(NwsClient&& other) noexcept;
  NwsClient& operator=(NwsClient&& other) noexcept;

  /// Connects to 127.0.0.1:port within connect_timeout_ms.  Returns false
  /// on failure.  The port is remembered for automatic reconnects.
  bool connect(std::uint16_t port);
  void disconnect();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// True when the current connection negotiated binary framing (config
  /// requested it AND the server acked the HELLO BIN upgrade).
  [[nodiscard]] bool binary_active() const noexcept { return binary_active_; }

  /// True when the current connection negotiated trace propagation.
  [[nodiscard]] bool trace_active() const noexcept { return trace_active_; }

  /// Stores a measurement (fire-and-forget PUT).  False on transport
  /// failure or server ERR.
  bool put(const std::string& series, Measurement measurement);

  /// Stores a batch of measurements in one PUTB round trip, sequence-
  /// tagged seq0..seq0+n-1 (idempotent per sample, like PUTS).  Returns
  /// the server's per-sample accounting, or nullopt on transport failure
  /// or server ERR.
  [[nodiscard]] std::optional<PutBatchReply> put_batch(
      const std::string& series, const std::vector<Measurement>& batch,
      std::uint64_t seq0);

  /// Queues a measurement for exactly-once delivery and opportunistically
  /// flushes.  Returns false only when the outbox is full (the measurement
  /// is dropped and counted); an unreachable server just leaves it queued.
  bool put_reliable(const std::string& series, Measurement measurement);

  /// Replays the outbox until empty or attempts are exhausted; reconnects
  /// with exponential backoff.  Returns true when the outbox drained.
  bool flush();

  [[nodiscard]] std::size_t outbox_size() const noexcept {
    return outbox_.size();
  }
  /// Measurements dropped because the outbox was full.
  [[nodiscard]] std::uint64_t outbox_overflows() const noexcept {
    return overflows_;
  }
  /// Reconnects performed by the reliable path.
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_;
  }

  /// One-step-ahead forecast; nullopt on failure or unknown series.
  /// Returns within the configured timeouts even against a stalled server.
  [[nodiscard]] std::optional<ForecastReply> forecast(
      const std::string& series);

  /// Most recent measurements (up to max_values).
  [[nodiscard]] std::optional<std::vector<Measurement>> values(
      const std::string& series, std::size_t max_values);

  /// Known series names.
  [[nodiscard]] std::optional<std::vector<std::string>> series();

  /// Service totals (STATS), or one series' totals when `series` is
  /// non-empty; nullopt on failure or unknown series.
  [[nodiscard]] std::optional<StatsReply> stats(const std::string& series = "");

  /// The server's telemetry registry (METRICS): Prometheus text
  /// exposition, one metric per line with a trailing newline.  nullopt on
  /// transport failure or a malformed/short response.
  [[nodiscard]] std::optional<std::string> metrics();

  /// Liveness round trip.
  bool ping();

  /// Sends one arbitrary request and returns the raw text response (the
  /// binary framing is transparent).  The replication sender uses this to
  /// speak the REPL verbs; tests use it for protocol probing.  The
  /// request's trace context (if any) is sent verbatim — no minting — so a
  /// caller stitching its own spans (the repl sender piggybacking the
  /// primary's trace onto a BATCH) keeps full control.
  [[nodiscard]] std::optional<std::string> request(const Request& req) {
    return send_request(req);
  }

  /// "ERR not_primary <host:port>" redirects followed by the reliable
  /// path.
  [[nodiscard]] std::uint64_t redirects() const noexcept {
    return redirects_;
  }
  /// "ERR busy retry_after_ms=<n>" hints honoured with a backoff sleep.
  [[nodiscard]] std::uint64_t busy_backoffs() const noexcept {
    return busy_backoffs_;
  }

 private:
  struct Pending {
    std::uint64_t seq;
    std::string series;
    Measurement measurement;
  };

  /// Sends one request, reads one response; each socket wait is bounded
  /// by io_timeout_ms.  nullopt on transport failure or timeout (the
  /// connection is torn down so the next call can reconnect).  Requests
  /// and responses ride the negotiated framing; the returned payload is
  /// the text response either way.  Mints a trace context into `request`
  /// when trace propagation is negotiated (sampling permitting) and
  /// records the round trip as a "client.request" root span.
  [[nodiscard]] std::optional<std::string> round_trip(Request& request);
  /// The serialization half of round_trip: sends `request` exactly as
  /// given (trace context included when present) and reads one reply.
  [[nodiscard]] std::optional<std::string> send_request(const Request& request);
  /// Stamps a freshly minted trace context into `request` when this
  /// connection negotiated tracing and the sampler fires; otherwise leaves
  /// it context-free.
  void maybe_mint(Request& request);
  /// Reads one response line (bounded waits); disconnects on failure.
  [[nodiscard]] std::optional<std::string> read_response();
  /// Reads one binary response frame, returning its payload (the exact
  /// text response); disconnects on failure or a framing error.
  [[nodiscard]] std::optional<std::string> read_frame();
  /// read_frame() or read_response() per the negotiated framing.
  [[nodiscard]] std::optional<std::string> read_reply();
  [[nodiscard]] bool send_all(const std::string& line);
  /// poll() for `events` within timeout_ms; false on timeout/error.
  [[nodiscard]] bool wait_ready(short events, int timeout_ms) const;
  /// Reconnects to the last known-good port, then walks cfg_.endpoints —
  /// the failover half of the exactly-once redirect story.
  [[nodiscard]] bool reconnect_any();

  ClientConfig cfg_;
  int fd_ = -1;
  std::string rx_buffer_;
  std::uint16_t last_port_ = 0;
  bool binary_active_ = false;  ///< this connection negotiated HELLO BIN
  bool trace_active_ = false;   ///< this connection negotiated the TRC arm

  std::deque<Pending> outbox_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t overflows_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t redirects_ = 0;
  std::uint64_t busy_backoffs_ = 0;
  std::size_t endpoint_idx_ = 0;  ///< round-robin cursor into endpoints
  ExponentialBackoff backoff_;
};

}  // namespace nws

// Measurement memory: the NWS "memory" component.
//
// A deployed NWS separates sensing from forecasting with a bounded store of
// timestamped measurements per (host, resource) series.  This is that
// store: fixed-capacity ring buffers keyed by series name, with ordered
// insertion and range queries.  Forecasters consume a series through
// ForecastService (forecast_service.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace nws {

struct Measurement {
  double time = 0.0;   ///< seconds since the experiment epoch
  double value = 0.0;  ///< availability fraction in [0, 1]
};

/// Bounded per-series ring of measurements (oldest evicted first).
class SeriesStore {
 public:
  explicit SeriesStore(std::size_t capacity);

  /// Inserts a measurement; `time` must be >= the last inserted time
  /// (measurements arrive in order from a single sensor).  Returns false
  /// and drops the sample on out-of-order insertion (the drop is counted —
  /// see dropped() — so silently losing sensor data is observable).
  bool append(Measurement m);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Measurements ever accepted (including ones the ring later evicted).
  [[nodiscard]] std::uint64_t appended() const noexcept { return appended_; }
  /// Out-of-order samples rejected so far (operators alarm on growth: a
  /// sensor emitting backwards timestamps is losing data here).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Oldest-to-newest access, i < size().
  [[nodiscard]] const Measurement& at(std::size_t i) const;
  [[nodiscard]] const Measurement& newest() const { return at(size_ - 1); }

  /// All measurements with time in [t0, t1], oldest first.
  [[nodiscard]] std::vector<Measurement> range(double t0, double t1) const;

  /// The values only, oldest first (for the analysis code).
  [[nodiscard]] std::vector<double> values() const;

 private:
  std::vector<Measurement> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Name-keyed collection of series stores.
class Memory {
 public:
  explicit Memory(std::size_t default_capacity = 8192);

  /// Creates the series if absent.  Returns false on out-of-order insert.
  bool record(const std::string& series, Measurement m);

  /// Drops every series (capacity configuration survives).  Used by the
  /// replication snapshot path, which rebuilds a shard from scratch.
  void clear() { stores_.clear(); }

  [[nodiscard]] bool contains(const std::string& series) const;
  /// nullptr when the series does not exist.
  [[nodiscard]] const SeriesStore* find(const std::string& series) const;
  [[nodiscard]] std::vector<std::string> series_names() const;
  [[nodiscard]] std::size_t series_count() const noexcept {
    return stores_.size();
  }

  /// Aggregate accounting across every series (for the STATS command).
  struct Totals {
    std::uint64_t retained = 0;  ///< measurements currently in the rings
    std::uint64_t appended = 0;  ///< measurements ever accepted
    std::uint64_t dropped = 0;   ///< out-of-order samples rejected
  };
  [[nodiscard]] Totals totals() const;

 private:
  std::size_t default_capacity_;
  std::unordered_map<std::string, SeriesStore> stores_;
};

}  // namespace nws

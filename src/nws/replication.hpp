// Replication support types for the NWS primary -> follower stream.
//
// The server composes three small pieces (see DESIGN.md §11):
//
//   * ReplLog — a bounded in-core tail of one shard's committed records,
//     indexed by the shard's absolute commit index.  The primary appends
//     under the shard lock as it commits; a sender thread copies batches
//     out (also under the shard lock — copies are small and bounded) and
//     streams them.  When a follower's watermark falls off the log's
//     retained window the sender falls back to a full snapshot
//     (REPL RESET), so the log's capacity bounds memory, not correctness.
//
//   * ReplMetaState — the follower's durable replication cursor: the
//     epoch it last synced under and its per-shard high-watermarks.
//     Persisted with the usual temp-file + rename dance AFTER the shard
//     journal commit, so a follower that dies between the two replays the
//     journal and resumes from a watermark that is never ahead of the
//     applied state (re-streamed records are deduplicated by the
//     out-of-order drop in SeriesStore; see the exactly-once argument in
//     DESIGN.md §11).  A torn or missing meta file reads as nullopt and
//     the follower simply resyncs from scratch.
//
//   * ReplEndpoint / parse_endpoint_list — "7002,host:7003"-style lists
//     for NWSCPU_REPL_FOLLOWERS and the client's failover endpoints.
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nws/protocol.hpp"

namespace nws {

/// Bounded tail of one shard's committed records, absolutely indexed:
/// the log holds indices [start(), end()) of the shard's commit sequence.
/// Not thread-safe — the owner guards it with the shard mutex.
class ReplLog {
 public:
  explicit ReplLog(std::size_t capacity) : capacity_(capacity) {}

  /// Appends the next committed record (index end()); evicts the oldest
  /// when past capacity.
  void append(std::string_view series, Measurement m) {
    entries_.push_back(ReplSample{std::string(series), m});
    if (entries_.size() > capacity_) {
      entries_.pop_front();
      ++base_;
    }
  }

  /// First index still retained.
  [[nodiscard]] std::uint64_t start() const noexcept { return base_; }
  /// One past the newest index (== the shard's committed record count).
  [[nodiscard]] std::uint64_t end() const noexcept {
    return base_ + entries_.size();
  }
  /// True when a stream can resume from `from` without a snapshot.
  [[nodiscard]] bool contains(std::uint64_t from) const noexcept {
    return from >= base_ && from <= end();
  }

  /// Copies up to `max` records starting at absolute index `from`
  /// (requires contains(from)) into `out` (cleared first).  Returns the
  /// copy count; 0 when from == end().
  std::size_t copy_from(std::uint64_t from, std::size_t max,
                        std::vector<ReplSample>& out) const {
    out.clear();
    const std::size_t offset = static_cast<std::size_t>(from - base_);
    const std::size_t count = std::min(max, entries_.size() - offset);
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(entries_[offset + i]);
    }
    return count;
  }

  /// Forgets everything and restarts the index at `base` — used when a
  /// freshly promoted primary adopts its applied watermark as the commit
  /// index, and by followers tracking the stream position.
  void reset_base(std::uint64_t base) {
    entries_.clear();
    base_ = base;
  }

 private:
  std::size_t capacity_;
  std::uint64_t base_ = 0;
  std::deque<ReplSample> entries_;
};

/// The follower's durable replication cursor.
struct ReplMetaState {
  std::uint64_t epoch = 0;         ///< highest epoch ever seen
  std::uint64_t synced_epoch = 0;  ///< epoch the watermarks are valid under
  std::vector<std::uint64_t> watermarks;  ///< per-shard applied indices
};

/// Writes `state` via temp file + rename (atomic on POSIX).  Returns false
/// on I/O failure — the caller treats that like a journal write failure:
/// counted, never fatal (the worst case is a wider resync after restart).
bool save_repl_meta(const std::filesystem::path& path,
                    const ReplMetaState& state);

/// Loads a previously saved cursor; nullopt when the file is missing,
/// torn, or disagrees with its own shard count (the follower resyncs).
std::optional<ReplMetaState> load_repl_meta(
    const std::filesystem::path& path);

/// One replication/failover target.
struct ReplEndpoint {
  std::string host;    ///< defaults to loopback when the entry is bare
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
};

/// Parses a comma-separated endpoint list: each entry is "port" (loopback)
/// or "host:port".  Malformed entries are dropped, not fatal — a partially
/// valid NWSCPU_REPL_FOLLOWERS still replicates to the valid targets.
[[nodiscard]] std::vector<ReplEndpoint> parse_endpoint_list(
    std::string_view text);

}  // namespace nws

// NwsServer: a ForecastService behind the nwscpu wire protocol.
//
// Mirrors the deployment shape of the original NWS: sensor processes PUT
// measurements, schedulers ask for FORECASTs.  The request handling is a
// pure string -> string function (handle_line) so all protocol behaviour is
// unit-testable; the optional TCP front end (start/stop) serves it on a
// loopback-or-LAN socket with one service thread.
//
// Concurrency model: a single service thread runs a poll()-based event
// loop over the listening socket and all client connections, so any number
// of sensor and scheduler clients can be connected at once (a deployed NWS
// memory serves one stream per monitored resource).  Requests are executed
// serially in that thread; a mutex still guards the service so handle_line
// may also be called directly from other threads (e.g. an in-process
// sensor loop).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "nws/forecast_service.hpp"
#include "nws/protocol.hpp"

namespace nws {

class NwsServer {
 public:
  explicit NwsServer(std::size_t memory_capacity = 8192);
  ~NwsServer();

  NwsServer(const NwsServer&) = delete;
  NwsServer& operator=(const NwsServer&) = delete;

  /// Processes one protocol line and returns the response line (without
  /// trailing newline).  QUIT returns "OK"; connection teardown is the
  /// transport's business.
  [[nodiscard]] std::string handle_line(std::string_view line);

  /// Starts the TCP listener on 127.0.0.1:`port` (0 = ephemeral).  Returns
  /// the bound port, or 0 on failure.  Idempotent start is an error.
  std::uint16_t start(std::uint16_t port = 0);

  /// Stops the listener and joins the service thread.  Safe to call when
  /// not started.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_.load(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Requests served so far (all transports).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load();
  }

  /// Connected clients at this instant (for tests/monitoring).
  [[nodiscard]] std::size_t connections() const noexcept {
    return connections_.load();
  }

 private:
  struct Connection {
    int fd = -1;
    std::string rx;       ///< bytes received, not yet parsed into lines
    std::string tx;       ///< response bytes not yet written
    bool closing = false;  ///< QUIT received: close once tx drains
  };

  void serve_loop();
  /// Parses complete lines from conn.rx, appends responses to conn.tx.
  void process_buffered_lines(Connection& conn);
  /// Returns false when the connection should be dropped.
  [[nodiscard]] bool flush_tx(Connection& conn);

  ForecastService service_;
  std::mutex mutex_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::size_t> connections_{0};

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace nws

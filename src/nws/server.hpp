// NwsServer: a ForecastService behind the nwscpu wire protocol.
//
// Mirrors the deployment shape of the original NWS: sensor processes PUT
// measurements, schedulers ask for FORECASTs.  The request handling is a
// pure string -> string function (handle_line) so all protocol behaviour is
// unit-testable; the optional TCP front end (start/stop) serves it on a
// loopback-or-LAN socket with one service thread.
//
// Concurrency model: a single service thread runs a poll()-based event
// loop over the listening socket and all client connections, so any number
// of sensor and scheduler clients can be connected at once (a deployed NWS
// memory serves one stream per monitored resource).  Requests are executed
// serially in that thread; a mutex still guards the service so handle_line
// may also be called directly from other threads (e.g. an in-process
// sensor loop).
//
// Hardening (this is long-lived grid infrastructure):
//  * per-connection input lines are capped (ERR line too long + drop), so
//    a peer that never sends a newline cannot grow memory without bound;
//  * idle connections can be expired (idle_timeout_ms);
//  * when the series table is full, new series are shed with "ERR busy"
//    instead of growing without bound or dropping silently;
//  * PUTS (sequence-tagged PUT) is idempotent: duplicates from an outbox
//    replay are acked with "OK dup" and not re-applied, even across a
//    restart (a replayed journal makes stale timestamps detectable);
//  * with a journal_path the full service state survives restarts;
//  * the socket loop and journal consult util/fault.hpp fault sites, so a
//    chaos harness can inject resets, delays, truncation, garbage and disk
//    failures deterministically (a relaxed atomic load when disabled).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "nws/forecast_service.hpp"
#include "nws/protocol.hpp"

namespace nws {

struct ServerConfig {
  std::size_t memory_capacity = 8192;  ///< per-series measurement retention
  /// Longest accepted request line (bytes, excluding the newline); longer
  /// input answers "ERR line too long" and drops the connection.
  std::size_t max_line_bytes = 64 * 1024;
  /// Drop connections silent for this long (0 = never).
  int idle_timeout_ms = 0;
  /// Maximum distinct series; PUTs creating more answer "ERR busy"
  /// (0 = unlimited).
  std::size_t max_series = 0;
  /// Journal file making memory + forecaster state durable across
  /// restarts (empty = in-core only).
  std::filesystem::path journal_path;
};

class NwsServer {
 public:
  explicit NwsServer(ServerConfig config);
  explicit NwsServer(std::size_t memory_capacity = 8192);
  ~NwsServer();

  NwsServer(const NwsServer&) = delete;
  NwsServer& operator=(const NwsServer&) = delete;

  /// Processes one protocol line and returns the response line (without
  /// trailing newline).  QUIT returns "OK"; connection teardown is the
  /// transport's business.
  [[nodiscard]] std::string handle_line(std::string_view line);

  /// Starts the TCP listener on 127.0.0.1:`port` (0 = ephemeral).  Returns
  /// the bound port, or 0 on failure.  Idempotent start is an error.
  std::uint16_t start(std::uint16_t port = 0);

  /// Stops the listener, joins the service thread and flushes the journal
  /// (if any).  Safe to call when not started.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_.load(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }

  /// Requests served so far (all transports).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load();
  }

  /// Connected clients at this instant (for tests/monitoring).
  [[nodiscard]] std::size_t connections() const noexcept {
    return connections_.load();
  }

  /// Duplicate PUTS requests acked without re-applying.
  [[nodiscard]] std::uint64_t duplicates_acked() const noexcept {
    return duplicates_.load();
  }
  /// Requests shed with "ERR busy".
  [[nodiscard]] std::uint64_t shed_busy() const noexcept {
    return shed_.load();
  }
  /// Connections dropped for oversized lines or idleness.
  [[nodiscard]] std::uint64_t connections_dropped() const noexcept {
    return dropped_.load();
  }

  /// The underlying service (measurements recovered from the journal,
  /// journal write failures, ...).
  [[nodiscard]] const ForecastService& service() const noexcept {
    return service_;
  }

 private:
  struct Connection {
    int fd = -1;
    std::string rx;        ///< bytes received, not yet parsed into lines
    std::string tx;        ///< response bytes not yet written
    bool closing = false;  ///< QUIT/fault received: close once tx drains
    std::chrono::steady_clock::time_point last_activity;
  };

  void serve_loop();
  /// Parses complete lines from conn.rx, appends responses to conn.tx.
  void process_buffered_lines(Connection& conn);
  /// Returns false when the connection should be dropped.
  [[nodiscard]] bool flush_tx(Connection& conn);
  /// PUT/PUTS admission: capacity shedding and duplicate detection.
  [[nodiscard]] std::string handle_put(const Request& request);

  ServerConfig cfg_;
  ForecastService service_;
  std::mutex mutex_;
  /// Highest PUTS sequence applied per series (in-core fast path; the
  /// timestamp check covers restarts).
  std::unordered_map<std::string, std::uint64_t> applied_seq_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::size_t> connections_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> dropped_{0};

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace nws
